// Package sampling implements the independent subset-sampling kernels at
// the core of SUBSIM (paper Section 3). Given h elements with inclusion
// probabilities p_0..p_{h-1}, a subset sampler emits each index i
// independently with probability p_i. The kernels are:
//
//   - Naive: one Bernoulli coin per element, Θ(h) — the vanilla RR set
//     generator's inner loop (Algorithm 2, line 6).
//   - EqualSkip: geometric skip sampling for equal probabilities,
//     O(1+hp) expected (Algorithm 3) — the WC / Uniform IC fast path.
//   - SortedSkip: the index-free general-IC sampler over probabilities
//     sorted in descending order, O(1+μ+log h) expected (Section 3.3).
//   - Bucketed: the preprocessed general-IC sampler that groups
//     probabilities into powers-of-two buckets (Bringmann & Panagiotou;
//     paper Lemma 5), O(1+μ+log h) expected per draw after O(h)
//     preprocessing, with an optional bucket-jump chain that removes the
//     log h term.
//
// All kernels report sampled indices through a yield callback so the hot
// paths allocate nothing.
package sampling

import (
	"math"

	"subsim/internal/rng"
)

// Naive emits each index i in [0, len(probs)) independently with
// probability probs[i], flipping one coin per element. It is the baseline
// the SUBSIM kernels are measured against.
func Naive(r *rng.Source, probs []float64, yield func(int) bool) {
	for i, p := range probs {
		if r.Bernoulli(p) && !yield(i) {
			return
		}
	}
}

// EqualSkip emits each index in [0, h) independently with the shared
// probability p, using geometric skip sampling: successive gaps between
// sampled indices are Geometric(p), so the expected cost is O(1 + h·p)
// instead of Θ(h). logOneMinusP must be math.Log1p(-p) (or math.Inf(-1)
// for p == 1); callers that sample the same node repeatedly precompute
// it once.
// Yield follows the range-over-func convention: returning false stops the
// draw early (used by sentinel-terminated RR set generation).
func EqualSkip(r *rng.Source, h int, p, logOneMinusP float64, yield func(int) bool) {
	if h <= 0 || p <= 0 {
		return
	}
	pos := int64(-1)
	for {
		skip := r.GeometricFromLog(logOneMinusP)
		if skip >= int64(h)-pos {
			return
		}
		pos += skip
		if !yield(int(pos)) {
			return
		}
	}
}

// SortedSkip emits each index i independently with probability probs[i],
// where probs must be sorted in descending order. It is the paper's
// index-free general-IC sampler: positions are grouped into buckets
// [2^k, 2^{k+1}) (1-indexed); within bucket k the sampler skips with
// Geometric(probs[2^k-1]) — the largest probability in the bucket — and
// accepts a landed position pos with probability probs[pos]/probs[2^k-1].
// Expected cost is O(1 + μ + log h) with μ = Σ probs[i].
// Yield follows the range-over-func convention: returning false stops the
// draw early.
func SortedSkip(r *rng.Source, probs []float64, yield func(int) bool) {
	h := len(probs)
	// 1-indexed positions: bucket k spans [2^k, min(2^{k+1}, h+1)).
	for start := 1; start <= h; start *= 2 {
		end := start * 2
		if end > h+1 {
			end = h + 1
		}
		head := probs[start-1]
		if head <= 0 {
			// Descending order: every remaining probability is zero.
			return
		}
		if head >= 1 {
			// Geometric skipping degenerates to scanning; accept each
			// position with its own probability.
			for pos := start; pos < end; pos++ {
				if r.Bernoulli(probs[pos-1]) && !yield(pos-1) {
					return
				}
			}
			continue
		}
		logHead := math.Log1p(-head)
		pos := int64(start - 1)
		for {
			skip := r.GeometricFromLog(logHead)
			if skip >= int64(end)-pos {
				break
			}
			pos += skip
			// Thin the Geometric(head) stream down to the true
			// probability of the landed position.
			if p := probs[pos-1]; p >= head || r.Float64()*head < p {
				if !yield(int(pos) - 1) {
					return
				}
			}
		}
	}
}

// IsSortedDesc reports whether probs is sorted in descending order, the
// precondition of SortedSkip.
func IsSortedDesc(probs []float64) bool {
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1] {
			return false
		}
	}
	return true
}
