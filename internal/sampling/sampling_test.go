package sampling

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"subsim/internal/rng"
)

// checkMarginals runs `draws` subset draws through `sample` and verifies
// that each element's empirical inclusion frequency matches probs within
// 5-sigma binomial tolerance.
func checkMarginals(t *testing.T, probs []float64, draws int, sample func(r *rng.Source, yield func(int) bool)) {
	t.Helper()
	r := rng.New(12345)
	counts := make([]int, len(probs))
	for d := 0; d < draws; d++ {
		sample(r, func(i int) bool {
			counts[i]++
			return true
		})
	}
	for i, p := range probs {
		got := float64(counts[i]) / float64(draws)
		tol := 5*math.Sqrt(p*(1-p)/float64(draws)) + 2e-4
		if math.Abs(got-p) > tol {
			t.Fatalf("element %d: frequency %v, want %v ± %v", i, got, p, tol)
		}
	}
}

func TestNaiveMarginals(t *testing.T) {
	probs := []float64{0, 0.1, 0.5, 0.9, 1, 0.33}
	checkMarginals(t, probs, 100000, func(r *rng.Source, y func(int) bool) {
		Naive(r, probs, y)
	})
}

func TestNaiveEarlyStop(t *testing.T) {
	r := rng.New(1)
	probs := []float64{1, 1, 1, 1}
	var got []int
	Naive(r, probs, func(i int) bool {
		got = append(got, i)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("early stop yielded %v", got)
	}
}

func TestEqualSkipMarginals(t *testing.T) {
	for _, p := range []float64{0.01, 0.2, 0.5, 0.95} {
		h := 40
		probs := make([]float64, h)
		for i := range probs {
			probs[i] = p
		}
		logP := math.Log1p(-p)
		checkMarginals(t, probs, 100000, func(r *rng.Source, y func(int) bool) {
			EqualSkip(r, h, p, logP, y)
		})
	}
}

func TestEqualSkipEdgeCases(t *testing.T) {
	r := rng.New(2)
	called := false
	EqualSkip(r, 0, 0.5, math.Log1p(-0.5), func(int) bool { called = true; return true })
	if called {
		t.Fatal("EqualSkip(h=0) yielded")
	}
	EqualSkip(r, 10, 0, 0, func(int) bool { called = true; return true })
	if called {
		t.Fatal("EqualSkip(p=0) yielded")
	}
	// p = 1 must yield every index exactly once, in order.
	var got []int
	EqualSkip(r, 5, 1, math.Inf(-1), func(i int) bool { got = append(got, i); return true })
	if len(got) != 5 {
		t.Fatalf("EqualSkip(p=1) yielded %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("EqualSkip(p=1) out of order: %v", got)
		}
	}
}

func TestEqualSkipEarlyStop(t *testing.T) {
	r := rng.New(3)
	n := 0
	EqualSkip(r, 100, 1, math.Inf(-1), func(int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop yielded %d", n)
	}
}

// TestEqualSkipMatchesNaiveSizeDistribution compares the first two
// moments of the subset-size distribution between the naive and skip
// kernels.
func TestEqualSkipMatchesNaiveSizeDistribution(t *testing.T) {
	const h, p, draws = 30, 0.3, 60000
	probs := make([]float64, h)
	for i := range probs {
		probs[i] = p
	}
	logP := math.Log1p(-p)
	moments := func(sample func(r *rng.Source, y func(int) bool)) (mean, variance float64) {
		r := rng.New(77)
		var sum, sumSq float64
		for d := 0; d < draws; d++ {
			c := 0
			sample(r, func(int) bool { c++; return true })
			sum += float64(c)
			sumSq += float64(c) * float64(c)
		}
		mean = sum / draws
		variance = sumSq/draws - mean*mean
		return mean, variance
	}
	m1, v1 := moments(func(r *rng.Source, y func(int) bool) { Naive(r, probs, y) })
	m2, v2 := moments(func(r *rng.Source, y func(int) bool) { EqualSkip(r, h, p, logP, y) })
	if math.Abs(m1-m2) > 0.1 {
		t.Fatalf("means differ: naive %v, skip %v", m1, m2)
	}
	if math.Abs(v1-v2) > 0.5 {
		t.Fatalf("variances differ: naive %v, skip %v", v1, v2)
	}
}

func TestSortedSkipMarginals(t *testing.T) {
	probs := []float64{1, 0.8, 0.5, 0.5, 0.3, 0.2, 0.1, 0.05, 0.01, 0.01, 0}
	if !IsSortedDesc(probs) {
		t.Fatal("test fixture not sorted")
	}
	checkMarginals(t, probs, 150000, func(r *rng.Source, y func(int) bool) {
		SortedSkip(r, probs, y)
	})
}

func TestSortedSkipSingleElement(t *testing.T) {
	checkMarginals(t, []float64{0.4}, 100000, func(r *rng.Source, y func(int) bool) {
		SortedSkip(r, []float64{0.4}, y)
	})
}

func TestSortedSkipAllOnes(t *testing.T) {
	probs := []float64{1, 1, 1, 1, 1}
	r := rng.New(4)
	for d := 0; d < 100; d++ {
		var got []int
		SortedSkip(r, probs, func(i int) bool { got = append(got, i); return true })
		if len(got) != 5 {
			t.Fatalf("all-ones draw yielded %v", got)
		}
	}
}

func TestSortedSkipAllZeros(t *testing.T) {
	probs := []float64{0, 0, 0}
	r := rng.New(5)
	SortedSkip(r, probs, func(int) bool {
		t.Fatal("zero probabilities yielded an element")
		return false
	})
}

func TestSortedSkipEarlyStop(t *testing.T) {
	probs := []float64{1, 1, 1, 1}
	r := rng.New(6)
	n := 0
	SortedSkip(r, probs, func(int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop yielded %d", n)
	}
}

// TestSortedSkipPropertyRandomVectors quick-checks marginals on random
// descending probability vectors.
func TestSortedSkipPropertyRandomVectors(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := 1 + r.Intn(25)
		probs := make([]float64, h)
		for i := range probs {
			probs[i] = r.Float64()
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
		const draws = 20000
		counts := make([]int, h)
		for d := 0; d < draws; d++ {
			SortedSkip(r, probs, func(i int) bool { counts[i]++; return true })
		}
		for i, p := range probs {
			got := float64(counts[i]) / draws
			tol := 6*math.Sqrt(p*(1-p)/draws) + 1e-3
			if math.Abs(got-p) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSortedDesc(t *testing.T) {
	cases := []struct {
		probs []float64
		want  bool
	}{
		{nil, true},
		{[]float64{0.5}, true},
		{[]float64{0.9, 0.5, 0.5, 0.1}, true},
		{[]float64{0.1, 0.2}, false},
	}
	for _, c := range cases {
		if got := IsSortedDesc(c.probs); got != c.want {
			t.Errorf("IsSortedDesc(%v) = %v", c.probs, got)
		}
	}
}

func TestBucketedMarginals(t *testing.T) {
	probs := []float64{0.9, 0.51, 0.5, 0.26, 0.25, 0.13, 0.01, 0.001, 0, 1}
	b := NewBucketed(probs)
	if b.H() != len(probs) {
		t.Fatalf("H = %d", b.H())
	}
	checkMarginals(t, probs, 150000, b.Sample)
}

func TestBucketedJumpMarginals(t *testing.T) {
	probs := []float64{0.9, 0.51, 0.5, 0.26, 0.25, 0.13, 0.01, 0.001, 0, 1}
	b := NewBucketedJump(probs)
	checkMarginals(t, probs, 150000, b.Sample)
}

func TestBucketedTinyProbabilities(t *testing.T) {
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = 1e-4
	}
	for _, jump := range []bool{false, true} {
		var b *Bucketed
		if jump {
			b = NewBucketedJump(probs)
		} else {
			b = NewBucketed(probs)
		}
		r := rng.New(8)
		const draws = 200000
		total := 0
		for d := 0; d < draws; d++ {
			b.Sample(r, func(int) bool { total++; return true })
		}
		want := b.Mu() * draws
		if math.Abs(float64(total)-want) > 6*math.Sqrt(want) {
			t.Fatalf("jump=%v: total inclusions %d, want ~%v", jump, total, want)
		}
	}
}

func TestBucketedMu(t *testing.T) {
	probs := []float64{0.5, 0.25, 0.25}
	b := NewBucketed(probs)
	if math.Abs(b.Mu()-1.0) > 1e-12 {
		t.Fatalf("Mu = %v", b.Mu())
	}
}

func TestBucketedEmpty(t *testing.T) {
	for _, b := range []*Bucketed{NewBucketed(nil), NewBucketedJump(nil), NewBucketed([]float64{0, 0})} {
		r := rng.New(9)
		b.Sample(r, func(int) bool {
			t.Fatal("empty sampler yielded")
			return false
		})
	}
}

func TestBucketedEarlyStop(t *testing.T) {
	probs := []float64{1, 1, 1, 1, 1, 1}
	for _, jump := range []bool{false, true} {
		var b *Bucketed
		if jump {
			b = NewBucketedJump(probs)
		} else {
			b = NewBucketed(probs)
		}
		r := rng.New(10)
		n := 0
		b.Sample(r, func(int) bool { n++; return n < 2 })
		if n != 2 {
			t.Fatalf("jump=%v: early stop yielded %d", jump, n)
		}
	}
}

// TestBucketedPropertyRandomVectors quick-checks marginals of both
// bucketed variants on random probability vectors, including exact
// powers of two (the bucket-boundary edge cases).
func TestBucketedPropertyRandomVectors(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := 1 + r.Intn(30)
		probs := make([]float64, h)
		for i := range probs {
			switch r.Intn(4) {
			case 0:
				probs[i] = math.Pow(2, -float64(r.Intn(10))) // exact powers of two
			case 1:
				probs[i] = 0
			default:
				probs[i] = r.Float64()
			}
		}
		for _, jump := range []bool{false, true} {
			var b *Bucketed
			if jump {
				b = NewBucketedJump(probs)
			} else {
				b = NewBucketed(probs)
			}
			const draws = 15000
			counts := make([]int, h)
			for d := 0; d < draws; d++ {
				b.Sample(r, func(i int) bool { counts[i]++; return true })
			}
			for i, p := range probs {
				got := float64(counts[i]) / draws
				tol := 6*math.Sqrt(p*(1-p)/draws) + 1.5e-3
				if math.Abs(got-p) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelsAgreeOnSizeMean cross-checks all four kernels on a shared
// probability vector: the expected subset size must agree.
func TestKernelsAgreeOnSizeMean(t *testing.T) {
	probs := []float64{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7}
	sorted := append([]float64(nil), probs...) // already descending
	logP := math.Log1p(-0.7)
	bb := NewBucketed(probs)
	bj := NewBucketedJump(probs)
	kernels := map[string]func(r *rng.Source, y func(int) bool){
		"naive":  func(r *rng.Source, y func(int) bool) { Naive(r, probs, y) },
		"equal":  func(r *rng.Source, y func(int) bool) { EqualSkip(r, len(probs), 0.7, logP, y) },
		"sorted": func(r *rng.Source, y func(int) bool) { SortedSkip(r, sorted, y) },
		"bucket": bb.Sample,
		"jump":   bj.Sample,
	}
	want := 0.7 * float64(len(probs))
	for name, kernel := range kernels {
		r := rng.New(99)
		const draws = 40000
		total := 0
		for d := 0; d < draws; d++ {
			kernel(r, func(int) bool { total++; return true })
		}
		got := float64(total) / draws
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s: mean size %v, want %v", name, got, want)
		}
	}
}
