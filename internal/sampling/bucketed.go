package sampling

import (
	"math"

	"subsim/internal/rng"
)

// Bucketed is the preprocessed general-IC subset sampler of the paper's
// Section 3.3 (after Bringmann & Panagiotou): probabilities are grouped
// into powers-of-two buckets, with p_i assigned to bucket k when
// 2^{-k} >= p_i > 2^{-k-1} (and the final bucket collecting everything
// at or below 2^{-K}). Within a bucket, elements are scanned with
// Geometric(2^{-k}) skips and accepted with probability p_i·2^k, so the
// expected per-bucket cost is at most twice the bucket's probability
// mass plus one geometric draw.
//
// With the optional bucket-jump chain (NewBucketedJump), empty iterations
// over buckets that produce no landing are skipped via an alias-sampled
// "next touched bucket" chain (the paper's T table), bringing the
// expected cost per draw to O(1 + μ).
//
// Construction is O(h) (plus O(log² h) for the jump chain); a Bucketed
// value is immutable and safe for concurrent Sample calls with distinct
// rng.Sources.
type Bucketed struct {
	h       int
	buckets []bucket
	// jump[i] samples the next touched bucket after chain position i
	// (position 0 = before the first bucket); outcome len(buckets)
	// means "no further bucket is touched". Nil without the jump chain.
	jump []*rng.Alias
}

type bucket struct {
	idx     []int32   // element indices in this bucket
	p       []float64 // their probabilities, aligned with idx
	bound   float64   // 2^{-k}: upper bound for every p in the bucket
	logB    float64   // log1p(-bound); 0 is unused when bound >= 1
	touched float64   // probability at least one geometric landing occurs
}

// NewBucketed preprocesses probs (each in [0,1]) into the bucketed
// structure. Zero probabilities are dropped. The element order inside a
// bucket follows the input order.
func NewBucketed(probs []float64) *Bucketed {
	h := len(probs)
	b := &Bucketed{h: h}
	if h == 0 {
		return b
	}
	// Deepest bucket index: probabilities at or below 2^{-maxK} share
	// the final bucket, per Lemma 5.
	maxK := int(math.Ceil(math.Log2(float64(h))))
	if maxK < 0 {
		maxK = 0
	}
	byK := make([][]int32, maxK+1)
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		k := 0
		if p < 1 {
			// Largest k with 2^{-k} >= p, i.e. k = floor(-log2 p).
			k = int(math.Floor(-math.Log2(p)))
			if k < 0 {
				k = 0
			}
			if k > maxK {
				k = maxK
			}
			// Guard against floating-point drift right at a power of
			// two: the bucket bound must dominate p.
			for k > 0 && math.Pow(2, -float64(k)) < p {
				k--
			}
		}
		byK[k] = append(byK[k], int32(i))
	}
	for k, idx := range byK {
		if len(idx) == 0 {
			continue
		}
		bk := bucket{
			idx:   idx,
			p:     make([]float64, len(idx)),
			bound: math.Pow(2, -float64(k)),
		}
		for j, i := range idx {
			bk.p[j] = probs[i]
		}
		if bk.bound >= 1 {
			bk.bound = 1
			bk.touched = 1
		} else {
			bk.logB = math.Log1p(-bk.bound)
			// 1 - (1-bound)^{|B_k|}, computed without cancellation.
			bk.touched = -math.Expm1(float64(len(idx)) * bk.logB)
		}
		b.buckets = append(b.buckets, bk)
	}
	return b
}

// NewBucketedJump builds the bucketed sampler plus the bucket-jump chain
// that skips untouched buckets in O(1) per touched bucket.
func NewBucketedJump(probs []float64) *Bucketed {
	b := NewBucketed(probs)
	L := len(b.buckets)
	if L == 0 {
		return b
	}
	b.jump = make([]*rng.Alias, L)
	// Row i: distribution of the first touched bucket with index >= i;
	// outcome L is the sentinel "none".
	for i := 0; i < L; i++ {
		weights := make([]float64, L+1)
		pass := 1.0
		for j := i; j < L; j++ {
			weights[j] = pass * b.buckets[j].touched
			pass *= 1 - b.buckets[j].touched
		}
		weights[L] = pass
		a, err := rng.NewAlias(weights)
		if err != nil {
			// Unreachable: touched probabilities are in [0,1] and the
			// row always has positive total mass.
			panic(err)
		}
		b.jump[i] = a
	}
	return b
}

// H returns the number of elements the sampler was built over.
func (b *Bucketed) H() int { return b.h }

// Mu returns the expected subset size Σ p_i.
func (b *Bucketed) Mu() float64 {
	var mu float64
	for _, bk := range b.buckets {
		for _, p := range bk.p {
			mu += p
		}
	}
	return mu
}

// Sample draws one independent subset, yielding each element index with
// its configured probability. Yield follows the range-over-func
// convention: returning false stops the draw early.
//
//subsim:hotpath
func (b *Bucketed) Sample(r *rng.Source, yield func(int) bool) {
	if b.jump == nil {
		for i := range b.buckets {
			if !b.buckets[i].scan(r, yield, 0) {
				return
			}
		}
		return
	}
	cur := 0
	for cur < len(b.buckets) {
		next := b.jump[cur].Sample(r)
		if next >= len(b.buckets) {
			return
		}
		bk := &b.buckets[next]
		// The chain conditioned on bucket `next` being touched: draw the
		// first landing from the truncated geometric, then continue the
		// plain geometric scan behind it.
		first := bk.firstLanding(r)
		if r.Float64()*bk.bound < bk.p[first] {
			if !yield(int(bk.idx[first])) {
				return
			}
		}
		if !bk.scan(r, yield, first+1) {
			return
		}
		cur = next + 1
	}
}

// scan performs the plain geometric-skip pass over the bucket starting at
// element offset `from`. It reports false when yield requested an early
// stop.
//
//subsim:hotpath
func (bk *bucket) scan(r *rng.Source, yield func(int) bool, from int) bool {
	s := len(bk.idx)
	if from >= s {
		return true
	}
	if bk.bound >= 1 {
		for j := from; j < s; j++ {
			if r.Bernoulli(bk.p[j]) && !yield(int(bk.idx[j])) {
				return false
			}
		}
		return true
	}
	pos := int64(from) - 1
	for {
		skip := r.GeometricFromLog(bk.logB)
		if skip >= int64(s)-pos {
			return true
		}
		pos += skip
		if r.Float64()*bk.bound < bk.p[pos] && !yield(int(bk.idx[pos])) {
			return false
		}
	}
}

// firstLanding draws the 0-based offset of the first geometric landing in
// the bucket, conditioned on at least one landing occurring.
//
//subsim:hotpath
func (bk *bucket) firstLanding(r *rng.Source) int {
	if bk.bound >= 1 {
		return 0
	}
	s := len(bk.idx)
	// X ~ Geometric(bound) | X <= s via inverse transform on the
	// truncated CDF: X = ceil(log1p(-U·touched)/log1p(-bound)).
	u := r.Float64()
	x := int(math.Ceil(math.Log1p(-u*bk.touched) / bk.logB))
	if x < 1 {
		x = 1
	}
	if x > s {
		x = s
	}
	return x - 1
}
