package sampling

import (
	"math"
	"testing"

	"subsim/internal/rng"
)

// FuzzBucketedSampler drives the bucketed subset sampler (both the plain
// and jump-chain variants) over arbitrary probability vectors and
// asserts its structural preconditions and sampling invariants:
//
//   - construction partitions exactly the positive-probability elements
//     into buckets, every probability dominated by its bucket's bound
//     (the sorted-order precondition geometric thinning relies on:
//     accepting with p/bound must be a probability);
//   - every yielded index is in range, refers to a positive-probability
//     element, and is yielded at most once per draw (geometric skips
//     are >= 1 and buckets are disjoint);
//   - an early-stopping yield terminates the draw without panicking.
func FuzzBucketedSampler(f *testing.F) {
	f.Add(uint64(1), []byte{255, 128, 64, 1})
	f.Add(uint64(2020), []byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(uint64(7), []byte{255})
	f.Add(uint64(9), []byte{0, 0, 255, 0})
	f.Add(uint64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		if len(raw) > 512 {
			return
		}
		probs := make([]float64, len(raw))
		positive := 0
		for i, b := range raw {
			probs[i] = float64(b) / 255
			if probs[i] > 0 {
				positive++
			}
		}
		for _, s := range []*Bucketed{NewBucketed(probs), NewBucketedJump(probs)} {
			if s.H() != len(probs) {
				t.Fatalf("H() = %d, want %d", s.H(), len(probs))
			}
			checkBucketInvariants(t, s, probs, positive)
			r := rng.New(seed)
			for trial := 0; trial < 8; trial++ {
				seen := make(map[int]bool)
				s.Sample(r, func(i int) bool {
					if i < 0 || i >= len(probs) {
						t.Fatalf("yielded index %d outside [0,%d)", i, len(probs))
					}
					if probs[i] <= 0 {
						t.Fatalf("yielded zero-probability element %d", i)
					}
					if seen[i] {
						t.Fatalf("element %d yielded twice in one draw", i)
					}
					seen[i] = true
					return true
				})
			}
			// Early stop after the first yield must not panic or loop.
			s.Sample(r, func(int) bool { return false })
		}
	})
}

// checkBucketInvariants asserts the preprocessed structure is coherent.
func checkBucketInvariants(t *testing.T, s *Bucketed, probs []float64, positive int) {
	t.Helper()
	total := 0
	prevBound := math.Inf(1)
	for k, bk := range s.buckets {
		if len(bk.idx) != len(bk.p) {
			t.Fatalf("bucket %d: idx/p length mismatch %d vs %d", k, len(bk.idx), len(bk.p))
		}
		if len(bk.idx) == 0 {
			t.Fatalf("bucket %d: empty buckets must be dropped at construction", k)
		}
		if bk.bound <= 0 || bk.bound > 1 {
			t.Fatalf("bucket %d: bound %g outside (0,1]", k, bk.bound)
		}
		if bk.bound >= prevBound {
			t.Fatalf("bucket %d: bounds must strictly decrease (%g after %g)", k, bk.bound, prevBound)
		}
		prevBound = bk.bound
		if bk.touched < 0 || bk.touched > 1 {
			t.Fatalf("bucket %d: touched probability %g outside [0,1]", k, bk.touched)
		}
		for j, i := range bk.idx {
			if int(i) < 0 || int(i) >= len(probs) {
				t.Fatalf("bucket %d: element index %d outside [0,%d)", k, i, len(probs))
			}
			// Stored probabilities must be bit-identical copies of the
			// input; an approximate compare would mask a copy bug.
			if bk.p[j] != probs[i] {
				t.Fatalf("bucket %d: stored p %g != probs[%d] = %g", k, bk.p[j], i, probs[i])
			}
			if bk.p[j] <= 0 {
				t.Fatalf("bucket %d: zero-probability element %d retained", k, i)
			}
			if bk.p[j] > bk.bound {
				t.Fatalf("bucket %d: p %g exceeds bucket bound %g (thinning acceptance > 1)", k, bk.p[j], bk.bound)
			}
		}
		total += len(bk.idx)
	}
	if total != positive {
		t.Fatalf("buckets hold %d elements, want %d positive-probability inputs", total, positive)
	}
	if s.jump != nil && len(s.jump) != len(s.buckets) {
		t.Fatalf("jump chain length %d != bucket count %d", len(s.jump), len(s.buckets))
	}
}
