// Package obsdiff is the run-report regression comparator behind the
// obsdiff and obsbundle CLIs: it loads two schema-versioned run reports
// (the JSON documents produced by obs.Tracer.Report / imrun -report /
// the serve plane's /report endpoint / a flight-recorder bundle) and
// flags regressions, so observability artifacts gate performance the
// same way BENCH_rrset.json gates microbenchmarks.
//
// Three metric families are compared:
//
//   - phase times: the span forest of each report is flattened with
//     AggregateSpans (per-name totals), and each common name's total
//     duration is compared;
//   - counters: the report's counter map (rr_sets_total, ...), where
//     growth beyond tolerance means the run did more work;
//   - histograms: each common histogram's mean (sum/count) — a mean
//     shift beyond tolerance flags a distributional regression even
//     when totals moved less.
//
// Names present in only one report are informational (flagged, never
// fatal): algorithms add and rename phases across versions, and a gate
// that fails on renames would rot.
package obsdiff

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"subsim/internal/obs"
)

// Run is the obsdiff CLI entry point (factored here so cmd/obsdiff
// stays a thin wrapper and tests drive the full flag surface). Returns
// the process exit code: 0 clean, 1 regression, 2 usage/I-O error.
func Run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 0.15, "relative regression tolerance (0.15 = +15%)")
	spanFloor := fs.Duration("span-floor", time.Millisecond, "span totals below this base duration never fail the gate")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	all := fs.Bool("all", false, "print unchanged rows too")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(out, "usage: obsdiff [flags] base.json new.json")
		return 2
	}
	base, err := LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(out, "obsdiff: %v\n", err)
		return 2
	}
	next, err := LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(out, "obsdiff: %v\n", err)
		return 2
	}
	d := Compare(base, next, Options{Tolerance: *tolerance, SpanFloorNS: spanFloor.Nanoseconds()})
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintf(out, "obsdiff: %v\n", err)
			return 2
		}
	} else {
		d.WriteText(out, *all)
	}
	if d.Regressions > 0 {
		return 1
	}
	return 0
}

// LoadReport reads and schema-checks one run report.
func LoadReport(path string) (*obs.Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r obs.Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != obs.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, obs.Schema)
	}
	if r.Version != obs.SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, want %d", path, r.Version, obs.SchemaVersion)
	}
	return &r, nil
}

// Options tunes the comparison.
type Options struct {
	// Tolerance is the allowed relative growth of a cost metric (0.15
	// allows +15%).
	Tolerance float64
	// SpanFloorNS exempts span totals whose base is below this many
	// nanoseconds from the gate (timer noise on micro-phases).
	SpanFloorNS int64
}

// Delta is one compared metric.
type Delta struct {
	// Kind is "span" (total ns), "counter", or "histogram" (mean).
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Base and New are the metric values in each report; -1 marks a
	// side where the metric is absent.
	Base float64 `json:"base"`
	New  float64 `json:"new"`
	// Change is (New-Base)/Base, or 0 when Base is 0 or either side is
	// absent.
	Change float64 `json:"change"`
	// Regressed marks values that grew beyond tolerance.
	Regressed bool `json:"regressed,omitempty"`
	// Note is "base-only" / "new-only" for one-sided metrics, or
	// "below-floor" for spans exempted by the noise floor.
	Note string `json:"note,omitempty"`
}

// Diff is the full comparison document (-json output).
type Diff struct {
	Schema      string  `json:"schema"`
	Version     int     `json:"version"`
	Tolerance   float64 `json:"tolerance"`
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
}

// DiffSchema identifies obsdiff's own JSON output.
const (
	DiffSchema        = "subsim.obsdiff"
	DiffSchemaVersion = 1
)

// Compare diffs two run reports.
func Compare(base, next *obs.Report, opt Options) *Diff {
	d := &Diff{Schema: DiffSchema, Version: DiffSchemaVersion, Tolerance: opt.Tolerance}
	d.compareSpans(base, next, opt)
	d.compareCounters(base, next, opt)
	d.compareHistograms(base, next, opt)
	for _, dl := range d.Deltas {
		if dl.Regressed {
			d.Regressions++
		}
	}
	return d
}

func (d *Diff) compareSpans(base, next *obs.Report, opt Options) {
	baseAgg := map[string]int64{}
	var order []string
	for _, a := range base.AggregateSpans() {
		baseAgg[a.Name] = a.TotalNS
		order = append(order, a.Name)
	}
	nextAgg := map[string]int64{}
	var nextOrder []string
	for _, a := range next.AggregateSpans() {
		nextAgg[a.Name] = a.TotalNS
		nextOrder = append(nextOrder, a.Name)
	}
	for _, name := range order {
		b := baseAgg[name]
		n, ok := nextAgg[name]
		if !ok {
			d.Deltas = append(d.Deltas, Delta{Kind: "span", Name: name, Base: float64(b), New: -1, Note: "base-only"})
			continue
		}
		dl := makeDelta("span", name, float64(b), float64(n), opt.Tolerance)
		if dl.Regressed && b < opt.SpanFloorNS {
			dl.Regressed = false
			dl.Note = "below-floor"
		}
		d.Deltas = append(d.Deltas, dl)
	}
	for _, name := range nextOrder {
		if _, ok := baseAgg[name]; !ok {
			d.Deltas = append(d.Deltas, Delta{Kind: "span", Name: name, Base: -1, New: float64(nextAgg[name]), Note: "new-only"})
		}
	}
}

func (d *Diff) compareCounters(base, next *obs.Report, opt Options) {
	for _, name := range sortedKeys(base.Counters) {
		b := base.Counters[name]
		n, ok := next.Counters[name]
		if !ok {
			d.Deltas = append(d.Deltas, Delta{Kind: "counter", Name: name, Base: float64(b), New: -1, Note: "base-only"})
			continue
		}
		d.Deltas = append(d.Deltas, makeDelta("counter", name, float64(b), float64(n), opt.Tolerance))
	}
	for _, name := range sortedKeys(next.Counters) {
		if _, ok := base.Counters[name]; !ok {
			d.Deltas = append(d.Deltas, Delta{Kind: "counter", Name: name, Base: -1, New: float64(next.Counters[name]), Note: "new-only"})
		}
	}
}

func (d *Diff) compareHistograms(base, next *obs.Report, opt Options) {
	for _, name := range sortedKeys(base.Histograms) {
		bh := base.Histograms[name]
		nh, ok := next.Histograms[name]
		if !ok {
			d.Deltas = append(d.Deltas, Delta{Kind: "histogram", Name: name, Base: histMean(bh), New: -1, Note: "base-only"})
			continue
		}
		if bh.Count == 0 && nh.Count == 0 {
			continue // both empty: nothing to compare
		}
		d.Deltas = append(d.Deltas, makeDelta("histogram", name, histMean(bh), histMean(nh), opt.Tolerance))
	}
	for _, name := range sortedKeys(next.Histograms) {
		if _, ok := base.Histograms[name]; !ok && next.Histograms[name].Count > 0 {
			d.Deltas = append(d.Deltas, Delta{Kind: "histogram", Name: name, Base: -1, New: histMean(next.Histograms[name]), Note: "new-only"})
		}
	}
}

func makeDelta(kind, name string, b, n, tol float64) Delta {
	dl := Delta{Kind: kind, Name: name, Base: b, New: n}
	if b > 0 {
		dl.Change = (n - b) / b
		dl.Regressed = dl.Change > tol
	} else if n > 0 {
		// Grew from zero: flag it — a cost appearing out of nowhere is
		// exactly what a regression gate exists to catch.
		dl.Change = 1
		dl.Regressed = true
	}
	return dl
}

func histMean(h obs.HistogramSnapshot) float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the human-readable table: regressed and changed rows
// always, unchanged rows only with all=true.
func (d *Diff) WriteText(out io.Writer, all bool) {
	fmt.Fprintf(out, "%-10s %-32s %14s %14s %9s\n", "kind", "name", "base", "new", "change")
	shown := 0
	for _, dl := range d.Deltas {
		if !all && !dl.Regressed && dl.Note == "" && dl.Change == 0 {
			continue
		}
		mark := ""
		if dl.Regressed {
			mark = "  << REGRESSED"
		} else if dl.Note != "" {
			mark = "  (" + dl.Note + ")"
		}
		fmt.Fprintf(out, "%-10s %-32s %14s %14s %8.1f%%%s\n",
			dl.Kind, dl.Name, fmtVal(dl.Base), fmtVal(dl.New), dl.Change*100, mark)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(out, "(no differences)")
	}
	if d.Regressions > 0 {
		fmt.Fprintf(out, "\n%d regression(s) beyond +%.0f%% tolerance\n", d.Regressions, d.Tolerance*100)
	} else {
		fmt.Fprintf(out, "\nok: within +%.0f%% tolerance\n", d.Tolerance*100)
	}
}

func fmtVal(v float64) string {
	if v < 0 {
		return "-"
	}
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
