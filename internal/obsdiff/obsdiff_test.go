package obsdiff

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"subsim/internal/obs"
)

func mustLoad(t *testing.T, path string) *obs.Report {
	t.Helper()
	r, err := LoadReport(path)
	if err != nil {
		t.Fatalf("LoadReport(%s): %v", path, err)
	}
	return r
}

func TestSelfCompareIsClean(t *testing.T) {
	base := mustLoad(t, "testdata/base.json")
	d := Compare(base, base, Options{Tolerance: 0.15, SpanFloorNS: 1e6})
	if d.Regressions != 0 {
		t.Fatalf("self-compare found %d regressions: %+v", d.Regressions, d.Deltas)
	}
	for _, dl := range d.Deltas {
		if dl.Change != 0 {
			t.Errorf("self-compare delta %s/%s has change %v", dl.Kind, dl.Name, dl.Change)
		}
	}
}

func TestRegressedFixtureFails(t *testing.T) {
	base := mustLoad(t, "testdata/base.json")
	next := mustLoad(t, "testdata/regressed.json")
	d := Compare(base, next, Options{Tolerance: 0.15, SpanFloorNS: 1e6})

	want := map[string]bool{ // kind/name -> must be regressed
		"span/opimc":                      true,
		"span/sampling":                   true,
		"span/round-1":                    false, // +12.5% inside tolerance
		"span/selection":                  false, // +10% inside tolerance
		"span/bound-check":                false, // +80% but below the 1ms floor
		"counter/rr_edges_examined_total": true,
		"histogram/rr_edges_per_set":      true,
		"histogram/rr_size":               false,
	}
	got := map[string]bool{}
	for _, dl := range d.Deltas {
		got[dl.Kind+"/"+dl.Name] = dl.Regressed
	}
	for key, regressed := range want {
		v, ok := got[key]
		if !ok {
			t.Errorf("missing delta %s", key)
			continue
		}
		if v != regressed {
			t.Errorf("%s: regressed=%v, want %v", key, v, regressed)
		}
	}
	if d.Regressions != 4 {
		t.Errorf("Regressions = %d, want 4", d.Regressions)
	}

	// The floor exemption must be annotated.
	for _, dl := range d.Deltas {
		if dl.Kind == "span" && dl.Name == "bound-check" && dl.Note != "below-floor" {
			t.Errorf("bound-check note = %q, want below-floor", dl.Note)
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	var buf bytes.Buffer
	if code := Run([]string{"testdata/base.json", "testdata/base.json"}, &buf); code != 0 {
		t.Fatalf("self-compare exit = %d, want 0\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "ok: within") {
		t.Errorf("missing ok summary in:\n%s", buf.String())
	}

	buf.Reset()
	if code := Run([]string{"testdata/base.json", "testdata/regressed.json"}, &buf); code != 1 {
		t.Fatalf("regressed compare exit = %d, want 1\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED marker in:\n%s", buf.String())
	}

	buf.Reset()
	if code := Run([]string{"testdata/base.json"}, &buf); code != 2 {
		t.Fatalf("missing-arg exit = %d, want 2", code)
	}
	buf.Reset()
	if code := Run([]string{"testdata/base.json", "testdata/nosuch.json"}, &buf); code != 2 {
		t.Fatalf("missing-file exit = %d, want 2", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if code := Run([]string{"-json", "testdata/base.json", "testdata/regressed.json"}, &buf); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var d Diff
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if d.Schema != DiffSchema || d.Version != DiffSchemaVersion {
		t.Errorf("schema = %q v%d, want %q v%d", d.Schema, d.Version, DiffSchema, DiffSchemaVersion)
	}
	if d.Regressions != 4 {
		t.Errorf("Regressions = %d, want 4", d.Regressions)
	}
}

func TestSchemaValidation(t *testing.T) {
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"schema":"other","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(bad); err == nil {
		t.Fatal("LoadReport accepted wrong schema")
	}
	badVer := t.TempDir() + "/badver.json"
	if err := os.WriteFile(badVer, []byte(`{"schema":"subsim.run-report","version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(badVer); err == nil {
		t.Fatal("LoadReport accepted wrong version")
	}
}
