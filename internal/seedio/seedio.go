// Package seedio reads and writes seed sets — the small lists of node
// identifiers that influence-maximization runs produce and evaluation
// tools consume. The on-disk format is one decimal node id per line,
// with '#' comments and blank lines ignored, which round-trips through
// standard unix tooling.
package seedio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseList parses a comma-separated list of node ids ("3, 17,42").
func ParseList(list string) ([]int32, error) {
	var seeds []int32
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("seedio: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, int32(v))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("seedio: no seeds given")
	}
	return seeds, nil
}

// Read parses the one-id-per-line format.
func Read(r io.Reader) ([]int32, error) {
	var seeds []int32
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseInt(text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("seedio: line %d: bad seed %q: %v", line, text, err)
		}
		seeds = append(seeds, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("seedio: input holds no seeds")
	}
	return seeds, nil
}

// Write emits the one-id-per-line format.
func Write(w io.Writer, seeds []int32) error {
	bw := bufio.NewWriter(w)
	for _, s := range seeds {
		if _, err := fmt.Fprintln(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile loads a seed file from disk.
func ReadFile(path string) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile saves a seed set to disk.
func WriteFile(path string, seeds []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, seeds); err != nil {
		return err
	}
	return f.Close()
}

// Validate checks every seed lies in [0, n) and reports the first
// offender.
func Validate(seeds []int32, n int) error {
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("seedio: seed %d outside [0,%d)", s, n)
		}
	}
	return nil
}
