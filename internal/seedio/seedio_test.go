package seedio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseList(t *testing.T) {
	seeds, err := ParseList(" 3, 17,42 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 17, 42}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("got %v", seeds)
		}
	}
	if _, err := ParseList(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseList("1,x"); err == nil {
		t.Error("junk accepted")
	}
	if _, err := ParseList("1,,2"); err != nil {
		t.Errorf("empty field should be skipped: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	seeds := []int32{5, 0, 999999}
	var buf bytes.Buffer
	if err := Write(&buf, seeds); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seeds) {
		t.Fatalf("got %v", got)
	}
	for i := range seeds {
		if got[i] != seeds[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestReadCommentsAndErrors(t *testing.T) {
	got, err := Read(strings.NewReader("# header\n\n7\n  8 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("got %v", got)
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader("abc\n")); err == nil {
		t.Error("junk line accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seeds.txt")
	seeds := []int32{1, 2, 3}
	if err := WriteFile(path, seeds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int32{0, 4}, 5); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]int32{5}, 5); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if err := Validate([]int32{-1}, 5); err == nil {
		t.Error("negative seed accepted")
	}
}
