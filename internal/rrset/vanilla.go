package rrset

import (
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// Vanilla is the classic RR set generator under the Independent Cascade
// model (paper Algorithm 2): a reverse BFS that flips one coin per
// incoming edge of every activated node. Its expected cost is
// O((m/n)·I({v*})), which SUBSIM improves on; it is retained both as the
// baseline of Figure 2 and as the generator inside the plain HIST
// configuration.
type Vanilla struct {
	t     traversal
	stats Stats
}

// NewVanilla returns a vanilla IC generator over g.
func NewVanilla(g *graph.Graph) *Vanilla {
	return &Vanilla{t: newTraversal(g, 0)}
}

// Graph returns the underlying graph.
func (v *Vanilla) Graph() *graph.Graph { return v.t.g }

// Stats returns the accumulated counters.
func (v *Vanilla) Stats() Stats { return v.stats }

// ResetStats zeroes the counters.
func (v *Vanilla) ResetStats() { v.stats = Stats{} }

// Clone returns an independent generator for another goroutine, sized
// from the parent's observed average RR-set size.
func (v *Vanilla) Clone() Generator {
	return &Vanilla{t: newTraversal(v.t.g, scratchHint(v.stats))}
}

// Generate performs the reverse stochastic BFS from root and returns a
// caller-owned set (compatibility path over the scratch buffer).
func (v *Vanilla) Generate(r *rng.Source, root int32, sentinel []bool) RRSet {
	return v.t.copyOut(v.generate(r, root, sentinel, v.t.scratch[:0]))
}

// GenerateInto appends the RR set of root to the arena — the
// allocation-free hot path.
//
//subsim:hotpath
func (v *Vanilla) GenerateInto(a *Arena, r *rng.Source, root int32, sentinel []bool) []int32 {
	start := a.start()
	a.commit(v.generate(r, root, sentinel, a.data))
	return a.data[start:]
}

// generate runs the reverse stochastic BFS, appending into buf.
//
//subsim:hotpath
func (v *Vanilla) generate(r *rng.Source, root int32, sentinel []bool, buf []int32) []int32 {
	base := len(buf)
	set, done := v.t.begin(root, sentinel, buf)
	if done {
		v.note(len(set) - base)
		return set
	}
	g := v.t.g
	for len(v.t.queue) > 0 {
		u := v.t.queue[len(v.t.queue)-1]
		v.t.queue = v.t.queue[:len(v.t.queue)-1]
		sources, probs := g.InNeighbors(u)
		v.stats.EdgesExamined += int64(len(sources))
		for i, w := range sources {
			if v.t.seen(w) || !r.Bernoulli(probs[i]) {
				continue
			}
			if v.t.activate(w, sentinel, &set) {
				v.note(len(set) - base)
				return set
			}
		}
	}
	v.note(len(set) - base)
	return set
}

func (v *Vanilla) note(size int) {
	v.stats.Sets++
	v.stats.Nodes += int64(size)
	if v.t.hit {
		v.stats.SentinelHits++
	}
}
