package rrset

import (
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// Vanilla is the classic RR set generator under the Independent Cascade
// model (paper Algorithm 2): a reverse BFS that flips one coin per
// incoming edge of every activated node. Its expected cost is
// O((m/n)·I({v*})), which SUBSIM improves on; it is retained both as the
// baseline of Figure 2 and as the generator inside the plain HIST
// configuration.
type Vanilla struct {
	t     traversal
	stats Stats
}

// NewVanilla returns a vanilla IC generator over g.
func NewVanilla(g *graph.Graph) *Vanilla {
	return &Vanilla{t: newTraversal(g)}
}

// Graph returns the underlying graph.
func (v *Vanilla) Graph() *graph.Graph { return v.t.g }

// Stats returns the accumulated counters.
func (v *Vanilla) Stats() Stats { return v.stats }

// ResetStats zeroes the counters.
func (v *Vanilla) ResetStats() { v.stats = Stats{} }

// Clone returns an independent generator for another goroutine.
func (v *Vanilla) Clone() Generator { return NewVanilla(v.t.g) }

// Generate performs the reverse stochastic BFS from root.
func (v *Vanilla) Generate(r *rng.Source, root int32, sentinel []bool) RRSet {
	set, done := v.t.begin(root, sentinel)
	if done {
		v.note(set)
		return set
	}
	g := v.t.g
	for len(v.t.queue) > 0 {
		u := v.t.queue[len(v.t.queue)-1]
		v.t.queue = v.t.queue[:len(v.t.queue)-1]
		sources, probs := g.InNeighbors(u)
		v.stats.EdgesExamined += int64(len(sources))
		for i, w := range sources {
			if v.t.seen(w) || !r.Bernoulli(probs[i]) {
				continue
			}
			if v.t.activate(w, sentinel, &set) {
				v.note(set)
				return set
			}
		}
	}
	v.note(set)
	return set
}

func (v *Vanilla) note(set RRSet) {
	v.stats.Sets++
	v.stats.Nodes += int64(len(set))
	if v.t.hit {
		v.stats.SentinelHits++
	}
}
