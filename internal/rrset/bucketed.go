package rrset

import (
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/sampling"
)

// SubsimBucketed is the general-IC SUBSIM generator backed by the
// preprocessed bucketed subset sampler (paper Lemma 5). Construction
// builds one sampler per node with in-edges — O(m) preprocessing — after
// which activating the in-neighbors of a node costs O(1 + Σp) expected
// (plus O(log d) bucket touches without the jump chain). It trades memory
// and preprocessing for per-sample speed, which is why the paper also
// offers the index-free variant (see Subsim) for sparse graphs.
type SubsimBucketed struct {
	t        traversal
	stats    Stats
	samplers []*sampling.Bucketed // per node; nil for nodes without in-edges
}

// NewSubsimBucketed builds the per-node samplers over g. When jump is
// true the bucket-jump chain is built as well, removing the O(log d)
// bucket-touch term at the price of O(log² d) extra preprocessing per
// node.
func NewSubsimBucketed(g *graph.Graph, jump bool) *SubsimBucketed {
	sb := &SubsimBucketed{
		t:        newTraversal(g, 0),
		samplers: make([]*sampling.Bucketed, g.N()),
	}
	for v := int32(0); v < int32(g.N()); v++ {
		_, probs := g.InNeighbors(v)
		if len(probs) == 0 {
			continue
		}
		if jump {
			sb.samplers[v] = sampling.NewBucketedJump(probs)
		} else {
			sb.samplers[v] = sampling.NewBucketed(probs)
		}
	}
	return sb
}

// Graph returns the underlying graph.
func (sb *SubsimBucketed) Graph() *graph.Graph { return sb.t.g }

// Stats returns the accumulated counters.
func (sb *SubsimBucketed) Stats() Stats { return sb.stats }

// ResetStats zeroes the counters.
func (sb *SubsimBucketed) ResetStats() { sb.stats = Stats{} }

// Clone returns an independent generator sharing the (immutable) per-node
// samplers, with scratch sized from the parent's observed average RR-set
// size.
func (sb *SubsimBucketed) Clone() Generator {
	return &SubsimBucketed{
		t:        newTraversal(sb.t.g, scratchHint(sb.stats)),
		samplers: sb.samplers,
	}
}

// Generate performs the reverse traversal with bucketed in-neighbor
// subset sampling and returns a caller-owned set (compatibility path).
func (sb *SubsimBucketed) Generate(r *rng.Source, root int32, sentinel []bool) RRSet {
	return sb.t.copyOut(sb.generate(r, root, sentinel, sb.t.scratch[:0]))
}

// GenerateInto appends the RR set of root to the arena — the
// allocation-free hot path.
//
//subsim:hotpath
func (sb *SubsimBucketed) GenerateInto(a *Arena, r *rng.Source, root int32, sentinel []bool) []int32 {
	start := a.start()
	a.commit(sb.generate(r, root, sentinel, a.data))
	return a.data[start:]
}

// generate runs the reverse traversal with bucketed subset sampling,
// appending into buf.
//
//subsim:hotpath
func (sb *SubsimBucketed) generate(r *rng.Source, root int32, sentinel []bool, buf []int32) []int32 {
	base := len(buf)
	set, done := sb.t.begin(root, sentinel, buf)
	if done {
		sb.note(len(set) - base)
		return set
	}
	g := sb.t.g
	for len(sb.t.queue) > 0 {
		u := sb.t.queue[len(sb.t.queue)-1]
		sb.t.queue = sb.t.queue[:len(sb.t.queue)-1]
		sampler := sb.samplers[u]
		if sampler == nil {
			continue
		}
		sources, _ := g.InNeighbors(u)
		stop := false
		sb.stats.EdgesExamined++
		//lint:allow alloc (yield closure per activated node; escape analysis keeps it off the heap when Sample does not retain it)
		sampler.Sample(r, func(i int) bool {
			sb.stats.EdgesExamined++
			w := sources[i]
			if sb.t.seen(w) {
				return true
			}
			if sb.t.activate(w, sentinel, &set) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			break
		}
	}
	sb.note(len(set) - base)
	return set
}

func (sb *SubsimBucketed) note(size int) {
	sb.stats.Sets++
	sb.stats.Nodes += int64(size)
	if sb.t.hit {
		sb.stats.SentinelHits++
	}
}
