package rrset

import (
	"testing"

	"subsim/internal/graph"
)

// TestScratchHintColdStart pins the scratch-sizing policy, cold start
// first: with no observed sets the hint must be the documented default,
// never zero (a zero hint would make every fresh clone eat log2(size)
// queue reallocations on its first traversal).
func TestScratchHintColdStart(t *testing.T) {
	if got := scratchHint(Stats{}); got != defaultScratchCap {
		t.Errorf("cold start hint = %d, want defaultScratchCap %d", got, defaultScratchCap)
	}
	// Warm: 1.5× the observed average plus one.
	if got := scratchHint(Stats{Sets: 10, Nodes: 1000}); got != 151 {
		t.Errorf("avg=100 hint = %d, want 151", got)
	}
	// Tiny averages floor at the default rather than undershooting it.
	if got := scratchHint(Stats{Sets: 10, Nodes: 20}); got != defaultScratchCap {
		t.Errorf("avg=2 hint = %d, want floor %d", got, defaultScratchCap)
	}
	// Pathological early samples cap at maxScratchHint.
	if got := scratchHint(Stats{Sets: 1, Nodes: 1 << 20}); got != maxScratchHint {
		t.Errorf("avg=2^20 hint = %d, want cap %d", got, maxScratchHint)
	}
}

// TestNewTraversalColdStart checks the traversal constructor honours the
// hint and defends against non-positive ones.
func TestNewTraversalColdStart(t *testing.T) {
	g := graph.GenLine(10, 1)
	for _, tc := range []struct{ hint, want int }{
		{0, defaultScratchCap}, {-5, defaultScratchCap}, {100, 100},
	} {
		tr := newTraversal(g, tc.hint)
		if cap(tr.queue) != tc.want {
			t.Errorf("newTraversal(hint=%d): queue cap %d, want %d", tc.hint, cap(tr.queue), tc.want)
		}
	}
}

// TestCloneScratchSizing: a cold clone inherits the default, a warmed
// parent's clone inherits the data-driven hint.
func TestCloneScratchSizing(t *testing.T) {
	g := graph.GenLine(200, 1)
	gen := NewSubsim(g)
	cold := gen.Clone().(*Subsim)
	if got := cap(cold.t.queue); got != defaultScratchCap {
		t.Errorf("cold clone queue cap = %d, want %d", got, defaultScratchCap)
	}
	// Fake a warmed parent whose average exceeds the default floor.
	gen.stats = Stats{Sets: 4, Nodes: 400}
	warm := gen.Clone().(*Subsim)
	if got, want := cap(warm.t.queue), scratchHint(gen.stats); got != want {
		t.Errorf("warm clone queue cap = %d, want %d", got, want)
	}
}
