package rrset

import (
	"time"

	"subsim/internal/graph"
	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
	"subsim/internal/rng"
)

// Instrumented wraps a Generator and streams per-set observations into
// an obs.MetricSet: the RR-size and edges-per-set histograms, the
// running totals, the sentinel-hit counter, and (when the wrapped
// generator supports it) the geometric-skip-length histogram. The
// wrapper keeps generator code clean — generators only maintain their
// plain Stats counters — and costs two Stats copies plus a handful of
// atomic adds per generated set, which is negligible against a reverse
// BFS.
//
// Like the generators it wraps, an Instrumented is not safe for
// concurrent use; Clone produces an independent wrapper sharing the
// (concurrency-safe) metric set.
type Instrumented struct {
	gen        Generator
	m          *obs.MetricSet
	workerSets *obs.Counter
	workerBusy *obs.Counter
	ring       *timeline.Ring
}

// skipInstrumentable is implemented by generators that can observe their
// geometric skip lengths into a histogram (currently Subsim).
type skipInstrumentable interface {
	setSkipHistogram(*obs.Histogram)
}

// Instrument wraps gen so every generated set is observed into m, with
// per-Generate increments on workerSets when non-nil (the Batcher passes
// one counter per worker). A nil m returns gen unchanged — the disabled
// path has literally zero overhead, which is what the nil-tracer
// contract promises and BenchmarkInstrumentedGenerate checks.
func Instrument(gen Generator, m *obs.MetricSet, workerSets *obs.Counter) Generator {
	if m == nil {
		return gen
	}
	if si, ok := gen.(skipInstrumentable); ok {
		si.setSkipHistogram(&m.SkipLen)
	}
	return &Instrumented{gen: gen, m: m, workerSets: workerSets}
}

// InstrumentWorker is Instrument wired for worker w of a batcher: the
// per-worker sets counter plus the per-worker busy-time counter that
// feeds the live telemetry plane's worker-utilization gauge, plus —
// when the metric set carries a timeline — worker w's interval ring, so
// every generated set leaves a [start,end] record on the worker's
// timeline track. Timing each set costs two clock reads, which only the
// batcher's worker loops — where a set is a full reverse BFS — opt
// into; the plain Instrument path stays clock-free.
func InstrumentWorker(gen Generator, m *obs.MetricSet, w int) Generator {
	if m == nil {
		return gen
	}
	ig := Instrument(gen, m, m.WorkerSets(w)).(*Instrumented)
	ig.workerBusy = m.WorkerBusyNS(w)
	ig.ring = m.TimelineRing(w)
	return ig
}

// Generate delegates to the wrapped generator and records the per-set
// deltas of its counters. When a timeline ring is attached the busy time
// is read off the ring's lock-free clock and the interval lands on the
// worker's timeline track too; otherwise the plain wall clock feeds the
// busy counter alone.
func (ig *Instrumented) Generate(r *rng.Source, root int32, sentinel []bool) RRSet {
	before := ig.gen.Stats()
	if ig.ring != nil {
		t0 := ig.ring.Now()
		set := ig.gen.Generate(r, root, sentinel)
		t1 := ig.ring.Now()
		ig.workerBusy.Add(t1 - t0)
		ig.ring.Record(timeline.PhaseGenerate, t0, t1)
		ig.observe(before, int64(len(set)))
		return set
	}
	var t0 time.Time
	if ig.workerBusy != nil {
		t0 = time.Now() //lint:allow timing (per-worker busy-time metric, observability only)
	}
	set := ig.gen.Generate(r, root, sentinel)
	if ig.workerBusy != nil {
		ig.workerBusy.Add(time.Since(t0).Nanoseconds()) //lint:allow timing (per-worker busy-time metric, observability only)
	}
	ig.observe(before, int64(len(set)))
	return set
}

// GenerateInto delegates to the wrapped generator's arena path and
// records the per-set deltas of its counters.
//
//subsim:hotpath
func (ig *Instrumented) GenerateInto(a *Arena, r *rng.Source, root int32, sentinel []bool) []int32 {
	before := ig.gen.Stats()
	if ig.ring != nil {
		t0 := ig.ring.Now()
		set := ig.gen.GenerateInto(a, r, root, sentinel)
		t1 := ig.ring.Now()
		ig.workerBusy.Add(t1 - t0)
		ig.ring.Record(timeline.PhaseGenerate, t0, t1)
		ig.observe(before, int64(len(set)))
		return set
	}
	var t0 time.Time
	if ig.workerBusy != nil {
		t0 = time.Now() //lint:allow timing (per-worker busy-time metric, observability only)
	}
	set := ig.gen.GenerateInto(a, r, root, sentinel)
	if ig.workerBusy != nil {
		ig.workerBusy.Add(time.Since(t0).Nanoseconds()) //lint:allow timing (per-worker busy-time metric, observability only)
	}
	ig.observe(before, int64(len(set)))
	return set
}

func (ig *Instrumented) observe(before Stats, size int64) {
	after := ig.gen.Stats()
	m := ig.m
	edges := after.EdgesExamined - before.EdgesExamined
	m.RRSize.Observe(size)
	m.EdgesPerSet.Observe(edges)
	m.Sets.Inc()
	m.Nodes.Add(size)
	m.Edges.Add(edges)
	if after.SentinelHits > before.SentinelHits {
		m.SentinelHits.Inc()
	}
	ig.workerSets.Inc()
}

// Graph returns the wrapped generator's graph.
func (ig *Instrumented) Graph() *graph.Graph { return ig.gen.Graph() }

// Stats returns the wrapped generator's counters.
func (ig *Instrumented) Stats() Stats { return ig.gen.Stats() }

// ResetStats zeroes the wrapped generator's counters (the metric set is
// cumulative across the run and is left untouched).
func (ig *Instrumented) ResetStats() { ig.gen.ResetStats() }

// Clone wraps a clone of the inner generator against the same metric
// set, worker counters and timeline ring. Ring sharing is safe because a
// clone replaces — never runs beside — its original on the owning
// worker, preserving the ring's single-writer discipline.
func (ig *Instrumented) Clone() Generator {
	c := Instrument(ig.gen.Clone(), ig.m, ig.workerSets).(*Instrumented)
	c.workerBusy = ig.workerBusy
	c.ring = ig.ring
	return c
}

// Unwrap returns the wrapped generator, for callers that need the
// concrete type.
func (ig *Instrumented) Unwrap() Generator { return ig.gen }
