package rrset

import (
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// LT generates RR sets under the Linear Threshold model. Because an LT
// node is activated by at most one in-neighbor (the live-edge
// formulation picks one incoming edge with probability p(u,v), or none
// with the residual probability), the reverse sample is a random walk:
// from the current node, pick one in-neighbor proportionally to edge
// weight or stop, and terminate on a revisit. The walk's cost per step is
// O(1) when a node's incoming weights are equal (the WC-based LT setting
// used in the experiments) and O(d) via prefix scan otherwise — in both
// cases the cost to "sample an edge" is proportional to its weight, which
// is why Section 3.2's tightened bound applies to LT with no algorithmic
// change.
type LT struct {
	t     traversal
	stats Stats
	sumIn []float64 // Σ p(u,v) per node, cached
}

// NewLT returns an LT generator over g. The incoming weights of every
// node must sum to at most 1 (graph.AssignLT guarantees exactly 1).
func NewLT(g *graph.Graph) *LT {
	lt := &LT{
		t:     newTraversal(g, 0),
		sumIn: make([]float64, g.N()),
	}
	for v := int32(0); v < int32(g.N()); v++ {
		lt.sumIn[v] = g.SumInWeights(v)
	}
	return lt
}

// Graph returns the underlying graph.
func (lt *LT) Graph() *graph.Graph { return lt.t.g }

// Stats returns the accumulated counters.
func (lt *LT) Stats() Stats { return lt.stats }

// ResetStats zeroes the counters.
func (lt *LT) ResetStats() { lt.stats = Stats{} }

// Clone returns an independent generator sharing the cached weight sums,
// with scratch sized from the parent's observed average RR-set size.
func (lt *LT) Clone() Generator {
	return &LT{t: newTraversal(lt.t.g, scratchHint(lt.stats)), sumIn: lt.sumIn}
}

// Generate performs the reverse random walk from root and returns a
// caller-owned set (compatibility path).
func (lt *LT) Generate(r *rng.Source, root int32, sentinel []bool) RRSet {
	return lt.t.copyOut(lt.generate(r, root, sentinel, lt.t.scratch[:0]))
}

// GenerateInto appends the RR set of root to the arena — the
// allocation-free hot path.
//
//subsim:hotpath
func (lt *LT) GenerateInto(a *Arena, r *rng.Source, root int32, sentinel []bool) []int32 {
	start := a.start()
	a.commit(lt.generate(r, root, sentinel, a.data))
	return a.data[start:]
}

// generate runs the reverse random walk, appending into buf.
//
//subsim:hotpath
func (lt *LT) generate(r *rng.Source, root int32, sentinel []bool, buf []int32) []int32 {
	base := len(buf)
	set, done := lt.t.begin(root, sentinel, buf)
	if done {
		lt.note(len(set) - base)
		return set
	}
	g := lt.t.g
	cur := root
	for {
		sources, probs := g.InNeighbors(cur)
		if len(sources) == 0 {
			break
		}
		sum := lt.sumIn[cur]
		if sum <= 0 {
			break
		}
		var next int32 = -1
		if p, _, ok := g.UniformInProb(cur); ok {
			// Equal weights: stop with probability 1-sum, otherwise a
			// uniform in-neighbor. One random draw, O(1).
			lt.stats.EdgesExamined++
			u := r.Float64()
			if u >= sum {
				break
			}
			idx := int(u / p)
			if idx >= len(sources) { // numeric slack at the boundary
				idx = len(sources) - 1
			}
			next = sources[idx]
		} else {
			// General weights: inverse-transform over the prefix sums.
			u := r.Float64()
			if u >= sum {
				lt.stats.EdgesExamined++
				break
			}
			acc := 0.0
			for i, p := range probs {
				lt.stats.EdgesExamined++
				acc += p
				if u < acc {
					next = sources[i]
					break
				}
			}
			if next < 0 { // numeric slack at the boundary
				next = sources[len(sources)-1]
			}
		}
		if lt.t.seen(next) {
			break
		}
		if lt.t.activate(next, sentinel, &set) {
			break
		}
		cur = next
	}
	lt.note(len(set) - base)
	return set
}

func (lt *LT) note(size int) {
	lt.stats.Sets++
	lt.stats.Nodes += int64(size)
	if lt.t.hit {
		lt.stats.SentinelHits++
	}
}
