package rrset

import (
	"math"

	"subsim/internal/graph"
	"subsim/internal/obs"
	"subsim/internal/rng"
)

// Subsim is the paper's RR set generator (Algorithm 3, extended to
// general IC in Section 3.3). When the graph offers equal per-node
// incoming probabilities (WC, WC variant, Uniform IC), activating the
// in-neighbors of a node costs O(1 + Σp) expected via geometric skip
// sampling. For skewed weights the generator uses the index-free sorted
// sampler, which requires the graph's in-edges to be sorted by descending
// probability (Graph.SortInEdges); NewSubsim performs the sort when
// needed.
//
// Two engineering refinements over the paper's pseudocode, both
// distribution-preserving:
//
//   - log1p(-p) for every bucket head is precomputed once at
//     construction (O(m) time, O(n log d) memory, shared by all clones),
//     so no logarithm is recomputed in the hot loop;
//   - the first landing in a scan region of s slots is drawn by inverse
//     transform from a single uniform u: no landing iff u ≥ 1-(1-p)^s (a
//     precomputed threshold), otherwise the landing position is
//     ⌈log1p(-u)/log1p(-p)⌉. Untouched nodes and buckets — the common
//     case — therefore cost one comparison instead of one logarithm,
//     which is where the classic per-bucket log-h overhead went.
type Subsim struct {
	t     traversal
	stats Stats
	// buckets[v] describes node v's descending-sorted in-edge buckets
	// (bucket j spans 1-indexed positions [2^j, 2^{j+1})). Nil when the
	// graph offers the equal-probability fast path.
	buckets [][]bucketInfo
	// skipHist, when non-nil, observes every geometric skip length drawn
	// in the hot loop; wired by rrset.Instrument. The nil check is one
	// predictable branch per skip, so the disabled path stays free.
	skipHist *obs.Histogram
}

// setSkipHistogram attaches the geometric-skip-length histogram; called
// by Instrument when metrics are enabled.
func (s *Subsim) setSkipHistogram(h *obs.Histogram) { s.skipHist = h }

// bucketInfo caches, per position bucket, the geometric-skip denominator
// for the bucket head and the probability that the bucket yields at
// least one landing.
type bucketInfo struct {
	logHead float64 // log1p(-head); -Inf when head >= 1
	touched float64 // 1 - (1-head)^size
}

// NewSubsim returns a SUBSIM generator over g. If g has skewed weights
// and unsorted in-edges, they are sorted in place (a one-time O(m log n)
// preprocessing shared by all clones).
func NewSubsim(g *graph.Graph) *Subsim {
	s := &Subsim{t: newTraversal(g, 0)}
	if !g.UniformIn() {
		g.SortInEdges()
		s.buckets = buildBucketInfo(g)
	}
	return s
}

func buildBucketInfo(g *graph.Graph) [][]bucketInfo {
	infos := make([][]bucketInfo, g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		_, probs := g.InNeighbors(v)
		if len(probs) == 0 {
			continue
		}
		var row []bucketInfo
		for start := 1; start <= len(probs); start *= 2 {
			end := start * 2
			if end > len(probs)+1 {
				end = len(probs) + 1
			}
			head := probs[start-1]
			var bi bucketInfo
			switch {
			case head >= 1:
				bi = bucketInfo{logHead: math.Inf(-1), touched: 1}
			case head > 0:
				logHead := math.Log1p(-head)
				bi = bucketInfo{
					logHead: logHead,
					touched: -math.Expm1(float64(end-start) * logHead),
				}
			default:
				bi = bucketInfo{} // touched 0: the scan stops here
			}
			row = append(row, bi)
		}
		infos[v] = row
	}
	return infos
}

// Graph returns the underlying graph.
func (s *Subsim) Graph() *graph.Graph { return s.t.g }

// Stats returns the accumulated counters.
func (s *Subsim) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *Subsim) ResetStats() { s.stats = Stats{} }

// Clone returns an independent generator for another goroutine, sharing
// the immutable precomputed bucket tables and the (concurrency-safe)
// skip histogram; scratch is sized from the parent's observed average
// RR-set size.
func (s *Subsim) Clone() Generator {
	return &Subsim{
		t:        newTraversal(s.t.g, scratchHint(s.stats)),
		buckets:  s.buckets,
		skipHist: s.skipHist,
	}
}

// Generate performs the reverse traversal with subset-sampled in-neighbor
// activation and returns a caller-owned set (compatibility path).
func (s *Subsim) Generate(r *rng.Source, root int32, sentinel []bool) RRSet {
	return s.t.copyOut(s.generate(r, root, sentinel, s.t.scratch[:0]))
}

// GenerateInto appends the RR set of root to the arena — the
// allocation-free hot path.
//
//subsim:hotpath
func (s *Subsim) GenerateInto(a *Arena, r *rng.Source, root int32, sentinel []bool) []int32 {
	start := a.start()
	a.commit(s.generate(r, root, sentinel, a.data))
	return a.data[start:]
}

// generate dispatches to the uniform or sorted traversal, appending
// into buf.
//
//subsim:hotpath
func (s *Subsim) generate(r *rng.Source, root int32, sentinel []bool, buf []int32) []int32 {
	base := len(buf)
	set, done := s.t.begin(root, sentinel, buf)
	if done {
		s.note(len(set) - base)
		return set
	}
	g := s.t.g
	if g.UniformIn() {
		s.generateUniform(r, g, sentinel, &set)
	} else {
		s.generateSorted(r, g, sentinel, &set)
	}
	s.note(len(set) - base)
	return set
}

// firstLanding converts a uniform u < touched into the 1-indexed position
// of the first landing of a Bernoulli(p) scan, clamped to [1, size].
//
//subsim:hotpath
func firstLanding(u, logHead float64, size int64) int64 {
	if math.IsInf(logHead, -1) {
		return 1
	}
	x := int64(math.Ceil(math.Log1p(-u) / logHead))
	if x < 1 {
		return 1
	}
	if x > size {
		return size
	}
	return x
}

// generateUniform is the Algorithm 3 fast path: one geometric skip stream
// per activated node, entered only when a single uniform says the node's
// in-neighbor scan produces at least one landing.
//
//subsim:hotpath
func (s *Subsim) generateUniform(r *rng.Source, g *graph.Graph, sentinel []bool, set *[]int32) {
	for len(s.t.queue) > 0 {
		u := s.t.queue[len(s.t.queue)-1]
		s.t.queue = s.t.queue[:len(s.t.queue)-1]
		sources, _ := g.InNeighbors(u)
		if len(sources) == 0 {
			continue
		}
		s.stats.EdgesExamined++
		u0 := r.Float64()
		touched := g.UniformInTouched(u)
		if u0 >= touched {
			continue
		}
		_, logP, _ := g.UniformInProb(u)
		h := int64(len(sources))
		pos := firstLanding(u0, logP, h) - 1
		for {
			s.stats.EdgesExamined++
			w := sources[pos]
			if !s.t.seen(w) {
				if s.t.activate(w, sentinel, set) {
					return
				}
			}
			skip := r.GeometricFromLog(logP)
			if hist := s.skipHist; hist != nil {
				hist.Observe(skip)
			}
			if skip >= h-pos {
				break
			}
			pos += skip
		}
	}
}

// generateSorted is the Section 3.3 index-free general-IC path over
// descending-sorted in-edges, with per-bucket first-landing shortcuts.
//
//subsim:hotpath
func (s *Subsim) generateSorted(r *rng.Source, g *graph.Graph, sentinel []bool, set *[]int32) {
	for len(s.t.queue) > 0 {
		u := s.t.queue[len(s.t.queue)-1]
		s.t.queue = s.t.queue[:len(s.t.queue)-1]
		sources, probs := g.InNeighbors(u)
		if len(sources) == 0 {
			continue
		}
		row := s.buckets[u]
		h := len(sources)
		s.stats.EdgesExamined++
		for j, start := 0, 1; start <= h; j, start = j+1, start*2 {
			bi := row[j]
			if bi.touched <= 0 {
				break // descending order: nothing further can be sampled
			}
			u0 := r.Float64()
			if u0 >= bi.touched {
				continue
			}
			end := start * 2
			if end > h+1 {
				end = h + 1
			}
			head := probs[start-1]
			pos := int64(start-1) + firstLanding(u0, bi.logHead, int64(end-start))
			for {
				s.stats.EdgesExamined++
				// Thin the Geometric(head) stream down to the true
				// probability of the landed position.
				if p := probs[pos-1]; p >= head || r.Float64()*head < p {
					w := sources[pos-1]
					if !s.t.seen(w) {
						if s.t.activate(w, sentinel, set) {
							return
						}
					}
				}
				skip := r.GeometricFromLog(bi.logHead)
				if hist := s.skipHist; hist != nil {
					hist.Observe(skip)
				}
				if skip >= int64(end)-pos {
					break
				}
				pos += skip
			}
		}
	}
}

func (s *Subsim) note(size int) {
	s.stats.Sets++
	s.stats.Nodes += int64(size)
	if s.t.hit {
		s.stats.SentinelHits++
	}
}
