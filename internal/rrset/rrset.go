// Package rrset implements random reverse-reachable (RR) set generation,
// the key phase of all sampling-based influence-maximization algorithms
// and the subject of the paper's contribution.
//
// An RR set for a target node v under the Independent Cascade model is
// the set of nodes that reach v in a random subgraph where each edge
// (u,w) survives independently with probability p(u,w); it is produced by
// a reverse breadth-first traversal that activates in-neighbors
// stochastically. The package provides:
//
//   - Vanilla (paper Algorithm 2): one coin flip per incoming edge.
//   - Subsim (paper Algorithm 3): geometric skip sampling over the
//     in-neighbor list when a node's incoming probabilities are equal
//     (WC, WC variant, Uniform IC), falling back to the index-free
//     sorted sampler for general weights.
//   - SubsimBucketed: the preprocessed general-IC sampler of Lemma 5,
//     optionally with the bucket-jump chain.
//   - LT: the linear-threshold generator (a reverse random walk).
//
// Every generator accepts an optional sentinel set: the traversal stops
// the moment a sentinel node is activated (paper Algorithm 5,
// "RR set-with-Sentinel"), which is what makes HIST's second phase cheap.
//
// Generators carry per-instance scratch buffers and statistics and are
// therefore NOT safe for concurrent use; call Clone to obtain an
// independent generator per goroutine.
package rrset

import (
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// RRSet is one reverse-reachable sample: the distinct nodes that reach
// the target, target first. The order of the remaining nodes follows the
// traversal and is not significant.
type RRSet []int32

// Stats accumulates the cost counters the paper reports: the number of
// sets generated, their total size (so Nodes/Sets is the average RR set
// size of Figure 3b), and the number of edge examinations — coin flips
// for the vanilla generator, geometric draws and landings for SUBSIM —
// which is the abstract cost measure of Lemma 4.
type Stats struct {
	Sets          int64
	Nodes         int64
	EdgesExamined int64
	// SentinelHits counts the sets whose traversal was truncated by a
	// sentinel node (including a sentinel root), the directly measurable
	// form of HIST's hit-and-stop behaviour: every hit set is covered by
	// the sentinel seed set S_b.
	SentinelHits int64
}

// AvgSize returns the average RR set size, or 0 before any set has been
// generated.
func (s Stats) AvgSize() float64 {
	if s.Sets == 0 {
		return 0
	}
	return float64(s.Nodes) / float64(s.Sets)
}

// Add merges the counters of other into s.
func (s *Stats) Add(other Stats) {
	s.Sets += other.Sets
	s.Nodes += other.Nodes
	s.EdgesExamined += other.EdgesExamined
	s.SentinelHits += other.SentinelHits
}

// Sub removes the counters of other from s; used to report deltas
// against a baseline snapshot.
func (s *Stats) Sub(other Stats) {
	s.Sets -= other.Sets
	s.Nodes -= other.Nodes
	s.EdgesExamined -= other.EdgesExamined
	s.SentinelHits -= other.SentinelHits
}

// Generator produces random RR sets over a fixed graph.
type Generator interface {
	// Generate returns the RR set of root. A non-nil sentinel (indexed
	// by node) makes the traversal stop as soon as a sentinel node is
	// activated. The returned slice is freshly allocated and owned by
	// the caller. It is the compatibility wrapper over GenerateInto:
	// the set is built in reusable scratch and copied out exact-size.
	Generate(r *rng.Source, root int32, sentinel []bool) RRSet
	// GenerateInto appends the RR set of root to the arena (the hot,
	// allocation-free path) and returns a transient view of it, valid
	// until the arena's next append or Reset.
	GenerateInto(a *Arena, r *rng.Source, root int32, sentinel []bool) []int32
	// Graph returns the graph the generator samples over.
	Graph() *graph.Graph
	// Stats returns the counters accumulated since the last ResetStats.
	Stats() Stats
	// ResetStats zeroes the counters.
	ResetStats()
	// Clone returns a generator with fresh scratch space and zeroed
	// stats for use by another goroutine. Scratch capacity is seeded
	// from the parent's observed average RR-set size.
	Clone() Generator
}

// RandomRoot samples a uniform target node, the first step of random RR
// set construction.
func RandomRoot(r *rng.Source, g *graph.Graph) int32 {
	return int32(r.Intn(g.N()))
}

// GenerateRandom draws a uniform root and returns its RR set.
func GenerateRandom(gen Generator, r *rng.Source, sentinel []bool) RRSet {
	return gen.Generate(r, RandomRoot(r, gen.Graph()), sentinel)
}

// GenerateRandomInto draws a uniform root and appends its RR set to the
// arena, returning a transient view.
//
//subsim:hotpath
func GenerateRandomInto(gen Generator, a *Arena, r *rng.Source, sentinel []bool) []int32 {
	return gen.GenerateInto(a, r, RandomRoot(r, gen.Graph()), sentinel)
}

// defaultScratchCap is the scratch capacity a fresh traversal starts
// with before any RR-set size has been observed. Clones of warmed
// generators size their scratch from the parent's running average
// instead (see scratchHint).
const defaultScratchCap = 32

// maxScratchHint caps data-driven scratch sizing so a pathological early
// sample cannot pin megabytes per worker.
const maxScratchHint = 1 << 16

// scratchHint converts the observed average RR-set size into an initial
// scratch capacity: a little headroom over the mean, clamped to sane
// bounds. This replaces the historical hardcoded capacities (256 for the
// queue, 8 for the set) with sizes learned from the workload itself.
func scratchHint(s Stats) int {
	if s.Sets == 0 {
		return defaultScratchCap
	}
	hint := int(s.AvgSize()*1.5) + 1
	if hint < defaultScratchCap {
		hint = defaultScratchCap
	}
	if hint > maxScratchHint {
		hint = maxScratchHint
	}
	return hint
}

// traversal is the shared reverse-BFS state: an epoch-stamped visited
// array (cleared in O(1) by bumping the epoch), a reusable queue, and a
// reusable scratch buffer for the compatibility Generate path. The hit
// flag records whether the current traversal stopped on a sentinel, so
// generators can count Stats.SentinelHits without threading a return
// value through every traversal path.
type traversal struct {
	g       *graph.Graph
	visited []uint32
	epoch   uint32
	queue   []int32
	scratch []int32 // reused root-set buffer for the compat Generate path
	hit     bool
}

func newTraversal(g *graph.Graph, hint int) traversal {
	if hint <= 0 {
		hint = defaultScratchCap
	}
	return traversal{
		g:       g,
		visited: make([]uint32, g.N()),
		queue:   make([]int32, 0, hint),
	}
}

// begin starts a new traversal from root, appending the root to buf
// (the arena tail on the hot path, the reusable scratch on the compat
// path). If the root itself is a sentinel the RR set is just {root} and
// done is true.
func (t *traversal) begin(root int32, sentinel []bool, buf []int32) (set []int32, done bool) {
	t.epoch++
	if t.epoch == 0 { // wrapped: reset stamps
		for i := range t.visited {
			t.visited[i] = 0
		}
		t.epoch = 1
	}
	t.hit = false
	t.visited[root] = t.epoch
	t.queue = t.queue[:0]
	set = append(buf, root)
	if sentinel != nil && sentinel[root] {
		t.hit = true
		return set, true
	}
	t.queue = append(t.queue, root)
	return set, false
}

// activate marks w visited and appends it to set and queue. It reports
// whether the whole traversal must stop because w is a sentinel.
//
//subsim:hotpath
func (t *traversal) activate(w int32, sentinel []bool, set *[]int32) (stop bool) {
	t.visited[w] = t.epoch
	*set = append(*set, w)
	if sentinel != nil && sentinel[w] {
		t.hit = true
		return true
	}
	t.queue = append(t.queue, w)
	return false
}

func (t *traversal) seen(w int32) bool { return t.visited[w] == t.epoch }

// copyOut returns a caller-owned, exact-size copy of the scratch-built
// set — the single allocation of the compatibility Generate path.
func (t *traversal) copyOut(set []int32) RRSet {
	out := make(RRSet, len(set))
	copy(out, set)
	t.scratch = set[:0] // keep the (possibly grown) buffer for reuse
	return out
}
