package rrset

import (
	"math"
	"testing"

	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// TestLTLineDeterministic: on a line with in-degree 1 and LT (WC)
// weights, every edge weight is 1, so the reverse walk from root collects
// every ancestor deterministically.
func TestLTLineDeterministic(t *testing.T) {
	const n = 9
	g := graph.GenLine(n, 0)
	g.AssignLT()
	gen := NewLT(g)
	r := rng.New(1)
	set := gen.Generate(r, n-1, nil)
	if len(set) != n {
		t.Fatalf("LT line RR set %v", set)
	}
}

// TestLTLemma1 verifies n·Pr[S ∩ R ≠ ∅] ≈ I_LT(S) against forward LT
// simulation.
func TestLTLemma1(t *testing.T) {
	r := rng.New(2)
	g, err := graph.GenErdosRenyi(70, 420, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignLT()
	seeds := []int32{2, 11, 33}
	fwd := diffusion.EstimateParallel(g, seeds, 80000, diffusion.LTModel, 3, 2)
	inSeed := make([]bool, g.N())
	for _, s := range seeds {
		inSeed[s] = true
	}
	gen := NewLT(g)
	rr := rng.New(4)
	const draws = 80000
	covered := 0
	for d := 0; d < draws; d++ {
		set := GenerateRandom(gen, rr, nil)
		for _, v := range set {
			if inSeed[v] {
				covered++
				break
			}
		}
	}
	rev := float64(covered) / draws * float64(g.N())
	if math.Abs(rev-fwd) > 0.05*fwd+1.5 {
		t.Fatalf("LT reverse estimate %v vs forward %v", rev, fwd)
	}
}

// TestLTSkewedWalkDistribution: with a single target of two in-neighbors
// at weights 0.75/0.25, the first walk step picks them 3:1.
func TestLTSkewedWalkDistribution(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 2, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.25); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	gen := NewLT(g)
	r := rng.New(5)
	const draws = 120000
	count0, count1 := 0, 0
	for d := 0; d < draws; d++ {
		set := gen.Generate(r, 2, nil)
		if len(set) < 2 {
			t.Fatalf("walk stopped despite in-sum 1: %v", set)
		}
		switch set[1] {
		case 0:
			count0++
		case 1:
			count1++
		}
	}
	got := float64(count0) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("first step picked node 0 with frequency %v, want 0.75", got)
	}
	_ = count1
}

// TestLTPartialWeightStops: with in-sum 0.5 the walk stops half the time
// at the root.
func TestLTPartialWeightStops(t *testing.T) {
	b := graph.NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	gen := NewLT(g)
	r := rng.New(6)
	const draws = 100000
	extended := 0
	for d := 0; d < draws; d++ {
		if len(gen.Generate(r, 1, nil)) == 2 {
			extended++
		}
	}
	got := float64(extended) / draws
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("walk extended with frequency %v, want 0.5", got)
	}
}

func TestLTSentinel(t *testing.T) {
	const n = 9
	g := graph.GenLine(n, 0)
	g.AssignLT()
	gen := NewLT(g)
	sentinel := make([]bool, n)
	sentinel[4] = true
	r := rng.New(7)
	set := gen.Generate(r, n-1, sentinel)
	if set[len(set)-1] != 4 {
		t.Fatalf("LT walk did not stop at sentinel: %v", set)
	}
	if len(set) != n-4 {
		t.Fatalf("LT sentinel set size %d", len(set))
	}
	// Sentinel root.
	sentinel[n-1] = true
	set = gen.Generate(r, n-1, sentinel)
	if len(set) != 1 {
		t.Fatalf("sentinel root: %v", set)
	}
}

func TestLTCloneAndStats(t *testing.T) {
	g := graph.GenLine(5, 0)
	g.AssignLT()
	gen := NewLT(g)
	r := rng.New(8)
	gen.Generate(r, 4, nil)
	if gen.Stats().Sets != 1 {
		t.Fatal("stats not counted")
	}
	c := gen.Clone()
	if c.Stats().Sets != 0 {
		t.Fatal("clone shares stats")
	}
	gen.ResetStats()
	if gen.Stats().Sets != 0 {
		t.Fatal("reset failed")
	}
	if gen.Graph() != g {
		t.Fatal("Graph() mismatch")
	}
}

// TestLTRevisitTerminates: on a ring with weight-1 edges the walk must
// stop upon revisiting, not loop forever.
func TestLTRevisitTerminates(t *testing.T) {
	g := graph.GenRing(6, 0)
	g.AssignLT()
	gen := NewLT(g)
	r := rng.New(9)
	set := gen.Generate(r, 0, nil)
	if len(set) != 6 {
		t.Fatalf("ring walk size %d", len(set))
	}
}
