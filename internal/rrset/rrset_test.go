package rrset

import (
	"math"
	"testing"

	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// allGenerators returns every IC generator kind over g, keyed by name.
func allGenerators(g *graph.Graph) map[string]Generator {
	gens := map[string]Generator{
		"vanilla":  NewVanilla(g),
		"bucketed": NewSubsimBucketed(g, false),
		"jump":     NewSubsimBucketed(g, true),
	}
	gens["subsim"] = NewSubsim(g) // may sort in-edges; last so others see same graph either way
	return gens
}

func TestRRSetContainsRootFirst(t *testing.T) {
	g := graph.GenLine(10, 1)
	for name, gen := range allGenerators(g) {
		r := rng.New(1)
		set := gen.Generate(r, 7, nil)
		if len(set) == 0 || set[0] != 7 {
			t.Fatalf("%s: root not first: %v", name, set)
		}
	}
}

func TestRRSetNoDuplicates(t *testing.T) {
	r := rng.New(2)
	g, err := graph.GenErdosRenyi(60, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWCVariant(3)
	for name, gen := range allGenerators(g) {
		for i := 0; i < 300; i++ {
			set := GenerateRandom(gen, r, nil)
			seen := map[int32]bool{}
			for _, v := range set {
				if seen[v] {
					t.Fatalf("%s: duplicate node %d in %v", name, v, set)
				}
				seen[v] = true
			}
		}
	}
}

// TestLineGraphClosedForm checks RR membership against the closed form on
// a directed line: on 0→1→…→root with edge probability p, node root-j is
// in the RR set of root with probability p^j.
func TestLineGraphClosedForm(t *testing.T) {
	const n, p = 8, 0.6
	g := graph.GenLine(n, p)
	root := int32(n - 1)
	const draws = 120000
	for name, gen := range allGenerators(g) {
		r := rng.New(3)
		counts := make([]int, n)
		for d := 0; d < draws; d++ {
			for _, v := range gen.Generate(r, root, nil) {
				counts[v]++
			}
		}
		for j := 0; j < n; j++ {
			want := math.Pow(p, float64(int(root)-j))
			got := float64(counts[int(root)-(int(root)-j)]) / draws
			_ = got
			gotJ := float64(counts[j]) / draws
			tol := 5*math.Sqrt(want*(1-want)/draws) + 1e-3
			if math.Abs(gotJ-want) > tol {
				t.Fatalf("%s: node %d membership %v, want %v ± %v", name, j, gotJ, want, tol)
			}
		}
	}
}

// TestLemma1AllGenerators verifies n·Pr[S ∩ R ≠ ∅] ≈ I(S) (paper
// Lemma 1) for every generator against forward Monte-Carlo simulation,
// under both an equal-probability and a skewed weight model.
func TestLemma1AllGenerators(t *testing.T) {
	r := rng.New(4)
	g, err := graph.GenErdosRenyi(80, 600, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"wc-variant", "exponential"} {
		if model == "wc-variant" {
			g.AssignWCVariant(2)
		} else {
			g.AssignExponential(r, 1)
		}
		seeds := []int32{3, 17, 42}
		fwd := diffusion.EstimateParallel(g, seeds, 60000, diffusion.IC, 9, 2)
		inSeed := make([]bool, g.N())
		for _, s := range seeds {
			inSeed[s] = true
		}
		for name, gen := range allGenerators(g) {
			rr := rng.New(5)
			const draws = 60000
			covered := 0
			for d := 0; d < draws; d++ {
				set := GenerateRandom(gen, rr, nil)
				for _, v := range set {
					if inSeed[v] {
						covered++
						break
					}
				}
			}
			rev := float64(covered) / draws * float64(g.N())
			if math.Abs(rev-fwd) > 0.05*fwd+1.5 {
				t.Fatalf("%s/%s: reverse estimate %v vs forward %v", name, model, rev, fwd)
			}
		}
	}
}

// TestGeneratorsAgreeOnAvgSize cross-checks the average RR set size of
// all generators under WC: they sample from the same distribution.
func TestGeneratorsAgreeOnAvgSize(t *testing.T) {
	r := rng.New(6)
	g, err := graph.GenPreferentialAttachment(400, 4, false, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	sizes := map[string]float64{}
	for name, gen := range allGenerators(g) {
		rr := rng.New(7)
		const draws = 30000
		for d := 0; d < draws; d++ {
			GenerateRandom(gen, rr, nil)
		}
		st := gen.Stats()
		if st.Sets != draws {
			t.Fatalf("%s: stats counted %d sets", name, st.Sets)
		}
		sizes[name] = st.AvgSize()
	}
	base := sizes["vanilla"]
	for name, s := range sizes {
		if math.Abs(s-base) > 0.05*base+0.05 {
			t.Fatalf("%s avg size %v deviates from vanilla %v", name, s, base)
		}
	}
}

func TestSentinelRootHit(t *testing.T) {
	g := graph.GenComplete(5, 1)
	sentinel := make([]bool, 5)
	sentinel[2] = true
	for name, gen := range allGenerators(g) {
		r := rng.New(8)
		set := gen.Generate(r, 2, sentinel)
		if len(set) != 1 || set[0] != 2 {
			t.Fatalf("%s: sentinel root should yield {root}, got %v", name, set)
		}
	}
}

// TestSentinelStopsTraversal checks the Algorithm 5 semantics: on a
// complete graph with p=1 the full RR set is everything, but with a
// sentinel the set must end at the first sentinel activation.
func TestSentinelStopsTraversal(t *testing.T) {
	const n = 30
	g := graph.GenComplete(n, 1)
	sentinel := make([]bool, n)
	sentinel[5] = true
	for name, gen := range allGenerators(g) {
		r := rng.New(9)
		set := gen.Generate(r, 0, sentinel)
		if len(set) == int(n) {
			t.Fatalf("%s: sentinel did not shorten the traversal", name)
		}
		if set[len(set)-1] != 5 {
			t.Fatalf("%s: truncated set does not end at the sentinel: %v", name, set)
		}
	}
}

// TestSentinelHitProbabilityMatchesCoverage verifies that the
// early-stopped generator hits a sentinel set S exactly as often as full
// RR sets intersect S — the property HIST's correctness rests on.
func TestSentinelHitProbabilityMatchesCoverage(t *testing.T) {
	r := rng.New(10)
	g, err := graph.GenErdosRenyi(70, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWCVariant(2)
	seeds := []int32{1, 8, 20}
	sentinel := make([]bool, g.N())
	for _, s := range seeds {
		sentinel[s] = true
	}
	const draws = 80000
	for name, gen := range allGenerators(g) {
		full := rng.New(11)
		coveredFull := 0
		for d := 0; d < draws; d++ {
			set := GenerateRandom(gen, full, nil)
			for _, v := range set {
				if sentinel[v] {
					coveredFull++
					break
				}
			}
		}
		stopped := rng.New(12)
		hits := 0
		for d := 0; d < draws; d++ {
			set := GenerateRandom(gen, stopped, sentinel)
			if sentinel[set[len(set)-1]] {
				hits++
			}
		}
		pFull := float64(coveredFull) / draws
		pHit := float64(hits) / draws
		tol := 6*math.Sqrt(pFull*(1-pFull)/draws)*2 + 1e-3
		if math.Abs(pFull-pHit) > tol {
			t.Fatalf("%s: full coverage %v vs sentinel hit rate %v (tol %v)", name, pFull, pHit, tol)
		}
	}
}

// TestSentinelReducesAvgSize checks the headline effect of Algorithm 5 on
// a high-influence graph: sentinel-terminated RR sets are much smaller.
func TestSentinelReducesAvgSize(t *testing.T) {
	r := rng.New(13)
	g, err := graph.GenPreferentialAttachment(500, 6, false, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWCVariant(4) // high influence
	gen := NewVanilla(g)
	rr := rng.New(14)
	const draws = 4000
	for d := 0; d < draws; d++ {
		GenerateRandom(gen, rr, nil)
	}
	fullSize := gen.Stats().AvgSize()

	// Sentinels: the 5 largest out-degree hubs.
	sentinel := make([]bool, g.N())
	type hub struct {
		v int32
		d int
	}
	best := make([]hub, 5)
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.OutDegree(v)
		for i := range best {
			if d > best[i].d {
				copy(best[i+1:], best[i:len(best)-1])
				best[i] = hub{v, d}
				break
			}
		}
	}
	for _, h := range best {
		sentinel[h.v] = true
	}
	gen.ResetStats()
	for d := 0; d < draws; d++ {
		GenerateRandom(gen, rr, sentinel)
	}
	stopSize := gen.Stats().AvgSize()
	if stopSize > fullSize/2 {
		t.Fatalf("sentinel barely reduced avg size: %v vs %v", stopSize, fullSize)
	}
}

func TestVanillaEdgesExaminedAccounting(t *testing.T) {
	// On a line with p=1 from root n-1, every node activates and each
	// examines exactly its in-degree (1, except node 0).
	const n = 12
	g := graph.GenLine(n, 1)
	gen := NewVanilla(g)
	r := rng.New(15)
	set := gen.Generate(r, n-1, nil)
	if len(set) != n {
		t.Fatalf("p=1 line RR set size %d", len(set))
	}
	if got := gen.Stats().EdgesExamined; got != n-1 {
		t.Fatalf("edges examined %d, want %d", got, n-1)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rng.New(16)
	g, err := graph.GenErdosRenyi(40, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	for name, gen := range allGenerators(g) {
		clone := gen.Clone()
		rr := rng.New(17)
		gen.Generate(rr, 0, nil)
		if clone.Stats().Sets != 0 {
			t.Fatalf("%s: clone shares stats", name)
		}
		// Interleaved use must not corrupt either traversal's visited
		// state.
		a := gen.Generate(rng.New(18), 1, nil)
		b := clone.Generate(rng.New(18), 1, nil)
		if len(a) != len(b) {
			t.Fatalf("%s: same stream, different RR sets (%d vs %d)", name, len(a), len(b))
		}
	}
}

func TestStatsAddAndAvg(t *testing.T) {
	var s Stats
	if s.AvgSize() != 0 {
		t.Fatal("empty stats avg not 0")
	}
	s.Add(Stats{Sets: 2, Nodes: 10, EdgesExamined: 7})
	s.Add(Stats{Sets: 3, Nodes: 5, EdgesExamined: 3})
	if s.Sets != 5 || s.Nodes != 15 || s.EdgesExamined != 10 {
		t.Fatalf("Add result %+v", s)
	}
	if s.AvgSize() != 3 {
		t.Fatalf("AvgSize %v", s.AvgSize())
	}
}

func TestEpochWraparound(t *testing.T) {
	g := graph.GenLine(4, 1)
	gen := NewVanilla(g)
	gen.t.epoch = math.MaxUint32 - 1 // force a wrap within two generations
	r := rng.New(19)
	a := gen.Generate(r, 3, nil)
	b := gen.Generate(r, 3, nil)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("wraparound corrupted traversal: %v %v", a, b)
	}
}
