package rrset

import "testing"

func arenaSetsEqual(t *testing.T, a *Arena, want [][]int32) {
	t.Helper()
	if a.Len() != len(want) {
		t.Fatalf("arena holds %d sets, want %d", a.Len(), len(want))
	}
	total := 0
	for i, w := range want {
		got := a.Set(i)
		if len(got) != len(w) {
			t.Fatalf("set %d = %v, want %v", i, got, w)
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("set %d = %v, want %v", i, got, w)
			}
		}
		total += len(w)
	}
	if a.NumNodes() != total {
		t.Fatalf("NumNodes = %d, want %d", a.NumNodes(), total)
	}
}

func TestArenaAppend(t *testing.T) {
	var a Arena
	a.Append([]int32{1, 2, 3})
	a.Append(nil) // empty sets are legal and occupy one end slot
	a.Append([]int32{4})
	arenaSetsEqual(t, &a, [][]int32{{1, 2, 3}, {}, {4}})
}

// TestArenaDropLast exercises the in-place sentinel-discard path: the
// last committed set vanishes, its nodes return to the free tail, and
// the next append reuses the space.
func TestArenaDropLast(t *testing.T) {
	var a Arena
	a.Append([]int32{1, 2})
	a.Append([]int32{3, 4, 5})
	a.DropLast()
	arenaSetsEqual(t, &a, [][]int32{{1, 2}})
	a.Append([]int32{6})
	arenaSetsEqual(t, &a, [][]int32{{1, 2}, {6}})

	// Dropping down to empty, including a sole set.
	a.DropLast()
	a.DropLast()
	if a.Len() != 0 || a.NumNodes() != 0 {
		t.Fatalf("after dropping all: %d sets / %d nodes", a.Len(), a.NumNodes())
	}

	// Interleave with the generator-style commit path: DropLast must
	// truncate to the previous set's end, not to zero.
	a.Append([]int32{7})
	buf := append(a.Data(), 8, 9)
	a.commit(buf)
	a.DropLast()
	arenaSetsEqual(t, &a, [][]int32{{7}})

	defer func() {
		if recover() == nil {
			t.Error("DropLast on an empty arena did not panic")
		}
	}()
	var empty Arena
	empty.DropLast()
}

func TestArenaMemoryBytes(t *testing.T) {
	var a Arena
	if a.MemoryBytes() != 0 {
		t.Fatalf("empty arena MemoryBytes = %d", a.MemoryBytes())
	}
	a.Append([]int32{1, 2, 3})
	want := int64(cap(a.Data()))*4 + int64(cap(a.Ends()))*8
	if got := a.MemoryBytes(); got != want || got < 3*4+8 {
		t.Fatalf("MemoryBytes = %d, want %d (>= %d)", got, want, 3*4+8)
	}
	// Capacity, not length: DropLast must not shrink the footprint.
	a.DropLast()
	if got := a.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes after DropLast = %d, want %d", got, want)
	}
}

// TestArenaAppendDropSteadyStateAllocFree pins the zero-splice fill
// path's allocation behaviour: once grown, an append/drop churn cycle
// costs nothing.
func TestArenaAppendDropSteadyStateAllocFree(t *testing.T) {
	var a Arena
	set := []int32{1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		a.Append(set)
	}
	for i := 0; i < 50; i++ {
		a.DropLast()
	}
	allocs := testing.AllocsPerRun(100, func() {
		a.Append(set)
		a.DropLast()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Append+DropLast allocates %.1f objects/run", allocs)
	}
}
