package rrset

import (
	"sort"
	"testing"
	"testing/quick"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

// reverseReachable computes the deterministic set of nodes that can reach
// root (via BFS over in-edges), the p=1 ground truth for RR sets.
func reverseReachable(g *graph.Graph, root int32) []int32 {
	visited := make([]bool, g.N())
	visited[root] = true
	out := []int32{root}
	queue := []int32{root}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		sources, _ := g.InNeighbors(u)
		for _, w := range sources {
			if !visited[w] {
				visited[w] = true
				out = append(out, w)
				queue = append(queue, w)
			}
		}
	}
	return out
}

// TestPropertyP1RRSetEqualsReachability: with every edge at probability
// 1, each generator's RR set must equal the deterministic
// reverse-reachable set, on arbitrary random graphs.
func TestPropertyP1RRSetEqualsReachability(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		m := int64(r.Intn(4 * n))
		if max := int64(n) * int64(n-1); m > max {
			m = max
		}
		g, err := graph.GenErdosRenyi(n, m, r)
		if err != nil {
			return false
		}
		g.AssignUniform(1)
		root := int32(r.Intn(n))
		want := append([]int32(nil), reverseReachable(g, root)...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, gen := range []Generator{
			NewVanilla(g), NewSubsim(g), NewSubsimBucketed(g, false), NewSubsimBucketed(g, true),
		} {
			got := append([]int32(nil), gen.Generate(r, root, nil)...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyP0RRSetIsRoot: with probability 0 everywhere, every RR set
// is exactly the root.
func TestPropertyP0RRSetIsRoot(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		m := int64(r.Intn(3 * n))
		if max := int64(n) * int64(n-1); m > max {
			m = max
		}
		g, err := graph.GenErdosRenyi(n, m, r)
		if err != nil {
			return false
		}
		g.AssignUniform(0)
		root := int32(r.Intn(n))
		for _, gen := range []Generator{
			NewVanilla(g), NewSubsim(g), NewSubsimBucketed(g, false), NewSubsimBucketed(g, true),
		} {
			set := gen.Generate(r, root, nil)
			if len(set) != 1 || set[0] != root {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySentinelSubset: a sentinel-terminated RR set is always a
// prefix-closed subset of some valid traversal — in particular it never
// contains more than one sentinel, and if it contains one it is the last
// element.
func TestPropertySentinelSubset(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(40)
		m := int64(r.Intn(5 * n))
		if max := int64(n) * int64(n-1); m > max {
			m = max
		}
		g, err := graph.GenErdosRenyi(n, m, r)
		if err != nil {
			return false
		}
		g.AssignWCVariant(1 + 3*r.Float64())
		sentinel := make([]bool, n)
		for s := 0; s < 1+r.Intn(3); s++ {
			sentinel[r.Intn(n)] = true
		}
		gen := NewSubsim(g)
		for trial := 0; trial < 50; trial++ {
			set := GenerateRandom(gen, r, sentinel)
			count := 0
			for i, v := range set {
				if sentinel[v] {
					count++
					if i != len(set)-1 {
						return false
					}
				}
			}
			if count > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllSentinelsMeansSingletons: when every node is a sentinel,
// every RR set is exactly {root}.
func TestPropertyAllSentinelsMeansSingletons(t *testing.T) {
	r := rng.New(1)
	g, err := graph.GenErdosRenyi(50, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignUniform(1)
	sentinel := make([]bool, 50)
	for i := range sentinel {
		sentinel[i] = true
	}
	gen := NewVanilla(g)
	for i := 0; i < 200; i++ {
		set := GenerateRandom(gen, r, sentinel)
		if len(set) != 1 {
			t.Fatalf("all-sentinel RR set %v", set)
		}
	}
}
