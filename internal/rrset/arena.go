package rrset

// Arena is a reusable, append-only buffer that RR sets are generated
// into back to back: one contiguous []int32 of node ids plus an array of
// per-set end offsets (CSR over sets). Generators append through
// Generator.GenerateInto, which costs zero allocations once the arena
// has grown to its steady-state capacity; Reset recycles the memory for
// the next batch.
//
// An Arena is not safe for concurrent use. The Batcher keeps one arena
// per worker and splices them in deterministic global-index order, which
// is what keeps parallel generation allocation-free AND worker-count
// independent.
type Arena struct {
	data []int32
	ends []int64 // ends[i] is the exclusive end of set i in data
}

// NewArena returns an arena pre-sized for about sets RR sets totalling
// about nodes node ids. Zero hints are valid and mean "grow on demand".
func NewArena(sets, nodes int) *Arena {
	a := &Arena{}
	if nodes > 0 {
		a.data = make([]int32, 0, nodes)
	}
	if sets > 0 {
		a.ends = make([]int64, 0, sets)
	}
	return a
}

// Reset forgets all sets but keeps the allocated capacity.
func (a *Arena) Reset() {
	a.data = a.data[:0]
	a.ends = a.ends[:0]
}

// Reserve grows the arena so that about sets more RR sets totalling
// about nodes more ids fit without reallocation. Growth is geometric
// (at least double the current capacity) so repeated Reserve calls stay
// amortised O(1) per element. It never shrinks.
func (a *Arena) Reserve(sets, nodes int) {
	a.data = growInt32(a.data, nodes)
	a.ends = growInt64(a.ends, sets)
}

// Len returns the number of RR sets in the arena.
func (a *Arena) Len() int { return len(a.ends) }

// NumNodes returns the total number of node ids across all sets.
func (a *Arena) NumNodes() int { return len(a.data) }

// Set returns the i-th RR set as a view into the arena. The slice is
// invalidated by the next append or Reset; copy it to retain it.
func (a *Arena) Set(i int) []int32 {
	start := int64(0)
	if i > 0 {
		start = a.ends[i-1]
	}
	return a.data[start:a.ends[i]:a.ends[i]]
}

// Data returns the flat node-id buffer of all sets back to back; Ends
// the per-set exclusive end offsets. Both are live read-only views for
// zero-copy splice passes (Batcher.FillIndex block-copies them into the
// coverage store); they are invalidated by the next append or Reset.
func (a *Arena) Data() []int32 { return a.data }

// Ends returns the per-set exclusive end offsets (see Data).
func (a *Arena) Ends() []int64 { return a.ends }

// Append copies one RR set into the arena as a committed set. It is the
// generic ingestion path for callers that route already-generated sets
// into shard-local arenas (coverage.Sharded); generators writing in
// place still go through GenerateInto, which skips the copy.
func (a *Arena) Append(set []int32) {
	a.data = append(a.data, set...)
	a.ends = append(a.ends, int64(len(a.data)))
}

// DropLast removes the most recently committed set, returning its node
// ids to the free tail of the buffer. It is how the zero-splice fill
// path discards a sentinel-terminated set in place — the set is
// generated directly into its shard's arena and truncated on detection
// instead of being filtered by a copy pass. Panics if the arena is
// empty.
func (a *Arena) DropLast() {
	n := len(a.ends) - 1
	start := int64(0)
	if n > 0 {
		start = a.ends[n-1]
	}
	a.data = a.data[:start]
	a.ends = a.ends[:n]
}

// MemoryBytes reports the approximate heap footprint of the arena's two
// flat buffers — the same accounting as Store.MemoryBytes, needed now
// that shard-local arenas ARE store segments (coverage.Sharded).
func (a *Arena) MemoryBytes() int64 {
	return int64(cap(a.data))*4 + int64(cap(a.ends))*8
}

// start returns the offset new nodes will be appended at.
func (a *Arena) start() int { return len(a.data) }

// commit seals the pending tail [start, len(data)) as one RR set. buf
// must be the slice returned by the generator's append chain (it may
// have been reallocated away from a.data by growth).
func (a *Arena) commit(buf []int32) {
	a.data = buf
	a.ends = append(a.ends, int64(len(buf)))
}

// Store is the flat, arena-backed RR collection behind coverage.Index:
// all node ids of all sets in one contiguous []int32 with per-set end
// offsets (CSR over sets). Append copies set data into the flat buffer,
// so callers may pass transient arena views.
type Store struct {
	data []int32
	ends []int64
}

// NumSets returns the number of stored RR sets.
func (s *Store) NumSets() int { return len(s.ends) }

// NumNodes returns the total node-id count across all stored sets.
func (s *Store) NumNodes() int { return len(s.data) }

// Set returns the i-th stored RR set as a view into the flat buffer.
// The view stays valid across appends in content (data is append-only)
// but should not be retained across reallocation-sensitive code; copy to
// keep long-term.
func (s *Store) Set(i int) []int32 {
	start := int64(0)
	if i > 0 {
		start = s.ends[i-1]
	}
	return s.data[start:s.ends[i]:s.ends[i]]
}

// SetSpan returns the [start, end) offsets of set i in the flat buffer.
func (s *Store) SetSpan(i int) (start, end int64) {
	if i > 0 {
		start = s.ends[i-1]
	}
	return start, s.ends[i]
}

// Data returns the flat node-id buffer; Ends the per-set end offsets.
// Both are live views for read-only CSR passes (index builds).
func (s *Store) Data() []int32 { return s.data }

// Ends returns the per-set exclusive end offsets.
func (s *Store) Ends() []int64 { return s.ends }

// Append copies one RR set into the store.
func (s *Store) Append(set []int32) {
	s.data = append(s.data, set...)
	s.ends = append(s.ends, int64(len(s.data)))
}

// Reserve grows the store for about sets more sets totalling about
// nodes more ids, geometrically (see Arena.Reserve).
func (s *Store) Reserve(sets, nodes int) {
	s.data = growInt32(s.data, nodes)
	s.ends = growInt64(s.ends, sets)
}

// Grow is the range-reservation API behind the parallel splice: it
// extends the store by exactly sets uninitialised set slots totalling
// exactly nodes node ids and returns the two destination regions plus
// the absolute offset data[0] corresponds to in the flat buffer.
// Callers must fill data completely and write ends as ABSOLUTE
// exclusive end offsets (i.e. nodeBase + local cumulative length)
// before the store is read again; disjoint sub-ranges may be filled
// from different goroutines. Growth is geometric, so repeated Grow
// calls stay amortised O(1) per element.
func (s *Store) Grow(sets, nodes int) (data []int32, ends []int64, nodeBase int64) {
	nodeBase = int64(len(s.data))
	setBase := len(s.ends)
	s.data = growInt32(s.data, nodes)[:len(s.data)+nodes]
	s.ends = growInt64(s.ends, sets)[:len(s.ends)+sets]
	return s.data[nodeBase:], s.ends[setBase:], nodeBase
}

// growInt32 returns buf with capacity for at least extra more elements,
// growing geometrically to keep repeated reserves amortised O(1).
func growInt32(buf []int32, extra int) []int32 {
	need := len(buf) + extra
	if need <= cap(buf) {
		return buf
	}
	newCap := 2 * cap(buf)
	if newCap < need {
		newCap = need
	}
	grown := make([]int32, len(buf), newCap)
	copy(grown, buf)
	return grown
}

// growInt64 is growInt32 for []int64.
func growInt64(buf []int64, extra int) []int64 {
	need := len(buf) + extra
	if need <= cap(buf) {
		return buf
	}
	newCap := 2 * cap(buf)
	if newCap < need {
		newCap = need
	}
	grown := make([]int64, len(buf), newCap)
	copy(grown, buf)
	return grown
}

// MemoryBytes reports the approximate heap footprint of the store's two
// flat buffers, the number observability surfaces as bytes/set.
func (s *Store) MemoryBytes() int64 {
	return int64(cap(s.data))*4 + int64(cap(s.ends))*8
}
