package rrset

import (
	"io"
	"testing"

	"subsim/internal/graph"
	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
	"subsim/internal/rng"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	r := rng.New(42)
	g, err := graph.GenPreferentialAttachment(300, 4, false, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	return g
}

// TestInstrumentMatchesStats checks that the metric-set totals agree
// exactly with the wrapped generator's own Stats counters.
func TestInstrumentMatchesStats(t *testing.T) {
	g := testGraph(t)
	for name, bare := range allGenerators(g) {
		m := obs.NewMetricSet()
		gen := Instrument(bare, m, m.WorkerSets(0))
		r := rng.New(1)
		const draws = 500
		for i := 0; i < draws; i++ {
			GenerateRandom(gen, r, nil)
		}
		st := gen.Stats()
		if st.Sets != draws || m.Sets.Load() != draws {
			t.Fatalf("%s: sets stats=%d metrics=%d, want %d", name, st.Sets, m.Sets.Load(), draws)
		}
		if m.Nodes.Load() != st.Nodes {
			t.Errorf("%s: nodes metrics=%d stats=%d", name, m.Nodes.Load(), st.Nodes)
		}
		if m.Edges.Load() != st.EdgesExamined {
			t.Errorf("%s: edges metrics=%d stats=%d", name, m.Edges.Load(), st.EdgesExamined)
		}
		if m.RRSize.Count() != draws || m.RRSize.Sum() != st.Nodes {
			t.Errorf("%s: rr-size histogram count=%d sum=%d, want %d/%d",
				name, m.RRSize.Count(), m.RRSize.Sum(), draws, st.Nodes)
		}
		if m.EdgesPerSet.Count() != draws || m.EdgesPerSet.Sum() != st.EdgesExamined {
			t.Errorf("%s: edges-per-set histogram count=%d sum=%d, want %d/%d",
				name, m.EdgesPerSet.Count(), m.EdgesPerSet.Sum(), draws, st.EdgesExamined)
		}
		if got := m.WorkerSets(0).Load(); got != draws {
			t.Errorf("%s: worker counter %d, want %d", name, got, draws)
		}
	}
}

// TestInstrumentNilMetricSet: a nil metric set must return the generator
// unchanged — the zero-overhead disabled path.
func TestInstrumentNilMetricSet(t *testing.T) {
	g := graph.GenLine(5, 1)
	bare := NewVanilla(g)
	if got := Instrument(bare, nil, nil); got != Generator(bare) {
		t.Fatal("Instrument(gen, nil, nil) did not return the bare generator")
	}
}

// TestInstrumentSentinelHits checks that sentinel-truncated sets are
// counted both in Stats.SentinelHits and in the metric counter.
func TestInstrumentSentinelHits(t *testing.T) {
	const n = 20
	g := graph.GenComplete(n, 1) // p=1: every traversal reaches everything
	sentinel := make([]bool, n)
	sentinel[3] = true
	for name, bare := range allGenerators(g) {
		m := obs.NewMetricSet()
		gen := Instrument(bare, m, nil)
		r := rng.New(2)
		const draws = 50
		for i := 0; i < draws; i++ {
			GenerateRandom(gen, r, sentinel)
		}
		// With p=1 and a sentinel on a complete graph every set is
		// truncated (or rooted) at the sentinel.
		if st := gen.Stats(); st.SentinelHits != draws {
			t.Errorf("%s: Stats.SentinelHits = %d, want %d", name, st.SentinelHits, draws)
		}
		if got := m.SentinelHits.Load(); got != draws {
			t.Errorf("%s: metric SentinelHits = %d, want %d", name, got, draws)
		}
	}
}

// TestInstrumentSkipHistogram checks that wrapping a Subsim generator
// wires the geometric-skip-length histogram.
func TestInstrumentSkipHistogram(t *testing.T) {
	g := testGraph(t) // WC: equal in-probabilities, geometric path active
	m := obs.NewMetricSet()
	gen := Instrument(NewSubsim(g), m, nil)
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		GenerateRandom(gen, r, nil)
	}
	if m.SkipLen.Count() == 0 {
		t.Fatal("skip-length histogram empty after SUBSIM generation under WC")
	}
}

// TestInstrumentClone: clones must feed the same metric set.
func TestInstrumentClone(t *testing.T) {
	g := testGraph(t)
	m := obs.NewMetricSet()
	gen := Instrument(NewVanilla(g), m, nil)
	clone := gen.Clone()
	if _, ok := clone.(*Instrumented); !ok {
		t.Fatalf("clone of Instrumented is %T, want *Instrumented", clone)
	}
	r := rng.New(4)
	GenerateRandom(gen, r, nil)
	GenerateRandom(clone, r, nil)
	if got := m.Sets.Load(); got != 2 {
		t.Errorf("metric Sets = %d after one draw on gen and clone each, want 2", got)
	}
}

// TestInstrumentTimelineRecords: with a timeline on the metric set,
// InstrumentWorker must record exactly one PhaseGenerate interval per
// set on the worker's own ring, and the interval durations must sum to
// the same busy time the worker-busy gauge reports.
func TestInstrumentTimelineRecords(t *testing.T) {
	g := testGraph(t)
	m := obs.NewMetricSet()
	m.Timeline = timeline.New(4096, nil)
	gen := InstrumentWorker(NewSubsim(g), m, 3)
	r := rng.New(11)
	const draws = 100
	for i := 0; i < draws; i++ {
		GenerateRandom(gen, r, nil)
	}
	ring := m.TimelineRing(3)
	if ring.Written() != draws {
		t.Fatalf("ring Written = %d, want %d", ring.Written(), draws)
	}
	snap := m.Timeline.Snapshot()
	var busy int64
	count := 0
	for _, rec := range snap.Records {
		if rec.Worker != 3 {
			t.Fatalf("record on worker %d, want 3", rec.Worker)
		}
		if rec.Phase != timeline.PhaseGenerate {
			t.Fatalf("record phase %v, want generate", rec.Phase)
		}
		if rec.EndNS < rec.StartNS {
			t.Fatalf("record %#v runs backwards", rec)
		}
		busy += rec.EndNS - rec.StartNS
		count++
	}
	if count != draws {
		t.Fatalf("snapshot has %d records, want %d", count, draws)
	}
	if got := m.WorkerBusyNS(3).Load(); got != busy {
		t.Errorf("worker busy gauge %d != timeline busy sum %d", got, busy)
	}
}

// TestInstrumentTimelineGenerateIntoAllocFree pins the timeline
// acceptance bar on the hot path: steady-state GenerateInto with a ring
// attached performs zero allocations per set — recording is pure
// atomics.
func TestInstrumentTimelineGenerateIntoAllocFree(t *testing.T) {
	g := testGraph(t)
	m := obs.NewMetricSet()
	m.Timeline = timeline.New(4096, nil)
	gen := InstrumentWorker(NewSubsim(g), m, 0)
	a := NewArena(0, 0)
	r := rng.New(12)
	for i := 0; i < 3; i++ {
		a.Reset()
		for j := 0; j < 200; j++ {
			GenerateRandomInto(gen, a, r, nil)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		a.Reset()
		for j := 0; j < 200; j++ {
			GenerateRandomInto(gen, a, r, nil)
		}
	})
	if allocs > 0 {
		t.Errorf("timeline-instrumented GenerateInto allocated %.1f objects per 200 sets, want 0", allocs)
	}
}

// TestStatsSub checks the baseline-delta arithmetic the Batcher relies
// on.
func TestStatsSub(t *testing.T) {
	s := Stats{Sets: 10, Nodes: 50, EdgesExamined: 70, SentinelHits: 4}
	s.Sub(Stats{Sets: 3, Nodes: 20, EdgesExamined: 30, SentinelHits: 1})
	if s != (Stats{Sets: 7, Nodes: 30, EdgesExamined: 40, SentinelHits: 3}) {
		t.Fatalf("Sub result %+v", s)
	}
}

// BenchmarkInstrumentedGenerate compares RR generation bare, through a
// nil-metric-set wrapper (which must unwrap to the bare generator), and
// with metrics enabled. The nil path must be within noise of bare — the
// <5%-overhead claim of the observability layer's disabled mode — and
// the enabled path shows the true cost of staying observable. The
// worker-timed variant adds the busy-ns clock reads of InstrumentWorker
// (what imrun -serve actually installs), and live-scraped measures the
// worst case for the telemetry plane: a goroutine rendering the full
// Prometheus exposition in a tight loop while generation runs, i.e. the
// writer side under continuous lock-free reader pressure.
//
// Run with: go test ./internal/rrset -bench InstrumentedGenerate -benchmem
// (recorded into BENCH_rrset.json by `make benchobs`).
func BenchmarkInstrumentedGenerate(b *testing.B) {
	g := testGraph(b)
	run := func(b *testing.B, gen Generator) {
		r := rng.New(99)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			GenerateRandom(gen, r, nil)
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, NewSubsim(g))
	})
	b.Run("nil-wrapped", func(b *testing.B) {
		run(b, Instrument(NewSubsim(g), nil, nil))
	})
	b.Run("metrics-on", func(b *testing.B) {
		m := obs.NewMetricSet()
		run(b, Instrument(NewSubsim(g), m, m.WorkerSets(0)))
	})
	b.Run("worker-timed", func(b *testing.B) {
		m := obs.NewMetricSet()
		run(b, InstrumentWorker(NewSubsim(g), m, 0))
	})
	b.Run("timeline-on", func(b *testing.B) {
		// Worker timing plus per-set interval recording into the timeline
		// ring — the full execution-timeline cost. The acceptance bar is
		// ≤2% over worker-timed: a Record is six uncontended atomics.
		m := obs.NewMetricSet()
		m.Timeline = timeline.New(0, nil)
		run(b, InstrumentWorker(NewSubsim(g), m, 0))
	})
	b.Run("live-scraped", func(b *testing.B) {
		m := obs.NewMetricSet()
		stop := make(chan struct{})
		scraped := make(chan struct{})
		go func() {
			defer close(scraped)
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.WritePrometheus(io.Discard)
				}
			}
		}()
		run(b, InstrumentWorker(NewSubsim(g), m, 0))
		b.StopTimer()
		close(stop)
		<-scraped
	})
}
