package core

import (
	"reflect"
	"testing"

	"subsim/internal/im"
	"subsim/internal/obs"
	"subsim/internal/rrset"
)

// TestHISTReport checks the acceptance shape of a traced HIST run: both
// phase spans with per-round children, the sentinel hit-rate attribute,
// metric totals agreeing with the result's RR accounting, and sentinel
// hits surfaced both as a stat and a counter.
func TestHISTReport(t *testing.T) {
	g := highInfluenceGraph(t, 1500)
	tr := obs.NewTracer()
	opt := im.Options{K: 20, Eps: 0.2, Seed: 5, Workers: 2, Tracer: tr}
	res, err := HIST(rrset.NewSubsim(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("Result.Report nil with tracer attached")
	}
	if rep.Schema != obs.Schema || rep.Version != obs.SchemaVersion {
		t.Errorf("schema %q v%d", rep.Schema, rep.Version)
	}
	root := rep.Span("hist")
	if root == nil {
		t.Fatal("hist root span missing")
	}
	p1 := root.Find("sentinel-phase")
	p2 := root.Find("residual-phase")
	if p1 == nil || p2 == nil {
		t.Fatalf("phase spans missing: sentinel=%v residual=%v", p1 != nil, p2 != nil)
	}
	if p1.Find("round-1") == nil {
		t.Error("sentinel-phase has no per-round span")
	}
	for _, phase := range []*obs.SpanSnapshot{p1, p2} {
		if phase.Find("sampling") == nil || phase.Find("selection") == nil {
			t.Errorf("%s lacks sampling/selection children", phase.Name)
		}
	}
	if _, ok := p1.Attrs["sentinels"]; !ok {
		t.Error("sentinel-phase missing 'sentinels' attribute")
	}
	if rate, ok := p2.Attrs["sentinel_hit_rate"].(float64); !ok || rate < 0 || rate > 1 {
		t.Errorf("residual-phase sentinel_hit_rate = %v (%v)", p2.Attrs["sentinel_hit_rate"], ok)
	}
	if got := rep.Counters["rr_sets_total"]; got != res.RRStats.Sets {
		t.Errorf("rr_sets_total=%d, RRStats.Sets=%d", got, res.RRStats.Sets)
	}
	if res.RRStats.SentinelHits <= 0 {
		t.Error("HIST residual phase recorded no sentinel hits in RRStats")
	}
	if got := rep.Counters["sentinel_hits_total"]; got != res.RRStats.SentinelHits {
		t.Errorf("sentinel_hits_total=%d, RRStats.SentinelHits=%d", got, res.RRStats.SentinelHits)
	}
	if h := rep.Histograms["rr_size"]; h.Count != res.RRStats.Sets {
		t.Errorf("rr_size histogram count=%d, want %d", h.Count, res.RRStats.Sets)
	}
	if h := rep.Histograms["geom_skip_len"]; h.Count == 0 {
		t.Error("geom_skip_len histogram empty on a SUBSIM run")
	}
	if len(rep.WorkerSets) == 0 {
		t.Error("no per-worker set counts")
	}
}

// TestHISTTracerNeutrality: tracing must not change HIST's output, and
// worker count must not either.
func TestHISTTracerNeutrality(t *testing.T) {
	g := highInfluenceGraph(t, 1200)
	base := im.Options{K: 15, Eps: 0.25, Seed: 9, Workers: 2}
	plain, err := HIST(rrset.NewVanilla(g), base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Tracer = obs.NewTracer()
	tr, err := HIST(rrset.NewVanilla(g), traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Seeds, tr.Seeds) || plain.RRStats != tr.RRStats {
		t.Error("tracer perturbed HIST's result")
	}
	wide := base
	wide.Workers = 8
	w8, err := HIST(rrset.NewVanilla(g), wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Seeds, w8.Seeds) || plain.RRStats != w8.RRStats {
		t.Errorf("worker count perturbed HIST: seeds %v vs %v, stats %+v vs %+v",
			plain.Seeds, w8.Seeds, plain.RRStats, w8.RRStats)
	}
}
