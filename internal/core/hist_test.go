package core

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/im"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

func highInfluenceGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferentialAttachment(n, 4, false, rng.New(321))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWCVariant(3)
	return g
}

func TestHISTBasicContract(t *testing.T) {
	g := highInfluenceGraph(t, 1500)
	opt := im.Options{K: 20, Eps: 0.2, Seed: 5, Workers: 2}
	res, err := HIST(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != opt.K {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	seen := map[int32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if res.SentinelSize < 1 || res.SentinelSize > opt.K {
		t.Fatalf("sentinel size %d", res.SentinelSize)
	}
	if res.SentinelRR <= 0 {
		t.Fatal("no sentinel-phase RR accounting")
	}
	if res.RRStats.Sets <= 0 {
		t.Fatal("no RR stats")
	}
	if res.LowerBound > res.UpperBound {
		t.Fatalf("bounds inverted: %v > %v", res.LowerBound, res.UpperBound)
	}
}

func TestHISTQualityMatchesOPIMC(t *testing.T) {
	g := highInfluenceGraph(t, 2000)
	opt := im.Options{K: 20, Eps: 0.2, Seed: 6, Workers: 2}
	histRes, err := HIST(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	opimRes, err := im.OPIMC(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	histSpread := diffusion.EstimateParallel(g, histRes.Seeds, 20000, diffusion.IC, 7, 2)
	opimSpread := diffusion.EstimateParallel(g, opimRes.Seeds, 20000, diffusion.IC, 7, 2)
	if histSpread < 0.9*opimSpread {
		t.Fatalf("HIST spread %v below 90%% of OPIM-C %v", histSpread, opimSpread)
	}
}

func TestHISTReducesAvgRRSize(t *testing.T) {
	g := highInfluenceGraph(t, 2000)
	opt := im.Options{K: 50, Eps: 0.2, Seed: 8, Workers: 2}
	histRes, err := HIST(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	opimRes, err := im.OPIMC(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if histRes.RRStats.AvgSize() >= opimRes.RRStats.AvgSize() {
		t.Fatalf("HIST avg RR size %v not below OPIM-C %v",
			histRes.RRStats.AvgSize(), opimRes.RRStats.AvgSize())
	}
}

func TestHISTAllGeneratorKinds(t *testing.T) {
	g := highInfluenceGraph(t, 800)
	opt := im.Options{K: 10, Eps: 0.3, Seed: 9, Workers: 2}
	for _, kind := range []GeneratorKind{Vanilla, Subsim, SubsimBucketed, SubsimBucketedJump} {
		res, err := HIST(NewGenerator(g, kind), opt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(res.Seeds) != opt.K {
			t.Fatalf("%v: %d seeds", kind, len(res.Seeds))
		}
	}
}

func TestHISTK1(t *testing.T) {
	g := highInfluenceGraph(t, 500)
	res, err := HIST(rrset.NewVanilla(g), im.Options{K: 1, Eps: 0.3, Seed: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	if res.SentinelSize != 1 {
		t.Fatalf("sentinel size %d with k=1", res.SentinelSize)
	}
}

func TestHISTValidation(t *testing.T) {
	g := highInfluenceGraph(t, 100)
	if _, err := HIST(rrset.NewVanilla(g), im.Options{K: 0, Eps: 0.1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := HIST(rrset.NewVanilla(g), im.Options{K: 5, Eps: 2}); err == nil {
		t.Error("eps=2 accepted")
	}
}

func TestHISTDeterminism(t *testing.T) {
	g := highInfluenceGraph(t, 700)
	opt := im.Options{K: 8, Eps: 0.25, Seed: 77, Workers: 2}
	a, err := HIST(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HIST(rrset.NewVanilla(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatal("nondeterministic seed count")
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
	if a.SentinelSize != b.SentinelSize {
		t.Fatal("nondeterministic sentinel size")
	}
}

func TestSUBSIMConfiguration(t *testing.T) {
	g := highInfluenceGraph(t, 800)
	res, err := SUBSIM(g, im.Options{K: 10, Eps: 0.3, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 10 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
}

func TestHISTStarPicksCentreAsSentinel(t *testing.T) {
	g := graph.GenStar(400, 0.8)
	res, err := HIST(rrset.NewVanilla(g), im.Options{K: 3, Eps: 0.3, Seed: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("sentinel phase picked %d first, want the hub", res.Seeds[0])
	}
}

func TestGeneratorKindStrings(t *testing.T) {
	want := map[GeneratorKind]string{
		Vanilla: "vanilla", Subsim: "subsim", SubsimBucketed: "subsim-bucketed",
		SubsimBucketedJump: "subsim-bucketed-jump", LTGen: "lt",
		GeneratorKind(42): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestNewGeneratorKinds(t *testing.T) {
	g := highInfluenceGraph(t, 100)
	if _, ok := NewGenerator(g, Vanilla).(*rrset.Vanilla); !ok {
		t.Error("Vanilla kind wrong type")
	}
	if _, ok := NewGenerator(g, Subsim).(*rrset.Subsim); !ok {
		t.Error("Subsim kind wrong type")
	}
	if _, ok := NewGenerator(g, SubsimBucketed).(*rrset.SubsimBucketed); !ok {
		t.Error("SubsimBucketed kind wrong type")
	}
	if _, ok := NewGenerator(g, SubsimBucketedJump).(*rrset.SubsimBucketed); !ok {
		t.Error("SubsimBucketedJump kind wrong type")
	}
	if _, ok := NewGenerator(g, LTGen).(*rrset.LT); !ok {
		t.Error("LT kind wrong type")
	}
}

func TestCeilLog2Ratio(t *testing.T) {
	if ceilLog2Ratio(8, 8) != 1 {
		t.Fatal("equal budgets")
	}
	if ceilLog2Ratio(1, 8) != 4 {
		t.Fatalf("ceilLog2Ratio(1,8) = %d", ceilLog2Ratio(1, 8))
	}
	if ceilLog2Ratio(10, 5) != 1 {
		t.Fatal("max below initial")
	}
}

func TestMarkSentinels(t *testing.T) {
	s := markSentinels(5, []int32{1, 3})
	want := []bool{false, true, false, true, false}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("markSentinels = %v", s)
		}
	}
}

// TestHISTSketchBackend smokes the full HIST pipeline (sentinel
// selection + IM-sentinel phase) against the HLL estimator and the
// tightened sample-complexity bound.
func TestHISTSketchBackend(t *testing.T) {
	g := highInfluenceGraph(t, 1500)
	opt := im.Options{K: 20, Eps: 0.25, Seed: 5, Workers: 2,
		Estimator: coverage.EstimatorHLL, Bound: im.BoundTight}
	res, err := HIST(rrset.NewSubsim(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != opt.K {
		t.Fatalf("got %d seeds, want %d", len(res.Seeds), opt.K)
	}
	if res.Influence <= 0 || res.Influence > float64(g.N()) {
		t.Fatalf("influence %v out of range", res.Influence)
	}
	if res.ThetaWorstCase < 1 || res.ThetaTight < 1 || res.ThetaTight > res.ThetaWorstCase {
		t.Fatalf("budgets not reported/ordered: worst %d tight %d",
			res.ThetaWorstCase, res.ThetaTight)
	}
	// Same configuration must be deterministic across worker counts.
	opt.Workers = 8
	res8, err := HIST(rrset.NewSubsim(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res8.Seeds) != len(res.Seeds) {
		t.Fatalf("workers=8: %d seeds, want %d", len(res8.Seeds), len(res.Seeds))
	}
	for i := range res8.Seeds {
		if res8.Seeds[i] != res.Seeds[i] {
			t.Fatalf("workers=8: seed %d is %d, want %d", i, res8.Seeds[i], res.Seeds[i])
		}
	}
}
