// Package core implements the paper's contribution: the SUBSIM
// configuration (OPIM-C running on the subset-sampling RR generator) and
// the two-phase HIST ("Hit-and-Stop") algorithm for high-influence
// networks — sentinel-set selection (Algorithm 7) followed by the
// IM-Sentinel phase (Algorithm 8), glued together by Algorithm 4.
package core

import (
	"time"

	"subsim/internal/bounds"
	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/im"
	"subsim/internal/obs"
	"subsim/internal/rrset"
)

// GeneratorKind selects an RR set generation strategy.
type GeneratorKind int

const (
	// Vanilla is Algorithm 2: one coin per incoming edge.
	Vanilla GeneratorKind = iota
	// Subsim is Algorithm 3 + the index-free general-IC fallback.
	Subsim
	// SubsimBucketed is the preprocessed general-IC sampler (Lemma 5).
	SubsimBucketed
	// SubsimBucketedJump adds the bucket-jump chain to SubsimBucketed.
	SubsimBucketedJump
	// LTGen is the Linear Threshold reverse random walk.
	LTGen
)

// String returns the kind name used in experiment output.
func (k GeneratorKind) String() string {
	switch k {
	case Vanilla:
		return "vanilla"
	case Subsim:
		return "subsim"
	case SubsimBucketed:
		return "subsim-bucketed"
	case SubsimBucketedJump:
		return "subsim-bucketed-jump"
	case LTGen:
		return "lt"
	default:
		return "unknown"
	}
}

// NewGenerator constructs the RR generator of the given kind over g.
func NewGenerator(g *graph.Graph, kind GeneratorKind) rrset.Generator {
	switch kind {
	case Subsim:
		return rrset.NewSubsim(g)
	case SubsimBucketed:
		return rrset.NewSubsimBucketed(g, false)
	case SubsimBucketedJump:
		return rrset.NewSubsimBucketed(g, true)
	case LTGen:
		return rrset.NewLT(g)
	default:
		return rrset.NewVanilla(g)
	}
}

// SUBSIM runs the paper's headline configuration: OPIM-C with SUBSIM RR
// set generation (Figure 1's "SUBSIM" series).
func SUBSIM(g *graph.Graph, opt im.Options) (*im.Result, error) {
	return im.OPIMC(rrset.NewSubsim(g), opt)
}

// HIST is the Hit-and-Stop algorithm (paper Algorithm 4). It first
// selects a small sentinel set S_b* with the loose 1-(1-1/k)^b-ε/2
// guarantee, then runs the IM-Sentinel phase where every RR set stops the
// moment it reaches a sentinel, and returns the union of the two seed
// sets, which is (1-1/e-ε)-approximate with probability 1-δ.
//
// The generator argument selects the traversal strategy: HIST with
// Vanilla matches the paper's "HIST", and HIST with Subsim matches
// "HIST+SUBSIM".
func HIST(gen rrset.Generator, opt im.Options) (*im.Result, error) {
	start := time.Now() //lint:allow timing (wall-clock Elapsed reporting only)
	g := gen.Graph()
	n := g.N()
	opt.Revised = true // Algorithm 6 is integral to HIST
	if err := opt.Normalize(n); err != nil {
		return nil, err
	}
	eps1, eps2 := opt.Eps/2, opt.Eps/2
	delta1, delta2 := opt.Delta/2, opt.Delta/2

	tr := opt.Tracer
	run := tr.Span("hist")
	opt.Logger.RunStart("hist", n, g.M(), opt.K, opt.Eps, opt.Seed, opt.Workers)
	phase1 := run.Child("sentinel-phase")
	sentinels, p1 := sentinelSet(gen, opt, phase1, eps1, delta1)
	phase1.SetInt("sentinels", int64(len(sentinels))).
		SetInt("rr_generated", p1.rrGenerated).
		SetInt("sentinel_hits", p1.stats.SentinelHits).
		SetInt("rounds", int64(p1.rounds)).
		End()
	opt.Logger.PhaseDone("hist", "sentinel-phase", time.Since(start).Nanoseconds()) //lint:allow timing (phase.done log event, observability only)

	phase2start := time.Now() //lint:allow timing (phase.done log event, observability only)
	phase2 := run.Child("residual-phase")
	res, err := imSentinel(gen, opt, phase2, sentinels, eps2, delta2)
	if err != nil {
		phase2.End()
		run.End()
		return nil, err
	}
	// Every residual-phase RR set is sentinel-terminated, so the hit
	// rate here is exactly the fraction of sets HIST truncated early —
	// the directly measured form of Figure 3's hit-and-stop saving.
	if res.RRStats.Sets > 0 {
		phase2.SetFloat("sentinel_hit_rate",
			float64(res.RRStats.SentinelHits)/float64(res.RRStats.Sets))
	}
	phase2.SetInt("rounds", int64(res.Rounds)).End()
	opt.Logger.PhaseDone("hist", "residual-phase", time.Since(phase2start).Nanoseconds()) //lint:allow timing (phase.done log event, observability only)

	res.SentinelRR = p1.rrGenerated
	res.SentinelSize = len(sentinels)
	res.RRStats.Add(p1.stats)
	res.Rounds += p1.rounds
	run.SetInt("rounds", int64(res.Rounds)).End()
	res.Elapsed = time.Since(start) //lint:allow timing (wall-clock Elapsed reporting only)
	opt.Logger.RunDone("hist", res.Rounds, res.RRStats.Sets, res.Influence, res.Elapsed.Nanoseconds())
	res.Report = tr.Report()
	return res, nil
}

// phase1Report carries the sentinel phase's cost accounting.
type phase1Report struct {
	rrGenerated int64
	stats       rrset.Stats
	rounds      int
}

// sentinelSet is Algorithm 7. It returns the sentinel nodes S_b* (in
// greedy order) such that, with probability at least 1-δ₁,
// I(S_b*) ≥ (1-(1-1/k)^b-ε₁)·I(S_k°).
func sentinelSet(gen rrset.Generator, opt im.Options, phase *obs.Span, eps1, delta1 float64) ([]int32, phase1Report) {
	g := gen.Graph()
	n := g.N()
	k := opt.K

	theta0 := bounds.Theta0(delta1)
	thetaMax := bounds.ThetaMaxSentinel(n, k, eps1, delta1)
	if opt.Bound == im.BoundTight {
		if t := bounds.ThetaMaxSentinelTight(n, k, eps1, delta1); t < thetaMax {
			thetaMax = t
		}
	}
	iMax := ceilLog2Ratio(theta0, thetaMax)
	deltaU := delta1 / (3 * float64(iMax))
	deltaL := delta1 / (6 * float64(iMax))

	b1 := im.NewInstrumentedBatcher(gen, opt.Seed, opt.Workers, opt.Tracer.Metrics())
	outDeg := outDegrees(g)
	idx1 := im.NewEstimator(n, outDeg, opt, opt.Tracer.Metrics())

	rep := phase1Report{}
	theta := theta0
	sp := phase.Child("sampling")
	b1.Fill(idx1, int(theta), nil)
	sp.SetInt("theta", theta).End()

	var sb []int32
	for i := 1; ; i++ {
		rep.rounds = i
		rs := phase.Child(obs.Round(i))
		theta1 := int64(idx1.NumSets())
		ss := rs.Child("selection")
		sel := idx1.SelectSeeds(coverage.GreedyOptions{K: k, Revised: true})
		ss.End()
		bc := rs.Child("bound-check")
		upper := bounds.UpperBound(sel.CoverageUpper, theta1, n, deltaU)

		// Pick the largest prefix size b whose *estimated* lower bound
		// clears the prefix approximation target (Algorithm 7 line 8).
		b := 0
		for a := len(sel.Seeds); a >= 1; a-- {
			est := bounds.LowerBound(sel.Coverage[a-1], theta1, n, deltaU)
			if est/upper > bounds.ApproxFactor(k, a, eps1) {
				b = a
				break
			}
		}
		bc.End()
		rs.SetInt("theta", theta1).SetInt("prefix", int64(b))
		if b == 0 && i >= iMax {
			// Budget exhausted with no verified prefix: θ_max samples
			// make the full greedy set qualified by Lemma 6, so return
			// it (the second phase then has nothing left to select).
			sb = sel.Seeds
			rs.End()
			break
		}
		if b > 0 {
			sb = sel.Seeds[:b]
			sentinel := markSentinels(n, sb)
			// Verify on an independent sentinel-terminated collection:
			// an RR set is covered by S_b* exactly when it stopped on a
			// sentinel, so only the hit count matters.
			vs := rs.Child("verify")
			theta2 := theta1
			hits := countHits(b1, int(theta2), sentinel)
			rep.rrGenerated += theta2
			lower := bounds.LowerBound(hits, theta2, n, deltaL)
			target := bounds.ApproxFactor(k, b, eps1)
			if lower/upper > target {
				vs.SetInt("hits", hits).SetInt("drawn", theta2).End()
				rs.End()
				break
			}
			// Tighten once by growing R₂ to 4|R₁| (Algorithm 7 lines
			// 13-15) before giving up on this candidate.
			extra := 3 * theta2
			hits += countHits(b1, int(extra), sentinel)
			rep.rrGenerated += extra
			lower = bounds.LowerBound(hits, theta2+extra, n, deltaL)
			vs.SetInt("hits", hits).SetInt("drawn", theta2+extra).End()
			if lower/upper > target {
				rs.End()
				break
			}
			if i >= iMax {
				rs.End()
				break
			}
		}
		// Double R₁ and retry.
		sp := rs.Child("sampling")
		b1.Fill(idx1, int(theta), nil)
		sp.SetInt("theta", theta).End()
		rs.End()
		theta *= 2
	}
	rep.rrGenerated += int64(idx1.NumSets())
	rep.stats = b1.Stats()
	return sb, rep
}

// imSentinel is Algorithm 8: select the remaining k-b seeds over
// sentinel-terminated RR collections.
func imSentinel(gen rrset.Generator, opt im.Options, phase *obs.Span, sb []int32, eps2, delta2 float64) (*im.Result, error) {
	g := gen.Graph()
	n := g.N()
	k := opt.K
	b := len(sb)
	sentinel := markSentinels(n, sb)

	theta0 := bounds.Theta0(delta2)
	thetaWorst := bounds.ThetaMaxIMSentinel(n, k, b, eps2, delta2)
	thetaTight := bounds.ThetaMaxIMSentinelTight(n, k, b, eps2, delta2)
	if thetaTight > thetaWorst {
		thetaTight = thetaWorst
	}
	thetaMax := thetaWorst
	if opt.Bound == im.BoundTight && thetaTight < thetaMax {
		thetaMax = thetaTight
		opt.Tracer.Metrics().AddThetaSaved(thetaWorst - thetaTight)
	}
	iMax := ceilLog2Ratio(theta0, thetaMax)
	deltaIter := delta2 / (3 * float64(iMax))
	target := bounds.GreedyFactor(opt.Eps)

	batch := im.NewInstrumentedBatcher(gen, opt.Seed+1, opt.Workers, opt.Tracer.Metrics())
	outDeg := outDegrees(g)
	idx1 := im.NewEstimator(n, outDeg, opt, opt.Tracer.Metrics())
	idx2 := im.NewEstimator(n, outDeg, opt, opt.Tracer.Metrics())

	res := &im.Result{ThetaWorstCase: thetaWorst, ThetaTight: thetaTight}
	opt.Tracer.Metrics().SetTheta(thetaWorst, thetaTight)
	var hits1, hits2 int64
	var theta1, theta2 int64
	theta := theta0
	sp := phase.Child("sampling")
	hits1 += batch.Fill(idx1, int(theta), sentinel)
	hits2 += batch.Fill(idx2, int(theta), sentinel)
	sp.SetInt("theta", theta).End()
	theta1, theta2 = theta, theta

	for i := 1; ; i++ {
		res.Rounds = i
		rs := phase.Child(obs.Round(i))
		ss := rs.Child("selection")
		sel := idx1.SelectSeeds(coverage.GreedyOptions{
			K: k - b, Revised: true, Base: hits1, TopL: k, Exclude: sentinel,
		})
		ss.End()
		seeds := append(append(make([]int32, 0, k), sb...), sel.Seeds...)
		res.Seeds = seeds
		bc := rs.Child("bound-check")
		res.UpperBound = bounds.UpperBound(sel.CoverageUpper, theta1, n, deltaIter)
		cov2 := hits2 + idx2.CoverageOf(sel.Seeds)
		res.LowerBound = bounds.LowerBound(cov2, theta2, n, deltaIter)
		res.Influence = float64(cov2) * float64(n) / float64(theta2)
		if res.UpperBound > 0 {
			res.Approx = res.LowerBound / res.UpperBound
		}
		bc.End()
		opt.Tracer.Metrics().SetBounds(i, res.LowerBound, res.UpperBound, res.Approx)
		opt.Logger.RoundDone("hist", i, theta1, res.LowerBound, res.UpperBound, res.Approx)
		rs.SetInt("theta", theta1).SetFloat("approx", res.Approx)
		if res.Approx > target || i >= iMax {
			if res.Approx > target {
				opt.Logger.BoundCrossed("hist", i, res.Approx, target)
			}
			rs.End()
			break
		}
		sp := rs.Child("sampling")
		hits1 += batch.Fill(idx1, int(theta), sentinel)
		hits2 += batch.Fill(idx2, int(theta), sentinel)
		sp.SetInt("theta", theta).End()
		rs.End()
		theta1 += theta
		theta2 += theta
		theta *= 2
	}
	res.RRStats = batch.Stats()
	return res, nil
}

// countHits draws `count` sentinel-terminated RR sets and returns how
// many stopped on a sentinel (equivalently, are covered by the sentinel
// set). The sets are scanned in place in the worker arenas and never
// materialised.
func countHits(b *im.Batcher, count int, sentinel []bool) int64 {
	var hits int64
	b.Visit(count, sentinel, func(set []int32) bool {
		if len(set) > 0 && sentinel[set[len(set)-1]] {
			hits++
		}
		return true
	})
	return hits
}

func markSentinels(n int, sb []int32) []bool {
	sentinel := make([]bool, n)
	for _, v := range sb {
		sentinel[v] = true
	}
	return sentinel
}

func outDegrees(g *graph.Graph) []int32 {
	deg := make([]int32, g.N())
	for v := range deg {
		deg[v] = int32(g.OutDegree(int32(v)))
	}
	return deg
}

func ceilLog2Ratio(initial, max int64) int {
	i := 1
	for t := initial; t < max; t *= 2 {
		i++
	}
	if i < 1 {
		i = 1
	}
	return i
}
