// Package serve is the live telemetry plane over the obs layer: one
// http.Handler bundle exposing Prometheus metrics, health/readiness,
// live run progress (JSON and SSE), the full run report, and the
// net/http/pprof + expvar debug surface — everything a long-running IM
// service or a multi-minute CLI run wants to expose on one port.
//
// Endpoints (all GET):
//
//	/metrics   Prometheus text exposition (live MetricSet + derived
//	           worker utilization + Go runtime gauges)
//	/healthz   liveness: 200 as long as the process serves
//	/readyz    readiness: 200 once the graph is loaded, 503 before
//	/progress  live run progress: phase, rounds, RR sets, certified
//	           bounds; add ?sse=1 (or Accept: text/event-stream) for a
//	           server-sent-event stream, ?spans=1 to embed the span tree
//	/report    the full schema-versioned run report, live
//	/timeline  per-worker execution-timeline summary (JSON), once
//	           Tracer.EnableTimeline was called
//	/trace     the execution timeline as Chrome trace-event JSON —
//	           load it in Perfetto or chrome://tracing
//	/events    the flight recorder's black-box journal tail (JSON; ?n=
//	           caps the event count), once Tracer.EnableFlight was called
//	/debug/bundle  write a diagnostic bundle to disk and return its
//	           manifest (see internal/obs/flight)
//	/debug/*   net/http/pprof and expvar (when Options.Debug)
//
// Construct a Plane with New, mount Handler on any mux or call Start to
// listen. The plane only *reads* the tracer — all reads go through the
// lock-free live-snapshot paths of the obs package, so scraping a
// mid-run process never blocks or perturbs the run (see the obs package
// comment's memory-ordering contract).
package serve

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"subsim/internal/obs"
)

// Options tunes what the plane exposes.
type Options struct {
	// RuntimeMetrics includes the Go runtime gauges (goroutines, heap,
	// GC pauses, scheduler latency) and process gauges (uptime) on
	// /metrics. Disabled by golden tests that need byte-stable output.
	RuntimeMetrics bool
	// Debug mounts /debug/pprof and /debug/vars on the plane's mux.
	Debug bool
	// Now overrides the wall clock (tests); nil uses time.Now.
	Now func() time.Time
}

// Plane is one live telemetry surface bound to one tracer. All exported
// methods are safe for concurrent use.
type Plane struct {
	tracer *obs.Tracer
	opts   Options
	epoch  time.Time
	mux    *http.ServeMux

	graphLoaded  atomic.Bool
	runsStarted  atomic.Int64
	runsFinished atomic.Int64

	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
}

// New builds a plane over tr with runtime metrics and the debug surface
// enabled — what the CLIs mount under -serve. tr may be nil (endpoints
// then serve empty metric sets and span-free progress).
func New(tr *obs.Tracer) *Plane {
	return NewWithOptions(tr, Options{RuntimeMetrics: true, Debug: true})
}

// NewWithOptions builds a plane with explicit options.
func NewWithOptions(tr *obs.Tracer, o Options) *Plane {
	now := o.Now
	if now == nil {
		now = time.Now
	}
	p := &Plane{tracer: tr, opts: o, epoch: now()}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /readyz", p.handleReadyz)
	p.mux.HandleFunc("GET /progress", p.handleProgress)
	p.mux.HandleFunc("GET /report", p.handleReport)
	p.mux.HandleFunc("GET /timeline", p.handleTimeline)
	p.mux.HandleFunc("GET /trace", p.handleTrace)
	p.mux.HandleFunc("GET /events", p.handleEvents)
	p.mux.HandleFunc("GET /debug/bundle", p.handleBundle)
	p.mux.HandleFunc("GET /{$}", p.handleIndex)
	if o.Debug {
		p.mux.HandleFunc("/debug/pprof/", pprof.Index)
		p.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		p.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		p.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		p.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		p.mux.Handle("GET /debug/vars", expvar.Handler())
		publishExpvarReport(tr)
	}
	return p
}

// activeTracer backs the process-wide "subsim_run_report" expvar: expvar
// registration is global and panics on duplicates, so the plane
// registers one Func that always reads the most recently served tracer.
var (
	activeTracer  atomic.Pointer[obs.Tracer]
	expvarPublish sync.Once
)

func publishExpvarReport(tr *obs.Tracer) {
	if tr != nil {
		activeTracer.Store(tr)
	}
	expvarPublish.Do(func() {
		expvar.Publish("subsim_run_report", expvar.Func(func() any {
			return activeTracer.Load().Report()
		}))
	})
}

// SetGraphLoaded flips the readiness signal: /readyz returns 200 once
// the graph is loaded.
func (p *Plane) SetGraphLoaded(ok bool) { p.graphLoaded.Store(ok) }

// RunStarted marks one algorithm run in flight.
func (p *Plane) RunStarted() { p.runsStarted.Add(1) }

// RunFinished marks one algorithm run complete.
func (p *Plane) RunFinished() { p.runsFinished.Add(1) }

// Handler returns the plane's mux, for mounting on an existing server.
func (p *Plane) Handler() http.Handler { return p.mux }

// Start listens on addr (":0" picks a free port) and serves the plane in
// a background goroutine, returning the bound address.
func (p *Plane) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: p.mux, ReadHeaderTimeout: 5 * time.Second}
	p.mu.Lock()
	p.ln, p.srv = ln, srv
	p.mu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			// The listener died underneath us; nothing to clean up beyond
			// what Close already handles.
			_ = err
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the background server started by Start (no-op otherwise).
func (p *Plane) Close() error {
	p.mu.Lock()
	srv := p.srv
	p.srv, p.ln = nil, nil
	p.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (p *Plane) now() time.Time {
	if p.opts.Now != nil {
		return p.opts.Now()
	}
	return time.Now()
}

func (p *Plane) uptime() time.Duration { return p.now().Sub(p.epoch) }

func (p *Plane) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "subsim telemetry plane\n\n"+
		"  /metrics   Prometheus exposition (live)\n"+
		"  /healthz   liveness\n"+
		"  /readyz    readiness (graph loaded)\n"+
		"  /progress  live run progress (add ?sse=1 to stream, ?spans=1 for the span tree)\n"+
		"  /report    full run report (JSON)\n"+
		"  /timeline  per-worker execution-timeline summary (JSON)\n"+
		"  /trace     Chrome trace-event export (load in Perfetto)\n"+
		"  /events    flight-recorder journal tail (JSON, add ?n= to cap)\n"+
		"  /debug/bundle  write a diagnostic bundle, return its manifest\n"+
		"  /debug/    pprof and expvar\n")
}

func (p *Plane) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": p.uptime().Seconds(),
		"goroutines":     runtime.NumGoroutine(),
	})
}

func (p *Plane) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := p.graphLoaded.Load()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":          ready,
		"graph_loaded":   ready,
		"runs_started":   p.runsStarted.Load(),
		"runs_finished":  p.runsFinished.Load(),
		"runs_in_flight": p.runsStarted.Load() - p.runsFinished.Load(),
	})
}

func (p *Plane) handleReport(w http.ResponseWriter, _ *http.Request) {
	rep := p.tracer.Report()
	if rep == nil {
		http.Error(w, "no tracer attached", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// writeJSON renders one JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(buf, '\n'))
}
