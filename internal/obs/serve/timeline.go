package serve

import (
	"net/http"

	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
)

// timelineOf returns the plane's attached execution timeline, or nil
// when no tracer is attached or EnableTimeline was never called.
func (p *Plane) timelineOf() *timeline.Timeline {
	return p.tracer.Timeline()
}

// handleTimeline serves the per-phase utilization/imbalance summary of
// the execution timeline as JSON (404 until EnableTimeline is called).
func (p *Plane) handleTimeline(w http.ResponseWriter, _ *http.Request) {
	tl := p.timelineOf()
	if tl == nil {
		http.Error(w, "no timeline enabled", http.StatusNotFound)
		return
	}
	sum := timeline.Summarize(tl.Snapshot())
	writeJSON(w, http.StatusOK, sum)
}

// handleTrace serves the full execution timeline as a Chrome trace-event
// JSON document — loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing — with one track per worker plus a "phases" track
// rendered from the tracer's live span tree. Works mid-run: both the
// timeline snapshot and the span walk are lock-free.
func (p *Plane) handleTrace(w http.ResponseWriter, _ *http.Request) {
	tl := p.timelineOf()
	if tl == nil {
		http.Error(w, "no timeline enabled", http.StatusNotFound)
		return
	}
	snap := tl.Snapshot()
	spans := flattenSpans(p.tracer.LiveSpans())
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="subsim.trace.json"`)
	if err := timeline.WriteTrace(w, snap, spans); err != nil {
		// Headers are gone; nothing more useful to do than drop the conn.
		_ = err
	}
}

// flattenSpans walks the span forest depth-first into the flat
// phase-track shape the trace exporter takes; the shared implementation
// lives in obs (the flight-recorder bundle writer uses it too).
func flattenSpans(roots []*obs.SpanSnapshot) []timeline.Span {
	return obs.FlattenSpans(roots)
}
