package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"subsim/internal/obs"
	"subsim/internal/obs/flight"
)

// flightPlane builds a plane over a tracer with an attached flight
// recorder (sampler off for determinism) and a few journal events.
func flightPlane(t *testing.T, dir string) (*Plane, *obs.Flight) {
	t.Helper()
	tr := obs.NewTracer()
	clock := int64(0)
	tr.SetClock(func() int64 { clock += 10; return clock })
	fl := tr.EnableFlight(obs.FlightConfig{Dir: dir, Tool: "servetest", SampleEvery: -1})
	t.Cleanup(fl.Close)
	rec := fl.Journal().Stream(flight.StreamRun)
	for i := int64(0); i < 5; i++ {
		rec.Emit(flight.KindRoundDone, "opimc", i, 0, 0, 0, 0)
	}
	return New(tr), fl
}

func TestEventsWithoutFlight(t *testing.T) {
	p := deterministicPlane()
	if rec := get(t, p, "/events"); rec.Code != http.StatusNotFound {
		t.Errorf("/events without flight = %d, want 404", rec.Code)
	}
	if rec := get(t, p, "/debug/bundle"); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/bundle without flight = %d, want 404", rec.Code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	p, _ := flightPlane(t, t.TempDir())
	rec := get(t, p, "/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("/events = %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		Schema    string         `json:"schema"`
		Version   int            `json:"version"`
		Written   int64          `json:"written"`
		Truncated bool           `json:"truncated"`
		Events    []flight.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("parse /events: %v", err)
	}
	if doc.Schema != EventsSchema || doc.Version != EventsVersion {
		t.Errorf("envelope = %q v%d", doc.Schema, doc.Version)
	}
	if doc.Written != 5 || len(doc.Events) != 5 || doc.Truncated {
		t.Errorf("full tail = written %d, %d events, truncated %v", doc.Written, len(doc.Events), doc.Truncated)
	}

	// ?n= keeps the newest events and marks the truncation.
	rec = get(t, p, "/events?n=2")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 2 || !doc.Truncated {
		t.Fatalf("?n=2 returned %d events, truncated %v", len(doc.Events), doc.Truncated)
	}
	if doc.Events[1].A != 4 || doc.Events[0].A != 3 {
		t.Errorf("?n=2 must keep the newest events, got %+v", doc.Events)
	}

	// ?n=0 means everything. (Fresh doc: truncated is omitempty, so a
	// stale true would survive re-unmarshal.)
	doc.Truncated = false
	rec = get(t, p, "/events?n=0")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 5 || doc.Truncated {
		t.Errorf("?n=0 = %d events, truncated %v", len(doc.Events), doc.Truncated)
	}

	for _, bad := range []string{"/events?n=-1", "/events?n=zero"} {
		if rec := get(t, p, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", bad, rec.Code)
		}
	}
}

func TestBundleEndpoint(t *testing.T) {
	dir := t.TempDir()
	p, _ := flightPlane(t, dir)
	rec := get(t, p, "/debug/bundle")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/bundle = %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		Path string `json:"path"`
		flight.Manifest
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("parse /debug/bundle: %v", err)
	}
	if doc.Schema != flight.BundleSchema || doc.Version != flight.BundleVersion {
		t.Errorf("manifest envelope = %q v%d", doc.Schema, doc.Version)
	}
	if doc.Reason != "http" || doc.Tool != "servetest" {
		t.Errorf("manifest = reason %q tool %q", doc.Reason, doc.Tool)
	}
	if filepath.Dir(doc.Path) != dir {
		t.Errorf("bundle path %s not under %s", doc.Path, dir)
	}
	// The response manifest matches the one on disk, and the bundle is
	// complete (manifest written last).
	onDisk, err := flight.ReadManifest(doc.Path)
	if err != nil {
		t.Fatalf("on-disk manifest: %v", err)
	}
	if len(onDisk.Files) != len(doc.Files) {
		t.Errorf("response lists %d files, disk has %d", len(doc.Files), len(onDisk.Files))
	}
	for _, f := range onDisk.Files {
		if f.Error != "" {
			t.Errorf("artifact %s failed: %s", f.Name, f.Error)
		}
		if _, err := os.Stat(filepath.Join(doc.Path, f.Name)); err != nil {
			t.Errorf("artifact %s missing on disk: %v", f.Name, err)
		}
	}
}
