package serve

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	rtm "runtime/metrics"
	"strconv"
)

// promContentType is the Prometheus text exposition content type the
// scrape protocol expects.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetrics renders the live metric set plus derived and runtime
// gauges. The whole exposition is built in one buffer and written with a
// single Write, so a scrape never observes a torn document; individual
// values are atomic loads against the instruments the workers update.
func (p *Plane) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := p.tracer.Metrics().WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p.writeDerived(&buf)
	if p.opts.RuntimeMetrics {
		p.writeProcess(&buf)
		writeRuntime(&buf)
	}
	w.Header().Set("Content-Type", promContentType)
	_, _ = w.Write(buf.Bytes())
}

// writeDerived emits gauges computed from the raw instruments: the
// per-worker sampling utilization (busy ns over plane uptime) and the
// share of wall-clock the coverage half of the pipeline spent in the
// arena→store splice and CSR index builds (the PR-4 parallel sections).
func (p *Plane) writeDerived(buf *bytes.Buffer) {
	m := p.tracer.Metrics()
	up := p.uptime().Nanoseconds()
	if busy := m.WorkerBusySnapshot(); len(busy) > 0 && up > 0 {
		name := "subsim_worker_utilization"
		fmt.Fprintf(buf, "# HELP %s Fraction of process uptime worker spent generating RR sets.\n# TYPE %s gauge\n", name, name)
		for w, ns := range busy {
			fmt.Fprintf(buf, "%s{worker=\"%d\"} %s\n", name, w, promFloat(float64(ns)/float64(up)))
		}
	}
	if m != nil && up > 0 {
		splice := m.Splice.Sum()
		index := m.IndexBuild.Sum()
		name := "subsim_coverage_busy_ratio"
		fmt.Fprintf(buf, "# HELP %s Fraction of process uptime spent in arena splice + CSR index builds.\n# TYPE %s gauge\n", name, name)
		fmt.Fprintf(buf, "%s %s\n", name, promFloat(float64(splice+index)/float64(up)))
	}
}

// writeProcess emits the plane's own process gauges.
func (p *Plane) writeProcess(buf *bytes.Buffer) {
	writeGauge(buf, "subsim_process_uptime_seconds", "Seconds since the telemetry plane was constructed.", p.uptime().Seconds())
	writeGauge(buf, "subsim_graph_loaded", "1 once the graph is loaded (readiness signal).", b2f(p.graphLoaded.Load()))
	writeCounter(buf, "subsim_runs_started_total", "Algorithm runs started.", p.runsStarted.Load())
	writeCounter(buf, "subsim_runs_finished_total", "Algorithm runs finished.", p.runsFinished.Load())
}

// runtimeSamples are the runtime/metrics series exported on /metrics:
// scalar gauges/counters plus the GC-pause and scheduler-latency
// distributions rendered as Prometheus histograms.
var runtimeSamples = []struct {
	key  string // runtime/metrics name
	name string // exposition name
	help string
	kind string // "gauge", "counter" or "hist"
}{
	{"/sched/goroutines:goroutines", "subsim_go_goroutines", "Live goroutines.", "gauge"},
	{"/memory/classes/heap/objects:bytes", "subsim_go_heap_objects_bytes", "Bytes of live heap objects.", "gauge"},
	{"/memory/classes/total:bytes", "subsim_go_memory_total_bytes", "All memory mapped by the Go runtime.", "gauge"},
	{"/gc/cycles/total:gc-cycles", "subsim_go_gc_cycles_total", "Completed GC cycles.", "counter"},
	{"/gc/pauses:seconds", "subsim_go_gc_pause_seconds", "Stop-the-world GC pause distribution.", "hist"},
	{"/sched/latencies:seconds", "subsim_go_sched_latency_seconds", "Goroutine scheduling latency distribution.", "hist"},
}

// writeRuntime samples runtime/metrics and renders the configured
// series. Unknown keys (older runtimes) are skipped silently.
func writeRuntime(buf *bytes.Buffer) {
	samples := make([]rtm.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].key
	}
	rtm.Read(samples)
	for i, s := range samples {
		cfg := runtimeSamples[i]
		switch s.Value.Kind() {
		case rtm.KindUint64:
			v := s.Value.Uint64()
			if cfg.kind == "counter" {
				writeCounter(buf, cfg.name, cfg.help, int64(v))
			} else {
				writeGauge(buf, cfg.name, cfg.help, float64(v))
			}
		case rtm.KindFloat64:
			writeGauge(buf, cfg.name, cfg.help, s.Value.Float64())
		case rtm.KindFloat64Histogram:
			writeFloatHistogram(buf, cfg.name, cfg.help, s.Value.Float64Histogram())
		}
	}
}

// writeFloatHistogram renders a runtime/metrics Float64Histogram in the
// exposition format. runtime histograms carry no exact sum, so _sum is
// the midpoint estimate (flagged in HELP); buckets are compacted to the
// non-empty ones with exact cumulative counts.
func writeFloatHistogram(buf *bytes.Buffer, name, help string, h *rtm.Float64Histogram) {
	if h == nil || len(h.Counts) == 0 {
		return
	}
	fmt.Fprintf(buf, "# HELP %s %s (sum is a midpoint estimate).\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	var sum float64
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	for i, c := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if c > 0 && !math.IsInf(hi, 1) && !math.IsInf(lo, -1) {
			sum += float64(c) * (lo + hi) / 2
		}
		if c == 0 && i < len(h.Counts)-1 {
			cum += c
			continue
		}
		cum += c
		le := "+Inf"
		if !math.IsInf(hi, 1) {
			le = promFloat(hi)
		}
		fmt.Fprintf(buf, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	if !math.IsInf(h.Buckets[len(h.Buckets)-1], 1) {
		fmt.Fprintf(buf, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
	}
	fmt.Fprintf(buf, "%s_sum %s\n%s_count %d\n", name, promFloat(sum), name, total)
}

func writeGauge(buf *bytes.Buffer, name, help string, v float64) {
	fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
}

func writeCounter(buf *bytes.Buffer, name, help string, v int64) {
	fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promFloat(v float64) string {
	if v >= -1e15 && v <= 1e15 && v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
