package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
)

// timelinePlane builds a plane over a tracer whose timeline runs on a
// fake clock. The clock must be installed before EnableTimeline — the
// timeline captures it by value.
func timelinePlane() (*Plane, *obs.Tracer) {
	tr := obs.NewTracer()
	clock := int64(0)
	tr.SetClock(func() int64 { clock += 100; return clock })
	tl := tr.EnableTimeline(16)

	run := tr.Span("opimc")
	samp := run.Child("sampling")
	samp.End()

	tl.Worker(0).Record(timeline.PhaseGenerate, 0, 1000)
	tl.Worker(1).Record(timeline.PhaseGenerate, 100, 900)
	tl.Worker(0).Record(timeline.PhaseSplice, 1000, 1200)

	p := NewWithOptions(tr, Options{})
	return p, tr
}

func TestTimelineEndpoint(t *testing.T) {
	p, _ := timelinePlane()
	rec := get(t, p, "/timeline")
	if rec.Code != http.StatusOK {
		t.Fatalf("/timeline = %d: %s", rec.Code, rec.Body.String())
	}
	var sum timeline.Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Schema != timeline.SummarySchema || sum.SchemaVersion != timeline.SummarySchemaVersion {
		t.Errorf("summary not schema-stamped: %+v", sum)
	}
	if sum.Workers != 2 || sum.Records != 3 {
		t.Errorf("summary = %+v", sum)
	}
	if len(sum.Phases) != 2 || sum.Phases[0].Phase != "generate" || sum.Phases[1].Phase != "splice" {
		t.Errorf("phases = %+v", sum.Phases)
	}
}

func TestTraceEndpoint(t *testing.T) {
	p, _ := timelinePlane()
	rec := get(t, p, "/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "subsim.trace.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	// One coherent track per worker plus the phase-span track: thread
	// names for tid 1 (phases) and tids 2,3 (workers), span "X" events on
	// tid 1 (from the tracer's live span tree), record "X" events on the
	// worker tids.
	threads := map[int]string{}
	spanEvents, workerEvents := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.Tid] = ev.Args.Name
			}
		case "X":
			if ev.Tid == 1 {
				spanEvents++
			} else {
				workerEvents++
			}
		}
	}
	if threads[1] != "phases" || threads[2] != "worker 0" || threads[3] != "worker 1" {
		t.Errorf("thread names = %v", threads)
	}
	// The tracer has the root span and one child; both flatten to tid 1.
	if spanEvents != 2 {
		t.Errorf("span-track events = %d, want 2", spanEvents)
	}
	if workerEvents != 3 {
		t.Errorf("worker-track events = %d, want 3", workerEvents)
	}
}

// TestTimelineEndpointsWithoutTimeline pins the 404 contract: a tracer
// without EnableTimeline (and a nil tracer) yields 404, not 500.
func TestTimelineEndpointsWithoutTimeline(t *testing.T) {
	for name, p := range map[string]*Plane{
		"tracer-no-timeline": NewWithOptions(obs.NewTracer(), Options{}),
		"nil-tracer":         NewWithOptions(nil, Options{}),
	} {
		for _, path := range []string{"/timeline", "/trace"} {
			rec := get(t, p, path)
			if rec.Code != http.StatusNotFound {
				t.Errorf("%s %s = %d, want 404", name, path, rec.Code)
			}
		}
	}
}

// TestTraceDuringLiveRun scrapes /trace while workers are still
// recording, mirroring the mid-run scrape the plane exists for.
func TestTraceDuringLiveRun(t *testing.T) {
	p, tr := timelinePlane()
	tl := tr.Timeline()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := tl.Worker(2)
		for i := 0; i < 5000; i++ {
			base := int64(i) * 10
			r.Record(timeline.PhaseGenerate, base, base+5)
		}
	}()
	for i := 0; i < 20; i++ {
		rec := get(t, p, "/trace")
		if rec.Code != http.StatusOK {
			t.Fatalf("/trace mid-run = %d", rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatal("mid-run /trace not valid JSON")
		}
	}
	<-done
}
