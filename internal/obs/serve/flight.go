package serve

import (
	"net/http"
	"strconv"

	"subsim/internal/obs/flight"
)

// EventsSchema / EventsVersion identify the /events response document:
// a journal snapshot (possibly tail-truncated by ?n=) wrapped in the
// same schema envelope the bundle's journal.json uses, plus the
// truncation marker.
const (
	EventsSchema  = "subsim.flight-journal"
	EventsVersion = 1
)

// eventsDoc is the /events response body.
type eventsDoc struct {
	Schema    string         `json:"schema"`
	Version   int            `json:"version"`
	Streams   int            `json:"streams"`
	Written   int64          `json:"written"`
	Dropped   int64          `json:"dropped"`
	Truncated bool           `json:"truncated,omitempty"`
	Events    []flight.Event `json:"events"`
}

// handleEvents serves the flight recorder's journal tail as JSON (404
// until Tracer.EnableFlight is called). ?n= caps the number of events
// returned (most recent first in time order; default 256, 0 = all).
func (p *Plane) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := p.tracer.FlightJournal()
	if j == nil {
		http.Error(w, "no flight recorder enabled", http.StatusNotFound)
		return
	}
	limit := 256
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		limit = n
	}
	snap := j.Snapshot()
	doc := eventsDoc{
		Schema:  EventsSchema,
		Version: EventsVersion,
		Streams: snap.Streams,
		Written: snap.Written,
		Dropped: snap.Dropped,
		Events:  snap.Events,
	}
	if limit > 0 && len(doc.Events) > limit {
		doc.Events = doc.Events[len(doc.Events)-limit:]
		doc.Truncated = true
	}
	if doc.Events == nil {
		doc.Events = []flight.Event{}
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleBundle writes a diagnostic bundle to disk — same artifact set as
// a panic or watchdog bundle, reason "http" — and returns its manifest
// plus on-disk path as JSON (404 until Tracer.EnableFlight is called).
func (p *Plane) handleBundle(w http.ResponseWriter, _ *http.Request) {
	f := p.tracer.Flight()
	if f == nil {
		http.Error(w, "no flight recorder enabled", http.StatusNotFound)
		return
	}
	path, err := f.WriteBundle("http")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	man, err := flight.ReadManifest(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Path string `json:"path"`
		flight.Manifest
	}{Path: path, Manifest: man})
}
