package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"subsim/internal/obs"
)

// ProgressSchema identifies the /progress JSON document.
const (
	ProgressSchema        = "subsim.progress"
	ProgressSchemaVersion = 1
)

// Progress is the live view of a run: where it is (deepest open phase
// span), how far it got (rounds, RR sets) and how tight the certified
// bounds are. Every numeric field is read from the atomic live paths of
// the obs layer — building a Progress never blocks the run.
type Progress struct {
	Schema        string  `json:"schema"`
	Version       int     `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GraphLoaded   bool    `json:"graph_loaded"`
	RunsStarted   int64   `json:"runs_started"`
	RunsFinished  int64   `json:"runs_finished"`

	// Phase is the slash-joined path of open spans ("hist/residual-
	// phase/round-3"), or "" when no span is open (idle / run finished).
	Phase string `json:"phase"`
	// Round is the doubling round of the latest bound-check.
	Round int64 `json:"round"`

	RRSets        int64 `json:"rr_sets"`
	RRNodes       int64 `json:"rr_nodes"`
	EdgesExamined int64 `json:"edges_examined"`
	SentinelHits  int64 `json:"sentinel_hits"`

	LowerBound float64 `json:"lower_bound"`
	UpperBound float64 `json:"upper_bound"`
	Approx     float64 `json:"approx"`

	WorkerSets []int64        `json:"worker_sets,omitempty"`
	Meta       map[string]any `json:"meta,omitempty"`

	// Spans is the live span forest (only with ?spans=1; open spans
	// carry "open": true and their duration so far).
	Spans []*obs.SpanSnapshot `json:"spans,omitempty"`
}

// Snapshot builds the current progress view.
func (p *Plane) Snapshot(withSpans bool) Progress {
	tr := p.tracer
	prog := Progress{
		Schema:        ProgressSchema,
		Version:       ProgressSchemaVersion,
		UptimeSeconds: p.uptime().Seconds(),
		GraphLoaded:   p.graphLoaded.Load(),
		RunsStarted:   p.runsStarted.Load(),
		RunsFinished:  p.runsFinished.Load(),
		Meta:          tr.MetaSnapshot(),
	}
	if m := tr.Metrics(); m != nil {
		prog.Round = m.Round.Load()
		prog.RRSets = m.Sets.Load()
		prog.RRNodes = m.Nodes.Load()
		prog.EdgesExamined = m.Edges.Load()
		prog.SentinelHits = m.SentinelHits.Load()
		prog.LowerBound = m.Lower.Load()
		prog.UpperBound = m.Upper.Load()
		prog.Approx = m.Approx.Load()
		prog.WorkerSets = m.WorkerSnapshot()
	}
	spans := tr.LiveSpans()
	prog.Phase = currentPhase(spans)
	if withSpans {
		prog.Spans = spans
	}
	return prog
}

// currentPhase returns the slash-joined names of the open-span path: the
// last open root, then recursively its last open child — which is the
// phase the coordinator goroutine is executing right now.
func currentPhase(spans []*obs.SpanSnapshot) string {
	var path []string
	for {
		var open *obs.SpanSnapshot
		for i := len(spans) - 1; i >= 0; i-- {
			if spans[i].Open {
				open = spans[i]
				break
			}
		}
		if open == nil {
			break
		}
		path = append(path, open.Name)
		spans = open.Children
	}
	return strings.Join(path, "/")
}

func (p *Plane) handleProgress(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	withSpans := q.Get("spans") == "1"
	if q.Get("sse") == "1" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		p.streamProgress(w, r, withSpans)
		return
	}
	writeJSON(w, http.StatusOK, p.Snapshot(withSpans))
}

// streamProgress serves the SSE stream: one `data:` event per interval
// (default 500ms, override with ?interval_ms=) until the client goes
// away. Each event is the same JSON document /progress serves.
func (p *Plane) streamProgress(w http.ResponseWriter, r *http.Request, withSpans bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	interval := 500 * time.Millisecond
	if ms, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && ms > 0 {
		interval = time.Duration(ms) * time.Millisecond
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		buf, err := json.Marshal(p.Snapshot(withSpans))
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", buf); err != nil {
			return
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
