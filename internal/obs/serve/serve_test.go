package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"subsim/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// deterministicPlane builds a plane over a tracer with a fixed fake
// clock and a deterministic metric fill, with runtime metrics and debug
// off so /metrics is byte-stable.
func deterministicPlane() *Plane {
	tr := obs.NewTracer()
	clock := int64(-10)
	tr.SetClock(func() int64 { clock += 10; return clock })

	run := tr.Span("opimc")
	s := run.Child("sampling")
	s.SetInt("theta", 1024)
	s.End()
	r1 := run.Child("round-1")
	r1.SetFloat("approx", 0.75)
	// round-1 left open: the live views must report it as the current phase.

	m := tr.Metrics()
	for i := 0; i < 4; i++ {
		m.RRSize.Observe(int64(1 << i))
		m.EdgesPerSet.Observe(int64(3 << i))
	}
	m.Sets.Add(4)
	m.Nodes.Add(15)
	m.Edges.Add(45)
	m.SentinelHits.Add(1)
	m.WorkerSets(0).Add(3)
	m.WorkerSets(1).Add(1)
	m.WorkerBusyNS(0).Add(1_500_000_000)
	m.WorkerBusyNS(1).Add(500_000_000)
	m.SetBounds(1, 120.5, 200, 0.6025)

	epoch := time.Unix(1000, 0)
	now := epoch
	p := NewWithOptions(tr, Options{Now: func() time.Time { return now }})
	now = epoch.Add(2 * time.Second) // every later read sees 2s of uptime
	p.SetGraphLoaded(true)
	p.RunStarted()
	return p
}

func get(t *testing.T, p *Plane, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	return rec
}

func TestMetricsGolden(t *testing.T) {
	p := deterministicPlane()
	rec := get(t, p, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != promContentType {
		t.Fatalf("content-type = %q, want %q", ct, promContentType)
	}
	got := rec.Body.Bytes()
	golden := "testdata/metrics.golden"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// A second scrape of an unchanged plane must be byte-identical:
	// ordering is deterministic, not map-random.
	if again := get(t, p, "/metrics").Body.Bytes(); !bytes.Equal(got, again) {
		t.Error("two scrapes of an idle plane differ")
	}
}

func TestMetricsExpositionShape(t *testing.T) {
	body := get(t, deterministicPlane(), "/metrics").Body.String()
	for _, want := range []string{
		"subsim_rr_sets_total 4",
		"subsim_bound_lower 120.5",
		"subsim_bound_approx 0.6025",
		"subsim_round 1",
		`subsim_worker_sets_total{worker="0"} 3`,
		`subsim_worker_busy_ns_total{worker="1"} 500000000`,
		`subsim_worker_utilization{worker="0"} 0.75`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every HELP line has a matching TYPE line.
	help, typ := 0, 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# HELP") {
			help++
		}
		if strings.HasPrefix(line, "# TYPE") {
			typ++
		}
	}
	if help == 0 || help != typ {
		t.Errorf("HELP lines = %d, TYPE lines = %d", help, typ)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	tr := obs.NewTracer()
	p := NewWithOptions(tr, Options{})
	if rec := get(t, p, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", rec.Code)
	}
	if rec := get(t, p, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before graph load = %d, want 503", rec.Code)
	}
	p.SetGraphLoaded(true)
	rec := get(t, p, "/readyz")
	if rec.Code != http.StatusOK {
		t.Errorf("/readyz after graph load = %d, want 200", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["ready"] != true {
		t.Errorf("ready = %v, want true", doc["ready"])
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := deterministicPlane()
	rec := get(t, p, "/progress?spans=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var prog Progress
	if err := json.Unmarshal(rec.Body.Bytes(), &prog); err != nil {
		t.Fatal(err)
	}
	if prog.Schema != ProgressSchema || prog.Version != ProgressSchemaVersion {
		t.Errorf("schema = %q v%d", prog.Schema, prog.Version)
	}
	if prog.Phase != "opimc/round-1" {
		t.Errorf("phase = %q, want opimc/round-1", prog.Phase)
	}
	if prog.RRSets != 4 || prog.SentinelHits != 1 {
		t.Errorf("rr_sets = %d, sentinel_hits = %d", prog.RRSets, prog.SentinelHits)
	}
	if prog.LowerBound != 120.5 || prog.UpperBound != 200 || prog.Round != 1 {
		t.Errorf("bounds = [%v, %v] round %d", prog.LowerBound, prog.UpperBound, prog.Round)
	}
	if len(prog.Spans) == 0 {
		t.Fatal("?spans=1 returned no spans")
	}
	if r1 := prog.Spans[0].Find("round-1"); r1 == nil || !r1.Open {
		t.Errorf("round-1 span missing or not open: %+v", r1)
	}
	if !prog.GraphLoaded || prog.RunsStarted != 1 {
		t.Errorf("graph_loaded = %v, runs_started = %d", prog.GraphLoaded, prog.RunsStarted)
	}
	// Without ?spans=1 the span forest is omitted.
	var lean Progress
	if err := json.Unmarshal(get(t, p, "/progress").Body.Bytes(), &lean); err != nil {
		t.Fatal(err)
	}
	if len(lean.Spans) != 0 {
		t.Errorf("plain /progress embedded %d spans", len(lean.Spans))
	}
}

func TestProgressSSE(t *testing.T) {
	p := deterministicPlane()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/progress?sse=1&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	var data string
	for sc.Scan() && events < 2 {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			events++
		}
	}
	if events < 2 {
		t.Fatalf("saw %d SSE events, want >= 2 (scan err: %v)", events, sc.Err())
	}
	var prog Progress
	if err := json.Unmarshal([]byte(data), &prog); err != nil {
		t.Fatalf("SSE data is not progress JSON: %v\n%s", err, data)
	}
	if prog.Phase == "" {
		t.Error("SSE progress has empty phase mid-run")
	}
}

func TestReportEndpoint(t *testing.T) {
	p := deterministicPlane()
	rec := get(t, p, "/report")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var rep obs.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != obs.Schema || rep.Version != obs.SchemaVersion {
		t.Errorf("schema = %q v%d", rep.Schema, rep.Version)
	}
	if rep.Counters["rr_sets_total"] != 4 {
		t.Errorf("rr_sets_total = %d, want 4", rep.Counters["rr_sets_total"])
	}

	// A nil tracer serves 404, not a panic.
	empty := NewWithOptions(nil, Options{})
	if rec := get(t, empty, "/report"); rec.Code != http.StatusNotFound {
		t.Errorf("nil-tracer /report = %d, want 404", rec.Code)
	}
}

func TestNilTracerEndpointsServe(t *testing.T) {
	p := NewWithOptions(nil, Options{RuntimeMetrics: true})
	for _, path := range []string{"/metrics", "/healthz", "/progress", "/"} {
		if rec := get(t, p, path); rec.Code != http.StatusOK {
			t.Errorf("nil-tracer %s = %d, want 200", path, rec.Code)
		}
	}
}

func TestStartAndClose(t *testing.T) {
	p := New(obs.NewTracer())
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	// Debug surface is mounted by New.
	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars = %d", resp.StatusCode)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}
