package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"subsim/internal/graph"
	"subsim/internal/im"
	"subsim/internal/obs"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// TestConcurrentScrapeDuringRun is the live-read contract test: an
// OPIM-C run with 8 generation workers races against goroutines hammering
// /metrics, /progress(?spans=1) and /report the whole time. Under -race
// this proves the scrape path never trips over the run's span and metric
// writes, and the assertions prove the scraped counters are monotone and
// parse as the documents they claim to be.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	g, err := graph.GenPreferentialAttachment(3000, 4, false, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()

	tr := obs.NewTracer()
	p := New(tr)
	p.SetGraphLoaded(true)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var scrapes int
	var lastSets int64
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}

	scrape := func(path string, check func(body []byte)) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				fail("%s: %v", path, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if err != nil {
				fail("%s read: %v", path, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				fail("%s status %d", path, resp.StatusCode)
				return
			}
			if check != nil {
				check(body)
			}
			mu.Lock()
			scrapes++
			mu.Unlock()
		}
	}

	wg.Add(3)
	go scrape("/metrics", func(body []byte) {
		// rr_sets_total must be present and monotone across scrapes.
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := strings.CutPrefix(line, "subsim_rr_sets_total "); ok {
				sets, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
				if err != nil {
					fail("parse rr_sets_total %q: %v", v, err)
					return
				}
				mu.Lock()
				if sets < lastSets {
					t.Errorf("rr_sets_total went backwards: %d -> %d", lastSets, sets)
				}
				lastSets = sets
				mu.Unlock()
				return
			}
		}
		fail("scrape missing subsim_rr_sets_total")
	})
	go scrape("/progress?spans=1", func(body []byte) {
		var prog Progress
		if err := json.Unmarshal(body, &prog); err != nil {
			fail("progress unmarshal: %v", err)
		}
	})
	go scrape("/report", func(body []byte) {
		var rep obs.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			fail("report unmarshal: %v", err)
		}
	})

	res, err := im.OPIMC(rrset.NewSubsim(g), im.Options{
		K: 20, Eps: 0.3, Seed: 42, Workers: 8, Tracer: tr,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 20 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	if scrapes == 0 {
		t.Error("no scrape completed during the run")
	}
	// After the run the live view agrees with the final report.
	final := tr.Metrics().Sets.Load()
	if final < lastSets {
		t.Errorf("final sets %d < last scraped %d", final, lastSets)
	}
	if prog := p.Snapshot(false); prog.RRSets != final {
		t.Errorf("snapshot sets %d != metric %d", prog.RRSets, final)
	}
}
