// Package obs is the repository's dependency-free observability layer:
// phase spans, low-overhead metrics, and machine-readable run reports.
//
// The paper's headline claims are cost claims — SUBSIM's edge-examination
// count (Lemma 4) and HIST's average-RR-size reduction (Figure 3b) — so
// the algorithms need visibility into where time and samples go: per
// doubling round, per HIST phase, per worker, and per RR set. This
// package provides three pieces:
//
//   - Tracer / Span: nested, timestamped phase spans ("sampling",
//     "selection", "bound-check", "sentinel-phase", "residual-phase",
//     one span per doubling round) with attached key/value attributes.
//   - MetricSet: atomic counters and fixed-bucket power-of-two
//     histograms (RR set size, edge examinations per set, geometric-skip
//     lengths, per-worker sets generated) cheap enough to stay on in the
//     RR-generation hot path.
//   - Report: a schema-versioned JSON run report (see report.go) and a
//     Prometheus-style text dump (see prom.go).
//
// # The nil-tracer zero-overhead contract
//
// Every method of Tracer, Span, Counter and Histogram is safe to call on
// a nil receiver and is a no-op there. A nil *Tracer therefore threads
// through im.Options at zero cost: span creation returns nil without
// allocating, attribute setters return immediately, and the
// rrset.Instrument wrapper unwraps to the bare generator when handed a
// nil MetricSet. Instrumented code never needs an "is tracing enabled?"
// branch of its own.
//
// Tracer and Span creation/attribute methods are intended for the
// single-goroutine coordinator loop of each algorithm; MetricSet
// instruments are fully concurrent (atomic) and shared by all workers.
package obs

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value attachment on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed phase of a run. Spans nest: obtain children with
// Child. All methods are nil-safe no-ops, so code instrumented against a
// nil Tracer pays nothing.
type Span struct {
	tracer   *Tracer
	name     string
	startNS  int64 // nanos since the tracer epoch
	endNS    int64 // 0 while the span is open
	attrs    []Attr
	children []*Span
}

// Tracer records a tree of spans plus a MetricSet for one run. Construct
// with NewTracer; the zero value is not usable, but a nil *Tracer is a
// valid "tracing disabled" instance for every method.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	clock   func() int64 // nanos since epoch; injectable for tests
	roots   []*Span
	meta    map[string]any
	metrics *MetricSet
}

// NewTracer returns an enabled tracer with a fresh MetricSet.
func NewTracer() *Tracer {
	t := &Tracer{
		epoch:   time.Now(),
		metrics: NewMetricSet(),
		meta:    map[string]any{},
	}
	t.clock = func() int64 { return int64(time.Since(t.epoch)) }
	return t
}

// SetClock replaces the span clock with fn (nanoseconds since the trace
// epoch). It exists so tests can produce deterministic reports.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// Metrics returns the tracer's metric set, or nil for a nil tracer —
// which in turn disables every instrument handed out downstream.
func (t *Tracer) Metrics() *MetricSet {
	if t == nil {
		return nil
	}
	return t.metrics
}

// SetMeta attaches a run-level key/value to the report ("algorithm",
// "graph_n", ...).
func (t *Tracer) SetMeta(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta[key] = value
	t.mu.Unlock()
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	fn := t.clock
	t.mu.Unlock()
	return fn()
}

// Span opens a new root-level span. End it with Span.End. Returns nil
// (allocation-free) on a nil tracer.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, startNS: t.now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Child opens a nested span under s. Returns nil on a nil span, so
// chains rooted in a nil tracer stay allocation-free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, startNS: s.tracer.now()}
	s.children = append(s.children, c)
	return c
}

// End closes the span. Ending an already-ended span keeps the first end
// time. Spans still open when the report is built are closed at report
// time.
func (s *Span) End() {
	if s == nil || s.endNS != 0 {
		return
	}
	s.endNS = s.tracer.now()
}

// SetAttr attaches a key/value to the span and returns s for chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// SetInt attaches an integer attribute. The argument is a plain int64 so
// the call is allocation-free on a nil span.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.SetAttr(key, v)
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	return s.SetAttr(key, v)
}

// roundNames caches the common doubling-round span names so per-round
// instrumentation allocates nothing even when tracing is on.
var roundNames = func() [64]string {
	var a [64]string
	for i := range a {
		a[i] = "round-" + strconv.Itoa(i)
	}
	return a
}()

// Round returns the canonical span name for doubling round i
// ("round-1", "round-2", ...), allocation-free for i < 64.
func Round(i int) string {
	if i >= 0 && i < len(roundNames) {
		return roundNames[i]
	}
	return "round-" + strconv.Itoa(i)
}
