// Package obs is the repository's dependency-free observability layer:
// phase spans, low-overhead metrics, structured run logging, and
// machine-readable run reports.
//
// The paper's headline claims are cost claims — SUBSIM's edge-examination
// count (Lemma 4) and HIST's average-RR-size reduction (Figure 3b) — so
// the algorithms need visibility into where time and samples go: per
// doubling round, per HIST phase, per worker, and per RR set. This
// package provides four pieces:
//
//   - Tracer / Span: nested, timestamped phase spans ("sampling",
//     "selection", "bound-check", "sentinel-phase", "residual-phase",
//     one span per doubling round) with attached key/value attributes.
//   - MetricSet: atomic counters, gauges and fixed-bucket power-of-two
//     histograms (RR set size, edge examinations per set, geometric-skip
//     lengths, per-worker sets generated and busy time, live certified
//     bounds) cheap enough to stay on in the RR-generation hot path.
//   - Logger: a nil-safe structured event logger over log/slog
//     (see log.go) for round-boundary and bound-crossing events.
//   - Report: a schema-versioned JSON run report (see report.go) and a
//     Prometheus-style text dump (see prom.go). The live HTTP telemetry
//     plane over all of the above lives in the obs/serve subpackage.
//
// # The nil-tracer zero-overhead contract
//
// Every method of Tracer, Span, Logger, Counter, Gauge and Histogram is
// safe to call on a nil receiver and is a no-op there. A nil *Tracer
// therefore threads through im.Options at zero cost: span creation
// returns nil without allocating, attribute setters return immediately,
// and the rrset.Instrument wrapper unwraps to the bare generator when
// handed a nil MetricSet. Instrumented code never needs an "is tracing
// enabled?" branch of its own.
//
// # Live reads and memory ordering
//
// Spans are written by exactly one goroutine — the single-goroutine
// coordinator loop of each algorithm — but may be *read* concurrently
// and lock-free by the live telemetry plane (obs/serve's /progress and
// /report endpoints) while the run is still in flight. The contract:
//
//   - name and startNS are immutable after the span is published.
//   - endNS is an atomic: writers Store it once in End, readers Load it
//     (0 means "still open").
//   - attrs and children are atomic.Pointer slices updated copy-on-write
//     by the single writer: the writer builds a new slice, then publishes
//     it with an atomic Store (release); readers Load (acquire) and never
//     mutate what they see. The slice contents are therefore immutable
//     once published, and a reader sees a fully initialised child because
//     the child's fields are written before the pointer store.
//   - the root-span list is guarded by the tracer mutex; LiveSpans copies
//     it under the lock and then walks the tree lock-free.
//
// MetricSet instruments are fully concurrent (atomic) and shared by all
// workers.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subsim/internal/obs/flight"
	"subsim/internal/obs/timeline"
)

// Attr is one key/value attachment on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed phase of a run. Spans nest: obtain children with
// Child. All methods are nil-safe no-ops, so code instrumented against a
// nil Tracer pays nothing. A span is mutated by one goroutine only but
// may be read concurrently — see the package comment's memory-ordering
// contract.
type Span struct {
	tracer  *Tracer
	name    string
	startNS int64        // nanos since the tracer epoch; immutable
	endNS   atomic.Int64 // 0 while the span is open

	attrs    atomic.Pointer[[]Attr]
	children atomic.Pointer[[]*Span]
}

// Tracer records a tree of spans plus a MetricSet for one run. Construct
// with NewTracer; the zero value is not usable, but a nil *Tracer is a
// valid "tracing disabled" instance for every method.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	clock   func() int64 // nanos since epoch; injectable for tests
	roots   []*Span
	meta    map[string]any
	metrics *MetricSet

	// flight is the attached flight recorder (see EnableFlight); the
	// coordinator-stream journal recorder is mirrored in flightRec so the
	// span hooks — including Span.End, which never takes the tracer
	// mutex — reach it with one atomic load.
	flight    *Flight
	flightRec atomic.Pointer[flight.Recorder]
}

// flightRecorder returns the journal recorder for span events (nil when
// no flight recorder is attached, making every hook a no-op via the
// flight package's nil contract).
func (t *Tracer) flightRecorder() *flight.Recorder {
	if t == nil {
		return nil
	}
	return t.flightRec.Load()
}

// NewTracer returns an enabled tracer with a fresh MetricSet.
func NewTracer() *Tracer {
	t := &Tracer{
		epoch:   time.Now(),
		metrics: NewMetricSet(),
		meta:    map[string]any{},
	}
	t.clock = func() int64 { return int64(time.Since(t.epoch)) }
	return t
}

// SetClock replaces the span clock with fn (nanoseconds since the trace
// epoch). It exists so tests can produce deterministic reports.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// Metrics returns the tracer's metric set, or nil for a nil tracer —
// which in turn disables every instrument handed out downstream.
func (t *Tracer) Metrics() *MetricSet {
	if t == nil {
		return nil
	}
	return t.metrics
}

// SetMeta attaches a run-level key/value to the report ("algorithm",
// "graph_n", ...).
func (t *Tracer) SetMeta(key string, value any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta[key] = value
	t.mu.Unlock()
}

// MetaSnapshot copies the run-level metadata (nil for a nil tracer or
// when no metadata was set).
func (t *Tracer) MetaSnapshot() map[string]any {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.meta) == 0 {
		return nil
	}
	out := make(map[string]any, len(t.meta))
	for k, v := range t.meta {
		out[k] = v
	}
	return out
}

func (t *Tracer) now() int64 {
	t.mu.Lock()
	fn := t.clock
	t.mu.Unlock()
	return fn()
}

// EnableTimeline attaches a per-worker execution timeline (see the
// internal/obs/timeline package) to the tracer's metric set, using the
// tracer's *current* clock so fake clocks installed via SetClock flow
// through to timeline records — the property the golden trace tests rely
// on. capacityPerWorker <= 0 picks timeline.DefaultCapacity. Idempotent:
// a second call returns the existing timeline. Returns nil on a nil
// tracer, keeping the nil-tracer contract: a nil *timeline.Timeline (and
// the nil *timeline.Ring it hands out) is a zero-cost no-op everywhere.
func (t *Tracer) EnableTimeline(capacityPerWorker int) *timeline.Timeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metrics.Timeline == nil {
		// Capture the clock by value: the timeline's readers must never
		// take the tracer mutex (Ring.Now runs on the per-set hot path).
		t.metrics.Timeline = timeline.New(capacityPerWorker, t.clock)
	}
	return t.metrics.Timeline
}

// Timeline returns the attached execution timeline, or nil when
// EnableTimeline was never called (or the tracer is nil).
func (t *Tracer) Timeline() *timeline.Timeline {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.metrics.Timeline
}

// Span opens a new root-level span. End it with Span.End. Returns nil
// (allocation-free) on a nil tracer.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, startNS: t.now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	t.flightRecorder().Emit(flight.KindSpanOpen, name, s.startNS, 0, 0, 0, 0)
	return s
}

// Child opens a nested span under s. Returns nil on a nil span, so
// chains rooted in a nil tracer stay allocation-free. Child must be
// called from the span's owning goroutine (the single writer).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, startNS: s.tracer.now()}
	// Copy-on-write append: build the new slice fully, then publish it
	// with one atomic store so lock-free readers never observe a
	// half-appended list.
	old := s.children.Load()
	var next []*Span
	if old == nil {
		next = []*Span{c}
	} else {
		next = make([]*Span, len(*old)+1)
		copy(next, *old)
		next[len(*old)] = c
	}
	s.children.Store(&next)
	s.tracer.flightRecorder().Emit(flight.KindSpanOpen, name, c.startNS, 0, 0, 0, 0)
	return c
}

// End closes the span. Ending an already-ended span keeps the first end
// time. Spans still open when the report is built are closed at report
// time.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.endNS.CompareAndSwap(0, s.tracer.now()) {
		// First close only: the journal sees each span transition once.
		// A is the span's start offset, so close events carry duration.
		s.tracer.flightRecorder().Emit(flight.KindSpanClose, s.name, s.startNS, 0, 0, 0, 0)
	}
}

// EndNS returns the span's end offset in nanoseconds since the trace
// epoch, or 0 while the span is still open. Safe to call concurrently
// with the owning goroutine.
func (s *Span) EndNS() int64 {
	if s == nil {
		return 0
	}
	return s.endNS.Load()
}

// Name returns the span name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches a key/value to the span and returns s for chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	old := s.attrs.Load()
	var next []Attr
	if old == nil {
		next = []Attr{{Key: key, Value: value}}
	} else {
		next = make([]Attr, len(*old)+1)
		copy(next, *old)
		next[len(*old)] = Attr{Key: key, Value: value}
	}
	s.attrs.Store(&next)
	return s
}

// SetInt attaches an integer attribute. The argument is a plain int64 so
// the call is allocation-free on a nil span.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.SetAttr(key, v)
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	return s.SetAttr(key, v)
}

// liveAttrs returns the currently published attribute slice (read-only).
func (s *Span) liveAttrs() []Attr {
	if p := s.attrs.Load(); p != nil {
		return *p
	}
	return nil
}

// liveChildren returns the currently published child slice (read-only).
func (s *Span) liveChildren() []*Span {
	if p := s.children.Load(); p != nil {
		return *p
	}
	return nil
}

// liveRoots copies the root-span list under the tracer lock; the
// returned slice is safe to walk lock-free.
func (t *Tracer) liveRoots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// roundNames caches the common doubling-round span names so per-round
// instrumentation allocates nothing even when tracing is on.
var roundNames = func() [64]string {
	var a [64]string
	for i := range a {
		a[i] = "round-" + strconv.Itoa(i)
	}
	return a
}()

// Round returns the canonical span name for doubling round i
// ("round-1", "round-2", ...), allocation-free for i < 64.
func Round(i int) string {
	if i >= 0 && i < len(roundNames) {
		return roundNames[i]
	}
	return "round-" + strconv.Itoa(i)
}
