package timeline

import (
	"bufio"
	"io"
	"strconv"
)

// Span is a flattened phase-level interval for the trace's coordinator
// track — typically rendered from the tracer's live span tree by the
// serve plane (the timeline package cannot import obs without a cycle,
// so callers flatten SpanSnapshots into this shape).
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
}

// Trace-event track layout: Perfetto groups events by (pid, tid). The
// whole process is pid 1; tid 1 is the phase-span (coordinator) track
// and worker w renders on tid 2+w, so every worker gets one coherent
// horizontal track.
const (
	tracePID     = 1
	spanTrackTID = 1
	workerTIDOff = 2
)

// WriteTrace renders snap (per-worker records) and spans (the phase
// track) as a Chrome trace-event JSON document loadable in Perfetto or
// chrome://tracing. Output is deterministic for a deterministic input:
// fields are emitted in a fixed order and timestamps formatted with
// fixed precision, so golden tests can pin the exact bytes.
func WriteTrace(w io.Writer, snap Snapshot, spans []Span) error {
	// bufio.Writer errors are sticky; the single Flush at the end surfaces
	// them, so intermediate write errors are discarded deliberately.
	bw := bufio.NewWriter(w)
	_, _ = bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(ev string) {
		if !first {
			_ = bw.WriteByte(',')
		}
		first = false
		_, _ = bw.WriteString("\n")
		_, _ = bw.WriteString(ev)
	}

	// Metadata: name the process and the tracks so Perfetto's UI reads
	// "phases", "worker 0", "worker 1", ... instead of bare tids.
	emit(metaEvent("process_name", tracePID, 0, "subsim"))
	emit(metaEvent("thread_name", tracePID, spanTrackTID, "phases"))
	for w := 0; w < snap.Workers; w++ {
		emit(metaEvent("thread_name", tracePID, workerTIDOff+w, "worker "+strconv.Itoa(w)))
	}

	for _, s := range spans {
		emit(completeEvent(s.Name, spanTrackTID, s.StartNS, s.EndNS))
	}
	for _, rec := range snap.Records {
		emit(completeEvent(rec.Phase.String(), workerTIDOff+rec.Worker, rec.StartNS, rec.EndNS))
	}

	_, _ = bw.WriteString("\n]}\n")
	return bw.Flush()
}

// metaEvent renders one "M" metadata event with a fixed field order.
func metaEvent(name string, pid, tid int, value string) string {
	return `{"ph":"M","pid":` + strconv.Itoa(pid) +
		`,"tid":` + strconv.Itoa(tid) +
		`,"name":"` + name +
		`","args":{"name":` + strconv.Quote(value) + `}}`
}

// completeEvent renders one "X" complete event. Trace-event timestamps
// are microsecond floats; three decimals keeps full nanosecond
// precision.
func completeEvent(name string, tid int, startNS, endNS int64) string {
	dur := endNS - startNS
	if dur < 0 {
		dur = 0
	}
	return `{"ph":"X","pid":` + strconv.Itoa(tracePID) +
		`,"tid":` + strconv.Itoa(tid) +
		`,"name":` + strconv.Quote(name) +
		`,"ts":` + microString(startNS) +
		`,"dur":` + microString(dur) + `}`
}

// microString formats ns as a microsecond decimal with exactly three
// fractional digits (e.g. 1500 ns → "1.500"), keeping output byte-stable
// without float formatting.
func microString(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	whole := ns / 1e3
	frac := ns % 1e3
	s := strconv.FormatInt(whole, 10) + "." + pad3(frac)
	if neg {
		return "-" + s
	}
	return s
}

func pad3(v int64) string {
	switch {
	case v >= 100:
		return strconv.FormatInt(v, 10)
	case v >= 10:
		return "0" + strconv.FormatInt(v, 10)
	default:
		return "00" + strconv.FormatInt(v, 10)
	}
}
