package timeline

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tl *Timeline
	if tl.Now() != 0 || tl.Capacity() != 0 || tl.Workers() != 0 {
		t.Error("nil timeline accessors not zero")
	}
	if r := tl.Worker(3); r != nil {
		t.Error("nil timeline returned a ring")
	}
	snap := tl.Snapshot()
	if snap.Workers != 0 || len(snap.Records) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}

	var r *Ring
	r.Record(PhaseGenerate, 1, 2) // must not panic
	if r.Now() != 0 || r.Worker() != 0 || r.Written() != 0 {
		t.Error("nil ring accessors not zero")
	}
	tl2 := New(8, nil)
	if tl2.Worker(-1) != nil {
		t.Error("negative worker index returned a ring")
	}
}

func TestPhaseNames(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var q Phase
		if err := q.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if q != p {
			t.Errorf("phase %d round-tripped to %d", p, q)
		}
	}
	var q Phase
	if err := q.UnmarshalText([]byte("no-such-phase")); err != nil || q != PhaseOther {
		t.Errorf("unknown phase parsed to %v, %v", q, nil)
	}
	if Phase(200).String() != "other" {
		t.Error("out-of-range phase String")
	}
}

// fakeClock is a deterministic timeline clock for golden tests.
func fakeClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1000) }
}

func TestRecordAndSnapshot(t *testing.T) {
	tl := New(16, fakeClock())
	r0 := tl.Worker(0)
	r1 := tl.Worker(1)
	if tl.Workers() != 2 {
		t.Fatalf("Workers() = %d", tl.Workers())
	}
	if r0.Worker() != 0 || r1.Worker() != 1 {
		t.Fatal("ring worker ids wrong")
	}
	// Same ring back on repeat lookup (the atomic fast path).
	if tl.Worker(0) != r0 {
		t.Fatal("Worker(0) not stable")
	}

	r1.Record(PhaseSplice, 500, 900)
	r0.Record(PhaseGenerate, 100, 300)
	r0.Record(PhaseGenerate, 300, 450)

	snap := tl.Snapshot()
	if snap.Workers != 2 || snap.Written != 3 || snap.Dropped != 0 {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if len(snap.Records) != 3 {
		t.Fatalf("got %d records", len(snap.Records))
	}
	// Sorted by start time regardless of which ring they came from.
	want := []Record{
		{Worker: 0, Phase: PhaseGenerate, StartNS: 100, EndNS: 300},
		{Worker: 0, Phase: PhaseGenerate, StartNS: 300, EndNS: 450},
		{Worker: 1, Phase: PhaseSplice, StartNS: 500, EndNS: 900},
	}
	for i, rec := range snap.Records {
		if rec != want[i] {
			t.Errorf("records[%d] = %#v, want %#v", i, rec, want[i])
		}
	}
}

func TestRingWraparoundDropCount(t *testing.T) {
	tl := New(4, fakeClock())
	r := tl.Worker(0)
	const writes = 10
	for i := 0; i < writes; i++ {
		base := int64(i * 100)
		r.Record(PhaseGenerate, base, base+50)
	}
	if r.Written() != writes {
		t.Fatalf("Written = %d", r.Written())
	}
	snap := tl.Snapshot()
	if len(snap.Records) != 4 {
		t.Fatalf("got %d records, want capacity 4", len(snap.Records))
	}
	if snap.Dropped != writes-4 {
		t.Fatalf("Dropped = %d, want %d", snap.Dropped, writes-4)
	}
	// The survivors are the newest four, in order.
	for i, rec := range snap.Records {
		wantStart := int64((writes - 4 + i) * 100)
		if rec.StartNS != wantStart {
			t.Errorf("records[%d].StartNS = %d, want %d", i, rec.StartNS, wantStart)
		}
	}
	if snap.Written != writes {
		t.Errorf("snapshot Written = %d", snap.Written)
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New(5, nil).Capacity(); got != 8 {
		t.Errorf("capacity 5 rounded to %d, want 8", got)
	}
	if got := New(0, nil).Capacity(); got != DefaultCapacity {
		t.Errorf("capacity 0 → %d, want DefaultCapacity", got)
	}
}

// TestConcurrentRecordDuringExport hammers one ring from its writer
// goroutine while a reader loops Snapshot, asserting under -race that
// the seqlock never emits a torn record. Each record is written with
// EndNS = StartNS + 7, so any mix of two generations is detectable.
func TestConcurrentRecordDuringExport(t *testing.T) {
	tl := New(64, fakeClock())
	const writes = 20000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r := tl.Worker(0)
		for i := 0; i < writes; i++ {
			base := int64(i) * 13
			r.Record(Phase(i%int(numPhases)), base, base+7)
		}
	}()
	var snaps, torn int
	go func() {
		defer wg.Done()
		for {
			snap := tl.Snapshot()
			snaps++
			for _, rec := range snap.Records {
				if rec.EndNS-rec.StartNS != 7 || rec.StartNS%13 != 0 {
					torn++
				}
			}
			if snap.Written >= writes {
				return
			}
		}
	}()
	wg.Wait()
	if torn > 0 {
		t.Fatalf("%d torn records escaped the seqlock across %d snapshots", torn, snaps)
	}
	final := tl.Snapshot()
	if final.Written != writes {
		t.Fatalf("Written = %d, want %d", final.Written, writes)
	}
	// 64-slot ring, 20000 writes: exactly writes-64 dropped at rest.
	if final.Dropped != writes-64 {
		t.Fatalf("Dropped = %d, want %d", final.Dropped, writes-64)
	}
}

// TestConcurrentWorkerGrowth races ring creation against snapshotting;
// the copy-on-write vector must never present a half-built view.
func TestConcurrentWorkerGrowth(t *testing.T) {
	tl := New(8, fakeClock())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tl.Worker(w)
			for i := 0; i < 100; i++ {
				base := int64(i * 10)
				r.Record(PhaseGenerate, base, base+5)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			snap := tl.Snapshot()
			if snap.Workers > 8 {
				t.Errorf("Workers = %d", snap.Workers)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := tl.Workers(); got != 8 {
		t.Fatalf("Workers = %d, want 8", got)
	}
}

func TestAllocFreeRecordPaths(t *testing.T) {
	var nilRing *Ring
	if allocs := testing.AllocsPerRun(100, func() {
		nilRing.Record(PhaseGenerate, nilRing.Now(), nilRing.Now())
	}); allocs != 0 {
		t.Errorf("nil ring Record: %v allocs/op, want 0", allocs)
	}
	tl := New(64, fakeClock())
	r := tl.Worker(0)
	if allocs := testing.AllocsPerRun(100, func() {
		r.Record(PhaseGenerate, r.Now(), r.Now())
	}); allocs != 0 {
		t.Errorf("enabled ring Record: %v allocs/op, want 0", allocs)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	tl := New(8, fakeClock())
	tl.Worker(0).Record(PhaseSelect, 10, 20)
	out, err := json.Marshal(tl.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"workers":1,"written":1,"dropped":0,"records":[{"worker":0,"phase":"select","start_ns":10,"end_ns":20}]}`
	if string(out) != want {
		t.Errorf("snapshot JSON = %s\nwant          %s", out, want)
	}
}

func BenchmarkRecord(b *testing.B) {
	tl := New(DefaultCapacity, nil)
	r := tl.Worker(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := r.Now()
		r.Record(PhaseGenerate, t0, r.Now())
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var r *Ring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := r.Now()
		r.Record(PhaseGenerate, t0, r.Now())
	}
}
