package timeline

import "sort"

// SummarySchema / SummarySchemaVersion version the summary JSON folded
// into the run report, mirroring the run-report discipline: consumers
// check the pair before trusting field semantics.
const (
	SummarySchema        = "subsim.timeline-summary"
	SummarySchemaVersion = 1
)

// Summary is the compact utilization/imbalance digest of a timeline
// snapshot: how busy each worker was, how skewed the load is per phase,
// and how much of the wall span no worker covered (the serial gap).
type Summary struct {
	Schema        string         `json:"schema"`
	SchemaVersion int            `json:"schema_version"`
	Workers       int            `json:"workers"`
	Records       int            `json:"records"`
	Dropped       int64          `json:"dropped"`
	// SpanNS is first record start → last record end.
	SpanNS int64 `json:"span_ns"`
	// BusyNS is the sum of all record durations (can exceed SpanNS when
	// workers overlap).
	BusyNS int64 `json:"busy_ns"`
	// CoveredNS is the length of the union of all record intervals —
	// wall time during which at least one worker was busy.
	CoveredNS int64 `json:"covered_ns"`
	// SerialGapNS = SpanNS − CoveredNS: wall time inside the span where
	// no worker recorded activity (coordination, serial sections).
	SerialGapNS int64 `json:"serial_gap_ns"`
	// WorkerBusyNS[w] is worker w's total recorded busy time.
	WorkerBusyNS []int64 `json:"worker_busy_ns"`
	// Phases digests each phase present in the snapshot, ordered by
	// Phase value.
	Phases []PhaseSummary `json:"phases"`
}

// PhaseSummary is the per-phase slice of the digest.
type PhaseSummary struct {
	Phase   string `json:"phase"`
	Records int    `json:"records"`
	// BusyNS is the summed duration across workers.
	BusyNS int64 `json:"busy_ns"`
	// WallNS is first start → last end for the phase.
	WallNS int64 `json:"wall_ns"`
	// Workers is how many distinct workers recorded the phase.
	Workers int `json:"workers"`
	// MaxWorkerNS / MeanWorkerNS describe the per-worker busy-time
	// distribution; Skew = MaxWorkerNS / MeanWorkerNS (1.0 = perfectly
	// balanced; the classic load-imbalance factor).
	MaxWorkerNS  int64   `json:"max_worker_ns"`
	MeanWorkerNS int64   `json:"mean_worker_ns"`
	Skew         float64 `json:"skew"`
}

// Summarize folds a snapshot into its utilization digest. Pure function
// of the snapshot — safe on a zero Snapshot (returns an empty, still
// schema-stamped summary).
func Summarize(snap Snapshot) Summary {
	sum := Summary{
		Schema:        SummarySchema,
		SchemaVersion: SummarySchemaVersion,
		Workers:       snap.Workers,
		Records:       len(snap.Records),
		Dropped:       snap.Dropped,
	}
	if snap.Workers > 0 {
		sum.WorkerBusyNS = make([]int64, snap.Workers)
	}
	if len(snap.Records) == 0 {
		sum.Phases = []PhaseSummary{}
		return sum
	}

	minStart, maxEnd := snap.Records[0].StartNS, snap.Records[0].EndNS
	type phaseAcc struct {
		records  int
		busy     int64
		minStart int64
		maxEnd   int64
		byWorker map[int]int64
	}
	var phases [numPhases]*phaseAcc
	for _, rec := range snap.Records {
		d := rec.EndNS - rec.StartNS
		if d < 0 {
			d = 0
		}
		sum.BusyNS += d
		if rec.Worker >= 0 && rec.Worker < len(sum.WorkerBusyNS) {
			sum.WorkerBusyNS[rec.Worker] += d
		}
		if rec.StartNS < minStart {
			minStart = rec.StartNS
		}
		if rec.EndNS > maxEnd {
			maxEnd = rec.EndNS
		}
		p := rec.Phase
		if p >= numPhases {
			p = PhaseOther
		}
		acc := phases[p]
		if acc == nil {
			acc = &phaseAcc{minStart: rec.StartNS, maxEnd: rec.EndNS, byWorker: make(map[int]int64)}
			phases[p] = acc
		}
		acc.records++
		acc.busy += d
		if rec.StartNS < acc.minStart {
			acc.minStart = rec.StartNS
		}
		if rec.EndNS > acc.maxEnd {
			acc.maxEnd = rec.EndNS
		}
		acc.byWorker[rec.Worker] += d
	}
	sum.SpanNS = maxEnd - minStart
	sum.CoveredNS = unionLength(snap.Records)
	sum.SerialGapNS = sum.SpanNS - sum.CoveredNS
	if sum.SerialGapNS < 0 {
		sum.SerialGapNS = 0
	}

	sum.Phases = make([]PhaseSummary, 0, int(numPhases))
	for p := Phase(0); p < numPhases; p++ {
		acc := phases[p]
		if acc == nil {
			continue
		}
		ps := PhaseSummary{
			Phase:   p.String(),
			Records: acc.records,
			BusyNS:  acc.busy,
			WallNS:  acc.maxEnd - acc.minStart,
			Workers: len(acc.byWorker),
		}
		var total int64
		for _, busy := range acc.byWorker {
			total += busy
			if busy > ps.MaxWorkerNS {
				ps.MaxWorkerNS = busy
			}
		}
		if n := int64(len(acc.byWorker)); n > 0 {
			ps.MeanWorkerNS = total / n
		}
		if ps.MeanWorkerNS > 0 {
			ps.Skew = float64(ps.MaxWorkerNS) / float64(ps.MeanWorkerNS)
		}
		sum.Phases = append(sum.Phases, ps)
	}
	return sum
}

// unionLength computes the total length of the union of the record
// intervals. Records arrive start-sorted from Snapshot, but re-sorting
// keeps the function correct standalone.
func unionLength(records []Record) int64 {
	if len(records) == 0 {
		return 0
	}
	sorted := sort.SliceIsSorted(records, func(i, j int) bool {
		return records[i].StartNS < records[j].StartNS
	})
	idx := records
	if !sorted {
		idx = append([]Record(nil), records...)
		sort.Slice(idx, func(i, j int) bool { return idx[i].StartNS < idx[j].StartNS })
	}
	var total int64
	curStart, curEnd := idx[0].StartNS, idx[0].EndNS
	for _, rec := range idx[1:] {
		if rec.StartNS > curEnd {
			if curEnd > curStart {
				total += curEnd - curStart
			}
			curStart, curEnd = rec.StartNS, rec.EndNS
			continue
		}
		if rec.EndNS > curEnd {
			curEnd = rec.EndNS
		}
	}
	if curEnd > curStart {
		total += curEnd - curStart
	}
	return total
}
