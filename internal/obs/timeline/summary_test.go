package timeline

import (
	"math"
	"testing"
)

func TestSummarizeEmpty(t *testing.T) {
	sum := Summarize(Snapshot{})
	if sum.Schema != SummarySchema || sum.SchemaVersion != SummarySchemaVersion {
		t.Fatalf("empty summary not schema-stamped: %+v", sum)
	}
	if sum.Phases == nil || len(sum.Phases) != 0 {
		t.Errorf("empty summary Phases = %#v, want empty non-nil slice", sum.Phases)
	}
}

func TestSummarize(t *testing.T) {
	// Two workers: w0 busy [0,100] and [200,300] generating, w1 busy
	// [50,250] generating; a serial select [400,500] on w0.
	// Span = 0..500; covered = [0,300] ∪ [400,500] = 400; gap = 100.
	snap := Snapshot{
		Workers: 2,
		Written: 4,
		Records: []Record{
			{Worker: 0, Phase: PhaseGenerate, StartNS: 0, EndNS: 100},
			{Worker: 1, Phase: PhaseGenerate, StartNS: 50, EndNS: 250},
			{Worker: 0, Phase: PhaseGenerate, StartNS: 200, EndNS: 300},
			{Worker: 0, Phase: PhaseSelect, StartNS: 400, EndNS: 500},
		},
	}
	sum := Summarize(snap)
	if sum.Workers != 2 || sum.Records != 4 {
		t.Fatalf("header = %+v", sum)
	}
	if sum.SpanNS != 500 {
		t.Errorf("SpanNS = %d, want 500", sum.SpanNS)
	}
	if sum.BusyNS != 100+200+100+100 {
		t.Errorf("BusyNS = %d", sum.BusyNS)
	}
	if sum.CoveredNS != 400 {
		t.Errorf("CoveredNS = %d, want 400", sum.CoveredNS)
	}
	if sum.SerialGapNS != 100 {
		t.Errorf("SerialGapNS = %d, want 100", sum.SerialGapNS)
	}
	if len(sum.WorkerBusyNS) != 2 || sum.WorkerBusyNS[0] != 300 || sum.WorkerBusyNS[1] != 200 {
		t.Errorf("WorkerBusyNS = %v", sum.WorkerBusyNS)
	}

	if len(sum.Phases) != 2 {
		t.Fatalf("phases = %+v", sum.Phases)
	}
	gen := sum.Phases[0]
	if gen.Phase != "generate" || gen.Records != 3 || gen.BusyNS != 400 || gen.WallNS != 300 || gen.Workers != 2 {
		t.Errorf("generate phase = %+v", gen)
	}
	// w0 busy 200, w1 busy 200 → perfectly balanced.
	if gen.MaxWorkerNS != 200 || gen.MeanWorkerNS != 200 || math.Abs(gen.Skew-1.0) > 1e-9 {
		t.Errorf("generate balance = %+v", gen)
	}
	sel := sum.Phases[1]
	if sel.Phase != "select" || sel.Records != 1 || sel.Workers != 1 {
		t.Errorf("select phase = %+v", sel)
	}
}

func TestSummarizeSkew(t *testing.T) {
	snap := Snapshot{
		Workers: 2,
		Records: []Record{
			{Worker: 0, Phase: PhaseIndexBuild, StartNS: 0, EndNS: 300},
			{Worker: 1, Phase: PhaseIndexBuild, StartNS: 0, EndNS: 100},
		},
	}
	sum := Summarize(snap)
	ib := sum.Phases[0]
	// max 300, mean 200 → skew 1.5: the straggler factor.
	if ib.MaxWorkerNS != 300 || ib.MeanWorkerNS != 200 || math.Abs(ib.Skew-1.5) > 1e-9 {
		t.Errorf("index-build = %+v", ib)
	}
}

func TestSummarizeNegativeDurationClamped(t *testing.T) {
	snap := Snapshot{
		Workers: 1,
		Records: []Record{{Worker: 0, Phase: PhaseOther, StartNS: 100, EndNS: 50}},
	}
	sum := Summarize(snap)
	if sum.BusyNS != 0 {
		t.Errorf("BusyNS = %d, want clamp to 0", sum.BusyNS)
	}
}

func TestUnionLength(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
		want int64
	}{
		{"empty", nil, 0},
		{"single", []Record{{StartNS: 0, EndNS: 10}}, 10},
		{"disjoint", []Record{{StartNS: 0, EndNS: 10}, {StartNS: 20, EndNS: 30}}, 20},
		{"overlap", []Record{{StartNS: 0, EndNS: 10}, {StartNS: 5, EndNS: 15}}, 15},
		{"contained", []Record{{StartNS: 0, EndNS: 100}, {StartNS: 10, EndNS: 20}}, 100},
		{"touching", []Record{{StartNS: 0, EndNS: 10}, {StartNS: 10, EndNS: 20}}, 20},
		{"unsorted", []Record{{StartNS: 20, EndNS: 30}, {StartNS: 0, EndNS: 10}}, 20},
	}
	for _, tc := range cases {
		if got := unionLength(tc.recs); got != tc.want {
			t.Errorf("%s: unionLength = %d, want %d", tc.name, got, tc.want)
		}
	}
}
