package timeline

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWriteTraceGolden pins the exact bytes of the trace-event export
// for a fake-clock timeline: metadata first, then phase-track spans,
// then per-worker records, with fixed field order and fixed-precision
// microsecond timestamps. Regenerate with -update after intentional
// format changes.
func TestWriteTraceGolden(t *testing.T) {
	tl := New(16, fakeClock())
	w0, w1 := tl.Worker(0), tl.Worker(1)
	w0.Record(PhaseGenerate, 0, 1500)
	w0.Record(PhaseGenerate, 1500, 2250)
	w1.Record(PhaseGenerate, 100, 1900)
	w0.Record(PhaseSplice, 2300, 2400)
	w1.Record(PhaseSplice, 2300, 2450)
	w0.Record(PhaseIndexBuild, 2500, 3000)
	w0.Record(PhaseSelect, 3100, 4000)
	spans := []Span{
		{Name: "generate", StartNS: 0, EndNS: 2250},
		{Name: "splice", StartNS: 2300, EndNS: 2450},
		{Name: "select", StartNS: 2500, EndNS: 4000},
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tl.Snapshot(), spans); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteTraceStructure parses the export as JSON and checks the
// Perfetto-facing invariants: loadable document, named process and
// per-worker threads, every record on its worker's track.
func TestWriteTraceStructure(t *testing.T) {
	tl := New(16, fakeClock())
	tl.Worker(0).Record(PhaseGenerate, 0, 1000)
	tl.Worker(1).Record(PhaseSplice, 1000, 2000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tl.Snapshot(), []Span{{Name: "run", StartNS: 0, EndNS: 2000}}); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	threads := map[int]string{}
	var complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.Tid] = ev.Args.Name
			}
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Errorf("negative duration on %q", ev.Name)
			}
		default:
			t.Errorf("unexpected event type %q", ev.Ph)
		}
	}
	// tid 1 = phases track, tids 2,3 = the two workers.
	if threads[spanTrackTID] != "phases" {
		t.Errorf("tid 1 named %q", threads[spanTrackTID])
	}
	for w := 0; w < 2; w++ {
		want := "worker " + string(rune('0'+w))
		if got := threads[workerTIDOff+w]; got != want {
			t.Errorf("tid %d named %q, want %q", workerTIDOff+w, got, want)
		}
	}
	if complete != 3 { // 1 span + 2 records
		t.Errorf("got %d complete events, want 3", complete)
	}
}

func TestMicroString(t *testing.T) {
	cases := map[int64]string{
		0:          "0.000",
		1:          "0.001",
		999:        "0.999",
		1000:       "1.000",
		1500:       "1.500",
		12345678:   "12345.678",
		-1500:      "-1.500",
		1000000000: "1000000.000",
	}
	for ns, want := range cases {
		if got := microString(ns); got != want {
			t.Errorf("microString(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export invalid JSON: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"process_name"`) {
		t.Error("empty export lost the process metadata")
	}
}
