// Package timeline is the execution-timeline layer of the observability
// stack: a lock-free, fixed-capacity record of *when* each worker was
// busy and in which phase, complementing the cumulative busy-ns counters
// of obs.MetricSet (which say how much, never when). The records feed
// two exporters — a Chrome trace-event JSON document loadable in
// Perfetto / chrome://tracing (trace.go) and a compact per-phase
// utilization/imbalance summary folded into the run report (summary.go)
// — so serial gaps and load skew in the parallel RR pipeline become
// visible instead of inferred.
//
// # Memory-ordering contract (single-writer rings, seqlock export)
//
// Each worker owns one Ring and is its only writer; the export side
// (the live telemetry plane, the run report) reads concurrently and
// lock-free. The protocol, per slot:
//
//   - the writer loads its cursor n (only it ever stores the cursor),
//     picks slot n&mask, stores seq = 2n+1 (odd: "being written"),
//     stores the phase/start/end fields, stores seq = 2(n+1) (even:
//     "generation n complete"), and finally publishes cursor = n+1;
//   - a reader snapshots the cursor, walks the last min(cursor, cap)
//     logical records, and for each validates the slot's seq equals
//     2(i+1) both before reading the fields and after — a mismatch means
//     the writer lapped the reader mid-read (the record is dropped from
//     the snapshot and counted, never emitted torn).
//
// Every field involved is accessed atomically, so the scheme is clean
// under the race detector, and a Record costs six uncontended atomic
// operations and zero allocations — cheap enough for the per-RR-set
// generation path, and exactly 0 allocs on the nil (disabled) path per
// the nil-tracer contract (every method of Timeline and Ring is nil-safe).
package timeline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase labels one timeline interval with the pipeline section that
// produced it.
type Phase uint8

const (
	// PhaseGenerate is one RR-set reverse traversal (recorded per set by
	// rrset.InstrumentWorker).
	PhaseGenerate Phase = iota
	// PhaseSplice is one worker's share of an arena→store splice pass
	// (count or copy) in im.Batcher.FillIndex.
	PhaseSplice
	// PhaseIndexBuild is one worker's share of a delta CSR rebuild in
	// coverage.Index (one interval per parallel sub-pass, or one for the
	// whole serial rebuild).
	PhaseIndexBuild
	// PhaseGains is one worker's share of the first CELF round (the
	// initial-gain pass of coverage.Index.SelectSeeds).
	PhaseGains
	// PhaseSelect is the serial lazy-greedy CELF loop (coordinator only).
	PhaseSelect
	// PhaseReduce is one worker's share of a fanned-out CELF round in the
	// sharded coverage engine: a per-shard partial marginal recompute or
	// covered-bit update whose partial aggregates are tree-reduced by the
	// coordinator (coverage.Sharded). These records are what make rounds
	// beyond the first visible as parallel in the timeline digest.
	PhaseReduce
	// PhaseOther is the catch-all for callers outside the known pipeline.
	PhaseOther

	numPhases
)

var phaseNames = [numPhases]string{
	"generate", "splice", "index-build", "select-gains", "select", "reduce", "other",
}

// String returns the stable lower-case phase name used in exports.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "other"
}

// MarshalText renders the phase name, so Record JSON stays readable.
func (p Phase) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses a phase name (unknown names map to PhaseOther).
func (p *Phase) UnmarshalText(b []byte) error {
	s := string(b)
	for i := Phase(0); i < numPhases; i++ {
		if phaseNames[i] == s {
			*p = i
			return nil
		}
	}
	*p = PhaseOther
	return nil
}

// DefaultCapacity is the per-worker ring capacity used when New is
// handed a non-positive one: 4096 records ≈ the tail of a sampling round
// per worker at ~96 B/slot.
const DefaultCapacity = 1 << 12

// Record is one exported timeline interval: worker w spent
// [StartNS, EndNS] (nanoseconds since the timeline clock's epoch) in
// the given phase.
type Record struct {
	Worker  int   `json:"worker"`
	Phase   Phase `json:"phase"`
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
}

// slot is one ring entry. seq follows the seqlock protocol documented
// in the package comment; the remaining fields are only meaningful when
// seq is even.
type slot struct {
	seq   atomic.Uint64
	phase atomic.Uint32
	start atomic.Int64
	end   atomic.Int64
}

// Ring is one worker's fixed-capacity interval record. Exactly one
// goroutine may call Record at a time (the worker owning the ring);
// snapshot reads are lock-free and may run concurrently with the
// writer. A nil Ring is the disabled instrument: Record and Now are
// allocation-free no-ops.
type Ring struct {
	worker int
	mask   uint64
	clock  func() int64
	slots  []slot
	cursor atomic.Uint64 // total records ever written
}

// Worker returns the worker id the ring belongs to (0 for a nil ring).
func (r *Ring) Worker() int {
	if r == nil {
		return 0
	}
	return r.worker
}

// Now reads the timeline clock: nanoseconds since the timeline epoch,
// or 0 on a nil ring. Unlike the tracer's span clock this read takes no
// lock, so it is safe on the concurrent per-set worker path.
func (r *Ring) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Record appends one interval. Nil-safe, allocation-free, and wait-free
// for the single writer: a full ring overwrites the oldest record (the
// drop is accounted in Snapshot), never blocks.
func (r *Ring) Record(p Phase, startNS, endNS int64) {
	if r == nil {
		return
	}
	n := r.cursor.Load()
	s := &r.slots[n&r.mask]
	s.seq.Store(2*n + 1) // odd: slot under construction
	s.phase.Store(uint32(p))
	s.start.Store(startNS)
	s.end.Store(endNS)
	s.seq.Store(2 * (n + 1)) // even: generation n committed
	r.cursor.Store(n + 1)
}

// Written returns the total number of records ever written (0 for nil).
func (r *Ring) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// snapshot appends the ring's currently readable records to out and
// returns the count of records not readable: overwritten by capacity
// wraparound, or skipped because the writer overlapped the read
// (seqlock validation failed).
func (r *Ring) snapshot(out []Record) ([]Record, int64) {
	if r == nil {
		return out, 0
	}
	n := r.cursor.Load()
	span := uint64(len(r.slots))
	lo := uint64(0)
	var dropped int64
	if n > span {
		lo = n - span
		dropped = int64(n - span)
	}
	for i := lo; i < n; i++ {
		s := &r.slots[i&r.mask]
		want := 2 * (i + 1)
		if s.seq.Load() != want {
			dropped++
			continue
		}
		rec := Record{
			Worker:  r.worker,
			Phase:   Phase(s.phase.Load()),
			StartNS: s.start.Load(),
			EndNS:   s.end.Load(),
		}
		if s.seq.Load() != want { // writer lapped us mid-read: torn
			dropped++
			continue
		}
		out = append(out, rec)
	}
	return out, dropped
}

// Timeline owns one Ring per worker over a shared lock-free clock.
// Construct with New (typically through obs.Tracer.EnableTimeline); a
// nil *Timeline is the disabled instrument — every method is a nil-safe
// no-op, so instrumented code threads a disabled timeline through for
// free.
type Timeline struct {
	clock    func() int64
	capacity int

	mu    sync.Mutex            // guards ring-vector growth
	rings atomic.Pointer[[]*Ring] // copy-on-write: readers never lock
}

// WallClock returns the default timeline clock: monotonic nanoseconds
// since the moment of the call, readable concurrently without locks.
func WallClock() func() int64 {
	epoch := time.Now()
	return func() int64 { return int64(time.Since(epoch)) }
}

// New returns a timeline whose per-worker rings hold capacityPerWorker
// records (rounded up to a power of two; non-positive means
// DefaultCapacity). clock supplies nanosecond timestamps and must be
// safe for concurrent use; nil installs WallClock. Tests inject a fake
// clock for byte-stable golden exports.
func New(capacityPerWorker int, clock func() int64) *Timeline {
	if capacityPerWorker <= 0 {
		capacityPerWorker = DefaultCapacity
	}
	capRounded := 1
	for capRounded < capacityPerWorker {
		capRounded <<= 1
	}
	if clock == nil {
		clock = WallClock()
	}
	return &Timeline{clock: clock, capacity: capRounded}
}

// Now reads the timeline clock (0 on a nil timeline).
func (tl *Timeline) Now() int64 {
	if tl == nil {
		return 0
	}
	return tl.clock()
}

// Capacity returns the per-worker ring capacity (0 on nil).
func (tl *Timeline) Capacity() int {
	if tl == nil {
		return 0
	}
	return tl.capacity
}

// Workers returns the number of worker rings created so far (0 on nil).
func (tl *Timeline) Workers() int {
	if tl == nil {
		return 0
	}
	if p := tl.rings.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// Worker returns worker w's ring, creating it (and any lower-indexed
// slots) on first use. Returns nil — the disabled ring — on a nil
// timeline or a negative index. The fast path is one atomic load, so
// handing rings out during worker setup is cheap; the growth path takes
// the timeline mutex and publishes the grown vector copy-on-write.
func (tl *Timeline) Worker(w int) *Ring {
	if tl == nil || w < 0 {
		return nil
	}
	if p := tl.rings.Load(); p != nil && w < len(*p) {
		return (*p)[w]
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	old := tl.rings.Load()
	var cur []*Ring
	if old != nil {
		cur = *old
	}
	if w < len(cur) {
		return cur[w]
	}
	next := make([]*Ring, w+1)
	copy(next, cur)
	for i := len(cur); i <= w; i++ {
		next[i] = &Ring{
			worker: i,
			mask:   uint64(tl.capacity - 1),
			clock:  tl.clock,
			slots:  make([]slot, tl.capacity),
		}
	}
	tl.rings.Store(&next)
	return next[w]
}

// Snapshot is a consistent-enough point-in-time view of the timeline:
// every readable record across all workers, sorted by start time (then
// worker, then end) so exports are deterministic for a deterministic
// clock.
type Snapshot struct {
	// Workers is the number of worker rings at snapshot time.
	Workers int `json:"workers"`
	// Written is the total number of records ever recorded.
	Written int64 `json:"written"`
	// Dropped counts records lost to ring wraparound plus records
	// skipped because the writer overlapped the export read.
	Dropped int64 `json:"dropped"`
	// Records are the readable intervals, ascending by StartNS.
	Records []Record `json:"records"`
}

// Snapshot walks every ring lock-free (see the package comment's
// seqlock contract) and returns the merged, sorted record view. Safe to
// call at any time, including concurrently with active writers; returns
// a zero Snapshot on a nil timeline.
func (tl *Timeline) Snapshot() Snapshot {
	var snap Snapshot
	if tl == nil {
		return snap
	}
	p := tl.rings.Load()
	if p == nil {
		return snap
	}
	rings := *p
	snap.Workers = len(rings)
	total := 0
	for _, r := range rings {
		total += len(r.slots)
	}
	snap.Records = make([]Record, 0, total)
	for _, r := range rings {
		var dropped int64
		snap.Records, dropped = r.snapshot(snap.Records)
		snap.Dropped += dropped
		snap.Written += int64(r.Written())
	}
	sort.SliceStable(snap.Records, func(i, j int) bool {
		a, b := snap.Records[i], snap.Records[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.EndNS < b.EndNS
	})
	return snap
}

// GoString aids test failure output.
func (rec Record) GoString() string {
	return fmt.Sprintf("timeline.Record{W%d %s [%d,%d]}", rec.Worker, rec.Phase, rec.StartNS, rec.EndNS)
}
