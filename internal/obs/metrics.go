package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"subsim/internal/obs/flight"
	"subsim/internal/obs/timeline"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops so disabled instrumentation threads through for free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value (latest-wins) for live
// progress signals such as the certified bounds. All methods are
// nil-safe no-ops; the zero value reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// IntGauge is an atomically settable int64 value (latest-wins), used for
// "current round" style progress. All methods are nil-safe no-ops.
type IntGauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *IntGauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Load returns the current value (0 for a nil gauge).
func (g *IntGauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the fixed bucket count of Histogram: bucket 0 holds
// values <= 0, bucket i (1 <= i < NumBuckets-1) holds values in
// [2^(i-1), 2^i), and the last bucket absorbs everything from
// 2^(NumBuckets-2) upward.
const NumBuckets = 40

// Histogram is a fixed-bucket power-of-two histogram. Observe costs one
// bits.Len plus three uncontended atomic adds, cheap enough for the RR
// generation hot path. The zero value is ready to use; a nil *Histogram
// is a no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for v <= 0, bits.Len64(v)
// (i.e. [2^(i-1), 2^i) -> i) clamped to the overflow bucket otherwise.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i > NumBuckets-1 {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i-1 for the middle buckets, and +Inf (represented as -1)
// for the overflow bucket. Exported for exporters and tests.
func BucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return -1 // +Inf
	default:
		return int64(1)<<uint(i) - 1
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count of bucket i (0 when out of range or nil).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Mean returns the average observed value, or 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// BucketCount is one non-empty histogram bucket in a snapshot. Le is the
// inclusive upper bound of the bucket; -1 encodes +Inf (the overflow
// bucket).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram with only its
// non-empty buckets, suitable for JSON reports.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. The result of a concurrent snapshot is
// a consistent-enough view for reporting (buckets are read one by one).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := 0; i < NumBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketUpper(i), Count: n})
		}
	}
	return s
}

// MetricSet bundles the well-known RR-generation instruments. All
// instruments are concurrency-safe; the set is shared by every worker of
// a run. Access the fields directly from instrumented code (after a
// single nil check on the set), or via the nil-safe accessors.
type MetricSet struct {
	// RRSize observes the node count of every generated RR set
	// (Figure 3b's average RR size is RRSize.Mean()).
	RRSize Histogram
	// EdgesPerSet observes the edge examinations of every generated RR
	// set (the Lemma 4 cost measure, per set).
	EdgesPerSet Histogram
	// SkipLen observes individual geometric-skip lengths drawn by the
	// SUBSIM samplers.
	SkipLen Histogram
	// Sets, Nodes and Edges are running totals across all workers.
	Sets  Counter
	Nodes Counter
	Edges Counter
	// SentinelHits counts RR sets truncated by a sentinel node.
	SentinelHits Counter
	// IndexBuild observes the wall-clock nanoseconds of each CSR
	// inverted-index (re)build in coverage.Index (all paths).
	IndexBuild Histogram
	// IndexBuildSerial and IndexBuildParallel split IndexBuild by the
	// build path taken: the single-threaded delta rebuild vs the
	// node-range-partitioned parallel rebuild. Their counts sum to
	// IndexBuild's, so the parallel-path hit rate is directly readable.
	IndexBuildSerial   Histogram
	IndexBuildParallel Histogram
	// Splice observes the wall-clock nanoseconds of each arena→store
	// splice in Batcher.FillIndex — the coverage-side half of a sampling
	// round that runs after generation proper.
	Splice Histogram
	// IndexEntries counts the postings (node→set pairs) placed by CSR
	// index builds; with Nodes it yields the indexing amplification.
	IndexEntries Counter

	// Timeline, when non-nil, records per-worker execution intervals
	// alongside the cumulative counters (see internal/obs/timeline).
	// Set before workers start — typically by Tracer.EnableTimeline —
	// and never replaced mid-run; instrumented code reads it through the
	// nil-safe TimelineRing accessor.
	Timeline *timeline.Timeline

	// Lower, Upper and Approx are the live certified bounds (Equations
	// 1/2) as of the most recent bound-check, published by the algorithms
	// through SetBounds so the /progress endpoint can watch them tighten
	// mid-run. Round is the doubling round that produced them.
	Lower  Gauge
	Upper  Gauge
	Approx Gauge
	Round  IntGauge

	// SketchBytes is the resident size of the sketch coverage backend's
	// register file (bytes); stays 0 on exact-CSR runs, so its presence
	// in a report identifies the estimator that produced it.
	SketchBytes IntGauge
	// ThetaWorst and ThetaTight are the worst-case (IMM/OPIM-C) and
	// tightened (Sadeh–Cohen–Kaplan style) RR sample budgets of the
	// current run, published through SetTheta. ThetaSaved accumulates
	// the budget reduction actually engaged when Options.Bound selects
	// the tightened analysis.
	ThetaWorst IntGauge
	ThetaTight IntGauge
	ThetaSaved Counter

	// flightRec mirrors the coordinator-stream journal recorder of an
	// attached flight recorder (see Tracer.EnableFlight) so the bound/θ
	// publishers can journal their updates with one atomic load. Nil —
	// and therefore free, per the flight nil contract — until a flight
	// recorder is attached.
	flightRec atomic.Pointer[flight.Recorder]

	mu         sync.Mutex
	workers    []*Counter
	workerBusy []*Counter
}

// NewMetricSet returns an empty, enabled metric set.
func NewMetricSet() *MetricSet { return &MetricSet{} }

// WorkerSets returns the sets-generated counter of worker w, growing the
// vector as needed. Returns nil (a no-op counter) on a nil set or a
// negative index.
func (m *MetricSet) WorkerSets(w int) *Counter {
	if m == nil || w < 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.workers) <= w {
		m.workers = append(m.workers, &Counter{})
	}
	return m.workers[w]
}

// WorkerSnapshot returns the per-worker sets-generated totals.
func (m *MetricSet) WorkerSnapshot() []int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.workers))
	for i, c := range m.workers {
		out[i] = c.Load()
	}
	return out
}

// WorkerBusyNS returns the busy-nanoseconds counter of worker w, growing
// the vector as needed. The rrset.Instrument wrapper adds each set's
// generation duration to it, so busy_ns / wall-clock is the worker's
// sampling utilization. Returns nil (a no-op counter) on a nil set or a
// negative index.
func (m *MetricSet) WorkerBusyNS(w int) *Counter {
	if m == nil || w < 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.workerBusy) <= w {
		m.workerBusy = append(m.workerBusy, &Counter{})
	}
	return m.workerBusy[w]
}

// TimelineRing returns worker w's timeline ring, or nil — the disabled
// ring, whose Record and Now are no-ops — when the set is nil or no
// timeline is attached. This is the one accessor instrumented code
// should use: it collapses the three-level nil check (set, timeline,
// ring) into one call made once per worker at setup time.
func (m *MetricSet) TimelineRing(w int) *timeline.Ring {
	if m == nil {
		return nil
	}
	return m.Timeline.Worker(w)
}

// WorkerBusySnapshot returns the per-worker busy-nanosecond totals
// (nil when no worker ever recorded busy time).
func (m *MetricSet) WorkerBusySnapshot() []int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.workerBusy) == 0 {
		return nil
	}
	out := make([]int64, len(m.workerBusy))
	for i, c := range m.workerBusy {
		out[i] = c.Load()
	}
	return out
}

// SetBounds publishes the latest certified bounds and the round that
// produced them; the live /progress endpoint reads them back. Nil-safe,
// allocation-free: four atomic stores, plus a journal event when a
// flight recorder is attached. Round is stored last so a reader that
// observes round i sees bounds from round i or newer — never a fresh
// round number over stale bounds (the ordering contract documented in
// DESIGN.md "Live telemetry plane").
func (m *MetricSet) SetBounds(round int, lower, upper, approx float64) {
	if m == nil {
		return
	}
	m.Lower.Set(lower)
	m.Upper.Set(upper)
	m.Approx.Set(approx)
	m.Round.Set(int64(round))
	m.flightRec.Load().Emit(flight.KindBounds, "", int64(round), 0, lower, upper, approx)
}

// SetTheta publishes the run's worst-case and tightened RR sample
// budgets. Nil-safe, allocation-free: two atomic stores, plus a journal
// event when a flight recorder is attached.
func (m *MetricSet) SetTheta(worst, tight int64) {
	if m == nil {
		return
	}
	m.ThetaWorst.Set(worst)
	m.ThetaTight.Set(tight)
	m.flightRec.Load().Emit(flight.KindTheta, "", worst, tight, 0, 0, 0)
}

// AddThetaSaved accumulates RR sample budget shaved off by an engaged
// tightened bound. Nil-safe, like every instrument entry point, so
// algorithm code can call it through a disabled tracer.
func (m *MetricSet) AddThetaSaved(d int64) {
	if m == nil || d <= 0 {
		return
	}
	m.ThetaSaved.Add(d)
}
