package flight

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWatchdogInvalidConfigs(t *testing.T) {
	if NewWatchdog(WatchdogConfig{}) != nil {
		t.Error("zero config must yield the nil (disabled) watchdog")
	}
	if NewWatchdog(WatchdogConfig{Window: time.Second}) != nil {
		t.Error("missing Progress must yield nil")
	}
	if NewWatchdog(WatchdogConfig{Progress: func() uint64 { return 0 }}) != nil {
		t.Error("missing Window must yield nil")
	}
	var w *Watchdog
	w.Start() // all nil-safe
	w.Stop()
	if w.Stalls() != 0 {
		t.Error("nil watchdog Stalls must be 0")
	}
	// Stop before Start on a live watchdog must not hang.
	live := NewWatchdog(WatchdogConfig{Window: time.Second, Progress: func() uint64 { return 0 }})
	live.Stop()
}

func TestWatchdogFiresOncePerEpisode(t *testing.T) {
	var progress atomic.Uint64
	fired := make(chan int64, 8)
	w := NewWatchdog(WatchdogConfig{
		Window:   40 * time.Millisecond,
		Poll:     5 * time.Millisecond, // floored to 10 ms internally
		Progress: progress.Load,
		OnStall:  func(idleNS int64) { fired <- idleNS },
	})
	if w == nil {
		t.Fatal("NewWatchdog returned nil for a valid config")
	}
	w.Start()
	w.Start() // second Start is a no-op
	defer w.Stop()

	var idle int64
	select {
	case idle = <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a flat progress counter")
	}
	if idle < int64(40*time.Millisecond) {
		t.Errorf("reported idle %s below the window", time.Duration(idle))
	}
	// Still stalled: the episode must not fire again.
	select {
	case <-fired:
		t.Fatal("watchdog fired twice inside one stall episode")
	case <-time.After(150 * time.Millisecond):
	}
	if w.Stalls() != 1 {
		t.Fatalf("Stalls = %d after one episode", w.Stalls())
	}
	// Progress resumes, then flatlines again: a second episode fires.
	progress.Add(1)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not re-arm after progress resumed")
	}
	if w.Stalls() != 2 {
		t.Errorf("Stalls = %d after two episodes", w.Stalls())
	}
}

func TestWatchdogInactiveNeverFires(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{
		Window:   20 * time.Millisecond,
		Progress: func() uint64 { return 7 },
		Active:   func() bool { return false },
		OnStall:  func(int64) { t.Error("watchdog fired while inactive") },
	})
	w.Start()
	time.Sleep(150 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
	if w.Stalls() != 0 {
		t.Errorf("Stalls = %d while inactive, want 0", w.Stalls())
	}
}

func TestWatchdogActivationArmsFresh(t *testing.T) {
	// The idle clock only accumulates inside active phases: if the
	// workload goes active with flat progress, the window starts counting
	// from activation, not from watchdog start.
	var active atomic.Bool
	fired := make(chan struct{}, 1)
	clock := WallClock()
	w := NewWatchdog(WatchdogConfig{
		Window:   50 * time.Millisecond,
		Clock:    clock,
		Progress: func() uint64 { return 0 },
		Active:   active.Load,
		OnStall:  func(int64) { fired <- struct{}{} },
	})
	w.Start()
	defer w.Stop()
	time.Sleep(120 * time.Millisecond) // well past the window, but idle
	select {
	case <-fired:
		t.Fatal("fired before activation")
	default:
	}
	start := clock()
	active.Store(true)
	select {
	case <-fired:
		if waited := clock() - start; waited < int64(40*time.Millisecond) {
			t.Errorf("fired %s after activation, want a full fresh window", time.Duration(waited))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("never fired after activation")
	}
}
