package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// WatchdogConfig configures a stall watchdog. Window is the only
// required field.
type WatchdogConfig struct {
	// Window is how long progress may stand still before OnStall fires.
	Window time.Duration
	// Poll is the check cadence (default Window/8, floored at 10 ms).
	Poll time.Duration
	// Clock supplies nanosecond timestamps for idle measurement (nil
	// installs WallClock). Injectable so the reported idle durations are
	// deterministic under a fake clock; the poll ticker itself always
	// runs on real time.
	Clock func() int64
	// Progress returns a value that changes whenever the watched work
	// advances — typically journal events written plus RR sets
	// generated. Required.
	Progress func() uint64
	// Active reports whether a phase worth watching is in flight; while
	// it returns false the watchdog idles without arming. Nil means
	// always active.
	Active func() bool
	// OnStall runs on the watchdog goroutine when the window elapses
	// with no progress; idleNS is how long progress has been flat. It
	// fires once per stall episode: the watchdog re-arms only after
	// progress moves again.
	OnStall func(idleNS int64)
}

// Watchdog fires OnStall when the watched progress value stands still
// for longer than the configured window while the workload is active.
// One stall episode fires exactly once — the watchdog re-arms when
// progress resumes — so a wedged run produces one bundle, not one per
// poll tick. A nil Watchdog is the disabled instrument.
type Watchdog struct {
	cfg     WatchdogConfig
	clock   func() int64
	stalls  atomic.Int64
	started atomic.Bool
	once    sync.Once
	stop    chan struct{}
	done    chan struct{}
}

// NewWatchdog validates cfg and returns an unstarted watchdog, or nil
// when cfg cannot watch anything (no window or no progress source) —
// the nil watchdog being the disabled instrument, callers need no
// special cases.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Window <= 0 || cfg.Progress == nil {
		return nil
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Window / 8
	}
	if cfg.Poll < 10*time.Millisecond {
		cfg.Poll = 10 * time.Millisecond
	}
	clock := cfg.Clock
	if clock == nil {
		clock = WallClock()
	}
	return &Watchdog{
		cfg:   cfg,
		clock: clock,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Stalls returns how many stall episodes have fired (0 for nil).
func (w *Watchdog) Stalls() int64 {
	if w == nil {
		return 0
	}
	return w.stalls.Load()
}

// Start launches the watchdog goroutine. Nil-safe; call Stop to halt.
// A second Start is a no-op.
func (w *Watchdog) Start() {
	if w == nil || !w.started.CompareAndSwap(false, true) {
		return
	}
	go w.loop()
}

// Stop halts the watchdog and waits for its goroutine to exit. Nil-safe
// and idempotent; safe to call even if Start never ran.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.stop) })
	if w.started.Load() {
		<-w.done
	}
}

func (w *Watchdog) loop() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Poll)
	defer tick.Stop()

	last := w.cfg.Progress()
	lastChange := w.clock()
	armed := true
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
		now := w.clock()
		if w.cfg.Active != nil && !w.cfg.Active() {
			// Nothing worth watching: treat the idle phase as progress
			// so a stall can only accumulate inside an active phase.
			lastChange = now
			armed = true
			continue
		}
		if p := w.cfg.Progress(); p != last {
			last = p
			lastChange = now
			armed = true
			continue
		}
		if idle := now - lastChange; armed && idle >= int64(w.cfg.Window) {
			armed = false
			w.stalls.Add(1)
			if w.cfg.OnStall != nil {
				w.cfg.OnStall(idle)
			}
		}
	}
}
