package flight

import (
	"bytes"
	"encoding/json"
	"math"
	rtm "runtime/metrics"
	"testing"
	"time"
)

func TestHistoryNil(t *testing.T) {
	var h *History
	h.Sample() // must not panic
	if h.Written() != 0 || h.SeriesNames() != nil {
		t.Error("nil history accessors must return zero")
	}
	snap := h.Snapshot()
	if snap.Written != 0 || len(snap.Samples) != 0 {
		t.Errorf("nil history snapshot = %+v, want zero", snap)
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatalf("nil history WriteJSON: %v", err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("parse empty history doc: %v", err)
	}
	if doc.Schema != HistorySchema || doc.Version != HistoryVersion {
		t.Errorf("envelope = %q v%d", doc.Schema, doc.Version)
	}
	if h.StartSampler(time.Millisecond) != nil {
		t.Error("nil history must return a nil (disabled) sampler")
	}
	var s *Sampler
	s.Stop() // nil-safe
}

func TestHistoryRecordAndWraparound(t *testing.T) {
	h := NewHistory(4, fakeClock(100))
	series := len(h.SeriesNames())
	vals := make([]float64, series)
	const total = 7
	for i := 0; i < total; i++ {
		for k := range vals {
			vals[k] = float64(i*10 + k)
		}
		h.record(h.clock(), vals)
	}
	snap := h.Snapshot()
	if snap.Written != total || snap.Dropped != total-4 {
		t.Fatalf("written %d dropped %d, want %d / %d", snap.Written, snap.Dropped, total, total-4)
	}
	if len(snap.Samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(snap.Samples))
	}
	// Oldest survivor is logical sample 3 (fake clock: sample i stamped
	// (i+1)*100).
	first := snap.Samples[0]
	if first.TimeNS != 400 {
		t.Errorf("oldest survivor time = %d, want 400", first.TimeNS)
	}
	for k, v := range first.Values {
		if v != float64(30+k) {
			t.Errorf("survivor value[%d] = %g, want %d", k, v, 30+k)
		}
	}
	for i := 1; i < len(snap.Samples); i++ {
		if snap.Samples[i].TimeNS <= snap.Samples[i-1].TimeNS {
			t.Fatalf("samples not time-ordered at %d", i)
		}
	}
}

func TestHistorySampleReadsRuntime(t *testing.T) {
	h := NewHistory(16, nil)
	h.Sample()
	snap := h.Snapshot()
	if len(snap.Samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(snap.Samples))
	}
	names := h.SeriesNames()
	byName := map[string]float64{}
	for i, v := range snap.Samples[0].Values {
		byName[names[i]] = v
	}
	if byName["goroutines"] < 1 {
		t.Errorf("goroutines = %g, want >= 1", byName["goroutines"])
	}
	if byName["heap_objects_bytes"] <= 0 || byName["memory_total_bytes"] <= 0 {
		t.Errorf("memory series not populated: %+v", byName)
	}
}

// TestHistorySampleAllocFree is the sampler half of the test-alloc gate:
// after the first Sample populates the runtime/metrics scratch (histogram
// buffers included), subsequent samples must not allocate.
func TestHistorySampleAllocFree(t *testing.T) {
	h := NewHistory(64, nil)
	h.Sample()
	h.Sample()
	allocs := testing.AllocsPerRun(100, h.Sample)
	if allocs != 0 {
		t.Fatalf("Sample allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

func TestSamplerStartStop(t *testing.T) {
	h := NewHistory(64, nil)
	s := h.StartSampler(2 * time.Millisecond)
	if s == nil {
		t.Fatal("StartSampler returned nil for a live history")
	}
	if h.Written() < 1 {
		t.Error("StartSampler must take an immediate first sample")
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Written() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.Written() < 3 {
		t.Fatalf("sampler recorded %d samples in 5s, want >= 3", h.Written())
	}
	s.Stop()
	s.Stop() // idempotent
	n := h.Written()
	time.Sleep(10 * time.Millisecond)
	if h.Written() != n {
		t.Error("sampler kept writing after Stop")
	}
}

func TestHistQuantile(t *testing.T) {
	hist := &rtm.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 1e-6, 1e-3, math.Inf(1)},
	}
	if got := histQuantile(hist, 0.5); got != 1e-6 {
		t.Errorf("p50 = %g, want 1e-6", got)
	}
	if got := histQuantile(hist, 0.95); got != 1e-3 {
		t.Errorf("p95 = %g, want 1e-3", got)
	}
	// p99+ lands in the infinite bucket: fall back to its finite lower
	// edge rather than reporting +Inf.
	if got := histQuantile(hist, 0.999); got != 1e-3 {
		t.Errorf("p99.9 = %g, want finite fallback 1e-3", got)
	}
	if got := histQuantile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", got)
	}
	empty := &rtm.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.99); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}
