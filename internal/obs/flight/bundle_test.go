package flight

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// bundleNow is the fake wall clock for golden bundles: a fixed instant
// keeps the directory name and manifest byte-stable.
var bundleNow = time.Date(2026, 1, 2, 3, 4, 5, 678900000, time.UTC)

func testProducers() []Producer {
	return []Producer{
		{Name: "report.json", Write: func(w io.Writer) error {
			_, err := io.WriteString(w, "{\"ok\":true}\n")
			return err
		}},
		{Name: "broken.json", Write: func(w io.Writer) error {
			return errors.New("synthetic failure")
		}},
		{Name: "panicky.bin", Write: func(w io.Writer) error {
			panic("mid-crash data structure")
		}},
	}
}

func TestWriteBundleGoldenManifest(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteBundle(dir, "flighttest", "test reason", bundleNow, testProducers())
	if err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	wantDir := filepath.Join(dir, "20260102T030405.678900000Z-test-reason.bundle")
	if path != wantDir {
		t.Fatalf("bundle dir = %s, want %s", path, wantDir)
	}
	raw, err := os.ReadFile(filepath.Join(path, ManifestName))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	golden := fmt.Sprintf(`{
  "schema": "subsim.flight-bundle",
  "version": 1,
  "tool": "flighttest",
  "reason": "test reason",
  "created_unix_ns": %d,
  "files": [
    {
      "name": "report.json",
      "bytes": 12
    },
    {
      "name": "broken.json",
      "bytes": 0,
      "error": "synthetic failure"
    },
    {
      "name": "panicky.bin",
      "bytes": 0,
      "error": "producer panicked: mid-crash data structure"
    }
  ]
}
`, bundleNow.UnixNano())
	if string(raw) != golden {
		t.Errorf("manifest.json diverges from golden:\n--- got ---\n%s--- want ---\n%s", raw, golden)
	}

	// The successful artifact carries its content; the failed producers
	// still left entries (and files) behind without voiding the bundle.
	body, err := os.ReadFile(filepath.Join(path, "report.json"))
	if err != nil || string(body) != "{\"ok\":true}\n" {
		t.Errorf("report.json = %q, %v", body, err)
	}
	man, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if f, ok := man.File("panicky.bin"); !ok || f.Error == "" {
		t.Errorf("panicking producer entry = %+v, %v", f, ok)
	}
	if _, ok := man.File("no-such-artifact"); ok {
		t.Error("File must miss on unknown names")
	}
}

func TestReadManifestValidates(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err == nil {
		t.Error("missing manifest must error")
	}
	write := func(body string) {
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("{not json")
	if _, err := ReadManifest(dir); err == nil {
		t.Error("malformed manifest must error")
	}
	write(`{"schema":"other.schema","version":1,"reason":"x","created_unix_ns":1,"files":[]}`)
	if _, err := ReadManifest(dir); err == nil {
		t.Error("wrong schema must error")
	}
	write(`{"schema":"subsim.flight-bundle","version":99,"reason":"x","created_unix_ns":1,"files":[]}`)
	if _, err := ReadManifest(dir); err == nil {
		t.Error("wrong version must error")
	}
}

func TestListBundles(t *testing.T) {
	dir := t.TempDir()
	second, err := WriteBundle(dir, "t", "later", bundleNow.Add(time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	first, err := WriteBundle(dir, "t", "earlier", bundleNow, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Noise that must be ignored: a regular file and a non-bundle dir.
	if err := os.WriteFile(filepath.Join(dir, "stray.bundle"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "not-a-bundle"), 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := ListBundles(dir)
	if err != nil {
		t.Fatalf("ListBundles: %v", err)
	}
	if len(got) != 2 || got[0] != first || got[1] != second {
		t.Errorf("ListBundles = %v, want [%s %s] (creation order)", got, first, second)
	}
}

func TestSanitizeReason(t *testing.T) {
	cases := map[string]string{
		"":              "manual",
		"panic":         "panic",
		"GET /debug":    "GET--debug",
		"α stall/panic": "--stall-panic",
		"ok_name-9":     "ok_name-9",
	}
	for in, want := range cases {
		if got := sanitizeReason(in); got != want {
			t.Errorf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestProfileProducers(t *testing.T) {
	for _, p := range ProfileProducers() {
		var buf bytes.Buffer
		if err := p.Write(&buf); err != nil {
			t.Errorf("%s producer: %v", p.Name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s producer wrote nothing", p.Name)
		}
	}
}
