// Package flight is the black-box flight recorder of the observability
// stack: an always-on, bounded, zero-steady-state-alloc record of what a
// run was doing right before something went wrong. Where the live
// telemetry plane (obs/serve) answers "what is happening now", this
// package answers "what happened" after a stall, an OOM kill, or a
// panic, via four pieces:
//
//   - Journal / Recorder: fixed-capacity single-writer event rings
//     (journal.go) capturing the structured run events — run.start,
//     round.done, bound.crossed, phase.done, run.done — plus span
//     open/close transitions and θ/bound updates.
//   - History: a periodic runtime/metrics sampler (history.go) turning
//     point-in-time scrapes into bounded time series (heap bytes, GC
//     pause, scheduler latency, goroutine count).
//   - Watchdog: a stall detector (watchdog.go) that fires when no
//     progress lands within a configurable window.
//   - WriteBundle: a versioned on-disk diagnostic-bundle writer
//     (bundle.go) that snapshots everything into one directory.
//
// The package is a leaf like internal/obs/timeline: it imports no other
// subsim package, so obs can embed it the same way it embeds the
// timeline. The glue that feeds it (span hooks, logger hooks, bundle
// producers for the run report and Chrome trace) lives in obs.
//
// # Memory-ordering contract (single-writer rings, seqlock export)
//
// Each Recorder is one event stream with exactly one writing goroutine
// (the coordinator loop owns StreamRun; the watchdog owns StreamWatchdog;
// control-plane triggers own StreamControl). Readers — the live /events
// endpoint and the bundle writer — snapshot concurrently and lock-free
// under the same seqlock protocol as timeline.Ring, per slot:
//
//   - the writer loads its cursor n, picks slot n&mask, stores
//     seq = 2n+1 (odd: "being written"), stores the payload words,
//     stores seq = 2(n+1) (even: "generation n committed"), and finally
//     publishes cursor = n+1;
//   - a reader snapshots the cursor, walks the last min(cursor, cap)
//     logical records, and validates each slot's seq equals 2(i+1) both
//     before and after reading the payload — a mismatch means the writer
//     lapped the reader mid-read, so the record is counted in Dropped
//     and never emitted torn.
//
// Every slot word is an atomic, so the scheme is clean under the race
// detector. Emit costs ten uncontended atomic operations and zero
// allocations in steady state: event labels (algorithm names, span
// names, phase names — a small recurring set) are interned into a
// copy-on-write table, so only the first sighting of a label allocates.
// A nil Journal and a nil Recorder are the disabled instruments: every
// method is a nil-safe no-op, extending the obs nil-tracer contract.
package flight

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one journal event. The numeric values are internal;
// exports use the stable dotted names (run.start, span.open, ...).
type Kind uint8

const (
	// KindNone is the zero Kind; it never appears in a snapshot.
	KindNone Kind = iota
	// KindRunStart mirrors Logger.RunStart: label=algorithm, A=n, B=m,
	// F1=k, F2=eps, F3=workers.
	KindRunStart
	// KindRoundDone mirrors Logger.RoundDone: label=algorithm, A=round,
	// B=theta, F1=lower, F2=upper, F3=approx.
	KindRoundDone
	// KindBoundCrossed mirrors Logger.BoundCrossed: label=algorithm,
	// A=round, F1=approx, F2=target.
	KindBoundCrossed
	// KindPhaseDone mirrors Logger.PhaseDone: label=phase, A=durationNS.
	KindPhaseDone
	// KindRunDone mirrors Logger.RunDone: label=algorithm, A=rounds,
	// B=sets, F1=influence, F2=elapsedNS.
	KindRunDone
	// KindSpanOpen is a tracer span opening: label=span name.
	KindSpanOpen
	// KindSpanClose is a tracer span closing: label=span name,
	// A=startNS of the span (the event time is the close time).
	KindSpanClose
	// KindBounds is a certified-bound update (MetricSet.SetBounds):
	// A=round, F1=lower, F2=upper, F3=approx.
	KindBounds
	// KindTheta is a θ-budget update (MetricSet.SetTheta): A=worst-case
	// θ, B=tightened θ.
	KindTheta
	// KindStall is a watchdog trip: label=context, A=idleNS.
	KindStall
	// KindBundle records that a diagnostic bundle was written:
	// label=reason.
	KindBundle

	numKinds
)

var kindNames = [numKinds]string{
	"none", "run.start", "round.done", "bound.crossed", "phase.done",
	"run.done", "span.open", "span.close", "bounds.update", "theta.update",
	"watchdog.stall", "bundle.write",
}

// String returns the stable dotted event name used in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "none"
}

// MarshalText renders the dotted name, so journal JSON stays readable.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a dotted event name (unknown names map to
// KindNone).
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i := Kind(0); i < numKinds; i++ {
		if kindNames[i] == s {
			*k = i
			return nil
		}
	}
	*k = KindNone
	return nil
}

// Well-known journal streams. Each stream has exactly one writing
// goroutine; see the package comment's memory-ordering contract.
const (
	// StreamRun carries the coordinator-loop events: run/round/phase
	// logger events, span transitions, θ/bound updates.
	StreamRun = 0
	// StreamWatchdog carries stall events from the watchdog goroutine.
	StreamWatchdog = 1
	// StreamControl carries control-plane events (bundle writes from
	// signals, HTTP, or panic capture).
	StreamControl = 2
)

// DefaultCapacity is the per-stream ring capacity used when New is
// handed a non-positive one: 1024 events (64 B/slot → 64 KiB/stream)
// comfortably outlasts the doubling rounds of a long sampling run.
const DefaultCapacity = 1 << 10

// Event is one exported journal record. The A/B/F1/F2/F3 payload words
// are kind-specific; see the Kind constants for the per-kind meaning.
type Event struct {
	Stream int     `json:"stream"`
	Index  uint64  `json:"index"` // per-stream sequence number, from 0
	TimeNS int64   `json:"time_ns"`
	Kind   Kind    `json:"kind"`
	Label  string  `json:"label,omitempty"`
	A      int64   `json:"a,omitempty"`
	B      int64   `json:"b,omitempty"`
	F1     float64 `json:"f1,omitempty"`
	F2     float64 `json:"f2,omitempty"`
	F3     float64 `json:"f3,omitempty"`
}

// slot is one ring entry. seq follows the seqlock protocol documented in
// the package comment; the remaining words are only meaningful when seq
// is even. meta packs kind<<32 | label id so the payload stays at eight
// atomic words.
type slot struct {
	seq  atomic.Uint64
	time atomic.Int64
	meta atomic.Uint64
	a    atomic.Int64
	b    atomic.Int64
	f1   atomic.Uint64
	f2   atomic.Uint64
	f3   atomic.Uint64
}

// labelMap is one immutable generation of the interning table: readers
// Load and look up lock-free; inserts copy the whole map and publish the
// next generation with one Store.
type labelMap struct {
	byName map[string]uint32
	names  []string
}

// labelTable interns event labels so steady-state Emit never allocates:
// the label set of a run (algorithm names, span names, phases) is small
// and recurring, so after warm-up every lookup is one atomic load plus a
// map read on an immutable map.
type labelTable struct {
	mu  sync.Mutex
	cur atomic.Pointer[labelMap]
}

func newLabelTable() *labelTable {
	t := &labelTable{}
	t.cur.Store(&labelMap{byName: map[string]uint32{}, names: []string{""}})
	return t
}

// id returns the interned id for name, assigning one on first sighting.
// The empty label is id 0.
func (t *labelTable) id(name string) uint32 {
	if name == "" {
		return 0
	}
	if id, ok := t.cur.Load().byName[name]; ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.cur.Load()
	if id, ok := old.byName[name]; ok {
		return id
	}
	next := &labelMap{
		byName: make(map[string]uint32, len(old.byName)+1),
		names:  make([]string, len(old.names), len(old.names)+1),
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	copy(next.names, old.names)
	id := uint32(len(next.names))
	next.names = append(next.names, name)
	next.byName[name] = id
	t.cur.Store(next)
	return id
}

// name resolves an interned id ("" for unknown ids).
func (t *labelTable) name(id uint32) string {
	m := t.cur.Load()
	if int(id) < len(m.names) {
		return m.names[id]
	}
	return ""
}

// Recorder is one journal stream: a fixed-capacity event ring with
// exactly one writing goroutine. Obtain one from Journal.Stream. A nil
// Recorder is the disabled instrument — Emit and Now are allocation-free
// no-ops — extending the obs nil-tracer contract, and hot-path callers
// must nil-guard it (enforced by the subsimlint hotpath-alloc analyzer).
type Recorder struct {
	stream int
	mask   uint64
	clock  func() int64
	labels *labelTable
	slots  []slot
	cursor atomic.Uint64 // total events ever written
}

// Stream returns the stream index the recorder writes (0 for nil).
func (r *Recorder) Stream() int {
	if r == nil {
		return 0
	}
	return r.stream
}

// Now reads the journal clock: nanoseconds since the journal epoch, or 0
// on a nil recorder. Lock-free.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return r.clock()
}

// Written returns the total number of events ever emitted (0 for nil).
func (r *Recorder) Written() uint64 {
	if r == nil {
		return 0
	}
	return r.cursor.Load()
}

// Emit appends one event. Nil-safe, wait-free for the single writer, and
// allocation-free once the label has been seen before: a full ring
// overwrites the oldest event (the drop is accounted in Snapshot), never
// blocks. The payload words a/b/f1/f2/f3 are kind-specific; see Kind.
func (r *Recorder) Emit(k Kind, label string, a, b int64, f1, f2, f3 float64) {
	if r == nil {
		return
	}
	id := r.labels.id(label)
	n := r.cursor.Load()
	s := &r.slots[n&r.mask]
	s.seq.Store(2*n + 1) // odd: slot under construction
	s.time.Store(r.clock())
	s.meta.Store(uint64(k)<<32 | uint64(id))
	s.a.Store(a)
	s.b.Store(b)
	s.f1.Store(floatBits(f1))
	s.f2.Store(floatBits(f2))
	s.f3.Store(floatBits(f3))
	s.seq.Store(2 * (n + 1)) // even: generation n committed
	r.cursor.Store(n + 1)
}

// snapshot appends the stream's currently readable events to out and
// returns the count of events not readable: overwritten by capacity
// wraparound, or skipped because the writer overlapped the read.
func (r *Recorder) snapshot(out []Event) ([]Event, int64) {
	if r == nil {
		return out, 0
	}
	n := r.cursor.Load()
	span := uint64(len(r.slots))
	lo := uint64(0)
	var dropped int64
	if n > span {
		lo = n - span
		dropped = int64(n - span)
	}
	for i := lo; i < n; i++ {
		s := &r.slots[i&r.mask]
		want := 2 * (i + 1)
		if s.seq.Load() != want {
			dropped++
			continue
		}
		meta := s.meta.Load()
		ev := Event{
			Stream: r.stream,
			Index:  i,
			TimeNS: s.time.Load(),
			Kind:   Kind(meta >> 32),
			Label:  r.labels.name(uint32(meta)),
			A:      s.a.Load(),
			B:      s.b.Load(),
			F1:     bitsFloat(s.f1.Load()),
			F2:     bitsFloat(s.f2.Load()),
			F3:     bitsFloat(s.f3.Load()),
		}
		if s.seq.Load() != want { // writer lapped us mid-read: torn
			dropped++
			continue
		}
		out = append(out, ev)
	}
	return out, dropped
}

// Journal owns one Recorder per event stream over a shared lock-free
// clock and label table. Construct with New (typically through
// obs.Tracer.EnableFlight); a nil *Journal is the disabled instrument —
// every method is a nil-safe no-op and Stream hands out nil Recorders.
type Journal struct {
	capacity int
	clock    func() int64
	labels   *labelTable

	mu      sync.Mutex                 // guards stream-vector growth
	streams atomic.Pointer[[]*Recorder] // copy-on-write: readers never lock
}

// WallClock returns the default journal clock: monotonic nanoseconds
// since the moment of the call, readable concurrently without locks.
func WallClock() func() int64 {
	epoch := time.Now()
	return func() int64 { return int64(time.Since(epoch)) }
}

// New returns a journal whose per-stream rings hold capacityPerStream
// events (rounded up to a power of two; non-positive means
// DefaultCapacity). clock supplies nanosecond timestamps and must be
// safe for concurrent use; nil installs WallClock. Tests inject a fake
// clock for byte-stable golden exports.
func New(capacityPerStream int, clock func() int64) *Journal {
	if capacityPerStream <= 0 {
		capacityPerStream = DefaultCapacity
	}
	capRounded := 1
	for capRounded < capacityPerStream {
		capRounded <<= 1
	}
	if clock == nil {
		clock = WallClock()
	}
	return &Journal{capacity: capRounded, clock: clock, labels: newLabelTable()}
}

// Now reads the journal clock (0 on a nil journal).
func (j *Journal) Now() int64 {
	if j == nil {
		return 0
	}
	return j.clock()
}

// Capacity returns the per-stream ring capacity (0 on nil).
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return j.capacity
}

// Stream returns stream i's recorder, creating it (and any lower-indexed
// streams) on first use. Returns nil — the disabled recorder — on a nil
// journal or a negative index. The fast path is one atomic load; the
// growth path takes the journal mutex and publishes the grown vector
// copy-on-write, exactly like timeline.Timeline.Worker.
func (j *Journal) Stream(i int) *Recorder {
	if j == nil || i < 0 {
		return nil
	}
	if p := j.streams.Load(); p != nil && i < len(*p) {
		return (*p)[i]
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	old := j.streams.Load()
	var cur []*Recorder
	if old != nil {
		cur = *old
	}
	if i < len(cur) {
		return cur[i]
	}
	next := make([]*Recorder, i+1)
	copy(next, cur)
	for s := len(cur); s <= i; s++ {
		next[s] = &Recorder{
			stream: s,
			mask:   uint64(j.capacity - 1),
			clock:  j.clock,
			labels: j.labels,
			slots:  make([]slot, j.capacity),
		}
	}
	j.streams.Store(&next)
	return next[i]
}

// Written sums the events ever emitted across all streams (0 on nil) —
// a cheap progress signal for the stall watchdog.
func (j *Journal) Written() uint64 {
	if j == nil {
		return 0
	}
	p := j.streams.Load()
	if p == nil {
		return 0
	}
	var total uint64
	for _, r := range *p {
		total += r.Written()
	}
	return total
}

// Snapshot is a consistent-enough point-in-time view of the journal:
// every readable event across all streams, sorted by time (then stream,
// then index) so exports are deterministic for a deterministic clock.
type Snapshot struct {
	// Streams is the number of streams at snapshot time.
	Streams int `json:"streams"`
	// Written is the total number of events ever emitted.
	Written int64 `json:"written"`
	// Dropped counts events lost to ring wraparound plus events skipped
	// because a writer overlapped the export read.
	Dropped int64 `json:"dropped"`
	// Events are the readable events, ascending by TimeNS.
	Events []Event `json:"events"`
}

// Snapshot walks every stream lock-free (see the package comment's
// seqlock contract) and returns the merged, sorted event view. Safe to
// call at any time, including concurrently with active writers; returns
// a zero Snapshot on a nil journal.
func (j *Journal) Snapshot() Snapshot {
	var snap Snapshot
	if j == nil {
		return snap
	}
	p := j.streams.Load()
	if p == nil {
		return snap
	}
	streams := *p
	snap.Streams = len(streams)
	total := 0
	for _, r := range streams {
		total += len(r.slots)
	}
	snap.Events = make([]Event, 0, total)
	for _, r := range streams {
		var dropped int64
		snap.Events, dropped = r.snapshot(snap.Events)
		snap.Dropped += dropped
		snap.Written += int64(r.Written())
	}
	sort.SliceStable(snap.Events, func(a, b int) bool {
		x, y := snap.Events[a], snap.Events[b]
		if x.TimeNS != y.TimeNS {
			return x.TimeNS < y.TimeNS
		}
		if x.Stream != y.Stream {
			return x.Stream < y.Stream
		}
		return x.Index < y.Index
	})
	return snap
}

// JournalSchema / JournalVersion identify the journal JSON document
// written into diagnostic bundles and served by GET /events.
const (
	JournalSchema  = "subsim.flight-journal"
	JournalVersion = 1
)

// journalDoc is the schema envelope around a Snapshot.
type journalDoc struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Snapshot
}

// WriteJSON writes the schema-versioned journal document (a Snapshot
// wrapped in {schema, version}) as indented JSON. Nil journals write an
// empty, still-valid document, so bundle producers need no nil checks.
func (j *Journal) WriteJSON(w io.Writer) error {
	doc := journalDoc{Schema: JournalSchema, Version: JournalVersion, Snapshot: j.Snapshot()}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
