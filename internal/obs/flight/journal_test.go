package flight

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock returns a deterministic journal clock: each call advances by
// step nanoseconds. Safe for concurrent use.
func fakeClock(step int64) func() int64 {
	var n atomic.Int64
	return func() int64 { return n.Add(step) }
}

func TestKindRoundTrip(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%d): %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != k {
			t.Errorf("kind %d round-tripped to %d via %q", k, back, text)
		}
	}
	var unknown Kind
	if err := unknown.UnmarshalText([]byte("no.such.kind")); err != nil {
		t.Fatalf("UnmarshalText(unknown): %v", err)
	}
	if unknown != KindNone {
		t.Errorf("unknown kind parsed to %v, want KindNone", unknown)
	}
	if got := Kind(200).String(); got != "none" {
		t.Errorf("out-of-range Kind.String() = %q, want none", got)
	}
}

func TestNilJournalAndRecorder(t *testing.T) {
	var j *Journal
	if j.Now() != 0 || j.Capacity() != 0 || j.Written() != 0 {
		t.Error("nil journal accessors must return zero")
	}
	if r := j.Stream(0); r != nil {
		t.Error("nil journal must hand out nil recorders")
	}
	snap := j.Snapshot()
	if snap.Streams != 0 || snap.Written != 0 || len(snap.Events) != 0 {
		t.Errorf("nil journal snapshot = %+v, want zero", snap)
	}
	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatalf("nil journal WriteJSON: %v", err)
	}

	var r *Recorder
	r.Emit(KindRunStart, "x", 1, 2, 3, 4, 5) // must not panic
	if r.Now() != 0 || r.Written() != 0 || r.Stream() != 0 {
		t.Error("nil recorder accessors must return zero")
	}

	if got := New(0, nil).Capacity(); got != DefaultCapacity {
		t.Errorf("New(0).Capacity() = %d, want %d", got, DefaultCapacity)
	}
	if got := New(5, nil).Capacity(); got != 8 {
		t.Errorf("New(5).Capacity() = %d, want 8 (next power of two)", got)
	}

	// A journal with no streams materialized snapshots cleanly too.
	fresh := New(4, fakeClock(1))
	if snap := fresh.Snapshot(); snap.Streams != 0 || snap.Written != 0 {
		t.Errorf("streamless snapshot = %+v, want zero", snap)
	}
	if fresh.Stream(-1) != nil {
		t.Error("negative stream index must return the nil recorder")
	}
}

func TestEmitSnapshotPayload(t *testing.T) {
	j := New(8, fakeClock(10))
	rec := j.Stream(StreamRun)
	rec.Emit(KindRunStart, "opimc", 100, 200, 0.5, 0.25, 8)
	rec.Emit(KindRoundDone, "opimc", 3, 4096, 10.5, 20.5, 0.9)
	j.Stream(StreamWatchdog).Emit(KindStall, "", int64(time.Second), 0, 0, 0, 0)

	snap := j.Snapshot()
	if snap.Streams != 2 || snap.Written != 3 || snap.Dropped != 0 {
		t.Fatalf("snapshot header = %+v, want 2 streams / 3 written / 0 dropped", snap)
	}
	if len(snap.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(snap.Events))
	}
	e := snap.Events[1]
	if e.Stream != StreamRun || e.Index != 1 || e.Kind != KindRoundDone ||
		e.Label != "opimc" || e.A != 3 || e.B != 4096 ||
		e.F1 != 10.5 || e.F2 != 20.5 || e.F3 != 0.9 {
		t.Errorf("round.done event = %+v", e)
	}
	if e.TimeNS != 20 {
		t.Errorf("fake-clock time = %d, want 20", e.TimeNS)
	}
	stall := snap.Events[2]
	if stall.Stream != StreamWatchdog || stall.Kind != KindStall || stall.Label != "" {
		t.Errorf("stall event = %+v", stall)
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].TimeNS < snap.Events[i-1].TimeNS {
			t.Fatalf("events not time-sorted at %d", i)
		}
	}
}

func TestWraparoundDropCount(t *testing.T) {
	j := New(4, fakeClock(1))
	rec := j.Stream(StreamRun)
	const total = 11
	for i := int64(0); i < total; i++ {
		rec.Emit(KindRoundDone, "alg", i, 0, 0, 0, 0)
	}
	snap := j.Snapshot()
	if snap.Written != total {
		t.Fatalf("Written = %d, want %d", snap.Written, total)
	}
	if snap.Dropped != total-4 {
		t.Fatalf("Dropped = %d, want %d (capacity 4)", snap.Dropped, total-4)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("got %d events, want the 4 newest", len(snap.Events))
	}
	for i, e := range snap.Events {
		wantIdx := uint64(total - 4 + i)
		if e.Index != wantIdx || e.A != int64(wantIdx) {
			t.Errorf("survivor %d = index %d a %d, want index %d", i, e.Index, e.A, wantIdx)
		}
	}
}

func TestLabelInterning(t *testing.T) {
	tbl := newLabelTable()
	if id := tbl.id(""); id != 0 {
		t.Errorf("empty label id = %d, want 0", id)
	}
	a := tbl.id("alpha")
	b := tbl.id("beta")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids alpha=%d beta=%d must be distinct and nonzero", a, b)
	}
	if again := tbl.id("alpha"); again != a {
		t.Errorf("re-interning alpha gave %d, want %d", again, a)
	}
	if got := tbl.name(a); got != "alpha" {
		t.Errorf("name(%d) = %q", a, got)
	}
	if got := tbl.name(0); got != "" {
		t.Errorf("name(0) = %q, want empty", got)
	}
	if got := tbl.name(999); got != "" {
		t.Errorf("unknown id resolved to %q", got)
	}
}

func TestStreamGrowthSharesState(t *testing.T) {
	j := New(4, fakeClock(1))
	high := j.Stream(StreamControl)
	if high == nil || high.Stream() != StreamControl {
		t.Fatalf("Stream(%d) = %v", StreamControl, high)
	}
	// Growing to stream 2 materializes 0 and 1 as well, and repeated
	// lookups return the same recorder (COW vector, stable pointers).
	if j.Stream(StreamRun) == nil || j.Stream(StreamWatchdog) == nil {
		t.Fatal("lower-indexed streams must be materialized by growth")
	}
	if j.Stream(StreamControl) != high {
		t.Error("Stream must return a stable recorder pointer")
	}
	j.Stream(StreamRun).Emit(KindRunStart, "shared", 0, 0, 0, 0, 0)
	high.Emit(KindBundle, "shared", 0, 0, 0, 0, 0)
	snap := j.Snapshot()
	if len(snap.Events) != 2 || snap.Events[0].Label != "shared" || snap.Events[1].Label != "shared" {
		t.Fatalf("shared label table broken: %+v", snap.Events)
	}
	if j.Written() != 2 {
		t.Errorf("journal Written = %d, want 2", j.Written())
	}
}

func TestWriteJSONEnvelope(t *testing.T) {
	j := New(4, fakeClock(7))
	j.Stream(StreamRun).Emit(KindPhaseDone, "sampling", 42, 0, 0, 0, 0)
	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
		Snapshot
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("parse journal doc: %v", err)
	}
	if doc.Schema != JournalSchema || doc.Version != JournalVersion {
		t.Errorf("envelope = %q v%d", doc.Schema, doc.Version)
	}
	if len(doc.Events) != 1 || doc.Events[0].Kind != KindPhaseDone || doc.Events[0].Label != "sampling" {
		t.Errorf("events = %+v", doc.Events)
	}
}

// TestJournalEmitAllocFree is the steady-state allocation gate wired into
// `make test-alloc`: after the label has been interned once, Emit must
// never allocate, or the always-on recorder would pressure the GC on the
// hot coordinator loop.
func TestJournalEmitAllocFree(t *testing.T) {
	j := New(64, nil)
	rec := j.Stream(StreamRun)
	rec.Emit(KindRoundDone, "opimc", 0, 0, 0, 0, 0) // intern the label
	var i int64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		rec.Emit(KindRoundDone, "opimc", i, i*2, float64(i), 0.5, 0.25)
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

func TestSnapshotAllocFreeForWriter(t *testing.T) {
	// The nil (disabled) recorder must be free enough for hot paths even
	// without the lint-enforced guard.
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(KindRoundDone, "x", 1, 2, 3, 4, 5)
	})
	if allocs != 0 {
		t.Fatalf("nil Emit allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRecordDuringExportTorture hammers one writer per stream against
// concurrent Snapshot readers. Under -race this proves the seqlock
// discipline is data-race clean; the payload checks prove no torn event
// ever escapes: every emitted event carries a = index and f1 = index, so
// any mixed-generation read would surface as a mismatched pair.
func TestRecordDuringExportTorture(t *testing.T) {
	j := New(64, nil) // small ring so writers lap readers constantly
	const (
		writers = 3
		perW    = 20000
		readers = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		rec := j.Stream(w)
		wg.Add(1)
		go func(rec *Recorder) {
			defer wg.Done()
			for i := int64(0); i < perW; i++ {
				rec.Emit(KindRoundDone, "torture", i, -i, float64(i), 0, 0)
			}
		}(rec)
	}
	stop := make(chan struct{})
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastWritten int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := j.Snapshot()
				if snap.Written < lastWritten {
					errs <- "Written went backwards"
					return
				}
				lastWritten = snap.Written
				perStream := map[int]uint64{}
				for _, e := range snap.Events {
					if e.A != int64(e.Index) || e.B != -int64(e.Index) || e.F1 != float64(e.Index) {
						errs <- "torn event escaped the seqlock"
						return
					}
					if e.Kind != KindRoundDone || e.Label != "torture" {
						errs <- "corrupt meta word"
						return
					}
					if prev, ok := perStream[e.Stream]; ok && e.Index <= prev {
						errs <- "per-stream indexes not strictly increasing"
						return
					}
					perStream[e.Stream] = e.Index
				}
			}
		}()
	}
	// Let writers finish, then stop the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j.Written() < writers*perW {
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	select {
	case <-done:
	case msg := <-errs:
		close(stop)
		wg.Wait()
		t.Fatal(msg)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	final := j.Snapshot()
	if final.Written != writers*perW {
		t.Fatalf("final Written = %d, want %d", final.Written, writers*perW)
	}
	// All surviving events are the newest capacity-per-stream ones.
	if len(final.Events)+int(final.Dropped) != writers*perW {
		t.Fatalf("events %d + dropped %d != written %d",
			len(final.Events), final.Dropped, final.Written)
	}
}
