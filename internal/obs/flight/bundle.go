package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// BundleSchema / BundleVersion identify the manifest of an on-disk
// diagnostic bundle. A bundle is one directory named
// <timestamp>-<reason>.bundle containing one file per producer plus
// manifest.json, written last so a complete manifest implies a complete
// bundle.
const (
	BundleSchema  = "subsim.flight-bundle"
	BundleVersion = 1
)

// ManifestName is the manifest's file name inside a bundle directory.
const ManifestName = "manifest.json"

// BundleFile is one manifest entry. A producer that failed (or panicked)
// still gets an entry, with Error set — a crash dump must survive its
// own producers misbehaving, so one broken artifact never voids the
// bundle.
type BundleFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	Error string `json:"error,omitempty"`
}

// Manifest is the bundle's self-description, written as manifest.json.
type Manifest struct {
	Schema    string       `json:"schema"`
	Version   int          `json:"version"`
	Tool      string       `json:"tool,omitempty"`
	Reason    string       `json:"reason"`
	CreatedNS int64        `json:"created_unix_ns"`
	Files     []BundleFile `json:"files"`
}

// Producer writes one bundle artifact. Write receives the artifact's
// file and reports any production error; the bundle writer recovers
// producer panics, so a Producer may be handed live data structures
// mid-crash.
type Producer struct {
	Name  string
	Write func(io.Writer) error
}

// sanitizeReason maps a free-form trigger reason onto a safe directory
// name component.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			_, _ = b.WriteRune(r) // strings.Builder never errors
		default:
			_, _ = b.WriteRune('-')
		}
	}
	return b.String()
}

// BundleDirName returns the directory name for a bundle created at now
// for the given reason: 20060102T150405.000000000Z-<reason>.bundle. The
// *.bundle suffix is what .gitignore and artifact-upload globs key on.
func BundleDirName(now time.Time, reason string) string {
	return now.UTC().Format("20060102T150405.000000000Z") + "-" + sanitizeReason(reason) + ".bundle"
}

// WriteBundle writes one diagnostic bundle under dir (created if
// missing; "" means the current directory) and returns the bundle
// directory's path. Producer failures are recorded in the manifest
// rather than aborting — only an unwritable destination fails the whole
// bundle. now stamps the manifest and the directory name; tests inject a
// fixed time for byte-stable golden manifests.
func WriteBundle(dir, tool, reason string, now time.Time, producers []Producer) (string, error) {
	if dir == "" {
		dir = "."
	}
	bundleDir := filepath.Join(dir, BundleDirName(now, reason))
	if err := os.MkdirAll(bundleDir, 0o755); err != nil {
		return "", fmt.Errorf("flight: create bundle dir: %w", err)
	}
	man := Manifest{
		Schema:    BundleSchema,
		Version:   BundleVersion,
		Tool:      tool,
		Reason:    reason,
		CreatedNS: now.UnixNano(),
		Files:     make([]BundleFile, 0, len(producers)),
	}
	for _, p := range producers {
		entry := BundleFile{Name: p.Name}
		if err := writeArtifact(filepath.Join(bundleDir, p.Name), p.Write); err != nil {
			entry.Error = err.Error()
		} else if fi, err := os.Stat(filepath.Join(bundleDir, p.Name)); err == nil {
			entry.Bytes = fi.Size()
		}
		man.Files = append(man.Files, entry)
	}
	f, err := os.Create(filepath.Join(bundleDir, ManifestName))
	if err != nil {
		return "", fmt.Errorf("flight: write manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("flight: encode manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("flight: close manifest: %w", err)
	}
	return bundleDir, nil
}

// writeArtifact runs one producer against its destination file,
// containing panics: a producer handed a live data structure mid-crash
// must not take the bundle down with it.
func writeArtifact(path string, write func(io.Writer) error) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("producer panicked: %v", r)
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return write(f)
}

// ReadManifest loads and validates the manifest of a bundle directory.
func ReadManifest(bundleDir string) (Manifest, error) {
	var man Manifest
	raw, err := os.ReadFile(filepath.Join(bundleDir, ManifestName))
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, fmt.Errorf("flight: parse %s: %w", ManifestName, err)
	}
	if man.Schema != BundleSchema {
		return man, fmt.Errorf("flight: %s has schema %q, want %q", bundleDir, man.Schema, BundleSchema)
	}
	if man.Version != BundleVersion {
		return man, fmt.Errorf("flight: %s has schema version %d, want %d", bundleDir, man.Version, BundleVersion)
	}
	return man, nil
}

// File returns the manifest entry for name, if present.
func (m Manifest) File(name string) (BundleFile, bool) {
	for _, f := range m.Files {
		if f.Name == name {
			return f, true
		}
	}
	return BundleFile{}, false
}

// ListBundles returns the bundle directories under dir, sorted by name
// (which is creation-time order, given the timestamp prefix).
func ListBundles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasSuffix(e.Name(), ".bundle") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// ProfileProducers returns the pprof artifacts every bundle carries: the
// full goroutine dump (text, debug=2 — the same view a SIGQUIT crash
// prints) and the heap profile (binary pprof format).
func ProfileProducers() []Producer {
	return []Producer{
		{Name: "goroutines.txt", Write: func(w io.Writer) error {
			return pprof.Lookup("goroutine").WriteTo(w, 2)
		}},
		{Name: "heap.pprof", Write: func(w io.Writer) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		}},
	}
}
