package flight

import (
	"encoding/json"
	"io"
	"math"
	rtm "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// floatBits / bitsFloat move float payloads through atomic.Uint64 words.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// historySeries are the runtime/metrics series the History sampler keeps
// as bounded time series — the same scalars the live /metrics endpoint
// scrapes (see obs/serve), plus p99 summaries of the two cumulative
// runtime distributions (GC pause, scheduler latency). Histogram series
// are cumulative since process start, so their quantiles describe the
// whole run up to each sample — exactly the post-mortem view a bundle
// wants.
var historySeries = []struct {
	name     string  // stable series name used in exports
	key      string  // runtime/metrics name
	quantile float64 // >0: read a Float64Histogram quantile
	scale    float64 // multiply the value (seconds→ns for durations)
}{
	{name: "goroutines", key: "/sched/goroutines:goroutines"},
	{name: "heap_objects_bytes", key: "/memory/classes/heap/objects:bytes"},
	{name: "memory_total_bytes", key: "/memory/classes/total:bytes"},
	{name: "gc_cycles_total", key: "/gc/cycles/total:gc-cycles"},
	{name: "gc_pause_p99_ns", key: "/gc/pauses:seconds", quantile: 0.99, scale: 1e9},
	{name: "sched_latency_p99_ns", key: "/sched/latencies:seconds", quantile: 0.99, scale: 1e9},
}

// DefaultHistoryCapacity holds ~8.5 minutes of samples at the default
// 250 ms cadence; older samples fall off the ring, keeping the recorder
// bounded no matter how long the run.
const DefaultHistoryCapacity = 1 << 11

// HistorySample is one exported sampler reading: the values of every
// series at one instant.
type HistorySample struct {
	TimeNS int64     `json:"time_ns"`
	Values []float64 `json:"values"`
}

// History is a fixed-capacity ring of runtime/metrics samples with
// exactly one writing goroutine (the Sampler, or a test calling Sample
// directly). Export reads are lock-free under the same per-slot seqlock
// protocol as the journal: each logical sample i occupies stride
// consecutive atomic words — [seq, time, v0..vK-1] — committed by the
// final even seq store. A nil History is the disabled instrument.
type History struct {
	mask    uint64
	stride  int // 2 + len(historySeries) words per slot
	clock   func() int64
	words   []atomic.Uint64
	cursor  atomic.Uint64 // total samples ever recorded
	scratch []rtm.Sample  // owned by the writer; reused every Sample
	values  []float64     // owned by the writer; reused every Sample
}

// NewHistory returns a history ring holding capacity samples (rounded up
// to a power of two; non-positive means DefaultHistoryCapacity). clock
// supplies nanosecond timestamps (nil installs WallClock).
func NewHistory(capacity int, clock func() int64) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	capRounded := 1
	for capRounded < capacity {
		capRounded <<= 1
	}
	if clock == nil {
		clock = WallClock()
	}
	h := &History{
		mask:    uint64(capRounded - 1),
		stride:  2 + len(historySeries),
		clock:   clock,
		scratch: make([]rtm.Sample, len(historySeries)),
		values:  make([]float64, len(historySeries)),
	}
	h.words = make([]atomic.Uint64, capRounded*h.stride)
	for i := range historySeries {
		h.scratch[i].Name = historySeries[i].key
	}
	return h
}

// SeriesNames returns the stable series names, index-aligned with
// HistorySample.Values (nil for a nil history).
func (h *History) SeriesNames() []string {
	if h == nil {
		return nil
	}
	names := make([]string, len(historySeries))
	for i := range historySeries {
		names[i] = historySeries[i].name
	}
	return names
}

// Written returns the total number of samples ever recorded (0 for nil).
func (h *History) Written() uint64 {
	if h == nil {
		return 0
	}
	return h.cursor.Load()
}

// Sample reads runtime/metrics and records one ring entry. Must only be
// called from the single writing goroutine. Allocation-free in steady
// state: the runtime/metrics scratch (including histogram buffers, which
// rtm.Read reuses in place) and the value vector are owned by the writer
// and recycled every call. Nil-safe no-op.
func (h *History) Sample() {
	if h == nil {
		return
	}
	rtm.Read(h.scratch)
	for i, s := range h.scratch {
		def := historySeries[i]
		var v float64
		switch s.Value.Kind() {
		case rtm.KindUint64:
			v = float64(s.Value.Uint64())
		case rtm.KindFloat64:
			v = s.Value.Float64()
		case rtm.KindFloat64Histogram:
			v = histQuantile(s.Value.Float64Histogram(), def.quantile)
		default:
			// KindBad: unknown key on this runtime — record zero.
		}
		if def.scale != 0 {
			v *= def.scale
		}
		h.values[i] = v
	}
	h.record(h.clock(), h.values)
}

// record commits one slot under the seqlock protocol (split from Sample
// so tests can drive the ring with synthetic values).
func (h *History) record(timeNS int64, values []float64) {
	n := h.cursor.Load()
	base := int(n&h.mask) * h.stride
	h.words[base].Store(2*n + 1) // odd: slot under construction
	h.words[base+1].Store(uint64(timeNS))
	for i, v := range values {
		h.words[base+2+i].Store(floatBits(v))
	}
	h.words[base].Store(2 * (n + 1)) // even: committed
	h.cursor.Store(n + 1)
}

// HistorySnapshot is the exported time-series view: the series names
// plus every readable sample, ascending by time.
type HistorySnapshot struct {
	Series  []string        `json:"series"`
	Written int64           `json:"written"`
	Dropped int64           `json:"dropped"`
	Samples []HistorySample `json:"samples"`
}

// Snapshot walks the ring lock-free and returns the readable samples in
// write order (which is time order for a monotone clock). Torn or lapped
// slots are counted in Dropped and never emitted. Zero value on nil.
func (h *History) Snapshot() HistorySnapshot {
	var snap HistorySnapshot
	if h == nil {
		return snap
	}
	snap.Series = h.SeriesNames()
	n := h.cursor.Load()
	capacity := uint64(len(h.words) / h.stride)
	lo := uint64(0)
	if n > capacity {
		lo = n - capacity
		snap.Dropped = int64(n - capacity)
	}
	snap.Written = int64(n)
	snap.Samples = make([]HistorySample, 0, n-lo)
	for i := lo; i < n; i++ {
		base := int(i&h.mask) * h.stride
		want := 2 * (i + 1)
		if h.words[base].Load() != want {
			snap.Dropped++
			continue
		}
		sample := HistorySample{
			TimeNS: int64(h.words[base+1].Load()),
			Values: make([]float64, h.stride-2),
		}
		for k := range sample.Values {
			sample.Values[k] = bitsFloat(h.words[base+2+k].Load())
		}
		if h.words[base].Load() != want { // writer lapped us mid-read
			snap.Dropped++
			continue
		}
		snap.Samples = append(snap.Samples, sample)
	}
	return snap
}

// HistorySchema / HistoryVersion identify the metrics-history JSON
// document written into diagnostic bundles.
const (
	HistorySchema  = "subsim.flight-history"
	HistoryVersion = 1
)

type historyDoc struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	HistorySnapshot
}

// WriteJSON writes the schema-versioned history document as indented
// JSON. Nil histories write an empty, still-valid document.
func (h *History) WriteJSON(w io.Writer) error {
	doc := historyDoc{Schema: HistorySchema, Version: HistoryVersion, HistorySnapshot: h.Snapshot()}
	if doc.Series == nil {
		doc.Series = []string{}
	}
	if doc.Samples == nil {
		doc.Samples = []HistorySample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// histQuantile reads the q-quantile of a runtime/metrics histogram: the
// upper edge of the first bucket whose cumulative count reaches q of the
// total (0 for an empty histogram). Infinite edges fall back to the
// nearest finite boundary so the result is always a usable number.
func histQuantile(hist *rtm.Float64Histogram, q float64) float64 {
	if hist == nil || len(hist.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range hist.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range hist.Counts {
		cum += c
		if c > 0 && cum > target {
			hi := hist.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return hist.Buckets[i]
			}
			return hi
		}
	}
	return 0
}

// Sampler drives a History from its own goroutine at a fixed cadence.
// Construct with StartSampler; Stop is idempotent and waits for the
// goroutine to exit, after which the caller may Sample directly (e.g.
// one final sample while writing a bundle).
type Sampler struct {
	h    *History
	tick *time.Ticker
	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// StartSampler takes an immediate first sample, then samples every
// `every` (non-positive picks 250 ms) until Stop. Returns nil on a nil
// history, keeping the disabled path free.
func (h *History) StartSampler(every time.Duration) *Sampler {
	if h == nil {
		return nil
	}
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	s := &Sampler{
		h:    h,
		tick: time.NewTicker(every),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	h.Sample()
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			case <-s.tick.C:
				h.Sample()
			}
		}
	}()
	return s
}

// Stop halts the sampling goroutine and waits for it to exit. Nil-safe
// and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
	s.tick.Stop()
}
