package obs

import (
	"encoding/json"
	"io"
	"time"

	"subsim/internal/obs/timeline"
)

// Schema identifies the run-report JSON document type; Version is bumped
// on any incompatible change so trajectories of BENCH_*.json-style
// artifacts can be diffed safely across repo versions.
const (
	Schema        = "subsim.run-report"
	SchemaVersion = 1
)

// SpanSnapshot is one span in a report: name, offset from the trace
// epoch, duration, attributes, and nested children. Open is only ever
// true in *live* snapshots (Tracer.LiveSpans); final run reports close
// every span.
type SpanSnapshot struct {
	Name       string          `json:"name"`
	StartNS    int64           `json:"start_ns"`
	DurationNS int64           `json:"duration_ns"`
	Open       bool            `json:"open,omitempty"`
	Attrs      map[string]any  `json:"attrs,omitempty"`
	Children   []*SpanSnapshot `json:"children,omitempty"`
}

// Duration returns the span duration as a time.Duration.
func (s *SpanSnapshot) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNS)
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Report is the machine-readable summary of one run: the span tree, the
// metric snapshots, and run-level metadata. Build one with
// Tracer.Report; serialise it with WriteJSON.
type Report struct {
	Schema     string                       `json:"schema"`
	Version    int                          `json:"version"`
	Meta       map[string]any               `json:"meta,omitempty"`
	Spans      []*SpanSnapshot              `json:"spans,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	WorkerSets []int64                      `json:"worker_sets,omitempty"`
	WorkerBusy []int64                      `json:"worker_busy_ns,omitempty"`
	// Timeline is the per-phase utilization/imbalance digest of the
	// execution timeline, present only when EnableTimeline was called
	// (itself schema-versioned; see timeline.SummarySchema).
	Timeline *timeline.Summary `json:"timeline,omitempty"`
}

// Report snapshots the tracer into a schema-versioned document. Open
// spans are closed at the current clock reading. Returns nil on a nil
// tracer, so `res.Report = opt.Tracer.Report()` threads disabled tracing
// through for free.
func (t *Tracer) Report() *Report {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &Report{
		Schema:  Schema,
		Version: SchemaVersion,
	}
	if len(t.meta) > 0 {
		r.Meta = make(map[string]any, len(t.meta))
		for k, v := range t.meta {
			r.Meta[k] = v
		}
	}
	for _, s := range t.roots {
		r.Spans = append(r.Spans, snapshotSpan(s, now))
	}
	m := t.metrics
	r.Counters = map[string]int64{
		"rr_sets_total":           m.Sets.Load(),
		"rr_nodes_total":          m.Nodes.Load(),
		"rr_edges_examined_total": m.Edges.Load(),
		"sentinel_hits_total":     m.SentinelHits.Load(),
		"index_entries_total":     m.IndexEntries.Load(),
		"theta_saved_total":       m.ThetaSaved.Load(),
	}
	if lower, upper, approx, round := m.Lower.Load(), m.Upper.Load(), m.Approx.Load(), m.Round.Load(); lower != 0 || upper != 0 || approx != 0 || round != 0 {
		r.Gauges = map[string]float64{
			"bound_lower": lower,
			"bound_upper": upper,
			"approx":      approx,
			"round":       float64(round),
		}
	}
	// Estimator/bound instruments appear only when a run set them, so
	// exact-backend worst-case runs keep their historic report shape.
	if sb := m.SketchBytes.Load(); sb != 0 {
		if r.Gauges == nil {
			r.Gauges = map[string]float64{}
		}
		r.Gauges["sketch_bytes"] = float64(sb)
	}
	if tw, tt := m.ThetaWorst.Load(), m.ThetaTight.Load(); tw != 0 || tt != 0 {
		if r.Gauges == nil {
			r.Gauges = map[string]float64{}
		}
		r.Gauges["theta_worst"] = float64(tw)
		r.Gauges["theta_tight"] = float64(tt)
	}
	r.Histograms = map[string]HistogramSnapshot{
		"rr_size":                 m.RRSize.Snapshot(),
		"rr_edges_per_set":        m.EdgesPerSet.Snapshot(),
		"geom_skip_len":           m.SkipLen.Snapshot(),
		"index_build_ns":          m.IndexBuild.Snapshot(),
		"index_build_serial_ns":   m.IndexBuildSerial.Snapshot(),
		"index_build_parallel_ns": m.IndexBuildParallel.Snapshot(),
		"splice_ns":               m.Splice.Snapshot(),
	}
	r.WorkerSets = m.WorkerSnapshot()
	r.WorkerBusy = m.WorkerBusySnapshot()
	if m.Timeline != nil {
		sum := timeline.Summarize(m.Timeline.Snapshot())
		r.Timeline = &sum
	}
	return r
}

// LiveSpans snapshots the span forest *without* waiting for the run to
// finish: still-open spans are reported with their duration so far and
// Open=true. The walk is lock-free over the copy-on-write span fields —
// see the package comment's memory-ordering contract — so it is safe to
// call from a scrape handler while the run's coordinator goroutine keeps
// opening and closing spans. Returns nil on a nil tracer.
func (t *Tracer) LiveSpans() []*SpanSnapshot {
	if t == nil {
		return nil
	}
	now := t.now()
	var out []*SpanSnapshot
	for _, s := range t.liveRoots() {
		out = append(out, snapshotSpan(s, now))
	}
	return out
}

func snapshotSpan(s *Span, now int64) *SpanSnapshot {
	end := s.endNS.Load()
	open := end == 0
	if open {
		end = now
	}
	out := &SpanSnapshot{
		Name:       s.name,
		StartNS:    s.startNS,
		DurationNS: end - s.startNS,
		Open:       open,
	}
	if attrs := s.liveAttrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.liveChildren() {
		out.Children = append(out.Children, snapshotSpan(c, now))
	}
	return out
}

// Span returns the first span named name across the report's span
// forest (depth-first), or nil.
func (r *Report) Span(name string) *SpanSnapshot {
	if r == nil {
		return nil
	}
	for _, s := range r.Spans {
		if hit := s.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// SpanAgg aggregates all spans sharing one name: how many there were and
// their total duration.
type SpanAgg struct {
	Name    string
	Count   int
	TotalNS int64
}

// Total returns the aggregate duration.
func (a SpanAgg) Total() time.Duration { return time.Duration(a.TotalNS) }

// AggregateSpans flattens the span forest into per-name totals, in
// first-seen depth-first order — the "where did the time go" view the
// CLIs print.
func (r *Report) AggregateSpans() []SpanAgg {
	if r == nil {
		return nil
	}
	var order []string
	aggs := map[string]*SpanAgg{}
	var walk func(s *SpanSnapshot)
	walk = func(s *SpanSnapshot) {
		a := aggs[s.Name]
		if a == nil {
			a = &SpanAgg{Name: s.Name}
			aggs[s.Name] = a
			order = append(order, s.Name)
		}
		a.Count++
		a.TotalNS += s.DurationNS
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range r.Spans {
		walk(s)
	}
	out := make([]SpanAgg, 0, len(order))
	for _, name := range order {
		out = append(out, *aggs[name])
	}
	return out
}

// WriteJSON writes the report as indented JSON. Map keys are emitted in
// sorted order by encoding/json, so the output is stable for diffing and
// golden tests.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
