package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilLoggerIsSilentAndAllocationFree(t *testing.T) {
	var l *Logger
	if l.Slog() != nil {
		t.Error("nil logger exposes a slog.Logger")
	}
	if l.With("k", 1) != nil {
		t.Error("nil logger With returned non-nil")
	}
	// The typed emitters take concrete arguments, so the disabled path
	// must not box or allocate — the logging twin of the nil-tracer
	// contract.
	allocs := testing.AllocsPerRun(100, func() {
		l.RunStart("opimc", 1000, 5000, 50, 0.1, 42, 8)
		l.RoundDone("opimc", 3, 4096, 120.5, 200, 0.6)
		l.BoundCrossed("opimc", 3, 0.64, 0.53)
		l.PhaseDone("hist", "sentinel-phase", 123456)
		l.RunDone("opimc", 3, 8192, 130.2, 987654)
	})
	if allocs != 0 {
		t.Errorf("nil logger emitters allocate %.1f per run, want 0", allocs)
	}
}

func TestLoggerEventSchema(t *testing.T) {
	var buf bytes.Buffer
	l := NewLoggerWriter(&buf, "json", nil)
	l.RunStart("opimc", 1000, 5000, 50, 0.1, 42, 8)
	l.RoundDone("opimc", 3, 4096, 120.5, 200, 0.6)
	l.BoundCrossed("opimc", 3, 0.64, 0.53)
	l.PhaseDone("hist", "sentinel-phase", 123456)
	l.RunDone("opimc", 3, 8192, 130.2, 987654)

	wantMsgs := []string{"run.start", "round.done", "bound.crossed", "phase.done", "run.done"}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(wantMsgs) {
		t.Fatalf("got %d records, want %d:\n%s", len(lines), len(wantMsgs), buf.String())
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not JSON: %v\n%s", i, err, line)
		}
		if rec["msg"] != wantMsgs[i] {
			t.Errorf("record %d msg = %v, want %s", i, rec["msg"], wantMsgs[i])
		}
		if rec["alg"] == "" || rec["alg"] == nil {
			t.Errorf("record %d missing alg attribute: %s", i, line)
		}
	}
	// Spot-check columns of the round.done record.
	var round map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &round); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"round", "theta", "lower", "upper", "approx"} {
		if _, ok := round[key]; !ok {
			t.Errorf("round.done missing %q: %s", key, lines[1])
		}
	}
}

func TestNewLoggerDisabledForms(t *testing.T) {
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) should be the disabled logger")
	}
	if NewLoggerWriter(nil, "json", nil) != nil {
		t.Error("NewLoggerWriter(nil, ...) should be the disabled logger")
	}
}

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLoggerWriter(&buf, "text", nil)
	l.BoundCrossed("hist", 2, 0.7, 0.53)
	out := buf.String()
	if !strings.Contains(out, "msg=bound.crossed") || !strings.Contains(out, "alg=hist") {
		t.Errorf("text record missing fields: %s", out)
	}
}
