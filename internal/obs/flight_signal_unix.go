//go:build unix

package obs

import (
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
)

// InstallSignalHandlers wires the flight recorder to the two post-mortem
// signals on unix hosts:
//
//   - SIGUSR1 writes a diagnostic bundle and keeps running — the
//     operator's "what is this run doing?" probe against a live process.
//   - SIGQUIT writes a bundle, prints the full goroutine dump to stderr
//     (preserving the runtime's default SIGQUIT behaviour as closely as
//     an intercepted signal can), and exits with status 131 (128+SIGQUIT).
//
// The returned stop function detaches the handlers (nil-safe: a disabled
// recorder installs nothing and returns a no-op).
func (f *Flight) InstallSignalHandlers() (stop func()) {
	if f == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGQUIT, syscall.SIGUSR1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case sig := <-ch:
				reason := "sigusr1"
				if sig == syscall.SIGQUIT {
					reason = "sigquit"
				}
				// Success is reported through cfg.OnBundle (the CLIs all log
				// there); only a failed write warrants its own noise.
				if _, err := f.WriteBundle(reason); err != nil {
					fmt.Fprintf(os.Stderr, "flight: %s bundle failed: %v\n", reason, err)
				}
				if sig == syscall.SIGQUIT {
					_ = pprof.Lookup("goroutine").WriteTo(os.Stderr, 2)
					os.Exit(131)
				}
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
