package obs

import (
	"math"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, // bucket 0: v <= 0
		{1, 1},                   // [1,2)
		{2, 2}, {3, 2},           // [2,4)
		{4, 3}, {7, 3},           // [4,8)
		{8, 4},                   // [8,16)
		{1 << 37, 38},            // [2^37, 2^38)
		{1<<38 - 1, 38},          // last middle bucket
		{1 << 38, 39},            // overflow
		{math.MaxInt64, 39},      // clamped to overflow
		{1<<62 + 12345, 39},      // deep overflow still clamps
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketUpper(t *testing.T) {
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	if BucketUpper(1) != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", BucketUpper(1))
	}
	if BucketUpper(3) != 7 {
		t.Errorf("BucketUpper(3) = %d, want 7", BucketUpper(3))
	}
	if BucketUpper(NumBuckets-1) != -1 {
		t.Errorf("BucketUpper(last) = %d, want -1 (+Inf)", BucketUpper(NumBuckets-1))
	}
	// Boundary consistency: every value lands in a bucket whose upper
	// bound is >= the value (with -1 meaning +Inf).
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1 << 20, 1 << 39} {
		i := bucketIndex(v)
		ub := BucketUpper(i)
		if ub >= 0 && v > ub {
			t.Errorf("value %d in bucket %d exceeds upper bound %d", v, i, ub)
		}
		if i > 0 {
			if lb := BucketUpper(i - 1); v <= lb {
				t.Errorf("value %d in bucket %d not above previous bound %d", v, i, lb)
			}
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(0)           // bucket 0
	h.Observe(1)           // bucket 1
	h.Observe(3)           // bucket 2
	h.Observe(1 << 50)     // overflow bucket
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if want := int64(0 + 1 + 3 + 1<<50); h.Sum() != want {
		t.Errorf("Sum = %d, want %d", h.Sum(), want)
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(NumBuckets-1) != 1 {
		t.Errorf("bucket counts wrong: %d %d %d %d",
			h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(NumBuckets-1))
	}
	snap := h.Snapshot()
	if snap.Count != 4 || len(snap.Buckets) != 4 {
		t.Errorf("snapshot = %+v, want count 4 over 4 non-empty buckets", snap)
	}
	if last := snap.Buckets[len(snap.Buckets)-1]; last.Le != -1 || last.Count != 1 {
		t.Errorf("overflow snapshot bucket = %+v, want {-1 1}", last)
	}
}

func TestNilMetrics(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter Load != 0")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Bucket(1) != 0 {
		t.Error("nil histogram accessors not zero")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Error("nil histogram snapshot not empty")
	}
	var m *MetricSet
	if m.WorkerSets(3) != nil {
		t.Error("nil metric set WorkerSets != nil")
	}
	m.WorkerSets(3).Inc() // must not panic
	if m.WorkerSnapshot() != nil {
		t.Error("nil metric set WorkerSnapshot != nil")
	}
	if err := m.WritePrometheus(nil); err != nil {
		t.Errorf("nil metric set WritePrometheus: %v", err)
	}
}

// TestConcurrentInstruments hammers the shared instruments from many
// goroutines; run under -race this validates the atomic design.
func TestConcurrentInstruments(t *testing.T) {
	m := NewMetricSet()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctr := m.WorkerSets(w)
			for i := 0; i < per; i++ {
				m.Sets.Inc()
				m.Nodes.Add(3)
				m.RRSize.Observe(int64(i % 100))
				m.EdgesPerSet.Observe(int64(i))
				ctr.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := m.Sets.Load(); got != workers*per {
		t.Errorf("Sets = %d, want %d", got, workers*per)
	}
	if got := m.Nodes.Load(); got != workers*per*3 {
		t.Errorf("Nodes = %d, want %d", got, workers*per*3)
	}
	if got := m.RRSize.Count(); got != workers*per {
		t.Errorf("RRSize.Count = %d, want %d", got, workers*per)
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		cum += m.EdgesPerSet.Bucket(i)
	}
	if cum != workers*per {
		t.Errorf("bucket counts sum to %d, want %d", cum, workers*per)
	}
	ws := m.WorkerSnapshot()
	if len(ws) != workers {
		t.Fatalf("worker vector has %d entries, want %d", len(ws), workers)
	}
	for w, v := range ws {
		if v != per {
			t.Errorf("worker %d sets = %d, want %d", w, v, per)
		}
	}
}
