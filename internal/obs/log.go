package obs

import (
	"io"
	"log/slog"

	"subsim/internal/obs/flight"
)

// Logger is the nil-safe structured event logger of the observability
// layer, a thin veneer over log/slog. A nil *Logger is the disabled
// instance: every method returns immediately, and because the event
// methods take concrete-typed arguments (no variadic ...any), the
// disabled path boxes nothing and allocates nothing — the logging twin
// of the nil-tracer contract.
//
// Event schema (see DESIGN.md "Structured log events"): every record
// carries msg ∈ {run.start, round.done, bound.crossed, phase.done,
// run.done} plus the attribute columns alg, phase, round, theta, lower,
// upper, approx, target, sets, influence, elapsed_ns as applicable.
// Algorithms emit one round.done per doubling round and one
// bound.crossed when the certified ratio clears the stopping target —
// quiet by default (nil logger), one line per round when enabled.
// A Logger may additionally carry a flight-journal recorder (see
// WithFlight): every typed emitter then mirrors its event into the
// black-box journal, so the run's event stream survives in crash bundles
// even when slog output is disabled.
type Logger struct {
	sl  *slog.Logger
	rec *flight.Recorder
}

// NewLogger wraps an slog handler. A nil handler returns a nil (i.e.
// disabled) logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{sl: slog.New(h)}
}

// NewLoggerWriter builds a logger writing to w in the given format:
// "json" for slog's JSONHandler, anything else for the TextHandler.
// Returns nil (disabled) for a nil writer.
func NewLoggerWriter(w io.Writer, format string, level slog.Leveler) *Logger {
	if w == nil {
		return nil
	}
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		return NewLogger(slog.NewJSONHandler(w, opts))
	}
	return NewLogger(slog.NewTextHandler(w, opts))
}

// Slog exposes the underlying slog.Logger (nil for a disabled logger or
// a journal-only logger built by WithFlight on a nil base).
func (l *Logger) Slog() *slog.Logger {
	if l == nil {
		return nil
	}
	return l.sl
}

// WithFlight returns a logger that mirrors every typed event into the
// given journal recorder in addition to any slog output. On a nil base
// logger the result is journal-only (no slog), so enabling the flight
// recorder never forces log output on; a nil recorder returns l
// unchanged. The recorder must belong to the emitting goroutine's
// stream (the coordinator loop), per the flight single-writer contract.
func (l *Logger) WithFlight(rec *flight.Recorder) *Logger {
	if rec == nil {
		return l
	}
	if l == nil {
		return &Logger{rec: rec}
	}
	return &Logger{sl: l.sl, rec: rec}
}

// With returns a logger whose records carry the extra attributes, or nil
// when l is disabled.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	if l.sl == nil {
		return l
	}
	return &Logger{sl: l.sl.With(args...), rec: l.rec}
}

// Event emits a generic info-level record. Not for hot paths: the
// variadic args box even when unused — use the typed emitters below
// anywhere performance matters.
func (l *Logger) Event(msg string, args ...any) {
	if l == nil || l.sl == nil {
		return
	}
	l.sl.Info(msg, args...)
}

// RunStart records the parameters of one algorithm run.
func (l *Logger) RunStart(alg string, n int, m int64, k int, eps float64, seed uint64, workers int) {
	if l == nil {
		return
	}
	l.rec.Emit(flight.KindRunStart, alg, int64(n), m, float64(k), eps, float64(workers))
	if l.sl == nil {
		return
	}
	l.sl.Info("run.start",
		slog.String("alg", alg),
		slog.Int("graph_n", n),
		slog.Int64("graph_m", m),
		slog.Int("k", k),
		slog.Float64("eps", eps),
		slog.Uint64("seed", seed),
		slog.Int("workers", workers))
}

// RoundDone records a completed doubling round: the collection size and
// the certified bounds as of this round (zero when the algorithm does
// not certify them).
func (l *Logger) RoundDone(alg string, round int, theta int64, lower, upper, approx float64) {
	if l == nil {
		return
	}
	l.rec.Emit(flight.KindRoundDone, alg, int64(round), theta, lower, upper, approx)
	if l.sl == nil {
		return
	}
	l.sl.Info("round.done",
		slog.String("alg", alg),
		slog.Int("round", round),
		slog.Int64("theta", theta),
		slog.Float64("lower", lower),
		slog.Float64("upper", upper),
		slog.Float64("approx", approx))
}

// BoundCrossed records the stopping event: the certified approximation
// ratio cleared the target at the given round.
func (l *Logger) BoundCrossed(alg string, round int, approx, target float64) {
	if l == nil {
		return
	}
	l.rec.Emit(flight.KindBoundCrossed, alg, int64(round), 0, approx, target, 0)
	if l.sl == nil {
		return
	}
	l.sl.Info("bound.crossed",
		slog.String("alg", alg),
		slog.Int("round", round),
		slog.Float64("approx", approx),
		slog.Float64("target", target))
}

// PhaseDone records the completion of a named phase (HIST's
// sentinel/residual phases, IMM's estimation/selection phases).
func (l *Logger) PhaseDone(alg, phase string, durNS int64) {
	if l == nil {
		return
	}
	l.rec.Emit(flight.KindPhaseDone, phase, durNS, 0, 0, 0, 0)
	if l.sl == nil {
		return
	}
	l.sl.Info("phase.done",
		slog.String("alg", alg),
		slog.String("phase", phase),
		slog.Int64("elapsed_ns", durNS))
}

// RunDone records the completion of one run.
func (l *Logger) RunDone(alg string, rounds int, sets int64, influence float64, elapsedNS int64) {
	if l == nil {
		return
	}
	l.rec.Emit(flight.KindRunDone, alg, int64(rounds), sets, influence, float64(elapsedNS), 0)
	if l.sl == nil {
		return
	}
	l.sl.Info("run.done",
		slog.String("alg", alg),
		slog.Int("rounds", rounds),
		slog.Int64("sets", sets),
		slog.Float64("influence", influence),
		slog.Int64("elapsed_ns", elapsedNS))
}
