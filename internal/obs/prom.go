package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus dumps the metric set in the Prometheus text exposition
// format (counters and cumulative histograms, `subsim_` prefixed). It is
// what the CLIs print under -metrics and what an expvar/pprof endpoint
// can serve for scraping.
func (m *MetricSet) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	counters := []struct {
		name, help string
		v          int64
	}{
		{"subsim_rr_sets_total", "RR sets generated.", m.Sets.Load()},
		{"subsim_rr_nodes_total", "Total nodes across all RR sets.", m.Nodes.Load()},
		{"subsim_rr_edges_examined_total", "Edge examinations (Lemma 4 cost).", m.Edges.Load()},
		{"subsim_sentinel_hits_total", "RR sets truncated by a sentinel.", m.SentinelHits.Load()},
		{"subsim_index_entries_total", "Postings placed by CSR inverted-index builds.", m.IndexEntries.Load()},
		{"subsim_theta_saved_total", "RR sample budget shaved off by the tightened bound.", m.ThetaSaved.Load()},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		v          float64
	}{
		{"subsim_bound_lower", "Live certified influence lower bound (Eq. 1).", m.Lower.Load()},
		{"subsim_bound_upper", "Live certified optimum upper bound (Eq. 2).", m.Upper.Load()},
		{"subsim_bound_approx", "Live certified approximation ratio (lower/upper).", m.Approx.Load()},
		{"subsim_round", "Doubling round of the latest bound-check.", float64(m.Round.Load())},
		{"subsim_sketch_bytes", "Resident bytes of the HLL sketch register file (0 = exact backend).", float64(m.SketchBytes.Load())},
		{"subsim_theta_worst", "Worst-case RR sample budget (IMM/OPIM-C analysis).", float64(m.ThetaWorst.Load())},
		{"subsim_theta_tight", "Tightened RR sample budget (Sadeh-Cohen-Kaplan analysis).", float64(m.ThetaTight.Load())},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			g.name, g.help, g.name, g.name, formatPromFloat(g.v)); err != nil {
			return err
		}
	}
	hists := []struct {
		name, help string
		h          *Histogram
	}{
		{"subsim_rr_size", "RR set size (nodes).", &m.RRSize},
		{"subsim_rr_edges_per_set", "Edge examinations per RR set.", &m.EdgesPerSet},
		{"subsim_geom_skip_len", "Geometric skip lengths (SUBSIM).", &m.SkipLen},
		{"subsim_index_build_ns", "CSR inverted-index build duration (ns).", &m.IndexBuild},
		{"subsim_index_build_serial_ns", "CSR index builds taking the serial delta path (ns).", &m.IndexBuildSerial},
		{"subsim_index_build_parallel_ns", "CSR index builds taking the node-range-parallel path (ns).", &m.IndexBuildParallel},
		{"subsim_splice_ns", "Arena-to-store splice duration per FillIndex (ns).", &m.Splice},
	}
	for _, h := range hists {
		if err := writePromHistogram(w, h.name, h.help, h.h); err != nil {
			return err
		}
	}
	if workers := m.WorkerSnapshot(); len(workers) > 0 {
		name := "subsim_worker_sets_total"
		if _, err := fmt.Fprintf(w, "# HELP %s RR sets generated per worker.\n# TYPE %s counter\n", name, name); err != nil {
			return err
		}
		for wkr, v := range workers {
			if _, err := fmt.Fprintf(w, "%s{worker=\"%d\"} %d\n", name, wkr, v); err != nil {
				return err
			}
		}
	}
	if busy := m.WorkerBusySnapshot(); len(busy) > 0 {
		name := "subsim_worker_busy_ns_total"
		if _, err := fmt.Fprintf(w, "# HELP %s Nanoseconds each worker spent generating RR sets.\n# TYPE %s counter\n", name, name); err != nil {
			return err
		}
		for wkr, v := range busy {
			if _, err := fmt.Fprintf(w, "%s{worker=\"%d\"} %d\n", name, wkr, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatPromFloat renders a float in the exposition format: integral
// values print without an exponent so the common zero/round cases stay
// human-readable and stable for golden tests.
func formatPromFloat(v float64) string {
	if v >= -1e15 && v <= 1e15 && v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writePromHistogram(w io.Writer, name, help string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		n := h.Bucket(i)
		if n == 0 && i < NumBuckets-1 {
			continue // keep the dump sparse; cumulative counts stay exact
		}
		cum += n
		le := "+Inf"
		if ub := BucketUpper(i); ub >= 0 {
			le = fmt.Sprintf("%d", ub)
		}
		if i == NumBuckets-1 {
			cum = h.Count() // the +Inf bucket always equals the count
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}

// WritePrometheus renders the report's counter and histogram snapshots
// in the same exposition format, for offline artifacts.
func (r *Report) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.Counters))
	for name := range r.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE subsim_%s counter\nsubsim_%s %d\n",
			name, name, r.Counters[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(r.Histograms))
	for name := range r.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := r.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE subsim_%s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		sawInf := false
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.Le >= 0 {
				le = fmt.Sprintf("%d", b.Le)
			} else {
				sawInf = true
				cum = h.Count // the +Inf bucket always equals the count
			}
			if _, err := fmt.Fprintf(w, "subsim_%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if !sawInf {
			// The exposition format requires a terminal +Inf bucket even
			// when no observation overflowed.
			if _, err := fmt.Fprintf(w, "subsim_%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "subsim_%s_sum %d\nsubsim_%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
