package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"subsim/internal/obs/flight"
)

func TestFlightNilContract(t *testing.T) {
	var tr *Tracer
	if tr.EnableFlight(FlightConfig{}) != nil {
		t.Error("EnableFlight on a nil tracer must return nil")
	}
	if tr.Flight() != nil || tr.FlightJournal() != nil {
		t.Error("nil tracer must expose no flight recorder")
	}
	if tr.hasOpenSpans() {
		t.Error("nil tracer has no open spans")
	}

	var f *Flight
	f.Close()
	f.Close()
	if f.Journal() != nil || f.History() != nil || f.Watchdog() != nil {
		t.Error("nil Flight accessors must return nil instruments")
	}
	if _, err := f.WriteBundle("x"); !errors.Is(err, ErrFlightDisabled) {
		t.Errorf("nil WriteBundle error = %v, want ErrFlightDisabled", err)
	}

	// CapturePanic on the nil (disabled) recorder must not swallow the
	// panic: there is no recover on the nil path at all.
	propagated := func() (r any) {
		defer func() { r = recover() }()
		func() {
			defer f.CapturePanic()
			panic("must propagate")
		}()
		return nil
	}()
	if propagated != "must propagate" {
		t.Errorf("panic through nil CapturePanic = %v", propagated)
	}
}

func TestEnableFlightIdempotent(t *testing.T) {
	tr := NewTracer()
	f1 := tr.EnableFlight(FlightConfig{SampleEvery: -1})
	f2 := tr.EnableFlight(FlightConfig{SampleEvery: -1})
	defer f1.Close()
	if f1 == nil || f1 != f2 {
		t.Fatalf("EnableFlight not idempotent: %p vs %p", f1, f2)
	}
	if tr.Flight() != f1 || tr.FlightJournal() != f1.Journal() {
		t.Error("tracer accessors must return the attached recorder")
	}
}

// TestFlightJournalCapturesRunEvents drives every journal hook — span
// transitions, bound/θ publishers, and the typed logger events — under a
// fake clock and checks the journal saw them all in order.
func TestFlightJournalCapturesRunEvents(t *testing.T) {
	tr := NewTracer()
	var tick atomic.Int64
	tr.SetClock(func() int64 { return tick.Add(10) })
	fl := tr.EnableFlight(FlightConfig{SampleEvery: -1})
	defer fl.Close()

	span := tr.Span("sampling")
	if !tr.hasOpenSpans() {
		t.Error("open root span must make hasOpenSpans true")
	}
	span.End()
	if tr.hasOpenSpans() {
		t.Error("hasOpenSpans must drop after End")
	}
	tr.Metrics().SetBounds(2, 10.5, 20.5, 0.75)
	tr.Metrics().SetTheta(1<<20, 1<<16)

	log := (*Logger)(nil).WithFlight(fl.Journal().Stream(flight.StreamRun))
	log.RunStart("opimc", 100, 200, 10, 0.1, 7, 4)
	log.RoundDone("opimc", 1, 4096, 1.5, 2.5, 0.6)
	log.BoundCrossed("opimc", 3, 0.91, 0.9)
	log.PhaseDone("opimc", "selection", 1234)
	log.RunDone("opimc", 3, 9999, 42.5, 5678)

	snap := fl.Journal().Snapshot()
	wantKinds := []flight.Kind{
		flight.KindSpanOpen, flight.KindSpanClose,
		flight.KindBounds, flight.KindTheta,
		flight.KindRunStart, flight.KindRoundDone,
		flight.KindBoundCrossed, flight.KindPhaseDone, flight.KindRunDone,
	}
	if len(snap.Events) != len(wantKinds) {
		t.Fatalf("journal saw %d events, want %d: %+v", len(snap.Events), len(wantKinds), snap.Events)
	}
	for i, want := range wantKinds {
		if snap.Events[i].Kind != want {
			t.Errorf("event %d kind = %v, want %v", i, snap.Events[i].Kind, want)
		}
	}
	if e := snap.Events[0]; e.Label != "sampling" {
		t.Errorf("span.open label = %q", e.Label)
	}
	if e := snap.Events[2]; e.A != 2 || e.F1 != 10.5 || e.F2 != 20.5 || e.F3 != 0.75 {
		t.Errorf("bounds.update payload = %+v", e)
	}
	if e := snap.Events[3]; e.A != 1<<20 || e.B != 1<<16 {
		t.Errorf("theta.update payload = %+v", e)
	}
	if e := snap.Events[8]; e.Label != "opimc" || e.A != 3 || e.B != 9999 || e.F1 != 42.5 {
		t.Errorf("run.done payload = %+v", e)
	}
}

func TestWriteBundleArtifacts(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer()
	var gotPath, gotReason string
	fl := tr.EnableFlight(FlightConfig{
		Dir: dir, Tool: "gluetest", SampleEvery: -1,
		OnBundle: func(path, reason string, err error) {
			gotPath, gotReason = path, reason
			if err != nil {
				t.Errorf("OnBundle error: %v", err)
			}
		},
	})
	defer fl.Close()
	tr.Span("phase-a").End()

	path, err := fl.WriteBundle("manual")
	if err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	if gotPath != path || gotReason != "manual" {
		t.Errorf("OnBundle saw (%q, %q), want (%q, manual)", gotPath, gotReason, path)
	}
	man, err := flight.ReadManifest(path)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if man.Tool != "gluetest" || man.Reason != "manual" {
		t.Errorf("manifest header = %+v", man)
	}
	want := []string{
		"report.json", "spans.json", "trace.json", "metrics.prom",
		"journal.json", "history.json", "goroutines.txt", "heap.pprof",
	}
	for _, name := range want {
		f, ok := man.File(name)
		if !ok {
			t.Errorf("bundle missing artifact %s", name)
			continue
		}
		if f.Error != "" {
			t.Errorf("artifact %s failed: %s", name, f.Error)
		}
		if f.Bytes == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	// The trigger itself is journaled on the control stream, so the
	// bundle's own journal snapshot records why it exists.
	raw, err := os.ReadFile(filepath.Join(path, "journal.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"bundle.write"`) || !strings.Contains(string(raw), `"manual"`) {
		t.Error("bundle journal must record the bundle.write trigger event")
	}
}

func TestCapturePanicWritesBundleAndRepanics(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer()
	fl := tr.EnableFlight(FlightConfig{Dir: dir, SampleEvery: -1})
	defer fl.Close()

	recovered := func() (r any) {
		defer func() { r = recover() }()
		func() {
			defer fl.CapturePanic()
			panic("forced glue panic")
		}()
		return nil
	}()
	if recovered != "forced glue panic" {
		t.Fatalf("CapturePanic must re-panic with the original value, got %v", recovered)
	}
	bundles, err := flight.ListBundles(dir)
	if err != nil || len(bundles) != 1 {
		t.Fatalf("ListBundles = %v, %v; want exactly one panic bundle", bundles, err)
	}
	if !strings.Contains(bundles[0], "-panic.bundle") {
		t.Errorf("bundle dir %s not reason-tagged panic", bundles[0])
	}
	body, err := os.ReadFile(filepath.Join(bundles[0], "panic.txt"))
	if err != nil {
		t.Fatalf("panic.txt: %v", err)
	}
	if !strings.Contains(string(body), "forced glue panic") || !strings.Contains(string(body), "goroutine") {
		t.Errorf("panic.txt missing value or stack:\n%s", body)
	}
}

func TestWatchdogStallWritesBundle(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer()
	stalled := make(chan string, 1)
	fl := tr.EnableFlight(FlightConfig{
		Dir: dir, Tool: "gluetest", SampleEvery: -1,
		StallWindow: 60 * time.Millisecond,
		OnBundle: func(path, reason string, err error) {
			if err == nil && reason == "stall" {
				select {
				case stalled <- path:
				default:
				}
			}
		},
	})
	defer fl.Close()
	if fl.Watchdog() == nil {
		t.Fatal("StallWindow must arm the watchdog")
	}

	// An open span with no journal/set progress is exactly the wedge the
	// watchdog exists for.
	span := tr.Span("wedged-phase")
	var path string
	select {
	case path = <-stalled:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog never produced a stall bundle")
	}
	span.End()
	if fl.Watchdog().Stalls() < 1 {
		t.Error("watchdog stall count not incremented")
	}
	man, err := flight.ReadManifest(path)
	if err != nil {
		t.Fatalf("stall bundle manifest: %v", err)
	}
	if man.Reason != "stall" {
		t.Errorf("manifest reason = %q", man.Reason)
	}
	raw, err := os.ReadFile(filepath.Join(path, "journal.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"watchdog.stall"`) {
		t.Error("stall bundle journal must carry the watchdog.stall event")
	}
}

func TestFlattenSpans(t *testing.T) {
	roots := []*SpanSnapshot{
		{Name: "run", StartNS: 0, DurationNS: 100, Children: []*SpanSnapshot{
			{Name: "sampling", StartNS: 10, DurationNS: 40},
			{Name: "selection", StartNS: 50, DurationNS: 30},
		}},
		{Name: "tail", StartNS: 200, DurationNS: 5},
	}
	flat := FlattenSpans(roots)
	if len(flat) != 4 {
		t.Fatalf("flattened %d spans, want 4", len(flat))
	}
	if flat[0].Name != "run" || flat[0].EndNS != 100 {
		t.Errorf("root span = %+v", flat[0])
	}
	if flat[1].Name != "sampling" || flat[1].StartNS != 10 || flat[1].EndNS != 50 {
		t.Errorf("child span = %+v", flat[1])
	}
	if flat[3].Name != "tail" || flat[3].StartNS != 200 || flat[3].EndNS != 205 {
		t.Errorf("second root = %+v", flat[3])
	}
	if FlattenSpans(nil) != nil {
		t.Error("empty forest must flatten to nil")
	}
}
