package obs

import (
	"context"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"sync"
)

// PhaseSection tags a recurring hot section for the Go profiling stack:
// entering a section sets pprof labels (phase=..., workers=...) on the
// calling goroutine — labels are inherited by goroutines spawned while
// set, so worker samples attribute to the phase in /debug/pprof
// profiles — and opens a runtime/trace region visible in `go tool
// trace`.
//
// pprof.Do would do the same but allocates a closure and a context per
// call; a PhaseSection caches the labeled context once at construction,
// so Enter/Exit on the steady state is allocation-free (StartRegion
// returns a shared no-op region while runtime tracing is off, and
// SetGoroutineLabels does not allocate). Functionally the pair is
// equivalent to pprof.Do(ctx, labels, f) with f spanning Enter..Exit.
//
// A nil *PhaseSection is the disabled instrument: Enter returns a
// handle whose Exit is also a no-op, per the nil-tracer contract.
type PhaseSection struct {
	name string
	ctx  context.Context
}

// sectionCache dedups PhaseSections by (phase, workers) so callers can
// look one up per configuration instead of holding fields everywhere.
var sectionCache sync.Map // string -> *PhaseSection

// Section returns the canonical PhaseSection for phase with the given
// worker count, building (and caching process-wide) on first use. The
// key string allocates, so call this at setup time and keep the result
// — not inside hot loops.
func Section(phase string, workers int) *PhaseSection {
	key := phase + "/" + strconv.Itoa(workers)
	if v, ok := sectionCache.Load(key); ok {
		return v.(*PhaseSection)
	}
	s := &PhaseSection{
		name: phase,
		ctx: pprof.WithLabels(context.Background(), pprof.Labels(
			"phase", phase,
			"workers", strconv.Itoa(workers),
		)),
	}
	v, _ := sectionCache.LoadOrStore(key, s)
	return v.(*PhaseSection)
}

// SectionHandle is the in-flight state of one Enter, closed by Exit.
// A zero handle (from a nil section) exits as a no-op.
type SectionHandle struct {
	s *PhaseSection
	r *rtrace.Region
}

// Enter applies the section's pprof labels to the calling goroutine and
// opens a runtime/trace region. Must be paired with Exit on the same
// goroutine. Nil-safe and allocation-free on the steady state.
func (s *PhaseSection) Enter() SectionHandle {
	if s == nil {
		return SectionHandle{}
	}
	pprof.SetGoroutineLabels(s.ctx)
	return SectionHandle{s: s, r: rtrace.StartRegion(s.ctx, s.name)}
}

// Exit ends the region and restores the goroutine's background labels.
func (h SectionHandle) Exit() {
	if h.s == nil {
		return
	}
	h.r.End()
	pprof.SetGoroutineLabels(context.Background())
}
