package obs

import "testing"

// fakeClock returns a clock that advances by step on every reading,
// starting at start.
func fakeClock(start, step int64) func() int64 {
	t := start - step
	return func() int64 {
		t += step
		return t
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(0, 10))

	run := tr.Span("run") // t=0
	s1 := run.Child("sampling")
	s1.End()
	sel := run.Child("selection")
	inner := sel.Child("bound-check")
	inner.End()
	sel.End()
	run.End()
	other := tr.Span("other")
	other.End()

	rep := tr.Report()
	if len(rep.Spans) != 2 {
		t.Fatalf("got %d root spans, want 2", len(rep.Spans))
	}
	if rep.Spans[0].Name != "run" || rep.Spans[1].Name != "other" {
		t.Fatalf("root order = %q, %q; want run, other", rep.Spans[0].Name, rep.Spans[1].Name)
	}
	root := rep.Spans[0]
	if len(root.Children) != 2 {
		t.Fatalf("run has %d children, want 2", len(root.Children))
	}
	if root.Children[0].Name != "sampling" || root.Children[1].Name != "selection" {
		t.Fatalf("child order = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	if bc := root.Find("bound-check"); bc == nil {
		t.Fatal("bound-check span not found under run")
	}
	// With a step-10 clock every span start strictly precedes its
	// children's starts and every duration is positive.
	var walk func(s *SpanSnapshot)
	walk = func(s *SpanSnapshot) {
		if s.DurationNS <= 0 {
			t.Errorf("span %s: duration %d, want > 0", s.Name, s.DurationNS)
		}
		for _, c := range s.Children {
			if c.StartNS <= s.StartNS {
				t.Errorf("child %s starts at %d, not after parent %s at %d",
					c.Name, c.StartNS, s.Name, s.StartNS)
			}
			walk(c)
		}
	}
	for _, s := range rep.Spans {
		walk(s)
	}
}

func TestSpanAttrs(t *testing.T) {
	tr := NewTracer()
	s := tr.Span("x").SetInt("theta", 1024).SetFloat("approx", 0.66).SetAttr("note", "hi")
	s.End()
	snap := tr.Report().Span("x")
	if snap == nil {
		t.Fatal("span x missing from report")
	}
	if got := snap.Attrs["theta"]; got != int64(1024) {
		t.Errorf("theta = %v (%T), want int64 1024", got, got)
	}
	if got := snap.Attrs["approx"]; got != 0.66 {
		t.Errorf("approx = %v, want 0.66", got)
	}
	if got := snap.Attrs["note"]; got != "hi" {
		t.Errorf("note = %v, want hi", got)
	}
}

func TestReportClosesOpenSpans(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(0, 5))
	s := tr.Span("open")
	_ = s.Child("inner") // never ended
	rep := tr.Report()
	snap := rep.Span("open")
	if snap.DurationNS <= 0 {
		t.Errorf("open span duration %d, want > 0 (closed at report time)", snap.DurationNS)
	}
	if in := rep.Span("inner"); in == nil || in.DurationNS < 0 {
		t.Errorf("inner span not closed cleanly: %+v", in)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(0, 7))
	s := tr.Span("s")
	s.End()
	first := tr.Report().Span("s").DurationNS
	s.End() // second End must not move the end time
	if again := tr.Report().Span("s").DurationNS; again != first {
		t.Errorf("duration changed after second End: %d -> %d", first, again)
	}
}

// TestNilTracerIsSafe exercises every nil-receiver path of the tracer
// API: the whole instrumented call pattern must be a no-op.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.SetMeta("k", 1)
	tr.SetClock(func() int64 { return 0 })
	if tr.Metrics() != nil {
		t.Error("nil tracer Metrics() != nil")
	}
	if tr.Report() != nil {
		t.Error("nil tracer Report() != nil")
	}
	s := tr.Span("root")
	if s != nil {
		t.Fatal("nil tracer Span() != nil")
	}
	c := s.Child("child").SetInt("a", 1).SetFloat("b", 2).SetAttr("c", 3)
	c.End()
	s.End()

	var rep *Report
	if rep.Span("x") != nil || rep.AggregateSpans() != nil {
		t.Error("nil report lookups not nil")
	}
	var snap *SpanSnapshot
	if snap.Find("x") != nil || snap.Duration() != 0 {
		t.Error("nil snapshot methods not zero")
	}
}

func TestNilSpanAllocFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Span("sampling")
		c := s.Child("selection").SetInt("theta", 7)
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span pattern allocates %v per run, want 0", allocs)
	}
}

func TestRoundNames(t *testing.T) {
	if Round(1) != "round-1" || Round(63) != "round-63" || Round(64) != "round-64" {
		t.Errorf("Round names wrong: %q %q %q", Round(1), Round(63), Round(64))
	}
	allocs := testing.AllocsPerRun(100, func() { _ = Round(5) })
	if allocs != 0 {
		t.Errorf("Round(5) allocates %v per run, want 0", allocs)
	}
}
