//go:build !unix

package obs

// InstallSignalHandlers is a no-op on platforms without SIGQUIT/SIGUSR1
// (the unix build has the real implementation). Bundles remain reachable
// through the watchdog, panic capture, and GET /debug/bundle.
func (f *Flight) InstallSignalHandlers() (stop func()) {
	return func() {}
}
