package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"subsim/internal/obs/flight"
	"subsim/internal/obs/timeline"
)

// FlightConfig configures Tracer.EnableFlight. The zero value is a
// usable default: bundles land in the current directory, the sampler
// runs at 250 ms, and the watchdog stays off until a window is set.
type FlightConfig struct {
	// Dir is where diagnostic bundles are written ("" = current
	// directory). Bundle directories are named *.bundle (gitignored).
	Dir string
	// Tool names the producing binary in bundle manifests.
	Tool string
	// JournalCapacity is the per-stream event-ring capacity
	// (non-positive = flight.DefaultCapacity).
	JournalCapacity int
	// HistoryCapacity is the runtime-metrics ring capacity
	// (non-positive = flight.DefaultHistoryCapacity).
	HistoryCapacity int
	// SampleEvery is the runtime-metrics sampling cadence (0 = 250 ms;
	// negative disables the sampler goroutine).
	SampleEvery time.Duration
	// StallWindow arms the watchdog: a bundle is written when no
	// progress (journal events or RR sets) lands within the window while
	// a span is open. Non-positive leaves the watchdog off.
	StallWindow time.Duration
	// OnBundle, when non-nil, is called after every bundle write attempt
	// with the bundle path (empty on failure) and the trigger reason.
	OnBundle func(path, reason string, err error)
}

// Flight is a tracer's attached flight recorder: the black-box journal,
// the runtime-metrics history, the stall watchdog, and the diagnostic
// bundle writer, assembled over the leaf internal/obs/flight package the
// same way the tracer embeds the execution timeline. Obtain one with
// Tracer.EnableFlight; a nil *Flight is the disabled instrument — every
// method is a nil-safe no-op and WriteBundle reports ErrFlightDisabled.
type Flight struct {
	tracer   *Tracer
	cfg      FlightConfig
	journal  *flight.Journal
	history  *flight.History
	sampler  *flight.Sampler
	watchdog *flight.Watchdog

	// writeMu serialises bundle writes; it also makes this mutex's
	// holder the single writer of the journal's control stream.
	writeMu sync.Mutex
	closed  bool
}

// ErrFlightDisabled is returned by WriteBundle on a nil Flight.
var ErrFlightDisabled = errors.New("obs: flight recorder not enabled")

// EnableFlight attaches a flight recorder to the tracer: journal hooks
// on span open/close and the bound/θ publishers, a runtime-metrics
// sampler goroutine, and (when cfg.StallWindow > 0) a stall watchdog
// that writes a diagnostic bundle when an active phase stops making
// progress. The journal and history share the tracer's *current* clock
// (captured by value, like EnableTimeline), so fake clocks installed via
// SetClock flow through to journal events. Idempotent: a second call
// returns the existing recorder. Returns nil on a nil tracer, keeping
// the nil-tracer contract.
func (t *Tracer) EnableFlight(cfg FlightConfig) *Flight {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.flight != nil {
		f := t.flight
		t.mu.Unlock()
		return f
	}
	clock := t.clock
	f := &Flight{
		tracer:  t,
		cfg:     cfg,
		journal: flight.New(cfg.JournalCapacity, clock),
		history: flight.NewHistory(cfg.HistoryCapacity, clock),
	}
	t.flight = f
	t.mu.Unlock()

	rec := f.journal.Stream(flight.StreamRun)
	t.flightRec.Store(rec)
	t.metrics.flightRec.Store(rec)

	if cfg.SampleEvery >= 0 {
		f.sampler = f.history.StartSampler(cfg.SampleEvery)
	}
	if cfg.StallWindow > 0 {
		m := t.metrics
		j := f.journal
		stallRec := j.Stream(flight.StreamWatchdog)
		f.watchdog = flight.NewWatchdog(flight.WatchdogConfig{
			Window:   cfg.StallWindow,
			Clock:    clock,
			Progress: func() uint64 { return j.Written() + uint64(m.Sets.Load()) },
			Active:   t.hasOpenSpans,
			OnStall: func(idleNS int64) {
				stallRec.Emit(flight.KindStall, "", idleNS, 0, 0, 0, 0)
				// The bundle outcome is reported through cfg.OnBundle; a
				// failing write must not take the watchdog down.
				_, _ = f.writeBundle("stall", nil)
			},
		})
		f.watchdog.Start()
	}
	return f
}

// Flight returns the attached flight recorder, or nil when EnableFlight
// was never called (or the tracer is nil).
func (t *Tracer) Flight() *Flight {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flight
}

// FlightJournal returns the attached black-box journal (nil when no
// flight recorder is enabled), for journal-tail consumers such as the
// serve plane's /events endpoint.
func (t *Tracer) FlightJournal() *flight.Journal {
	return t.Flight().Journal()
}

// hasOpenSpans reports whether any root span is still open — the
// watchdog's "active phase" signal. Lock-free over the live span forest.
func (t *Tracer) hasOpenSpans() bool {
	if t == nil {
		return false
	}
	for _, s := range t.liveRoots() {
		if s.endNS.Load() == 0 {
			return true
		}
	}
	return false
}

// Journal returns the recorder's event journal (nil on a nil Flight).
func (f *Flight) Journal() *flight.Journal {
	if f == nil {
		return nil
	}
	return f.journal
}

// History returns the runtime-metrics history (nil on a nil Flight).
func (f *Flight) History() *flight.History {
	if f == nil {
		return nil
	}
	return f.history
}

// Watchdog returns the stall watchdog (nil on a nil Flight or when no
// stall window was configured).
func (f *Flight) Watchdog() *flight.Watchdog {
	if f == nil {
		return nil
	}
	return f.watchdog
}

// Close stops the recorder's background goroutines (sampler, watchdog).
// The journal keeps accepting events — the black box stays on until the
// process exits. Nil-safe and idempotent.
func (f *Flight) Close() {
	if f == nil {
		return
	}
	f.writeMu.Lock()
	closed := f.closed
	f.closed = true
	f.writeMu.Unlock()
	if closed {
		return
	}
	f.sampler.Stop()
	f.watchdog.Stop()
}

// flightSpansSchema versions the live-span-forest artifact inside
// bundles (the run report has its own schema; this file preserves the
// *live* view with Open flags, which a crash bundle wants verbatim).
const (
	flightSpansSchema  = "subsim.flight-spans"
	flightSpansVersion = 1
)

// WriteBundle snapshots everything the recorder knows into one versioned
// bundle directory under the configured Dir and returns its path: run
// report, live span forest, Chrome trace, Prometheus dump, event
// journal, metrics history, and goroutine + heap profiles, plus any
// extra producers (e.g. a panic report). Concurrent calls serialise;
// failures of individual artifacts are recorded in the manifest rather
// than aborting. Safe to call at any time, including mid-run and from
// signal or HTTP handlers.
func (f *Flight) WriteBundle(reason string, extra ...flight.Producer) (string, error) {
	if f == nil {
		return "", ErrFlightDisabled
	}
	return f.writeBundle(reason, extra)
}

func (f *Flight) writeBundle(reason string, extra []flight.Producer) (string, error) {
	f.writeMu.Lock()
	defer f.writeMu.Unlock()

	// Journal the trigger first so the bundle's own journal snapshot
	// records it. writeMu makes this goroutine the control stream's
	// single writer.
	f.journal.Stream(flight.StreamControl).Emit(flight.KindBundle, reason, 0, 0, 0, 0, 0)

	t := f.tracer
	producers := []flight.Producer{
		{Name: "report.json", Write: func(w io.Writer) error {
			return t.Report().WriteJSON(w)
		}},
		{Name: "spans.json", Write: func(w io.Writer) error {
			doc := struct {
				Schema  string          `json:"schema"`
				Version int             `json:"version"`
				Spans   []*SpanSnapshot `json:"spans"`
			}{flightSpansSchema, flightSpansVersion, t.LiveSpans()}
			if doc.Spans == nil {
				doc.Spans = []*SpanSnapshot{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		}},
		{Name: "trace.json", Write: func(w io.Writer) error {
			return timeline.WriteTrace(w, t.Timeline().Snapshot(), FlattenSpans(t.LiveSpans()))
		}},
		{Name: "metrics.prom", Write: func(w io.Writer) error {
			return t.Metrics().WritePrometheus(w)
		}},
		{Name: "journal.json", Write: f.journal.WriteJSON},
		{Name: "history.json", Write: f.history.WriteJSON},
	}
	producers = append(producers, flight.ProfileProducers()...)
	producers = append(producers, extra...)

	path, err := flight.WriteBundle(f.cfg.Dir, f.cfg.Tool, reason, time.Now(), producers)
	if f.cfg.OnBundle != nil {
		f.cfg.OnBundle(path, reason, err)
	}
	return path, err
}

// CapturePanic writes a panic diagnostic bundle, then re-panics so the
// process still crashes with the original value. Use it as the first
// deferred call in main:
//
//	defer fl.CapturePanic()
//
// The bundle gains a panic.txt with the panic value and the stack at
// recovery. Nil-safe: a disabled recorder changes nothing about panic
// propagation (there is no recover on the nil path at all).
func (f *Flight) CapturePanic() {
	if f == nil {
		return
	}
	r := recover()
	if r == nil {
		return
	}
	stack := debug.Stack()
	_, _ = f.WriteBundle("panic", flight.Producer{
		Name: "panic.txt",
		Write: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "panic: %v\n\n", r); err != nil {
				return err
			}
			_, err := w.Write(stack)
			return err
		},
	})
	panic(r)
}

// FlattenSpans walks a span forest depth-first into the flat phase-track
// shape the Chrome trace exporter takes. Nested spans become overlapping
// slices on the single phase track, which trace viewers render stacked.
// Shared by the serve plane's /trace endpoint and the bundle writer.
func FlattenSpans(roots []*SpanSnapshot) []timeline.Span {
	var out []timeline.Span
	var walk func(s *SpanSnapshot)
	walk = func(s *SpanSnapshot) {
		out = append(out, timeline.Span{
			Name:    s.Name,
			StartNS: s.StartNS,
			EndNS:   s.StartNS + s.DurationNS,
		})
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range roots {
		walk(s)
	}
	return out
}
