package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// deterministicTracer builds the same trace every time: a fixed fake
// clock, fixed metadata, and a fixed metric load.
func deterministicTracer() *Tracer {
	tr := NewTracer()
	tr.SetClock(fakeClock(0, 100))
	tr.SetMeta("algorithm", "hist")
	tr.SetMeta("k", int64(50))
	tr.SetMeta("eps", 0.1)

	run := tr.Span("hist")
	p1 := run.Child("sentinel-phase")
	r1 := p1.Child(Round(1))
	r1.Child("sampling").End()
	r1.Child("selection").End()
	r1.Child("bound-check").SetFloat("approx", 0.5).End()
	r1.SetInt("theta", 64).End()
	p1.SetInt("sentinels", 3).End()
	p2 := run.Child("residual-phase")
	p2.SetFloat("sentinel_hit_rate", 0.25).End()
	run.SetInt("rounds", 1).End()

	m := tr.Metrics()
	m.Sets.Add(4)
	m.Nodes.Add(10)
	m.Edges.Add(17)
	m.SentinelHits.Inc()
	for _, v := range []int64{1, 2, 3, 4} {
		m.RRSize.Observe(v)
	}
	for _, v := range []int64{3, 4, 5, 5} {
		m.EdgesPerSet.Observe(v)
	}
	m.SkipLen.Observe(2)
	m.WorkerSets(0).Add(3)
	m.WorkerSets(1).Add(1)
	return tr
}

// TestReportGolden locks the JSON schema: any incompatible change to the
// report document shape must bump SchemaVersion and regenerate the
// golden with `go test ./internal/obs -run Golden -update`.
func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicTracer().Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

func TestReportSchemaFields(t *testing.T) {
	rep := deterministicTracer().Report()
	if rep.Schema != Schema || rep.Version != SchemaVersion {
		t.Errorf("schema = %q v%d, want %q v%d", rep.Schema, rep.Version, Schema, SchemaVersion)
	}
	if rep.Counters["rr_sets_total"] != 4 || rep.Counters["sentinel_hits_total"] != 1 {
		t.Errorf("counters wrong: %v", rep.Counters)
	}
	if h := rep.Histograms["rr_size"]; h.Count != 4 || h.Sum != 10 {
		t.Errorf("rr_size histogram = %+v", h)
	}
	if len(rep.WorkerSets) != 2 || rep.WorkerSets[0] != 3 || rep.WorkerSets[1] != 1 {
		t.Errorf("worker sets = %v, want [3 1]", rep.WorkerSets)
	}
	for _, name := range []string{"hist", "sentinel-phase", "residual-phase", "round-1", "sampling", "selection", "bound-check"} {
		if rep.Span(name) == nil {
			t.Errorf("span %q missing from report", name)
		}
	}
}

func TestAggregateSpans(t *testing.T) {
	rep := deterministicTracer().Report()
	aggs := rep.AggregateSpans()
	byName := map[string]SpanAgg{}
	var order []string
	for _, a := range aggs {
		byName[a.Name] = a
		order = append(order, a.Name)
	}
	if order[0] != "hist" || order[1] != "sentinel-phase" {
		t.Errorf("first-seen order wrong: %v", order)
	}
	if a := byName["sampling"]; a.Count != 1 || a.TotalNS <= 0 {
		t.Errorf("sampling agg = %+v", a)
	}
	if byName["hist"].Total() <= byName["sampling"].Total() {
		t.Error("root total not larger than leaf total")
	}
}

func TestWritePrometheus(t *testing.T) {
	tr := deterministicTracer()
	var live bytes.Buffer
	if err := tr.Metrics().WritePrometheus(&live); err != nil {
		t.Fatal(err)
	}
	out := live.String()
	for _, want := range []string{
		"subsim_rr_sets_total 4",
		"subsim_sentinel_hits_total 1",
		"subsim_rr_size_sum 10",
		"subsim_rr_size_count 4",
		`subsim_rr_size_bucket{le="+Inf"} 4`,
		`subsim_worker_sets_total{worker="0"} 3`,
		`subsim_worker_sets_total{worker="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live prometheus dump missing %q\n%s", want, out)
		}
	}
	// Cumulative buckets: rr_size has 1,2,3,4 -> le=1:1, le=3:3, +Inf:4.
	for _, want := range []string{
		`subsim_rr_size_bucket{le="1"} 1`,
		`subsim_rr_size_bucket{le="3"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cumulative bucket missing %q\n%s", want, out)
		}
	}
	// The report renderer agrees with the live renderer on totals.
	var offline bytes.Buffer
	if err := tr.Report().WritePrometheus(&offline); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"subsim_rr_sets_total 4",
		"subsim_rr_size_sum 10",
		`subsim_rr_size_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(offline.String(), want) {
			t.Errorf("report prometheus dump missing %q\n%s", want, offline.String())
		}
	}
}
