package graph

import (
	"fmt"

	"subsim/internal/rng"
)

// This file implements the synthetic social-network generators that stand
// in for the paper's Pokec/Orkut/Twitter/Friendster datasets (see the
// substitution table in DESIGN.md). Preferential attachment reproduces
// the heavy-tailed degree distribution that drives the relative behaviour
// of the algorithms; Erdős–Rényi provides a homogeneous control; the
// deterministic topologies (ring, line, star, complete) have closed-form
// influence and anchor the correctness tests.

// GenErdosRenyi samples a directed G(n, m) graph: m distinct directed
// edges (no self-loops) chosen uniformly at random. Edge probabilities
// are initialised to 0; assign a weight model afterwards. It returns an
// error if m exceeds the number of possible edges n(n-1).
func GenErdosRenyi(n int, m int64, r *rng.Source) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	maxEdges := int64(n) * int64(n-1)
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graph: G(%d,m) supports 0 <= m <= %d, got %d", n, maxEdges, m)
	}
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for int64(b.NumEdges()) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := b.AddEdge(u, v, 0); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// GenPreferentialAttachment grows a Barabási–Albert-style scale-free
// graph: nodes arrive one at a time and attach to deg existing nodes
// chosen proportionally to their current degree (with an initial clique
// of deg+1 nodes). When undirected is true both directions of every
// attachment are added, mimicking the paper's undirected Orkut and
// Friendster datasets; otherwise only the edge from the new node to the
// chosen target is added plus the reverse with probability 0.5, giving a
// skewed directed network like Pokec/Twitter.
//
// Edge probabilities are initialised to 0; assign a weight model
// afterwards.
func GenPreferentialAttachment(n, deg int, undirected bool, r *rng.Source) (*Graph, error) {
	if deg < 1 {
		return nil, fmt.Errorf("graph: attachment degree must be >= 1, got %d", deg)
	}
	if n < deg+1 {
		return nil, fmt.Errorf("graph: need at least deg+1=%d nodes, got %d", deg+1, n)
	}
	b := NewBuilder(n)
	// targets holds one entry per edge endpoint; sampling uniformly from
	// it is sampling nodes proportionally to degree.
	targets := make([]int32, 0, 2*int64(n)*int64(deg))
	// Seed clique over the first deg+1 nodes.
	for u := int32(0); u <= int32(deg); u++ {
		for v := u + 1; v <= int32(deg); v++ {
			if err := b.AddUndirected(u, v, 0); err != nil {
				return nil, err
			}
			targets = append(targets, u, v)
		}
	}
	picked := make(map[int32]struct{}, deg)
	for u := int32(deg) + 1; u < int32(n); u++ {
		clear(picked)
		for len(picked) < deg {
			t := targets[r.Intn(len(targets))]
			if t == u {
				continue
			}
			if _, dup := picked[t]; dup {
				continue
			}
			picked[t] = struct{}{}
		}
		for t := range picked {
			if undirected {
				if err := b.AddUndirected(u, t, 0); err != nil {
					return nil, err
				}
			} else {
				if err := b.AddEdge(u, t, 0); err != nil {
					return nil, err
				}
				if r.Bernoulli(0.5) {
					if err := b.AddEdge(t, u, 0); err != nil {
						return nil, err
					}
				}
			}
			targets = append(targets, u, t)
		}
	}
	return b.Build(), nil
}

// GenLine returns the directed path 0 -> 1 -> ... -> n-1 with every edge
// carrying probability p. Under IC the expected influence of node 0 is
// the closed form Σ_{i=0}^{n-1} p^i, which the tests exploit.
func GenLine(n int, p float64) *Graph {
	b := NewBuilder(n)
	for v := int32(0); v+1 < int32(n); v++ {
		if err := b.AddEdge(v, v+1, p); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// GenRing returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0 with every
// edge carrying probability p.
func GenRing(n int, p float64) *Graph {
	if n < 2 {
		return NewBuilder(n).Build()
	}
	b := NewBuilder(n)
	for v := int32(0); v < int32(n); v++ {
		if err := b.AddEdge(v, (v+1)%int32(n), p); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// GenStar returns a star with node 0 at the centre and directed edges
// from the centre to every leaf, each with probability p. The expected
// influence of node 0 is 1 + (n-1)p.
func GenStar(n int, p float64) *Graph {
	b := NewBuilder(n)
	for v := int32(1); v < int32(n); v++ {
		if err := b.AddEdge(0, v, p); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// GenComplete returns the complete directed graph on n nodes with every
// edge carrying probability p.
func GenComplete(n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for v := int32(0); v < int32(n); v++ {
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v, p); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}

// GenBipartiteOut returns a graph where each of the first l nodes has
// directed edges to all of the following r nodes, each with probability
// p. It is the canonical max-coverage test topology.
func GenBipartiteOut(l, r int, p float64) *Graph {
	b := NewBuilder(l + r)
	for u := int32(0); u < int32(l); u++ {
		for v := int32(l); v < int32(l+r); v++ {
			if err := b.AddEdge(u, v, p); err != nil {
				panic(err)
			}
		}
	}
	return b.Build()
}
