package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadSNAP parses a headerless edge list in the style of the SNAP and
// KONECT repositories the paper's datasets ship in: one "from to
// [weight]" pair per line, '#' and '%' comments ignored, node ids
// arbitrary non-negative integers. Ids are preserved (the graph has
// maxID+1 nodes, so sparse id spaces produce isolated nodes — run
// CompactLargestWCC or Subgraph afterwards if that matters). When
// undirected is true every edge is mirrored.
func ReadSNAP(r io.Reader, undirected bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct {
		from, to int64
		p        float64
	}
	var edges []rawEdge
	maxID := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: snap line %d: want \"from to [weight]\"", line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: snap line %d: bad source: %v", line, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: snap line %d: bad target: %v", line, err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: snap line %d: negative node id", line)
		}
		p := 0.0
		if len(fields) == 3 {
			p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: snap line %d: bad weight: %v", line, err)
			}
		}
		if from == to {
			continue // SNAP dumps occasionally contain self-loops; drop them
		}
		edges = append(edges, rawEdge{from, to, p})
		if from > maxID {
			maxID = from
		}
		if to > maxID {
			maxID = to
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID >= 1<<31-1 {
		return nil, fmt.Errorf("graph: snap node id %d exceeds int32", maxID)
	}
	b := NewBuilder(int(maxID + 1))
	for _, e := range edges {
		if undirected {
			if err := b.AddUndirected(int32(e.from), int32(e.to), e.p); err != nil {
				return nil, err
			}
		} else if err := b.AddEdge(int32(e.from), int32(e.to), e.p); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Subgraph returns the subgraph induced by the nodes with keep[v] true,
// with nodes renumbered densely in ascending original-id order, plus the
// mapping from new ids back to original ids. Edge probabilities are
// preserved.
func (g *Graph) Subgraph(keep []bool) (*Graph, []int32, error) {
	if len(keep) != g.N() {
		return nil, nil, fmt.Errorf("graph: keep mask length %d != n %d", len(keep), g.N())
	}
	newID := make([]int32, g.N())
	var origID []int32
	for v := 0; v < g.N(); v++ {
		if keep[v] {
			newID[v] = int32(len(origID))
			origID = append(origID, int32(v))
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(len(origID))
	for _, u := range origID {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for j := lo; j < hi; j++ {
			w := g.outAdj[j]
			if newID[w] < 0 {
				continue
			}
			if err := b.AddEdge(newID[u], newID[w], g.outW[j]); err != nil {
				return nil, nil, err
			}
		}
	}
	sub := b.Build()
	sub.model = g.model
	return sub, origID, nil
}

// CompactLargestWCC returns the subgraph induced by the largest weakly
// connected component — the standard preprocessing step for IM
// experiments on raw crawls — together with the new→original id mapping.
func (g *Graph) CompactLargestWCC() (*Graph, []int32, error) {
	comp, count := g.WCC()
	if count == 0 {
		return g, nil, nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := int32(0)
	for c, s := range sizes {
		if s > sizes[best] {
			best = int32(c)
		}
	}
	keep := make([]bool, g.N())
	for v, c := range comp {
		keep[v] = c == best
	}
	return g.Subgraph(keep)
}
