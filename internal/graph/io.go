package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// maxNodes is the largest node count either reader accepts. Node ids are
// int32 throughout the engine; a header beyond that range used to
// truncate silently in the builder (a 2^32-node header parsed as an
// empty graph), which fuzzing caught — see TestReadHeaderValidation.
const maxNodes = math.MaxInt32

// This file implements the on-disk graph formats:
//
//   - a human-readable edge-list text format compatible with the
//     SNAP/KONECT style the paper's datasets ship in: a header line
//     "n m" followed by one "from to [prob]" line per edge;
//   - a compact little-endian binary format for fast reloads of large
//     synthetic graphs.

// WriteText writes g as an edge-list text file: a header "n m" followed
// by one "from to prob" line per edge.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for j := lo; j < hi; j++ {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, g.outAdj[j], g.outW[j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the edge-list text format produced by WriteText.
// Probabilities are optional per line and default to 0 (assign a weight
// model afterwards). Lines starting with '#' or '%' are ignored, so raw
// SNAP/KONECT edge lists load directly when prefixed with a header.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: header must be \"n m\"", line)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node count: %v", line, err)
			}
			if n < 0 || n > maxNodes {
				return nil, fmt.Errorf("graph: line %d: node count %d outside [0, 2^31)", line, n)
			}
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge count: %v", line, err)
			}
			b = NewBuilder(n)
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"from to [prob]\"", line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %v", line, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %v", line, err)
		}
		p := 0.0
		if len(fields) == 3 {
			p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad probability: %v", line, err)
			}
		}
		if err := b.AddEdge(int32(from), int32(to), p); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return b.Build(), nil
}

const binaryMagic = uint64(0x53554253494d3031) // "SUBSIM01"

// WriteBinary writes g in the compact binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{binaryMagic, uint64(g.n), uint64(g.m), uint64(g.model)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for u := int32(0); u < g.n; u++ {
		if err := binary.Write(bw, binary.LittleEndian, g.outOff[u+1]-g.outOff[u]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outW); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the format produced by WriteBinary and validates the
// result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: short binary header: %v", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] > maxNodes {
		return nil, fmt.Errorf("graph: header node count %d outside [0, 2^31)", hdr[1])
	}
	if hdr[2] > math.MaxInt64 {
		return nil, fmt.Errorf("graph: header edge count %d overflows", hdr[2])
	}
	if hdr[3] > uint64(ModelLT) {
		return nil, fmt.Errorf("graph: unknown weight model %d in header", hdr[3])
	}
	n := int(hdr[1])
	m := int64(hdr[2])
	deg, err := readBlock[int64](br, int64(n), "degree")
	if err != nil {
		return nil, err
	}
	adj, err := readBlock[int32](br, m, "adjacency")
	if err != nil {
		return nil, err
	}
	w, err := readBlock[float64](br, m, "weight")
	if err != nil {
		return nil, err
	}
	b := NewBuilder(n)
	pos := int64(0)
	for u := 0; u < n; u++ {
		for k := int64(0); k < deg[u]; k++ {
			if pos >= m {
				return nil, fmt.Errorf("graph: degree block exceeds edge count")
			}
			if err := b.AddEdge(int32(u), adj[pos], w[pos]); err != nil {
				return nil, err
			}
			pos++
		}
	}
	if pos != m {
		return nil, fmt.Errorf("graph: degree block covers %d of %d edges", pos, m)
	}
	g := b.Build()
	g.model = WeightModel(hdr[3])
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readBlock reads count little-endian values of a fixed-size type in
// bounded chunks. Reading chunk-wise means a forged header claiming
// trillions of edges fails with a short-read error after consuming at
// most the real input, instead of attempting a multi-terabyte up-front
// allocation — the other crasher class fuzzing found in this reader.
func readBlock[T int32 | int64 | float64](br io.Reader, count int64, what string) ([]T, error) {
	if count < 0 {
		return nil, fmt.Errorf("graph: negative %s count %d", what, count)
	}
	const chunk = 1 << 15
	hint := count
	if hint > chunk {
		hint = chunk
	}
	out := make([]T, 0, hint)
	buf := make([]T, chunk)
	for int64(len(out)) < count {
		k := count - int64(len(out))
		if k > chunk {
			k = chunk
		}
		if err := binary.Read(br, binary.LittleEndian, buf[:k]); err != nil {
			return nil, fmt.Errorf("graph: short %s block: %v", what, err)
		}
		out = append(out, buf[:k]...)
	}
	return out, nil
}

// SaveFile writes the graph to path, choosing the binary format when the
// file name ends in ".bin" and the text format otherwise.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		if err := g.WriteBinary(f); err != nil {
			return err
		}
	} else if err := g.WriteText(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path, choosing the format by extension as
// in SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadText(f)
}
