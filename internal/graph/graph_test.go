package graph

import (
	"math"
	"testing"
	"testing/quick"

	"subsim/internal/rng"
)

func mustBuild(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3, 0.5); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := b.AddEdge(-1, 0, 0.5); err == nil {
		t.Error("negative source accepted")
	}
	if err := b.AddEdge(1, 1, 0.5); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 1, 1.5); err == nil {
		t.Error("p > 1 accepted")
	}
	if err := b.AddEdge(0, 1, -0.1); err == nil {
		t.Error("p < 0 accepted")
	}
	if err := b.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN probability accepted")
	}
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestBuilderPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRStructure(t *testing.T) {
	g := mustBuild(t, 4, []Edge{
		{0, 1, 0.5}, {0, 2, 0.25}, {1, 2, 1}, {3, 2, 0.1}, {2, 0, 0.7},
	})
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 3 || g.InDegree(0) != 1 {
		t.Fatal("degree mismatch")
	}
	srcs, probs := g.InNeighbors(2)
	if len(srcs) != 3 || len(probs) != 3 {
		t.Fatalf("InNeighbors(2): %v %v", srcs, probs)
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1.35) > 1e-12 {
		t.Fatalf("in-weight sum of node 2: %v", sum)
	}
	if g.SumInWeights(2) != sum {
		t.Fatal("SumInWeights mismatch")
	}
	targets, _ := g.OutNeighbors(0)
	if len(targets) != 2 {
		t.Fatalf("OutNeighbors(0): %v", targets)
	}
	if got := g.AvgDegree(); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("AvgDegree = %v", got)
	}
}

func TestDegreeSumsEqualM(t *testing.T) {
	r := rng.New(42)
	g, err := GenErdosRenyi(50, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	var inSum, outSum int64
	for v := int32(0); v < int32(g.N()); v++ {
		inSum += int64(g.InDegree(v))
		outSum += int64(g.OutDegree(v))
	}
	if inSum != g.M() || outSum != g.M() {
		t.Fatalf("degree sums %d/%d, m=%d", inSum, outSum, g.M())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	edges := []Edge{{0, 1, 0.5}, {1, 2, 0.25}, {2, 0, 1}}
	g := mustBuild(t, 3, edges)
	got := g.Edges()
	if len(got) != len(edges) {
		t.Fatalf("Edges() returned %d edges", len(got))
	}
	seen := map[Edge]bool{}
	for _, e := range got {
		seen[e] = true
	}
	for _, e := range edges {
		if !seen[e] {
			t.Fatalf("edge %v missing", e)
		}
	}
}

func TestUniformInDetection(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 2, 0.5}, {1, 2, 0.5}, {0, 1, 0.9}})
	if !g.UniformIn() {
		t.Fatal("per-node-equal weights not detected")
	}
	p, logP, ok := g.UniformInProb(2)
	if !ok || p != 0.5 {
		t.Fatalf("UniformInProb(2) = %v %v", p, ok)
	}
	if math.Abs(logP-math.Log1p(-0.5)) > 1e-15 {
		t.Fatalf("log1p mismatch: %v", logP)
	}

	g2 := mustBuild(t, 3, []Edge{{0, 2, 0.5}, {1, 2, 0.4}})
	if g2.UniformIn() {
		t.Fatal("unequal weights reported uniform")
	}
	if _, _, ok := g2.UniformInProb(2); ok {
		t.Fatal("UniformInProb ok on skewed graph")
	}
}

func TestAssignWC(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 3, 0}, {1, 3, 0}, {2, 3, 0}, {0, 1, 0}})
	g.AssignWC()
	if g.Model() != ModelWC {
		t.Fatalf("model = %v", g.Model())
	}
	_, probs := g.InNeighbors(3)
	for _, p := range probs {
		if math.Abs(p-1.0/3) > 1e-15 {
			t.Fatalf("WC weight %v", p)
		}
	}
	if s := g.SumInWeights(3); math.Abs(s-1) > 1e-12 {
		t.Fatalf("WC in-sum %v", s)
	}
	if !g.UniformIn() {
		t.Fatal("WC should enable the uniform fast path")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignWCVariant(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 3, 0}, {1, 3, 0}, {2, 3, 0}, {0, 1, 0}})
	g.AssignWCVariant(2)
	_, probs := g.InNeighbors(3)
	for _, p := range probs {
		if math.Abs(p-2.0/3) > 1e-15 {
			t.Fatalf("variant weight %v", p)
		}
	}
	// Node 1 has in-degree 1: min(1, 2/1) must clamp at 1.
	_, probs1 := g.InNeighbors(1)
	if probs1[0] != 1 {
		t.Fatalf("clamp failed: %v", probs1[0])
	}
	if g.Model() != ModelWCVariant {
		t.Fatalf("model = %v", g.Model())
	}
	// θ = 1 coincides with WC.
	g.AssignWCVariant(1)
	_, probs = g.InNeighbors(3)
	if math.Abs(probs[0]-1.0/3) > 1e-15 {
		t.Fatal("θ=1 variant differs from WC")
	}
}

func TestAssignWCVariantPanics(t *testing.T) {
	g := mustBuild(t, 2, []Edge{{0, 1, 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("negative theta accepted")
		}
	}()
	g.AssignWCVariant(-1)
}

func TestAssignUniform(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1, 0}, {1, 2, 0}, {0, 2, 0}})
	g.AssignUniform(0.125)
	for _, e := range g.Edges() {
		if e.P != 0.125 {
			t.Fatalf("uniform weight %v", e.P)
		}
	}
	if g.Model() != ModelUniform || !g.UniformIn() {
		t.Fatal("uniform model flags wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("p=2 accepted")
		}
	}()
	g.AssignUniform(2)
}

func TestAssignSkewedNormalisation(t *testing.T) {
	r := rng.New(7)
	g, err := GenErdosRenyi(30, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name   string
		assign func()
		model  WeightModel
	}{
		{"exponential", func() { g.AssignExponential(r, 1) }, ModelExponential},
		{"weibull", func() { g.AssignWeibull(r) }, ModelWeibull},
	} {
		name := c.name
		c.assign()
		if g.Model() != c.model {
			t.Fatalf("%s: model = %v", name, g.Model())
		}
		for v := int32(0); v < int32(g.N()); v++ {
			if g.InDegree(v) == 0 {
				continue
			}
			if s := g.SumInWeights(v); math.Abs(s-1) > 1e-9 {
				t.Fatalf("%s: node %d in-sum %v", name, v, s)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAssignLT(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 2, 0}, {1, 2, 0}})
	g.AssignLT()
	if g.Model() != ModelLT {
		t.Fatalf("model = %v", g.Model())
	}
	if s := g.SumInWeights(2); math.Abs(s-1) > 1e-12 {
		t.Fatalf("LT in-sum %v", s)
	}
}

func TestSortInEdges(t *testing.T) {
	r := rng.New(9)
	g, err := GenErdosRenyi(40, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignExponential(r, 1)
	before := map[[2]int32]float64{}
	for _, e := range g.Edges() {
		before[[2]int32{e.From, e.To}] = e.P
	}
	g.SortInEdges()
	if !g.SortedIn() {
		t.Fatal("SortedIn not set")
	}
	for v := int32(0); v < int32(g.N()); v++ {
		srcs, probs := g.InNeighbors(v)
		for i := 1; i < len(probs); i++ {
			if probs[i] > probs[i-1] {
				t.Fatalf("node %d in-edges not descending: %v", v, probs)
			}
		}
		// Every (source, weight) pair must be preserved.
		for i, s := range srcs {
			if before[[2]int32{s, v}] != probs[i] {
				t.Fatalf("edge (%d,%d) weight changed", s, v)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	g.SortInEdges()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightModelString(t *testing.T) {
	names := map[WeightModel]string{
		ModelUnset: "unset", ModelWC: "WC", ModelWCVariant: "WC-variant",
		ModelUniform: "UniformIC", ModelExponential: "Exponential",
		ModelWeibull: "Weibull", ModelLT: "LT", WeightModel(99): "WeightModel(99)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}

func TestGenErdosRenyi(t *testing.T) {
	r := rng.New(1)
	g, err := GenErdosRenyi(20, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 100 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges() {
		if e.From == e.To {
			t.Fatal("self loop")
		}
		key := [2]int32{e.From, e.To}
		if seen[key] {
			t.Fatal("duplicate edge")
		}
		seen[key] = true
	}
	if _, err := GenErdosRenyi(3, 7, r); err == nil {
		t.Error("m > n(n-1) accepted")
	}
	if _, err := GenErdosRenyi(-1, 0, r); err == nil {
		t.Error("negative n accepted")
	}
}

func TestGenPreferentialAttachment(t *testing.T) {
	r := rng.New(2)
	g, err := GenPreferentialAttachment(500, 4, true, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scale-free skew: the maximum degree must far exceed the average.
	maxDeg, sum := 0, 0
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.OutDegree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sum) / float64(g.N())
	if float64(maxDeg) < 4*avg {
		t.Fatalf("no preferential skew: max %d avg %v", maxDeg, avg)
	}
	// Undirected: in-degree equals out-degree everywhere.
	for v := int32(0); v < int32(g.N()); v++ {
		if g.InDegree(v) != g.OutDegree(v) {
			t.Fatalf("node %d asymmetric in undirected PA", v)
		}
	}
	if _, err := GenPreferentialAttachment(3, 0, true, r); err == nil {
		t.Error("deg=0 accepted")
	}
	if _, err := GenPreferentialAttachment(2, 4, true, r); err == nil {
		t.Error("n < deg+1 accepted")
	}
}

func TestGenPreferentialAttachmentDirected(t *testing.T) {
	r := rng.New(3)
	g, err := GenPreferentialAttachment(300, 3, false, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	asym := false
	for v := int32(0); v < int32(g.N()); v++ {
		if g.InDegree(v) != g.OutDegree(v) {
			asym = true
			break
		}
	}
	if !asym {
		t.Fatal("directed PA produced a symmetric graph")
	}
}

func TestDeterministicTopologies(t *testing.T) {
	line := GenLine(5, 0.5)
	if line.M() != 4 || line.InDegree(0) != 0 || line.OutDegree(4) != 0 {
		t.Fatal("line shape wrong")
	}
	ring := GenRing(5, 0.5)
	if ring.M() != 5 {
		t.Fatal("ring shape wrong")
	}
	for v := int32(0); v < 5; v++ {
		if ring.InDegree(v) != 1 || ring.OutDegree(v) != 1 {
			t.Fatal("ring degrees wrong")
		}
	}
	star := GenStar(6, 0.3)
	if star.OutDegree(0) != 5 || star.M() != 5 {
		t.Fatal("star shape wrong")
	}
	complete := GenComplete(4, 1)
	if complete.M() != 12 {
		t.Fatal("complete shape wrong")
	}
	bip := GenBipartiteOut(2, 3, 0.5)
	if bip.M() != 6 || bip.OutDegree(0) != 3 || bip.InDegree(3) != 2 {
		t.Fatal("bipartite shape wrong")
	}
	small := GenRing(1, 0.5)
	if small.M() != 0 {
		t.Fatal("degenerate ring has edges")
	}
}

// TestBuildPropertyCSRConsistency quick-checks CSR invariants on random
// edge multisets.
func TestBuildPropertyCSRConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		b := NewBuilder(n)
		m := r.Intn(4 * n)
		for i := 0; i < m; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v, r.Float64()); err != nil {
				return false
			}
		}
		g := b.Build()
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
