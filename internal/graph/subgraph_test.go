package graph

import (
	"strings"
	"testing"
)

func TestReadSNAP(t *testing.T) {
	in := "# comment\n0 3\n3 7 0.5\n7 0\n5 5\n"
	g, err := ReadSNAP(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("n = %d, want 8 (max id 7)", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("m = %d (self-loop must be dropped)", g.M())
	}
	_, probs := g.InNeighbors(7)
	if len(probs) != 1 || probs[0] != 0.5 {
		t.Fatalf("weight not preserved: %v", probs)
	}
	// Isolated nodes exist for the unused ids.
	if g.InDegree(1) != 0 || g.OutDegree(1) != 0 {
		t.Fatal("id 1 should be isolated")
	}
}

func TestReadSNAPUndirected(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader("0 1\n1 2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("m = %d, want 4", g.M())
	}
	if g.InDegree(0) != 1 || g.OutDegree(0) != 1 {
		t.Fatal("mirroring failed")
	}
}

func TestReadSNAPErrors(t *testing.T) {
	cases := []string{
		"0\n",       // short line
		"0 1 2 3\n", // long line
		"x 1\n",     // bad source
		"0 y\n",     // bad target
		"-1 2\n",    // negative id
		"0 1 zz\n",  // bad weight
		"0 1 1.5\n", // weight out of [0,1] (caught by builder)
	}
	for _, in := range cases {
		if _, err := ReadSNAP(strings.NewReader(in), false); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := mustBuild(t, 5, []Edge{
		{0, 1, 0.5}, {1, 2, 0.25}, {2, 0, 1}, {3, 4, 0.75}, {1, 3, 0.1},
	})
	keep := []bool{true, true, true, false, false}
	sub, orig, err := g.Subgraph(keep)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("sub: n=%d m=%d", sub.N(), sub.M())
	}
	for i, want := range []int32{0, 1, 2} {
		if orig[i] != want {
			t.Fatalf("mapping %v", orig)
		}
	}
	// The edge 1→3 crossing the cut must be gone; weights preserved.
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	_, probs := sub.InNeighbors(0)
	if len(probs) != 1 || probs[0] != 1 {
		t.Fatalf("edge 2→0 not preserved: %v", probs)
	}
	if _, _, err := g.Subgraph([]bool{true}); err == nil {
		t.Fatal("wrong mask length accepted")
	}
}

func TestCompactLargestWCC(t *testing.T) {
	// Component A: 0-1-2 (sizes 3); component B: 3-4 (size 2); isolated 5.
	g := mustBuild(t, 6, []Edge{{0, 1, 0.5}, {1, 2, 0.5}, {3, 4, 0.5}})
	sub, orig, err := g.CompactLargestWCC()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatalf("largest WCC size %d", sub.N())
	}
	for i, want := range []int32{0, 1, 2} {
		if orig[i] != want {
			t.Fatalf("mapping %v", orig)
		}
	}
	if sub.M() != 2 {
		t.Fatalf("m = %d", sub.M())
	}
}

func TestCompactPreservesModel(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 0}, {1, 2, 0}})
	g.AssignWC()
	sub, _, err := g.CompactLargestWCC()
	if err != nil {
		t.Fatal(err)
	}
	if sub.Model() != ModelWC {
		t.Fatalf("model %v not preserved", sub.Model())
	}
}
