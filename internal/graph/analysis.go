package graph

import (
	"fmt"
	"sort"
)

// This file provides the structural analysis utilities the experiment
// harness and downstream users need around influence maximization:
// strongly/weakly connected components, transposition, degree
// distributions, reachability, and summary statistics.

// Transpose returns a new graph with every edge reversed (probabilities
// preserved). RR set generation on g is forward reachability on the
// transpose; the utility mainly serves tests and external tooling.
func (g *Graph) Transpose() *Graph {
	b := NewBuilder(g.N())
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for j := lo; j < hi; j++ {
			if err := b.AddEdge(g.outAdj[j], u, g.outW[j]); err != nil {
				// Unreachable: the source graph was validated.
				panic(err)
			}
		}
	}
	t := b.Build()
	t.model = g.model
	return t
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm (no recursion, so million-node graphs do not overflow the
// stack). It returns a component id per node (0-based, reverse
// topological order: an edge u→v across components has comp[u] >
// comp[v]) and the number of components.
func (g *Graph) SCC() (comp []int32, count int) {
	n := g.N()
	const unvisited = int32(-1)
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var next int32 // next DFS index

	type frame struct {
		v    int32
		edge int64 // next out-edge offset to examine
	}
	var dfs []frame

	for root := int32(0); root < int32(n); root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: root, edge: g.outOff[root]})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.edge < g.outOff[v+1] {
				w := g.outAdj[f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w, edge: g.outOff[w]})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := dfs[len(dfs)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, count
}

// WCC computes weakly connected components (ignoring edge direction) via
// union-find with path halving. It returns a component id per node and
// the number of components.
func (g *Graph) WCC() (comp []int32, count int) {
	n := g.N()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for j := lo; j < hi; j++ {
			ru, rv := find(u), find(g.outAdj[j])
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	comp = make([]int32, n)
	ids := map[int32]int32{}
	for v := int32(0); v < int32(n); v++ {
		r := find(v)
		id, ok := ids[r]
		if !ok {
			id = int32(len(ids))
			ids[r] = id
		}
		comp[v] = id
	}
	return comp, len(ids)
}

// LargestComponentSize returns the size of the largest component given a
// component labelling.
func LargestComponentSize(comp []int32, count int) int {
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}

// OutDegreeHistogram returns the out-degree distribution: hist[d] is the
// number of nodes with out-degree d.
func (g *Graph) OutDegreeHistogram() map[int]int {
	hist := map[int]int{}
	for v := int32(0); v < g.n; v++ {
		hist[g.OutDegree(v)]++
	}
	return hist
}

// InDegreeHistogram returns the in-degree distribution.
func (g *Graph) InDegreeHistogram() map[int]int {
	hist := map[int]int{}
	for v := int32(0); v < g.n; v++ {
		hist[g.InDegree(v)]++
	}
	return hist
}

// TopOutDegree returns the k nodes with the largest out-degree, in
// descending order (ties by node id ascending). It is the classic degree
// heuristic's seed set and the sentinel candidates' natural ordering.
func (g *Graph) TopOutDegree(k int) []int32 {
	n := g.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := g.OutDegree(nodes[i]), g.OutDegree(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes[:k]
}

// ReachableFrom returns the number of nodes reachable from v along
// directed edges (including v), the p=1 influence of {v}.
func (g *Graph) ReachableFrom(v int32) int {
	visited := make([]bool, g.N())
	visited[v] = true
	queue := []int32{v}
	count := 1
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		lo, hi := g.outOff[u], g.outOff[u+1]
		for j := lo; j < hi; j++ {
			w := g.outAdj[j]
			if !visited[w] {
				visited[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count
}

// KCore computes the core number of every node over the undirected
// skeleton (in-degree + out-degree), via the linear-time bucket peeling
// of Batagelj & Zaveršnik. The core number of v is the largest c such
// that v belongs to a subgraph where every node has total degree >= c.
// Core numbers are a robust influence proxy in the IM literature
// (high-core nodes sit in densely connected regions).
func (g *Graph) KCore() []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(int32(v)) + g.InDegree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int, n)     // position of node in sorted order
	order := make([]int32, n) // nodes sorted by current degree
	fill := append([]int(nil), binStart...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		order[pos[v]] = int32(v)
		fill[deg[v]]++
	}
	core := make([]int, n)
	curDeg := append([]int(nil), deg...)
	// Peel in degree order; when v is peeled, each unpeeled neighbour's
	// degree drops by one, moving it one bucket down.
	peeled := make([]bool, n)
	lower := func(w int32) {
		dw := curDeg[w]
		pw := pos[w]
		start := binStart[dw]
		u := order[start]
		if u != w {
			order[start], order[pw] = w, u
			pos[w], pos[u] = start, pw
		}
		binStart[dw]++
		curDeg[w]--
	}
	for i := 0; i < n; i++ {
		v := order[i]
		core[v] = curDeg[v]
		peeled[v] = true
		targets, _ := g.OutNeighbors(v)
		for _, w := range targets {
			if !peeled[w] && curDeg[w] > curDeg[v] {
				lower(w)
			}
		}
		sources, _ := g.InNeighbors(v)
		for _, w := range sources {
			if !peeled[w] && curDeg[w] > curDeg[v] {
				lower(w)
			}
		}
	}
	return core
}

// Stats summarises a graph for experiment logs.
type Stats struct {
	N            int
	M            int64
	AvgDegree    float64
	MaxOutDegree int
	MaxInDegree  int
	SCCs         int
	LargestSCC   int
	WCCs         int
	LargestWCC   int
}

// ComputeStats gathers the summary statistics (runs two component
// decompositions; linear in the graph size).
func (g *Graph) ComputeStats() Stats {
	s := Stats{N: g.N(), M: g.M(), AvgDegree: g.AvgDegree()}
	for v := int32(0); v < g.n; v++ {
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	scc, nscc := g.SCC()
	s.SCCs = nscc
	s.LargestSCC = LargestComponentSize(scc, nscc)
	wcc, nwcc := g.WCC()
	s.WCCs = nwcc
	s.LargestWCC = LargestComponentSize(wcc, nwcc)
	return s
}

// String renders the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d avgdeg=%.2f maxout=%d maxin=%d scc=%d(max %d) wcc=%d(max %d)",
		s.N, s.M, s.AvgDegree, s.MaxOutDegree, s.MaxInDegree, s.SCCs, s.LargestSCC, s.WCCs, s.LargestWCC)
}
