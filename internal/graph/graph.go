// Package graph implements the directed, weighted social-network
// substrate that every influence-maximization component in this
// repository operates on.
//
// Graphs are stored in compressed sparse row (CSR) form for both
// directions: RR set generation walks in-edges (reverse direction) while
// forward Monte-Carlo diffusion walks out-edges. Each in-edge position is
// cross-indexed to its out-edge twin so that edge-weight assignments stay
// consistent between the two views.
//
// Edge weights are the propagation probabilities p(u,v) of the
// Independent Cascade / Linear Threshold models. The package provides the
// weight models evaluated in the paper (WC, the WC variant
// min{1, θ/d_in}, Uniform IC, Exponential and Weibull skewed weights) and
// records, per node, whether all incoming weights are equal — the fast
// path that SUBSIM's geometric skip sampler exploits.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable directed graph with propagation probabilities on
// its edges. Construct one with a Builder, a generator, or a loader; the
// zero value is an empty graph.
//
// Node identifiers are dense int32 values in [0, N()).
type Graph struct {
	n int32
	m int64

	inOff []int64   // len n+1; in-edges of v are positions inOff[v]:inOff[v+1]
	inAdj []int32   // source node of each in-edge
	inW   []float64 // p(inAdj[i], v) for the in-edge at position i

	outOff []int64
	outAdj []int32   // target node of each out-edge
	outW   []float64 // p(u, outAdj[j]) for the out-edge at position j

	inToOut []int64 // position of each in-edge's twin in the out arrays

	// uniformIn is true when, for every node, all incoming edges carry
	// the same probability (WC, WC variant and Uniform IC). inProb,
	// inLog1mP and inTouched are then per-node: the shared probability,
	// log1p(-probability) (the precomputed denominator for geometric
	// skip sampling), and 1-(1-p)^d — the probability that subset
	// sampling the node's d in-edges yields at least one element, which
	// lets the generator skip untouched nodes with a single comparison.
	uniformIn bool
	inProb    []float64
	inLog1mP  []float64
	inTouched []float64

	sortedIn bool // in-edges sorted by descending weight per node

	model WeightModel
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of directed edges.
func (g *Graph) M() int64 { return g.m }

// Model returns the weight model most recently assigned to the graph.
func (g *Graph) Model() WeightModel { return g.model }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// AvgDegree returns m/n, the average out-degree (equivalently in-degree).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.m) / float64(g.n)
}

// InNeighbors returns the sources and probabilities of v's incoming
// edges. The returned slices alias the graph's internal storage and must
// not be modified.
func (g *Graph) InNeighbors(v int32) (sources []int32, probs []float64) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inAdj[lo:hi], g.inW[lo:hi]
}

// OutNeighbors returns the targets and probabilities of v's outgoing
// edges. The returned slices alias the graph's internal storage and must
// not be modified.
func (g *Graph) OutNeighbors(v int32) (targets []int32, probs []float64) {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outAdj[lo:hi], g.outW[lo:hi]
}

// UniformInProb reports whether all incoming edges of every node share a
// per-node probability, and if so returns that probability and its
// precomputed log1p(-p) for node v. RR set generators use this to select
// the geometric-skip fast path.
func (g *Graph) UniformInProb(v int32) (p, log1mP float64, ok bool) {
	if !g.uniformIn {
		return 0, 0, false
	}
	return g.inProb[v], g.inLog1mP[v], true
}

// UniformInTouched returns 1-(1-p)^d for node v on the equal-probability
// fast path: the chance that activating v's d in-neighbors samples at
// least one of them. Callers must have checked UniformIn.
func (g *Graph) UniformInTouched(v int32) float64 { return g.inTouched[v] }

// UniformIn reports whether the graph-wide equal-in-probability fast path
// is available.
func (g *Graph) UniformIn() bool { return g.uniformIn }

// SortedIn reports whether each node's in-edges are sorted by descending
// probability, the precondition of the index-free general-IC sampler.
func (g *Graph) SortedIn() bool { return g.sortedIn }

// SumInWeights returns the total probability mass on v's incoming edges,
// the quantity the paper's θ(d_in(v)) bounds.
func (g *Graph) SumInWeights(v int32) float64 {
	_, probs := g.InNeighbors(v)
	var s float64
	for _, p := range probs {
		s += p
	}
	return s
}

// Edge is a directed edge with its propagation probability, used by
// builders and the I/O layer.
type Edge struct {
	From, To int32
	P        float64
}

// Builder accumulates edges and produces an immutable Graph. Adding edges
// after Build is not supported. Parallel edges are kept as-is; self-loops
// are rejected because the cascade process never uses them.
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n nodes. Node counts
// outside the int32 id range are a programming error and panic; callers
// parsing untrusted headers (the graph readers) validate and return an
// error before reaching this.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	if n > math.MaxInt32 {
		panic("graph: node count exceeds int32 range")
	}
	return &Builder{n: int32(n)}
}

// AddEdge records the directed edge (from, to) with probability p. It
// returns an error for out-of-range endpoints, self-loops, or
// probabilities outside [0, 1].
func (b *Builder) AddEdge(from, to int32, p float64) error {
	if from < 0 || from >= b.n || to < 0 || to >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", from, to, b.n)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop at node %d", from)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("graph: edge (%d,%d) probability %v outside [0,1]", from, to, p)
	}
	b.edges = append(b.edges, Edge{From: from, To: to, P: p})
	return nil
}

// AddUndirected records both directions of an edge with the same
// probability, the convention the paper uses for undirected datasets.
func (b *Builder) AddUndirected(u, v int32, p float64) error {
	if err := b.AddEdge(u, v, p); err != nil {
		return err
	}
	return b.AddEdge(v, u, p)
}

// NumEdges returns the number of directed edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build constructs the immutable CSR graph. The Builder may be reused
// afterwards, but edges added later do not affect graphs already built.
func (b *Builder) Build() *Graph {
	n := int(b.n)
	m := int64(len(b.edges))
	g := &Graph{
		n:       b.n,
		m:       m,
		inOff:   make([]int64, n+1),
		inAdj:   make([]int32, m),
		inW:     make([]float64, m),
		outOff:  make([]int64, n+1),
		outAdj:  make([]int32, m),
		outW:    make([]float64, m),
		inToOut: make([]int64, m),
	}
	for _, e := range b.edges {
		g.outOff[e.From+1]++
		g.inOff[e.To+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	copy(outPos, g.outOff[:n])
	copy(inPos, g.inOff[:n])
	for _, e := range b.edges {
		op := outPos[e.From]
		g.outAdj[op] = e.To
		g.outW[op] = e.P
		outPos[e.From]++

		ip := inPos[e.To]
		g.inAdj[ip] = e.From
		g.inW[ip] = e.P
		g.inToOut[ip] = op
		inPos[e.To]++
	}
	g.detectUniformIn()
	return g
}

// setInWeight assigns probability p to the in-edge at position i and to
// its out-edge twin, keeping the two views consistent.
func (g *Graph) setInWeight(i int64, p float64) {
	g.inW[i] = p
	g.outW[g.inToOut[i]] = p
}

// detectUniformIn scans the graph and enables the equal-in-probability
// fast path when every node's incoming edges share one probability.
func (g *Graph) detectUniformIn() {
	n := int(g.n)
	prob := make([]float64, n)
	for v := 0; v < n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		if lo == hi {
			continue
		}
		p := g.inW[lo]
		for i := lo + 1; i < hi; i++ {
			if g.inW[i] != p {
				g.uniformIn = false
				g.inProb = nil
				g.inLog1mP = nil
				return
			}
		}
		prob[v] = p
	}
	g.uniformIn = true
	g.inProb = prob
	g.inLog1mP = make([]float64, n)
	g.inTouched = make([]float64, n)
	for v, p := range prob {
		d := g.inOff[v+1] - g.inOff[v]
		switch {
		case p >= 1:
			g.inLog1mP[v] = math.Inf(-1)
			if d > 0 {
				g.inTouched[v] = 1
			}
		case p > 0:
			g.inLog1mP[v] = math.Log1p(-p)
			g.inTouched[v] = -math.Expm1(float64(d) * g.inLog1mP[v])
		}
	}
}

// SortInEdges reorders each node's incoming edges by descending
// probability (stable on ties by source id), the layout required by the
// index-free general-IC subset sampler of Section 3.3. The out-edge view
// is unaffected. Calling it on an already-sorted graph is a no-op.
func (g *Graph) SortInEdges() {
	if g.sortedIn {
		return
	}
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		span := inEdgeSpan{
			adj: g.inAdj[lo:hi],
			w:   g.inW[lo:hi],
			x:   g.inToOut[lo:hi],
		}
		sort.Stable(span)
	}
	g.sortedIn = true
}

// inEdgeSpan sorts one node's in-edge triple (adj, weight, cross-index)
// by descending weight.
type inEdgeSpan struct {
	adj []int32
	w   []float64
	x   []int64
}

func (s inEdgeSpan) Len() int { return len(s.adj) }
func (s inEdgeSpan) Less(i, j int) bool {
	if s.w[i] != s.w[j] {
		return s.w[i] > s.w[j]
	}
	return s.adj[i] < s.adj[j]
}
func (s inEdgeSpan) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
	s.x[i], s.x[j] = s.x[j], s.x[i]
}

// Validate checks internal CSR invariants. It is used by tests and by the
// binary loader to reject corrupt inputs. A nil return means the
// structure is consistent.
func (g *Graph) Validate() error {
	n := int(g.n)
	if len(g.inOff) != n+1 || len(g.outOff) != n+1 {
		return fmt.Errorf("graph: offset arrays have wrong length")
	}
	if g.inOff[0] != 0 || g.outOff[0] != 0 || g.inOff[n] != g.m || g.outOff[n] != g.m {
		return fmt.Errorf("graph: offsets do not span [0,%d]", g.m)
	}
	for v := 0; v < n; v++ {
		if g.inOff[v] > g.inOff[v+1] || g.outOff[v] > g.outOff[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
	}
	if int64(len(g.inAdj)) != g.m || int64(len(g.outAdj)) != g.m {
		return fmt.Errorf("graph: adjacency arrays have wrong length")
	}
	for i := int64(0); i < g.m; i++ {
		if g.inAdj[i] < 0 || g.inAdj[i] >= g.n || g.outAdj[i] < 0 || g.outAdj[i] >= g.n {
			return fmt.Errorf("graph: adjacency entry out of range at %d", i)
		}
		if g.inW[i] < 0 || g.inW[i] > 1 || math.IsNaN(g.inW[i]) {
			return fmt.Errorf("graph: in-weight out of [0,1] at %d", i)
		}
		if g.outW[g.inToOut[i]] != g.inW[i] {
			return fmt.Errorf("graph: in/out weight mismatch at in-edge %d", i)
		}
	}
	return nil
}

// Edges returns all edges of the graph in out-adjacency order. It
// allocates; it is intended for I/O and tests, not hot paths.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for j := lo; j < hi; j++ {
			edges = append(edges, Edge{From: u, To: g.outAdj[j], P: g.outW[j]})
		}
	}
	return edges
}
