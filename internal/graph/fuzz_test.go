package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The graph readers parse untrusted bytes (downloaded edge lists,
// cached binary snapshots), so they are fuzzed natively: any input may
// be rejected with an error, but no input may panic, allocate
// unboundedly off a forged header, or round-trip into a different
// graph.

// fuzzMaxInput bounds the raw input so the fuzzer explores structure,
// not allocator throughput.
const fuzzMaxInput = 1 << 16

// fuzzMaxNodes bounds accepted node counts inside the fuzz targets:
// Builder.Build allocates O(n) even for edge-free graphs, which is
// legitimate for real datasets but an OOM vector under fuzzing.
const fuzzMaxNodes = 1 << 20

// textHeaderNodes extracts the node count a text input's header claims,
// mirroring ReadText's comment/blank-line skipping.
func textHeaderNodes(data []byte) (int, bool) {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return 0, false
		}
		n, err := strconv.Atoi(fields[0])
		return n, err == nil
	}
	return 0, false
}

func FuzzReadText(f *testing.F) {
	f.Add([]byte("3 2\n0 1 0.5\n1 2 0.25\n"))
	f.Add([]byte("# snap-style comment\n% konect-style comment\n2 1\n0 1\n"))
	f.Add([]byte("5 0\n"))
	f.Add([]byte("2 1\n0 1 1e-3\n"))
	f.Add([]byte("4294967296 0\n")) // node count that silently truncated to 0 pre-fix
	f.Add([]byte("-1 0\n"))         // negative node count used to panic in NewBuilder
	f.Add([]byte("2 1\n0 1 NaN\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzMaxInput {
			return
		}
		if n, ok := textHeaderNodes(data); ok && n > fuzzMaxNodes {
			return
		}
		g, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		requireSameGraph(t, g, g2, false)
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with genuine WriteBinary outputs of small graphs, plus a
	// truncated and a header-forged variant.
	for _, build := range []func() *Graph{
		func() *Graph { return mustGraph(3, [][3]interface{}{{0, 1, 0.5}, {1, 2, 0.25}, {2, 0, 1.0}}) },
		func() *Graph { return mustGraph(1, nil) },
		func() *Graph { return mustGraph(4, [][3]interface{}{{0, 3, 0.125}}) },
	} {
		var buf bytes.Buffer
		if err := build().WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 8 {
			f.Add(buf.Bytes()[:buf.Len()/2]) // truncated
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzMaxInput {
			return
		}
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// ReadBinary validates internally; accepted graphs must
		// round-trip bit-exactly, model included.
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round-trip parse: %v", err)
		}
		requireSameGraph(t, g, g2, true)
	})
}

// mustGraph builds a small graph for seed corpora.
func mustGraph(n int, edges [][3]interface{}) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(int32(e[0].(int)), int32(e[1].(int)), e[2].(float64)); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// requireSameGraph asserts structural equality: same node count, same
// out-adjacency (targets and weights, in CSR order), and — for the
// binary format, which persists it — the same weight model.
func requireSameGraph(t *testing.T, a, b *Graph, withModel bool) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	if withModel && a.Model() != b.Model() {
		t.Fatalf("model mismatch: %v vs %v", a.Model(), b.Model())
	}
	for v := int32(0); v < int32(a.N()); v++ {
		at, ap := a.OutNeighbors(v)
		bt, bp := b.OutNeighbors(v)
		if len(at) != len(bt) {
			t.Fatalf("node %d: out-degree %d vs %d", v, len(at), len(bt))
		}
		for j := range at {
			if at[j] != bt[j] || ap[j] != bp[j] {
				t.Fatalf("node %d edge %d: (%d,%g) vs (%d,%g)", v, j, at[j], ap[j], bt[j], bp[j])
			}
		}
	}
}

// TestReadHeaderValidation pins the two crashers the fuzz targets found
// while this harness was built: a node count beyond the int32 id range
// silently truncated in the builder (2^32 parsed as an empty graph),
// and a forged binary header claiming a huge edge count attempted the
// full allocation before noticing the input was ten bytes long.
func TestReadHeaderValidation(t *testing.T) {
	if _, err := ReadText(strings.NewReader("4294967296 0\n")); err == nil {
		t.Fatal("node count 2^32 must be rejected, not truncated")
	}
	if _, err := ReadText(strings.NewReader("-7 0\n")); err == nil {
		t.Fatal("negative node count must be rejected, not panic")
	}

	// Binary header: magic, n=1, m=2^50, model=0, then nothing.
	var buf bytes.Buffer
	g := mustGraph(1, nil)
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), buf.Bytes()[:32]...)
	for i, b := range []byte{0, 0, 0, 0, 0, 0, 4, 0} { // little-endian 2^50
		forged[16+i] = b
	}
	if _, err := ReadBinary(bytes.NewReader(forged)); err == nil {
		t.Fatal("forged edge count with empty payload must be rejected")
	}

	// Unknown weight model id.
	forged = append([]byte(nil), buf.Bytes()...)
	forged[24] = 200
	if _, err := ReadBinary(bytes.NewReader(forged)); err == nil {
		t.Fatal("unknown weight model id must be rejected")
	}
}
