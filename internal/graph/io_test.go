package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"subsim/internal/rng"
)

func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	ea, eb := a.Edges(), b.Edges()
	mk := func(es []Edge) map[Edge]int {
		m := map[Edge]int{}
		for _, e := range es {
			m[e]++
		}
		return m
	}
	ma, mb := mk(ea), mk(eb)
	for e, c := range ma {
		if mb[e] != c {
			t.Fatalf("edge %v count %d vs %d", e, c, mb[e])
		}
	}
}

func randomGraph(t *testing.T) *Graph {
	t.Helper()
	r := rng.New(11)
	g, err := GenErdosRenyi(25, 120, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignExponential(r, 1)
	return g
}

func TestTextRoundTrip(t *testing.T) {
	g := randomGraph(t)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraph(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, g2)
	if g2.Model() != g.Model() {
		t.Fatalf("model not preserved: %v vs %v", g2.Model(), g.Model())
	}
}

func TestReadTextComments(t *testing.T) {
	in := "# a comment\n% another\n3 2\n0 1 0.5\n\n1 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	// The probability-less edge defaults to 0.
	_, probs := g.InNeighbors(2)
	if probs[0] != 0 {
		t.Fatalf("default probability %v", probs[0])
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"nope\n",             // bad header
		"2\n",                // short header
		"2 1\n0\n",           // short edge line
		"2 1\n0 5 0.5\n",     // out of range
		"2 1\n0 1 2.0\n",     // bad probability
		"2 1\nx 1 0.5\n",     // bad source
		"2 1\n0 y 0.5\n",     // bad target
		"2 1\n0 1 zz\n",      // unparsable probability
		"x 1\n",              // bad node count
		"2 x\n",              // bad edge count header
		"2 1\n1 1 0.5\n",     // self loop
		"2 1\n0 1 0.5 9 9\n", // too many fields
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty binary accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 32))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated payload after a valid header.
	g := randomGraph(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:40]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated binary accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := randomGraph(t)
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := g.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		g2, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, g, g2)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
}
