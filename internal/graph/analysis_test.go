package graph

import (
	"testing"

	"subsim/internal/rng"
)

func TestTranspose(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1, 0.5}, {1, 2, 0.25}})
	tr := g.Transpose()
	if tr.N() != 3 || tr.M() != 2 {
		t.Fatal("transpose size wrong")
	}
	if tr.OutDegree(1) != 1 || tr.OutDegree(2) != 1 || tr.InDegree(0) != 1 {
		t.Fatal("transpose degrees wrong")
	}
	srcs, probs := tr.InNeighbors(0)
	if len(srcs) != 1 || srcs[0] != 1 || probs[0] != 0.5 {
		t.Fatalf("transpose edge wrong: %v %v", srcs, probs)
	}
	// Double transpose recovers the original edge multiset.
	back := tr.Transpose()
	sameEdges := map[Edge]int{}
	for _, e := range g.Edges() {
		sameEdges[e]++
	}
	for _, e := range back.Edges() {
		sameEdges[e]--
	}
	for e, c := range sameEdges {
		if c != 0 {
			t.Fatalf("edge %v count off by %d", e, c)
		}
	}
}

func TestSCCRing(t *testing.T) {
	g := GenRing(6, 1)
	comp, count := g.SCC()
	if count != 1 {
		t.Fatalf("ring has %d SCCs", count)
	}
	for _, c := range comp {
		if c != comp[0] {
			t.Fatal("ring nodes in different SCCs")
		}
	}
}

func TestSCCLine(t *testing.T) {
	g := GenLine(5, 1)
	_, count := g.SCC()
	if count != 5 {
		t.Fatalf("line has %d SCCs, want 5", count)
	}
}

func TestSCCTwoCycles(t *testing.T) {
	// Two 3-cycles joined by one edge: 2 SCCs, and the edge's direction
	// fixes the reverse-topological order.
	b := NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	comp, count := g.SCC()
	if count != 2 {
		t.Fatalf("%d SCCs, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("first cycle split")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("second cycle split")
	}
	// Edge 2→3 crosses components; Tarjan order has comp[2] > comp[3].
	if comp[2] <= comp[3] {
		t.Fatalf("reverse topological order violated: %v", comp)
	}
	if LargestComponentSize(comp, count) != 3 {
		t.Fatal("largest SCC size wrong")
	}
}

func TestSCCLargeRandomMatchesWCCBounds(t *testing.T) {
	r := rng.New(1)
	g, err := GenErdosRenyi(2000, 12000, r)
	if err != nil {
		t.Fatal(err)
	}
	_, nscc := g.SCC()
	_, nwcc := g.WCC()
	if nwcc > nscc {
		t.Fatalf("WCC count %d exceeds SCC count %d", nwcc, nscc)
	}
}

func TestWCC(t *testing.T) {
	// Two disjoint pieces.
	b := NewBuilder(5)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(3, 4, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	comp, count := g.WCC()
	if count != 3 {
		t.Fatalf("%d WCCs, want 3", count)
	}
	if comp[0] != comp[1] || comp[3] != comp[4] || comp[0] == comp[3] || comp[2] == comp[0] {
		t.Fatalf("WCC labels wrong: %v", comp)
	}
	if LargestComponentSize(comp, count) != 2 {
		t.Fatal("largest WCC wrong")
	}
}

func TestDegreeHistograms(t *testing.T) {
	g := GenStar(5, 0.5)
	out := g.OutDegreeHistogram()
	if out[4] != 1 || out[0] != 4 {
		t.Fatalf("out histogram %v", out)
	}
	in := g.InDegreeHistogram()
	if in[0] != 1 || in[1] != 4 {
		t.Fatalf("in histogram %v", in)
	}
}

func TestTopOutDegree(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 0.5}, {0, 2, 0.5}, {0, 3, 0.5}, {1, 2, 0.5}, {1, 3, 0.5}, {2, 3, 0.5}})
	top := g.TopOutDegree(2)
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Fatalf("TopOutDegree = %v", top)
	}
	if got := g.TopOutDegree(10); len(got) != 4 {
		t.Fatal("k > n not clamped")
	}
	if g.TopOutDegree(0) != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestReachableFrom(t *testing.T) {
	g := GenLine(6, 1)
	if got := g.ReachableFrom(2); got != 4 {
		t.Fatalf("ReachableFrom(2) = %d, want 4", got)
	}
	if got := g.ReachableFrom(5); got != 1 {
		t.Fatalf("ReachableFrom(5) = %d, want 1", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := GenRing(5, 0.5)
	s := g.ComputeStats()
	if s.N != 5 || s.M != 5 || s.SCCs != 1 || s.WCCs != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxOutDegree != 1 || s.MaxInDegree != 1 {
		t.Fatalf("stats degrees %+v", s)
	}
	if s.LargestSCC != 5 || s.LargestWCC != 5 {
		t.Fatalf("stats components %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestGenWattsStrogatz(t *testing.T) {
	r := rng.New(2)
	g, err := GenWattsStrogatz(200, 3, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undirected ties: symmetric degrees; roughly 2·k·n directed edges
	// (rewiring collisions may drop a few).
	if g.M() < int64(2*3*200*8/10) {
		t.Fatalf("too few edges: %d", g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if g.InDegree(v) != g.OutDegree(v) {
			t.Fatalf("node %d asymmetric", v)
		}
	}
	// Connected at beta=0 (pure ring lattice).
	g0, err := GenWattsStrogatz(50, 2, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, count := g0.WCC(); count != 1 {
		t.Fatalf("ring lattice has %d WCCs", count)
	}
	if _, err := GenWattsStrogatz(10, 0, 0.5, r); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GenWattsStrogatz(10, 10, 0.5, r); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := GenWattsStrogatz(10, 2, 1.5, r); err == nil {
		t.Error("beta>1 accepted")
	}
}

func TestGenSBM(t *testing.T) {
	r := rng.New(3)
	g, err := GenSBM(SBMParams{Sizes: []int{100, 100, 100}, PIn: 0.08, POut: 0.002}, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count in- vs cross-community edges; the in-community rate must
	// dominate despite fewer candidate pairs.
	within, across := 0, 0
	for _, e := range g.Edges() {
		if e.From/100 == e.To/100 {
			within++
		} else {
			across++
		}
	}
	// Expectations: within ≈ 3·100·99·0.08 ≈ 2376, across ≈ 3·100·200·0.002 = 120.
	if within < 2000 || within > 2800 {
		t.Fatalf("within-community edges %d outside expected band", within)
	}
	if across < 60 || across > 200 {
		t.Fatalf("cross-community edges %d outside expected band", across)
	}
	if _, err := GenSBM(SBMParams{Sizes: []int{0}, PIn: 0.1}, r); err == nil {
		t.Error("zero-size community accepted")
	}
	if _, err := GenSBM(SBMParams{}, r); err == nil {
		t.Error("empty SBM accepted")
	}
	if _, err := GenSBM(SBMParams{Sizes: []int{5}, PIn: 1.5}, r); err == nil {
		t.Error("PIn>1 accepted")
	}
}

func TestGenSBMDenseProbabilityOne(t *testing.T) {
	r := rng.New(4)
	g, err := GenSBM(SBMParams{Sizes: []int{10}, PIn: 1, POut: 0}, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 90 {
		t.Fatalf("PIn=1 single community should be complete: m=%d", g.M())
	}
}

func TestKCoreRing(t *testing.T) {
	// Directed ring: every node has total degree 2 and sits in the
	// 2-core.
	g := GenRing(8, 0.5)
	core := g.KCore()
	for v, c := range core {
		if c != 2 {
			t.Fatalf("ring node %d core %d, want 2", v, c)
		}
	}
}

func TestKCoreStarAndClique(t *testing.T) {
	// A 5-clique (undirected: both directions) with a pendant chain:
	// clique nodes have core 8 (total degree within clique = 2·4),
	// chain nodes peel off at low cores.
	b := NewBuilder(8)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if err := b.AddUndirected(u, v, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, e := range [][2]int32{{4, 5}, {5, 6}, {6, 7}} {
		if err := b.AddUndirected(e[0], e[1], 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	core := g.KCore()
	for v := 0; v < 5; v++ {
		if core[v] != 8 {
			t.Fatalf("clique node %d core %d, want 8", v, core[v])
		}
	}
	if core[7] != 2 {
		t.Fatalf("pendant end core %d, want 2", core[7])
	}
	if core[5] != 2 || core[6] != 2 {
		t.Fatalf("chain cores %d %d, want 2 2", core[5], core[6])
	}
}

func TestKCoreMatchesBruteForce(t *testing.T) {
	// Brute-force core numbers by repeated peeling on a random graph.
	r := rng.New(6)
	g, err := GenErdosRenyi(60, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	fast := g.KCore()
	// Brute force: for each c, repeatedly remove nodes with total
	// degree < c; survivors have core >= c.
	n := g.N()
	totalDeg := func(alive []bool, v int32) int {
		d := 0
		targets, _ := g.OutNeighbors(v)
		for _, w := range targets {
			if alive[w] {
				d++
			}
		}
		sources, _ := g.InNeighbors(v)
		for _, w := range sources {
			if alive[w] {
				d++
			}
		}
		return d
	}
	slow := make([]int, n)
	for c := 1; ; c++ {
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for changed := true; changed; {
			changed = false
			for v := int32(0); v < int32(n); v++ {
				if alive[v] && totalDeg(alive, v) < c {
					alive[v] = false
					changed = true
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				slow[v] = c
				any = true
			}
		}
		if !any {
			break
		}
	}
	for v := 0; v < n; v++ {
		if fast[v] != slow[v] {
			t.Fatalf("node %d: fast core %d, brute force %d", v, fast[v], slow[v])
		}
	}
}
