package graph

import (
	"fmt"
	"math"

	"subsim/internal/rng"
)

// GenWattsStrogatz generates a small-world network: a ring lattice where
// each node connects to its k nearest clockwise neighbours, with every
// edge rewired to a uniform random target with probability beta. Both
// directions of each tie are added (the classic model is undirected).
// Small-world graphs have high clustering and short paths — a useful
// contrast to preferential attachment when studying how community
// structure affects seed selection.
func GenWattsStrogatz(n, k int, beta float64, r *rng.Source) (*Graph, error) {
	if k < 1 || k >= n {
		return nil, fmt.Errorf("graph: Watts-Strogatz needs 1 <= k < n, got k=%d n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graph: rewiring probability %v outside [0,1]", beta)
	}
	b := NewBuilder(n)
	type tie struct{ u, v int32 }
	seen := map[tie]bool{}
	addTie := func(u, v int32) {
		if u == v || seen[tie{u, v}] || seen[tie{v, u}] {
			return
		}
		seen[tie{u, v}] = true
		if err := b.AddUndirected(u, v, 0); err != nil {
			panic(err) // unreachable after the guards above
		}
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if r.Bernoulli(beta) {
				// Rewire: keep u, pick a fresh random target.
				for tries := 0; tries < 32; tries++ {
					w := int32(r.Intn(n))
					if w != int32(u) && !seen[tie{int32(u), w}] && !seen[tie{w, int32(u)}] {
						v = int(w)
						break
					}
				}
			}
			addTie(int32(u), int32(v))
		}
	}
	return b.Build(), nil
}

// SBMParams configures a stochastic block model: Sizes gives the number
// of nodes per community, PIn the directed edge probability within a
// community and POut across communities. SBM graphs carry explicit
// community structure, the regime where certified IM algorithms clearly
// beat degree heuristics.
type SBMParams struct {
	Sizes []int
	PIn   float64
	POut  float64
}

// GenSBM samples a directed stochastic block model. Edge probabilities
// are initialised to 0; assign a weight model afterwards.
//
// Sampling uses geometric skipping over the implicit Bernoulli grid, so
// the cost is proportional to the number of edges generated rather than
// n² — the same subset-sampling idea the paper applies to RR sets.
func GenSBM(p SBMParams, r *rng.Source) (*Graph, error) {
	n := 0
	for i, s := range p.Sizes {
		if s <= 0 {
			return nil, fmt.Errorf("graph: SBM community %d has size %d", i, s)
		}
		n += s
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: SBM needs at least one community")
	}
	if p.PIn < 0 || p.PIn > 1 || p.POut < 0 || p.POut > 1 {
		return nil, fmt.Errorf("graph: SBM probabilities outside [0,1]")
	}
	community := make([]int32, n)
	{
		v := 0
		for c, s := range p.Sizes {
			for i := 0; i < s; i++ {
				community[v] = int32(c)
				v++
			}
		}
	}
	b := NewBuilder(n)
	// For each source node, skip-sample its targets in [0,n) twice: once
	// at rate PIn (accepting same-community targets) and once at POut
	// (accepting cross-community targets). Acceptance filtering keeps
	// the two processes independent and exact.
	sample := func(u int32, prob float64, sameCommunity bool) error {
		if prob <= 0 {
			return nil
		}
		logP := logOneMinus(prob)
		pos := int64(-1)
		for {
			skip := r.GeometricFromLog(logP)
			if skip >= int64(n)-pos {
				return nil
			}
			pos += skip
			v := int32(pos)
			if v == u || (community[v] == community[u]) != sameCommunity {
				continue
			}
			if err := b.AddEdge(u, v, 0); err != nil {
				return err
			}
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if err := sample(u, p.PIn, true); err != nil {
			return nil, err
		}
		if err := sample(u, p.POut, false); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

func logOneMinus(p float64) float64 {
	if p >= 1 {
		return math.Inf(-1)
	}
	return math.Log1p(-p)
}
