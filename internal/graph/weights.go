package graph

import (
	"fmt"
	"math"

	"subsim/internal/rng"
)

// WeightModel identifies the propagation-probability assignment on a
// graph's edges. The models correspond exactly to the experimental
// settings of the paper's Section 7.
type WeightModel int

const (
	// ModelUnset means edge probabilities were supplied explicitly (or
	// never assigned).
	ModelUnset WeightModel = iota
	// ModelWC is the weighted-cascade model: p(u,v) = 1/d_in(v).
	ModelWC
	// ModelWCVariant is the high-influence WC variant of Section 7:
	// p(u,v) = min{1, θ/d_in(v)} for a constant θ ≥ 1.
	ModelWCVariant
	// ModelUniform is the Uniform IC model: every edge has the same
	// probability p.
	ModelUniform
	// ModelExponential draws each edge weight from Exponential(λ=1) and
	// normalises each node's incoming weights to sum to 1.
	ModelExponential
	// ModelWeibull draws each edge weight from Weibull(a,b) with a,b
	// sampled uniformly from [0,10] per edge, then normalises each
	// node's incoming weights to sum to 1.
	ModelWeibull
	// ModelLT marks a linear-threshold assignment: incoming weights of
	// every node sum to at most 1 (here: exactly 1 via WC weights).
	ModelLT
)

// String returns the model name used in experiment output.
func (m WeightModel) String() string {
	switch m {
	case ModelUnset:
		return "unset"
	case ModelWC:
		return "WC"
	case ModelWCVariant:
		return "WC-variant"
	case ModelUniform:
		return "UniformIC"
	case ModelExponential:
		return "Exponential"
	case ModelWeibull:
		return "Weibull"
	case ModelLT:
		return "LT"
	default:
		return fmt.Sprintf("WeightModel(%d)", int(m))
	}
}

// AssignWC sets every edge (u,v) to probability 1/d_in(v), the weighted
// cascade model. Per-node incoming probabilities become equal, enabling
// the geometric-skip fast path.
func (g *Graph) AssignWC() {
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		if lo == hi {
			continue
		}
		p := 1 / float64(hi-lo)
		for i := lo; i < hi; i++ {
			g.setInWeight(i, p)
		}
	}
	g.model = ModelWC
	g.sortedIn = false
	g.detectUniformIn()
}

// AssignWCVariant sets every edge (u,v) to min{1, theta/d_in(v)}, the
// paper's high-influence WC variant. theta must be >= 0; theta == 1
// coincides with plain WC.
func (g *Graph) AssignWCVariant(theta float64) {
	if theta < 0 || math.IsNaN(theta) {
		panic("graph: AssignWCVariant requires theta >= 0")
	}
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		if lo == hi {
			continue
		}
		p := theta / float64(hi-lo)
		if p > 1 {
			p = 1
		}
		for i := lo; i < hi; i++ {
			g.setInWeight(i, p)
		}
	}
	g.model = ModelWCVariant
	g.sortedIn = false
	g.detectUniformIn()
}

// AssignUniform sets every edge to the same probability p (Uniform IC).
func (g *Graph) AssignUniform(p float64) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("graph: AssignUniform requires p in [0,1]")
	}
	for i := int64(0); i < g.m; i++ {
		g.inW[i] = p
	}
	for j := int64(0); j < g.m; j++ {
		g.outW[j] = p
	}
	g.model = ModelUniform
	g.sortedIn = false
	g.detectUniformIn()
}

// AssignExponential draws each edge weight from Exponential(lambda) and
// scales each node's incoming weights to sum to 1, the skewed setting of
// Figure 2. Incoming probabilities become unequal, so generators fall
// back to the general-IC subset samplers.
func (g *Graph) AssignExponential(r *rng.Source, lambda float64) {
	g.assignSkewed(func() float64 { return r.Exponential(lambda) })
	g.model = ModelExponential
}

// AssignWeibull draws each edge weight from Weibull(a,b) with a and b
// sampled uniformly at random from (0,10] per edge (following Tang et
// al. 2015 / the paper's Figure 2 setting) and scales each node's
// incoming weights to sum to 1.
func (g *Graph) AssignWeibull(r *rng.Source) {
	g.assignSkewed(func() float64 {
		a := r.UniformRange(0, 10)
		b := r.UniformRange(0, 10)
		if a <= 0 {
			a = math.SmallestNonzeroFloat64
		}
		if b <= 0 {
			b = math.SmallestNonzeroFloat64
		}
		return r.Weibull(a, b)
	})
	g.model = ModelWeibull
}

// AssignLT sets WC weights and marks the graph for the linear-threshold
// model: Σ_{u∈IN(v)} p(u,v) = 1 for every node with in-edges, the
// precondition of LT RR set generation.
func (g *Graph) AssignLT() {
	g.AssignWC()
	g.model = ModelLT
}

// assignSkewed draws a raw weight per in-edge from draw and normalises
// each node's incoming weights to sum to 1.
func (g *Graph) assignSkewed(draw func() float64) {
	for v := int32(0); v < g.n; v++ {
		lo, hi := g.inOff[v], g.inOff[v+1]
		if lo == hi {
			continue
		}
		var sum float64
		for i := lo; i < hi; i++ {
			w := draw()
			g.inW[i] = w
			sum += w
		}
		if sum <= 0 {
			// Degenerate draw; fall back to equal weights.
			p := 1 / float64(hi-lo)
			for i := lo; i < hi; i++ {
				g.setInWeight(i, p)
			}
			continue
		}
		for i := lo; i < hi; i++ {
			g.setInWeight(i, g.inW[i]/sum)
		}
	}
	g.sortedIn = false
	g.detectUniformIn()
}
