package bench

import (
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// This file calibrates the weight-model parameters of Section 7's
// high-influence experiments: the paper varies the WC-variant constant θ
// (p(u,v) = min{1, θ/d_in}) and the Uniform-IC probability p "such that
// the average size of random RR sets is approximately {50, 400, 1000,
// 4000, 8000, 32000}". The calibrators reproduce that procedure by
// measuring the average RR set size under a candidate parameter and
// bisecting.

// calSamples is the number of RR sets drawn per measurement. Averages
// over a few thousand sets are stable to within a few percent, which is
// all the "approximately" in the paper's setup requires.
const calSamples = 2000

// AvgRRSizeWCVariant measures the average RR set size under the
// WC-variant model with constant theta.
func AvgRRSizeWCVariant(g *graph.Graph, theta float64, seed uint64) float64 {
	g.AssignWCVariant(theta)
	return measureAvgSize(g, seed)
}

// AvgRRSizeUniform measures the average RR set size under Uniform IC
// with probability p.
func AvgRRSizeUniform(g *graph.Graph, p float64, seed uint64) float64 {
	g.AssignUniform(p)
	return measureAvgSize(g, seed)
}

func measureAvgSize(g *graph.Graph, seed uint64) float64 {
	gen := rrset.NewSubsim(g)
	r := rng.New(seed)
	for i := 0; i < calSamples; i++ {
		rrset.GenerateRandom(gen, r, nil)
	}
	return gen.Stats().AvgSize()
}

// CalibrateWCVariant returns a θ whose average RR set size is
// approximately target (within ~10%, or as close as the graph allows —
// the average size cannot exceed n and is at least 1). The graph's weight
// model is left assigned to the returned θ.
func CalibrateWCVariant(g *graph.Graph, target float64, seed uint64) float64 {
	return calibrate(target, 1, func(x float64) float64 {
		return AvgRRSizeWCVariant(g, x, seed)
	})
}

// CalibrateUniform returns a Uniform-IC p whose average RR set size is
// approximately target. The graph's weight model is left assigned to the
// returned p.
func CalibrateUniform(g *graph.Graph, target float64, seed uint64) float64 {
	p := calibrate(target, 1.0/(4*g.AvgDegree()+1), func(x float64) float64 {
		if x > 1 {
			x = 1
		}
		return AvgRRSizeUniform(g, x, seed)
	})
	if p > 1 {
		p = 1
	}
	return p
}

// calibrate finds x with f(x) ≈ target by exponential bracketing followed
// by bisection. f must be (stochastically) increasing in x — true for
// both θ and p, since larger propagation probabilities only enlarge RR
// sets.
func calibrate(target, x0 float64, f func(float64) float64) float64 {
	lo, hi := x0, x0
	val := f(x0)
	if val < target {
		for i := 0; i < 40 && val < target; i++ {
			lo = hi
			hi *= 2
			val = f(hi)
		}
	} else {
		for i := 0; i < 40 && val > target; i++ {
			hi = lo
			lo /= 2
			val = f(lo)
		}
	}
	best, bestErr := hi, diff(f(hi), target)
	for i := 0; i < 18; i++ {
		mid := (lo + hi) / 2
		val = f(mid)
		if e := diff(val, target); e < bestErr {
			best, bestErr = mid, e
		}
		if e := diff(val, target); e < 0.05 {
			return mid
		}
		if val < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return best
}

func diff(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want
	if d < 0 {
		return -d
	}
	return d
}
