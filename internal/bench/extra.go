package bench

import (
	"fmt"
	"io"
	"time"

	"subsim/internal/core"
	"subsim/internal/diffusion"
	"subsim/internal/heuristics"
	"subsim/internal/rrset"
)

// RunHeuristics is an extra experiment (not in the paper): seed quality
// and selection time of the guarantee-free heuristics against the
// paper's SUBSIM configuration, scored by forward Monte-Carlo
// simulation. It quantifies what the certified machinery buys.
func RunHeuristics(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Extra: heuristic seed quality vs SUBSIM (WC, k=%d)", c.FixedK),
		Header: []string{"Dataset", "Strategy", "select time", "spread (MC)", "vs SUBSIM"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		g.AssignWC()
		k := c.FixedK
		if k > g.N() {
			k = g.N()
		}

		opt := c.options(k)
		start := time.Now()
		res, err := core.SUBSIM(g, opt)
		if err != nil {
			return nil, err
		}
		subsimTime := time.Since(start).Seconds()
		ref := diffusion.EstimateParallel(g, res.Seeds, c.MCSamples, diffusion.IC, c.Seed, c.Workers)
		t.AddRow(d.Name, "SUBSIM", Seconds(subsimTime), Cell(ref), "100.0%")

		for _, h := range heuristics.All {
			start := time.Now()
			seeds, err := heuristics.Select(h, g, k)
			if err != nil {
				return nil, err
			}
			selTime := time.Since(start).Seconds()
			spread := diffusion.EstimateParallel(g, seeds, c.MCSamples, diffusion.IC, c.Seed, c.Workers)
			t.AddRow(d.Name, string(h), Seconds(selTime), Cell(spread),
				fmt.Sprintf("%.1f%%", 100*spread/ref))
		}
	}
	return t, t.Fprint(w)
}

// RunGeneratorAblation is an extra experiment: per-RR-set generation
// cost of every kernel across the weight models, isolating the paper's
// Section 3 contribution from the IM chassis.
func RunGeneratorAblation(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Extra: RR generation kernels across weight models (%d sets each)", c.Fig2Sets),
		Header: []string{"Dataset", "Model", "vanilla", "subsim", "bucketed", "bucketed+jump",
			"vanilla edges/set", "subsim edges/set"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		for _, model := range []string{"WC", "WC-variant(2)", "Uniform(avg)", "Exponential"} {
			switch model {
			case "WC":
				g.AssignWC()
			case "WC-variant(2)":
				g.AssignWCVariant(2)
			case "Uniform(avg)":
				g.AssignUniform(1 / g.AvgDegree())
			case "Exponential":
				g.AssignExponential(rngFor(c.Seed), 1)
			}
			gens := []rrset.Generator{
				rrset.NewVanilla(g),
				rrset.NewSubsim(g),
				rrset.NewSubsimBucketed(g, false),
				rrset.NewSubsimBucketed(g, true),
			}
			row := []string{d.Name, model}
			var examined [2]float64
			for i, gen := range gens {
				src := rngFor(c.Seed + 7)
				start := time.Now()
				for s := 0; s < c.Fig2Sets; s++ {
					rrset.GenerateRandom(gen, src, nil)
				}
				row = append(row, Seconds(time.Since(start).Seconds()))
				if i < 2 {
					st := gen.Stats()
					examined[i] = float64(st.EdgesExamined) / float64(st.Sets)
				}
			}
			row = append(row, Cell(examined[0]), Cell(examined[1]))
			t.AddRow(row...)
		}
	}
	return t, t.Fprint(w)
}
