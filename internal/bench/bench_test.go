package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

func TestDatasetGenerate(t *testing.T) {
	for _, d := range QuickDatasets() {
		g, err := d.Generate()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.N() != d.N {
			t.Fatalf("%s: n=%d want %d", d.Name, g.N(), d.N)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
}

func TestDefaultDatasetsScale(t *testing.T) {
	small := DefaultDatasets(0.01)
	full := DefaultDatasets(1)
	if len(small) != 4 || len(full) != 4 {
		t.Fatal("registry should have 4 stand-ins")
	}
	for i := range small {
		if small[i].N >= full[i].N {
			t.Fatalf("scale did not shrink %s", small[i].Name)
		}
		if small[i].N < 32 {
			t.Fatalf("scale floor violated: %d", small[i].N)
		}
	}
	if DefaultDatasets(0)[0].N != full[0].N {
		t.Fatal("scale<=0 should default to 1")
	}
}

func TestCalibrateWCVariant(t *testing.T) {
	g, err := graph.GenPreferentialAttachment(3000, 5, false, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	const target = 150
	theta := CalibrateWCVariant(g, target, 2)
	if theta <= 0 {
		t.Fatalf("theta = %v", theta)
	}
	got := AvgRRSizeWCVariant(g, theta, 3)
	if math.Abs(got-target)/target > 0.35 {
		t.Fatalf("calibrated avg size %v, want ~%v", got, target)
	}
}

func TestCalibrateUniform(t *testing.T) {
	g, err := graph.GenPreferentialAttachment(3000, 5, false, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	const target = 100
	p := CalibrateUniform(g, target, 5)
	if p <= 0 || p > 1 {
		t.Fatalf("p = %v", p)
	}
	got := AvgRRSizeUniform(g, p, 6)
	if math.Abs(got-target)/target > 0.35 {
		t.Fatalf("calibrated avg size %v, want ~%v", got, target)
	}
}

func TestCalibrationMonotonicity(t *testing.T) {
	g, err := graph.GenPreferentialAttachment(2000, 5, false, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	small := AvgRRSizeWCVariant(g, 0.5, 8)
	large := AvgRRSizeWCVariant(g, 4, 8)
	if small >= large {
		t.Fatalf("avg RR size not increasing in theta: %v vs %v", small, large)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCellAndSeconds(t *testing.T) {
	if Cell(0) != "0" || Cell(123.4) != "123" || Cell(1.234) != "1.23" || Cell(0.1234) != "0.1234" {
		t.Fatalf("Cell formatting: %s %s %s %s", Cell(0), Cell(123.4), Cell(1.234), Cell(0.1234))
	}
	if Seconds(12) != "12.0s" || Seconds(0.5) != "0.50s" || Seconds(0.001) != "0.0010s" {
		t.Fatalf("Seconds formatting: %s %s %s", Seconds(12), Seconds(0.5), Seconds(0.001))
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range ExperimentOrder {
		if Experiments[id] == nil {
			t.Fatalf("experiment %s missing", id)
		}
	}
	for _, extra := range []string{"heuristics", "kernels"} {
		if Experiments[extra] == nil {
			t.Fatalf("extra experiment %s missing", extra)
		}
	}
}

func TestExtraExperimentsQuick(t *testing.T) {
	c := QuickConfig()
	c.Workers = 2
	c.Fig2Sets = 1000
	for _, id := range []string{"heuristics", "kernels"} {
		var buf bytes.Buffer
		tab, err := Experiments[id](c, &buf)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

// TestAllExperimentsQuick executes every experiment end-to-end on the
// quick configuration and sanity-checks the produced tables.
func TestAllExperimentsQuick(t *testing.T) {
	c := QuickConfig()
	c.Workers = 2
	for _, id := range ExperimentOrder {
		var buf bytes.Buffer
		tab, err := Experiments[id](c, &buf)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: row width %d != header %d", id, len(row), len(tab.Header))
			}
		}
		if buf.Len() == 0 {
			t.Fatalf("%s printed nothing", id)
		}
	}
}
