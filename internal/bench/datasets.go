// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 7): the dataset registry standing in for Table 2,
// the calibration of the WC-variant θ and Uniform-IC p to hit a target
// average RR set size, and one runner per figure that prints the same
// rows/series the paper reports.
//
// The paper's datasets (Pokec, Orkut, Twitter, Friendster; up to 1.8B
// edges on a 200 GB machine) are replaced by synthetic stand-ins with the
// same directedness and heavy-tailed degree shape at laptop scale; see
// DESIGN.md for the substitution argument. All sizes scale with
// Config.Scale so the suite runs in seconds for tests (Quick) and in
// minutes for full reproduction.
package bench

import (
	"fmt"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

// Dataset describes one synthetic stand-in network.
type Dataset struct {
	// Name of the paper dataset this stands in for.
	Name string
	// Directed reports the edge semantics of the original dataset.
	Directed bool
	// N is the node count.
	N int
	// Deg is the preferential-attachment degree (≈ half the average
	// total degree for undirected graphs).
	Deg int
	// Seed makes the generated graph reproducible.
	Seed uint64
}

// Generate materialises the dataset. Weights are unassigned; callers
// apply the weight model an experiment needs.
func (d Dataset) Generate() (*graph.Graph, error) {
	g, err := graph.GenPreferentialAttachment(d.N, d.Deg, !d.Directed, rng.New(d.Seed))
	if err != nil {
		return nil, fmt.Errorf("bench: dataset %s: %w", d.Name, err)
	}
	return g, nil
}

// DefaultDatasets returns the four Table 2 stand-ins, scaled by scale
// (1.0 ≈ tens of thousands of nodes; the relative sizes mirror the
// paper's Pokec < Orkut < Twitter < Friendster ordering).
func DefaultDatasets(scale float64) []Dataset {
	if scale <= 0 {
		scale = 1
	}
	sz := func(base int) int {
		n := int(float64(base) * scale)
		if n < 32 {
			n = 32
		}
		return n
	}
	return []Dataset{
		{Name: "pokec-sim", Directed: true, N: sz(20000), Deg: 9, Seed: 101},
		{Name: "orkut-sim", Directed: false, N: sz(30000), Deg: 19, Seed: 102},
		{Name: "twitter-sim", Directed: true, N: sz(50000), Deg: 18, Seed: 103},
		{Name: "friendster-sim", Directed: false, N: sz(60000), Deg: 14, Seed: 104},
	}
}

// QuickDatasets returns miniature datasets for unit tests and smoke runs.
func QuickDatasets() []Dataset {
	return []Dataset{
		{Name: "pokec-sim", Directed: true, N: 1500, Deg: 5, Seed: 101},
		{Name: "orkut-sim", Directed: false, N: 2000, Deg: 6, Seed: 102},
	}
}
