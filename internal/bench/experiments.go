package bench

import (
	"fmt"
	"io"
	"time"

	"subsim/internal/core"
	"subsim/internal/coverage"
	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/im"
	"subsim/internal/obs"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// Config parameterises an experiment run. The zero value is not usable;
// start from DefaultConfig or QuickConfig.
type Config struct {
	// Scale multiplies the default dataset sizes.
	Scale float64
	// Reps is the number of repetitions averaged per timing cell (the
	// paper uses 5).
	Reps int
	// Eps and Delta are the approximation parameters (paper: ε=0.1,
	// δ=1/n; Delta 0 selects 1/n per graph).
	Eps   float64
	Delta float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds RR-generation parallelism (0 = GOMAXPROCS).
	Workers int
	// Estimator selects the coverage backend every timed run uses (exact
	// CSR index, or the HLL sketch); SketchPrecision sets the HLL
	// register exponent p (0 = default).
	Estimator       coverage.EstimatorKind
	SketchPrecision int
	// Bound selects the sample-complexity analysis (worst-case IMM/OPIM-C
	// constants, or the tightened variant).
	Bound im.BoundKind
	// Ks is the seed-set size sweep of Figures 1, 4 and 5.
	Ks []int
	// FixedK is the seed-set size of Figures 6 and 7 (paper: 200).
	FixedK int
	// StatsK is the seed-set size of Figure 3 (paper: 2000).
	StatsK int
	// RRTargets is the average-RR-size sweep of Figures 6 and 7
	// (paper: 50, 400, 1000, 4000, 8000, 32000).
	RRTargets []float64
	// HighTarget is the θ₄ₖ-style calibration target of Figures 3-5.
	HighTarget float64
	// Fig2Sets is the number of RR sets generated per kernel in
	// Figure 2 (paper: 2¹⁰ × 1000).
	Fig2Sets int
	// MCSamples is the forward-simulation budget per influence estimate
	// in Figure 5.
	MCSamples int
	// Datasets overrides the default registry when non-nil.
	Datasets []Dataset
	// Tracer, when non-nil, receives one span per experiment cell plus
	// the per-algorithm phase spans and RR metrics of every run it times.
	// Nil disables all instrumentation at zero cost.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives structured run events from every
	// timed run (see obs.Logger); nil is silent at zero cost.
	Logger *obs.Logger
}

// DefaultConfig returns a full-reproduction configuration at laptop
// scale: minutes, not hours.
func DefaultConfig() Config {
	return Config{
		Scale:      1,
		Reps:       3,
		Eps:        0.1,
		Seed:       2020,
		Ks:         []int{1, 10, 50, 100, 200, 500, 1000, 2000},
		FixedK:     200,
		StatsK:     2000,
		RRTargets:  []float64{50, 400, 1000, 4000, 8000, 32000},
		HighTarget: 4000,
		Fig2Sets:   200000,
		MCSamples:  10000,
	}
}

// QuickConfig returns a configuration small enough for unit tests and
// smoke runs (seconds).
func QuickConfig() Config {
	c := DefaultConfig()
	c.Reps = 1
	c.Eps = 0.3
	c.Ks = []int{1, 10, 50}
	c.FixedK = 20
	c.StatsK = 50
	c.RRTargets = []float64{20, 100}
	c.HighTarget = 100
	c.Fig2Sets = 3000
	c.MCSamples = 2000
	c.Datasets = QuickDatasets()
	return c
}

func (c *Config) datasets() []Dataset {
	if c.Datasets != nil {
		return c.Datasets
	}
	return DefaultDatasets(c.Scale)
}

func (c *Config) options(k int) im.Options {
	return im.Options{K: k, Eps: c.Eps, Delta: c.Delta, Seed: c.Seed, Workers: c.Workers,
		Estimator: c.Estimator, SketchPrecision: c.SketchPrecision, Bound: c.Bound,
		Tracer: c.Tracer, Logger: c.Logger}
}

// highTarget caps the θ₄ₖ-style calibration target so it stays a feasible
// average RR size for a graph of n nodes (the paper's datasets have
// millions of nodes, so 4000 is always feasible there).
func (c *Config) highTarget(n int) float64 {
	t := c.HighTarget
	if cap := float64(n) / 5; t > cap {
		t = cap
	}
	if t < 1 {
		t = 1
	}
	return t
}

// timeAlg runs f Reps times and returns the average wall-clock seconds
// and the last result.
func (c *Config) timeAlg(f func(seed uint64) (*im.Result, error)) (float64, *im.Result, error) {
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	var last *im.Result
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		res, err := f(c.Seed + uint64(rep))
		if err != nil {
			return 0, nil, err
		}
		total += time.Since(start)
		last = res
	}
	return total.Seconds() / float64(reps), last, nil
}

// RunTable2 prints the dataset summary (paper Table 2).
func RunTable2(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  "Table 2: summary of datasets (synthetic stand-ins)",
		Header: []string{"Dataset", "Type", "n", "m", "avg deg"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		typ := "directed"
		if !d.Directed {
			typ = "undirected"
		}
		t.AddRow(d.Name, typ, fmt.Sprint(g.N()), fmt.Sprint(g.M()), Cell(g.AvgDegree()))
	}
	return t, t.Fprint(w)
}

// fig1Algorithms are the Figure 1 series in the paper's order.
var fig1Algorithms = []struct {
	name string
	run  func(g *graph.Graph, opt im.Options) (*im.Result, error)
}{
	{"IMM", func(g *graph.Graph, opt im.Options) (*im.Result, error) {
		return im.IMM(rrset.NewVanilla(g), opt)
	}},
	{"SSA", func(g *graph.Graph, opt im.Options) (*im.Result, error) {
		return im.SSA(rrset.NewVanilla(g), opt)
	}},
	{"OPIM-C", func(g *graph.Graph, opt im.Options) (*im.Result, error) {
		return im.OPIMC(rrset.NewVanilla(g), opt)
	}},
	{"SUBSIM", core.SUBSIM},
}

// RunFig1 reproduces Figure 1: running time under the WC model as k
// varies, for IMM, SSA, OPIM-C and SUBSIM on every dataset.
func RunFig1(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  "Figure 1: running time (s) under WC, varying k",
		Header: []string{"Dataset", "k", "IMM", "SSA", "OPIM-C", "SUBSIM"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		g.AssignWC()
		for _, k := range c.Ks {
			if k > g.N() {
				continue
			}
			row := []string{d.Name, fmt.Sprint(k)}
			for _, alg := range fig1Algorithms {
				secs, _, err := c.timeAlg(func(seed uint64) (*im.Result, error) {
					opt := c.options(k)
					opt.Seed = seed
					return alg.run(g, opt)
				})
				if err != nil {
					return nil, fmt.Errorf("%s/%s k=%d: %w", d.Name, alg.name, k, err)
				}
				row = append(row, Seconds(secs))
			}
			t.AddRow(row...)
		}
	}
	return t, t.Fprint(w)
}

// RunFig2 reproduces Figure 2: the cost of generating a fixed number of
// random RR sets under skewed (Exponential and Weibull) edge weights,
// for the vanilla generator and the SUBSIM kernels.
func RunFig2(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 2: time (s) to generate %d RR sets under skewed weights", c.Fig2Sets),
		Header: []string{"Dataset", "Distribution", "vanilla", "SUBSIM(index-free)",
			"SUBSIM(bucket)", "SUBSIM(bucket+jump)", "speedup"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		for _, dist := range []string{"Exponential", "Weibull"} {
			r := rng.New(c.Seed)
			if dist == "Exponential" {
				g.AssignExponential(r, 1)
			} else {
				g.AssignWeibull(r)
			}
			gens := []struct {
				name string
				gen  rrset.Generator
			}{
				{"vanilla", rrset.NewVanilla(g)},
				{"index-free", rrset.NewSubsim(g)},
				{"bucket", rrset.NewSubsimBucketed(g, false)},
				{"bucket+jump", rrset.NewSubsimBucketed(g, true)},
			}
			times := make([]float64, len(gens))
			for i, gk := range gens {
				src := rng.New(c.Seed + 7)
				start := time.Now()
				for s := 0; s < c.Fig2Sets; s++ {
					rrset.GenerateRandom(gk.gen, src, nil)
				}
				times[i] = time.Since(start).Seconds()
			}
			speedup := times[0] / times[1]
			t.AddRow(d.Name, dist, Seconds(times[0]), Seconds(times[1]),
				Seconds(times[2]), Seconds(times[3]), fmt.Sprintf("%.1fx", speedup))
		}
	}
	return t, t.Fprint(w)
}

// RunFig3 reproduces Figure 3: RR set statistics of HIST vs OPIM-C under
// the WC-variant θ₄ₖ setting with k = StatsK — (a) the number of RR sets
// in HIST's sentinel phase vs OPIM-C's total, and (b) the average RR set
// size of both.
func RunFig3(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 3: RR set statistics (WC variant θ_%v, k=%d)", c.HighTarget, c.StatsK),
		Header: []string{"Dataset", "theta", "HIST sentinel #RR", "OPIM-C #RR",
			"HIST avg |R|", "OPIM-C avg |R|", "size reduction"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		if c.StatsK > g.N() {
			continue
		}
		theta := CalibrateWCVariant(g, c.highTarget(g.N()), c.Seed)
		opt := c.options(c.StatsK)
		histRes, err := core.HIST(rrset.NewVanilla(g), opt)
		if err != nil {
			return nil, err
		}
		opimRes, err := im.OPIMC(rrset.NewVanilla(g), opt)
		if err != nil {
			return nil, err
		}
		red := opimRes.RRStats.AvgSize() / histRes.RRStats.AvgSize()
		t.AddRow(d.Name, Cell(theta),
			fmt.Sprint(histRes.SentinelRR), fmt.Sprint(opimRes.RRStats.Sets),
			Cell(histRes.RRStats.AvgSize()), Cell(opimRes.RRStats.AvgSize()),
			fmt.Sprintf("%.1fx", red))
	}
	return t, t.Fprint(w)
}

// highInfluenceAlgorithms are the Figure 4/6/7 series.
var highInfluenceAlgorithms = []struct {
	name string
	run  func(g *graph.Graph, opt im.Options) (*im.Result, error)
}{
	{"OPIM-C", func(g *graph.Graph, opt im.Options) (*im.Result, error) {
		return im.OPIMC(rrset.NewVanilla(g), opt)
	}},
	{"HIST", func(g *graph.Graph, opt im.Options) (*im.Result, error) {
		return core.HIST(rrset.NewVanilla(g), opt)
	}},
	{"HIST+SUBSIM", func(g *graph.Graph, opt im.Options) (*im.Result, error) {
		return core.HIST(rrset.NewSubsim(g), opt)
	}},
}

// RunFig4 reproduces Figure 4: running time under the WC-variant θ₄ₖ
// setting as k varies, for OPIM-C, HIST and HIST+SUBSIM.
func RunFig4(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 4: running time (s) under WC variant θ_%v, varying k", c.HighTarget),
		Header: []string{"Dataset", "k", "OPIM-C", "HIST", "HIST+SUBSIM"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		CalibrateWCVariant(g, c.highTarget(g.N()), c.Seed)
		for _, k := range c.Ks {
			if k > g.N() {
				continue
			}
			row := []string{d.Name, fmt.Sprint(k)}
			for _, alg := range highInfluenceAlgorithms {
				secs, _, err := c.timeAlg(func(seed uint64) (*im.Result, error) {
					opt := c.options(k)
					opt.Seed = seed
					return alg.run(g, opt)
				})
				if err != nil {
					return nil, fmt.Errorf("%s/%s k=%d: %w", d.Name, alg.name, k, err)
				}
				row = append(row, Seconds(secs))
			}
			t.AddRow(row...)
		}
	}
	return t, t.Fprint(w)
}

// RunFig5 reproduces Figure 5: the expected influence (forward
// Monte-Carlo estimate) of HIST+SUBSIM's seed set as k grows, under the
// WC-variant θ₄ₖ setting.
func RunFig5(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 5: expected influence under WC variant θ_%v, varying k", c.HighTarget),
		Header: []string{"Dataset", "k", "influence (MC)", "certified lower bound"},
	}
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return nil, err
		}
		CalibrateWCVariant(g, c.highTarget(g.N()), c.Seed)
		for _, k := range c.Ks {
			if k > g.N() {
				continue
			}
			res, err := core.HIST(rrset.NewSubsim(g), c.options(k))
			if err != nil {
				return nil, err
			}
			spread := diffusion.EstimateParallel(g, res.Seeds, c.MCSamples, diffusion.IC, c.Seed, c.Workers)
			t.AddRow(d.Name, fmt.Sprint(k), Cell(spread), Cell(res.LowerBound))
		}
	}
	return t, t.Fprint(w)
}

// RunFig6 reproduces Figure 6: running time at k = FixedK as the
// WC-variant θ is swept so the average RR set size crosses RRTargets.
func RunFig6(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 6: running time (s) under WC variant, k=%d, varying avg RR size", c.FixedK),
		Header: []string{"Dataset", "target |R|", "theta", "OPIM-C", "HIST", "HIST+SUBSIM"},
	}
	return t, c.runSizeSweep(t, w, false)
}

// RunFig7 reproduces Figure 7: running time at k = FixedK as the
// Uniform-IC p is swept so the average RR set size crosses RRTargets.
func RunFig7(c Config, w io.Writer) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: running time (s) under Uniform IC, k=%d, varying avg RR size", c.FixedK),
		Header: []string{"Dataset", "target |R|", "p", "OPIM-C", "HIST", "HIST+SUBSIM"},
	}
	return t, c.runSizeSweep(t, w, true)
}

func (c *Config) runSizeSweep(t *Table, w io.Writer, uniform bool) error {
	for _, d := range c.datasets() {
		g, err := d.Generate()
		if err != nil {
			return err
		}
		for _, target := range c.RRTargets {
			if target > float64(g.N())/2 {
				continue // the graph cannot sustain this average size
			}
			var param float64
			if uniform {
				param = CalibrateUniform(g, target, c.Seed)
			} else {
				param = CalibrateWCVariant(g, target, c.Seed)
			}
			row := []string{d.Name, Cell(target), Cell(param)}
			for _, alg := range highInfluenceAlgorithms {
				secs, _, err := c.timeAlg(func(seed uint64) (*im.Result, error) {
					opt := c.options(c.FixedK)
					opt.Seed = seed
					return alg.run(g, opt)
				})
				if err != nil {
					return fmt.Errorf("%s/%s target=%v: %w", d.Name, alg.name, target, err)
				}
				row = append(row, Seconds(secs))
			}
			t.AddRow(row...)
		}
	}
	return t.Fprint(w)
}

// Experiments maps experiment ids to runners, for the imbench CLI.
var Experiments = map[string]func(Config, io.Writer) (*Table, error){
	"table2":     RunTable2,
	"fig1":       RunFig1,
	"fig2":       RunFig2,
	"fig3":       RunFig3,
	"fig4":       RunFig4,
	"fig5":       RunFig5,
	"fig6":       RunFig6,
	"fig7":       RunFig7,
	"heuristics": RunHeuristics,
	"kernels":    RunGeneratorAblation,
}

// ExperimentOrder lists the paper's experiments in presentation order;
// "heuristics" and "kernels" are extra ablations run on request only.
var ExperimentOrder = []string{"table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"}

// rngFor returns a fresh RNG stream for ad-hoc harness use.
func rngFor(seed uint64) *rng.Source { return rng.New(seed) }
