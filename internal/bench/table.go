package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a printable experiment result: one header row and any number
// of data rows, rendered with aligned columns. Experiment runners return
// Tables so tests can assert on their contents and the CLI can print
// them.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one data row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		underline := make([]string, len(t.Header))
		for i, h := range t.Header {
			underline[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(underline, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Cell formats a float with three significant-ish decimals, trimming
// noise for table output.
func Cell(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Seconds formats a duration in seconds with adaptive precision.
func Seconds(s float64) string {
	switch {
	case s >= 10:
		return fmt.Sprintf("%.1fs", s)
	case s >= 0.1:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.4fs", s)
	}
}
