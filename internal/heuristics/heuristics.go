// Package heuristics implements the classic guarantee-free seed
// selection heuristics that predate (and are routinely compared against)
// the RR-set algorithms: plain degree, SingleDiscount and DegreeDiscount
// (Chen, Wang & Yang, KDD 2009), PageRank, and a one-hop expected
// influence score in the spirit of IRIE's first iteration. The paper's
// related work (Section 6) surveys this line; benchmarking studies such
// as Arora et al. (SIGMOD 2017) use exactly these baselines.
//
// Heuristics are fast — linear or near-linear — but provide no
// approximation guarantee; the tests and benchmarks in this repository
// use them as quality floors for the certified algorithms.
package heuristics

import (
	"container/heap"
	"fmt"
	"sort"

	"subsim/internal/graph"
)

// Degree returns the k nodes with the highest out-degree.
func Degree(g *graph.Graph, k int) []int32 {
	return g.TopOutDegree(k)
}

// SingleDiscount is degree selection where, whenever a seed is chosen,
// every node with an edge INTO that seed loses one degree — that edge
// can no longer activate anyone new (Chen et al. 2009, adapted to
// directed graphs).
func SingleDiscount(g *graph.Graph, k int) []int32 {
	n := g.N()
	if k > n {
		k = n
	}
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		score[v] = float64(g.OutDegree(int32(v)))
	}
	return discountLoop(g, k, score, func(seed int32, score []float64) {
		sources, _ := g.InNeighbors(seed)
		for _, w := range sources {
			score[w]--
		}
	})
}

// DegreeDiscount is the IC-aware discount of Chen et al. (2009),
// originally derived for Uniform IC with probability p: once t_v of v's
// out-neighbors are seeds, v's residual value is
// d_v - 2t_v - (d_v - t_v)·t_v·p. Here t_v is accumulated with each
// wasted edge's own probability, which reduces to the classic formula
// under Uniform IC.
func DegreeDiscount(g *graph.Graph, k int) []int32 {
	n := g.N()
	if k > n {
		k = n
	}
	deg := make([]float64, n)
	seedNbrs := make([]float64, n) // t_v: probability-weighted seeds among v's out-neighbors
	score := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.OutDegree(int32(v)))
		score[v] = deg[v]
	}
	return discountLoop(g, k, score, func(seed int32, score []float64) {
		sources, probs := g.InNeighbors(seed)
		for i, w := range sources {
			seedNbrs[w] += probs[i]
			t := seedNbrs[w]
			score[w] = deg[w] - 2*t - (deg[w]-t)*t
			if score[w] < 0 {
				score[w] = 0
			}
		}
	})
}

// discountLoop runs lazy max-selection with a score array that only
// decreases, using a heap of stale entries (same pattern as CELF).
func discountLoop(g *graph.Graph, k int, score []float64, discount func(seed int32, score []float64)) []int32 {
	h := &scoreHeap{}
	h.entries = make([]scoreEntry, 0, len(score))
	for v, s := range score {
		h.entries = append(h.entries, scoreEntry{score: s, node: int32(v)})
	}
	heap.Init(h)
	chosen := make([]bool, len(score))
	seeds := make([]int32, 0, k)
	for len(seeds) < k && h.Len() > 0 {
		e := heap.Pop(h).(scoreEntry)
		if chosen[e.node] {
			continue
		}
		if e.score > score[e.node] {
			// Stale: reinsert with the current (lower) score.
			e.score = score[e.node]
			heap.Push(h, e)
			continue
		}
		chosen[e.node] = true
		seeds = append(seeds, e.node)
		discount(e.node, score)
	}
	return seeds
}

type scoreEntry struct {
	score float64
	node  int32
}

type scoreHeap struct{ entries []scoreEntry }

func (h *scoreHeap) Len() int { return len(h.entries) }
func (h *scoreHeap) Less(i, j int) bool {
	if h.entries[i].score != h.entries[j].score {
		return h.entries[i].score > h.entries[j].score
	}
	return h.entries[i].node < h.entries[j].node
}
func (h *scoreHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *scoreHeap) Push(v any)    { h.entries = append(h.entries, v.(scoreEntry)) }
func (h *scoreHeap) Pop() any {
	old := h.entries
	n := len(old)
	v := old[n-1]
	h.entries = old[:n-1]
	return v
}

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	// Damping is the teleport complement α (default 0.85).
	Damping float64
	// Iterations bounds the power iterations (default 50).
	Iterations int
	// Tolerance stops early once the L1 change falls below it
	// (default 1e-9).
	Tolerance float64
}

// PageRank computes PageRank scores over the REVERSE graph — influence
// flows along out-edges, so a node is influential when many reachable
// nodes point back to it in the reverse view — and returns the k
// top-ranked nodes. (Using reverse PageRank for IM follows standard
// practice in the IM benchmarking literature.)
func PageRank(g *graph.Graph, k int, opt PageRankOptions) []int32 {
	if opt.Damping <= 0 || opt.Damping >= 1 {
		opt.Damping = 0.85
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 50
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-9
	}
	n := g.N()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for v := range rank {
		rank[v] = inv
	}
	for iter := 0; iter < opt.Iterations; iter++ {
		var dangling float64
		for v := range next {
			next[v] = 0
		}
		// Reverse propagation: v's rank flows to its in-neighbors,
		// split by v's in-degree.
		for v := int32(0); v < int32(n); v++ {
			sources, _ := g.InNeighbors(v)
			if len(sources) == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(len(sources))
			for _, u := range sources {
				next[u] += share
			}
		}
		var delta float64
		base := (1-opt.Damping)*inv + opt.Damping*dangling*inv
		for v := range next {
			nv := base + opt.Damping*next[v]
			d := nv - rank[v]
			if d < 0 {
				d = -d
			}
			delta += d
			rank[v] = nv
		}
		if delta < opt.Tolerance {
			break
		}
	}
	return topK(rank, k)
}

// OneHop scores each node by its expected one-step influence
// 1 + Σ p(v,w) over out-edges — the first iteration of IRIE's influence
// ranking — and returns the k top-scored nodes.
func OneHop(g *graph.Graph, k int) []int32 {
	n := g.N()
	score := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		_, probs := g.OutNeighbors(v)
		s := 1.0
		for _, p := range probs {
			s += p
		}
		score[v] = s
	}
	return topK(score, k)
}

// Core scores each node by its k-core number (ties broken by
// out-degree, then id) and returns the k top-scored nodes. Core numbers
// identify densely connected regions and are a robust influence proxy
// when degree alone is misleading.
func Core(g *graph.Graph, k int) []int32 {
	core := g.KCore()
	n := g.N()
	score := make([]float64, n)
	var maxDeg float64 = 1
	for v := 0; v < n; v++ {
		if d := float64(g.OutDegree(int32(v))); d >= maxDeg {
			maxDeg = d + 1
		}
	}
	for v := 0; v < n; v++ {
		// Core dominates; out-degree breaks ties within a shell.
		score[v] = float64(core[v])*maxDeg + float64(g.OutDegree(int32(v)))
	}
	return topK(score, k)
}

// topK returns the indices of the k largest scores, descending (ties by
// id ascending).
func topK(score []float64, k int) []int32 {
	n := len(score)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if score[nodes[i]] != score[nodes[j]] {
			return score[nodes[i]] > score[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	return nodes[:k]
}

// Name identifies a heuristic for CLI and experiment registries.
type Name string

// Known heuristics.
const (
	NameDegree         Name = "degree"
	NameSingleDiscount Name = "singlediscount"
	NameDegreeDiscount Name = "degreediscount"
	NamePageRank       Name = "pagerank"
	NameOneHop         Name = "onehop"
	NameCore           Name = "core"
)

// Select runs the named heuristic.
func Select(name Name, g *graph.Graph, k int) ([]int32, error) {
	switch name {
	case NameDegree:
		return Degree(g, k), nil
	case NameSingleDiscount:
		return SingleDiscount(g, k), nil
	case NameDegreeDiscount:
		return DegreeDiscount(g, k), nil
	case NamePageRank:
		return PageRank(g, k, PageRankOptions{}), nil
	case NameOneHop:
		return OneHop(g, k), nil
	case NameCore:
		return Core(g, k), nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
	}
}

// All lists the known heuristics in presentation order.
var All = []Name{NameDegree, NameSingleDiscount, NameDegreeDiscount, NamePageRank, NameOneHop, NameCore}
