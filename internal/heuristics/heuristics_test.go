package heuristics

import (
	"testing"

	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/rng"
)

func paGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferentialAttachment(2000, 5, false, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	return g
}

func TestAllHeuristicsReturnKDistinctSeeds(t *testing.T) {
	g := paGraph(t)
	for _, name := range All {
		seeds, err := Select(name, g, 25)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(seeds) != 25 {
			t.Fatalf("%s: %d seeds", name, len(seeds))
		}
		seen := map[int32]bool{}
		for _, s := range seeds {
			if s < 0 || int(s) >= g.N() || seen[s] {
				t.Fatalf("%s: bad seed %d in %v", name, s, seeds)
			}
			seen[s] = true
		}
	}
}

func TestSelectUnknown(t *testing.T) {
	g := paGraph(t)
	if _, err := Select("nope", g, 5); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestStarGraphAllPickCentre(t *testing.T) {
	g := graph.GenStar(100, 0.5)
	for _, name := range All {
		seeds, err := Select(name, g, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if seeds[0] != 0 {
			t.Fatalf("%s picked %d on a star", name, seeds[0])
		}
	}
}

func TestDegreeMatchesTopOutDegree(t *testing.T) {
	g := paGraph(t)
	a := Degree(g, 10)
	b := g.TopOutDegree(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("degree heuristic deviates at %d", i)
		}
	}
}

// TestDiscountsAvoidWastedEdges: after the top hub is chosen, a
// runner-up whose edges point into the chosen seed is worth less than a
// fresh hub of equal degree — the discounts must see that, while plain
// degree (ties by id) falls into the trap.
func TestDiscountsAvoidWastedEdges(t *testing.T) {
	// Hub 0: out-edges to leaves 3..12 (degree 10, picked first).
	// Node 1: out-edges to 0 and to leaves 13..20 (degree 9, one edge
	// wasted on the seed).
	// Node 2: out-edges to fresh leaves 21..29 (degree 9, nothing
	// wasted).
	b := graph.NewBuilder(30)
	addEdge := func(u, v int32) {
		t.Helper()
		if err := b.AddEdge(u, v, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for leaf := int32(3); leaf < 13; leaf++ {
		addEdge(0, leaf)
	}
	addEdge(1, 0)
	for leaf := int32(13); leaf < 21; leaf++ {
		addEdge(1, leaf)
	}
	for leaf := int32(21); leaf < 30; leaf++ {
		addEdge(2, leaf)
	}
	g := b.Build()
	for _, name := range []Name{NameSingleDiscount, NameDegreeDiscount} {
		seeds, err := Select(name, g, 2)
		if err != nil {
			t.Fatal(err)
		}
		if seeds[0] != 0 || seeds[1] != 2 {
			t.Fatalf("%s picked %v, want [0 2]", name, seeds)
		}
	}
	// Plain degree ties 1 and 2 at degree 9 and picks the smaller id.
	plain := Degree(g, 2)
	if plain[0] != 0 || plain[1] != 1 {
		t.Fatalf("degree heuristic picked %v", plain)
	}
}

func TestPageRankRing(t *testing.T) {
	// On a symmetric ring every node has identical rank; ties resolve by
	// id, so the first k ids are returned.
	g := graph.GenRing(10, 0.5)
	seeds := PageRank(g, 3, PageRankOptions{})
	want := []int32{0, 1, 2}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("PageRank on ring picked %v", seeds)
		}
	}
}

func TestPageRankDefaultsAndEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if PageRank(g, 3, PageRankOptions{Damping: 7, Iterations: -1, Tolerance: -1}) != nil {
		t.Fatal("empty graph should return nil")
	}
}

func TestOneHopScores(t *testing.T) {
	// OneHop = 1 + Σ out-probabilities: node 0 has 0.9, node 1 has 0.5.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	seeds := OneHop(g, 2)
	if seeds[0] != 0 || seeds[1] != 1 {
		t.Fatalf("OneHop picked %v", seeds)
	}
}

// TestHeuristicsBeatRandom is the quality floor: every heuristic's
// simulated spread must exceed a random seed set's on a scale-free
// graph.
func TestHeuristicsBeatRandom(t *testing.T) {
	g := paGraph(t)
	random := []int32{100, 300, 500, 700, 900, 1100, 1300, 1500, 1700, 1900}
	randSpread := diffusion.EstimateParallel(g, random, 20000, diffusion.IC, 1, 2)
	for _, name := range All {
		seeds, err := Select(name, g, 10)
		if err != nil {
			t.Fatal(err)
		}
		spread := diffusion.EstimateParallel(g, seeds, 20000, diffusion.IC, 1, 2)
		if spread <= randSpread {
			t.Errorf("%s spread %v not above random %v", name, spread, randSpread)
		}
	}
}

func TestKClamping(t *testing.T) {
	g := graph.GenStar(5, 0.5)
	for _, name := range All {
		seeds, err := Select(name, g, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(seeds) != 5 {
			t.Fatalf("%s: k>n returned %d seeds", name, len(seeds))
		}
	}
}

func TestCoreHeuristic(t *testing.T) {
	// A 4-clique plus a star hub: the hub has the highest degree but
	// core 1; Core must prefer the clique.
	b := graph.NewBuilder(20)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddUndirected(u, v, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	for leaf := int32(5); leaf < 20; leaf++ {
		if err := b.AddEdge(4, leaf, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	seeds := Core(g, 1)
	if seeds[0] == 4 {
		t.Fatalf("core heuristic picked the shallow hub")
	}
	if seeds[0] >= 4 {
		t.Fatalf("core heuristic picked %d, want a clique member", seeds[0])
	}
}
