// Package oracle implements the influence oracle of Borgs et al. (2014):
// a one-time collection of random RR sets that afterwards answers
// expected-influence queries for arbitrary seed sets in time proportional
// to the seeds' inverted lists — no further sampling. Where the IM
// algorithms in internal/im grow their collections adaptively to certify
// one seed set, the oracle fixes θ up front to serve many queries, each
// with a confidence interval from the paper's Equations (1) and (2).
package oracle

import (
	"fmt"
	"math"

	"subsim/internal/bounds"
	"subsim/internal/coverage"
	"subsim/internal/im"
	"subsim/internal/rrset"
)

// Oracle answers influence queries over a fixed RR collection. Build one
// with New or NewWithPrecision. The zero value is not usable.
//
// The collection lives in the flat arena-backed coverage.Index (CSR
// store + CSR inverted index), so construction performs no per-set heap
// allocation and queries walk contiguous posting lists.
//
// Oracle queries mutate a small amount of scratch state and are NOT safe
// for concurrent use; guard with a mutex or build one oracle per
// goroutine (sharing the generator's graph).
type Oracle struct {
	n     int
	theta int64
	idx   *coverage.Index
	stats rrset.Stats

	seedBuf []int32 // reusable, bounds-filtered copy of query seeds
}

// New builds an oracle from theta random RR sets drawn through gen,
// using `workers` parallel generators (0 = GOMAXPROCS).
func New(gen rrset.Generator, theta int64, seed uint64, workers int) (*Oracle, error) {
	if theta < 1 {
		return nil, fmt.Errorf("oracle: theta must be positive, got %d", theta)
	}
	g := gen.Graph()
	o := &Oracle{
		n:     g.N(),
		theta: theta,
		idx:   coverage.NewIndex(g.N(), nil),
	}
	o.idx.SetWorkers(workers)
	b := im.NewBatcher(gen, seed, workers)
	b.FillIndex(o.idx, int(theta), nil)
	o.stats = b.Stats()
	return o, nil
}

// NewWithPrecision sizes the collection so that any fixed seed set with
// expected influence at least iMin is estimated within relative error
// eps with probability 1-delta (per query), following the Monte-Carlo
// bound of Dagum et al.: θ ≥ 3n·ln(2/δ)/(ε²·iMin).
func NewWithPrecision(gen rrset.Generator, eps, delta, iMin float64, seed uint64, workers int) (*Oracle, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("oracle: eps %v outside (0,1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("oracle: delta %v outside (0,1)", delta)
	}
	n := float64(gen.Graph().N())
	if iMin < 1 {
		iMin = 1
	}
	theta := int64(math.Ceil(3 * n * math.Log(2/delta) / (eps * eps * iMin)))
	return New(gen, theta, seed, workers)
}

// Theta returns the number of RR sets backing the oracle.
func (o *Oracle) Theta() int64 { return o.theta }

// Stats returns the generation cost of the backing collection.
func (o *Oracle) Stats() rrset.Stats { return o.stats }

// Coverage returns Λ(S), the number of backing RR sets the seed set
// intersects. Out-of-range node ids are ignored.
func (o *Oracle) Coverage(seeds []int32) int64 {
	o.seedBuf = o.seedBuf[:0]
	for _, v := range seeds {
		if v < 0 || int(v) >= o.n {
			continue
		}
		o.seedBuf = append(o.seedBuf, v)
	}
	return o.idx.CoverageOf(o.seedBuf)
}

// Estimate returns the unbiased point estimate n·Λ(S)/θ of the expected
// influence of the seed set.
func (o *Oracle) Estimate(seeds []int32) float64 {
	return float64(o.Coverage(seeds)) * float64(o.n) / float64(o.theta)
}

// Interval returns a (1-delta)-confidence interval for the expected
// influence of the (fixed, query-independent) seed set, splitting delta
// evenly between the lower and upper tails.
func (o *Oracle) Interval(seeds []int32, delta float64) (lo, hi float64) {
	cov := o.Coverage(seeds)
	lo = bounds.LowerBound(cov, o.theta, o.n, delta/2)
	hi = bounds.UpperBound(cov, o.theta, o.n, delta/2)
	return lo, hi
}
