package oracle

import (
	"math"
	"testing"

	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

func oracleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferentialAttachment(2000, 5, false, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	return g
}

func TestOracleMatchesForwardMC(t *testing.T) {
	g := oracleGraph(t)
	o, err := New(rrset.NewSubsim(g), 60000, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, seeds := range [][]int32{{0}, {1, 2, 3}, {10, 500, 900, 1500}} {
		est := o.Estimate(seeds)
		fwd := diffusion.EstimateParallel(g, seeds, 40000, diffusion.IC, 2, 2)
		if math.Abs(est-fwd) > 0.08*fwd+1.5 {
			t.Fatalf("seeds %v: oracle %v vs forward %v", seeds, est, fwd)
		}
		lo, hi := o.Interval(seeds, 0.01)
		if lo > est || hi < est {
			t.Fatalf("interval [%v,%v] excludes the point estimate %v", lo, hi, est)
		}
		if lo > fwd+2 || hi < fwd-2 {
			t.Fatalf("interval [%v,%v] excludes the truth %v", lo, hi, fwd)
		}
	}
}

func TestOracleValidation(t *testing.T) {
	g := oracleGraph(t)
	if _, err := New(rrset.NewVanilla(g), 0, 1, 1); err == nil {
		t.Error("theta=0 accepted")
	}
	if _, err := NewWithPrecision(rrset.NewVanilla(g), 0, 0.1, 10, 1, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewWithPrecision(rrset.NewVanilla(g), 0.5, 0, 10, 1, 1); err == nil {
		t.Error("delta=0 accepted")
	}
}

func TestOraclePrecisionSizing(t *testing.T) {
	g := oracleGraph(t)
	o, err := NewWithPrecision(rrset.NewVanilla(g), 0.5, 0.1, 100, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantTheta := int64(math.Ceil(3 * float64(g.N()) * math.Log(20) / (0.25 * 100)))
	if o.Theta() != wantTheta {
		t.Fatalf("theta = %d, want %d", o.Theta(), wantTheta)
	}
	if o.Stats().Sets != wantTheta {
		t.Fatalf("stats sets %d", o.Stats().Sets)
	}
}

func TestOracleCoverageMonotone(t *testing.T) {
	g := oracleGraph(t)
	o, err := New(rrset.NewVanilla(g), 5000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	small := o.Coverage([]int32{0})
	large := o.Coverage([]int32{0, 1, 2, 3, 4})
	if large < small {
		t.Fatalf("coverage not monotone: %d < %d", large, small)
	}
	// Out-of-range seeds are ignored, not fatal.
	if got := o.Coverage([]int32{-5, 1 << 20}); got != 0 {
		t.Fatalf("out-of-range coverage %d", got)
	}
	// Duplicate seeds count once.
	if o.Coverage([]int32{0, 0, 0}) != small {
		t.Fatal("duplicates double counted")
	}
}

func TestOracleEmptySeeds(t *testing.T) {
	g := oracleGraph(t)
	o, err := New(rrset.NewVanilla(g), 100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Estimate(nil) != 0 {
		t.Fatal("empty seed set has nonzero estimate")
	}
	lo, hi := o.Interval(nil, 0.1)
	if lo != 0 || hi <= 0 {
		t.Fatalf("empty interval [%v,%v]", lo, hi)
	}
}
