// Package lintpass is the repository's project-invariant static-analysis
// driver: a small, stdlib-only analyzer framework (go/ast + go/types, no
// golang.org/x/tools dependency) plus the nine project-specific analyzers
// that machine-enforce the conventions the test suite certifies but
// nothing previously checked at the source level:
//
//   - nodeterminism: algorithm packages draw randomness only through
//     internal/rng and never read the wall clock (TestPipelineEquivalence
//     certifies byte-identical RR sets across worker counts; a stray
//     math/rand or time.Now silently breaks that property).
//   - hotpath-alloc: functions annotated //subsim:hotpath must stay free
//     of interface boxing, capturing closures, appends to unsized local
//     slices, and fmt calls (the arena pipeline's 0 allocs/set contract).
//   - niltracer: exported functions accepting the obs tracer/metric types
//     must be provably nil-safe before the first dereference (the
//     nil-tracer zero-overhead contract).
//   - floateq: no ==/!= on floating-point values in the concentration
//     bound and sampling arithmetic.
//   - errcheck: no silently dropped errors in non-test code.
//   - atomicmix: a struct field accessed through sync/atomic anywhere in
//     its package must never be plainly read or written outside its
//     constructor (the seqlock and COW-span memory-ordering contracts).
//   - gocapture: goroutines spawned inside //subsim:parallel functions
//     must write captured slices only at parameter-derived indices, never
//     write captured maps, and never call WaitGroup.Add from inside the
//     goroutine (the disjoint-write decomposition contract).
//   - lockcopy: no by-value copies of types carrying sync.Mutex,
//     sync/atomic state, or timeline.Ring seqlocks.
//   - directives: every //lint: and //subsim: directive must be known,
//     well-formed, and actually used — stale suppressions are errors.
//
// Suppressions are line-scoped: `//lint:allow <class> [reason]` on the
// offending line, the line above it, or a continuation line of the same
// statement. See DESIGN.md, "Enforced invariants".
package lintpass

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Diagnostic is one analyzer finding, positioned in the file set the
// package was loaded with.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// Class is the suppression class a //lint:allow directive can name;
	// empty for findings that must be fixed, not suppressed.
	Class string `json:"class,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is a one-line description shown by `subsimlint -list`.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report / pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Dir        string // package directory (absolute)
	Path       string // import path within the module
	Directives *DirectiveSet

	sink *[]Diagnostic
}

// Reportf reports a non-suppressible finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, "", format, args...)
}

// Report reports a finding at pos that may be suppressed by a
// `//lint:allow class` directive on the same or the preceding line.
// Suppressed findings are dropped and the directive is marked used (an
// unused directive is a stale-suppression error, see the directives
// analyzer).
func (p *Pass) Report(pos token.Pos, class, format string, args ...any) {
	position := p.Fset.Position(pos)
	if class != "" && p.Directives.suppress(class, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Class:    class,
	})
}

// All returns the full analyzer suite in execution order. The directives
// analyzer is last by construction: stale-suppression detection needs
// every other analyzer to have claimed its directives first.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		HotPathAlloc,
		NilTracer,
		FloatEq,
		ErrCheck,
		AtomicMix,
		GoCapture,
		LockCopy,
		Directives,
	}
}

// Run executes the analyzers over the loaded packages and returns the
// combined findings sorted by position.
//
// Execution is parallel on two axes — across packages, and across
// analyzers within each package — because the packages are already
// loaded and type-checked (the expensive, serial part) and the
// analyzers only read the shared ASTs and types.Info. The per-package
// DirectiveSet is the one piece of mutable shared state (suppression
// bookkeeping); it locks internally. The directives analyzer, when
// present, still runs strictly after every other analyzer of its
// package has joined, so stale-suppression detection sees the complete
// set of consumed waivers; diagnostics are merged and sorted at the
// end, so output order is independent of scheduling.
//
//subsim:parallel
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ordered := make([]*Analyzer, 0, len(analyzers))
	var hygiene *Analyzer
	for _, a := range analyzers {
		if a.Name == Directives.Name {
			hygiene = a
			continue
		}
		ordered = append(ordered, a)
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	var pkgWG sync.WaitGroup
	for i, pkg := range pkgs {
		pkgWG.Add(1)
		go func(i int, pkg *Package) {
			defer pkgWG.Done()
			perPkg[i] = runPackage(pkg, ordered, hygiene)
		}(i, pkg)
	}
	pkgWG.Wait()

	var out []Diagnostic
	for _, ds := range perPkg {
		out = append(out, ds...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// runPackage fans the non-hygiene analyzers of one package out across
// goroutines (each with a private sink), joins, then runs the hygiene
// analyzer so it observes every consumed directive.
//
//subsim:parallel
func runPackage(pkg *Package, ordered []*Analyzer, hygiene *Analyzer) []Diagnostic {
	ds := newDirectiveSet(pkg.Fset, pkg.Files)
	newPass := func(a *Analyzer, sink *[]Diagnostic) *Pass {
		return &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Dir:        pkg.Dir,
			Path:       pkg.Path,
			Directives: ds,
			sink:       sink,
		}
	}
	sinks := make([][]Diagnostic, len(ordered)+1)
	var wg sync.WaitGroup
	for j, a := range ordered {
		wg.Add(1)
		go func(j int, a *Analyzer) {
			defer wg.Done()
			a.Run(newPass(a, &sinks[j]))
		}(j, a)
	}
	wg.Wait()
	if hygiene != nil {
		hygiene.Run(newPass(hygiene, &sinks[len(ordered)]))
	}
	var out []Diagnostic
	for _, s := range sinks {
		out = append(out, s...)
	}
	return out
}
