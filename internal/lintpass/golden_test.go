package lintpass

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The golden-fixture harness: every directory under testdata/src is one
// fixture tree (possibly holding several packages, so directory-suffix
// package filters like internal/rrset can be exercised). Each fixture is
// loaded with the real loader, run through the full analyzer suite, and
// compared against `want` markers embedded in the fixture comments:
//
//	bad() // want `regexp matching the diagnostic message`
//
// A marker matches exactly one diagnostic on its line; several markers
// on one line match several diagnostics. Diagnostics without a matching
// marker and markers without a matching diagnostic both fail the test,
// so the fixtures are a complete positive AND negative specification:
// a line without a marker asserts the analyzers stay silent there.
//
// `want-above` expects the diagnostic on the preceding line instead; it
// exists for directives whose diagnostic depends on the directive
// comment being textually bare (any trailing marker would change what
// is being tested).
var (
	wantRe      = regexp.MustCompile("want `([^`]+)`")
	wantAboveRe = regexp.MustCompile("want-above `([^`]+)`")
)

// wantMarker is one expectation parsed from a fixture comment.
type wantMarker struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func TestGoldenFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("no fixtures: %v", err)
	}
	loader := NewLoader() // shared import cache across fixtures
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		fixture := e.Name()
		t.Run(fixture, func(t *testing.T) {
			dir := filepath.Join(root, fixture)
			pkgs, err := loader.Load(dir + "/...")
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if len(pkgs) == 0 {
				t.Fatalf("fixture %s holds no packages", fixture)
			}
			diags := Run(pkgs, All())
			wants, err := collectWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstWants(t, diags, wants)
		})
	}
}

// collectWants scans every fixture .go file for want markers.
func collectWants(dir string) ([]*wantMarker, error) {
	var wants []*wantMarker
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			for _, m := range wantAboveRe.FindAllStringSubmatch(text, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want-above pattern %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &wantMarker{file: path, line: line - 1, re: re})
			}
			for _, m := range wantRe.FindAllStringSubmatch(wantAboveRe.ReplaceAllString(text, ""), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
				}
				wants = append(wants, &wantMarker{file: path, line: line, re: re})
			}
		}
		return sc.Err()
	})
	return wants, err
}

// checkAgainstWants performs the bidirectional match.
func checkAgainstWants(t *testing.T, diags []Diagnostic, wants []*wantMarker) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.re)
		}
	}
}

// TestDirectivesRunLast proves the Run reordering: stale-suppression
// detection only works when the hygiene analyzer observes every other
// analyzer's consumed directives, regardless of caller-supplied order.
func TestDirectivesRunLast(t *testing.T) {
	suite := All()
	if suite[len(suite)-1].Name != Directives.Name {
		t.Fatalf("All() must end with %s, got %s", Directives.Name, suite[len(suite)-1].Name)
	}
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Fatalf("duplicate analyzer name %q", names[i])
		}
	}
}
