package lintpass

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCopy flags by-value copies of types carrying synchronisation
// state: sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/Pool, every
// sync/atomic type, and the project's own seqlock-bearing types
// (timeline.Ring and its slots). A copied mutex is a fresh unlocked
// mutex, a copied atomic loses its happens-before edges, and a copied
// Ring forks the seqlock generation counter — all three turn a
// documented concurrency contract into silent corruption. go vet's
// copylocks covers the sync types; this analyzer keeps the check inside
// the project gate, extends it to the timeline types (whose seqlock
// fields, not a Lock method, make them copy-hostile), and adds the
// map/slice-range forms our code actually writes.
//
// Flagged: assignments and declarations copying such a value, range
// statements whose value variable copies one per iteration, by-value
// parameters/results/receivers in function signatures, and call
// arguments passing one by value. Taking addresses, pointer fields, and
// composite-literal construction are fine. Intentional copies of
// provably quiescent values are waived with //lint:allow lockcopy.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flag by-value copies (assign, range, params, call args) of types carrying sync.Mutex, sync/atomic state, or timeline.Ring seqlocks",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	pass.Directives.markChecked(ClassLockCopy)
	seen := map[types.Type]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, seen, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSignature(pass, seen, nil, n.Type)
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
					for _, rhs := range n.Rhs {
						checkValueCopy(pass, seen, rhs, "assignment")
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						checkValueCopy(pass, seen, v, "declaration")
					}
				}
			case *ast.RangeStmt:
				checkRangeCopy(pass, seen, n)
			case *ast.CallExpr:
				checkCallArgs(pass, seen, n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkValueCopy(pass, seen, r, "return")
				}
			}
			return true
		})
	}
}

// checkSignature flags by-value lock carriers in a receiver, parameter
// or result list.
func checkSignature(pass *Pass, seen map[types.Type]string, recv *ast.FieldList, ftype *ast.FuncType) {
	lists := []*ast.FieldList{recv, ftype.Params, ftype.Results}
	for _, list := range lists {
		if list == nil {
			continue
		}
		for _, field := range list.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if carrier := lockCarrier(seen, tv.Type); carrier != "" {
				pass.Report(field.Type.Pos(), ClassLockCopy,
					"by-value %s copies lock state (%s); pass a pointer", describeType(tv.Type), carrier)
			}
		}
	}
}

// checkValueCopy flags an expression that copies an existing
// lock-carrying value: a variable, field, element, or dereference.
// Composite literals and call results are births, not copies.
func checkValueCopy(pass *Pass, seen map[types.Type]string, expr ast.Expr, context string) {
	expr = ast.Unparen(expr)
	if !isExistingValue(expr) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if carrier := lockCarrier(seen, tv.Type); carrier != "" {
		pass.Report(expr.Pos(), ClassLockCopy,
			"%s copies %s by value; it carries lock state (%s) — copy a pointer instead", context, describeType(tv.Type), carrier)
	}
}

// checkRangeCopy flags range statements whose per-iteration value
// variable copies a lock carrier out of the ranged container.
func checkRangeCopy(pass *Pass, seen map[types.Type]string, n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	var vt types.Type
	if tv, ok := pass.Info.Types[n.Value]; ok && tv.Type != nil {
		vt = tv.Type
	} else if id, isIdent := n.Value.(*ast.Ident); isIdent {
		// In `for k, v := range m` the value is a defined ident; its
		// type lives in Defs.
		if v, okDef := pass.Info.Defs[id].(*types.Var); okDef {
			vt = v.Type()
		}
	}
	if vt == nil {
		return
	}
	if carrier := lockCarrier(seen, vt); carrier != "" {
		pass.Report(n.Value.Pos(), ClassLockCopy,
			"range copies %s by value each iteration; it carries lock state (%s) — range by index or over pointers", describeType(vt), carrier)
	}
}

// checkCallArgs flags existing lock-carrying values passed by value to
// a call (conversions and builtins excluded).
func checkCallArgs(pass *Pass, seen map[types.Type]string, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	for _, arg := range call.Args {
		checkValueCopy(pass, seen, arg, "call")
	}
}

// isExistingValue reports whether expr denotes a value that already
// lives somewhere (so evaluating it copies), as opposed to a literal,
// conversion, or call result born at this expression.
func isExistingValue(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isExistingValue(e.X)
	default:
		return false
	}
}

// lockCarrier reports why t carries lock state ("" when it does not):
// the name of the first sync/atomic/seqlock component found. Results
// are memoised per run; pointer/slice/map/chan indirection stops the
// search (sharing a pointer is the correct pattern).
func lockCarrier(seen map[types.Type]string, t types.Type) string {
	if why, ok := seen[t]; ok {
		return why
	}
	seen[t] = "" // breaks recursive type cycles
	why := findLockCarrier(seen, t)
	seen[t] = why
	return why
}

func findLockCarrier(seen map[types.Type]string, t types.Type) string {
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
			if pathHasSuffixDir(obj.Pkg().Path(), "internal/obs/timeline") &&
				(obj.Name() == "Ring" || obj.Name() == "slot") {
				return "timeline." + obj.Name()
			}
		}
		return lockCarrier(seen, u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if why := lockCarrier(seen, u.Field(i).Type()); why != "" {
				return why
			}
		}
	case *types.Array:
		return lockCarrier(seen, u.Elem())
	}
	return ""
}

// describeType renders t compactly for diagnostics (unqualified name
// for named types, full syntax otherwise).
func describeType(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
