package lintpass

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The compiler-telemetry tests build throwaway modules under t.TempDir:
// a fresh module is never in the build cache, so the compiler replays
// its -m / check_bce diagnostics without the forced -a rebuild the
// production gate uses.

const cleanHot = `package kernel

// sum is the clean hot path: stack-only, bounds checks eliminated by
// the len-bounded loop.
//
//subsim:hotpath
func sum(xs []int64) int64 {
	var s int64
	for i := range xs {
		s += xs[i]
	}
	return s
}

// Accumulate is the exported entry so the package is not empty of
// non-hotpath code.
func Accumulate(xs []int64) int64 {
	return sum(xs)
}
`

// dirtyHot injects both regressions into the same function: s moves to
// heap (its address outlives the frame) and the stride-2 index defeats
// bounds-check elimination.
const dirtyHot = `package kernel

//subsim:hotpath
func sum(xs []int64) int64 {
	s := new(int64)
	sink = s
	for i := 0; i < len(xs)/2; i++ {
		*s += xs[i*2+1]
	}
	return *s
}

var sink *int64

func Accumulate(xs []int64) int64 {
	return sum(xs)
}
`

func writeTempModule(t *testing.T, kernel string) string {
	t.Helper()
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "go.mod"), "module tempmod\n\ngo 1.22\n")
	mustWrite(t, filepath.Join(dir, "kernel", "kernel.go"), kernel)
	return dir
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T, dir string) *Telemetry {
	t.Helper()
	tel, err := CollectCompilerTelemetry(CompilerConfig{Dir: dir})
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return tel
}

func TestCompilerTelemetryCleanHotpath(t *testing.T) {
	dir := writeTempModule(t, cleanHot)
	tel := collect(t, dir)

	ft := tel.Funcs["kernel.sum"]
	if ft == nil {
		t.Fatalf("hotpath function kernel.sum missing from telemetry; have %v", keysOf(tel))
	}
	if !ft.Hotpath {
		t.Errorf("kernel.sum not marked hotpath")
	}
	if len(ft.Escapes) != 0 || len(ft.Bounds) != 0 {
		t.Errorf("clean hot path reports escapes=%v bounds=%v", ft.Escapes, ft.Bounds)
	}

	// Baseline round trip and a clean gate.
	base := NewBaseline(tel)
	if _, ok := base.Hotpath["kernel.sum"]; !ok {
		t.Fatalf("baseline missing kernel.sum: %v", base.Hotpath)
	}
	path := filepath.Join(dir, "lint_baseline.json")
	if err := WriteBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	read, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	failures, notes := Gate(tel, read)
	if len(failures) != 0 {
		t.Errorf("clean module fails its own baseline: %v", failures)
	}
	if len(notes) != 0 {
		t.Errorf("clean module yields notes against its own baseline: %v", notes)
	}
}

func TestGateCatchesInjectedRegressions(t *testing.T) {
	dir := writeTempModule(t, cleanHot)
	base := NewBaseline(collect(t, dir))

	// Inject the heap escape and the un-eliminated bounds check.
	mustWrite(t, filepath.Join(dir, "kernel", "kernel.go"), dirtyHot)
	tel := collect(t, dir)
	ft := tel.Funcs["kernel.sum"]
	if ft == nil {
		t.Fatalf("kernel.sum missing after injection; have %v", keysOf(tel))
	}
	if len(ft.Escapes) == 0 {
		t.Errorf("injected heap escape not observed")
	}
	if len(ft.Bounds) == 0 {
		t.Errorf("injected bounds check not observed")
	}

	failures, _ := Gate(tel, base)
	if len(failures) == 0 {
		t.Fatalf("gate passed a hotpath escape+bounds regression")
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "heap escape") || !strings.Contains(joined, "bounds check") {
		t.Errorf("failures name neither regression:\n%s", joined)
	}
}

// TestCompilerGateCLIExitsNonZero pins the acceptance criterion
// end-to-end: the real subsimlint binary, run with -compiler against a
// baseline recorded before an injected escape, exits non-zero.
func TestCompilerGateCLIExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the CLI; skipped in -short")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "subsimlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/subsimlint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building subsimlint: %v\n%s", err, out)
	}

	dir := writeTempModule(t, cleanHot)

	// -baseline-write against the clean tree: exit 0.
	write := exec.Command(bin, "-compiler", "-no-rebuild", "-baseline-write", "./...")
	write.Dir = dir
	if out, err := write.CombinedOutput(); err != nil {
		t.Fatalf("baseline write failed: %v\n%s", err, out)
	}

	// Gate against the clean tree: still exit 0.
	gate := exec.Command(bin, "-compiler", "-no-rebuild", "./...")
	gate.Dir = dir
	if out, err := gate.CombinedOutput(); err != nil {
		t.Fatalf("gate on clean tree failed: %v\n%s", err, out)
	}

	// Inject the escape; the gate must exit non-zero and say why.
	mustWrite(t, filepath.Join(dir, "kernel", "kernel.go"), dirtyHot)
	gate = exec.Command(bin, "-compiler", "-no-rebuild", "./...")
	gate.Dir = dir
	out, err := gate.CombinedOutput()
	if err == nil {
		t.Fatalf("gate exited 0 on an injected hotpath escape:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit code 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "kernel.sum") {
		t.Errorf("failure output does not attribute to kernel.sum:\n%s", out)
	}
}

func TestParseDiagnostic(t *testing.T) {
	cases := []struct {
		in   string
		file string
		line int
		msg  string
		ok   bool
	}{
		{"internal/coverage/hll.go:101:12: make([]uint8, m) escapes to heap", "internal/coverage/hll.go", 101, "make([]uint8, m) escapes to heap", true},
		{"internal/im/im.go:634:14: Found IsInBounds", "internal/im/im.go", 634, "Found IsInBounds", true},
		{"# subsim/internal/coverage", "", 0, "", false},
		{"/usr/local/go/src/sync/pool.go:10:2: moved to heap: x", "", 0, "", false},
		{"not a diagnostic at all", "", 0, "", false},
		{"kernel/kernel.go:bad:1: msg", "", 0, "", false},
	}
	for _, c := range cases {
		file, line, msg, ok := parseDiagnostic(c.in)
		if ok != c.ok || file != c.file || line != c.line || msg != c.msg {
			t.Errorf("parseDiagnostic(%q) = (%q, %d, %q, %v), want (%q, %d, %q, %v)",
				c.in, file, line, msg, ok, c.file, c.line, c.msg, c.ok)
		}
	}
}

func TestClassifyDiagnostic(t *testing.T) {
	cases := []struct {
		msg  string
		kind diagKind
	}{
		{"make([]uint8, m) escapes to heap", diagEscape},
		{"moved to heap: s", diagEscape},
		{"func literal escapes to heap", diagEscape},
		{"Found IsInBounds", diagBounds},
		{"Found IsSliceInBounds", diagBounds},
		{"can inline sum", diagOther},
		{"inlining call to sum", diagOther},
		{"leaking param: xs", diagOther},
	}
	for _, c := range cases {
		if got := classifyDiagnostic(c.msg); got != c.kind {
			t.Errorf("classifyDiagnostic(%q) = %v, want %v", c.msg, got, c.kind)
		}
	}
}

func keysOf(tel *Telemetry) []string {
	var out []string
	for k := range tel.Funcs {
		out = append(out, k)
	}
	return out
}
