package lintpass

import (
	"path/filepath"
	"strings"
	"testing"
)

// The loader edge-case tests build throwaway modules under t.TempDir.
// Each poisoned file (build-tagged out, _test.go, vendored) contains a
// deliberate type error, so inclusion is observable as a type-check
// failure rather than inferrable from file counts alone.

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		mustWrite(t, filepath.Join(dir, filepath.FromSlash(name)), content)
	}
	return dir
}

func TestLoadSkipsBuildTaggedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      "module tagged\n\ngo 1.22\n",
		"pkg/good.go": "package pkg\n\nfunc A() int { return 1 }\n",
		"pkg/experimental.go": "//go:build neverenabled\n\npackage pkg\n\n" +
			"var B = undefinedSymbol // would fail the type-check if included\n",
		"pkg/stub_plan9.go": "package pkg\n\nvar C = alsoUndefined // other-GOOS stub\n",
	})
	pkgs, err := NewLoader().Load(dir + "/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("want only good.go selected, got %d files", n)
	}
}

func TestLoadExcludesTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      "module tested\n\ngo 1.22\n",
		"pkg/code.go": "package pkg\n\nfunc A() int { return 1 }\n",
		"pkg/code_test.go": "package pkg\n\n" +
			"var broken = undefinedInTest // type error proves exclusion\n",
	})
	pkgs, err := NewLoader().Load(dir + "/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("want 1 package with 1 file, got %+v", pkgs)
	}
}

func TestLoadResolvesVendoredDep(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vendored\n\ngo 1.22\n\nrequire example.com/dep v1.0.0\n",
		"vendor/modules.txt": "# example.com/dep v1.0.0\n" +
			"## explicit; go 1.22\n" +
			"example.com/dep\n",
		"vendor/example.com/dep/dep.go": "package dep\n\nfunc Answer() int { return 42 }\n",
		"pkg/use.go": "package pkg\n\nimport \"example.com/dep\"\n\n" +
			"var X = dep.Answer()\n",
	})
	// The source importer resolves non-stdlib imports against the
	// working directory's module context (go/build shells out to `go
	// list` with no Dir override), exactly like the production CLI,
	// which runs from the module root.
	t.Chdir(dir)
	pkgs, err := NewLoader().Load(dir + "/...")
	if err != nil {
		t.Fatalf("load with vendored dep: %v", err)
	}
	// The vendored dependency resolves as an import but is not itself a
	// lint target.
	if len(pkgs) != 1 {
		names := make([]string, len(pkgs))
		for i, p := range pkgs {
			names[i] = p.Path
		}
		t.Fatalf("want only pkg as a target, got %v", names)
	}
	if !strings.HasSuffix(pkgs[0].Path, "/pkg") {
		t.Errorf("unexpected package path %q", pkgs[0].Path)
	}
}

func TestLoadReportsTypecheckFailure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module broken\n\ngo 1.22\n",
		"pkg/broken.go": "package pkg\n\nvar X = undefinedEverywhere\n",
	})
	_, err := NewLoader().Load(dir + "/...")
	if err == nil {
		t.Fatal("want a type-check error, got nil")
	}
	if !strings.Contains(err.Error(), "type-check failed") {
		t.Errorf("error does not identify the type-check phase: %v", err)
	}
}

func TestLoadEmptyAndMixedDirs(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module mixed\n\ngo 1.22\n",
		"docs/README":         "no Go files here\n",
		"onlytests/x_test.go": "package onlytests\n",
		"pkg/code.go":         "package pkg\n\nfunc A() {}\n",
	})
	pkgs, err := NewLoader().Load(dir + "/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package (docs/ and onlytests/ skipped), got %d", len(pkgs))
	}
}
