package lintpass

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoCapture enforces the disjoint-write decomposition contract inside
// functions annotated //subsim:parallel — the worker-partitioned fan-out
// points of the pipeline (Batcher.FillIndex and its splice,
// coverage.ensureIndexed, the SelectSeeds first round, the HLL
// AbsorbArena). Their correctness argument (DESIGN.md, "Parallel
// coverage pipeline") is that every goroutine writes only into ranges
// derived from its own worker index, so output is byte-identical for
// any worker count and no locks or atomics are needed. Nothing in the
// language enforces that: one write through a captured slice at a
// shared index compiles, races, and — because the ranges usually still
// overlap only rarely — survives `-race` runs probabilistically.
//
// Inside every `go func` literal spawned from an annotated function the
// analyzer flags:
//
//   - writes through a captured slice whose index expression is not
//     derived from a parameter of the goroutine (the worker identity
//     must flow into every index, or two workers can write the same
//     element);
//   - any write through a captured map (concurrent map writes are
//     undefined regardless of the key's provenance);
//   - reassignment of a captured slice/map variable itself (the header
//     write races with every other goroutine's use);
//   - sync.WaitGroup.Add inside the goroutine body (the classic
//     Add-after-Wait race; Add must happen on the spawning goroutine).
//
// Coordination the analyzer cannot see is waived with
// //lint:allow capture <reason>.
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "flag non-range-disjoint writes to captured slices/maps and WaitGroup.Add inside go-routines of //subsim:parallel functions",
	Run:  runGoCapture,
}

func runGoCapture(pass *Pass) {
	pass.Directives.markChecked(ClassCapture)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Directives.IsParallel(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, fn, lit)
				}
				return true
			})
		}
	}
}

// checkGoroutineBody applies the disjoint-write checks to one spawned
// func literal.
func checkGoroutineBody(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	derived := derivedLocals(pass, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit // nested literals have their own spawn discipline
		case *ast.CallExpr:
			checkWaitGroupAdd(pass, fn, n)
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := only creates goroutine-locals
			}
			for _, lhs := range n.Lhs {
				checkWriteTarget(pass, fn, lit, derived, ast.Unparen(lhs))
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, fn, lit, derived, ast.Unparen(n.X))
		}
		return true
	})
}

// checkWriteTarget classifies one assignment target inside the
// goroutine body.
func checkWriteTarget(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit, derived map[*types.Var]bool, lhs ast.Expr) {
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		base := ast.Unparen(lhs.X)
		if !capturedExpr(pass, lit, base) {
			return
		}
		tv, ok := pass.Info.Types[base]
		if !ok || tv.Type == nil {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			pass.Report(lhs.Pos(), ClassCapture,
				"write to captured map %s inside a goroutine of parallel function %s; concurrent map writes are undefined — partition into per-worker maps or move the write after the join",
				types.ExprString(base), fn.Name.Name)
		case *types.Slice, *types.Array, *types.Pointer:
			if !indexDerived(pass, derived, lhs.Index) {
				pass.Report(lhs.Pos(), ClassCapture,
					"write to captured slice %s at index %q not derived from a goroutine parameter; the disjoint-write contract of parallel function %s needs the worker identity in every index",
					types.ExprString(base), types.ExprString(lhs.Index), fn.Name.Name)
			}
		}
	case *ast.Ident, *ast.SelectorExpr:
		if !capturedExpr(pass, lit, lhs) {
			return
		}
		tv, ok := pass.Info.Types[lhs]
		if !ok || tv.Type == nil {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			pass.Report(lhs.Pos(), ClassCapture,
				"reassignment of captured %s %s inside a goroutine of parallel function %s races with every other worker's use of it",
				typeKindWord(tv.Type), types.ExprString(lhs), fn.Name.Name)
		}
	}
}

func typeKindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// checkWaitGroupAdd flags sync.WaitGroup.Add calls inside the goroutine
// body.
func checkWaitGroupAdd(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); !ok || named.Obj().Name() != "WaitGroup" {
		return
	}
	pass.Report(call.Pos(), ClassCapture,
		"sync.WaitGroup.Add inside a goroutine of parallel function %s can race with the spawner's Wait; call Add before the go statement", fn.Name.Name)
}

// capturedExpr reports whether the root variable of expr (the base of a
// selector/index chain) is declared outside the literal — a captured
// local of the enclosing function, a receiver/parameter, or a
// package-level variable. Such a root is shared with other goroutines.
func capturedExpr(pass *Pass, lit *ast.FuncLit, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			v, ok := pass.Info.Uses[e].(*types.Var)
			if !ok {
				return false
			}
			pos := v.Pos()
			return pos < lit.Pos() || pos >= lit.End()
		default:
			return false
		}
	}
}

// indexDerived reports whether the index expression mentions at least
// one variable derived from the goroutine's parameters (directly, or
// through locals assigned from derived-only expressions). A
// constant-only or captured-only index means every worker computes the
// same element.
func indexDerived(pass *Pass, derived map[*types.Var]bool, index ast.Expr) bool {
	found := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.Info.Uses[id].(*types.Var); ok && derived[v] {
			found = true
			return false
		}
		return true
	})
	return found
}

// derivedLocals computes the parameter-derived variable set of the
// literal: its parameters, plus (to a fixed point) every local whose
// defining expression mentions a derived variable. Range/for loop
// variables driven by derived bounds count too.
func derivedLocals(pass *Pass, lit *ast.FuncLit) map[*types.Var]bool {
	derived := map[*types.Var]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					derived[v] = true
				}
			}
		}
	}
	mentionsDerived := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		return indexDerived(pass, derived, e)
	}
	for changed := true; changed; {
		changed = false
		mark := func(name *ast.Ident, from ast.Expr) {
			v, ok := pass.Info.Defs[name].(*types.Var)
			if !ok || derived[v] {
				return
			}
			if mentionsDerived(from) {
				derived[v] = true
				changed = true
			}
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range n.Lhs {
					name, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if len(n.Rhs) == len(n.Lhs) {
						mark(name, n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						mark(name, n.Rhs[0])
					}
				}
			case *ast.RangeStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if name, ok := e.(*ast.Ident); ok && name != nil {
						mark(name, n.X)
					}
				}
			}
			return true
		})
	}
	return derived
}
