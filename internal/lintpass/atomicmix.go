package lintpass

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix enforces the copy-on-write / seqlock field discipline the
// obs and timeline layers are built on: once a struct field is accessed
// through sync/atomic anywhere in the package, every other access to
// that field must stay atomic. One plain read of a seqlock sequence
// word, or one plain store next to an atomic.Pointer publish, compiles
// fine and usually survives `-race` (the torture tests only catch the
// interleaving probabilistically) but silently voids the
// memory-ordering contract documented in DESIGN.md.
//
// Two field families are tracked:
//
//   - function-style atomics: a field whose address is passed to a
//     sync/atomic function (atomic.LoadInt64(&s.f), atomic.AddUint32,
//     …). Every other appearance of that field must also be an
//     &s.f-into-sync/atomic argument — a plain read, a plain write, or
//     an address escape to non-atomic code is an error.
//   - type-style atomics: a field declared with a sync/atomic type
//     (atomic.Int64, atomic.Uint64, atomic.Pointer[T], …). The methods
//     are the only legal access; assigning over the field (s.seq =
//     atomic.Uint64{} resets the generation counter out from under
//     readers) or copying its value out are errors.
//
// Constructors are exempt: before the value is published there are no
// concurrent readers, so New*/new* functions (and package init) may
// initialise tracked fields plainly. Deliberate single-goroutine phases
// the analyzer cannot see are waived with //lint:allow atomic <reason>.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain reads/writes of struct fields that are accessed through sync/atomic elsewhere in the package",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	pass.Directives.markChecked(ClassAtomic)

	// Pass 1 — find the tracked fields: fields whose address feeds a
	// sync/atomic call anywhere in the package (function-style), plus
	// the set of those argument expressions so pass 2 can whitelist
	// them.
	funcStyle := map[*types.Var]bool{}
	atomicArgs := map[ast.Expr]bool{} // the &x.f nodes inside sync/atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := selectedField(pass, sel); v != nil {
					funcStyle[v] = true
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2 — walk every access and classify it. Parent links are
	// needed to tell a method-call receiver from a value copy and an
	// assignment target from a read.
	for _, f := range pass.Files {
		parents := parentMap(f)
		ctor := constructorRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := selectedField(pass, sel)
			if v == nil {
				return true
			}
			if inRanges(ctor, sel.Pos()) {
				return true // pre-publication initialisation
			}
			switch {
			case funcStyle[v]:
				checkFuncStyleAccess(pass, sel, v, parents, atomicArgs)
			case isSyncAtomicType(v.Type()):
				checkTypeStyleAccess(pass, sel, v, parents)
			}
			return true
		})
	}
}

// checkFuncStyleAccess flags any appearance of a function-style atomic
// field that is not an &field argument to a sync/atomic call.
func checkFuncStyleAccess(pass *Pass, sel *ast.SelectorExpr, v *types.Var, parents map[ast.Node]ast.Node, atomicArgs map[ast.Expr]bool) {
	if atomicArgs[sel] {
		return
	}
	name := v.Name()
	switch p := parents[sel].(type) {
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			pass.Report(sel.Pos(), ClassAtomic,
				"address of atomic field %q escapes to non-atomic code; field is accessed through sync/atomic elsewhere in this package", name)
			return
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				pass.Report(sel.Pos(), ClassAtomic,
					"plain write of atomic field %q; field is accessed through sync/atomic elsewhere in this package (use atomic store)", name)
				return
			}
		}
	case *ast.IncDecStmt:
		pass.Report(sel.Pos(), ClassAtomic,
			"plain %s of atomic field %q; field is accessed through sync/atomic elsewhere in this package (use atomic add)", p.Tok, name)
		return
	}
	pass.Report(sel.Pos(), ClassAtomic,
		"plain read of atomic field %q; field is accessed through sync/atomic elsewhere in this package (use atomic load)", name)
}

// checkTypeStyleAccess flags assigning over or copying out a field of a
// sync/atomic type; taking its address and calling its methods are the
// legal accesses.
func checkTypeStyleAccess(pass *Pass, sel *ast.SelectorExpr, v *types.Var, parents map[ast.Node]ast.Node) {
	name := v.Name()
	switch p := parents[sel].(type) {
	case *ast.SelectorExpr:
		if p.X == sel {
			return // method call or nested field: s.endNS.Load()
		}
	case *ast.IndexExpr:
		if p.X == sel {
			return // element of an atomic array field: h.buckets[b].Add(1)
		}
	case *ast.UnaryExpr:
		if p.Op.String() == "&" {
			return // &s.endNS handed to code that uses the methods
		}
	case *ast.CallExpr:
		if id, ok := p.Fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return // len(h.buckets) and friends read no atomic state
			}
		}
	case *ast.RangeStmt:
		if p.X == sel {
			if p.Value == nil {
				return // index-only range copies nothing
			}
			pass.Report(sel.Pos(), ClassAtomic,
				"ranging over atomic field %q by value copies each element outside its atomic API; range by index instead", name)
			return
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				pass.Report(sel.Pos(), ClassAtomic,
					"assignment over atomic-typed field %q resets it out from under concurrent readers; use its Store method", name)
				return
			}
		}
	}
	pass.Report(sel.Pos(), ClassAtomic,
		"plain read of atomic-typed field %q copies the value without a Load (and trips the noCopy check); use %s.Load()",
		name, name)
}

// selectedField resolves sel to the struct field it reads, or nil.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// isSyncAtomicCall reports whether call invokes a function from
// sync/atomic (atomic.LoadInt64, atomic.StorePointer, …).
func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	_, isFunc := obj.(*types.Func)
	return isFunc && obj.Pkg().Path() == "sync/atomic"
}

// isSyncAtomicType reports whether t (or the element behind one level of
// array) is a named sync/atomic type: atomic.Bool, atomic.Int64,
// atomic.Pointer[T], atomic.Value, ….
func isSyncAtomicType(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// constructorRanges returns the source extents of the file's
// constructor-like functions: New*/new* and package init, where plain
// initialisation of tracked fields is legal because the value is not
// yet published.
func constructorRanges(f *ast.File) [][2]int {
	var out [][2]int
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fn.Name.Name
		if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || (name == "init" && fn.Recv == nil) {
			out = append(out, [2]int{int(fn.Pos()), int(fn.End())})
		}
	}
	return out
}

func inRanges(ranges [][2]int, pos token.Pos) bool {
	p := int(pos)
	for _, r := range ranges {
		if p >= r[0] && p < r[1] {
			return true
		}
	}
	return false
}

// parentMap links every node in f to its syntactic parent.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
