package lintpass

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Compiler-telemetry gate: the AST analyzers police what the source
// says; this half polices what the compiler *does* with it. The arena
// pipeline's throughput rests on two optimiser outcomes the test suite
// can only observe indirectly (allocs/op, ns/op): hot-path values
// staying on the stack, and bounds checks being eliminated from the
// inner loops. Both regress silently — an innocent refactor that makes
// a closure capture a variable, or re-orders an index expression past
// what prove can see, shows up as a few percent of throughput weeks
// later. The gate makes the compiler's own escape analysis (-m=1) and
// bounds-check elimination debug output (-d=ssa/check_bce/debug=1)
// part of the lint contract: every //subsim:hotpath function's heap
// escapes and remaining bounds checks are counted, attributed, and
// compared against a committed baseline; any gain fails the build.

// FuncTelemetry is the per-function diagnostic count, with the raw
// compiler lines kept for reporting.
type FuncTelemetry struct {
	Hotpath bool     `json:"hotpath,omitempty"`
	Escapes []string `json:"escapes,omitempty"`
	Bounds  []string `json:"bounds,omitempty"`
}

// Telemetry maps receiver-qualified function keys — e.g.
// "internal/coverage.(*Batcher).splice" — to their diagnostic counts
// for one compile of the module.
type Telemetry struct {
	ModulePath string
	Funcs      map[string]*FuncTelemetry
}

// CompilerConfig configures one telemetry collection run.
type CompilerConfig struct {
	// Dir is the module root the build runs in.
	Dir string
	// Patterns are the package patterns to compile; default ./...
	Patterns []string
	// Rebuild passes -a, defeating the build cache: cached compiles do
	// not replay their diagnostics, so an incremental build reports
	// only changed packages. The production gate must rebuild; tests on
	// fresh temp modules (never cached) can skip it.
	Rebuild bool
}

// CollectCompilerTelemetry compiles the module with escape-analysis and
// BCE debugging enabled and attributes every heap-escape and
// bounds-check diagnostic to its enclosing function.
func CollectCompilerTelemetry(cfg CompilerConfig) (*Telemetry, error) {
	modPath, err := modulePathOf(cfg.Dir)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"build"}
	if cfg.Rebuild {
		args = append(args, "-a")
	}
	// Scope the flags to this module's packages: stdlib and dependency
	// diagnostics would otherwise drown the output (and print absolute
	// GOROOT paths the attribution below has no ASTs for).
	args = append(args, fmt.Sprintf("-gcflags=%s/...=-m=1 -d=ssa/check_bce/debug=1", modPath))
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stdout = &stderr // go build prints nothing on stdout, but merge anyway
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	tel := &Telemetry{ModulePath: modPath, Funcs: map[string]*FuncTelemetry{}}
	extents := map[string][]funcExtent{} // file (module-relative) -> extents, lazily parsed
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		file, line, msg, ok := parseDiagnostic(sc.Text())
		if !ok {
			continue
		}
		kind := classifyDiagnostic(msg)
		if kind == diagOther {
			continue
		}
		exts, cached := extents[file]
		if !cached {
			exts = fileFuncExtents(filepath.Join(cfg.Dir, file), filepath.ToSlash(filepath.Dir(file)))
			extents[file] = exts
		}
		key, hot := attribute(exts, line, filepath.ToSlash(filepath.Dir(file)))
		ft := tel.Funcs[key]
		if ft == nil {
			ft = &FuncTelemetry{Hotpath: hot}
			tel.Funcs[key] = ft
		}
		ref := fmt.Sprintf("%s:%d: %s", file, line, msg)
		switch kind {
		case diagEscape:
			ft.Escapes = append(ft.Escapes, ref)
		case diagBounds:
			ft.Bounds = append(ft.Bounds, ref)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Hotpath functions with zero diagnostics still belong in the
	// telemetry: the baseline records them explicitly so a future gain
	// is a diff against 0, not a missing entry.
	for file, exts := range allHotpathExtents(cfg.Dir, patterns, extents) {
		for _, e := range exts {
			if !e.hotpath {
				continue
			}
			key := filepath.ToSlash(filepath.Dir(file)) + "." + e.name
			if tel.Funcs[key] == nil {
				tel.Funcs[key] = &FuncTelemetry{Hotpath: true}
			} else {
				tel.Funcs[key].Hotpath = true
			}
		}
	}
	return tel, nil
}

type diagKind int

const (
	diagOther diagKind = iota
	diagEscape
	diagBounds
)

// classifyDiagnostic buckets one compiler message. -m=1 also prints
// inlining decisions and parameter-leak notes; only true heap moves
// count as escapes, and only the BCE debug lines as bounds checks.
func classifyDiagnostic(msg string) diagKind {
	switch {
	case strings.HasSuffix(msg, "escapes to heap"),
		strings.Contains(msg, "escapes to heap:"),
		strings.HasPrefix(msg, "moved to heap:"):
		return diagEscape
	case strings.HasPrefix(msg, "Found IsInBounds"),
		strings.HasPrefix(msg, "Found IsSliceInBounds"):
		return diagBounds
	}
	return diagOther
}

// parseDiagnostic splits a `file.go:line:col: msg` compiler line.
// Absolute paths (stdlib, other modules) and non-diagnostic lines
// ("# package" headers) are rejected.
func parseDiagnostic(text string) (file string, line int, msg string, ok bool) {
	if text == "" || strings.HasPrefix(text, "#") || filepath.IsAbs(text) {
		return "", 0, "", false
	}
	idx := strings.Index(text, ".go:")
	if idx < 0 {
		return "", 0, "", false
	}
	file = text[:idx+3]
	rest := text[idx+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, "", false
	}
	line, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, "", false
	}
	return file, line, strings.TrimSpace(parts[2]), true
}

// funcExtent is one function declaration's line range in a file.
type funcExtent struct {
	name       string // receiver-qualified: FillIndex, (*Batcher).splice
	start, end int
	hotpath    bool
}

// fileFuncExtents parses one file (syntax only — no type information is
// needed for line attribution) and returns its function extents. A file
// that fails to parse yields no extents; its diagnostics then attribute
// to the package-level pseudo-function.
func fileFuncExtents(path, pkgDir string) []funcExtent {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil
	}
	var out []funcExtent
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fn.Name.Name
		if fn.Recv != nil && len(fn.Recv.List) > 0 {
			recv := recvString(fn.Recv.List[0].Type)
			name = recv + "." + fn.Name.Name
		}
		hot := false
		if fn.Doc != nil {
			for _, c := range fn.Doc.List {
				if strings.TrimSpace(c.Text) == "//subsim:hotpath" {
					hot = true
				}
			}
		}
		out = append(out, funcExtent{
			name:    name,
			start:   fset.Position(fn.Pos()).Line,
			end:     fset.Position(fn.End()).Line,
			hotpath: hot,
		})
	}
	return out
}

// recvString renders a receiver type expression: Batcher, (*Batcher),
// (*Ring[T]) — matching the compiler's own -m attribution style closely
// enough to be stable keys.
func recvString(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvBase(t.X) + ")"
	default:
		return recvBase(t)
	}
}

func recvBase(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvBase(t.X)
	case *ast.IndexListExpr:
		return recvBase(t.X)
	case *ast.ParenExpr:
		return recvBase(t.X)
	}
	return "?"
}

// attribute maps a diagnostic line to the function containing it, or to
// the package-level pseudo-function "(toplevel)".
func attribute(exts []funcExtent, line int, pkgDir string) (key string, hotpath bool) {
	for _, e := range exts {
		if line >= e.start && line <= e.end {
			return pkgDir + "." + e.name, e.hotpath
		}
	}
	return pkgDir + ".(toplevel)", false
}

// allHotpathExtents walks the module's non-testdata .go files that were
// not already parsed during attribution so zero-diagnostic hotpath
// functions still enter the telemetry. The already-parsed extents are
// reused.
func allHotpathExtents(dir string, patterns []string, parsed map[string][]funcExtent) map[string][]funcExtent {
	out := map[string][]funcExtent{}
	for file, exts := range parsed {
		out[file] = exts
	}
	_ = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return nil
		}
		if _, ok := out[rel]; ok {
			return nil
		}
		out[rel] = fileFuncExtents(path, filepath.ToSlash(filepath.Dir(rel)))
		return nil
	})
	return out
}

// modulePathOf reads the module path out of dir's go.mod.
func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("compiler telemetry needs a module root: %w", err)
	}
	if mp := modulePath(data); mp != "" {
		return mp, nil
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// BaselineEntry is the committed per-function budget.
type BaselineEntry struct {
	Escapes int `json:"escapes"`
	Bounds  int `json:"bounds"`
}

// Baseline is the committed compiler-telemetry contract: every
// //subsim:hotpath function with its accepted heap-escape and
// bounds-check counts. Refreshed with `subsimlint -compiler
// -baseline-write` (see `make escape-baseline`) after a reviewed,
// intentional change.
type Baseline struct {
	Comment string                   `json:"comment,omitempty"`
	Hotpath map[string]BaselineEntry `json:"hotpath"`
}

// NewBaseline extracts the hotpath entries from one telemetry run.
func NewBaseline(tel *Telemetry) *Baseline {
	b := &Baseline{
		Comment: "Compiler-telemetry budget for //subsim:hotpath functions: accepted heap escapes and remaining bounds checks per function. Gated by `make escape-gate`; refresh deliberately with `make escape-baseline`.",
		Hotpath: map[string]BaselineEntry{},
	}
	for key, ft := range tel.Funcs {
		if !ft.Hotpath {
			continue
		}
		b.Hotpath[key] = BaselineEntry{Escapes: len(ft.Escapes), Bounds: len(ft.Bounds)}
	}
	return b
}

// ReadBaseline loads a committed baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Hotpath == nil {
		b.Hotpath = map[string]BaselineEntry{}
	}
	return &b, nil
}

// WriteBaseline writes the baseline with stable key order.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Gate compares one telemetry run against the committed baseline and
// returns the failures: any hotpath function whose escape or
// bounds-check count exceeds its budget, or a new hotpath function with
// nonzero counts and no budget at all. Improvements (counts below
// budget) pass; the returned notes suggest refreshing the baseline so
// the win is locked in.
func Gate(tel *Telemetry, baseline *Baseline) (failures, notes []string) {
	keys := make([]string, 0, len(tel.Funcs))
	for key, ft := range tel.Funcs {
		if ft.Hotpath {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		ft := tel.Funcs[key]
		budget, known := baseline.Hotpath[key]
		if !known {
			if len(ft.Escapes)+len(ft.Bounds) > 0 {
				failures = append(failures, fmt.Sprintf(
					"%s: hotpath function not in baseline with %d escape(s), %d bounds check(s)%s",
					key, len(ft.Escapes), len(ft.Bounds), detailLines(ft)))
			} else {
				notes = append(notes, fmt.Sprintf("%s: new clean hotpath function; refresh the baseline to pin it", key))
			}
			continue
		}
		if n := len(ft.Escapes); n > budget.Escapes {
			failures = append(failures, fmt.Sprintf(
				"%s: %d heap escape(s), budget %d%s", key, n, budget.Escapes, detailLines(ft)))
		} else if n < budget.Escapes {
			notes = append(notes, fmt.Sprintf("%s: escapes improved %d -> %d; refresh the baseline to lock it in", key, budget.Escapes, n))
		}
		if n := len(ft.Bounds); n > budget.Bounds {
			failures = append(failures, fmt.Sprintf(
				"%s: %d bounds check(s), budget %d%s", key, n, budget.Bounds, boundsLines(ft)))
		} else if n < budget.Bounds {
			notes = append(notes, fmt.Sprintf("%s: bounds checks improved %d -> %d; refresh the baseline to lock it in", key, budget.Bounds, n))
		}
	}
	// Baseline entries whose function vanished are stale budget: not a
	// failure (deleting a hotpath function is legitimate), but noted so
	// the file does not rot.
	baseKeys := make([]string, 0, len(baseline.Hotpath))
	for key := range baseline.Hotpath {
		baseKeys = append(baseKeys, key)
	}
	sort.Strings(baseKeys)
	for _, key := range baseKeys {
		if ft, ok := tel.Funcs[key]; !ok || !ft.Hotpath {
			notes = append(notes, fmt.Sprintf("%s: baseline entry has no hotpath function anymore; refresh the baseline", key))
		}
	}
	return failures, notes
}

func detailLines(ft *FuncTelemetry) string {
	var sb strings.Builder
	for _, e := range ft.Escapes {
		_, _ = sb.WriteString("\n    ")
		_, _ = sb.WriteString(e)
	}
	return sb.String()
}

func boundsLines(ft *FuncTelemetry) string {
	var sb strings.Builder
	for _, b := range ft.Bounds {
		_, _ = sb.WriteString("\n    ")
		_, _ = sb.WriteString(b)
	}
	return sb.String()
}
