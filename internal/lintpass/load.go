package lintpass

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit the analyzers
// operate on. Test files (*_test.go) are excluded: the invariants the
// suite enforces are production-code invariants, and external test
// packages would complicate the single-package type-check for no gain.
type Package struct {
	Fset  *token.FileSet
	Dir   string
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without golang.org/x/tools: it
// walks directories itself and resolves imports through the stdlib
// source importer (go/importer "source"), which type-checks dependencies
// from source and is module-aware via go/build. One Loader shares a file
// set and an import cache across every package it loads, so the stdlib
// is only type-checked once per process.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// Load expands the go-style package patterns (a directory, or a
// directory suffixed /... for a recursive walk) relative to the current
// working directory and loads every matched package. Directories named
// testdata, hidden directories, and directories without non-test Go
// files are skipped, mirroring the go tool's matching rules.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			dirs[root] = true
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				// vendor matches the go tool: vendored dependencies are
				// not lint targets (they are still resolvable as imports
				// of the packages that are).
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, returning
// nil (no error) when the directory holds no non-test Go files for the
// current build configuration. File selection mirrors the go tool:
// *_test.go is excluded, and //go:build constraints plus _GOOS/_GOARCH
// filename suffixes are honoured through go/build's MatchFile, so a
// file constrained out of the build (a stub for another platform, an
// experiment behind a tag) can neither fail the type-check nor sneak
// diagnostics in.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	bctx := build.Default
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if match, err := bctx.MatchFile(abs, name); err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Join(abs, name), err)
		} else if !match {
			continue // excluded by build constraints for this GOOS/GOARCH/tag set
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	path, err := importPath(abs)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: type-check failed: %w", path, err)
	}
	return &Package{
		Fset:  l.Fset,
		Dir:   abs,
		Path:  path,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importPath derives the import path of dir by locating the enclosing
// go.mod and joining its module path with the relative directory.
func importPath(dir string) (string, error) {
	root := dir
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			mod := modulePath(data)
			if mod == "" {
				return "", fmt.Errorf("%s: no module line in go.mod", root)
			}
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return mod, nil
			}
			return mod + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			// Outside any module: fall back to the directory path, which
			// keeps positions and package-scoping checks working.
			return filepath.ToSlash(dir), nil
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}

// pathHasSuffixDir reports whether the slash-normalised directory path
// ends with the given slash-separated path suffix on a path-segment
// boundary ("…/internal/rrset" matches suffix "internal/rrset",
// "…/notinternal/rrset" does not).
func pathHasSuffixDir(dir, suffix string) bool {
	d := filepath.ToSlash(dir)
	if !strings.HasSuffix(d, suffix) {
		return false
	}
	rest := strings.TrimSuffix(d, suffix)
	return rest == "" || strings.HasSuffix(rest, "/")
}
