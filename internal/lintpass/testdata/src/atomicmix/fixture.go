// Package atomicmix is the golden fixture for the atomic-mix analyzer:
// once a struct field is accessed through sync/atomic anywhere in the
// package, every other access must stay atomic. Both field families are
// exercised — legacy function-style atomics (&f into atomic.AddUint64)
// and type-style atomics (atomic.Int64 / atomic.Pointer fields) — plus
// the constructor exemption and the //lint:allow atomic waiver. The Span
// section is copied from the real obs.Span COW contract and seeds the
// regression that motivated the analyzer: a plain read of endNS.
package atomicmix

import "sync/atomic"

// ring mirrors the seqlock interval ring: cursor is advanced with
// atomic.AddUint64, making it a function-style atomic field.
type ring struct {
	cursor uint64
	buf    []int64
}

// newRing initialises cursor plainly: constructors run before the value
// is published, so no finding.
func newRing(n int) *ring {
	r := &ring{buf: make([]int64, n)}
	r.cursor = 0
	return r
}

// push is the disciplined writer: every cursor access goes through
// sync/atomic. No findings.
func (r *ring) push(v int64) {
	i := atomic.AddUint64(&r.cursor, 1) - 1
	r.buf[i%uint64(len(r.buf))] = v
}

// written reads cursor plainly: flagged.
func (r *ring) written() uint64 {
	return r.cursor // want `plain read of atomic field "cursor"`
}

// reset writes cursor plainly: flagged.
func (r *ring) reset() {
	r.cursor = 0 // want `plain write of atomic field "cursor"`
}

// bump increments cursor plainly: flagged.
func (r *ring) bump() {
	r.cursor++ // want `plain \+\+ of atomic field "cursor"`
}

// escape leaks the address of cursor to non-atomic code: flagged.
func (r *ring) escape() *uint64 {
	return &r.cursor // want `address of atomic field "cursor" escapes`
}

// drainQuiesced reads cursor plainly after the workers have joined — a
// single-goroutine phase the type system cannot see, so it is waived.
func (r *ring) drainQuiesced() uint64 {
	//lint:allow atomic single-goroutine teardown after workers joined
	return r.cursor
}

// Span is copied from the real obs.Span live-read contract: name and
// startNS are immutable after publication, endNS is an atomic the
// writer Stores once and concurrent readers Load, attrs is an
// atomic.Pointer published copy-on-write.
type Span struct {
	name    string
	startNS int64
	endNS   atomic.Int64
	attrs   atomic.Pointer[[]string]
}

// End and EndNS are the disciplined accessors: method calls on the
// atomic-typed fields. No findings.
func (s *Span) End(now int64) {
	s.endNS.CompareAndSwap(0, now)
}

func (s *Span) EndNS() int64 {
	return s.endNS.Load()
}

// Attrs loads the COW slice; taking the field's address for a helper
// that uses the atomic API is legal too. No findings.
func (s *Span) Attrs() []string {
	p := s.attrs.Load()
	if p == nil {
		return nil
	}
	_ = &s.attrs
	return *p
}

// durationRacy is the seeded regression: a plain read of endNS copies
// the atomic by value, skipping the acquire Load the live telemetry
// readers rely on. lockcopy independently flags the same copy.
func (s *Span) durationRacy() int64 {
	end := s.endNS // want `plain read of atomic-typed field "endNS"` want `assignment copies Int64 by value`
	return end.Load() - s.startNS
}

// resetRacy assigns over the atomic field, resetting the generation out
// from under concurrent readers: flagged.
func (s *Span) resetRacy() {
	s.endNS = atomic.Int64{} // want `assignment over atomic-typed field "endNS"`
}

// hist exercises the array-of-atomics shape of the real obs.Histogram.
type hist struct {
	buckets [4]atomic.Int64
}

// total ranges by index and calls methods on elements: the legal
// access pattern, including the builtin len read. No findings.
func (h *hist) total() int64 {
	var t int64
	for i := range h.buckets {
		t += h.buckets[i].Load()
	}
	_ = len(h.buckets)
	return t
}

// totalRacy ranges by value, copying each atomic element outside its
// API (lockcopy flags the per-iteration copy too).
func (h *hist) totalRacy() int64 {
	var t int64
	for _, b := range h.buckets { // want `ranging over atomic field "buckets" by value` want `range copies Int64 by value`
		t += b.Load()
	}
	return t
}
