// Package lockcopy is the golden fixture for the lock-copy analyzer:
// by-value copies of types carrying sync.Mutex, sync/atomic state, or
// timeline.Ring seqlocks — in signatures, assignments, ranges, returns,
// and call arguments — are flagged; pointer indirection, composite
// literals, and waived quiescent snapshots are not.
package lockcopy

import (
	"sync"

	"subsim/internal/lintpass/testdata/src/lockcopy/internal/obs/timeline"
)

// counters carries a mutex through a struct field.
type counters struct {
	mu sync.Mutex
	n  map[string]int64
}

// newCounters builds a value with a composite literal: a birth, not a
// copy. No finding.
func newCounters() *counters {
	c := counters{n: map[string]int64{}}
	return &c
}

// byValue receives counters by value: every call gets a fresh unlocked
// mutex.
func byValue(c counters) int64 { // want `by-value counters copies lock state \(sync.Mutex\)`
	return c.n["x"]
}

// byPointer is the correct form. No finding.
func byPointer(c *counters) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n["x"]
}

// snapshot copies the struct out of the pointer: flagged.
func snapshot(c *counters) map[string]int64 {
	dup := *c // want `assignment copies counters by value`
	return dup.n
}

// each ranges a slice of counters by value: one fresh mutex per
// iteration. Indirection in the slice itself is fine (the slice header
// carries no lock), only the per-iteration copy is flagged.
func each(cs []counters) int {
	total := 0
	for _, c := range cs { // want `range copies counters by value each iteration`
		total += len(c.n)
	}
	return total
}

// eachIndex is the correct form. No finding.
func eachIndex(cs []counters) int {
	total := 0
	for i := range cs {
		total += len(cs[i].n)
	}
	return total
}

// leak copies on the way out twice: the by-value result type and the
// dereferencing return expression.
func leak(c *counters) counters { // want `by-value counters copies lock state`
	return *c // want `return copies counters by value`
}

// callSite passes the dereferenced struct to a call: flagged at the
// argument.
func callSite(c *counters) int64 {
	return byValue(*c) // want `call copies counters by value`
}

// wait takes a WaitGroup by value: the classic vet copylocks case, kept
// inside the project gate.
func wait(wg sync.WaitGroup) { // want `by-value WaitGroup copies lock state \(sync.WaitGroup\)`
	wg.Wait()
}

// copyRing copies the seqlock ring, forking its generation counter —
// flagged via the named-type rule even though every field is plain.
func copyRing(r *timeline.Ring) timeline.Ring { // want `by-value Ring copies lock state \(timeline.Ring\)`
	return *r // want `return copies Ring by value`
}

// shareRing passes the ring by pointer. No finding.
func shareRing(r *timeline.Ring) *timeline.Ring {
	return r
}

// export takes a deliberate snapshot of a provably quiescent value; the
// waiver records why the copy is safe.
func export(c *counters) map[string]int64 {
	//lint:allow lockcopy quiescent snapshot taken after the final Wait
	dup := *c
	return dup.n
}
