// Package timeline is the lockcopy fixture stand-in for the seqlock
// ring: the directory suffix internal/obs/timeline makes Ring a lock
// carrier by name alone — its fields are deliberately plain so the
// fixture pins the named-type rule, not the field recursion.
package timeline

// Ring is the seqlock ring stand-in: the odd/even generation protocol
// lives in the name, not in any sync/atomic field type.
type Ring struct {
	seq  uint64
	slot [4]int64
}
