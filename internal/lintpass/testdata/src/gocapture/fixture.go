// Package gocapture is the golden fixture for the goroutine-capture
// analyzer: inside `go func` literals spawned from //subsim:parallel
// functions, captured slices may only be written at parameter-derived
// indices, captured maps never, the captured slice/map headers never
// reassigned, and WaitGroup.Add never called from the goroutine body.
// Unannotated functions are out of scope, and coordination the index
// analysis cannot see is waived with //lint:allow capture.
package gocapture

import "sync"

// FillChunks is the well-formed disjoint-write decomposition copied
// from the arena splice: the worker index flows (directly or through
// derived locals and range variables) into every captured-slice index.
// No findings.
//
//subsim:parallel
func FillChunks(workers, chunk int, out []int64) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := w * chunk
			sub := out[start : start+chunk]
			for i := range sub {
				out[start+i] = int64(i) // index derived through start
				sub[i] = int64(i)       // sub is a goroutine-local: unchecked
			}
		}(w)
	}
	wg.Wait()
}

// FillRacy concentrates the contract violations: an Add racing the
// spawner's Wait, a shared-index slice write, a concurrent map write,
// and a header reassignment.
//
//subsim:parallel
func FillRacy(workers int, out []int64, m map[int]int64, hot []int64) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		go func(w int) {
			wg.Add(1) // want `sync.WaitGroup.Add inside a goroutine of parallel function FillRacy`
			defer wg.Done()
			out[0] = int64(w)           // want `not derived from a goroutine parameter`
			m[w] = int64(w)             // want `write to captured map m`
			hot = append(hot, int64(w)) // want `reassignment of captured slice hot`
		}(w)
	}
	wg.Wait()
}

// FillWaived writes one shared observability cell whose coordination
// lives outside the function; the waiver names it.
//
//subsim:parallel
func FillWaived(workers int, out, stats []int64) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = 1
			//lint:allow capture stats cell is read only after the join, last write wins
			stats[0] = int64(workers)
		}(w)
	}
	wg.Wait()
}

// fillUnmarked has the same shared-index write but no //subsim:parallel
// marker: the discipline is scoped to annotated functions.
func fillUnmarked(workers int, out []int64) {
	for w := 0; w < workers; w++ {
		go func(w int) {
			out[0] = int64(w)
		}(w)
	}
}
