// Package bounds is the floateq golden fixture; the directory suffix
// internal/bounds places it inside the bound/sampling arithmetic set
// where exact floating-point comparison is forbidden.
package bounds

import "math"

// Converged compares floats exactly.
func Converged(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// Different compares floats exactly with !=.
func Different(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// MixedConst compares a variable against a constant: still a finding
// (only fully constant-folded comparisons are exempt).
func MixedConst(x float64) bool {
	return x == 0.5 // want `floating-point == comparison`
}

// Sentinel is the allowlisted exact compare against an IEEE sentinel.
func Sentinel(x float64) bool {
	return x == math.Inf(-1) //lint:allow floateq (fixture: IEEE sentinel value)
}

// IntEq compares integers; not a finding.
func IntEq(a, b int) bool { return a == b }

// constFolded is a fully constant comparison, folded at compile time.
const constFolded = 1.0 == 2.0

//lint:allow floateq (fixture: stale, suppresses nothing) // want `stale suppression: no floateq diagnostic of class "floateq"`
var staleAnchor = 0.5
