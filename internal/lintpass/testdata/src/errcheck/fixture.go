// Package errcheck is the errcheck golden fixture: expression-statement
// calls that drop errors, against the lite carve-outs (explicit
// discards, deferred cleanup, the fmt print family).
package errcheck

import (
	"fmt"
	"os"
	"strconv"
)

// Drop silently drops the error.
func Drop(path string) {
	os.Remove(path) // want `os.Remove returns an error that is silently dropped`
}

// DropTuple drops a value-and-error pair via an expression statement.
func DropTuple(s string) {
	strconv.Atoi(s) // want `strconv.Atoi returns an error that is silently dropped`
}

// Discard discards explicitly: visible in review, allowed.
func Discard(path string) {
	_ = os.Remove(path)
}

// Print uses the exempt fmt print family.
func Print(v int) {
	fmt.Println(v)
}

// Deferred cleanup close is exempt (DeferStmt, not ExprStmt).
func Deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// Waved suppresses a best-effort cleanup.
func Waved(path string) {
	//lint:allow errcheck (fixture: best-effort cleanup)
	os.Remove(path)
}

// Handled checks the error: no finding.
func Handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}
