// Package bounds is the regression fixture for wrap-tolerant waiver
// windows: a //lint:allow directive covers the full line extent of the
// simple statement it annotates, so gofmt re-wrapping a long statement
// cannot orphan diagnostics onto continuation lines the waiver no
// longer reaches. The window never extends into block-carrying
// statements, and widening it must not mask genuinely stale waivers.
// The directory suffix internal/bounds puts the package in floateq's
// scope.
package bounds

// sentinelBoth holds one waiver above a wrapped condition: the
// comparison gofmt pushed onto the continuation line is still covered.
func sentinelBoth(a, b, c, d float64) bool {
	//lint:allow floateq sentinel comparisons, statement wrapped by gofmt
	ok := a == b &&
		c == d
	return ok
}

// trailing holds the waiver as a trailing comment on the statement's
// first line; the continuation-line comparison is still covered.
func trailing(a, b, c, d float64) bool {
	ok := a == b && //lint:allow floateq trailing waiver covers the wrap
		c == d
	return ok
}

// blockScoped shows the window never follows a block-carrying
// statement into its body: the condition is covered, the body is not.
func blockScoped(a, b, c, d float64) bool {
	//lint:allow floateq covers the if condition only
	if a == b {
		return c == d // want `floating-point == comparison`
	}
	return false
}

// staleWrapped shows widening cannot mask staleness: the annotated
// wrapped statement contains no float comparison at all.
func staleWrapped(a, b int) int {
	//lint:allow floateq (stale: integer arithmetic only) // want `stale suppression: no floateq diagnostic of class "floateq"`
	sum := a +
		b
	return sum
}
