// Package directives is the directive-hygiene golden fixture: unknown
// verbs, unknown classes, misplaced markers, and stale suppressions are
// all errors; an unused suppression whose class was never evaluated in
// this package is NOT stale.
package directives

//lint:allow bogus (no such class) // want `unknown suppression class "bogus"`
var a = 1

//lint:forbid timing // want `unknown directive //lint:forbid`
var b = 2

//subsim:coldpath // want `unknown directive //subsim:coldpath`
var c = 3

//subsim:hotpath // want `//subsim:hotpath must appear in the doc comment of a function declaration`
var d = 4

//lint:allow
// want-above `//lint:allow needs a suppression class`
var e = 5

//lint:allow errcheck (stale: nothing here drops an error) // want `stale suppression: no errcheck diagnostic of class "errcheck"`
var f = 6

// The timing class is owned by nodeterminism, which never evaluates
// this package (not an algorithm directory), so this unused suppression
// is silently tolerated rather than reported stale.
//
//lint:allow timing (class unchecked in this package)
var g = 7

var _ = []int{a, b, c, d, e, f, g}
