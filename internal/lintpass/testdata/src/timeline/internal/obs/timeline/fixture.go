// Package timeline is the golden fixture for the execution-timeline
// lint extensions: the directory suffix internal/obs/timeline makes
// Ring and Timeline tracked under the nil-tracer contract, and the
// hotpath-alloc analyzer requires every Ring.Record/Ring.Now call in a
// //subsim:hotpath function to sit under a nil guard on the receiver.
package timeline

// Ring is the fixture stand-in for the per-worker interval ring.
type Ring struct {
	cursor uint64
}

// Timeline is the fixture stand-in for the ring owner.
type Timeline struct {
	rings []*Ring
}

// Record is nil-safe like the real ring: guarded before the field write.
func (r *Ring) Record(startNS, endNS int64) {
	if r == nil {
		return
	}
	r.cursor++
}

// Now is nil-safe like the real ring.
func (r *Ring) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(r.cursor)
}

// Written reads the cursor with no guard: the nil-tracer contract
// violation on the new Ring type.
func Written(r *Ring) uint64 {
	return r.cursor // want `access to field cursor`
}

// Worker indexes the ring vector before any nil check.
func (tl *Timeline) Worker(w int) *Ring {
	return tl.rings[w] // want `access to field rings`
}

// WorkerSafe is the guarded version: no finding.
func WorkerSafe(tl *Timeline, w int) *Ring {
	if tl == nil || w >= len(tl.rings) {
		return nil
	}
	return tl.rings[w]
}

// gen is the instrumented-generator stand-in for the hot-path checks.
type gen struct {
	ring *Ring
	busy int64
}

// GenerateInto mirrors the real instrumented hot path: every Record/Now
// call sits under the `if g.ring != nil` guard, so the disabled path
// skips recording entirely. No findings.
//
//subsim:hotpath
func (g *gen) GenerateInto(n int) {
	if g.ring != nil {
		t0 := g.ring.Now()
		g.busy += int64(n)
		g.ring.Record(t0, g.ring.Now())
	}
}

// hoisted re-binds the guarded ring to a local inside the guard; the
// local inherits the guard.
//
//subsim:hotpath
func (g *gen) hoisted() {
	if g.ring != nil {
		r := g.ring
		r.Record(r.Now(), r.Now())
	}
}

// unguarded records without the guard: flagged even though the calls
// are nil-safe — a hot loop must not pay a method call per set on the
// disabled path.
//
//subsim:hotpath
func (g *gen) unguarded() {
	g.ring.Record(0, 1) // want `timeline g.ring.Record in hot-path function unguarded`
	g.busy += g.ring.Now() // want `timeline g.ring.Now in hot-path function unguarded`
}

// cold performs the same unguarded calls without the hotpath marker:
// the discipline is scoped to annotated functions.
func (g *gen) cold() {
	g.ring.Record(0, 1)
	g.busy += g.ring.Now()
}
