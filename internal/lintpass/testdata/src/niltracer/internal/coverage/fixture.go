// Package coverage is the niltracer fixture for the estimator types:
// the directory suffix internal/coverage makes HLL tracked, so a nil
// *HLL must be a safe "no sketch" value — every exported function or
// method taking one must nil-check before touching the register file.
package coverage

// HLL is the fixture stand-in for the sketch estimator.
type HLL struct {
	regs    []uint8
	numSets int
}

// BadNumSets dereferences a field before any nil check.
func BadNumSets(h *HLL) int {
	return h.numSets // want `access to field numSets`
}

// MemoryBytes guards with the early-return idiom.
func (h *HLL) MemoryBytes() int64 {
	if h == nil {
		return 0
	}
	return int64(len(h.regs))
}

// NumSets uses the single-line short-circuit guard.
func (h *HLL) NumSets() int {
	if h == nil || h.numSets < 0 {
		return 0
	}
	return h.numSets
}

// Add is the hot-path shape: guard first, then mutate registers.
func (h *HLL) Add(slot int, rank uint8) {
	if h == nil {
		return
	}
	if rank > h.regs[slot] {
		h.regs[slot] = rank
	}
}

// BadMerge mutates the receiver's registers with no guard.
func (h *HLL) BadMerge(src []uint8) {
	for i, r := range src {
		if r > h.regs[i] { // want `access to field regs`
			h.regs[i] = r // want `access to field regs`
		}
	}
}
