// Package obs is the niltracer golden fixture: its directory suffix
// internal/obs makes the Tracer and Span types tracked under the
// nil-tracer contract, so every exported function or method taking a
// pointer to them must be nil-safe before the first dereference.
package obs

// Tracer is the fixture stand-in for the real tracer.
type Tracer struct {
	names []string
}

// Span is the fixture stand-in for a span.
type Span struct {
	name string
}

// Bad dereferences a field before any nil check.
func Bad(t *Tracer) int {
	return len(t.names) // want `access to field names`
}

// Clone dereferences the pointer explicitly without a guard.
func (t *Tracer) Clone() Tracer {
	return *t // want `explicit dereference`
}

// Good guards with the early-return idiom.
func Good(t *Tracer) int {
	if t == nil {
		return 0
	}
	return len(t.names)
}

// Name uses the idiomatic single-line short-circuit guard: the right
// operand of || only evaluates when s is non-nil.
func (s *Span) Name() string {
	if s == nil || s.name == "" {
		return "anon"
	}
	return s.name
}

// Branch guards one arm only; the deref in the guarded arm passes, the
// fall-through deref fails.
func Branch(t *Tracer, on bool) int {
	if t != nil && on {
		return len(t.names)
	}
	return len(t.names) // want `access to field names`
}

// helper is unexported: outside the contract, callers inside the
// package guard at the boundary.
func helper(t *Tracer) int { return len(t.names) }

var _ = helper
