// Package hotpath is the hotpath-alloc golden fixture: the four
// forbidden allocation patterns inside //subsim:hotpath functions, the
// allowed arena/scratch patterns, and the cold-function negative.
package hotpath

import "fmt"

// sink consumes an interface argument (the boxing boundary).
func sink(v any) { _ = v }

// process is marked hot and exhibits all four forbidden patterns.
//
//subsim:hotpath
func process(data []int32, scratch []int32) []int32 {
	var grown []int32
	for _, v := range data {
		grown = append(grown, v) // want `append to unsized local slice "grown"`
		scratch = append(scratch, v)
	}
	sized := make([]int32, 0, len(data))
	for _, v := range data {
		sized = append(sized, v)
	}
	fmt.Println(len(sized)) // want `fmt.Println in hot-path function process`
	sink(len(data))         // want `passing int as interface`
	n := 0
	f := func() { n++ } // want `closure capturing "n" in hot-path function process`
	f()
	return grown
}

// cold exhibits the same patterns without the annotation: no findings,
// proving the analyzer is scoped to annotated functions.
func cold(data []int32) []int32 {
	var grown []int32
	for _, v := range data {
		grown = append(grown, v)
	}
	fmt.Println(len(grown))
	sink(len(data))
	return grown
}

// waved is hot but suppresses an accepted one-off allocation.
//
//subsim:hotpath
func waved(data []int32) []int32 {
	var out []int32
	//lint:allow alloc (fixture: accepted one-off allocation)
	out = append(out, data...)
	return out
}

// hoisted shows the allowed forms: capture-free literal, interface
// already at the boundary, sized locals.
//
//subsim:hotpath
func hoisted(data []int32, v any) int {
	f := func(x int32) int32 { return x * 2 }
	sink(v) // v is already an interface: no boxing
	total := 0
	for _, x := range data {
		total += int(f(x))
	}
	return total
}

var (
	_ = process
	_ = cold
	_ = waved
	_ = hoisted
)
