// Package rrset is the nodeterminism golden fixture; the directory
// suffix internal/rrset places it inside the deterministic algorithm
// set, where math/rand imports, wall-clock reads, and map iteration are
// forbidden.
package rrset

import (
	"math/rand" // want `import of math/rand in a deterministic algorithm package`
	"sort"
	"time"
)

// Clock reads the wall clock without an allowlist entry.
func Clock() int64 {
	t := time.Now() // want `time.Now in a deterministic algorithm package`
	return t.UnixNano()
}

// Span reads the wall clock for timing only, with the allowlisted form:
// suppressed on the same line and on the preceding line.
func Span() time.Duration {
	start := time.Now() //lint:allow timing (fixture: span timing only)
	//lint:allow timing (fixture: span timing only)
	return time.Since(start)
}

// Sum iterates a map; the runtime-randomised order reaches the output.
func Sum(m map[int]int) int {
	s := 0
	for k, v := range m { // want `map iteration in a deterministic algorithm package`
		s += k * v
	}
	return s
}

// Keys collects map keys and sorts them, the allowlisted
// order-independent pattern.
func Keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	//lint:allow maprange (fixture: sorted after collection)
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Shuffle draws from the forbidden global stream (the import itself is
// the finding; the call sites need no separate diagnostic).
func Shuffle(n int) int { return rand.Intn(n) }

//lint:allow timing (fixture: stale, suppresses nothing) // want `stale suppression: no nodeterminism diagnostic of class "timing"`
var staleAnchor = 0
