// Package flight is the golden fixture for the flight-recorder lint
// extensions: the directory suffix internal/obs/flight makes Recorder,
// Journal, History, Watchdog and Sampler tracked under the nil-tracer
// contract, and the hotpath-alloc analyzer requires every
// Recorder.Emit call in a //subsim:hotpath function to sit under a nil
// guard on the receiver.
package flight

// Recorder is the fixture stand-in for one single-writer journal stream.
type Recorder struct {
	cursor uint64
}

// Journal is the fixture stand-in for the stream owner.
type Journal struct {
	streams []*Recorder
}

// History is the fixture stand-in for the runtime-metrics ring.
type History struct {
	written uint64
}

// Emit is nil-safe like the real recorder: guarded before the write.
func (r *Recorder) Emit(kind uint8, label string, a, b int64) {
	if r == nil {
		return
	}
	r.cursor++
}

// Written reads the cursor with no guard: the nil-tracer contract
// violation on the new Recorder type.
func Written(r *Recorder) uint64 {
	return r.cursor // want `access to field cursor`
}

// Stream indexes the stream vector before any nil check.
func (j *Journal) Stream(i int) *Recorder {
	return j.streams[i] // want `access to field streams`
}

// StreamSafe is the guarded version: no finding.
func StreamSafe(j *Journal, i int) *Recorder {
	if j == nil || i >= len(j.streams) {
		return nil
	}
	return j.streams[i]
}

// Samples uses the idiomatic single-line short-circuit guard on the
// history ring: the right operand only evaluates when h is non-nil.
func (h *History) Samples() uint64 {
	if h == nil || h.written == 0 {
		return 0
	}
	return h.written
}

// gen is the instrumented-worker stand-in for the hot-path checks.
type gen struct {
	rec  *Recorder
	sets int64
}

// GenerateInto mirrors the journal-aware hot path: the Emit call sits
// under the `if g.rec != nil` guard, so the disabled path skips
// journaling entirely. No findings.
//
//subsim:hotpath
func (g *gen) GenerateInto(n int) {
	g.sets += int64(n)
	if g.rec != nil {
		g.rec.Emit(1, "round", g.sets, 0)
	}
}

// hoisted re-binds the guarded recorder to a local inside the guard;
// the local inherits the guard.
//
//subsim:hotpath
func (g *gen) hoisted() {
	if g.rec != nil {
		r := g.rec
		r.Emit(1, "", 0, 0)
	}
}

// unguarded journals without the guard: flagged even though Emit is
// nil-safe — a hot loop must not pay a method call per set on the
// disabled path.
//
//subsim:hotpath
func (g *gen) unguarded() {
	g.rec.Emit(1, "", g.sets, 0) // want `flight g.rec.Emit in hot-path function unguarded`
}

// cold performs the same unguarded call without the hotpath marker:
// the discipline is scoped to annotated functions.
func (g *gen) cold() {
	g.rec.Emit(1, "", 0, 0)
}
