package lintpass

import (
	"go/ast"
	"go/token"
	"go/types"
)

// trackedObsTypes are the observability types whose nil value means
// "instrumentation disabled" under the nil-tracer zero-overhead
// contract (see internal/obs): any exported function or method that
// accepts a pointer to one of them must behave as a no-op (or
// equivalent) for nil, which concretely means no field access through
// the pointer before a dominating nil check. Method calls on the
// pointer are permitted — the contract makes every method of these
// types nil-safe, and this analyzer is exactly what enforces that
// promise inside the obs package itself. The value is the package-path
// suffix the type must live under (pathHasSuffixDir matching), so the
// execution-timeline types are covered alongside the core obs ones.
var trackedObsTypes = map[string]string{
	"Tracer":    "internal/obs",
	"Span":      "internal/obs",
	"MetricSet": "internal/obs",
	"Counter":   "internal/obs",
	"Histogram": "internal/obs",
	"Timeline":  "internal/obs/timeline",
	"Ring":      "internal/obs/timeline",
	// The HLL sketch estimator follows the same contract: a nil *HLL is
	// a valid "no sketch" value, so its exported methods must nil-check
	// before touching the register file.
	"HLL": "internal/coverage",
	// The flight recorder extends the contract to the black box: a nil
	// *Recorder/*Journal/*History/*Watchdog is the disabled instrument
	// (journal off, no sampler, no watchdog), and a nil *Flight is a
	// tracer without EnableFlight — all of their exported methods must
	// no-op on nil so call sites never need their own guards.
	"Recorder": "internal/obs/flight",
	"Journal":  "internal/obs/flight",
	"History":  "internal/obs/flight",
	"Watchdog": "internal/obs/flight",
	"Sampler":  "internal/obs/flight",
	"Flight":   "internal/obs",
}

// NilTracer proves the nil-safety contract: for every exported function
// or method with a receiver/parameter of type *obs.Tracer, *obs.Span,
// *obs.MetricSet, *obs.Counter, *obs.Histogram, *timeline.Timeline or
// *timeline.Ring, each field access (or explicit dereference) through
// that pointer must be dominated by a nil check on every path from the
// function entry.
var NilTracer = &Analyzer{
	Name: "niltracer",
	Doc:  "exported functions taking obs tracer/metric pointers must be nil-safe before the first dereference",
	Run:  runNilTracer,
}

func runNilTracer(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			for _, v := range trackedParams(pass, fn) {
				nc := &nilCheck{pass: pass, fn: fn, v: v}
				nc.block(fn.Body.List, false)
			}
		}
	}
}

// trackedParams collects the receiver and parameters of fn whose type is
// a pointer to one of the tracked obs types.
func trackedParams(pass *Pass, fn *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				v, ok := pass.Info.Defs[name].(*types.Var)
				if ok && isTrackedObsPointer(v.Type()) {
					out = append(out, v)
				}
			}
		}
	}
	collect(fn.Recv)
	if fn.Type.Params != nil {
		collect(fn.Type.Params)
	}
	return out
}

// isTrackedObsPointer reports whether t is *obs.T for a tracked T.
func isTrackedObsPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	suffix, tracked := trackedObsTypes[obj.Name()]
	if !tracked {
		return false
	}
	return pathHasSuffixDir(obj.Pkg().Path(), suffix)
}

// nilCheck walks one function body tracking, per statement, whether the
// tracked pointer is proven non-nil ("guarded") on the current path.
// The analysis is a conservative straight-line walk: guards established
// inside loops or non-dominating branches do not escape them.
type nilCheck struct {
	pass *Pass
	fn   *ast.FuncDecl
	v    *types.Var
}

// block walks a statement list and returns whether the pointer is
// guarded after the list on the fall-through path.
func (nc *nilCheck) block(stmts []ast.Stmt, guarded bool) bool {
	for _, s := range stmts {
		guarded = nc.stmt(s, guarded)
	}
	return guarded
}

func (nc *nilCheck) stmt(s ast.Stmt, guarded bool) bool {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			guarded = nc.stmt(s.Init, guarded)
		}
		switch {
		case nc.impliedByNil(s.Cond):
			// `if v == nil [|| ...] { ... }`: the branch body runs with v
			// possibly nil, the else branch and — when the body always
			// jumps — the fall-through run with v non-nil.
			nc.scan(s.Cond, guarded)
			nc.block(s.Body.List, guarded)
			if s.Else != nil {
				nc.stmt(s.Else, true)
			}
			if terminates(s.Body) {
				return true
			}
			return guarded
		case nc.impliesNonNil(s.Cond):
			// `if v != nil [&& ...] { ... }`: body guarded, else not.
			nc.scan(s.Cond, guarded)
			nc.block(s.Body.List, true)
			if s.Else != nil {
				nc.stmt(s.Else, guarded)
			}
			return guarded
		default:
			nc.scan(s.Cond, guarded)
			nc.block(s.Body.List, guarded)
			if s.Else != nil {
				nc.stmt(s.Else, guarded)
			}
			return guarded
		}
	case *ast.BlockStmt:
		return nc.block(s.List, guarded)
	case *ast.LabeledStmt:
		return nc.stmt(s.Stmt, guarded)
	case *ast.AssignStmt:
		nc.scan(s, guarded)
		// Reassignment of the tracked pointer resets the analysis: a
		// non-nil initialiser re-guards it, a literal nil un-guards it.
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || nc.objOf(id) != nc.v {
				continue
			}
			if i < len(s.Rhs) {
				if tv, ok := nc.pass.Info.Types[s.Rhs[i]]; ok && tv.IsNil() {
					return false
				}
			}
			return true
		}
		return guarded
	case *ast.ForStmt:
		if s.Init != nil {
			guarded = nc.stmt(s.Init, guarded)
		}
		if s.Cond != nil {
			nc.scan(s.Cond, guarded)
		}
		if s.Post != nil {
			nc.stmt(s.Post, guarded)
		}
		nc.block(s.Body.List, guarded)
		return guarded
	case *ast.RangeStmt:
		nc.scan(s.X, guarded)
		nc.block(s.Body.List, guarded)
		return guarded
	case *ast.SwitchStmt:
		if s.Init != nil {
			guarded = nc.stmt(s.Init, guarded)
		}
		if s.Tag != nil {
			nc.scan(s.Tag, guarded)
		}
		nc.block(s.Body.List, guarded)
		return guarded
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		nc.scan(s, guarded)
		return guarded
	case *ast.CaseClause:
		for _, e := range s.List {
			nc.scan(e, guarded)
		}
		nc.block(s.Body, guarded)
		return guarded
	case *ast.CommClause:
		if s.Comm != nil {
			nc.stmt(s.Comm, guarded)
		}
		nc.block(s.Body, guarded)
		return guarded
	case nil:
		return guarded
	default:
		nc.scan(s, guarded)
		return guarded
	}
}

// scan flags unguarded dereferences of the tracked pointer anywhere in
// the subtree (including function literals, which inherit the current
// path state conservatively). Short-circuit boolean operators are
// modelled: in `v == nil || v.f != 0` the right operand only evaluates
// with v non-nil, which is the idiomatic single-line guard.
func (nc *nilCheck) scan(n ast.Node, guarded bool) {
	if guarded || n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LOR:
				nc.scan(e.X, false)
				nc.scan(e.Y, nc.impliedByNil(e.X))
				return false
			case token.LAND:
				nc.scan(e.X, false)
				nc.scan(e.Y, nc.impliesNonNil(e.X))
				return false
			}
			return true
		case *ast.SelectorExpr:
			id, ok := e.X.(*ast.Ident)
			if !ok || nc.objOf(id) != nc.v {
				return true
			}
			sel, ok := nc.pass.Info.Selections[e]
			if ok && sel.Kind() == types.FieldVal {
				nc.report(e.Pos(), "access to field "+e.Sel.Name)
			}
			return true
		case *ast.StarExpr:
			if id, ok := e.X.(*ast.Ident); ok && nc.objOf(id) == nc.v {
				nc.report(e.Pos(), "explicit dereference")
			}
			return true
		}
		return true
	})
}

func (nc *nilCheck) report(pos token.Pos, what string) {
	nc.pass.Reportf(pos,
		"%s of nil-able %s %q before a nil check on all paths in exported %s (nil-tracer contract); guard with `if %s == nil`",
		what, nc.v.Type().String(), nc.v.Name(), nc.fn.Name.Name, nc.v.Name())
}

func (nc *nilCheck) objOf(id *ast.Ident) types.Object {
	if obj := nc.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return nc.pass.Info.Defs[id]
}

// impliedByNil reports whether cond is guaranteed true when v == nil,
// i.e. `v == nil`, `v == nil || X`, or conjunctions/disjunctions built
// from such terms. Used for early-return guards.
func (nc *nilCheck) impliedByNil(cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL:
			return nc.isNilCompare(e)
		case token.LOR:
			return nc.impliedByNil(e.X) || nc.impliedByNil(e.Y)
		case token.LAND:
			return nc.impliedByNil(e.X) && nc.impliedByNil(e.Y)
		}
	}
	return false
}

// impliesNonNil reports whether cond being true guarantees v != nil,
// i.e. `v != nil`, `v != nil && X`, etc. Used for guarded branches.
func (nc *nilCheck) impliesNonNil(cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ:
			return nc.isNilCompare(e)
		case token.LAND:
			return nc.impliesNonNil(e.X) || nc.impliesNonNil(e.Y)
		case token.LOR:
			return nc.impliesNonNil(e.X) && nc.impliesNonNil(e.Y)
		}
	}
	return false
}

// isNilCompare reports whether e compares the tracked pointer with nil.
func (nc *nilCheck) isNilCompare(e *ast.BinaryExpr) bool {
	matches := func(x, y ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok || nc.objOf(id) != nc.v {
			return false
		}
		tv, ok := nc.pass.Info.Types[y]
		return ok && tv.IsNil()
	}
	return matches(e.X, e.Y) || matches(e.Y, e.X)
}

// terminates reports whether a block always leaves the enclosing
// statement list: its last statement is a return, a branch
// (break/continue/goto), or a panic call.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	}
	return false
}
