package lintpass

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// The directive grammar. Two namespaces exist:
//
//	//lint:allow <class> [reason...]   — suppress one diagnostic class on
//	                                     this line or the next one
//	//subsim:hotpath                   — mark the documented function as a
//	                                     hot path for the hotpath-alloc
//	                                     analyzer
//
// Directives are themselves linted (see the Directives analyzer): an
// unknown verb, an unknown class, or a suppression that suppresses
// nothing is an error, so the annotation layer cannot rot.
const (
	// ClassTiming suppresses nodeterminism findings for wall-clock reads
	// that only feed span/metric timing, never algorithm output.
	ClassTiming = "timing"
	// ClassMapRange suppresses nodeterminism findings for map iteration
	// whose order provably does not reach algorithm output.
	ClassMapRange = "maprange"
	// ClassFloatEq suppresses floateq findings for intentional exact
	// floating-point comparisons (sentinel values, clamped endpoints).
	ClassFloatEq = "floateq"
	// ClassErrCheck suppresses errcheck findings for calls whose error is
	// intentionally discarded.
	ClassErrCheck = "errcheck"
	// ClassAlloc suppresses hotpath-alloc findings for accepted
	// allocations inside //subsim:hotpath functions.
	ClassAlloc = "alloc"
	// ClassAtomic suppresses atomicmix findings for accepted plain
	// accesses to atomically-accessed fields (single-goroutine setup or
	// teardown phases that the type system cannot see).
	ClassAtomic = "atomic"
	// ClassCapture suppresses gocapture findings for goroutine-body
	// writes that are disjoint for reasons the index analysis cannot
	// prove (e.g. observability-only buffers with external coordination).
	ClassCapture = "capture"
	// ClassLockCopy suppresses lockcopy findings for intentional copies
	// of lock-carrying values (e.g. exporting a snapshot of a ring that
	// is provably quiescent).
	ClassLockCopy = "lockcopy"
)

// KnownClasses returns the suppression classes and the analyzers that
// own them, for CLI help output.
func KnownClasses() map[string]string {
	out := make(map[string]string, len(knownClasses))
	for c, a := range knownClasses {
		out[c] = a
	}
	return out
}

// knownClasses maps each suppression class to the analyzer that owns it,
// for the -list output and the stale-suppression check.
var knownClasses = map[string]string{
	ClassTiming:   "nodeterminism",
	ClassMapRange: "nodeterminism",
	ClassFloatEq:  "floateq",
	ClassErrCheck: "errcheck",
	ClassAlloc:    "hotpath-alloc",
	ClassAtomic:   "atomicmix",
	ClassCapture:  "gocapture",
	ClassLockCopy: "lockcopy",
}

// directive is one parsed //lint: or //subsim: comment.
type directive struct {
	pos   token.Pos
	file  string
	line  int
	cover int    // last line an allow directive suppresses (>= line)
	space string // "lint" or "subsim"
	verb  string // "allow", "hotpath", ...
	class string // suppression class for lint:allow
	used  bool   // consumed by a suppression or attached to a func
}

// DirectiveSet holds every directive of one package plus the bookkeeping
// the stale-suppression check needs: which classes the analyzers
// actually evaluated for this package, and which directives fired.
// suppress and markChecked are safe for concurrent use (the parallel
// driver runs several analyzers of one package at once); the remaining
// state is written at construction and read by the hygiene analyzer
// after every other analyzer has joined.
type DirectiveSet struct {
	all      []*directive
	allows   map[string][]*directive // file -> allow directives, any line
	hotpath  map[*ast.FuncDecl]*directive
	parallel map[*ast.FuncDecl]*directive
	checked  map[string]bool // classes evaluated for this package

	mu sync.Mutex // guards directive.used and checked during analysis
}

// newDirectiveSet parses the directives of the package files, attaches
// //subsim:hotpath and //subsim:parallel markers to their documented
// functions, and computes each allow directive's coverage extent.
func newDirectiveSet(fset *token.FileSet, files []*ast.File) *DirectiveSet {
	ds := &DirectiveSet{
		allows:   map[string][]*directive{},
		hotpath:  map[*ast.FuncDecl]*directive{},
		parallel: map[*ast.FuncDecl]*directive{},
		checked:  map[string]bool{},
	}
	byComment := map[*ast.Comment]*directive{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok { // /* ... */ comments never carry directives
					continue
				}
				var space string
				switch {
				case strings.HasPrefix(text, "lint:"):
					space = "lint"
				case strings.HasPrefix(text, "subsim:"):
					space = "subsim"
				default:
					continue
				}
				rest := strings.TrimPrefix(text, space+":")
				fields := strings.Fields(rest)
				d := &directive{pos: c.Pos(), space: space}
				if len(fields) > 0 {
					d.verb = fields[0]
				}
				if len(fields) > 1 {
					d.class = fields[1]
				}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				ds.all = append(ds.all, d)
				byComment[c] = d
				if d.space == "lint" && d.verb == "allow" {
					ds.allows[d.file] = append(ds.allows[d.file], d)
				}
			}
		}
		// Attach hotpath/parallel markers to the functions they document.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				d := byComment[c]
				if d == nil || d.space != "subsim" {
					continue
				}
				switch d.verb {
				case "hotpath":
					d.used = true
					ds.hotpath[fn] = d
				case "parallel":
					d.used = true
					ds.parallel[fn] = d
				}
			}
		}
		coverExtents(fset, f, ds.allows)
	}
	sort.Slice(ds.all, func(i, j int) bool {
		if ds.all[i].file != ds.all[j].file {
			return ds.all[i].file < ds.all[j].file
		}
		return ds.all[i].line < ds.all[j].line
	})
	return ds
}

// coverExtents widens each allow directive's suppression window from
// "this line or the next" to the full line extent of the statement it
// annotates. Waivers are written against a logical statement, but gofmt
// re-wraps long lines freely, so a diagnostic anchored on a continuation
// line (an argument three lines into a wrapped call) must still match
// the directive sitting on or above the statement's first line —
// otherwise every re-format turns live waivers into spurious
// stale-suppression errors. The extent is the smallest simple statement
// (assignment, expression, return, go/defer, send, inc/dec, or var
// declaration — never a block-carrying statement, whose body would
// over-suppress) starting on the directive's own line (trailing comment)
// or the line below it (leading comment).
func coverExtents(fset *token.FileSet, f *ast.File, allows map[string][]*directive) {
	// endByStart maps a statement's first line to the last line of the
	// widest simple statement starting there (post-gofmt at most one
	// statement starts per line, so "widest" only matters for
	// hand-written one-liners).
	endByStart := map[int]int{}
	note := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > endByStart[start] {
			endByStart[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt,
			*ast.ValueSpec, *ast.Field:
			note(n)
		}
		return true
	})
	for _, ds := range allows {
		for _, d := range ds {
			d.cover = d.line + 1
			if end := endByStart[d.line]; end > d.cover {
				d.cover = end
			}
			if end := endByStart[d.line+1]; end > d.cover {
				d.cover = end
			}
		}
	}
}

// markChecked records that the analyzer owning class evaluated this
// package, making unused `allow class` directives stale errors.
func (ds *DirectiveSet) markChecked(class string) {
	ds.mu.Lock()
	ds.checked[class] = true
	ds.mu.Unlock()
}

// suppress reports whether an allow directive for class covers the given
// position — same line, the immediately following line, or any
// continuation line of the annotated statement (see coverExtents) —
// marking the directive used. Matching is by line only, never column:
// re-indenting or re-wrapping an annotated statement cannot stale a
// waiver.
func (ds *DirectiveSet) suppress(class string, pos token.Position) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for _, d := range ds.allows[pos.Filename] {
		if d.class != class {
			continue
		}
		if pos.Line >= d.line && pos.Line <= d.cover {
			d.used = true
			return true
		}
	}
	return false
}

// IsHotPath reports whether fn carries a //subsim:hotpath marker.
func (ds *DirectiveSet) IsHotPath(fn *ast.FuncDecl) bool {
	_, ok := ds.hotpath[fn]
	return ok
}

// IsParallel reports whether fn carries a //subsim:parallel marker (the
// function fans work out over goroutines under the disjoint-write
// contract; see the gocapture analyzer).
func (ds *DirectiveSet) IsParallel(fn *ast.FuncDecl) bool {
	_, ok := ds.parallel[fn]
	return ok
}

// Directives is the hygiene analyzer: unknown or malformed //lint: and
// //subsim: directives are errors, as are suppressions that no longer
// suppress anything. It must run after the other analyzers (Run
// guarantees the ordering).
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "flag unknown, malformed, misplaced, and stale //lint:/ //subsim: directives",
	Run:  runDirectives,
}

func runDirectives(pass *Pass) {
	for _, d := range pass.Directives.all {
		switch {
		case d.space == "lint" && d.verb == "allow":
			if d.class == "" {
				pass.Reportf(d.pos, "//lint:allow needs a suppression class (%s)", classList())
				continue
			}
			owner, known := knownClasses[d.class]
			if !known {
				pass.Reportf(d.pos, "unknown suppression class %q in //lint:allow (%s)", d.class, classList())
				continue
			}
			if !d.used && pass.Directives.checked[d.class] {
				pass.Reportf(d.pos, "stale suppression: no %s diagnostic of class %q within the annotated statement", owner, d.class)
			}
		case d.space == "lint":
			pass.Reportf(d.pos, "unknown directive //lint:%s (only //lint:allow is defined)", d.verb)
		case d.space == "subsim" && (d.verb == "hotpath" || d.verb == "parallel"):
			if !d.used {
				pass.Reportf(d.pos, "//subsim:%s must appear in the doc comment of a function declaration", d.verb)
			}
		case d.space == "subsim":
			pass.Reportf(d.pos, "unknown directive //subsim:%s (known: hotpath, parallel)", d.verb)
		}
	}
}

func classList() string {
	names := make([]string, 0, len(knownClasses))
	for c := range knownClasses {
		names = append(names, c)
	}
	sort.Strings(names)
	return "known: " + strings.Join(names, ", ")
}
