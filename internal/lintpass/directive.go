package lintpass

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The directive grammar. Two namespaces exist:
//
//	//lint:allow <class> [reason...]   — suppress one diagnostic class on
//	                                     this line or the next one
//	//subsim:hotpath                   — mark the documented function as a
//	                                     hot path for the hotpath-alloc
//	                                     analyzer
//
// Directives are themselves linted (see the Directives analyzer): an
// unknown verb, an unknown class, or a suppression that suppresses
// nothing is an error, so the annotation layer cannot rot.
const (
	// ClassTiming suppresses nodeterminism findings for wall-clock reads
	// that only feed span/metric timing, never algorithm output.
	ClassTiming = "timing"
	// ClassMapRange suppresses nodeterminism findings for map iteration
	// whose order provably does not reach algorithm output.
	ClassMapRange = "maprange"
	// ClassFloatEq suppresses floateq findings for intentional exact
	// floating-point comparisons (sentinel values, clamped endpoints).
	ClassFloatEq = "floateq"
	// ClassErrCheck suppresses errcheck findings for calls whose error is
	// intentionally discarded.
	ClassErrCheck = "errcheck"
	// ClassAlloc suppresses hotpath-alloc findings for accepted
	// allocations inside //subsim:hotpath functions.
	ClassAlloc = "alloc"
)

// KnownClasses returns the suppression classes and the analyzers that
// own them, for CLI help output.
func KnownClasses() map[string]string {
	out := make(map[string]string, len(knownClasses))
	for c, a := range knownClasses {
		out[c] = a
	}
	return out
}

// knownClasses maps each suppression class to the analyzer that owns it,
// for the -list output and the stale-suppression check.
var knownClasses = map[string]string{
	ClassTiming:   "nodeterminism",
	ClassMapRange: "nodeterminism",
	ClassFloatEq:  "floateq",
	ClassErrCheck: "errcheck",
	ClassAlloc:    "hotpath-alloc",
}

// directive is one parsed //lint: or //subsim: comment.
type directive struct {
	pos   token.Pos
	file  string
	line  int
	space string // "lint" or "subsim"
	verb  string // "allow", "hotpath", ...
	class string // suppression class for lint:allow
	used  bool   // consumed by a suppression or attached to a func
}

// DirectiveSet holds every directive of one package plus the bookkeeping
// the stale-suppression check needs: which classes the analyzers
// actually evaluated for this package, and which directives fired.
type DirectiveSet struct {
	all     []*directive
	allows  map[string][]*directive // file -> allow directives, any line
	hotpath map[*ast.FuncDecl]*directive
	checked map[string]bool // classes evaluated for this package
}

// newDirectiveSet parses the directives of the package files and
// attaches //subsim:hotpath markers to their documented functions.
func newDirectiveSet(fset *token.FileSet, files []*ast.File) *DirectiveSet {
	ds := &DirectiveSet{
		allows:  map[string][]*directive{},
		hotpath: map[*ast.FuncDecl]*directive{},
		checked: map[string]bool{},
	}
	byComment := map[*ast.Comment]*directive{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok { // /* ... */ comments never carry directives
					continue
				}
				var space string
				switch {
				case strings.HasPrefix(text, "lint:"):
					space = "lint"
				case strings.HasPrefix(text, "subsim:"):
					space = "subsim"
				default:
					continue
				}
				rest := strings.TrimPrefix(text, space+":")
				fields := strings.Fields(rest)
				d := &directive{pos: c.Pos(), space: space}
				if len(fields) > 0 {
					d.verb = fields[0]
				}
				if len(fields) > 1 {
					d.class = fields[1]
				}
				pos := fset.Position(c.Pos())
				d.file, d.line = pos.Filename, pos.Line
				ds.all = append(ds.all, d)
				byComment[c] = d
				if d.space == "lint" && d.verb == "allow" {
					ds.allows[d.file] = append(ds.allows[d.file], d)
				}
			}
		}
		// Attach hotpath markers to the functions they document.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if d := byComment[c]; d != nil && d.space == "subsim" && d.verb == "hotpath" {
					d.used = true
					ds.hotpath[fn] = d
				}
			}
		}
	}
	sort.Slice(ds.all, func(i, j int) bool {
		if ds.all[i].file != ds.all[j].file {
			return ds.all[i].file < ds.all[j].file
		}
		return ds.all[i].line < ds.all[j].line
	})
	return ds
}

// markChecked records that the analyzer owning class evaluated this
// package, making unused `allow class` directives stale errors.
func (ds *DirectiveSet) markChecked(class string) { ds.checked[class] = true }

// suppress reports whether an allow directive for class covers the given
// position (same line, or the immediately preceding line), marking the
// directive used.
func (ds *DirectiveSet) suppress(class string, pos token.Position) bool {
	for _, d := range ds.allows[pos.Filename] {
		if d.class != class {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}

// IsHotPath reports whether fn carries a //subsim:hotpath marker.
func (ds *DirectiveSet) IsHotPath(fn *ast.FuncDecl) bool {
	_, ok := ds.hotpath[fn]
	return ok
}

// Directives is the hygiene analyzer: unknown or malformed //lint: and
// //subsim: directives are errors, as are suppressions that no longer
// suppress anything. It must run after the other analyzers (Run
// guarantees the ordering).
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "flag unknown, malformed, misplaced, and stale //lint:/ //subsim: directives",
	Run:  runDirectives,
}

func runDirectives(pass *Pass) {
	for _, d := range pass.Directives.all {
		switch {
		case d.space == "lint" && d.verb == "allow":
			if d.class == "" {
				pass.Reportf(d.pos, "//lint:allow needs a suppression class (%s)", classList())
				continue
			}
			owner, known := knownClasses[d.class]
			if !known {
				pass.Reportf(d.pos, "unknown suppression class %q in //lint:allow (%s)", d.class, classList())
				continue
			}
			if !d.used && pass.Directives.checked[d.class] {
				pass.Reportf(d.pos, "stale suppression: no %s diagnostic of class %q on this or the next line", owner, d.class)
			}
		case d.space == "lint":
			pass.Reportf(d.pos, "unknown directive //lint:%s (only //lint:allow is defined)", d.verb)
		case d.space == "subsim" && d.verb == "hotpath":
			if !d.used {
				pass.Reportf(d.pos, "//subsim:hotpath must appear in the doc comment of a function declaration")
			}
		case d.space == "subsim":
			pass.Reportf(d.pos, "unknown directive //subsim:%s (only //subsim:hotpath is defined)", d.verb)
		}
	}
}

func classList() string {
	names := make([]string, 0, len(knownClasses))
	for c := range knownClasses {
		names = append(names, c)
	}
	sort.Strings(names)
	return "known: " + strings.Join(names, ", ")
}
