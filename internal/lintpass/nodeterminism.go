package lintpass

import (
	"go/ast"
	"go/types"
	"strconv"
)

// algorithmPackages are the directory suffixes of the packages whose
// output must be bit-for-bit deterministic for a fixed seed: every RR
// set, seed pick, and bound they produce is certified reproducible by
// TestPipelineEquivalence, so all randomness must flow through the
// seedable streams of internal/rng and no wall-clock value may reach an
// algorithm decision.
var algorithmPackages = []string{
	"internal/rrset",
	"internal/im",
	"internal/core",
	"internal/sampling",
	"internal/coverage",
}

// forbiddenRandImports are the stdlib randomness sources algorithm
// packages must not touch; their global state defeats seed-stream
// determinism and their streams differ across Go releases.
var forbiddenRandImports = []string{"math/rand", "math/rand/v2"}

// clockFuncs are the time-package functions that read the wall clock.
// Timing-only uses (phase spans, build-duration histograms) are
// suppressed with //lint:allow timing.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// NoDeterminism enforces the determinism convention in algorithm
// packages: no math/rand imports, no unsuppressed wall-clock reads, and
// no iteration over maps (whose order is runtime-randomised).
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid math/rand, wall-clock reads, and map iteration in the deterministic algorithm packages",
	Run:  runNoDeterminism,
}

func isAlgorithmPackage(dir string) bool {
	for _, suffix := range algorithmPackages {
		if pathHasSuffixDir(dir, suffix) {
			return true
		}
	}
	return false
}

func runNoDeterminism(pass *Pass) {
	if !isAlgorithmPackage(pass.Dir) {
		return
	}
	pass.Directives.markChecked(ClassTiming)
	pass.Directives.markChecked(ClassMapRange)

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, bad := range forbiddenRandImports {
				if path == bad {
					pass.Reportf(imp.Pos(),
						"import of %s in a deterministic algorithm package; draw randomness from internal/rng seed streams", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := clockCall(pass, n); ok {
					pass.Report(n.Pos(), ClassTiming,
						"time.%s in a deterministic algorithm package; wall-clock values must not influence algorithm output (timing-only reads: //lint:allow timing)", name)
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Report(n.Pos(), ClassMapRange,
							"map iteration in a deterministic algorithm package has runtime-randomised order; iterate a sorted key slice (order-independent uses: //lint:allow maprange)")
					}
				}
			}
			return true
		})
	}
}

// clockCall reports whether call is time.Now/Since/Until, resolved
// through the type info so aliased imports are caught too.
func clockCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !clockFuncs[sel.Sel.Name] {
		return "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return "", false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", false
	}
	return sel.Sel.Name, true
}
