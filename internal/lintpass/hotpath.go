package lintpass

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the allocation-free contract of functions marked
// //subsim:hotpath (the arena generate→store→index pipeline, the CELF
// heap, the samplers — everything the 0 allocs/set regression tests in
// internal/im certify). Inside a marked function it flags the four
// allocation patterns that historically crept into these loops:
//
//   - implicit conversion of a non-constant concrete value to an
//     interface parameter (boxing allocates; this is how container/heap
//     cost tens of thousands of allocations before the hand-rolled CELF
//     heap);
//   - function literals that capture enclosing variables (each capture
//     forces a closure allocation, and often moves the captured variable
//     to the heap);
//   - append to a slice-typed local declared without capacity (grows by
//     reallocation in the hot loop; preallocate or reuse scratch);
//   - any call into the fmt package (interface boxing plus formatting
//     state).
//
// Appends to parameters, struct fields, and make()-with-capacity locals
// are allowed: those are the arena/scratch reuse patterns the pipeline
// is built on. Accepted one-off allocations can be waved through with
// //lint:allow alloc.
var HotPathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "flag interface boxing, capturing closures, unsized appends, and fmt calls in //subsim:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	pass.Directives.markChecked(ClassAlloc)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Directives.IsHotPath(fn) {
				continue
			}
			checkHotPathFunc(pass, fn)
		}
	}
}

func checkHotPathFunc(pass *Pass, fn *ast.FuncDecl) {
	unsized := unsizedLocalSlices(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotPathCall(pass, fn, n, unsized)
		case *ast.FuncLit:
			if capt := capturedVar(pass, fn, n); capt != nil {
				pass.Report(n.Pos(), ClassAlloc,
					"closure capturing %q in hot-path function %s allocates; hoist the closure or pass state explicitly", capt.Name(), fn.Name.Name)
			}
			return false // the literal runs on its own stack discipline
		}
		return true
	})
	checkHotPathTimeline(pass, fn)
}

// checkHotPathTimeline enforces the recording discipline inside
// //subsim:hotpath functions for both per-worker instruments: every
// Record/Now call on a *timeline.Ring and every Emit call on a
// *flight.Recorder must be dominated by a nil check on the exact
// receiver expression (`if x.ring != nil { ... x.ring.Now() ... }`).
// A nil ring or recorder makes those methods safe no-ops, but a hot
// loop must skip the calls entirely — the disabled path pays zero, not
// one method call per set — and the guard is also what lets the enabled
// branch keep its timestamps in registers. Receivers that are
// themselves guarded locals (assigned inside the guard) are fine: the
// check keys on the receiver text, so hoisting `r := ig.ring` under the
// guard passes.
func checkHotPathTimeline(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node, guarded map[string]bool)
	walk = func(n ast.Node, guarded map[string]bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.IfStmt:
				if recv, ok := nonNilGuardExpr(pass, e.Cond); ok {
					if e.Init != nil {
						walk(e.Init, guarded)
					}
					inner := map[string]bool{recv: true}
					for k := range guarded {
						inner[k] = true
					}
					// Locals assigned from a guarded expression inside the
					// branch inherit its guard.
					propagateGuardedLocals(e.Body, inner)
					walk(e.Body, inner)
					if e.Else != nil {
						walk(e.Else, guarded)
					}
					return false
				}
				return true
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch {
				case (sel.Sel.Name == "Record" || sel.Sel.Name == "Now") && isTimelineRing(pass, sel.X):
					if !guarded[exprKey(sel.X)] {
						pass.Report(e.Pos(), ClassAlloc,
							"timeline %s.%s in hot-path function %s outside an `if %s != nil` guard; the disabled path must skip recording entirely",
							exprKey(sel.X), sel.Sel.Name, fn.Name.Name, exprKey(sel.X))
					}
				case sel.Sel.Name == "Emit" && isFlightRecorder(pass, sel.X):
					if !guarded[exprKey(sel.X)] {
						pass.Report(e.Pos(), ClassAlloc,
							"flight %s.Emit in hot-path function %s outside an `if %s != nil` guard; the disabled path must skip journaling entirely",
							exprKey(sel.X), fn.Name.Name, exprKey(sel.X))
					}
				}
				return true
			}
			return true
		})
	}
	walk(fn.Body, map[string]bool{})
}

// nonNilGuardExpr recognises `X != nil` (possibly `X != nil && ...`)
// where X has type *timeline.Ring or *flight.Recorder, returning X's
// text key.
func nonNilGuardExpr(pass *Pass, cond ast.Expr) (string, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	if be.Op == token.LAND {
		return nonNilGuardExpr(pass, be.X)
	}
	if be.Op != token.NEQ {
		return "", false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if tv, ok := pass.Info.Types[y]; !ok || !tv.IsNil() {
		if tv, ok := pass.Info.Types[x]; !ok || !tv.IsNil() {
			return "", false
		}
		x = y
	}
	if !isTimelineRing(pass, x) && !isFlightRecorder(pass, x) {
		return "", false
	}
	return exprKey(x), true
}

// propagateGuardedLocals adds `name := <guarded expr>` locals declared
// directly in the block to the guarded set.
func propagateGuardedLocals(body *ast.BlockStmt, guarded map[string]bool) {
	for _, s := range body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			continue
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if guarded[exprKey(as.Rhs[i])] {
				guarded[id.Name] = true
			}
		}
	}
}

// isTimelineRing reports whether e's type is *timeline.Ring.
func isTimelineRing(pass *Pass, e ast.Expr) bool {
	return isPointerToNamed(pass, e, "Ring", "internal/obs/timeline")
}

// isFlightRecorder reports whether e's type is *flight.Recorder (the
// black-box journal's per-stream writer).
func isFlightRecorder(pass *Pass, e ast.Expr) bool {
	return isPointerToNamed(pass, e, "Recorder", "internal/obs/flight")
}

// isPointerToNamed reports whether e's type is *pkg.Name for a package
// whose import path ends in the given directory suffix.
func isPointerToNamed(pass *Pass, e ast.Expr, name, pkgSuffix string) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		pathHasSuffixDir(obj.Pkg().Path(), pkgSuffix)
}

// exprKey renders an expression as its source text, the domination key
// for the timeline-guard check.
func exprKey(e ast.Expr) string { return types.ExprString(e) }

func checkHotPathCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, unsized map[*types.Var]bool) {
	// append(s, ...) on an unsized local.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "append" && len(call.Args) > 0 {
			if target, ok := call.Args[0].(*ast.Ident); ok {
				if v, isVar := pass.Info.Uses[target].(*types.Var); isVar && unsized[v] {
					pass.Report(call.Pos(), ClassAlloc,
						"append to unsized local slice %q in hot-path function %s; preallocate with make(_, 0, n) or reuse scratch", target.Name, fn.Name.Name)
				}
			}
			return
		}
	}

	// fmt calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Report(call.Pos(), ClassAlloc,
				"fmt.%s in hot-path function %s boxes its operands and allocates; format outside the hot loop", sel.Sel.Name, fn.Name.Name)
			return
		}
	}

	// Implicit interface conversions at call boundaries (boxing).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion T(x), not a call
	}
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				paramType = slice.Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		}
		if paramType == nil || !types.IsInterface(paramType) {
			continue
		}
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.Value != nil { // constants are boxed at compile time
			continue
		}
		if atv.IsNil() || atv.Type == nil || types.IsInterface(atv.Type) {
			continue
		}
		pass.Report(arg.Pos(), ClassAlloc,
			"passing %s as interface %s in hot-path function %s boxes the value (allocates); use a concrete type or hoist out of the hot path",
			atv.Type.String(), paramType.String(), fn.Name.Name)
	}
}

// callSignature resolves the signature of a (non-builtin) call.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// unsizedLocalSlices collects the slice-typed locals of fn that are
// declared without any capacity information: `var s []T`, `s := []T{}`,
// or `s := []T(nil)`. Locals initialised by make (any arity — a length
// is capacity too), by composite literals with elements, or by calls are
// not reported; neither are parameters, named results, or fields.
func unsizedLocalSlices(pass *Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(name *ast.Ident, init ast.Expr) {
		if name.Name == "_" {
			return
		}
		v, ok := pass.Info.Defs[name].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if sliceInitUnsized(pass, init) {
			out[v] = true
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate function body, separate discipline
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var init ast.Expr
						if i < len(vs.Values) {
							init = vs.Values[i]
						}
						mark(name, init)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range n.Lhs {
				name, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Defs[name] == nil {
					continue
				}
				var init ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					init = n.Rhs[i]
				}
				mark(name, init)
			}
		}
		return true
	})
	return out
}

// sliceInitUnsized reports whether the initialiser carries no capacity:
// nil (plain var declaration), an empty composite literal, or an
// explicit nil conversion.
func sliceInitUnsized(pass *Pass, init ast.Expr) bool {
	switch e := init.(type) {
	case nil:
		return true
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if atv, ok := pass.Info.Types[e.Args[0]]; ok && atv.IsNil() {
				return true
			}
		}
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// capturedVar returns a variable that lit captures from the enclosing
// function fn (nil when the literal is capture-free). A capture is a use
// of a *types.Var whose declaration lies inside fn but outside lit.
func capturedVar(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		if pos == 0 {
			return true
		}
		// Declared within the enclosing function (including receiver and
		// parameters) but outside the literal itself?
		if pos >= fn.Pos() && pos < fn.End() && !(pos >= lit.Pos() && pos < lit.End()) {
			found = v
			return false
		}
		return true
	})
	return found
}
