package lintpass

import (
	"go/ast"
	"go/types"
)

// ErrCheck is the lite unchecked-error analyzer: an expression statement
// that calls a function returning an error silently drops it. The
// "lite" carve-outs keep the signal high:
//
//   - explicit discards (`_ = f()`, `x, _ := f()`) are intentional and
//     visible in review, so they pass;
//   - `defer f.Close()`-style deferred calls pass (the idiomatic
//     read-path cleanup; write paths in this repo double-Close and check
//     the second one);
//   - the fmt print family passes: terminal/print-stream write errors
//     are conventionally unactionable, and buffered sinks (tabwriter,
//     bufio) surface them at the Flush/Close calls this analyzer does
//     check.
//
// Remaining findings can be waved through with //lint:allow errcheck.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag silently dropped errors (expression-statement calls returning error) in non-test code",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	pass.Directives.markChecked(ClassErrCheck)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, drops := dropsError(pass, call); drops {
				pass.Report(call.Pos(), ClassErrCheck,
					"%s returns an error that is silently dropped; handle it or discard explicitly with `_ =` (or //lint:allow errcheck)", name)
			}
			return true
		})
	}
}

// dropsError reports whether call returns an error (alone or as the last
// of several results) that the expression statement discards, and a
// printable name for the callee. Exempt callees return false.
func dropsError(pass *Pass, call *ast.CallExpr) (string, bool) {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return "", false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return "", false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	if !isErrorType(last) {
		return "", false
	}
	name := calleeName(pass, call)
	if exemptErrCall(pass, call) {
		return name, false
	}
	return name, true
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil // the universe error type
}

// fmtPrintFamily is the exempt set of fmt functions (see the analyzer
// doc for the rationale).
var fmtPrintFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func exemptErrCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "fmt" && fmtPrintFamily[sel.Sel.Name]
}

// calleeName renders a readable callee for the diagnostic ("f", "x.M",
// "pkg.F").
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
