package lintpass

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatEqPackages are the directory suffixes of the packages carrying
// the concentration-bound and sampling arithmetic, where an exact
// floating-point comparison is almost always a latent bug: Chen's note
// on the IMM martingale analysis (PAPERS.md) is the canonical example of
// a silently violated numeric assumption invalidating the 1-1/e-ε
// guarantee. Intentional exact comparisons (IEEE sentinel values,
// clamped endpoints) are suppressed with //lint:allow floateq.
var floatEqPackages = []string{
	"internal/bounds",
	"internal/sampling",
}

// FloatEq flags == and != between floating-point operands in the bound
// and sampling packages.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point values in the bound/sampling arithmetic packages",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	applies := false
	for _, suffix := range floatEqPackages {
		if pathHasSuffixDir(pass.Dir, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	pass.Directives.markChecked(ClassFloatEq)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pass.Info.Types[be.X]
			yt, yok := pass.Info.Types[be.Y]
			if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant-folded at compile time
			}
			pass.Report(be.OpPos, ClassFloatEq,
				"floating-point %s comparison in bound/sampling arithmetic; compare with a tolerance or use math.Signbit/IsNaN (intentional exact compares: //lint:allow floateq)", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
