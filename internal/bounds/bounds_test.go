package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"subsim/internal/rng"
)

func TestLogChooseExactSmallValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 0},
		{5, 5, 0},
		{5, 1, math.Log(5)},
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if LogChoose(3, 5) != 0 || LogChoose(3, -1) != 0 {
		t.Error("out-of-range k should return 0")
	}
}

func TestLogChooseSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(1000)
		k := r.Intn(n + 1)
		return math.Abs(LogChoose(n, k)-LogChoose(n, n-k)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogChooseMonotoneInN(t *testing.T) {
	for n := 10; n < 100; n++ {
		if LogChoose(n+1, 5) < LogChoose(n, 5) {
			t.Fatalf("LogChoose not monotone at n=%d", n)
		}
	}
}

func TestLowerUpperBracketTruth(t *testing.T) {
	// Simulate coverage counts for a known influence and verify the
	// bounds bracket the truth with overwhelming empirical frequency.
	const (
		n     = 1000
		inf   = 120.0 // true expected influence
		theta = 5000
		delta = 0.01
		runs  = 300
	)
	p := inf / n
	r := rng.New(1)
	lowFail, highFail := 0, 0
	for run := 0; run < runs; run++ {
		var cov int64
		for i := 0; i < theta; i++ {
			if r.Bernoulli(p) {
				cov++
			}
		}
		lb := LowerBound(cov, theta, n, delta)
		if lb > inf {
			lowFail++
		}
		ub := UpperBound(cov, theta, n, delta)
		if ub < inf {
			highFail++
		}
	}
	// δ=1% per run; with 300 runs expect ~3 failures; 15+ would signal a
	// broken bound.
	if lowFail > 15 {
		t.Fatalf("lower bound exceeded the truth %d/%d times", lowFail, runs)
	}
	if highFail > 15 {
		t.Fatalf("upper bound fell below the truth %d/%d times", highFail, runs)
	}
}

func TestLowerBoundBelowEstimate(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 100 + r.Intn(10000)
		theta := int64(100 + r.Intn(100000))
		cov := int64(r.Intn(int(theta)))
		delta := 0.001 + 0.5*r.Float64()
		est := float64(cov) * float64(n) / float64(theta)
		lb := LowerBound(cov, theta, n, delta)
		ub := UpperBound(cov, theta, n, delta)
		return lb <= est+1e-9 && ub >= est-1e-9 && lb >= 0 && ub <= float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsDegenerateInputs(t *testing.T) {
	if LowerBound(10, 0, 100, 0.1) != 0 {
		t.Error("LowerBound with θ=0 should be 0")
	}
	if UpperBound(10, 0, 100, 0.1) != 100 {
		t.Error("UpperBound with θ=0 should be n")
	}
	if LowerBound(0, 100, 100, 0.5) != 0 {
		t.Error("LowerBound with zero coverage should clamp to 0")
	}
	if ub := UpperBound(1<<40, 10, 100, 0.5); ub != 100 {
		t.Errorf("UpperBound should clamp to n, got %v", ub)
	}
}

func TestBoundsTightenWithTheta(t *testing.T) {
	// Fixing the empirical mean, more samples must tighten both bounds.
	n := 1000
	prevGap := math.Inf(1)
	for _, theta := range []int64{100, 1000, 10000, 100000} {
		cov := theta / 10 // empirical influence 100
		gap := UpperBound(cov, theta, n, 0.01) - LowerBound(cov, theta, n, 0.01)
		if gap >= prevGap {
			t.Fatalf("gap did not shrink at θ=%d: %v >= %v", theta, gap, prevGap)
		}
		prevGap = gap
	}
}

func TestTheta0(t *testing.T) {
	if Theta0(1.0/2.718281828459045) != 3 {
		t.Fatalf("Theta0(1/e) = %d", Theta0(1.0/math.E))
	}
	if Theta0(0.999999) < 1 {
		t.Fatal("Theta0 must be at least 1")
	}
}

func TestThetaMaxFormulas(t *testing.T) {
	n, k := 100000, 100
	s := ThetaMaxSentinel(n, k, 0.05, 0.01)
	i := ThetaMaxIMSentinel(n, k, 10, 0.05, 0.01)
	o := ThetaMaxOPIMC(n, k, 0.1, 0.01)
	for name, v := range map[string]int64{"sentinel": s, "imsentinel": i, "opimc": o} {
		if v < 1 {
			t.Errorf("%s θ_max = %d", name, v)
		}
	}
	// Halving ε must quadruple the budget (within rounding).
	s2 := ThetaMaxSentinel(n, k, 0.025, 0.01)
	ratio := float64(s2) / float64(s)
	if math.Abs(ratio-4) > 0.01 {
		t.Errorf("ε halving scaled sentinel θ_max by %v, want 4", ratio)
	}
	// A larger sentinel prefix b shrinks C(n-b, k-b) and hence the
	// phase-2 budget.
	i2 := ThetaMaxIMSentinel(n, k, 90, 0.05, 0.01)
	if i2 >= i {
		t.Errorf("larger b did not reduce phase-2 budget: %d vs %d", i2, i)
	}
}

func TestIMMConstants(t *testing.T) {
	n, k := 10000, 50
	ls := IMMLambdaStar(n, k, 0.1, 1)
	lp := IMMLambdaPrime(n, k, math.Sqrt2*0.1, 1)
	if ls <= 0 || lp <= 0 {
		t.Fatalf("λ* = %v, λ' = %v", ls, lp)
	}
	if IMMTheta(n, k, 0.1, 1, 100) != ceilTheta(ls/100) {
		t.Fatal("IMMTheta inconsistent with λ*")
	}
	// λ* grows with k through the binomial term.
	if IMMLambdaStar(n, 2*k, 0.1, 1) <= ls {
		t.Fatal("λ* not increasing in k")
	}
}

func TestApproxFactor(t *testing.T) {
	if math.Abs(ApproxFactor(100, 100, 0)-(1-math.Pow(0.99, 100))) > 1e-12 {
		t.Fatal("ApproxFactor(k,k) wrong")
	}
	if got := ApproxFactor(10, 0, 0); got != 0 {
		t.Fatalf("ApproxFactor(b=0) = %v", got)
	}
	// b=k approaches 1-1/e from below as k grows.
	if f := ApproxFactor(1000000, 1000000, 0); math.Abs(f-(1-1/math.E)) > 1e-3 {
		t.Fatalf("large-k ApproxFactor %v", f)
	}
	if GreedyFactor(0.1) != 1-1/math.E-0.1 {
		t.Fatal("GreedyFactor wrong")
	}
}

func TestCeilTheta(t *testing.T) {
	if ceilTheta(0.5) != 1 || ceilTheta(math.NaN()) != 1 {
		t.Fatal("small/NaN input should clamp to 1")
	}
	if ceilTheta(2.1) != 3 {
		t.Fatal("ceil failed")
	}
	if ceilTheta(1e30) != int64(1e18) {
		t.Fatal("overflow clamp failed")
	}
}

func TestTightThetaNeverExceedsWorstCase(t *testing.T) {
	// The tightened analysis charges only the final certified set's
	// two-sided error, so its budget must be at most the classic one on
	// every setting — including the paper's standard ε=0.1, δ=1/n.
	for _, n := range []int{1000, 100000, 1000000} {
		delta := 1 / float64(n)
		for _, k := range []int{1, 10, 100} {
			for _, eps := range []float64{0.05, 0.1, 0.3} {
				worst := ThetaMaxOPIMC(n, k, eps, delta)
				tight := ThetaMaxTight(n, k, eps, delta)
				if tight > worst {
					t.Errorf("n=%d k=%d eps=%v: tight %d > worst %d", n, k, eps, tight, worst)
				}
				if tight < 1 {
					t.Errorf("n=%d k=%d eps=%v: tight θ %d < 1", n, k, eps, tight)
				}
				s := ThetaMaxSentinel(n, k, eps, delta)
				st := ThetaMaxSentinelTight(n, k, eps, delta)
				if st > s {
					t.Errorf("n=%d k=%d eps=%v: sentinel tight %d > worst %d", n, k, eps, st, s)
				}
				b := k / 2
				if b < 1 {
					b = 1
				}
				i := ThetaMaxIMSentinel(n, k, b, eps, delta)
				it := ThetaMaxIMSentinelTight(n, k, b, eps, delta)
				if it > i {
					t.Errorf("n=%d k=%d eps=%v: im-sentinel tight %d > worst %d", n, k, eps, it, i)
				}
			}
		}
	}
	// The standard SIGMOD setting must show a strict saving, not a tie:
	// that is the acceptance evidence for the tightened constant.
	n, k := 1000000, 100
	if w, tt := ThetaMaxOPIMC(n, k, 0.1, 1e-6), ThetaMaxTight(n, k, 0.1, 1e-6); tt >= w {
		t.Fatalf("standard setting shows no saving: tight %d vs worst %d", tt, w)
	}
}

func TestThetaTightOPTAdaptive(t *testing.T) {
	n, k := 100000, 50
	eps, delta := 0.1, 1e-5
	base := ThetaMaxTight(n, k, eps, delta)
	// A certified OPT lower bound above k must shrink the budget
	// (inverse-linearly, within ceil rounding).
	half := ThetaTightOPT(n, k, eps, delta, 2*float64(k))
	if half > base/2+1 {
		t.Fatalf("optLB=2k budget %d, want ≲ %d", half, base/2+1)
	}
	// Lower bounds below the trivial OPT ≥ k clamp to the k-denominator
	// budget instead of inflating it.
	if got := ThetaTightOPT(n, k, eps, delta, 1); got != base {
		t.Fatalf("optLB below k gave %d, want clamp to %d", got, base)
	}
	if got := ThetaTightOPT(n, k, eps, delta, 0); got != base {
		t.Fatalf("optLB=0 gave %d, want clamp to %d", got, base)
	}
}
