// Package bounds collects the concentration-bound arithmetic shared by
// the sampling-based IM algorithms: the martingale lower/upper influence
// bounds of the paper's Equations (1) and (2), the maximum sample counts
// θ_max of Equations (3) and (4), their OPIM-C and IMM counterparts, and
// the log-binomial helper they are all built on.
//
// Conventions: n is the node count, θ the number of RR sets, Λ a coverage
// count over those sets, and δ a failure probability. All bounds are in
// "influence units" (expected numbers of nodes), i.e. already scaled by
// n/θ.
package bounds

import "math"

// LogChoose returns ln C(n, k), the log binomial coefficient, computed
// with log-gamma so it is stable for the n in the millions and k in the
// thousands used by the sample-size formulas. It returns 0 for k <= 0 or
// k >= n (and -Inf never).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// LowerBound is the paper's Equation (1): a (1-δ)-confidence lower bound
// on the expected influence of a fixed seed set whose coverage over an
// independent collection of θ RR sets is cov. The result is clamped to
// [0, n].
func LowerBound(cov int64, theta int64, n int, delta float64) float64 {
	if theta <= 0 {
		return 0
	}
	eta := math.Log(1 / delta)
	root := math.Sqrt(float64(cov)+2*eta/9) - math.Sqrt(eta/2)
	if root < 0 {
		root = 0
	}
	lb := (root*root - eta/18) * float64(n) / float64(theta)
	if lb < 0 {
		return 0
	}
	if lb > float64(n) {
		return float64(n)
	}
	return lb
}

// UpperBound is the paper's Equation (2): a (1-δ)-confidence upper bound
// on the expected influence of the optimal size-k seed set, given the
// coverage upper bound Λᵘ (see coverage.GreedyResult.CoverageUpper) over
// θ RR sets. The result is clamped to [0, n].
func UpperBound(covUpper int64, theta int64, n int, delta float64) float64 {
	if theta <= 0 {
		return float64(n)
	}
	eta := math.Log(1 / delta)
	root := math.Sqrt(float64(covUpper)+eta/2) + math.Sqrt(eta/2)
	ub := root * root * float64(n) / float64(theta)
	if ub > float64(n) {
		return float64(n)
	}
	if ub < 0 {
		return 0
	}
	return ub
}

// Theta0 is the initial RR sample count 3·ln(1/δ) used by HIST's two
// phases (and our OPIM-C), derived from the Monte-Carlo estimation lower
// bound of Dagum et al. with unit expectation and relative error near 1.
func Theta0(delta float64) int64 {
	t := math.Ceil(3 * math.Log(1/delta))
	if t < 1 {
		return 1
	}
	return int64(t)
}

// ThetaMaxSentinel is the paper's Equation (3): the RR sample budget that
// guarantees the sentinel phase's approximation with probability
// 1 - δ₁/3, obtained from Lemma 6 with I(S_k°) replaced by its lower
// bound k, ln C(n,b) by ln C(n,k) and 1-x^b by 1.
func ThetaMaxSentinel(n, k int, eps1, delta1 float64) int64 {
	ln6d := math.Log(6 / delta1)
	a := math.Sqrt(ln6d)
	b := math.Sqrt(LogChoose(n, k) + ln6d)
	t := 2 * float64(n) * (a + b) * (a + b) / (eps1 * eps1 * float64(k))
	return ceilTheta(t)
}

// ThetaMaxIMSentinel is the paper's Equation (4): the RR sample budget of
// the IM-Sentinel phase, from Lemma 7 with I(S_k°) replaced by k.
func ThetaMaxIMSentinel(n, k, b int, eps2, delta2 float64) int64 {
	ln9d := math.Log(9 / delta2)
	alpha := math.Sqrt(ln9d)
	beta := math.Sqrt((1 - 1/math.E) * (LogChoose(n-b, k-b) + ln9d))
	t := 2 * float64(n) * (alpha + beta) * (alpha + beta) / (eps2 * eps2 * float64(k))
	return ceilTheta(t)
}

// ThetaMaxOPIMC is the sample budget of OPIM-C (Tang et al. 2018) with
// the trivial OPT lower bound k: enough RR sets for the greedy seed set
// to be (1-1/e-ε)-approximate with probability 1-δ even in the final
// iteration.
func ThetaMaxOPIMC(n, k int, eps, delta float64) int64 {
	c := 1 - 1/math.E
	ln6d := math.Log(6 / delta)
	a := c * math.Sqrt(ln6d)
	b := math.Sqrt(c * (LogChoose(n, k) + ln6d))
	t := 2 * float64(n) * (a + b) * (a + b) / (eps * eps * float64(k))
	return ceilTheta(t)
}

// Tightened sample-complexity budgets, after Sadeh, Cohen & Kaplan
// ("Sample Complexity Bounds for Influence Maximization", ITCS 2020).
// The classic θ_max constants split the failure probability δ across
// six (OPIM-C) or nine (HIST's IM-sentinel) union-bound events because
// they must also cover every intermediate doubling round. The tightened
// analysis charges the sampling error of the *final, certified* seed
// set only two ways — the greedy set's coverage under-estimating and
// the optimum's coverage over-estimating — so ln(6/δ) / ln(9/δ) drops
// to ln(2/δ) while the union bound over the C(n,k) candidate optima is
// kept. Since ln is monotone, every tightened budget is ≤ its
// worst-case counterpart, and it certifies the same
// (1-1/e-ε, 1-δ) guarantee for the returned seed set. Algorithms run
// both and stop at the smaller certified θ when Options.Bound selects
// the tightened analysis.

// ThetaMaxTight is the tightened counterpart of ThetaMaxOPIMC: the same
// (a+b)² form with the two-sided failure budget ln(2/δ) in place of the
// six-way split ln(6/δ). Always ≤ ThetaMaxOPIMC.
func ThetaMaxTight(n, k int, eps, delta float64) int64 {
	return ceilTheta(thetaTightFloat(n, k, eps, delta, float64(k)))
}

// ThetaTightOPT is ThetaMaxTight with the trivial OPT lower bound k
// replaced by a certified lower bound optLB (in influence units, e.g.
// Equation (1) evaluated on an independent validation collection).
// Larger optLB ⇒ smaller budget; optLB is clamped below by k, the
// influence any size-k set attains, so the result never exceeds
// ThetaMaxTight.
func ThetaTightOPT(n, k int, eps, delta, optLB float64) int64 {
	if optLB < float64(k) {
		optLB = float64(k)
	}
	return ceilTheta(thetaTightFloat(n, k, eps, delta, optLB))
}

// ThetaMaxSentinelTight tightens Equation (3) the same way: the
// sentinel phase's 1-δ₁/3 guarantee needs only the two-sided final
// budget, ln(2/δ₁) in place of ln(6/δ₁).
func ThetaMaxSentinelTight(n, k int, eps1, delta1 float64) int64 {
	ln2d := math.Log(2 / delta1)
	a := math.Sqrt(ln2d)
	b := math.Sqrt(LogChoose(n, k) + ln2d)
	t := 2 * float64(n) * (a + b) * (a + b) / (eps1 * eps1 * float64(k))
	return ceilTheta(t)
}

// ThetaMaxIMSentinelTight tightens Equation (4): ln(3/δ₂) in place of
// the nine-way split ln(9/δ₂) (one third of the budget stays with the
// sentinel-hit estimate, the rest is two-sided).
func ThetaMaxIMSentinelTight(n, k, b int, eps2, delta2 float64) int64 {
	ln3d := math.Log(3 / delta2)
	alpha := math.Sqrt(ln3d)
	beta := math.Sqrt((1 - 1/math.E) * (LogChoose(n-b, k-b) + ln3d))
	t := 2 * float64(n) * (alpha + beta) * (alpha + beta) / (eps2 * eps2 * float64(k))
	return ceilTheta(t)
}

// thetaTightFloat is the shared (a+b)²-form budget with failure budget
// ln(2/δ) and OPT lower bound optLB.
func thetaTightFloat(n, k int, eps, delta, optLB float64) float64 {
	c := 1 - 1/math.E
	ln2d := math.Log(2 / delta)
	a := c * math.Sqrt(ln2d)
	b := math.Sqrt(c * (LogChoose(n, k) + ln2d))
	return 2 * float64(n) * (a + b) * (a + b) / (eps * eps * optLB)
}

// IMMTheta returns λ*/LB, the RR sample count IMM uses once a lower bound
// LB on OPT_k is known, with failure exponent l (δ = n^{-l}).
func IMMTheta(n, k int, eps, l, lb float64) int64 {
	return ceilTheta(IMMLambdaStar(n, k, eps, l) / lb)
}

// IMMLambdaStar is IMM's λ* constant (Tang et al. 2015, Theorem 1):
// λ* = 2n·((1-1/e)·α + β)²·ε⁻², with α = √(l·ln n + ln 2) and
// β = √((1-1/e)·(ln C(n,k) + l·ln n + ln 2)).
func IMMLambdaStar(n, k int, eps, l float64) float64 {
	c := 1 - 1/math.E
	logn := math.Log(float64(n))
	alpha := math.Sqrt(l*logn + math.Ln2)
	beta := math.Sqrt(c * (LogChoose(n, k) + l*logn + math.Ln2))
	return 2 * float64(n) * (c*alpha + beta) * (c*alpha + beta) / (eps * eps)
}

// IMMLambdaPrime is IMM's λ' constant used by the OPT-estimation phase
// (Tang et al. 2015, Section 4.2), with ε' the phase's error parameter.
func IMMLambdaPrime(n, k int, epsPrime, l float64) float64 {
	logn := math.Log(float64(n))
	return (2 + 2*epsPrime/3) * (LogChoose(n, k) + l*logn + math.Log(math.Log2(float64(n)))) *
		float64(n) / (epsPrime * epsPrime)
}

func ceilTheta(t float64) int64 {
	if t < 1 || math.IsNaN(t) {
		return 1
	}
	if t > 1e18 {
		return int64(1e18)
	}
	return int64(math.Ceil(t))
}

// ApproxFactor returns 1 - (1-1/k)^b - eps, the sentinel-phase
// approximation target for a size-b prefix (paper Section 4.1); with
// b == k it approaches the classic 1 - 1/e - eps.
func ApproxFactor(k, b int, eps float64) float64 {
	return 1 - math.Pow(1-1/float64(k), float64(b)) - eps
}

// GreedyFactor returns 1 - 1/e - eps, the standard approximation target.
func GreedyFactor(eps float64) float64 { return 1 - 1/math.E - eps }
