package coverage

import (
	"math"
	"testing"

	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// exactDegrees counts, per node, the number of sets containing it.
func exactDegrees(n int, sets [][]int32) []int {
	deg := make([]int, n)
	for _, s := range sets {
		for _, v := range s {
			deg[v]++
		}
	}
	return deg
}

func TestHLLDegreeAccuracy(t *testing.T) {
	const (
		n     = 64
		count = 4000
	)
	h := NewHLL(n, nil, 0)
	sets := randomSets(rng.New(5), n, count, 16)
	for _, s := range sets {
		h.Add(rrset.RRSet(s))
	}
	if h.NumSets() != count {
		t.Fatalf("NumSets = %d, want %d", h.NumSets(), count)
	}
	deg := exactDegrees(n, sets)
	// The standard error of a 2^8-register sketch is ~6.5%; individual
	// estimates beyond 4σ would signal a broken estimator, not noise.
	tol := 4 * h.RelError()
	for v := 0; v < n; v++ {
		got, want := float64(h.Degree(int32(v))), float64(deg[v])
		if want == 0 {
			continue
		}
		if math.Abs(got-want) > tol*want+3 {
			t.Errorf("node %d: estimated degree %v, exact %v (tol %v)", v, got, want, tol)
		}
	}
}

func TestHLLCoverageOfAccuracy(t *testing.T) {
	const (
		n     = 200
		count = 3000
	)
	h := NewHLL(n, nil, 0)
	sets := randomSets(rng.New(7), n, count, 12)
	for _, s := range sets {
		h.Add(rrset.RRSet(s))
	}
	seeds := []int32{0, 17, 55, 123, 199}
	covered := map[int]bool{}
	for i, s := range sets {
		for _, v := range s {
			for _, sd := range seeds {
				if v == sd {
					covered[i] = true
				}
			}
		}
	}
	want := float64(len(covered))
	got := float64(h.CoverageOf(seeds))
	tol := 4 * h.RelError()
	if math.Abs(got-want) > tol*want+3 {
		t.Fatalf("CoverageOf = %v, exact %v (tol %v)", got, want, tol)
	}
}

// TestHLLAbsorbEquivalence checks that AbsorbArena — serial and
// node-range-parallel — produces a register file byte-identical to
// absorbing the same sets one Add at a time.
func TestHLLAbsorbEquivalence(t *testing.T) {
	const (
		n     = 300
		count = 2500
	)
	sets := randomSets(rng.New(11), n, count, 10)
	var data []int32
	var ends []int64
	for _, s := range sets {
		data = append(data, s...)
		ends = append(ends, int64(len(data)))
	}

	ref := NewHLL(n, nil, 0)
	for _, s := range sets {
		ref.Add(rrset.RRSet(s))
	}

	defer func(old int) { parallelAbsorbMinSets = old }(parallelAbsorbMinSets)
	parallelAbsorbMinSets = 1 // force the parallel path at this size
	for _, workers := range []int{1, 2, 8} {
		h := NewHLL(n, nil, 0)
		h.SetWorkers(workers)
		if hits := h.AbsorbArena(data, ends, nil); hits != 0 {
			t.Fatalf("workers=%d: unexpected sentinel hits %d", workers, hits)
		}
		if h.NumSets() != ref.NumSets() {
			t.Fatalf("workers=%d: NumSets %d, want %d", workers, h.NumSets(), ref.NumSets())
		}
		for i := range ref.regs {
			if h.regs[i] != ref.regs[i] {
				t.Fatalf("workers=%d: register %d is %d, want %d", workers, i, h.regs[i], ref.regs[i])
			}
		}
	}
}

// TestHLLAbsorbSentinel checks sentinel-terminated sets are skipped and
// counted, and kept sets get the same ids as an Add-only stream of the
// survivors.
func TestHLLAbsorbSentinel(t *testing.T) {
	const n = 50
	sets := [][]int32{{1, 2, 3}, {4, 9}, {7}, {8, 9, 10}}
	sentinel := make([]bool, n)
	sentinel[9] = true // kills sets 1 (ends at 9) and... set 3 ends at 10
	var data []int32
	var ends []int64
	for _, s := range sets {
		data = append(data, s...)
		ends = append(ends, int64(len(data)))
	}
	h := NewHLL(n, nil, 0)
	if hits := h.AbsorbArena(data, ends, sentinel); hits != 1 {
		t.Fatalf("hits = %d, want 1 (only set {4,9} ends on the sentinel)", hits)
	}
	if h.NumSets() != 3 {
		t.Fatalf("NumSets = %d, want 3", h.NumSets())
	}
	ref := NewHLL(n, nil, 0)
	ref.Add(rrset.RRSet(sets[0]))
	ref.Add(rrset.RRSet(sets[2]))
	ref.Add(rrset.RRSet(sets[3]))
	for i := range ref.regs {
		if h.regs[i] != ref.regs[i] {
			t.Fatalf("register %d is %d, want %d", i, h.regs[i], ref.regs[i])
		}
	}
}

func TestMergeRegisters(t *testing.T) {
	a := []uint8{1, 5, 0, 2}
	b := []uint8{3, 1, 0, 7}
	if !MergeRegisters(a, b) {
		t.Fatal("same-length merge rejected")
	}
	want := []uint8{3, 5, 0, 7}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
	// Idempotent: merging again changes nothing.
	if !MergeRegisters(a, b) {
		t.Fatal("second merge rejected")
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("idempotence broken at %d", i)
		}
	}
	// Precision mismatch: rejected, destination untouched.
	snap := append([]uint8(nil), a...)
	if MergeRegisters(a, []uint8{9, 9}) {
		t.Fatal("length mismatch accepted")
	}
	for i := range snap {
		if a[i] != snap[i] {
			t.Fatal("mismatched merge mutated the destination")
		}
	}
}

func TestEstimateUnionEdgeCases(t *testing.T) {
	if EstimateUnion(nil, nil) >= 0 {
		t.Fatal("empty sketches should report -1")
	}
	if EstimateUnion([]uint8{1, 2}, []uint8{1}) >= 0 {
		t.Fatal("precision mismatch should report -1")
	}
	empty := make([]uint8, 256)
	if est := EstimateUnion(empty, empty); est < 0 || est > 1 {
		t.Fatalf("union of empty sketches estimates %v, want ~0", est)
	}
	if est := EstimateRegisters(nil); est >= 0 {
		t.Fatal("EstimateRegisters(nil) should report -1")
	}
	// Union dominates both operands: its registers are the pairwise max.
	h := NewHLL(2, nil, 0)
	for _, s := range randomSets(rng.New(3), 2, 500, 2) {
		h.Add(rrset.RRSet(s))
	}
	a, b := h.block(0), h.block(1)
	u := EstimateUnion(a, b)
	if u < EstimateRegisters(a)-1e-9 || u < EstimateRegisters(b)-1e-9 {
		t.Fatalf("union %v below an operand (%v, %v)", u, EstimateRegisters(a), EstimateRegisters(b))
	}
}

func TestNewHLLValidation(t *testing.T) {
	for _, p := range []int{1, 3, 17, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("precision %d accepted", p)
				}
			}()
			NewHLL(10, nil, p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("outDeg length mismatch accepted")
			}
		}()
		NewHLL(10, make([]int32, 3), 0)
	}()
	h := NewHLL(10, nil, 0)
	if h.Precision() != HLLDefaultPrecision {
		t.Fatalf("default precision %d, want %d", h.Precision(), HLLDefaultPrecision)
	}
	if h.Kind() != EstimatorHLL {
		t.Fatal("Kind mismatch")
	}
	if h.MemoryBytes() < int64(10*(1<<HLLDefaultPrecision)) {
		t.Fatalf("MemoryBytes %d below the register file size", h.MemoryBytes())
	}
}

// TestHLLSelectSeedsWorkerIndependent pins sketch-backend seed selection
// to identical output for any worker count.
func TestHLLSelectSeedsWorkerIndependent(t *testing.T) {
	const (
		n     = 400
		count = 3000
		k     = 8
	)
	sets := randomSets(rng.New(19), n, count, 8)
	outDeg := make([]int32, n)
	for i := range outDeg {
		outDeg[i] = int32(i % 7)
	}
	build := func(workers int) GreedyResult {
		h := NewHLL(n, outDeg, 0)
		h.SetWorkers(workers)
		for _, s := range sets {
			h.Add(rrset.RRSet(s))
		}
		return h.SelectSeeds(GreedyOptions{K: k})
	}
	defer func(old int) { parallelGainsMinNodes = old }(parallelGainsMinNodes)
	parallelGainsMinNodes = 1
	ref := build(1)
	if len(ref.Seeds) != k {
		t.Fatalf("reference selected %d seeds, want %d", len(ref.Seeds), k)
	}
	for _, workers := range []int{2, 8} {
		got := build(workers)
		if len(got.Seeds) != len(ref.Seeds) {
			t.Fatalf("workers=%d: %d seeds, want %d", workers, len(got.Seeds), len(ref.Seeds))
		}
		for i := range got.Seeds {
			if got.Seeds[i] != ref.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, got.Seeds[i], ref.Seeds[i])
			}
		}
		for i := range got.Coverage {
			if got.Coverage[i] != ref.Coverage[i] {
				t.Fatalf("workers=%d: coverage[%d] %d, want %d", workers, i, got.Coverage[i], ref.Coverage[i])
			}
		}
		if got.CoverageUpper != ref.CoverageUpper {
			t.Fatalf("workers=%d: Λᵘ %d, want %d", workers, got.CoverageUpper, ref.CoverageUpper)
		}
	}
}

// TestHLLSelectSeedsQuality: on a graph where a handful of nodes cover
// most sets, the sketch-driven greedy must find seeds whose *exact*
// coverage is within the certified relative error of the exact greedy's.
func TestHLLSelectSeedsQuality(t *testing.T) {
	const (
		n     = 500
		count = 4000
		k     = 5
	)
	r := rng.New(23)
	sets := make([][]int32, count)
	for i := range sets {
		// Popular core nodes appear in most sets; a random tail pads them.
		s := []int32{int32(r.Intn(10))}
		for j := 0; j < 4; j++ {
			s = append(s, int32(10+r.Intn(n-10)))
		}
		sets[i] = s
	}
	exact := NewIndex(n, nil)
	h := NewHLL(n, nil, 0)
	for _, s := range sets {
		exact.Add(rrset.RRSet(s))
		h.Add(rrset.RRSet(s))
	}
	exactSel := exact.SelectSeeds(GreedyOptions{K: k})
	hllSel := h.SelectSeeds(GreedyOptions{K: k})
	want := exactSel.TotalCoverage(0)
	got := exact.CoverageOf(hllSel.Seeds) // exact coverage of sketch-chosen seeds
	slack := 4 * h.RelError() * float64(want)
	if float64(got) < float64(want)-slack {
		t.Fatalf("sketch seeds cover %d exactly, exact greedy covers %d (slack %v)", got, want, slack)
	}
}
