package coverage

import (
	"testing"
	"testing/quick"

	"subsim/internal/rng"
	"subsim/internal/rrset"
)

func indexFromSets(n int, outDeg []int32, sets [][]int32) *Index {
	x := NewIndex(n, outDeg)
	for _, s := range sets {
		x.Add(rrset.RRSet(s))
	}
	return x
}

// bruteCoverage counts sets intersecting seeds.
func bruteCoverage(sets [][]int32, seeds []int32) int64 {
	inSeed := map[int32]bool{}
	for _, s := range seeds {
		inSeed[s] = true
	}
	var c int64
	for _, set := range sets {
		for _, v := range set {
			if inSeed[v] {
				c++
				break
			}
		}
	}
	return c
}

// bruteBestK exhaustively finds the maximum coverage of any k-subset.
func bruteBestK(n int, sets [][]int32, k int) int64 {
	best := int64(0)
	var rec func(start int, chosen []int32)
	rec = func(start int, chosen []int32) {
		if len(chosen) == k {
			if c := bruteCoverage(sets, chosen); c > best {
				best = c
			}
			return
		}
		for v := start; v < n; v++ {
			rec(v+1, append(chosen, int32(v)))
		}
	}
	rec(0, nil)
	return best
}

func TestCoverageOfMatchesBruteForce(t *testing.T) {
	sets := [][]int32{{0, 1}, {1, 2}, {3}, {0, 3}, {4}}
	x := indexFromSets(5, nil, sets)
	cases := [][]int32{{}, {0}, {1}, {0, 1}, {3, 4}, {0, 1, 2, 3, 4}}
	for _, seeds := range cases {
		if got, want := x.CoverageOf(seeds), bruteCoverage(sets, seeds); got != want {
			t.Errorf("CoverageOf(%v) = %d, want %d", seeds, got, want)
		}
	}
	if x.NumSets() != 5 || x.N() != 5 {
		t.Fatal("counts wrong")
	}
	if x.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d", x.Degree(1))
	}
}

func TestGreedySingleSeedIsOptimal(t *testing.T) {
	sets := [][]int32{{0, 1}, {1, 2}, {1}, {3}, {3}, {3}}
	x := indexFromSets(4, nil, sets)
	res := x.SelectSeeds(GreedyOptions{K: 1})
	if len(res.Seeds) != 1 {
		t.Fatal("wrong seed count")
	}
	// Node 1 and node 3 both cover 3 sets; tie-break by id picks 1.
	if res.Seeds[0] != 1 {
		t.Fatalf("picked %d", res.Seeds[0])
	}
	if res.Coverage[0] != 3 {
		t.Fatalf("coverage %d", res.Coverage[0])
	}
}

func TestGreedyMatchesKnownSelection(t *testing.T) {
	// Classic max-coverage: greedy picks the biggest, then the best
	// marginal.
	sets := [][]int32{
		{0}, {0}, {0}, // node 0 covers 3
		{1, 0}, {1}, // node 1 covers 2, marginal after 0 is 1
		{2}, {2}, // node 2 covers 2, marginal 2
	}
	x := indexFromSets(3, nil, sets)
	res := x.SelectSeeds(GreedyOptions{K: 2})
	if res.Seeds[0] != 0 || res.Seeds[1] != 2 {
		t.Fatalf("greedy picked %v", res.Seeds)
	}
	if res.Coverage[1] != 6 {
		t.Fatalf("total coverage %d", res.Coverage[1])
	}
}

func TestGreedyApproximationGuarantee(t *testing.T) {
	// Random instances: greedy coverage >= (1-1/e) of the exhaustive
	// optimum — in fact (1-(1-1/k)^k); check against brute force.
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		n := 6 + r.Intn(5)
		numSets := 5 + r.Intn(25)
		sets := make([][]int32, numSets)
		for i := range sets {
			sz := 1 + r.Intn(3)
			seen := map[int32]bool{}
			for len(seen) < sz {
				seen[int32(r.Intn(n))] = true
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
		}
		k := 1 + r.Intn(3)
		x := indexFromSets(n, nil, sets)
		res := x.SelectSeeds(GreedyOptions{K: k})
		opt := bruteBestK(n, sets, k)
		if float64(res.TotalCoverage(0)) < (1-1.0/2.718281829)*float64(opt)-1e-9 {
			t.Fatalf("trial %d: greedy %d below (1-1/e)·opt (%d)", trial, res.TotalCoverage(0), opt)
		}
		if res.CoverageUpper < opt {
			t.Fatalf("trial %d: upper bound %d below optimum %d", trial, res.CoverageUpper, opt)
		}
	}
}

// naiveGreedy is an eager reference implementation used to validate the
// lazy CELF path.
func naiveGreedy(n int, sets [][]int32, k int, outDeg []int32) []int32 {
	covered := make([]bool, len(sets))
	var seeds []int32
	chosen := make([]bool, n)
	for round := 0; round < k && round < n; round++ {
		bestV, bestGain := int32(-1), int64(-1)
		for v := int32(0); v < int32(n); v++ {
			if chosen[v] {
				continue
			}
			var gain int64
			for i, set := range sets {
				if covered[i] {
					continue
				}
				for _, u := range set {
					if u == v {
						gain++
						break
					}
				}
			}
			better := gain > bestGain
			if gain == bestGain && outDeg != nil && bestV >= 0 && outDeg[v] > outDeg[bestV] {
				better = true
			}
			if better {
				bestV, bestGain = v, gain
			}
		}
		chosen[bestV] = true
		seeds = append(seeds, bestV)
		for i, set := range sets {
			if covered[i] {
				continue
			}
			for _, u := range set {
				if u == bestV {
					covered[i] = true
					break
				}
			}
		}
	}
	return seeds
}

// TestLazyGreedyMatchesEagerGreedy quick-checks that the CELF heap
// selects exactly the eager greedy sequence (with matching tie-breaks).
func TestLazyGreedyMatchesEagerGreedy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(12)
		numSets := r.Intn(40)
		sets := make([][]int32, numSets)
		for i := range sets {
			sz := 1 + r.Intn(4)
			seen := map[int32]bool{}
			for len(seen) < sz {
				seen[int32(r.Intn(n))] = true
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
		}
		outDeg := make([]int32, n)
		for v := range outDeg {
			outDeg[v] = int32(r.Intn(5))
		}
		k := 1 + r.Intn(n)
		for _, revised := range []bool{false, true} {
			var od []int32
			if revised {
				od = outDeg
			}
			x := indexFromSets(n, od, sets)
			lazy := x.SelectSeeds(GreedyOptions{K: k, Revised: revised}).Seeds
			eager := naiveGreedy(n, sets, k, od)
			if len(lazy) != len(eager) {
				return false
			}
			for i := range lazy {
				if lazy[i] != eager[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRevisedTieBreakPrefersOutDegree(t *testing.T) {
	// Nodes 0 and 1 cover the same single set; node 1 has the larger
	// out-degree and must win under Revised greedy.
	sets := [][]int32{{0, 1}}
	outDeg := []int32{1, 5, 0}
	x := indexFromSets(3, outDeg, sets)
	res := x.SelectSeeds(GreedyOptions{K: 1, Revised: true})
	if res.Seeds[0] != 1 {
		t.Fatalf("revised greedy picked %d", res.Seeds[0])
	}
	// Classic greedy breaks ties by id instead.
	res = x.SelectSeeds(GreedyOptions{K: 1})
	if res.Seeds[0] != 0 {
		t.Fatalf("classic greedy picked %d", res.Seeds[0])
	}
}

func TestRevisedWithoutOutDegPanics(t *testing.T) {
	x := indexFromSets(2, nil, [][]int32{{0}})
	defer func() {
		if recover() == nil {
			t.Fatal("Revised without out-degrees did not panic")
		}
	}()
	x.SelectSeeds(GreedyOptions{K: 1, Revised: true})
}

func TestBaseOffset(t *testing.T) {
	sets := [][]int32{{0}, {1}}
	x := indexFromSets(2, nil, sets)
	res := x.SelectSeeds(GreedyOptions{K: 2, Base: 10})
	if res.Coverage[0] != 11 || res.Coverage[1] != 12 {
		t.Fatalf("coverage with base: %v", res.Coverage)
	}
	if res.CoverageUpper < 12 {
		t.Fatalf("upper bound %d below achievable 12", res.CoverageUpper)
	}
	if res.TotalCoverage(10) != 12 {
		t.Fatalf("TotalCoverage %d", res.TotalCoverage(10))
	}
}

func TestTotalCoverageEmpty(t *testing.T) {
	x := indexFromSets(3, nil, nil)
	res := x.SelectSeeds(GreedyOptions{K: 0, Base: 7})
	if res.TotalCoverage(7) != 7 {
		t.Fatal("empty selection should return base")
	}
}

func TestTopLBound(t *testing.T) {
	// With TopL=2 the prefix-0 bound is the two largest degrees.
	sets := [][]int32{{0}, {0}, {1}, {2}}
	x := indexFromSets(3, nil, sets)
	res := x.SelectSeeds(GreedyOptions{K: 1, TopL: 2})
	// Upper bound candidates: prefix 0 → 2+1 = 3; after pick (node 0,
	// cum 2) → 2 + (1+1) = 4. Min is 3.
	if res.CoverageUpper != 3 {
		t.Fatalf("TopL bound %d, want 3", res.CoverageUpper)
	}
}

func TestUpperBoundDominatesAnyKSet(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(6)
		numSets := 1 + r.Intn(30)
		sets := make([][]int32, numSets)
		for i := range sets {
			sz := 1 + r.Intn(3)
			seen := map[int32]bool{}
			for len(seen) < sz {
				seen[int32(r.Intn(n))] = true
			}
			for v := range seen {
				sets[i] = append(sets[i], v)
			}
		}
		k := 1 + r.Intn(3)
		x := indexFromSets(n, nil, sets)
		res := x.SelectSeeds(GreedyOptions{K: k})
		return res.CoverageUpper >= bruteBestK(n, sets, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSeedsClampsK(t *testing.T) {
	x := indexFromSets(3, nil, [][]int32{{0}})
	res := x.SelectSeeds(GreedyOptions{K: 10})
	if len(res.Seeds) != 3 {
		t.Fatalf("selected %d seeds", len(res.Seeds))
	}
	res = x.SelectSeeds(GreedyOptions{K: -1})
	if len(res.Seeds) != 0 {
		t.Fatal("negative k selected seeds")
	}
}

func TestRepeatedSelectionsAreIndependent(t *testing.T) {
	sets := [][]int32{{0, 1}, {1, 2}, {2}}
	x := indexFromSets(3, nil, sets)
	first := x.SelectSeeds(GreedyOptions{K: 2})
	// Growing the index and re-selecting must reflect the new state and
	// not any leftover covered marks.
	x.Add(rrset.RRSet{0})
	x.Add(rrset.RRSet{0})
	second := x.SelectSeeds(GreedyOptions{K: 2})
	if second.Seeds[0] != 0 {
		t.Fatalf("after growth, first pick %d", second.Seeds[0])
	}
	if first.TotalCoverage(0) != 3 {
		t.Fatalf("first selection coverage %d", first.TotalCoverage(0))
	}
	if second.TotalCoverage(0) != 5 {
		t.Fatalf("second selection coverage %d", second.TotalCoverage(0))
	}
}

func TestExcludeSkipsNodes(t *testing.T) {
	sets := [][]int32{{0}, {0}, {1}}
	x := indexFromSets(3, []int32{9, 1, 5}, sets)
	res := x.SelectSeeds(GreedyOptions{K: 2, Revised: true, Exclude: []bool{true, false, false}})
	for _, s := range res.Seeds {
		if s == 0 {
			t.Fatalf("excluded node selected: %v", res.Seeds)
		}
	}
	if len(res.Seeds) != 2 {
		t.Fatalf("selected %v", res.Seeds)
	}
	if res.Seeds[0] != 1 {
		t.Fatalf("first pick %d, want 1", res.Seeds[0])
	}
}
