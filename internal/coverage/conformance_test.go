package coverage

import (
	"math"
	"testing"

	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// Compile-time: every backend satisfies the Estimator contract.
var (
	_ Estimator = (*Index)(nil)
	_ Estimator = (*HLL)(nil)
	_ Estimator = (*Sharded)(nil)
)

// estimatorCase is one backend under conformance test. tol(want)
// returns the absolute slack allowed on a count query whose true value
// is want: zero for the exact backends, RelError-scaled (with a small
// additive floor for tiny counts) for sketches.
type estimatorCase struct {
	name string
	make func(n int, outDeg []int32) Estimator
	kind EstimatorKind
	tol  func(e Estimator, want int64) int64
}

func exactTol(Estimator, int64) int64 { return 0 }

func sketchTol(e Estimator, want int64) int64 {
	// 6 standard errors plus a floor of 4: deterministic inputs make the
	// check reproducible, the generous band keeps it honest about what
	// the backend certifies rather than tuned to one RNG stream.
	return int64(math.Ceil(6*e.RelError()*float64(want))) + 4
}

// conformanceCases enumerates the three coverage backends. Sharded runs
// with a shard count different from every tested worker count, so any
// accidental shard/worker coupling would show up.
func conformanceCases() []estimatorCase {
	return []estimatorCase{
		{
			name: "exact",
			make: func(n int, outDeg []int32) Estimator { return NewIndex(n, outDeg) },
			kind: EstimatorExact,
			tol:  exactTol,
		},
		{
			name: "hll",
			make: func(n int, outDeg []int32) Estimator { return NewHLL(n, outDeg, 0) },
			kind: EstimatorHLL,
			tol:  sketchTol,
		},
		{
			name: "sharded",
			make: func(n int, outDeg []int32) Estimator { return NewSharded(n, outDeg, 3) },
			kind: EstimatorSharded,
			tol:  exactTol,
		},
	}
}

// TestEstimatorConformance drives every backend through the same
// append/query schedule and checks the whole interface contract:
// bookkeeping (N, NumSets, Kind, RelError, MemoryBytes, Workers clamp),
// count accuracy against brute force within the backend's certified
// tolerance, sentinel handling on the batch ingestion path, and greedy
// selection quality.
func TestEstimatorConformance(t *testing.T) {
	const n = 120
	r := rng.New(17)
	sets := randomSets(r, n, 900, 8)
	outDeg := make([]int32, n)
	for v := range outDeg {
		outDeg[v] = int32(r.Intn(30))
	}
	exactRes := indexFromSets(n, outDeg, sets).SelectSeeds(GreedyOptions{K: 8})

	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.make(n, outDeg)
			if e.N() != n {
				t.Fatalf("N() = %d, want %d", e.N(), n)
			}
			if e.Kind() != tc.kind || e.Kind().String() != tc.name {
				t.Fatalf("Kind() = %v (%q), want %v", e.Kind(), e.Kind().String(), tc.kind)
			}
			if re := e.RelError(); re < 0 || (tc.tol(e, 1000) == 0) != (re == 0) {
				t.Fatalf("RelError() = %g inconsistent with tolerance model", re)
			}
			e.SetWorkers(0)
			if e.Workers() != 1 {
				t.Fatalf("SetWorkers(0) leaves Workers() = %d, want clamp to 1", e.Workers())
			}
			e.SetWorkers(4)
			if e.Workers() != 4 {
				t.Fatalf("Workers() = %d, want 4", e.Workers())
			}

			for i, s := range sets {
				e.Add(rrset.RRSet(s))
				if e.NumSets() != i+1 {
					t.Fatalf("NumSets = %d after %d adds", e.NumSets(), i+1)
				}
			}

			// Count accuracy: per-node degrees and multi-seed coverage.
			for v := int32(0); v < n; v++ {
				want := bruteCoverage(sets, []int32{v})
				got := int64(e.Degree(v))
				if d := got - want; d < -tc.tol(e, want) || d > tc.tol(e, want) {
					t.Fatalf("Degree(%d) = %d, want %d ± %d", v, got, want, tc.tol(e, want))
				}
			}
			for _, seeds := range [][]int32{{0}, {3, 50, 90}, {1, 2, 3, 4, 5, 6, 7, 8}} {
				want := bruteCoverage(sets, seeds)
				got := e.CoverageOf(seeds)
				if d := got - want; d < -tc.tol(e, want) || d > tc.tol(e, want) {
					t.Fatalf("CoverageOf(%v) = %d, want %d ± %d", seeds, got, want, tc.tol(e, want))
				}
			}
			if e.MemoryBytes() <= 0 {
				t.Fatal("MemoryBytes() not positive on a loaded estimator")
			}

			// Greedy quality: the true (brute-force) coverage of the picked
			// seeds must be within 10% of the exact backend's pick — exact
			// backends match it exactly, the sketch may trade a little.
			res := e.SelectSeeds(GreedyOptions{K: 8})
			if len(res.Seeds) != 8 {
				t.Fatalf("SelectSeeds returned %d seeds, want 8", len(res.Seeds))
			}
			got := bruteCoverage(sets, res.Seeds)
			want := bruteCoverage(sets, exactRes.Seeds)
			if float64(got) < 0.9*float64(want) {
				t.Fatalf("greedy quality: picked coverage %d < 90%% of exact's %d", got, want)
			}
			if e.RelError() == 0 {
				for i := range exactRes.Seeds {
					if res.Seeds[i] != exactRes.Seeds[i] || res.Coverage[i] != exactRes.Coverage[i] {
						t.Fatalf("exact-class backend diverged from Index at pick %d: (%d,%d) vs (%d,%d)",
							i, res.Seeds[i], res.Coverage[i], exactRes.Seeds[i], exactRes.Coverage[i])
					}
				}
				if res.CoverageUpper != exactRes.CoverageUpper {
					t.Fatalf("exact-class upper bound %d, want %d", res.CoverageUpper, exactRes.CoverageUpper)
				}
			}
		})
	}
}

// TestEstimatorConformanceWorkerIndependence pins the repo invariant on
// every backend at once: the worker bound must never change a single
// query answer or pick, including with the parallel paths forced onto
// the small test input.
func TestEstimatorConformanceWorkerIndependence(t *testing.T) {
	forceParallelSharded(t)
	const n = 90
	r := rng.New(23)
	sets := randomSets(r, n, 500, 6)

	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			type answers struct {
				deg   []int
				cov   int64
				seeds []int32
				covs  []int64
				upper int64
			}
			var base *answers
			for _, w := range []int{1, 2, 8} {
				e := tc.make(n, nil)
				e.SetWorkers(w)
				for _, s := range sets {
					e.Add(rrset.RRSet(s))
				}
				a := &answers{cov: e.CoverageOf([]int32{1, 4, 9})}
				for v := int32(0); v < n; v++ {
					a.deg = append(a.deg, e.Degree(v))
				}
				res := e.SelectSeeds(GreedyOptions{K: 6})
				a.seeds, a.covs, a.upper = res.Seeds, res.Coverage, res.CoverageUpper
				if base == nil {
					base = a
					continue
				}
				if a.cov != base.cov {
					t.Fatalf("W=%d: CoverageOf = %d, W=1 got %d", w, a.cov, base.cov)
				}
				for v := range a.deg {
					if a.deg[v] != base.deg[v] {
						t.Fatalf("W=%d: Degree(%d) = %d, W=1 got %d", w, v, a.deg[v], base.deg[v])
					}
				}
				if a.upper != base.upper {
					t.Fatalf("W=%d: upper %d, W=1 got %d", w, a.upper, base.upper)
				}
				for i := range base.seeds {
					if a.seeds[i] != base.seeds[i] || a.covs[i] != base.covs[i] {
						t.Fatalf("W=%d: pick %d = (%d,%d), W=1 got (%d,%d)",
							w, i, a.seeds[i], a.covs[i], base.seeds[i], base.covs[i])
					}
				}
			}
		})
	}
}

// TestEstimatorConformanceAbsorbArena checks the batch ingestion path on
// every backend: sentinel-terminated sets are skipped and counted, and
// the surviving collection answers like one built from per-set Adds.
func TestEstimatorConformanceAbsorbArena(t *testing.T) {
	const n = 10
	sentinel := make([]bool, n)
	sentinel[9] = true
	data := []int32{0, 1, 2, 9, 3, 4, 5, 9, 6}
	ends := []int64{2, 4, 5, 6, 8, 9}
	kept := [][]int32{{0, 1}, {3}, {4}, {6}}

	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.make(n, nil)
			if hits := e.AbsorbArena(data, ends, sentinel); hits != 2 {
				t.Fatalf("hits = %d, want 2", hits)
			}
			if e.NumSets() != len(kept) {
				t.Fatalf("NumSets = %d, want %d", e.NumSets(), len(kept))
			}
			ref := tc.make(n, nil)
			for _, s := range kept {
				ref.Add(rrset.RRSet(s))
			}
			for v := int32(0); v < n; v++ {
				if got, want := e.Degree(v), ref.Degree(v); got != want {
					t.Fatalf("Degree(%d) = %d, want %d (per-set reference)", v, got, want)
				}
			}
			e2 := tc.make(n, nil)
			if hits := e2.AbsorbArena(data, ends, nil); hits != 0 || e2.NumSets() != len(ends) {
				t.Fatalf("nil sentinel: hits=%d sets=%d, want 0/%d", hits, e2.NumSets(), len(ends))
			}
		})
	}
}
