package coverage

import (
	"bytes"
	"math"
	"testing"
)

// The HLL register arrays cross package boundaries (per-node blocks are
// merged into scratch sketches during selection, and external callers
// may persist and reload them), so merge/union are fuzzed natively over
// raw register bytes: corrupted registers — including ranks beyond the
// 64 reachable from a 64-bit hash — must degrade into finite estimates,
// never panic or poison neighbours; precision (length) mismatches must
// be rejected without mutating the destination; empty sketches must
// report the -1 sentinel rather than NaN.

// fuzzMaxRegs bounds the register arrays so the fuzzer explores
// structure, not allocator throughput (real sketches are ≤ 2^16).
const fuzzMaxRegs = 1 << 16

func FuzzHLLMerge(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 0, 0, 0})
	f.Add([]byte{1, 9, 3, 200}, []byte{4, 2, 255, 0}) // corrupted high ranks
	f.Add([]byte{5, 5}, []byte{7})                    // precision mismatch
	f.Add(bytes.Repeat([]byte{255}, 256), bytes.Repeat([]byte{0}, 256))
	f.Add(bytes.Repeat([]byte{0}, 16), bytes.Repeat([]byte{64}, 16))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > fuzzMaxRegs || len(b) > fuzzMaxRegs {
			return
		}
		origA := append([]byte(nil), a...)
		origB := append([]byte(nil), b...)

		ua, ub := EstimateUnion(a, b), EstimateUnion(b, a)
		if len(a) != len(b) || len(a) == 0 {
			if ua >= 0 || ub >= 0 {
				t.Fatalf("mismatched/empty union estimated %v / %v, want -1", ua, ub)
			}
		} else {
			if math.IsNaN(ua) || math.IsInf(ua, 0) || ua < 0 {
				t.Fatalf("union estimate not finite non-negative: %v", ua)
			}
			if ua != ub {
				t.Fatalf("union not symmetric: %v vs %v", ua, ub)
			}
			if self := EstimateUnion(a, a); self != EstimateRegisters(a) {
				t.Fatalf("self-union %v differs from estimate %v", self, EstimateRegisters(a))
			}
		}
		if est := EstimateRegisters(a); len(a) > 0 && (math.IsNaN(est) || math.IsInf(est, 0) || est < 0) {
			t.Fatalf("estimate over corrupted registers not finite non-negative: %v", est)
		}
		if !bytes.Equal(a, origA) || !bytes.Equal(b, origB) {
			t.Fatal("estimation mutated its operands")
		}

		ok := MergeRegisters(a, b)
		if ok != (len(a) == len(b)) {
			t.Fatalf("merge accepted=%v for lengths %d/%d", ok, len(a), len(b))
		}
		if !bytes.Equal(b, origB) {
			t.Fatal("merge mutated its source")
		}
		if !ok {
			if !bytes.Equal(a, origA) {
				t.Fatal("rejected merge mutated the destination")
			}
			return
		}
		for i := range a {
			want := origA[i]
			if b[i] > want {
				want = b[i]
			}
			if a[i] != want {
				t.Fatalf("register %d is %d after merge, want max(%d,%d)", i, a[i], origA[i], b[i])
			}
		}
		// Merge-then-estimate must equal the union estimate over the
		// originals: both walk max(a[i], b[i]) in the same order.
		if len(a) > 0 {
			if got := EstimateRegisters(a); got != ua {
				t.Fatalf("estimate after merge %v differs from union estimate %v", got, ua)
			}
		}
	})
}
