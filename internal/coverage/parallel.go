// Parallel coverage kernels: the node-range-partitioned delta CSR
// rebuild and the partitioned initial-gain pass of SelectSeeds.
//
// Both paths are byte-identical to their serial counterparts — the
// repo's worker-independence invariant (TestPipelineEquivalence) demands
// it — because every goroutine writes only into ranges that are disjoint
// by construction:
//
//   - the counting pass shards the *delta data* by position, each worker
//     bumping its own per-worker count array;
//   - the merged prefix sum and the head fill partition the *node space*
//     into equal ranges (each newHeads[v] written once);
//   - the placement pass partitions the node space into ranges balanced
//     by postings (binary search over the freshly prefix-summed heads),
//     each worker block-copying the old posting lists of its nodes and
//     scanning the delta in ascending set-id order, so every posting
//     list comes out ascending exactly as the serial scatter leaves it;
//   - the initial-gain pass partitions the node space into equal ranges
//     with per-range entry slots derived from a prefix sum over the
//     non-excluded counts, so the CELF entry order (ascending node id)
//     is preserved.
//
// Determinism therefore never depends on goroutine scheduling: the
// worker count only decides how the work is partitioned, never what is
// written where.
package coverage

import (
	"sync"

	"subsim/internal/obs/timeline"
)

// parallelBuildMinDelta is the smallest delta (in node ids) worth
// fanning out a rebuild for; below it the goroutine handoff dominates.
// A var, not a const, so the equivalence tests can force the parallel
// path on tiny inputs.
var parallelBuildMinDelta = 1 << 12

// parallelGainsMinNodes is the smallest node count worth fanning out
// the SelectSeeds initial-gain pass for.
var parallelGainsMinNodes = 1 << 12

// runParallel executes fn(w) for w in [0, workers): workers-1 goroutines
// plus the calling goroutine, joining before it returns. fn must confine
// its writes to worker-w-owned ranges.
//
//subsim:parallel
func runParallel(workers int, fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	fn(0)
	wg.Wait()
}

// runTimed is runParallel with per-worker timeline records: when a
// timeline is attached, worker w's execution of fn lands as one interval
// on ring w. The wrapper closure is allocated only on the instrumented
// path — with no timeline it delegates straight to runParallel, keeping
// the uninstrumented pipeline allocation-identical to before. The
// single-writer discipline holds because runParallel joins before
// returning: the goroutine acting as worker w is ring w's only writer
// for the duration of the pass.
func (x *Index) runTimed(phase timeline.Phase, workers int, fn func(w int)) {
	if x.tl == nil {
		runParallel(workers, fn)
		return
	}
	runParallel(workers, func(w int) {
		r := x.tl.Worker(w)
		t0 := r.Now()
		fn(w)
		r.Record(phase, t0, r.Now())
	})
}

// growCntScratch sizes the per-worker delta-count arrays (the sharded
// counting pass); all arrays are kept zeroed between builds.
func (x *Index) growCntScratch(workers int) {
	for len(x.cntW) < workers {
		x.cntW = append(x.cntW, nil)
	}
	for w := 0; w < workers; w++ {
		if len(x.cntW[w]) < x.n {
			x.cntW[w] = make([]int32, x.n)
		}
	}
}

// growPartialScratch sizes the per-range partial-sum / base-offset and
// range-boundary arrays.
func (x *Index) growPartialScratch(workers int) {
	if cap(x.partial) < workers {
		x.partial = make([]int64, workers)
	}
	x.partial = x.partial[:workers]
	if cap(x.rangeEnd) < workers+1 {
		x.rangeEnd = make([]int, workers+1)
	}
	x.rangeEnd = x.rangeEnd[:workers+1]
}

// buildParallel is the multi-worker delta rebuild. The phases mirror
// buildSerial exactly — count, prefix-sum, place — with each phase
// partitioned as described in the package comment.
func (x *Index) buildParallel(newHeads []int64, data []int32, ends []int64, deltaFrom int64, total int) {
	workers := x.workers
	x.growCntScratch(workers)
	x.growPartialScratch(workers)
	delta := data[deltaFrom:]

	// Phase 1 — counting, sharded by delta position: worker w bumps its
	// own count array over the w-th contiguous chunk of the delta.
	x.runTimed(timeline.PhaseIndexBuild, workers, func(w int) {
		lo := len(delta) * w / workers
		hi := len(delta) * (w + 1) / workers
		countShard(x.cntW[w], delta[lo:hi])
	})

	// Phase 2 — merge the shard counts into the prefix sum. Equal node
	// ranges: worker w folds old lengths + shard counts into per-node
	// totals (parked in cursors) and a per-range partial sum, zeroing
	// the shard counts as it reads them.
	x.runTimed(timeline.PhaseIndexBuild, workers, func(w int) {
		lo := x.n * w / workers
		hi := x.n * (w + 1) / workers
		x.partial[w] = x.mergeCountsRange(lo, hi)
	})
	var acc int64
	for w := 0; w < workers; w++ {
		acc, x.partial[w] = acc+x.partial[w], acc // partial becomes the range's head base
	}
	totalPost := acc

	// Phase 2b — fill newHeads per range from the per-node totals and
	// park each node's scatter cursor (head + old length) in cursors.
	x.runTimed(timeline.PhaseIndexBuild, workers, func(w int) {
		lo := x.n * w / workers
		hi := x.n * (w + 1) / workers
		fillHeadsRange(newHeads, x.heads, x.cursors, lo, hi, x.partial[w])
	})
	newHeads[x.n] = totalPost

	newPost := x.growPostScratch(totalPost)

	// Phase 3 — placement, partitioned by node ranges balanced on the
	// posting mass each range will write (old copy + delta scatter).
	x.rangeEnd[0] = 0
	x.rangeEnd[workers] = x.n
	for w := 1; w < workers; w++ {
		x.rangeEnd[w] = searchHeads(newHeads[:x.n+1], totalPost*int64(w)/int64(workers))
	}
	x.runTimed(timeline.PhaseIndexBuild, workers, func(w int) {
		x.placeRange(newPost, newHeads, x.rangeEnd[w], x.rangeEnd[w+1], data, ends, deltaFrom, total)
	})
	x.commitBuild(newHeads, newPost)
}

// countShard bumps cnt[v] for every node id in the delta shard.
//
//subsim:hotpath
func countShard(cnt []int32, shard []int32) {
	for _, v := range shard {
		cnt[v]++
	}
}

// mergeCountsRange folds the per-worker shard counts and the old posting
// lengths of nodes [lo, hi) into per-node totals (stored in x.cursors)
// and returns the range total. Shard counts are zeroed as they are
// read, restoring the all-zero invariant for the next build.
//
//subsim:hotpath
func (x *Index) mergeCountsRange(lo, hi int) int64 {
	var sum int64
	for v := lo; v < hi; v++ {
		t := x.heads[v+1] - x.heads[v]
		for _, cnt := range x.cntW {
			t += int64(cnt[v])
			cnt[v] = 0
		}
		x.cursors[v] = t
		sum += t
	}
	return sum
}

// fillHeadsRange turns the per-node totals parked in cursors into the
// new head offsets of nodes [lo, hi), starting at base (the prefix sum
// of all earlier ranges), and re-parks each node's scatter cursor —
// newHeads[v] plus the old posting length — for the placement pass.
//
//subsim:hotpath
func fillHeadsRange(newHeads, oldHeads, cursors []int64, lo, hi int, base int64) {
	acc := base
	for v := lo; v < hi; v++ {
		t := cursors[v]
		newHeads[v] = acc
		cursors[v] = acc + (oldHeads[v+1] - oldHeads[v])
		acc += t
	}
}

// searchHeads returns the smallest v with heads[v] >= target (heads is
// ascending), via branch-free-ish binary search; used to cut the node
// space into placement ranges of roughly equal posting mass.
func searchHeads(heads []int64, target int64) int {
	lo, hi := 0, len(heads)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if heads[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// placeRange builds the posting lists of nodes [lo, hi): block-copy each
// node's old postings to its new head, then scan the whole delta in
// ascending set-id order scattering the ids of nodes in the range. Every
// write lands in [newHeads[lo], newHeads[hi]), disjoint from all other
// ranges; scanning set ids in order keeps every posting list ascending,
// exactly as the serial scatter leaves it. Cursors are re-zeroed on the
// way out.
//
//subsim:hotpath
func (x *Index) placeRange(newPost []int32, newHeads []int64, lo, hi int, data []int32, ends []int64, deltaFrom int64, total int) {
	if lo >= hi {
		return
	}
	for v := lo; v < hi; v++ {
		s, e := x.heads[v], x.heads[v+1]
		if e > s {
			copy(newPost[newHeads[v]:], x.postings[s:e])
		}
	}
	cur := x.cursors
	pos := deltaFrom
	lo32, hi32 := int32(lo), int32(hi)
	for id := x.indexed; id < total; id++ {
		end := ends[id]
		for ; pos < end; pos++ {
			v := data[pos]
			if v >= lo32 && v < hi32 {
				newPost[cur[v]] = int32(id)
				cur[v]++
			}
		}
	}
	for v := lo; v < hi; v++ {
		cur[v] = 0
	}
}

// parallelInitialGains is the partitioned first CELF round: the initial
// marginal gain of every node is its posting-list length, read straight
// off the CSR heads, and the entry array is filled through per-range
// slots so the order (ascending node id, exclusions skipped) matches the
// serial append loop exactly. entries must have capacity >= n.
func (x *Index) parallelInitialGains(entries []celfEntry, gains []int64, exclude []bool) []celfEntry {
	workers := x.workers
	x.growPartialScratch(workers)
	x.runTimed(timeline.PhaseGains, workers, func(w int) {
		lo := x.n * w / workers
		hi := x.n * (w + 1) / workers
		x.partial[w] = gainsRange(gains, x.heads, exclude, lo, hi)
	})
	var totalEntries int64
	for w := 0; w < workers; w++ {
		totalEntries, x.partial[w] = totalEntries+x.partial[w], totalEntries // partial becomes the slot base
	}
	entries = entries[:totalEntries]
	x.runTimed(timeline.PhaseGains, workers, func(w int) {
		lo := x.n * w / workers
		hi := x.n * (w + 1) / workers
		fillEntriesRange(entries, gains, exclude, lo, hi, int(x.partial[w]))
	})
	return entries
}

// gainsRange writes the initial gain of every node in [lo, hi) —
// posting length, or 0 for excluded nodes so the reused gain vector
// stays topSum-safe — and returns the number of non-excluded nodes.
//
//subsim:hotpath
func gainsRange(gains []int64, heads []int64, exclude []bool, lo, hi int) int64 {
	var cnt int64
	for v := lo; v < hi; v++ {
		if exclude != nil && exclude[v] {
			gains[v] = 0
			continue
		}
		gains[v] = heads[v+1] - heads[v]
		cnt++
	}
	return cnt
}

// fillEntriesRange writes the CELF entries of the non-excluded nodes in
// [lo, hi) into their prefix-summed slots.
//
//subsim:hotpath
func fillEntriesRange(entries []celfEntry, gains []int64, exclude []bool, lo, hi, slot int) {
	for v := lo; v < hi; v++ {
		if exclude != nil && exclude[v] {
			continue
		}
		entries[slot] = celfEntry{gain: gains[v], node: int32(v), iter: 0}
		slot++
	}
}
