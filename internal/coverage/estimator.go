// Estimator is the pluggable coverage backend: the contract every
// seed-selection data structure must honour so the algorithm chassis
// (IMM, SSA, OPIM-C, TIM+, HIST) can run against either the exact CSR
// inverted index or the HyperLogLog sketch backend without knowing
// which one it holds. The exact backend (*Index) answers every query
// precisely; the sketch backend (*HLL) trades a certified relative
// error (RelError) for O(1) memory per node and union-based marginal
// gains.
package coverage

import (
	"fmt"

	"subsim/internal/rrset"
)

// EstimatorKind identifies a coverage backend implementation.
type EstimatorKind int

const (
	// EstimatorExact is the CSR inverted index: exact coverage counts,
	// memory proportional to the total posting mass (θ · avg RR size).
	EstimatorExact EstimatorKind = iota
	// EstimatorHLL is the register-array HyperLogLog sketch backend:
	// coverage counts within a certified relative error, memory fixed at
	// 2^precision bytes per node regardless of θ.
	EstimatorHLL
	// EstimatorSharded is the shard-parallel exact backend: per-worker
	// arenas double as shard-local store segments (no splice memcpy),
	// each shard keeps its own CSR inverted index, and every query —
	// including every CELF round beyond the first — is answered as a
	// tree-reduced sum of per-shard partials. Results are byte-identical
	// to EstimatorExact for any worker count.
	EstimatorSharded
)

// String returns the flag-level name of the backend.
func (k EstimatorKind) String() string {
	switch k {
	case EstimatorHLL:
		return "hll"
	case EstimatorSharded:
		return "sharded"
	default:
		return "exact"
	}
}

// ParseEstimator maps a flag value ("exact" | "hll" | "sharded") to its
// kind.
func ParseEstimator(s string) (EstimatorKind, error) {
	switch s {
	case "exact", "":
		return EstimatorExact, nil
	case "hll", "sketch":
		return EstimatorHLL, nil
	case "sharded":
		return EstimatorSharded, nil
	default:
		return EstimatorExact, fmt.Errorf("coverage: unknown estimator %q (want exact, hll or sharded)", s)
	}
}

// Estimator answers the coverage queries the sampling algorithms issue
// over a growing RR collection. Implementations are append-only and not
// safe for concurrent mutation, mirroring *Index; SetWorkers only bounds
// internal parallelism and never changes any result (the repo's
// worker-independence invariant applies to both backends).
type Estimator interface {
	// N is the number of nodes the estimator is defined over.
	N() int
	// NumSets is the number of RR sets absorbed so far.
	NumSets() int
	// Add absorbs one RR set.
	Add(set rrset.RRSet)
	// AbsorbArena absorbs a whole arena flat buffer (data with exclusive
	// per-set end offsets), skipping sentinel-terminated sets when
	// sentinel is non-nil, and returns the number skipped. It is the
	// batch ingestion path Batcher.Fill drives, visiting arenas in
	// global-set-id order.
	AbsorbArena(data []int32, ends []int64, sentinel []bool) int64
	// SetWorkers bounds internal parallelism (clamped to >= 1).
	SetWorkers(w int)
	// Workers returns the configured parallelism bound.
	Workers() int
	// Degree estimates the number of absorbed RR sets containing v.
	Degree(v int32) int
	// CoverageOf estimates Λ(S), the number of absorbed sets
	// intersecting the seed set.
	CoverageOf(seeds []int32) int64
	// SelectSeeds runs greedy max-coverage selection with the Λᵘ prefix
	// upper bound.
	SelectSeeds(opt GreedyOptions) GreedyResult
	// MemoryBytes reports the resident footprint of the coverage state.
	MemoryBytes() int64
	// Kind identifies the backend.
	Kind() EstimatorKind
	// RelError is the certified relative standard error of coverage
	// estimates: 0 for the exact backend, ~1.04/sqrt(2^precision) for
	// the sketch backend.
	RelError() float64
}

// Kind identifies the exact CSR backend.
func (x *Index) Kind() EstimatorKind { return EstimatorExact }

// RelError is 0: the CSR index counts coverage exactly.
func (x *Index) RelError() float64 { return 0 }

// AbsorbArena appends every kept set of the flat arena buffer to the
// store, skipping sentinel-terminated sets, and returns the number
// skipped. Batcher.FillIndex bypasses this method with its disjoint
// destination-range splice; this per-set path serves the generic
// Estimator ingestion contract.
func (x *Index) AbsorbArena(data []int32, ends []int64, sentinel []bool) int64 {
	var hits int64
	start := int64(0)
	for _, end := range ends {
		if sentinel != nil && end > start && sentinel[data[end-1]] {
			hits++
			start = end
			continue
		}
		x.store.Append(data[start:end])
		start = end
	}
	return hits
}
