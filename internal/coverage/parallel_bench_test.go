package coverage

import (
	"testing"

	"subsim/internal/rng"
)

// benchSets draws a workload shaped like the 2000-set FillIndex batch of
// the im benchmarks: 2000 sets over 5000 nodes, sizes in [1, 30].
func benchSets(count int) ([][]int32, int) {
	const n = 5000
	r := rng.New(17)
	return randomSets(r, n, count, 30), n
}

// benchIndexBuild isolates the delta CSR inverted-index rebuild: the
// flat store is filled once, then each iteration resets the index state
// (heads zeroed, delta cursor rewound) and rebuilds the full CSR through
// ensureIndexed, reusing the steady-state double buffers. The W variants
// share identical output — the worker count only partitions the
// counting/placement passes — so their ratio is the build speedup.
func benchIndexBuild(b *testing.B, workers int) {
	b.Helper()
	sets, n := benchSets(2000)
	x := NewIndex(n, nil)
	x.SetWorkers(workers)
	for _, s := range sets {
		x.Add(s)
	}
	x.ensureIndexed() // warm: grows all scratch to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		x.indexed = 0
		for j := range x.heads {
			x.heads[j] = 0
		}
		b.StartTimer()
		x.ensureIndexed()
	}
	b.ReportMetric(float64(len(sets)), "sets/op")
}

func BenchmarkIndexBuild_W1(b *testing.B) { benchIndexBuild(b, 1) }
func BenchmarkIndexBuild_W4(b *testing.B) { benchIndexBuild(b, 4) }
func BenchmarkIndexBuild_W8(b *testing.B) { benchIndexBuild(b, 8) }

// benchSelectGains isolates the first CELF round: SelectSeeds with K=1
// on a warm index is dominated by the initial-gain fill over all n nodes
// plus the heapify, the part the parallel gains pass partitions.
func benchSelectGains(b *testing.B, workers int) {
	b.Helper()
	sets, n := benchSets(20000)
	x := NewIndex(n, nil)
	x.SetWorkers(workers)
	for _, s := range sets {
		x.Add(s)
	}
	x.SelectSeeds(GreedyOptions{K: 1}) // warm index + selection scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.SelectSeeds(GreedyOptions{K: 1})
	}
}

func BenchmarkSelectGains_W1(b *testing.B) { benchSelectGains(b, 1) }
func BenchmarkSelectGains_W4(b *testing.B) { benchSelectGains(b, 4) }
func BenchmarkSelectGains_W8(b *testing.B) { benchSelectGains(b, 8) }
