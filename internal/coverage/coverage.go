// Package coverage implements the max-coverage machinery that turns a
// collection of random RR sets into a seed set: an inverted index from
// node to the RR sets containing it, the greedy algorithm of the paper's
// Algorithm 1 with CELF-style lazy marginal evaluation, the Revised
// Greedy out-degree tie-break of Algorithm 6, and the coverage upper
// bound Λᵘ (the maxMC prefix bound feeding Equation 2).
package coverage

import (
	"time"

	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
	"subsim/internal/rrset"
)

// Index is an append-only collection of RR sets with a node→sets inverted
// index. Greedy selection runs are independent: they do not mutate the
// index permanently, so the same Index can be queried repeatedly as it
// grows (the doubling loops of IMM/OPIM-C/HIST rely on this).
//
// Storage is fully flat: the sets live in an arena-backed rrset.Store
// (one contiguous []int32 with per-set offsets), and the node→sets
// inverted index is a CSR pair (heads, postings) built by counting sort.
// The CSR is rebuilt lazily on the first query after a batch of appends,
// and each rebuild only scans the newly appended delta — old posting
// lists are block-copied — so across the doubling rounds of
// IMM/OPIM-C/HIST every posting is scanned O(1) times amortised.
//
// Index is not safe for concurrent mutation; build it single-threaded or
// guard it externally. Selection runs are single-threaded from the
// caller's point of view; with SetWorkers(w>1) the index internally
// parallelises its CSR rebuilds and the initial-gain pass of SelectSeeds
// across disjoint node ranges, producing byte-identical results to the
// serial path (see DESIGN.md "Parallel coverage pipeline").
type Index struct {
	n      int
	outDeg []int32 // optional out-degrees for the Revised-Greedy tie-break
	store  rrset.Store

	// CSR inverted index over the first `indexed` sets: the posting list
	// of node v is postings[heads[v]:heads[v+1]], ascending by set id.
	heads    []int64
	postings []int32
	indexed  int     // number of store sets covered by the CSR
	cursors  []int64 // reusable counting-sort scratch, len n, zeroed between builds

	covered []uint32 // per-set stamp; covered in run r iff covered[i] == r
	run     uint32

	// workers bounds the internal parallelism of index rebuilds and the
	// SelectSeeds initial-gain pass; 1 (the default) keeps every pass
	// goroutine-free.
	workers int

	// Rebuild double-buffer scratch (tentpole: the parallel build is
	// allocation-free in steady state). headsScratch/postScratch hold
	// the previous generation's buffers and are swapped with
	// heads/postings on every rebuild; postScratch grows geometrically.
	headsScratch []int64
	postScratch  []int32
	// Parallel-build scratch: per-worker delta counts (sharded counting
	// pass), per-range partial sums / base offsets, and the balanced
	// node-range boundaries of the placement pass.
	cntW     [][]int32
	partial  []int64
	rangeEnd []int

	// Selection scratch reused across SelectSeeds runs: the CELF heap
	// backing array, the per-node gain upper bounds, the selected marks
	// (reset after each run), and the topSum bounded min-heap.
	selEntries  []celfEntry
	selGains    []int64
	selSelected []bool
	topScratch  []int64

	// Optional observability hooks (nil-safe): build duration (total and
	// split by serial/parallel path) and postings placed per CSR rebuild.
	buildHist    *obs.Histogram
	buildSerHist *obs.Histogram
	buildParHist *obs.Histogram
	entriesCtr   *obs.Counter

	// tl, when non-nil, receives per-worker interval records for the
	// index-build, initial-gains and greedy-select phases. A nil tl (the
	// default) makes every record site a no-op through the nil-safe ring.
	tl *timeline.Timeline

	// Cached pprof/runtime-trace sections for the hot phases, refreshed
	// when the worker count changes; nil on an uninstrumented index.
	secBuild  *obs.PhaseSection
	secGains  *obs.PhaseSection
	secSelect *obs.PhaseSection
}

// NewIndex returns an empty index over n nodes. outDeg, when non-nil,
// supplies the out-degrees used by the Revised-Greedy tie-break; it must
// have length n.
func NewIndex(n int, outDeg []int32) *Index {
	if outDeg != nil && len(outDeg) != n {
		panic("coverage: outDeg length mismatch")
	}
	return &Index{
		n:       n,
		outDeg:  outDeg,
		heads:   make([]int64, n+1),
		cursors: make([]int64, n),
		workers: 1,
	}
}

// SetWorkers bounds the internal parallelism of CSR rebuilds and the
// SelectSeeds initial-gain pass. Values below 1 are clamped to 1 (the
// fully serial default). The worker count never changes any result —
// parallel and serial paths are byte-identical — it only decides how the
// node space and the delta data are partitioned.
func (x *Index) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	x.workers = w
	x.refreshSections()
}

// Workers returns the configured internal parallelism bound.
func (x *Index) Workers() int { return x.workers }

// SetBuildMetrics attaches observability instruments to the CSR rebuild:
// total observes nanoseconds per rebuild regardless of path, serial and
// parallel observe the same duration split by the path taken, entries
// counts postings placed. All are nil-safe; a nil tracer therefore
// threads through for free.
func (x *Index) SetBuildMetrics(total, serial, parallel *obs.Histogram, entries *obs.Counter) {
	x.buildHist = total
	x.buildSerHist = serial
	x.buildParHist = parallel
	x.entriesCtr = entries
	x.refreshSections()
}

// SetTimeline attaches a per-worker execution timeline: the CSR rebuild,
// the initial-gains pass and the greedy-select loop then leave interval
// records on the worker rings (see internal/obs/timeline). A nil tl — or
// never calling this — keeps every record site a zero-cost no-op. Must
// not be called while a query is in flight (the Index is not safe for
// concurrent mutation anyway).
func (x *Index) SetTimeline(tl *timeline.Timeline) {
	x.tl = tl
	x.refreshSections()
}

// refreshSections rebinds the cached pprof/trace sections to the current
// worker count. Sections are only materialised once any instrumentation
// is attached, so a plain NewIndex stays label-free.
func (x *Index) refreshSections() {
	if x.buildHist == nil && x.tl == nil {
		return
	}
	x.secBuild = obs.Section("index-build", x.workers)
	x.secGains = obs.Section("select-gains", x.workers)
	x.secSelect = obs.Section("select", 1)
}

// ring returns worker w's timeline ring (nil — the disabled ring — when
// no timeline is attached).
func (x *Index) ring(w int) *timeline.Ring { return x.tl.Worker(w) }

// NewIndexObs returns NewIndex wired to m's index-build instruments
// (build-duration histograms and postings counter) and, when m carries
// one, its execution timeline; a nil m yields a plain, uninstrumented
// index.
func NewIndexObs(n int, outDeg []int32, m *obs.MetricSet) *Index {
	idx := NewIndex(n, outDeg)
	if m != nil {
		idx.SetBuildMetrics(&m.IndexBuild, &m.IndexBuildSerial, &m.IndexBuildParallel, &m.IndexEntries)
		idx.SetTimeline(m.Timeline)
	}
	return idx
}

// Add appends one RR set to the index, copying it into the flat store.
// The inverted index is refreshed lazily on the next query.
func (x *Index) Add(set rrset.RRSet) {
	x.store.Append(set)
}

// Reserve pre-grows the flat store for about sets more RR sets
// totalling about nodes more ids.
func (x *Index) Reserve(sets, nodes int) { x.store.Reserve(sets, nodes) }

// Grow exposes the store's range-reservation API (rrset.Store.Grow) so
// a parallel splice can copy worker blocks into disjoint sub-ranges of
// the flat buffers: it appends exactly sets uninitialised set slots
// totalling exactly nodes ids and returns the destination regions plus
// the absolute node offset of data[0]. The caller must fill both
// regions completely — ends with absolute exclusive end offsets —
// before the next query; the inverted index then refreshes lazily
// exactly as it does after Add.
func (x *Index) Grow(sets, nodes int) (data []int32, ends []int64, nodeBase int64) {
	return x.store.Grow(sets, nodes)
}

// NumSets returns the number of RR sets indexed.
func (x *Index) NumSets() int { return x.store.NumSets() }

// N returns the number of nodes the index is defined over.
func (x *Index) N() int { return x.n }

// Set returns the i-th RR set as a read-only view into the flat store.
func (x *Index) Set(i int) []int32 { return x.store.Set(i) }

// MemoryBytes reports the approximate heap footprint of the flat set
// store plus the CSR inverted index.
func (x *Index) MemoryBytes() int64 {
	return x.store.MemoryBytes() + int64(cap(x.postings))*4 + int64(cap(x.heads))*8
}

// ensureIndexed brings the CSR inverted index (and the covered stamps)
// up to date with the store. Each call scans only the delta appended
// since the previous build: a counting pass bumps per-node delta counts,
// then a placement pass block-copies the old posting lists into their
// new positions and scatters the delta set ids behind them. Posting
// lists stay ascending by set id, matching the append order of the old
// slice-of-slices index exactly.
//
// With SetWorkers(w>1) and a large enough delta the rebuild runs the
// node-range-partitioned parallel path of parallel.go; both paths
// produce byte-identical heads/postings and reuse the same double
// buffers, so the choice is invisible outside this method.
//
//subsim:parallel
func (x *Index) ensureIndexed() {
	total := x.store.NumSets()
	if x.indexed == total {
		return
	}
	sec := x.secBuild.Enter()
	start := time.Now() //lint:allow timing (feeds the index-build duration histograms only)

	data := x.store.Data()
	ends := x.store.Ends()
	deltaFrom := int64(0)
	if x.indexed > 0 {
		deltaFrom = ends[x.indexed-1]
	}

	newHeads := x.growHeadsScratch()
	parallel := x.workers > 1 && int64(len(data))-deltaFrom >= int64(parallelBuildMinDelta)
	if parallel {
		// Per-worker interval records come out of the runTimed wrapper
		// around each parallel sub-pass (parallel.go).
		x.buildParallel(newHeads, data, ends, deltaFrom, total)
	} else {
		r := x.ring(0)
		t0 := r.Now()
		x.buildSerial(newHeads, data, ends, deltaFrom, total)
		r.Record(timeline.PhaseIndexBuild, t0, r.Now())
	}

	x.entriesCtr.Add(int64(len(data)) - deltaFrom) // delta postings placed
	x.indexed = total

	// Grow the covered stamps to match (geometrically, so the doubling
	// rounds do not reallocate on every delta); fresh sets carry stamp
	// 0, which is never equal to a live run id.
	if cap(x.covered) < total {
		newCap := 2 * cap(x.covered)
		if newCap < total {
			newCap = total
		}
		grown := make([]uint32, total, newCap)
		copy(grown, x.covered)
		x.covered = grown
	} else {
		tail := x.covered[len(x.covered):total]
		for i := range tail {
			tail[i] = 0 // recycled capacity may hold stale stamps
		}
		x.covered = x.covered[:total]
	}

	ns := time.Since(start).Nanoseconds() //lint:allow timing (feeds the index-build duration histograms only)
	x.buildHist.Observe(ns)
	if parallel {
		x.buildParHist.Observe(ns)
	} else {
		x.buildSerHist.Observe(ns)
	}
	sec.Exit()
}

// buildSerial is the single-threaded delta rebuild: counting pass over
// the delta, prefix-summed heads, block copy of the old posting lists,
// scatter of the delta ids.
//
//subsim:hotpath
func (x *Index) buildSerial(newHeads []int64, data []int32, ends []int64, deltaFrom int64, total int) {
	// Counting pass over the delta only.
	cnt := x.cursors // zeroed by the previous build (or construction)
	for _, v := range data[deltaFrom:] {
		cnt[v]++
	}

	// New heads: old per-node length + delta count, prefix-summed.
	var acc int64
	for v := 0; v < x.n; v++ {
		newHeads[v] = acc
		acc += (x.heads[v+1] - x.heads[v]) + cnt[v]
	}
	newHeads[x.n] = acc
	newPost := x.growPostScratch(acc)

	// Placement pass: block-copy the old posting lists, then scatter the
	// delta ids behind them (delta sets are scanned in ascending id
	// order, so lists stay sorted).
	for v := 0; v < x.n; v++ {
		oldLen := x.heads[v+1] - x.heads[v]
		if oldLen > 0 {
			copy(newPost[newHeads[v]:], x.postings[x.heads[v]:x.heads[v+1]])
		}
		cnt[v] = newHeads[v] + oldLen // becomes the scatter cursor
	}
	pos := deltaFrom
	for id := x.indexed; id < total; id++ {
		end := ends[id]
		for ; pos < end; pos++ {
			v := data[pos]
			newPost[cnt[v]] = int32(id)
			cnt[v]++
		}
	}

	// Reset the scratch for the next build.
	for v := range cnt {
		cnt[v] = 0
	}
	x.commitBuild(newHeads, newPost)
}

// growHeadsScratch returns the heads double buffer sized to n+1.
func (x *Index) growHeadsScratch() []int64 {
	if cap(x.headsScratch) < x.n+1 {
		x.headsScratch = make([]int64, x.n+1)
	}
	return x.headsScratch[:x.n+1]
}

// growPostScratch returns the postings double buffer resized to hold
// size entries, growing geometrically so repeated rebuilds amortise to
// zero allocations per posting.
func (x *Index) growPostScratch(size int64) []int32 {
	if int64(cap(x.postScratch)) < size {
		newCap := 2 * int64(cap(x.postScratch))
		if newCap < size {
			newCap = size
		}
		x.postScratch = make([]int32, newCap)
	}
	return x.postScratch[:size]
}

// commitBuild swaps the freshly built buffers in and retires the old
// generation as the next rebuild's scratch (double buffering).
func (x *Index) commitBuild(newHeads []int64, newPost []int32) {
	x.headsScratch = x.heads
	x.heads = newHeads
	x.postScratch = x.postings
	x.postings = newPost
}

// posting returns the CSR posting list of node v (the ids of the indexed
// RR sets containing v). Valid until the next rebuild.
func (x *Index) posting(v int32) []int32 {
	return x.postings[x.heads[v]:x.heads[v+1]]
}

// Degree returns the number of indexed RR sets containing v, i.e. the
// marginal coverage of v with respect to the empty seed set.
func (x *Index) Degree(v int32) int {
	x.ensureIndexed()
	return len(x.posting(v))
}

// CoverageOf returns Λ(S): the number of indexed RR sets intersecting the
// seed set.
func (x *Index) CoverageOf(seeds []int32) int64 {
	x.ensureIndexed()
	x.newRun()
	var cov int64
	for _, v := range seeds {
		for _, id := range x.posting(v) {
			if x.covered[id] != x.run {
				x.covered[id] = x.run
				cov++
			}
		}
	}
	return cov
}

func (x *Index) newRun() {
	x.run++
	if x.run == 0 {
		for i := range x.covered {
			x.covered[i] = 0
		}
		x.run = 1
	}
}

// GreedyOptions configures one seed-selection run.
type GreedyOptions struct {
	// K is the number of seeds to select (clamped to the node count).
	K int
	// Revised enables the Algorithm 6 tie-break: among nodes with the
	// same marginal coverage, prefer the larger out-degree. It requires
	// the index to have been built with out-degrees.
	Revised bool
	// Base is coverage already guaranteed outside this index — in HIST's
	// second phase, the number of RR sets that terminated on a sentinel.
	// It is added to the reported coverages and the upper bound.
	Base int64
	// TopL is the number of largest marginal coverages summed in the Λᵘ
	// prefix bound; it defaults to K. HIST's second phase selects k-b
	// seeds but bounds the size-k optimum, so it passes TopL = k.
	TopL int
	// Exclude marks nodes (indexed by id) that must not be selected —
	// HIST's second phase excludes the sentinel set, which would
	// otherwise be re-picked as zero-gain nodes via the out-degree
	// tie-break.
	Exclude []bool
}

// GreedyResult is the outcome of a selection run.
type GreedyResult struct {
	// Seeds are the selected nodes in pick order (length min(K, n)).
	Seeds []int32
	// Coverage[i] is Base + Λ(S*_{i+1}), the coverage of the first i+1
	// seeds.
	Coverage []int64
	// CoverageUpper is Λᵘ: an upper bound on Base + Λ(S) for any seed
	// set of size TopL, per the maxMC prefix construction.
	CoverageUpper int64
}

// TotalCoverage returns the coverage of the full selected set, or Base
// when no seed was selected.
func (g GreedyResult) TotalCoverage(base int64) int64 {
	if len(g.Coverage) == 0 {
		return base
	}
	return g.Coverage[len(g.Coverage)-1]
}

// celfEntry is one lazy-greedy heap element: the node and its most
// recently computed marginal coverage, which by submodularity upper
// bounds its current marginal.
type celfEntry struct {
	gain int64
	node int32
	iter int32 // selection round the gain was computed in
}

// celfHeap is a hand-rolled max-heap over celfEntry. container/heap
// boxes every pushed and popped element into an interface, which put
// tens of thousands of allocations on the selection path; the direct
// implementation keeps Push/Pop allocation-free. The comparison is a
// total order (node ids are unique), so the pop sequence — and with it
// every greedy pick — is identical to the container/heap version.
type celfHeap struct {
	entries []celfEntry
	outDeg  []int32 // nil disables the out-degree tie-break
}

func (h *celfHeap) Len() int { return len(h.entries) }

// less orders entries by gain, then the optional out-degree tie-break,
// then node id (a total order, so pops are deterministic).
//
//subsim:hotpath
func (h *celfHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if h.outDeg != nil && h.outDeg[a.node] != h.outDeg[b.node] {
		return h.outDeg[a.node] > h.outDeg[b.node]
	}
	return a.node < b.node
}

// swap exchanges two entries in place.
//
//subsim:hotpath
func (h *celfHeap) swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }

// init establishes the heap invariant over the current entries in O(n).
func (h *celfHeap) init() {
	n := len(h.entries)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}

// siftDown restores the invariant below i over the first n entries.
//
//subsim:hotpath
func (h *celfHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// siftUp restores the invariant above i.
//
//subsim:hotpath
func (h *celfHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// push adds an entry, keeping the invariant.
//
//subsim:hotpath
func (h *celfHeap) push(e celfEntry) {
	h.entries = append(h.entries, e)
	h.siftUp(len(h.entries) - 1)
}

// pop removes and returns the maximum entry.
//
//subsim:hotpath
func (h *celfHeap) pop() celfEntry {
	n := len(h.entries) - 1
	h.swap(0, n)
	top := h.entries[n]
	h.entries = h.entries[:n]
	h.siftDown(0, n)
	return top
}

// SelectSeeds runs the (revised) greedy max-coverage algorithm with lazy
// marginal evaluation and computes the Λᵘ upper bound along the way.
//
// Lazy evaluation is exact: a popped entry whose gain is stale is
// recomputed and pushed back, so the node actually selected in each round
// has the true maximum marginal coverage (with the configured
// tie-break applied to recomputed values).
//
// The upper bound is evaluated at prefix 0, at every power-of-two prefix,
// and at the final prefix; the minimum is returned. Skipping intermediate
// prefixes can only loosen the bound, never invalidate it, and keeps the
// bound's cost at O(n log K · log k) instead of O(n·k).
//
// The first CELF round (the initial gains Degree(v) for all n nodes and
// the entry fill) is partitioned across workers when SetWorkers(w>1)
// was configured; the heapify and the lazy-greedy loop stay serial.
// Per-run scratch (heap backing array, gain vector, selected marks) is
// reused across calls, so repeated selection rounds on a warm index do
// not allocate beyond the returned Seeds/Coverage slices.
//
//subsim:parallel
func (x *Index) SelectSeeds(opt GreedyOptions) GreedyResult {
	k := opt.K
	if k > x.n {
		k = x.n
	}
	if k < 0 {
		k = 0
	}
	topL := opt.TopL
	if topL <= 0 {
		topL = k
	}
	var tie []int32
	if opt.Revised {
		if x.outDeg == nil {
			panic("coverage: Revised greedy requires out-degrees")
		}
		tie = x.outDeg
	}

	x.ensureIndexed()
	x.newRun()
	if cap(x.selEntries) < x.n {
		x.selEntries = make([]celfEntry, 0, x.n)
	}
	if len(x.selGains) < x.n {
		x.selGains = make([]int64, x.n)
	}
	if len(x.selSelected) < x.n {
		x.selSelected = make([]bool, x.n) // reset to all-false after every run
	}
	var h celfHeap
	h.outDeg = tie
	h.entries = x.selEntries[:0]
	gains := x.selGains[:x.n] // latest computed gain per node (a valid upper bound)
	selected := x.selSelected[:x.n]

	secG := x.secGains.Enter()
	if x.workers > 1 && x.n >= parallelGainsMinNodes {
		// Per-worker interval records come out of the runTimed wrapper
		// around each gains sub-pass (parallel.go).
		h.entries = x.parallelInitialGains(h.entries, gains, opt.Exclude)
	} else {
		r := x.ring(0)
		t0 := r.Now()
		for v := 0; v < x.n; v++ {
			if opt.Exclude != nil && opt.Exclude[v] {
				gains[v] = 0 // keeps the reused gain vector topSum-safe
				continue
			}
			g := x.heads[v+1] - x.heads[v]
			gains[v] = g
			h.entries = append(h.entries, celfEntry{gain: g, node: int32(v), iter: 0})
		}
		r.Record(timeline.PhaseGains, t0, r.Now())
	}
	h.init()
	secG.Exit()

	res := GreedyResult{
		Seeds:         make([]int32, 0, k),
		Coverage:      make([]int64, 0, k),
		CoverageUpper: int64(x.store.NumSets()) + opt.Base, // trivial bound; tightened below
	}

	// Upper bound at prefix 0: Base + sum of the topL largest initial
	// coverages.
	res.tightenUpper(opt.Base + x.topSum(gains, selected, topL))

	secS := x.secSelect.Enter()
	rSel := x.ring(0)
	tSel := rSel.Now()
	var cum int64
	nextBoundAt := 1
	for round := int32(1); int(round) <= k && h.Len() > 0; round++ {
		var pick celfEntry
		for {
			pick = h.pop()
			if pick.iter == round-1 || pick.gain == 0 {
				// Fresh (computed against the current covered state), or
				// zero — no stale entry can beat zero since gains are
				// non-negative.
				break
			}
			// Stale: recompute the exact marginal and reinsert.
			pick.gain = x.marginal(pick.node)
			pick.iter = round - 1
			gains[pick.node] = pick.gain
			h.push(pick)
		}
		v := pick.node
		selected[v] = true
		gains[v] = 0
		for _, id := range x.posting(v) {
			if x.covered[id] != x.run {
				x.covered[id] = x.run
				cum++
			}
		}
		res.Seeds = append(res.Seeds, v)
		res.Coverage = append(res.Coverage, opt.Base+cum)

		if int(round) == nextBoundAt || int(round) == k {
			// Stored gains upper-bound each node's current marginal
			// (submodularity), so their topL sum dominates the true
			// maxMC sum at this prefix.
			res.tightenUpper(opt.Base + cum + x.topSum(gains, selected, topL))
			nextBoundAt *= 2
		}
	}
	rSel.Record(timeline.PhaseSelect, tSel, rSel.Now())
	secS.Exit()
	// Recycle the scratch: clear the selected marks (only the picked
	// seeds are set) and keep the heap's backing array, which push may
	// have regrown.
	for _, v := range res.Seeds {
		selected[v] = false
	}
	x.selEntries = h.entries[:0]
	return res
}

// marginal returns the exact marginal coverage of v against the current
// covered stamps.
//
//subsim:hotpath
func (x *Index) marginal(v int32) int64 {
	var g int64
	for _, id := range x.posting(v) {
		if x.covered[id] != x.run {
			g++
		}
	}
	return g
}

func (r *GreedyResult) tightenUpper(bound int64) {
	if bound < r.CoverageUpper {
		r.CoverageUpper = bound
	}
}

// topSum returns the sum of the topL largest values among unselected
// nodes, via a bounded insertion buffer in O(n log topL). The buffer is
// index-level scratch reused across calls.
func (x *Index) topSum(gains []int64, selected []bool, topL int) int64 {
	if topL <= 0 {
		return 0
	}
	if cap(x.topScratch) < topL {
		x.topScratch = make([]int64, 0, topL)
	}
	s, buf := topSumInt64(x.topScratch[:0], gains, selected, topL)
	x.topScratch = buf
	return s
}

// topSumInt64 is the bounded-insertion top-L sum shared by the exact
// backends (Index and Sharded compute identical Λᵘ prefix bounds
// through it): the sum of the topL largest gains among unselected
// nodes. best is caller-owned scratch with capacity >= topL, length 0;
// the possibly regrown buffer is returned for reuse.
func topSumInt64(best []int64, gains []int64, selected []bool, topL int) (int64, []int64) {
	for v, g := range gains {
		if selected[v] || g == 0 {
			continue
		}
		if len(best) < topL {
			best = append(best, g)
			if len(best) == topL {
				insertionSortInt64(best)
			}
			continue
		}
		if g > best[0] {
			// Replace the minimum and restore order by insertion.
			best[0] = g
			for i := 1; i < len(best) && best[i] < best[i-1]; i++ {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	if len(best) < topL {
		insertionSortInt64(best)
	}
	var s int64
	for _, g := range best {
		s += g
	}
	return s, best[:0]
}

// insertionSortInt64 sorts ascending in place without the interface
// boxing of sort.Slice (topSum runs on the selection path, where that
// closure allocation is measurable across CELF rounds). The buffers are
// at most topL ≈ k elements, where insertion sort is fine.
func insertionSortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
