// Sharded coverage engine: the zero-splice, all-rounds-parallel exact
// backend.
//
// Where *Index keeps one global flat store (which the batcher must
// splice every per-worker arena into) and one global CSR inverted
// index, *Sharded keeps S independent shards, each owning its RR sets
// in a shard-local rrset.Arena that IS its store segment — the batcher
// generates straight into it, so the splice memcpy disappears — plus a
// shard-local CSR node→sets index and shard-local covered stamps.
// Shards never merge: every query the greedy algorithms issue is an
// integer sum over shards.
//
// # Why this is exact and worker-count independent
//
// Each RR set's content is a pure function of (seed, global index) —
// the batcher reseeds a per-set RNG stream — and the shard assignment
// is the pure function ShardOf(index, S) = index mod S. Degree,
// CoverageOf, every CELF marginal gain, and the Λᵘ prefix bound are
// sums of per-set indicator terms, and integer addition is associative
// and commutative, so ANY partition of the sets into shards yields the
// same totals. Sharded therefore returns byte-identical seeds, stats,
// and certified bounds for workers 1, 2, and 8 — and identical results
// to the single-store *Index — which the equivalence and conformance
// suites pin.
//
// # Reduce ordering contract
//
// Parallel passes aggregate through per-lane partials that the
// coordinator folds with reducePartials: a fixed pairwise tree (fold
// p[i] += p[i+h] with halving h), never a racy accumulation. For the
// integer sums of this backend the order cannot change the result; the
// fixed tree is still the documented contract so a future float-valued
// sharded backend inherits a deterministic reduction for free.
//
// # Parallelism shape
//
//   - CSR rebuilds: each dirty shard rebuilds its own index (the same
//     delta counting sort as Index.buildSerial) with no cross-shard
//     data; lanes pick up shards round-robin.
//   - First CELF round: node-range partition, gains[v] summed over all
//     shard heads, entries filled through prefix-summed slots exactly
//     like Index.parallelInitialGains.
//   - Every later CELF round: a stale heap top's marginal is recomputed
//     as per-shard partials (each lane walks only its shards' posting
//     lists against its shards' covered stamps — disjoint state), and
//     the winning seed's covered-bit update fans out the same way, each
//     recorded as timeline.PhaseReduce so rounds beyond the first are
//     visible as parallel in the timeline digest.
package coverage

import (
	"time"

	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
	"subsim/internal/rrset"
)

// parallelReduceMinPostings is the posting mass (across all shards) of
// the heap-top node below which a marginal recompute or covered-bit
// update stays serial; tiny posting lists are cheaper to walk inline
// than to fan out. A var so tests can force the parallel reduce on
// small inputs.
var parallelReduceMinPostings = 1 << 11

// ShardOf is the pure shard-assignment function: the RR set with global
// index idx lives in shard idx mod shards. Both fill paths route
// through it — Batcher.FillSharded by generation index, the generic
// AbsorbArena by collection index — so placement never depends on
// scheduling, only on (index, shard count).
func ShardOf(idx int64, shards int) int {
	return int(idx % int64(shards))
}

// covShard is one shard: its arena (the store segment the batcher
// generates into), its CSR inverted index over the arena's sets
// (shard-local set ids = arena positions), and its covered stamps.
type covShard struct {
	arena rrset.Arena

	// CSR inverted index over the first `indexed` arena sets; the
	// posting list of node v is postings[heads[v]:heads[v+1]],
	// ascending by shard-local set id.
	heads    []int64
	postings []int32
	indexed  int
	cursors  []int64 // counting-sort scratch, len n, zeroed between builds

	covered []uint32 // per-set stamp; covered in run r iff covered[i] == r
	run     uint32

	// Rebuild double buffers, swapped on every delta build like the
	// global index's (see Index.commitBuild).
	headsScratch []int64
	postScratch  []int32
}

// Sharded is the sharded exact coverage estimator. Like *Index it is
// append-only and not safe for concurrent mutation; SetWorkers bounds
// internal parallelism and never changes any result. The shard count is
// structural — fixed at construction, it decides data placement — while
// the worker bound only decides how many lanes walk the shards.
type Sharded struct {
	n       int
	outDeg  []int32 // optional out-degrees for the Revised-Greedy tie-break
	shards  []covShard
	workers int

	// Selection scratch reused across SelectSeeds runs, mirroring the
	// global index's: CELF heap backing, per-node gain upper bounds,
	// selected marks, topSum buffer, per-lane reduce partials, and the
	// entry-slot bases of the partitioned first round.
	selEntries  []celfEntry
	selGains    []int64
	selSelected []bool
	topScratch  []int64
	partial     []int64

	// Observability hooks (nil-safe), sharing the index-build metric
	// family with *Index: rebuild durations land on the same histograms,
	// split by the serial/parallel path taken across shards.
	buildHist    *obs.Histogram
	buildSerHist *obs.Histogram
	buildParHist *obs.Histogram
	entriesCtr   *obs.Counter

	tl *timeline.Timeline

	secBuild  *obs.PhaseSection
	secGains  *obs.PhaseSection
	secSelect *obs.PhaseSection
	secReduce *obs.PhaseSection
}

// NewSharded returns an empty sharded estimator over n nodes with the
// given shard count (clamped to >= 1). outDeg, when non-nil, supplies
// the out-degrees for the Revised-Greedy tie-break; it must have
// length n.
func NewSharded(n int, outDeg []int32, shards int) *Sharded {
	if outDeg != nil && len(outDeg) != n {
		panic("coverage: outDeg length mismatch")
	}
	if shards < 1 {
		shards = 1
	}
	x := &Sharded{
		n:       n,
		outDeg:  outDeg,
		shards:  make([]covShard, shards),
		workers: 1,
	}
	for s := range x.shards {
		sh := &x.shards[s]
		sh.heads = make([]int64, n+1)
		sh.cursors = make([]int64, n)
	}
	return x
}

// NewShardedObs is NewSharded wired to m's index-build instruments and,
// when m carries one, its execution timeline; a nil m yields a plain,
// uninstrumented estimator.
func NewShardedObs(n int, outDeg []int32, shards int, m *obs.MetricSet) *Sharded {
	x := NewSharded(n, outDeg, shards)
	if m != nil {
		x.SetBuildMetrics(&m.IndexBuild, &m.IndexBuildSerial, &m.IndexBuildParallel, &m.IndexEntries)
		x.SetTimeline(m.Timeline)
	}
	return x
}

// NumShards returns the structural shard count.
func (x *Sharded) NumShards() int { return len(x.shards) }

// ShardArena returns shard s's arena — the store segment the batcher's
// zero-splice fill path generates into directly. The caller appends
// committed sets (and may DropLast sentinel hits); the shard's CSR
// picks the delta up lazily on the next query.
func (x *Sharded) ShardArena(s int) *rrset.Arena { return &x.shards[s].arena }

// SetWorkers bounds the internal parallelism of shard rebuilds, the
// initial-gain pass, and the per-round reduces (clamped to >= 1). It
// never changes any result.
func (x *Sharded) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	x.workers = w
	x.refreshSections()
}

// Workers returns the configured parallelism bound.
func (x *Sharded) Workers() int { return x.workers }

// SetBuildMetrics attaches the CSR-rebuild instruments (all nil-safe);
// the estimator shares the exact index's metric family.
func (x *Sharded) SetBuildMetrics(total, serial, parallel *obs.Histogram, entries *obs.Counter) {
	x.buildHist = total
	x.buildSerHist = serial
	x.buildParHist = parallel
	x.entriesCtr = entries
	x.refreshSections()
}

// SetTimeline attaches a per-worker execution timeline (nil keeps every
// record site a zero-cost no-op). Must not be called while a query is
// in flight.
func (x *Sharded) SetTimeline(tl *timeline.Timeline) {
	x.tl = tl
	x.refreshSections()
}

// refreshSections rebinds the cached pprof/trace sections to the
// current worker count; sections materialise only once instrumentation
// is attached.
func (x *Sharded) refreshSections() {
	if x.buildHist == nil && x.tl == nil {
		return
	}
	x.secBuild = obs.Section("index-build", x.workers)
	x.secGains = obs.Section("select-gains", x.workers)
	x.secSelect = obs.Section("select", 1)
	x.secReduce = obs.Section("reduce", x.workers)
}

// ring returns worker w's timeline ring (nil when no timeline is
// attached).
func (x *Sharded) ring(w int) *timeline.Ring { return x.tl.Worker(w) }

// runTimed is runParallel with per-worker timeline records, mirroring
// Index.runTimed: the wrapper closure exists only on the instrumented
// path, so the uninstrumented pipeline stays allocation-identical.
func (x *Sharded) runTimed(phase timeline.Phase, workers int, fn func(w int)) {
	if x.tl == nil {
		runParallel(workers, fn)
		return
	}
	runParallel(workers, func(w int) {
		r := x.tl.Worker(w)
		t0 := r.Now()
		fn(w)
		r.Record(phase, t0, r.Now())
	})
}

// growPartial sizes the per-lane partial-aggregate scratch.
func (x *Sharded) growPartial(lanes int) {
	if cap(x.partial) < lanes {
		x.partial = make([]int64, lanes)
	}
	x.partial = x.partial[:lanes]
}

// reducePartials folds the per-lane partials in the fixed pairwise tree
// documented in the package comment: halve the live prefix, adding the
// upper half onto the lower, until one value remains. The fold mutates
// p (it is lane scratch).
func reducePartials(p []int64) int64 {
	if len(p) == 0 {
		return 0
	}
	for n := len(p); n > 1; {
		h := (n + 1) / 2
		for i := 0; i+h < n; i++ {
			p[i] += p[i+h]
		}
		n = h
	}
	return p[0]
}

// N returns the number of nodes the estimator is defined over.
func (x *Sharded) N() int { return x.n }

// NumSets returns the number of RR sets across all shards.
func (x *Sharded) NumSets() int {
	total := 0
	for s := range x.shards {
		total += x.shards[s].arena.Len()
	}
	return total
}

// MemoryBytes reports the approximate heap footprint of the shard
// arenas plus their CSR indexes.
func (x *Sharded) MemoryBytes() int64 {
	var b int64
	for s := range x.shards {
		sh := &x.shards[s]
		b += sh.arena.MemoryBytes()
		b += int64(cap(sh.postings))*4 + int64(cap(sh.heads))*8
	}
	return b
}

// Kind identifies the sharded exact backend.
func (x *Sharded) Kind() EstimatorKind { return EstimatorSharded }

// RelError is 0: shard sums count coverage exactly.
func (x *Sharded) RelError() float64 { return 0 }

// Add absorbs one RR set, routed by ShardOf over the current
// collection index.
func (x *Sharded) Add(set rrset.RRSet) {
	s := ShardOf(int64(x.NumSets()), len(x.shards))
	x.shards[s].arena.Append(set)
}

// AbsorbArena absorbs a flat arena buffer, skipping sentinel-terminated
// sets and routing each kept set to ShardOf(collection index, S). It is
// the generic ingestion path; Batcher.FillSharded bypasses it by
// generating into the shard arenas directly.
func (x *Sharded) AbsorbArena(data []int32, ends []int64, sentinel []bool) int64 {
	idx := int64(x.NumSets())
	shards := len(x.shards)
	var hits int64
	start := int64(0)
	for _, end := range ends {
		if sentinel != nil && end > start && sentinel[data[end-1]] {
			hits++
			start = end
			continue
		}
		x.shards[ShardOf(idx, shards)].arena.Append(data[start:end])
		idx++
		start = end
	}
	return hits
}

// ensureIndexed brings every shard's CSR (and covered stamps) up to
// date with its arena. Dirty shards rebuild independently — the same
// delta counting sort as the global index, just shard-local — so there
// is no merge step; with SetWorkers(w>1) and a large enough total delta
// the rebuilds fan out across lanes, each lane walking shards
// round-robin.
//
//subsim:parallel
func (x *Sharded) ensureIndexed() {
	var delta int64
	dirty := 0
	for s := range x.shards {
		sh := &x.shards[s]
		if sh.indexed != sh.arena.Len() {
			dirty++
			delta += sh.deltaNodes()
		}
	}
	if dirty == 0 {
		return
	}
	sec := x.secBuild.Enter()
	start := time.Now() //lint:allow timing (feeds the index-build duration histograms only)

	lanes := x.workers
	if lanes > len(x.shards) {
		lanes = len(x.shards)
	}
	parallel := lanes > 1 && delta >= int64(parallelBuildMinDelta)
	if parallel {
		x.runTimed(timeline.PhaseIndexBuild, lanes, func(l int) {
			for s := l; s < len(x.shards); s += lanes {
				x.shards[s].build(x.n)
			}
		})
	} else {
		r := x.ring(0)
		t0 := r.Now()
		for s := range x.shards {
			x.shards[s].build(x.n)
		}
		r.Record(timeline.PhaseIndexBuild, t0, r.Now())
	}

	x.entriesCtr.Add(delta)
	ns := time.Since(start).Nanoseconds() //lint:allow timing (feeds the index-build duration histograms only)
	x.buildHist.Observe(ns)
	if parallel {
		x.buildParHist.Observe(ns)
	} else {
		x.buildSerHist.Observe(ns)
	}
	sec.Exit()
}

// deltaNodes returns the number of node ids appended since the shard's
// last build.
func (sh *covShard) deltaNodes() int64 {
	from := int64(0)
	if sh.indexed > 0 {
		from = sh.arena.Ends()[sh.indexed-1]
	}
	return int64(sh.arena.NumNodes()) - from
}

// build is the shard-local delta CSR rebuild: counting pass over the
// delta, prefix-summed heads, block copy of the old posting lists,
// scatter of the delta ids — Index.buildSerial against the arena
// instead of a spliced store. No-op on a clean shard.
//
//subsim:hotpath
func (sh *covShard) build(n int) {
	total := sh.arena.Len()
	if sh.indexed == total {
		return
	}
	data := sh.arena.Data()
	ends := sh.arena.Ends()
	deltaFrom := int64(0)
	if sh.indexed > 0 {
		deltaFrom = ends[sh.indexed-1]
	}

	// Counting pass over the delta only.
	cnt := sh.cursors // zeroed by the previous build (or construction)
	for _, v := range data[deltaFrom:] {
		cnt[v]++
	}

	// New heads: old per-node length + delta count, prefix-summed.
	if cap(sh.headsScratch) < n+1 {
		sh.headsScratch = make([]int64, n+1)
	}
	newHeads := sh.headsScratch[:n+1]
	var acc int64
	for v := 0; v < n; v++ {
		newHeads[v] = acc
		acc += (sh.heads[v+1] - sh.heads[v]) + cnt[v]
	}
	newHeads[n] = acc
	if int64(cap(sh.postScratch)) < acc {
		newCap := 2 * int64(cap(sh.postScratch))
		if newCap < acc {
			newCap = acc
		}
		sh.postScratch = make([]int32, newCap)
	}
	newPost := sh.postScratch[:acc]

	// Placement pass: block-copy the old posting lists, then scatter the
	// delta ids behind them (ascending shard-local id order keeps every
	// list sorted).
	for v := 0; v < n; v++ {
		oldLen := sh.heads[v+1] - sh.heads[v]
		if oldLen > 0 {
			copy(newPost[newHeads[v]:], sh.postings[sh.heads[v]:sh.heads[v+1]])
		}
		cnt[v] = newHeads[v] + oldLen // becomes the scatter cursor
	}
	pos := deltaFrom
	for id := sh.indexed; id < total; id++ {
		end := ends[id]
		for ; pos < end; pos++ {
			v := data[pos]
			newPost[cnt[v]] = int32(id)
			cnt[v]++
		}
	}
	for v := range cnt {
		cnt[v] = 0
	}

	// Double-buffer swap, then grow the covered stamps (geometrically;
	// fresh sets carry stamp 0, never a live run id).
	sh.headsScratch = sh.heads
	sh.heads = newHeads
	sh.postScratch = sh.postings
	sh.postings = newPost
	sh.indexed = total
	if cap(sh.covered) < total {
		newCap := 2 * cap(sh.covered)
		if newCap < total {
			newCap = total
		}
		grown := make([]uint32, total, newCap)
		copy(grown, sh.covered)
		sh.covered = grown
	} else {
		tail := sh.covered[len(sh.covered):total]
		for i := range tail {
			tail[i] = 0 // recycled capacity may hold stale stamps
		}
		sh.covered = sh.covered[:total]
	}
}

// posting returns the shard's CSR posting list of node v.
func (sh *covShard) posting(v int32) []int32 {
	return sh.postings[sh.heads[v]:sh.heads[v+1]]
}

func (sh *covShard) newRun() {
	sh.run++
	if sh.run == 0 {
		for i := range sh.covered {
			sh.covered[i] = 0
		}
		sh.run = 1
	}
}

// marginal returns the shard's contribution to the exact marginal
// coverage of v against its current covered stamps.
//
//subsim:hotpath
func (sh *covShard) marginal(v int32) int64 {
	var g int64
	for _, id := range sh.posting(v) {
		if sh.covered[id] != sh.run {
			g++
		}
	}
	return g
}

// cover stamps every uncovered set of v's shard posting list and
// returns the number newly covered — the shard's partial of the
// seed-commit update.
//
//subsim:hotpath
func (sh *covShard) cover(v int32) int64 {
	var d int64
	for _, id := range sh.posting(v) {
		if sh.covered[id] != sh.run {
			sh.covered[id] = sh.run
			d++
		}
	}
	return d
}

// Degree returns the exact number of absorbed RR sets containing v:
// the sum of v's posting-list lengths over all shards.
func (x *Sharded) Degree(v int32) int {
	x.ensureIndexed()
	var d int64
	for s := range x.shards {
		sh := &x.shards[s]
		d += sh.heads[v+1] - sh.heads[v]
	}
	return int(d)
}

// CoverageOf returns Λ(S) exactly: each shard counts the sets its
// segment contributes (under a fresh run), and the counts add up
// because the shards partition the collection.
func (x *Sharded) CoverageOf(seeds []int32) int64 {
	x.ensureIndexed()
	var cov int64
	for s := range x.shards {
		sh := &x.shards[s]
		sh.newRun()
		for _, v := range seeds {
			for _, id := range sh.posting(v) {
				if sh.covered[id] != sh.run {
					sh.covered[id] = sh.run
					cov++
				}
			}
		}
	}
	return cov
}

// postingMass returns the total posting-list length of v across shards,
// the fan-out decision input for the per-round reduces.
func (x *Sharded) postingMass(v int32) int64 {
	var m int64
	for s := range x.shards {
		sh := &x.shards[s]
		m += sh.heads[v+1] - sh.heads[v]
	}
	return m
}

// marginal returns the exact marginal coverage of v: per-shard partials
// tree-reduced in the fixed lane order. Heavy posting lists fan out
// across lanes (each lane owning whole shards, so covered-stamp reads
// never cross a lane boundary); light ones stay inline.
//
//subsim:parallel
func (x *Sharded) marginal(v int32) int64 {
	shards := len(x.shards)
	lanes := x.workers
	if lanes > shards {
		lanes = shards
	}
	if lanes > 1 && x.postingMass(v) >= int64(parallelReduceMinPostings) {
		sec := x.secReduce.Enter()
		x.growPartial(lanes)
		x.runTimed(timeline.PhaseReduce, lanes, func(l int) {
			var g int64
			for s := l; s < shards; s += lanes {
				g += x.shards[s].marginal(v)
			}
			x.partial[l] = g
		})
		sec.Exit()
		return reducePartials(x.partial[:lanes])
	}
	var g int64
	for s := range x.shards {
		g += x.shards[s].marginal(v)
	}
	return g
}

// commitSeed stamps the sets of the freshly selected seed as covered in
// every shard and returns the total newly covered — the fan-out twin of
// marginal, with per-shard deltas tree-reduced the same way.
//
//subsim:parallel
func (x *Sharded) commitSeed(v int32) int64 {
	shards := len(x.shards)
	lanes := x.workers
	if lanes > shards {
		lanes = shards
	}
	if lanes > 1 && x.postingMass(v) >= int64(parallelReduceMinPostings) {
		sec := x.secReduce.Enter()
		x.growPartial(lanes)
		x.runTimed(timeline.PhaseReduce, lanes, func(l int) {
			var d int64
			for s := l; s < shards; s += lanes {
				d += x.shards[s].cover(v)
			}
			x.partial[l] = d
		})
		sec.Exit()
		return reducePartials(x.partial[:lanes])
	}
	var d int64
	for s := range x.shards {
		d += x.shards[s].cover(v)
	}
	return d
}

// parallelInitialGains is the partitioned first CELF round over shard
// sums: gains[v] is the sum of v's posting lengths across shards, and
// entries are filled through per-range prefix-summed slots so the order
// (ascending node id, exclusions skipped) matches the serial loop
// exactly — the same construction as the global index's.
func (x *Sharded) parallelInitialGains(entries []celfEntry, gains []int64, exclude []bool) []celfEntry {
	workers := x.workers
	x.growPartial(workers)
	x.runTimed(timeline.PhaseGains, workers, func(w int) {
		lo := x.n * w / workers
		hi := x.n * (w + 1) / workers
		x.partial[w] = x.gainsRangeSharded(gains, exclude, lo, hi)
	})
	var totalEntries int64
	for w := 0; w < workers; w++ {
		totalEntries, x.partial[w] = totalEntries+x.partial[w], totalEntries // partial becomes the slot base
	}
	entries = entries[:totalEntries]
	x.runTimed(timeline.PhaseGains, workers, func(w int) {
		lo := x.n * w / workers
		hi := x.n * (w + 1) / workers
		fillEntriesRange(entries, gains, exclude, lo, hi, int(x.partial[w]))
	})
	return entries
}

// gainsRangeSharded writes the shard-summed initial gain of every node
// in [lo, hi) — or 0 for excluded nodes, keeping the reused gain vector
// topSum-safe — and returns the number of non-excluded nodes.
//
//subsim:hotpath
func (x *Sharded) gainsRangeSharded(gains []int64, exclude []bool, lo, hi int) int64 {
	var cnt int64
	for v := lo; v < hi; v++ {
		if exclude != nil && exclude[v] {
			gains[v] = 0
			continue
		}
		var g int64
		for s := range x.shards {
			sh := &x.shards[s]
			g += sh.heads[v+1] - sh.heads[v]
		}
		gains[v] = g
		cnt++
	}
	return cnt
}

// SelectSeeds runs the identical lazy-greedy CELF algorithm as the
// global index — same heap, same tie-breaks, same Λᵘ prefix bound, and
// therefore the same picks — with every round's heavy work (stale-top
// marginal recomputes AND the covered-bit commit) fanned out across
// shards and tree-reduced, not just the first round's gain pass.
// Per-run scratch is reused across calls.
//
//subsim:parallel
func (x *Sharded) SelectSeeds(opt GreedyOptions) GreedyResult {
	k := opt.K
	if k > x.n {
		k = x.n
	}
	if k < 0 {
		k = 0
	}
	topL := opt.TopL
	if topL <= 0 {
		topL = k
	}
	var tie []int32
	if opt.Revised {
		if x.outDeg == nil {
			panic("coverage: Revised greedy requires out-degrees")
		}
		tie = x.outDeg
	}

	x.ensureIndexed()
	for s := range x.shards {
		x.shards[s].newRun()
	}
	if cap(x.selEntries) < x.n {
		x.selEntries = make([]celfEntry, 0, x.n)
	}
	if len(x.selGains) < x.n {
		x.selGains = make([]int64, x.n)
	}
	if len(x.selSelected) < x.n {
		x.selSelected = make([]bool, x.n) // reset to all-false after every run
	}
	var h celfHeap
	h.outDeg = tie
	h.entries = x.selEntries[:0]
	gains := x.selGains[:x.n]
	selected := x.selSelected[:x.n]

	secG := x.secGains.Enter()
	if x.workers > 1 && x.n >= parallelGainsMinNodes {
		h.entries = x.parallelInitialGains(h.entries, gains, opt.Exclude)
	} else {
		r := x.ring(0)
		t0 := r.Now()
		for v := 0; v < x.n; v++ {
			if opt.Exclude != nil && opt.Exclude[v] {
				gains[v] = 0
				continue
			}
			var g int64
			for s := range x.shards {
				sh := &x.shards[s]
				g += sh.heads[v+1] - sh.heads[v]
			}
			gains[v] = g
			h.entries = append(h.entries, celfEntry{gain: g, node: int32(v), iter: 0})
		}
		r.Record(timeline.PhaseGains, t0, r.Now())
	}
	h.init()
	secG.Exit()

	res := GreedyResult{
		Seeds:         make([]int32, 0, k),
		Coverage:      make([]int64, 0, k),
		CoverageUpper: int64(x.NumSets()) + opt.Base, // trivial bound; tightened below
	}
	res.tightenUpper(opt.Base + x.topSum(gains, selected, topL))

	secS := x.secSelect.Enter()
	rSel := x.ring(0)
	tSel := rSel.Now()
	var cum int64
	nextBoundAt := 1
	for round := int32(1); int(round) <= k && h.Len() > 0; round++ {
		var pick celfEntry
		for {
			pick = h.pop()
			if pick.iter == round-1 || pick.gain == 0 {
				// Fresh (computed against the current covered state), or
				// zero — no stale entry can beat zero since gains are
				// non-negative.
				break
			}
			// Stale: recompute the exact marginal (fanning out across
			// shards when the posting mass warrants it) and reinsert.
			pick.gain = x.marginal(pick.node)
			pick.iter = round - 1
			gains[pick.node] = pick.gain
			h.push(pick)
		}
		v := pick.node
		selected[v] = true
		gains[v] = 0
		cum += x.commitSeed(v)
		res.Seeds = append(res.Seeds, v)
		res.Coverage = append(res.Coverage, opt.Base+cum)

		if int(round) == nextBoundAt || int(round) == k {
			// Stored gains upper-bound each node's current marginal
			// (submodularity), so their topL sum dominates the true
			// maxMC sum at this prefix.
			res.tightenUpper(opt.Base + cum + x.topSum(gains, selected, topL))
			nextBoundAt *= 2
		}
	}
	rSel.Record(timeline.PhaseSelect, tSel, rSel.Now())
	secS.Exit()
	// Recycle the scratch: clear the selected marks (only the picked
	// seeds are set) and keep the heap's backing array.
	for _, v := range res.Seeds {
		selected[v] = false
	}
	x.selEntries = h.entries[:0]
	return res
}

// topSum returns the sum of the topL largest gains among unselected
// nodes through the shared bounded-insertion helper, against
// estimator-level scratch.
func (x *Sharded) topSum(gains []int64, selected []bool, topL int) int64 {
	if topL <= 0 {
		return 0
	}
	if cap(x.topScratch) < topL {
		x.topScratch = make([]int64, 0, topL)
	}
	s, buf := topSumInt64(x.topScratch[:0], gains, selected, topL)
	x.topScratch = buf
	return s
}
