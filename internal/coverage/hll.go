// Register-array HyperLogLog coverage backend.
//
// Each node owns a flat block of m = 2^precision one-byte registers
// inside one contiguous register file ([n·m]uint8), and every absorbed
// RR set is treated as one distinct element: its global set id is
// hashed once (splitmix64), split into a register slot (top p bits)
// and a rank (position of the first 1 in the remaining bits), and
// max-folded into the block of every node the set contains. Coverage
// queries — Degree, CoverageOf, CELF marginal gains — become harmonic-
// mean estimates over register blocks and their pointwise-max unions
// instead of posting-list walks, within the backend's certified
// relative standard error of ~1.04/sqrt(m).
//
// Because max is commutative and associative, the register file is a
// pure function of the absorbed (set id, membership) pairs: worker
// count, arena partitioning, and merge order cannot change a single
// byte, which preserves the repo's worker-independence invariant.
package coverage

import (
	"fmt"
	"math"
	"math/bits"

	"subsim/internal/obs"
	"subsim/internal/rrset"
)

const (
	// HLLDefaultPrecision is the register-index width p used when the
	// caller passes 0: m = 256 registers (256 B) per node, relative
	// standard error ~6.5%.
	HLLDefaultPrecision = 8
	// HLLMinPrecision and HLLMaxPrecision bound the accepted p. Below 4
	// the bias correction breaks down; above 16 the per-node block (64 KiB)
	// defeats the point of sketching.
	HLLMinPrecision = 4
	HLLMaxPrecision = 16
)

// pow2neg[r] = 2^-r for every possible register byte. The table spans
// the full byte range — not just the ranks a 64-bit hash can produce —
// so estimates over corrupted register files (fuzzing, bad input)
// degrade gracefully instead of indexing out of range.
var pow2neg = func() [256]float64 {
	var t [256]float64
	for i := range t {
		t[i] = math.Pow(2, -float64(i))
	}
	return t
}()

// hllAlpha is the standard bias-correction constant α_m.
func hllAlpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// hllMix is the splitmix64 finalizer — the same hash family the RR
// batcher uses to derive per-set RNG streams, applied here to the
// global set id so sketch contents are a pure function of set ids.
func hllMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hllSlot splits a hash into its register index (top p bits) and rank
// (position of the first 1 bit in the remainder, 1-based). The OR'd
// sentinel bit caps the rank at 64-p+1 when the remainder is all zeros.
//
//subsim:hotpath
func hllSlot(x uint64, p uint32) (j int, rank uint8) {
	j = int(x >> (64 - p))
	rank = uint8(bits.LeadingZeros64(x<<p|1<<(p-1))) + 1
	return j, rank
}

// hllRawSum accumulates the harmonic denominator and zero-register
// count of one register block.
//
//subsim:hotpath
func hllRawSum(regs []uint8) (sum float64, zeros int) {
	for _, r := range regs {
		sum += pow2neg[r]
		if r == 0 {
			zeros++
		}
	}
	return sum, zeros
}

// hllUnionSum is hllRawSum over the pointwise max of two equal-length
// register blocks, without materializing the union.
//
//subsim:hotpath
func hllUnionSum(a, b []uint8) (sum float64, zeros int) {
	for i, r := range a {
		if s := b[i]; s > r {
			r = s
		}
		sum += pow2neg[r]
		if r == 0 {
			zeros++
		}
	}
	return sum, zeros
}

// hllEstimate turns a harmonic sum into the bias-corrected cardinality
// estimate, with the linear-counting correction in the small range. No
// large-range correction is needed: ranks come from a 64-bit hash.
func hllEstimate(sum float64, zeros, m int) float64 {
	if sum <= 0 {
		return 0
	}
	e := hllAlpha(m) * float64(m) * float64(m) / sum
	if zeros > 0 && e <= 2.5*float64(m) {
		e = float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return e
}

// MergeRegisters folds src into dst by pointwise max — the HLL union.
// Register files of different lengths mean different precisions; the
// merge rejects the pair by returning false and leaving dst untouched.
//
//subsim:hotpath
func MergeRegisters(dst, src []uint8) bool {
	if len(dst) != len(src) {
		return false
	}
	for i, s := range src {
		if s > dst[i] {
			dst[i] = s
		}
	}
	return true
}

// EstimateUnion returns the estimated distinct-element count of the
// union of two register files, or -1 when their lengths (precisions)
// differ or are empty — mismatched registers cannot be compared.
//
//subsim:hotpath
func EstimateUnion(a, b []uint8) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return -1
	}
	sum, zeros := hllUnionSum(a, b)
	return hllEstimate(sum, zeros, len(a))
}

// EstimateRegisters returns the cardinality estimate of one register
// file, or -1 when it is empty.
func EstimateRegisters(regs []uint8) float64 {
	if len(regs) == 0 {
		return -1
	}
	sum, zeros := hllRawSum(regs)
	return hllEstimate(sum, zeros, len(regs))
}

// hllSpan is one kept set's slice of an arena buffer plus its
// precomputed register slot, so parallel workers never rehash.
type hllSpan struct {
	start, end int64
	j          int32
	rank       uint8
}

// parallelAbsorbMinSets is the kept-set count below which AbsorbArena
// stays serial. A var so tests can force the parallel path on small
// inputs.
var parallelAbsorbMinSets = 1 << 10

// HLL is the sketch coverage estimator: one HyperLogLog register block
// per node over the stream of absorbed RR-set ids. It implements
// Estimator with memory fixed at n·2^p bytes regardless of θ and does
// not retain the sets themselves. Like *Index it is append-only and not
// safe for concurrent mutation; a nil *HLL is an empty, inert
// estimator and every exported method tolerates it.
type HLL struct {
	n       int
	outDeg  []int32
	p       uint32
	m       int
	relErr  float64
	regs    []uint8 // n·m flat register file, node-major
	numSets int
	workers int

	memGauge *obs.IntGauge

	// Reused scratch: the selected-union sketch, CELF heap backing,
	// gain vector, selected marks, topSum buffer, and absorb spans.
	cov         []uint8
	selEntries  []hllEntry
	selGains    []float64
	selSelected []bool
	topScratch  []float64
	spanScratch []hllSpan
}

// NewHLL builds a sketch estimator over n nodes with 2^precision
// registers per node (precision 0 selects HLLDefaultPrecision). outDeg
// enables the revised-greedy tie-break and may be nil.
func NewHLL(n int, outDeg []int32, precision int) *HLL {
	if outDeg != nil && len(outDeg) != n {
		panic("coverage: outDeg length does not match node count")
	}
	p := precision
	if p == 0 {
		p = HLLDefaultPrecision
	}
	if p < HLLMinPrecision || p > HLLMaxPrecision {
		panic(fmt.Sprintf("coverage: HLL precision %d outside [%d, %d]", p, HLLMinPrecision, HLLMaxPrecision))
	}
	m := 1 << p
	return &HLL{
		n:       n,
		outDeg:  outDeg,
		p:       uint32(p),
		m:       m,
		relErr:  1.04 / math.Sqrt(float64(m)),
		regs:    make([]uint8, n*m),
		workers: 1,
		cov:     make([]uint8, m),
	}
}

// NewHLLObs is NewHLL wired to a metric set: the register-file resident
// size is published on the SketchBytes gauge at construction (it is
// fixed for the estimator's lifetime).
func NewHLLObs(n int, outDeg []int32, precision int, ms *obs.MetricSet) *HLL {
	h := NewHLL(n, outDeg, precision)
	if ms != nil {
		h.memGauge = &ms.SketchBytes
		h.memGauge.Set(h.MemoryBytes())
	}
	return h
}

// N returns the node count the estimator is defined over.
func (h *HLL) N() int {
	if h == nil {
		return 0
	}
	return h.n
}

// NumSets returns the number of RR sets absorbed so far.
func (h *HLL) NumSets() int {
	if h == nil {
		return 0
	}
	return h.numSets
}

// Precision returns the register-index width p.
func (h *HLL) Precision() int {
	if h == nil {
		return 0
	}
	return int(h.p)
}

// SetWorkers bounds the parallelism of absorb and initial-gain passes
// (clamped to >= 1). It never changes any estimate.
func (h *HLL) SetWorkers(w int) {
	if h == nil {
		return
	}
	if w < 1 {
		w = 1
	}
	h.workers = w
}

// Workers returns the configured parallelism bound.
func (h *HLL) Workers() int {
	if h == nil {
		return 1
	}
	return h.workers
}

// Kind identifies the sketch backend.
func (h *HLL) Kind() EstimatorKind { return EstimatorHLL }

// RelError is the certified relative standard error of the backend's
// coverage estimates: 1.04/sqrt(2^precision).
func (h *HLL) RelError() float64 {
	if h == nil {
		return 0
	}
	return h.relErr
}

// MemoryBytes reports the resident footprint of the coverage state:
// the register file plus the union scratch block. RR sets themselves
// are not retained — unlike the exact index, the footprint does not
// grow with θ.
func (h *HLL) MemoryBytes() int64 {
	if h == nil {
		return 0
	}
	return int64(cap(h.regs)) + int64(cap(h.cov))
}

// block returns node v's register block.
func (h *HLL) block(v int32) []uint8 {
	base := int(v) << h.p
	return h.regs[base : base+h.m]
}

// clampCount rounds an estimate to a coverage count in [0, NumSets].
func (h *HLL) clampCount(est float64) int64 {
	c := int64(est + 0.5)
	if c < 0 {
		c = 0
	}
	if c > int64(h.numSets) {
		c = int64(h.numSets)
	}
	return c
}

// Add absorbs one RR set: hash the next global set id once, then
// max-fold the (slot, rank) pair into every member node's block.
//
//subsim:hotpath
func (h *HLL) Add(set rrset.RRSet) {
	if h == nil {
		return
	}
	j, r := hllSlot(hllMix(uint64(h.numSets)), h.p)
	h.numSets++
	for _, v := range set {
		slot := int(v)<<h.p + j
		if r > h.regs[slot] {
			h.regs[slot] = r
		}
	}
}

// AbsorbArena absorbs a flat arena buffer, skipping sentinel-terminated
// sets, and returns the number skipped. Kept sets take consecutive
// global ids in buffer order, so the register file — and every estimate
// derived from it — is identical to absorbing the sets one Add at a
// time, for any worker count.
//
//subsim:parallel
func (h *HLL) AbsorbArena(data []int32, ends []int64, sentinel []bool) int64 {
	if h == nil || len(ends) == 0 {
		return 0
	}
	spans := h.spanScratch[:0]
	var hits int64
	start := int64(0)
	for _, end := range ends {
		if sentinel != nil && end > start && sentinel[data[end-1]] {
			hits++
			start = end
			continue
		}
		j, r := hllSlot(hllMix(uint64(h.numSets)), h.p)
		h.numSets++
		spans = append(spans, hllSpan{start: start, end: end, j: int32(j), rank: r})
		start = end
	}
	h.spanScratch = spans[:0]
	if h.workers > 1 && len(spans) >= parallelAbsorbMinSets {
		h.absorbParallel(data, spans)
		return hits
	}
	for _, s := range spans {
		h.absorbSpan(data, s)
	}
	return hits
}

// absorbSpan max-folds one kept set's precomputed slot into the blocks
// of its member nodes.
//
//subsim:hotpath
func (h *HLL) absorbSpan(data []int32, s hllSpan) {
	j := int(s.j)
	for _, v := range data[s.start:s.end] {
		slot := int(v)<<h.p + j
		if s.rank > h.regs[slot] {
			h.regs[slot] = s.rank
		}
	}
}

// absorbParallel partitions register ownership by node range: every
// worker scans all spans but only writes registers of nodes in its
// range. Writes are disjoint and max-folds commute, so the register
// file is byte-identical for any worker count.
//
//subsim:parallel
func (h *HLL) absorbParallel(data []int32, spans []hllSpan) {
	workers := h.workers
	runParallel(workers, func(w int) {
		lo := int32(h.n * w / workers)
		hi := int32(h.n * (w + 1) / workers)
		for _, s := range spans {
			j := int(s.j)
			rank := s.rank
			for _, v := range data[s.start:s.end] {
				if v < lo || v >= hi {
					continue
				}
				slot := int(v)<<h.p + j
				if rank > h.regs[slot] {
					h.regs[slot] = rank
				}
			}
		}
	})
}

// Degree estimates the number of absorbed RR sets containing v.
func (h *HLL) Degree(v int32) int {
	if h == nil {
		return 0
	}
	sum, zeros := hllRawSum(h.block(v))
	return int(h.clampCount(hllEstimate(sum, zeros, h.m)))
}

// CoverageOf estimates Λ(S) by merging the seed blocks into the union
// scratch sketch and estimating its cardinality.
func (h *HLL) CoverageOf(seeds []int32) int64 {
	if h == nil {
		return 0
	}
	for i := range h.cov {
		h.cov[i] = 0
	}
	for _, v := range seeds {
		MergeRegisters(h.cov, h.block(v))
	}
	sum, zeros := hllRawSum(h.cov)
	return h.clampCount(hllEstimate(sum, zeros, h.m))
}

// hllEntry is one lazy-greedy heap element over estimated gains.
type hllEntry struct {
	gain float64
	node int32
	iter int32 // selection round the gain was computed in
}

// hllHeap mirrors celfHeap for float-valued gains. The comparison is a
// total order (node ids are unique) and never tests floats for
// equality, so pops are deterministic.
type hllHeap struct {
	entries []hllEntry
	outDeg  []int32 // nil disables the out-degree tie-break
}

func (h *hllHeap) Len() int { return len(h.entries) }

// less orders entries by gain, then the optional out-degree tie-break,
// then node id.
//
//subsim:hotpath
func (h *hllHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.gain > b.gain {
		return true
	}
	if a.gain < b.gain {
		return false
	}
	if h.outDeg != nil && h.outDeg[a.node] != h.outDeg[b.node] {
		return h.outDeg[a.node] > h.outDeg[b.node]
	}
	return a.node < b.node
}

// swap exchanges two entries in place.
//
//subsim:hotpath
func (h *hllHeap) swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }

// init establishes the heap invariant in O(n).
func (h *hllHeap) init() {
	n := len(h.entries)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}

// siftDown restores the invariant below i over the first n entries.
//
//subsim:hotpath
func (h *hllHeap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// siftUp restores the invariant above i.
//
//subsim:hotpath
func (h *hllHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// push adds an entry, keeping the invariant.
//
//subsim:hotpath
func (h *hllHeap) push(e hllEntry) {
	h.entries = append(h.entries, e)
	h.siftUp(len(h.entries) - 1)
}

// pop removes and returns the maximum entry.
//
//subsim:hotpath
func (h *hllHeap) pop() hllEntry {
	n := len(h.entries) - 1
	h.swap(0, n)
	top := h.entries[n]
	h.entries = h.entries[:n]
	h.siftDown(0, n)
	return top
}

// marginalSketch estimates the marginal gain of v on top of the current
// selected-union sketch — |cov ∪ block(v)| − |cov| — clamped
// non-negative (union estimates are not exactly monotone).
//
//subsim:hotpath
func (h *HLL) marginalSketch(v int32, covEst float64) float64 {
	sum, zeros := hllUnionSum(h.cov, h.block(v))
	g := hllEstimate(sum, zeros, h.m) - covEst
	if g < 0 {
		return 0
	}
	return g
}

// parallelInitialGains fills gains[v] for every node by disjoint node
// ranges. Each gain is a pure per-node function of the register file,
// so worker count cannot change a value.
func (h *HLL) parallelInitialGains(gains []float64, exclude []bool) {
	workers := h.workers
	runParallel(workers, func(w int) {
		lo := h.n * w / workers
		hi := h.n * (w + 1) / workers
		for v := lo; v < hi; v++ {
			if exclude != nil && exclude[v] {
				gains[v] = 0
				continue
			}
			sum, zeros := hllRawSum(h.block(int32(v)))
			gains[v] = hllEstimate(sum, zeros, h.m)
		}
	})
}

// SelectSeeds runs the same lazy-greedy CELF loop as the exact index,
// with marginal gains estimated by sketch union instead of posting-list
// walks. The Λᵘ prefix bound is inflated by the backend's certified
// relative error so it still upper-bounds the exact Λᵘ the certified
// influence bounds require; the trivial bound NumSets+Base always
// applies. Selection scratch is reused across calls.
func (h *HLL) SelectSeeds(opt GreedyOptions) GreedyResult {
	if h == nil {
		return GreedyResult{}
	}
	k := opt.K
	if k > h.n {
		k = h.n
	}
	if k < 0 {
		k = 0
	}
	topL := opt.TopL
	if topL <= 0 {
		topL = k
	}
	var tie []int32
	if opt.Revised {
		if h.outDeg == nil {
			panic("coverage: Revised greedy requires out-degrees")
		}
		tie = h.outDeg
	}

	if cap(h.selEntries) < h.n {
		h.selEntries = make([]hllEntry, 0, h.n)
	}
	if len(h.selGains) < h.n {
		h.selGains = make([]float64, h.n)
	}
	if len(h.selSelected) < h.n {
		h.selSelected = make([]bool, h.n) // reset to all-false after every run
	}
	heap := hllHeap{entries: h.selEntries[:0], outDeg: tie}
	gains := h.selGains[:h.n]
	selected := h.selSelected[:h.n]
	for i := range h.cov {
		h.cov[i] = 0
	}

	if h.workers > 1 && h.n >= parallelGainsMinNodes {
		h.parallelInitialGains(gains, opt.Exclude)
	} else {
		for v := 0; v < h.n; v++ {
			if opt.Exclude != nil && opt.Exclude[v] {
				gains[v] = 0
				continue
			}
			sum, zeros := hllRawSum(h.block(int32(v)))
			gains[v] = hllEstimate(sum, zeros, h.m)
		}
	}
	for v := 0; v < h.n; v++ {
		if opt.Exclude != nil && opt.Exclude[v] {
			continue
		}
		heap.entries = append(heap.entries, hllEntry{gain: gains[v], node: int32(v)})
	}
	heap.init()

	res := GreedyResult{
		Seeds:         make([]int32, 0, k),
		Coverage:      make([]int64, 0, k),
		CoverageUpper: int64(h.numSets) + opt.Base, // trivial bound; tightened below
	}
	h.upperAt(&res, opt.Base, 0, gains, selected, topL)

	covEst := 0.0
	nextBoundAt := 1
	for round := int32(1); int(round) <= k && heap.Len() > 0; round++ {
		var pick hllEntry
		for {
			pick = heap.pop()
			if pick.iter == round-1 || pick.gain <= 0 {
				// Fresh, or non-positive — no stale entry can beat it
				// since recomputed gains are clamped non-negative.
				break
			}
			pick.gain = h.marginalSketch(pick.node, covEst)
			pick.iter = round - 1
			gains[pick.node] = pick.gain
			heap.push(pick)
		}
		v := pick.node
		selected[v] = true
		gains[v] = 0
		MergeRegisters(h.cov, h.block(v))
		sum, zeros := hllRawSum(h.cov)
		covEst = hllEstimate(sum, zeros, h.m)
		res.Seeds = append(res.Seeds, v)
		res.Coverage = append(res.Coverage, opt.Base+h.clampCount(covEst))

		if int(round) == nextBoundAt || int(round) == k {
			h.upperAt(&res, opt.Base, covEst, gains, selected, topL)
			nextBoundAt *= 2
		}
	}
	// Recycle the scratch: clear the selected marks and keep the heap's
	// backing array, which push may have regrown.
	for _, v := range res.Seeds {
		selected[v] = false
	}
	h.selEntries = heap.entries[:0]
	return res
}

// upperAt tightens Λᵘ with the prefix bound at the current covered
// estimate: Base + covered + sum of the topL largest stored gains, all
// inflated by the certified relative error so the sketch-valued bound
// still dominates the exact one.
func (h *HLL) upperAt(res *GreedyResult, base int64, covEst float64, gains []float64, selected []bool, topL int) {
	b := (float64(base) + covEst + h.topSumFloat(gains, selected, topL)) * (1 + h.relErr)
	res.tightenUpper(int64(math.Ceil(b)))
}

// topSumFloat is topSum over float gains: the sum of the topL largest
// values among unselected nodes via a bounded insertion buffer.
func (h *HLL) topSumFloat(gains []float64, selected []bool, topL int) float64 {
	if topL <= 0 {
		return 0
	}
	if cap(h.topScratch) < topL {
		h.topScratch = make([]float64, 0, topL)
	}
	best := h.topScratch[:0]
	for v, g := range gains {
		if selected[v] || g <= 0 {
			continue
		}
		if len(best) < topL {
			best = append(best, g)
			if len(best) == topL {
				insertionSortFloat64(best)
			}
			continue
		}
		if g > best[0] {
			best[0] = g
			for i := 1; i < len(best) && best[i] < best[i-1]; i++ {
				best[i], best[i-1] = best[i-1], best[i]
			}
		}
	}
	if len(best) < topL {
		insertionSortFloat64(best)
	}
	var s float64
	for _, g := range best {
		s += g
	}
	h.topScratch = best[:0]
	return s
}

// insertionSortFloat64 sorts ascending in place (see insertionSortInt64
// for why sort.Slice stays off the selection path).
func insertionSortFloat64(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
