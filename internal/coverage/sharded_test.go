package coverage

import (
	"math"
	"sync/atomic"
	"testing"

	"subsim/internal/obs/timeline"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// shardedFromSets builds a Sharded estimator from explicit sets through
// the per-set Add path, which routes by collection index.
func shardedFromSets(n, shards int, outDeg []int32, sets [][]int32) *Sharded {
	x := NewSharded(n, outDeg, shards)
	for _, s := range sets {
		x.Add(rrset.RRSet(s))
	}
	return x
}

// forceParallelSharded drops every size threshold the sharded engine
// gates its fan-outs on — build, initial gains, AND the per-round
// reduces — so tiny test inputs exercise the parallel paths.
func forceParallelSharded(t *testing.T) {
	t.Helper()
	forceParallel(t)
	reduceMin := parallelReduceMinPostings
	parallelReduceMinPostings = 0
	t.Cleanup(func() { parallelReduceMinPostings = reduceMin })
}

func TestShardOf(t *testing.T) {
	for _, tc := range []struct {
		idx    int64
		shards int
		want   int
	}{
		{0, 1, 0}, {5, 1, 0}, {0, 4, 0}, {1, 4, 1}, {4, 4, 0}, {7, 3, 1},
		{1 << 40, 8, 0}, {(1 << 40) + 3, 8, 3},
	} {
		if got := ShardOf(tc.idx, tc.shards); got != tc.want {
			t.Errorf("ShardOf(%d, %d) = %d, want %d", tc.idx, tc.shards, got, tc.want)
		}
	}
}

func TestReducePartials(t *testing.T) {
	for _, in := range [][]int64{
		nil, {}, {7}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4, 5, 6, 7},
		{-3, 10, -4, 0, 2},
	} {
		var want int64
		for _, v := range in {
			want += v
		}
		buf := append([]int64(nil), in...)
		if got := reducePartials(buf); got != want {
			t.Errorf("reducePartials(%v) = %d, want %d", in, got, want)
		}
	}
}

// TestShardedMatchesIndex is the core exactness pin: a Sharded estimator
// over any shard count, at any worker bound, with and without the
// parallel paths forced, must answer Degree, CoverageOf, and SelectSeeds
// byte-identically to the single-store exact index.
func TestShardedMatchesIndex(t *testing.T) {
	const n = 83
	r := rng.New(11)
	sets := randomSets(r, n, 400, 7)
	outDeg := make([]int32, n)
	for v := range outDeg {
		outDeg[v] = int32(r.Intn(40))
	}
	exclude := make([]bool, n)
	for v := 0; v < n; v += 7 {
		exclude[v] = true
	}
	ref := indexFromSets(n, outDeg, sets)

	run := func(t *testing.T) {
		for _, shards := range []int{1, 2, 3, 8} {
			for _, workers := range []int{1, 2, 8} {
				x := shardedFromSets(n, shards, outDeg, sets)
				x.SetWorkers(workers)
				if x.NumShards() != shards || x.Workers() != workers {
					t.Fatalf("shape: shards=%d workers=%d", x.NumShards(), x.Workers())
				}
				if x.NumSets() != len(sets) {
					t.Fatalf("S=%d W=%d: NumSets = %d, want %d", shards, workers, x.NumSets(), len(sets))
				}
				for v := int32(0); v < n; v++ {
					if got, want := x.Degree(v), ref.Degree(v); got != want {
						t.Fatalf("S=%d W=%d: Degree(%d) = %d, want %d", shards, workers, v, got, want)
					}
				}
				for _, seeds := range [][]int32{{0}, {1, 2, 3}, {80, 4, 80}} {
					if got, want := x.CoverageOf(seeds), ref.CoverageOf(seeds); got != want {
						t.Fatalf("S=%d W=%d: CoverageOf(%v) = %d, want %d", shards, workers, seeds, got, want)
					}
				}
				for _, opt := range []GreedyOptions{
					{K: 1},
					{K: 10},
					{K: n},
					{K: 6, Revised: true},
					{K: 5, Exclude: exclude, Base: 13, TopL: 7},
				} {
					a := ref.SelectSeeds(opt)
					b := x.SelectSeeds(opt)
					if len(a.Seeds) != len(b.Seeds) {
						t.Fatalf("S=%d W=%d opt=%+v: %d vs %d seeds", shards, workers, opt, len(b.Seeds), len(a.Seeds))
					}
					for i := range a.Seeds {
						if a.Seeds[i] != b.Seeds[i] || a.Coverage[i] != b.Coverage[i] {
							t.Fatalf("S=%d W=%d opt=%+v: pick %d = (%d,%d), want (%d,%d)",
								shards, workers, opt, i, b.Seeds[i], b.Coverage[i], a.Seeds[i], a.Coverage[i])
						}
					}
					if a.CoverageUpper != b.CoverageUpper {
						t.Fatalf("S=%d W=%d opt=%+v: upper %d, want %d", shards, workers, opt, b.CoverageUpper, a.CoverageUpper)
					}
				}
			}
		}
	}
	t.Run("thresholds-default", run)
	t.Run("thresholds-forced", func(t *testing.T) {
		forceParallelSharded(t)
		run(t)
	})
}

// TestShardedIncrementalDeltas interleaves appends and queries so most
// CSR rebuilds are small per-shard deltas over existing postings, and
// cross-checks degrees against brute-force recounting.
func TestShardedIncrementalDeltas(t *testing.T) {
	forceParallelSharded(t)
	const n = 40
	r := rng.New(99)
	x := NewSharded(n, nil, 3)
	x.SetWorkers(4)
	var all [][]int32
	for round := 0; round < 30; round++ {
		for _, set := range randomSets(r, n, 1+r.Intn(5), 5) {
			x.Add(set)
			all = append(all, set)
		}
		deg := make(map[int32]int)
		for _, set := range all {
			for _, v := range set {
				deg[v]++
			}
		}
		for v := int32(0); v < n; v++ {
			if got := x.Degree(v); got != deg[v] {
				t.Fatalf("round %d: Degree(%d) = %d, want %d", round, v, got, deg[v])
			}
		}
	}
}

// TestShardedAbsorbArenaSentinel drives the generic ingestion path: the
// flat buffer's sentinel-terminated sets are skipped and counted, and
// the kept sets land exactly where per-set Adds would have put them.
func TestShardedAbsorbArenaSentinel(t *testing.T) {
	sentinel := make([]bool, 10)
	sentinel[9] = true
	data := []int32{0, 1, 2, 9, 3, 4, 5, 9, 6}
	ends := []int64{2, 4, 5, 6, 8, 9}
	// Sets: {0,1} keep, {2,9} hit, {3} keep, {4} keep, {5,9} hit, {6} keep.
	x := NewSharded(10, nil, 3)
	if hits := x.AbsorbArena(data, ends, sentinel); hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	want := shardedFromSets(10, 3, nil, [][]int32{{0, 1}, {3}, {4}, {6}})
	if x.NumSets() != 4 {
		t.Fatalf("NumSets = %d, want 4", x.NumSets())
	}
	for s := 0; s < 3; s++ {
		if got, wantLen := x.ShardArena(s).Len(), want.ShardArena(s).Len(); got != wantLen {
			t.Fatalf("shard %d holds %d sets, want %d", s, got, wantLen)
		}
	}
	for v := int32(0); v < 10; v++ {
		if got, wantDeg := x.Degree(v), want.Degree(v); got != wantDeg {
			t.Fatalf("Degree(%d) = %d, want %d", v, got, wantDeg)
		}
	}
	// nil sentinel keeps everything.
	y := NewSharded(10, nil, 2)
	if hits := y.AbsorbArena(data, ends, nil); hits != 0 {
		t.Fatalf("nil sentinel hits = %d", hits)
	}
	if y.NumSets() != 6 {
		t.Fatalf("nil sentinel NumSets = %d, want 6", y.NumSets())
	}
}

// TestShardedRunWraparound pins the per-shard uint32 stamp wraparound:
// after the run counter overflows, queries must stay exact (no phantom
// coverage from stale stamps).
func TestShardedRunWraparound(t *testing.T) {
	sets := [][]int32{{0, 1}, {1, 2}, {3}, {0, 3}, {4}}
	x := shardedFromSets(5, 2, nil, sets)
	seeds := []int32{0, 4}
	want := bruteCoverage(sets, seeds)
	if got := x.CoverageOf(seeds); got != want {
		t.Fatalf("pre-wrap CoverageOf = %d, want %d", got, want)
	}
	for s := range x.shards {
		x.shards[s].run = math.MaxUint32
		x.shards[s].newRun()
		if x.shards[s].run != 1 {
			t.Fatalf("shard %d run after wraparound = %d, want 1", s, x.shards[s].run)
		}
	}
	if got := x.CoverageOf(seeds); got != want {
		t.Fatalf("post-wrap CoverageOf = %d, want %d", got, want)
	}
	res := x.SelectSeeds(GreedyOptions{K: 2})
	if res.TotalCoverage(0) != 3 {
		t.Fatalf("post-wrap selection coverage = %d, want 3", res.TotalCoverage(0))
	}
}

// TestShardedSelectSeedsScratchReuse verifies the selection scratch is
// recycled across runs exactly like the global index's: repeated
// selections on a warm estimator allocate only the returned
// Seeds/Coverage slices.
func TestShardedSelectSeedsScratchReuse(t *testing.T) {
	const n = 200
	r := rng.New(3)
	x := shardedFromSets(n, 4, nil, randomSets(r, n, 2000, 8))
	x.SelectSeeds(GreedyOptions{K: 10}) // warm: builds shards + scratch
	allocs := testing.AllocsPerRun(20, func() {
		x.SelectSeeds(GreedyOptions{K: 10})
	})
	if allocs > 3 {
		t.Fatalf("SelectSeeds allocates %.1f objects/run on a warm sharded estimator", allocs)
	}
}

// TestShardedRebuildScratchReuse verifies the per-shard double-buffered
// rebuild: at steady-state capacity a same-sized delta re-index must not
// allocate.
func TestShardedRebuildScratchReuse(t *testing.T) {
	const n = 100
	r := rng.New(5)
	x := NewSharded(n, nil, 2)
	warm := randomSets(r, n, 4000, 6)
	for i, set := range warm {
		x.Add(set)
		if i%500 == 0 {
			x.Degree(0)
		}
	}
	x.Degree(0)
	sets := randomSets(r, n, 40, 6)
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		x.Add(sets[i%len(sets)])
		i++
		x.Degree(0) // forces the delta rebuild
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state sharded delta rebuild allocates %.1f objects/run", allocs)
	}
}

func TestShardedConstructionClamps(t *testing.T) {
	if got := NewSharded(10, nil, 0).NumShards(); got != 1 {
		t.Errorf("shards=0 clamps to %d, want 1", got)
	}
	x := NewSharded(10, nil, 2)
	x.SetWorkers(0)
	if x.Workers() != 1 {
		t.Errorf("SetWorkers(0) leaves %d, want 1", x.Workers())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched outDeg length did not panic")
		}
	}()
	NewSharded(10, make([]int32, 3), 2)
}

func TestShardedRevisedRequiresOutDeg(t *testing.T) {
	x := shardedFromSets(5, 2, nil, [][]int32{{0}, {1}})
	defer func() {
		if recover() == nil {
			t.Error("Revised greedy without out-degrees did not panic")
		}
	}()
	x.SelectSeeds(GreedyOptions{K: 1, Revised: true})
}

// TestShardedReduceVisibleInTimeline pins the observability contract of
// the fanned-out CELF rounds: with the reduce threshold forced, a
// select over a timeline-attached sharded engine must emit PhaseReduce
// records from >1 worker — the spans that make rounds beyond the first
// visible as parallel in the /timeline digest and the Perfetto trace.
// (At laptop-scale posting masses the threshold honestly keeps the
// reduce inline, so visibility is pinned here, scale-independently.)
func TestShardedReduceVisibleInTimeline(t *testing.T) {
	forceParallelSharded(t)
	r := rng.New(71)
	sets := randomSets(r, 80, 600, 10)
	x := NewSharded(80, nil, 4)
	var now atomic.Int64
	tl := timeline.New(1024, func() int64 { return now.Add(1000) })
	x.SetTimeline(tl)
	for _, s := range sets {
		x.Add(rrset.RRSet(s))
	}
	x.SetWorkers(4)
	if res := x.SelectSeeds(GreedyOptions{K: 8}); len(res.Seeds) != 8 {
		t.Fatalf("selected %d seeds, want 8", len(res.Seeds))
	}
	sum := timeline.Summarize(tl.Snapshot())
	for _, p := range sum.Phases {
		if p.Phase == timeline.PhaseReduce.String() {
			if p.Records == 0 || p.Workers < 2 {
				t.Fatalf("reduce phase records=%d workers=%d, want parallel records", p.Records, p.Workers)
			}
			return
		}
	}
	t.Fatalf("no %q phase in timeline digest: %+v", timeline.PhaseReduce.String(), sum.Phases)
}
