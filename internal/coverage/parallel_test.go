package coverage

import (
	"math"
	"testing"

	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// forceParallel drops the size thresholds so the parallel build and
// gains paths run even on the tiny inputs the tests use, restoring the
// originals on cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	buildMin, gainsMin := parallelBuildMinDelta, parallelGainsMinNodes
	parallelBuildMinDelta, parallelGainsMinNodes = 0, 0
	t.Cleanup(func() {
		parallelBuildMinDelta, parallelGainsMinNodes = buildMin, gainsMin
	})
}

// randomSets draws count RR-set-shaped slices over n nodes with sizes
// in [1, maxLen]; ids may repeat across sets but are unique within one
// (matching real RR sets, though the index does not require it).
func randomSets(r *rng.Source, n, count, maxLen int) [][]int32 {
	out := make([][]int32, count)
	seen := make([]bool, n)
	for i := range out {
		l := 1 + r.Intn(maxLen)
		set := make([]int32, 0, l)
		for len(set) < l {
			v := int32(r.Intn(n))
			if !seen[v] {
				seen[v] = true
				set = append(set, v)
			}
		}
		for _, v := range set {
			seen[v] = false
		}
		out[i] = set
	}
	return out
}

// TestParallelBuildMatchesSerial drives two indexes through the same
// batched append/query schedule — one serial, one with the parallel
// build forced on — and demands byte-identical CSR state after every
// delta rebuild, for several worker counts.
func TestParallelBuildMatchesSerial(t *testing.T) {
	forceParallel(t)
	const n = 97
	for _, workers := range []int{2, 3, 8} {
		r := rng.New(42)
		serial := NewIndex(n, nil)
		par := NewIndex(n, nil)
		par.SetWorkers(workers)
		if par.Workers() != workers {
			t.Fatalf("Workers() = %d", par.Workers())
		}
		// Batches of varying size, including empty deltas and a batch
		// bigger than the node count.
		for _, batch := range []int{1, 7, 0, 64, 3, 200, 1} {
			for _, set := range randomSets(r, n, batch, 9) {
				serial.Add(set)
				par.Add(set)
			}
			serial.ensureIndexed()
			par.ensureIndexed()
			if len(serial.heads) != len(par.heads) {
				t.Fatalf("workers=%d: heads length %d vs %d", workers, len(serial.heads), len(par.heads))
			}
			for v := range serial.heads {
				if serial.heads[v] != par.heads[v] {
					t.Fatalf("workers=%d: heads[%d] = %d vs %d", workers, v, par.heads[v], serial.heads[v])
				}
			}
			for i := range serial.postings {
				if serial.postings[i] != par.postings[i] {
					t.Fatalf("workers=%d: postings[%d] = %d vs %d", workers, i, par.postings[i], serial.postings[i])
				}
			}
		}
	}
}

// TestParallelGainsMatchSerial compares full SelectSeeds outcomes —
// seeds, coverages, upper bound — between a serial index and one with
// the parallel initial-gain pass forced, with and without exclusions.
func TestParallelGainsMatchSerial(t *testing.T) {
	forceParallel(t)
	const n = 61
	r := rng.New(7)
	sets := randomSets(r, n, 300, 6)
	exclude := make([]bool, n)
	for v := 0; v < n; v += 5 {
		exclude[v] = true
	}
	outDeg := make([]int32, n)
	for v := range outDeg {
		outDeg[v] = int32(r.Intn(50))
	}
	for _, workers := range []int{2, 8} {
		serial := indexFromSets(n, outDeg, sets)
		par := indexFromSets(n, outDeg, sets)
		par.SetWorkers(workers)
		for _, opt := range []GreedyOptions{
			{K: 1},
			{K: 8},
			{K: n},
			{K: 5, Revised: true},
			{K: 6, Exclude: exclude, Base: 11, TopL: 9},
		} {
			a := serial.SelectSeeds(opt)
			b := par.SelectSeeds(opt)
			if len(a.Seeds) != len(b.Seeds) {
				t.Fatalf("workers=%d opt=%+v: %d vs %d seeds", workers, opt, len(b.Seeds), len(a.Seeds))
			}
			for i := range a.Seeds {
				if a.Seeds[i] != b.Seeds[i] || a.Coverage[i] != b.Coverage[i] {
					t.Fatalf("workers=%d opt=%+v: pick %d = (%d,%d) vs (%d,%d)",
						workers, opt, i, b.Seeds[i], b.Coverage[i], a.Seeds[i], a.Coverage[i])
				}
			}
			if a.CoverageUpper != b.CoverageUpper {
				t.Fatalf("workers=%d opt=%+v: upper %d vs %d", workers, opt, b.CoverageUpper, a.CoverageUpper)
			}
		}
	}
}

// TestParallelBuildIncrementalDeltas forces the parallel path on a
// growing index where most rebuilds are small deltas over a large
// existing CSR — the regime where the block-copy of old postings
// dominates — and cross-checks degrees against recounting from scratch.
func TestParallelBuildIncrementalDeltas(t *testing.T) {
	forceParallel(t)
	const n = 40
	r := rng.New(99)
	par := NewIndex(n, nil)
	par.SetWorkers(4)
	var all [][]int32
	for round := 0; round < 30; round++ {
		batch := randomSets(r, n, 1+r.Intn(5), 5)
		for _, set := range batch {
			par.Add(set)
			all = append(all, set)
		}
		deg := make(map[int32]int)
		for _, set := range all {
			for _, v := range set {
				deg[v]++
			}
		}
		for v := int32(0); v < n; v++ {
			if got := par.Degree(v); got != deg[v] {
				t.Fatalf("round %d: Degree(%d) = %d, want %d", round, v, got, deg[v])
			}
		}
	}
}

// TestRunWraparound exercises the uint32 stamp wraparound: when the run
// counter overflows, newRun must clear all covered stamps so stale
// stamps from 4 billion runs ago can never alias a live run id, and
// CoverageOf must keep returning exact counts across the boundary.
func TestRunWraparound(t *testing.T) {
	sets := [][]int32{{0, 1}, {1, 2}, {3}, {0, 3}, {4}}
	x := indexFromSets(5, nil, sets)
	seeds := []int32{0, 4}
	want := bruteCoverage(sets, seeds)
	if got := x.CoverageOf(seeds); got != want {
		t.Fatalf("pre-wrap CoverageOf = %d, want %d", got, want)
	}

	// Park the counter one run before overflow. The covered stamps still
	// hold the (now enormous) run id from the call above.
	x.run = math.MaxUint32
	x.newRun()
	if x.run != 1 {
		t.Fatalf("run after wraparound = %d, want 1", x.run)
	}
	for i, c := range x.covered {
		if c != 0 {
			t.Fatalf("covered[%d] = %d after wraparound, want 0", i, c)
		}
	}

	// Every query after the wrap must still be exact — in particular the
	// first run id reused after wrapping (1) must not see phantom
	// coverage from stamps written before the reset.
	if got := x.CoverageOf(seeds); got != want {
		t.Fatalf("post-wrap CoverageOf = %d, want %d", got, want)
	}
	if got := x.CoverageOf([]int32{1}); got != 2 {
		t.Fatalf("post-wrap CoverageOf({1}) = %d, want 2", got)
	}
	// Greedy picks node 0 (covers sets 0 and 3), then node 1 (set 1).
	res := x.SelectSeeds(GreedyOptions{K: 2})
	if res.TotalCoverage(0) != 3 {
		t.Fatalf("post-wrap selection coverage = %d", res.TotalCoverage(0))
	}

	// Cross the boundary again mid-sequence: interleave queries around
	// the exact overflow point and compare against brute force.
	x.run = math.MaxUint32 - 2
	for i := 0; i < 6; i++ {
		if got := x.CoverageOf(seeds); got != want {
			t.Fatalf("wrap sequence step %d: CoverageOf = %d, want %d", i, got, want)
		}
	}
}

// TestSelectSeedsScratchReuse verifies that the per-run selection
// scratch really is recycled: repeated selections on a warm index must
// not allocate beyond the returned Seeds/Coverage slices.
func TestSelectSeedsScratchReuse(t *testing.T) {
	const n = 200
	r := rng.New(3)
	x := indexFromSets(n, nil, randomSets(r, n, 2000, 8))
	x.SelectSeeds(GreedyOptions{K: 10}) // warm: builds index + scratch
	allocs := testing.AllocsPerRun(20, func() {
		x.SelectSeeds(GreedyOptions{K: 10})
	})
	// Seeds + Coverage are the only per-call allocations.
	if allocs > 3 {
		t.Fatalf("SelectSeeds allocates %.1f objects/run on a warm index", allocs)
	}
}

// TestRebuildScratchReuse verifies the double-buffered CSR rebuild:
// after the first build at steady-state capacity, appending and
// re-indexing a same-sized delta must not allocate (the old heads and
// postings become the next build's scratch).
func TestRebuildScratchReuse(t *testing.T) {
	const n = 100
	r := rng.New(5)
	x := NewIndex(n, nil)
	// Warm to steady state: several rebuilds so heads/postings/covered
	// and their scratch twins all reach final capacity.
	warm := randomSets(r, n, 4000, 6)
	for i, set := range warm {
		x.Add(set)
		if i%500 == 0 {
			x.Degree(0)
		}
	}
	x.Degree(0)
	sets := randomSets(r, n, 40, 6)
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		x.Add(sets[i%len(sets)])
		i++
		x.Degree(0) // forces the delta rebuild
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state delta rebuild allocates %.1f objects/run", allocs)
	}
}

// TestStoreGrowFill exercises the range-reservation splice API directly:
// two disjoint Grow ranges filled out of order must read back exactly
// like sequential Appends.
func TestStoreGrowFill(t *testing.T) {
	var s rrset.Store
	s.Append([]int32{7, 8})

	data, ends, base := s.Grow(2, 3)
	if base != 2 {
		t.Fatalf("nodeBase = %d, want 2", base)
	}
	// Fill the second set first: order of filling must not matter.
	copy(data[1:], []int32{5, 6})
	ends[1] = base + 3
	data[0] = 4
	ends[0] = base + 1

	if s.NumSets() != 3 || s.NumNodes() != 5 {
		t.Fatalf("store shape %d sets / %d nodes", s.NumSets(), s.NumNodes())
	}
	wantSets := [][]int32{{7, 8}, {4}, {5, 6}}
	for i, want := range wantSets {
		got := s.Set(i)
		if len(got) != len(want) {
			t.Fatalf("set %d = %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("set %d = %v, want %v", i, got, want)
			}
		}
	}
}
