package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// TestSpliceSentinelWorkerEquality pins the parallel-splice contract
// under sentinel filtering, the branch where per-worker kept counts
// really differ: for every worker count the spliced store must hold the
// same kept sets in the same global order, report the same hit count,
// and select the same seeds.
func TestSpliceSentinelWorkerEquality(t *testing.T) {
	g, err := graph.GenErdosRenyi(500, 4000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	sentinel := make([]bool, g.N())
	for v := 0; v < g.N(); v += 3 {
		sentinel[v] = true
	}
	const count = 1200

	ref := NewBatcher(rrset.NewSubsim(g), 13, 1)
	refIdx := coverage.NewIndex(g.N(), nil)
	refHits := ref.FillIndex(refIdx, count, sentinel)
	refSel := refIdx.SelectSeeds(coverage.GreedyOptions{K: 5, Exclude: sentinel})

	for _, workers := range []int{2, 8} {
		b := NewBatcher(rrset.NewSubsim(g), 13, workers)
		idx := coverage.NewIndex(g.N(), nil)
		// Two rounds so the second splice appends behind existing store
		// content (nodeBase != 0 on every worker range).
		hits := b.FillIndex(idx, count/2, sentinel)
		hits += b.FillIndex(idx, count-count/2, sentinel)
		if hits != refHits {
			t.Fatalf("workers=%d: %d sentinel hits, want %d", workers, hits, refHits)
		}
		if idx.NumSets() != refIdx.NumSets() {
			t.Fatalf("workers=%d: %d kept sets, want %d", workers, idx.NumSets(), refIdx.NumSets())
		}
		for i := 0; i < refIdx.NumSets(); i++ {
			a, bset := refIdx.Set(i), idx.Set(i)
			if len(a) != len(bset) {
				t.Fatalf("workers=%d: set %d has %d nodes, want %d", workers, i, len(bset), len(a))
			}
			for j := range a {
				if a[j] != bset[j] {
					t.Fatalf("workers=%d: set %d diverges at %d: %d vs %d", workers, i, j, bset[j], a[j])
				}
			}
		}
		sel := idx.SelectSeeds(coverage.GreedyOptions{K: 5, Exclude: sentinel})
		for i := range refSel.Seeds {
			if sel.Seeds[i] != refSel.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, sel.Seeds[i], refSel.Seeds[i])
			}
		}
		if sel.CoverageUpper != refSel.CoverageUpper {
			t.Fatalf("workers=%d: upper %d, want %d", workers, sel.CoverageUpper, refSel.CoverageUpper)
		}
	}
}

// TestReserveColdStart pins the cold-start fix: the very first reserve,
// before any set has been generated, must size the arena's node buffer
// from the graph's average degree instead of reserving zero nodes.
func TestReserveColdStart(t *testing.T) {
	g := allocGraph(t) // 2000 nodes, 16000 edges → avg degree 8
	b := NewBatcher(rrset.NewSubsim(g), 1, 1)
	if b.coldNodes < 2 || b.coldNodes > 64 {
		t.Fatalf("coldNodes = %d outside [2,64]", b.coldNodes)
	}
	if want := int(g.AvgDegree()) + 1; b.coldNodes != want {
		t.Fatalf("coldNodes = %d, want avg degree estimate %d", b.coldNodes, want)
	}
	a := rrset.NewArena(0, 0)
	b.reserve(a, 0, 100)
	if got := cap(a.Data()); got < 100*b.coldNodes {
		t.Fatalf("cold reserve capacity %d nodes, want >= %d", got, 100*b.coldNodes)
	}
	// Warm reserve switches to the observed average and must dominate
	// the batch size.
	b.FillIndex(coverage.NewIndex(g.N(), nil), 50, nil)
	a2 := rrset.NewArena(0, 0)
	b.reserve(a2, 0, 100)
	if got := cap(a2.Data()); got < 100 {
		t.Fatalf("warm reserve capacity %d nodes", got)
	}
}

// TestFillIndexSelectRoundsAllocs extends the amortised-allocation bound
// to the full doubling-round shape — repeated FillIndex→SelectSeeds
// cycles on the same index — which exercises the splice, the delta CSR
// rebuild, AND the selection scratch reuse together. Steady-state cost
// per round must stay at the few unavoidable allocations (Seeds/Coverage
// slices plus amortised geometric growth).
func TestFillIndexSelectRoundsAllocs(t *testing.T) {
	g := allocGraph(t)
	b := NewBatcher(rrset.NewSubsim(g), 42, 1)
	idx := coverage.NewIndex(g.N(), nil)
	// Warm: enough rounds that the store, the CSR double buffers, the
	// covered stamps and the selection scratch all hit steady capacity.
	for i := 0; i < 4; i++ {
		b.FillIndex(idx, 300, nil)
		idx.SelectSeeds(coverage.GreedyOptions{K: 10})
	}
	allocs := testing.AllocsPerRun(15, func() {
		b.FillIndex(idx, 200, nil)
		idx.SelectSeeds(coverage.GreedyOptions{K: 10})
	})
	// 200 sets/round: Seeds+Coverage (2) plus rare geometric growth.
	const maxAllocs = 25
	if allocs > maxAllocs {
		t.Errorf("FillIndex(200)+SelectSeeds allocated %.1f objects/round, want <= %d", allocs, maxAllocs)
	}
}

// TestSpliceRaceParallel drives the multi-worker FillIndex splice
// (counting pass, Grow, copy pass) repeatedly with 8 workers so the
// race detector sees the goroutine handoff, including the sentinel
// branch.
func TestSpliceRaceParallel(t *testing.T) {
	g := allocGraph(t)
	sentinel := make([]bool, g.N())
	for v := 0; v < g.N(); v += 7 {
		sentinel[v] = true
	}
	b := NewBatcher(rrset.NewSubsim(g), 3, 8)
	idx := coverage.NewIndex(g.N(), nil)
	idx.SetWorkers(8)
	var total int64
	for round := 0; round < 4; round++ {
		total += b.FillIndex(idx, 800, sentinel)
		idx.SelectSeeds(coverage.GreedyOptions{K: 4, Exclude: sentinel})
	}
	if total+int64(idx.NumSets()) != 3200 {
		t.Fatalf("hits %d + kept %d != 3200", total, idx.NumSets())
	}
}
