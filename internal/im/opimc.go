package im

import (
	"time"

	"subsim/internal/bounds"
	"subsim/internal/coverage"
	"subsim/internal/obs"
	"subsim/internal/rrset"
)

// OPIMC is the online-processing IM algorithm of Tang et al. (2018),
// the strongest baseline in the paper and the chassis SUBSIM plugs into.
//
// It maintains two independent RR collections of equal size: R₁ selects a
// greedy seed set and yields the upper bound I⁺(S_k°) via Equation (2)
// with the maxMC coverage bound, R₂ yields the lower bound I⁻(S_k*) via
// Equation (1). The run stops as soon as I⁻/I⁺ exceeds 1-1/e-ε; otherwise
// both collections double, up to the budget θ_max that guarantees success
// in the final iteration.
func OPIMC(gen rrset.Generator, opt Options) (*Result, error) {
	start := time.Now() //lint:allow timing (wall-clock Elapsed reporting only)
	g := gen.Graph()
	n := g.N()
	if err := opt.Normalize(n); err != nil {
		return nil, err
	}

	thetaWorst := bounds.ThetaMaxOPIMC(n, opt.K, opt.Eps, opt.Delta)
	thetaTight := bounds.ThetaMaxTight(n, opt.K, opt.Eps, opt.Delta)
	thetaMax := thetaWorst
	if opt.Bound == BoundTight && thetaTight < thetaMax {
		thetaMax = thetaTight
	}
	theta0 := bounds.Theta0(opt.Delta)
	iMax := doublingRounds(theta0, thetaMax)
	deltaIter := opt.Delta / (3 * float64(iMax))
	target := bounds.GreedyFactor(opt.Eps)

	tr := opt.Tracer
	run := tr.Span("opimc")
	opt.Logger.RunStart("opimc", n, g.M(), opt.K, opt.Eps, opt.Seed, opt.Workers)
	b := NewInstrumentedBatcher(gen, opt.Seed, opt.Workers, tr.Metrics())
	var outDeg []int32
	if opt.Revised {
		outDeg = outDegrees(gen)
	}
	idx1 := NewEstimator(n, outDeg, opt, tr.Metrics())
	idx2 := NewEstimator(n, outDeg, opt, tr.Metrics())

	res := &Result{ThetaWorstCase: thetaWorst, ThetaTight: thetaTight}
	tr.Metrics().SetTheta(thetaWorst, thetaTight)
	theta := theta0
	sp := run.Child("sampling")
	b.Fill(idx1, int(theta), nil)
	b.Fill(idx2, int(theta), nil)
	sp.SetInt("theta", theta).End()

	for i := 1; ; i++ {
		res.Rounds = i
		rs := run.Child(obs.Round(i))
		ss := rs.Child("selection")
		sel := idx1.SelectSeeds(coverage.GreedyOptions{K: opt.K, Revised: opt.Revised})
		ss.End()
		res.Seeds = sel.Seeds
		bc := rs.Child("bound-check")
		res.UpperBound = bounds.UpperBound(sel.CoverageUpper, int64(idx1.NumSets()), n, deltaIter)
		cov2 := idx2.CoverageOf(sel.Seeds)
		res.LowerBound = bounds.LowerBound(cov2, int64(idx2.NumSets()), n, deltaIter)
		res.Influence = float64(cov2) * float64(n) / float64(idx2.NumSets())
		if res.UpperBound > 0 {
			res.Approx = res.LowerBound / res.UpperBound
		}
		bc.End()
		tr.Metrics().SetBounds(i, res.LowerBound, res.UpperBound, res.Approx)
		opt.Logger.RoundDone("opimc", i, int64(idx1.NumSets()), res.LowerBound, res.UpperBound, res.Approx)
		rs.SetInt("theta", int64(idx1.NumSets())).SetFloat("approx", res.Approx)
		if opt.Bound == BoundTight && res.LowerBound > float64(opt.K) {
			// The certified influence lower bound is an OPT lower bound,
			// so the adaptive tightened budget may shrink θ_max further.
			if t := bounds.ThetaTightOPT(n, opt.K, opt.Eps, opt.Delta, res.LowerBound); t < thetaMax {
				thetaMax = t
			}
		}
		stop := res.Approx > target || i >= iMax
		if opt.Bound == BoundTight && int64(idx1.NumSets()) >= thetaMax {
			stop = true
		}
		if stop {
			if res.Approx > target {
				opt.Logger.BoundCrossed("opimc", i, res.Approx, target)
			}
			rs.End()
			break
		}
		sp := rs.Child("sampling")
		b.Fill(idx1, int(theta), nil)
		b.Fill(idx2, int(theta), nil)
		sp.SetInt("theta", theta).End()
		rs.End()
		theta *= 2
	}
	if opt.Bound == BoundTight && thetaMax < thetaWorst {
		tr.Metrics().AddThetaSaved(thetaWorst - thetaMax)
	}
	res.RRStats = b.Stats()
	run.SetInt("rounds", int64(res.Rounds)).End()
	res.Elapsed = time.Since(start) //lint:allow timing (wall-clock Elapsed reporting only)
	opt.Logger.RunDone("opimc", res.Rounds, res.RRStats.Sets, res.Influence, res.Elapsed.Nanoseconds())
	res.Report = tr.Report()
	return res, nil
}
