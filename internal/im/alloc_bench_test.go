package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// benchGraph builds the ER benchmark graph used by the allocation and
// throughput benchmarks of the generate→index hot path.
func benchGraph(b *testing.B, n int, m int64) *graph.Graph {
	b.Helper()
	g, err := graph.GenErdosRenyi(n, m, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	g.AssignWC()
	return g
}

// benchBAGraph builds the preferential-attachment (BA) benchmark graph.
func benchBAGraph(b *testing.B, n, deg int) *graph.Graph {
	b.Helper()
	g, err := graph.GenPreferentialAttachment(n, deg, false, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	g.AssignWC()
	return g
}

// benchFillIndex measures the full generate→index path: sampling setsPer
// RR sets through a Batcher and absorbing them into a coverage.Index,
// then forcing the inverted index build with a degree probe. This is the
// hot loop of every doubling round in IMM/OPIM-C/SSA/TIM+/HIST.
func benchFillIndex(b *testing.B, gen rrset.Generator, workers, setsPer int) {
	b.Helper()
	n := gen.Graph().N()
	batch := NewBatcher(gen, 42, workers)
	// Warm the worker scratch so steady-state costs are measured.
	idx := coverage.NewIndex(n, nil)
	idx.SetWorkers(workers)
	batch.FillIndex(idx, setsPer, nil)
	idx.Degree(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := coverage.NewIndex(n, nil)
		idx.SetWorkers(workers)
		batch.FillIndex(idx, setsPer, nil)
		idx.Degree(0) // force the inverted index build
	}
	b.ReportMetric(float64(setsPer), "sets/op")
}

func BenchmarkFillIndex_Vanilla_W1(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	benchFillIndex(b, rrset.NewVanilla(g), 1, 2000)
}

func BenchmarkFillIndex_Subsim_W1(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	benchFillIndex(b, rrset.NewSubsim(g), 1, 2000)
}

func BenchmarkFillIndex_Subsim_W4(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	benchFillIndex(b, rrset.NewSubsim(g), 4, 2000)
}

func BenchmarkFillIndex_Subsim_W8(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	benchFillIndex(b, rrset.NewSubsim(g), 8, 2000)
}

func BenchmarkFillIndex_BA_Subsim_W1(b *testing.B) {
	g := benchBAGraph(b, 5000, 8)
	benchFillIndex(b, rrset.NewSubsim(g), 1, 2000)
}

func BenchmarkFillIndex_BA_Subsim_W8(b *testing.B) {
	g := benchBAGraph(b, 5000, 8)
	benchFillIndex(b, rrset.NewSubsim(g), 8, 2000)
}

// BenchmarkGenerateSingle measures a single-set Generate through the
// caller-owned compatibility path (the ISSUE acceptance gate: no ns/op
// regression for single-set Generate).
func BenchmarkGenerateSingle_Subsim(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	gen := rrset.NewSubsim(g)
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rrset.GenerateRandom(gen, r, nil)
	}
}

// BenchmarkSelectSeeds measures greedy CELF selection over a realistic
// RR collection read through the coverage index.
func BenchmarkSelectSeeds_Subsim(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	batch := NewBatcher(rrset.NewSubsim(g), 42, 1)
	idx := coverage.NewIndex(g.N(), nil)
	batch.FillIndex(idx, 20000, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.SelectSeeds(coverage.GreedyOptions{K: 50})
	}
}

// BenchmarkOPIMC_E2E measures an end-to-end OPIM-C run with SUBSIM
// generation on the ER benchmark graph.
func BenchmarkOPIMC_E2E_Subsim(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := rrset.NewSubsim(g)
		if _, err := OPIMC(gen, Options{K: 20, Eps: 0.3, Seed: 9, Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
