package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// allocGraph is a mid-size WC graph shared by the allocation-regression
// tests; big enough that RR sets have non-trivial size, small enough to
// keep the tests fast.
func allocGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenErdosRenyi(2000, 16000, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	return g
}

// TestVisitSteadyStateAllocFree pins the tentpole invariant: once the
// per-worker arena and generator scratch have grown to steady-state
// capacity, generating RR sets through the batcher performs ZERO heap
// allocations per set. AllocsPerRun forces GOMAXPROCS=1, so this covers
// the single-worker fill path.
func TestVisitSteadyStateAllocFree(t *testing.T) {
	g := allocGraph(t)
	for _, mk := range []struct {
		name string
		gen  rrset.Generator
	}{
		{"vanilla", rrset.NewVanilla(g)},
		{"subsim", rrset.NewSubsim(g)},
		{"bucketed", rrset.NewSubsimBucketed(g, true)},
	} {
		t.Run(mk.name, func(t *testing.T) {
			b := NewBatcher(mk.gen, 42, 1)
			var sink int
			visit := func(set []int32) bool { sink += len(set); return true }
			// Warm up: grow arena + scratch to steady state.
			for i := 0; i < 3; i++ {
				b.Visit(200, nil, visit)
			}
			allocs := testing.AllocsPerRun(20, func() {
				b.Visit(200, nil, visit)
			})
			if allocs > 0 {
				t.Errorf("Visit(200) allocated %.1f objects/run in steady state, want 0", allocs)
			}
			if sink == 0 {
				t.Fatal("no nodes visited")
			}
		})
	}
}

// TestFillIndexAmortizedAllocs bounds the amortised allocation cost of
// the full generate→store→index pipeline: appending 200 sets into a
// growing index plus one delta rebuild must average well under one
// allocation per RR set. (The only allocations left are the geometric
// store growth and the per-rebuild heads array, both amortised across
// hundreds of sets.)
func TestFillIndexAmortizedAllocs(t *testing.T) {
	g := allocGraph(t)
	b := NewBatcher(rrset.NewSubsim(g), 42, 1)
	idx := coverage.NewIndex(g.N(), nil)
	// Warm up both the batcher arena and the index store.
	b.FillIndex(idx, 600, nil)
	idx.Degree(0)
	allocs := testing.AllocsPerRun(20, func() {
		b.FillIndex(idx, 200, nil)
		idx.Degree(0) // force the delta CSR rebuild
	})
	const maxAllocs = 25 // 200 sets/run → ≤0.125 allocs/set
	if allocs > maxAllocs {
		t.Errorf("FillIndex(200)+rebuild allocated %.1f objects/run, want <= %d", allocs, maxAllocs)
	}
}

// TestGenerateIntoAllocFree checks the generator-level contract directly:
// GenerateInto appends into a caller arena without allocating once the
// arena and traversal scratch have reached capacity.
func TestGenerateIntoAllocFree(t *testing.T) {
	g := allocGraph(t)
	gen := rrset.NewSubsim(g)
	a := rrset.NewArena(0, 0)
	r := rng.New(9)
	for i := 0; i < 3; i++ {
		a.Reset()
		for j := 0; j < 200; j++ {
			rrset.GenerateRandomInto(gen, a, r, nil)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		a.Reset()
		for j := 0; j < 200; j++ {
			rrset.GenerateRandomInto(gen, a, r, nil)
		}
	})
	if allocs > 0 {
		t.Errorf("GenerateInto allocated %.1f objects per 200 sets in steady state, want 0", allocs)
	}
}

// TestConcurrentArenaSplicing exercises the parallel fill path (one
// arena per worker, spliced in global-index order) with enough sets to
// guarantee the multi-worker branch, repeatedly, so `go test -race`
// covers the worker-arena handoff. It also re-checks that the splice
// visits every generated set exactly once.
func TestConcurrentArenaSplicing(t *testing.T) {
	g := allocGraph(t)
	b := NewBatcher(rrset.NewSubsim(g), 7, 8)
	for round := 0; round < 4; round++ {
		seen := 0
		nodes := 0
		b.Visit(1000, nil, func(set []int32) bool {
			seen++
			nodes += len(set)
			return true
		})
		if seen != 1000 {
			t.Fatalf("round %d: visited %d sets, want 1000", round, seen)
		}
		if nodes == 0 {
			t.Fatalf("round %d: no nodes generated", round)
		}
	}
	s := b.Stats()
	if s.Sets != 4000 {
		t.Fatalf("merged stats count %d sets, want 4000", s.Sets)
	}
}
