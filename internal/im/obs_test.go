package im

import (
	"reflect"
	"testing"

	"subsim/internal/obs"
	"subsim/internal/rrset"
)

// TestBatcherWorkerCountInvariance is the determinism regression test:
// with a fixed seed the Batcher must produce identical RR sets — and
// therefore identical merged generator stats — no matter how many
// workers partition the work, because every set draws from an RNG
// stream derived from its global index alone.
func TestBatcherWorkerCountInvariance(t *testing.T) {
	g := testGraph(t, 400)
	const seed, count = 77, 600
	var refSets []rrset.RRSet
	var refStats rrset.Stats
	for _, workers := range []int{1, 2, 3, 8} {
		b := NewBatcher(rrset.NewSubsim(g), seed, workers)
		sets := b.Generate(count, nil)
		if len(sets) != count {
			t.Fatalf("workers=%d: generated %d sets, want %d", workers, len(sets), count)
		}
		st := b.Stats()
		if st.Sets != count {
			t.Fatalf("workers=%d: stats counted %d sets, want %d", workers, st.Sets, count)
		}
		if workers == 1 {
			refSets, refStats = sets, st
			continue
		}
		if st != refStats {
			t.Errorf("workers=%d: merged stats %+v differ from workers=1 %+v", workers, st, refStats)
		}
		for i := range sets {
			if !reflect.DeepEqual(sets[i], refSets[i]) {
				t.Fatalf("workers=%d: set %d = %v, workers=1 produced %v", workers, i, sets[i], refSets[i])
			}
		}
	}
}

// TestBatcherStatsBaselineDelta: two batchers sharing one generator
// instance (as HIST's two phases do) must each report only their own
// generation cost.
func TestBatcherStatsBaselineDelta(t *testing.T) {
	g := testGraph(t, 200)
	gen := rrset.NewVanilla(g)
	b1 := NewBatcher(gen, 1, 2)
	b1.Generate(100, nil)
	s1 := b1.Stats()
	if s1.Sets != 100 {
		t.Fatalf("phase 1 stats %+v", s1)
	}
	b2 := NewBatcher(gen, 2, 2)
	b2.Generate(40, nil)
	if s2 := b2.Stats(); s2.Sets != 40 {
		t.Errorf("phase 2 stats counted %d sets, want 40 (no leakage from phase 1)", s2.Sets)
	}
	// b1 still owns worker 0 = gen, so later draws through gen can only
	// grow its view; it must never shrink or double-count retroactively.
	if s1b := b1.Stats(); s1b.Sets < 100 {
		t.Errorf("phase 1 stats shrank after phase 2: %+v", s1b)
	}
}

// TestAlgorithmsEmitReports: with a tracer attached, every algorithm
// returns a schema-versioned report whose span tree contains the
// documented phase names, and the RR metric totals match Result.RRStats.
func TestAlgorithmsEmitReports(t *testing.T) {
	g := testGraph(t, 300)
	cases := []struct {
		name  string
		alg   algFunc
		spans []string
	}{
		{"OPIM-C", OPIMC, []string{"opimc", "sampling", "selection", "bound-check"}},
		{"IMM", IMM, []string{"imm", "opt-estimation", "node-selection", "sampling", "selection"}},
		{"SSA", SSA, []string{"ssa", "sampling", "selection"}},
		{"TIM+", TIMPlus, []string{"timplus", "kpt-estimation", "refinement", "node-selection"}},
	}
	for _, c := range cases {
		tr := obs.NewTracer()
		opt := Options{K: 10, Eps: 0.3, Seed: 5, Workers: 2, Tracer: tr}
		res, err := c.alg(rrset.NewVanilla(g), opt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Report == nil {
			t.Fatalf("%s: Result.Report nil with tracer attached", c.name)
		}
		if res.Report.Schema != obs.Schema || res.Report.Version != obs.SchemaVersion {
			t.Errorf("%s: report schema %q v%d", c.name, res.Report.Schema, res.Report.Version)
		}
		for _, name := range c.spans {
			if res.Report.Span(name) == nil {
				t.Errorf("%s: span %q missing from report", c.name, name)
			}
		}
		if got := res.Report.Counters["rr_sets_total"]; got != res.RRStats.Sets {
			t.Errorf("%s: metric rr_sets_total=%d, RRStats.Sets=%d", c.name, got, res.RRStats.Sets)
		}
		if got := res.Report.Counters["rr_edges_examined_total"]; got != res.RRStats.EdgesExamined {
			t.Errorf("%s: metric edges=%d, RRStats.EdgesExamined=%d", c.name, got, res.RRStats.EdgesExamined)
		}
		if h := res.Report.Histograms["rr_size"]; h.Count != res.RRStats.Sets || h.Sum != res.RRStats.Nodes {
			t.Errorf("%s: rr_size histogram count=%d sum=%d vs stats %d/%d",
				c.name, h.Count, h.Sum, res.RRStats.Sets, res.RRStats.Nodes)
		}
	}
}

// TestTracerDoesNotChangeResults: attaching a tracer must not perturb
// the algorithm (same seeds in, same seeds out).
func TestTracerDoesNotChangeResults(t *testing.T) {
	g := testGraph(t, 300)
	base := Options{K: 8, Eps: 0.3, Seed: 11, Workers: 2}
	plain, err := OPIMC(rrset.NewVanilla(g), base)
	if err != nil {
		t.Fatal(err)
	}
	traced := base
	traced.Tracer = obs.NewTracer()
	obsRes, err := OPIMC(rrset.NewVanilla(g), traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Seeds, obsRes.Seeds) {
		t.Errorf("tracer changed the seed set: %v vs %v", plain.Seeds, obsRes.Seeds)
	}
	if plain.RRStats != obsRes.RRStats {
		t.Errorf("tracer changed the RR accounting: %+v vs %+v", plain.RRStats, obsRes.RRStats)
	}
}

// TestAlgorithmWorkerCountInvariance lifts the batcher guarantee to the
// full algorithms: identical results for workers=1 and workers=8.
func TestAlgorithmWorkerCountInvariance(t *testing.T) {
	g := testGraph(t, 300)
	for name, alg := range algorithms {
		opt1 := Options{K: 8, Eps: 0.3, Seed: 21, Workers: 1}
		opt8 := Options{K: 8, Eps: 0.3, Seed: 21, Workers: 8}
		r1, err := alg(rrset.NewVanilla(g), opt1)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := alg(rrset.NewVanilla(g), opt8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Seeds, r8.Seeds) {
			t.Errorf("%s: seeds differ across worker counts: %v vs %v", name, r1.Seeds, r8.Seeds)
		}
		if r1.RRStats != r8.RRStats {
			t.Errorf("%s: stats differ across worker counts: %+v vs %+v", name, r1.RRStats, r8.RRStats)
		}
		if r1.Influence != r8.Influence {
			t.Errorf("%s: influence differs across worker counts: %v vs %v", name, r1.Influence, r8.Influence)
		}
	}
}
