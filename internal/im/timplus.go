package im

import (
	"math"
	"time"

	"subsim/internal/bounds"
	"subsim/internal/coverage"
	"subsim/internal/rrset"
)

// TIMPlus is the TIM⁺ algorithm of Tang et al. (2014), the first
// practical RR-set method and the direct predecessor of IMM. The paper
// discusses it as the O(k(m+n)ε⁻²log n) baseline; it is included for
// completeness and for the historical comparison in the benchmarks.
//
// Phase 1 (KPT estimation): for i = 1, 2, ... it draws c_i = λ_kpt·2^i
// RR sets and computes κ(R) = 1 - (1 - w(R)/m)^k per set, where w(R) is
// the number of edges entering R; E[κ] = KPT/n where KPT lower-bounds
// OPT_k. The loop stops at the first scale where the empirical mean
// clears 1/2^i.
//
// Phase 2 (refinement, the "+" in TIM⁺): a greedy seed set over the
// phase-1 collection gives an intersection-based lower bound KPT′; the
// final KPT* = max(KPT, KPT′) tightens the sample size
// θ = λ/KPT* with λ = (8+2ε)·n·(l·ln n + ln C(n,k) + ln 2)/ε².
func TIMPlus(gen rrset.Generator, opt Options) (*Result, error) {
	start := time.Now() //lint:allow timing (wall-clock Elapsed reporting only)
	g := gen.Graph()
	n := g.N()
	if err := opt.Normalize(n); err != nil {
		return nil, err
	}
	logn := math.Log(float64(n))
	l := math.Max(1, -math.Log(opt.Delta)/logn)

	tr := opt.Tracer
	run := tr.Span("timplus")
	opt.Logger.RunStart("timplus", n, g.M(), opt.K, opt.Eps, opt.Seed, opt.Workers)
	b := NewInstrumentedBatcher(gen, opt.Seed, opt.Workers, tr.Metrics())
	var outDeg []int32
	if opt.Revised {
		outDeg = outDegrees(gen)
	}
	idx := NewEstimator(n, outDeg, opt, tr.Metrics())

	// In-degrees for w(R).
	inDeg := make([]int64, n)
	for v := 0; v < n; v++ {
		inDeg[v] = int64(g.InDegree(int32(v)))
	}
	m := float64(g.M())
	if m == 0 {
		m = 1
	}

	res := &Result{}
	kpt := 1.0
	maxI := int(math.Log2(float64(n))) - 1
	if maxI < 1 {
		maxI = 1
	}
	baseCount := int64(math.Ceil((6*l*logn + 6*math.Ln2)))
	var kappaSum float64
	measured := 0
	kptSpan := run.Child("kpt-estimation")
	for i := 1; i <= maxI; i++ {
		res.Rounds = i
		want := baseCount << uint(i)
		if add := want - int64(idx.NumSets()); add > 0 {
			b.Visit(int(add), nil, func(set []int32) bool {
				var w int64
				for _, v := range set {
					w += inDeg[v]
				}
				frac := float64(w) / m
				if frac > 1 {
					frac = 1
				}
				kappaSum += 1 - math.Pow(1-frac, float64(opt.K))
				idx.Add(set)
				measured++
				return true
			})
		}
		if measured == 0 {
			continue
		}
		avg := kappaSum / float64(measured)
		tr.Metrics().SetBounds(i, kpt, 0, 0)
		opt.Logger.RoundDone("timplus", i, int64(idx.NumSets()), kpt, 0, 0)
		if avg > 1/math.Pow(2, float64(i)) {
			kpt = avg * float64(n) / 2
			opt.Logger.BoundCrossed("timplus", i, avg, 1/math.Pow(2, float64(i)))
			break
		}
	}

	kptSpan.SetFloat("kpt", kpt).SetInt("rounds", int64(res.Rounds)).End()

	// Refinement: the greedy seed set's de-biased coverage over a fresh
	// collection sharpens KPT.
	refine := run.Child("refinement")
	selPrev := idx.SelectSeeds(coverage.GreedyOptions{K: opt.K, Revised: opt.Revised})
	epsPrime := 5 * math.Cbrt(l*opt.Eps*opt.Eps/(l+float64(opt.K)/math.Max(1, logn)))
	if epsPrime > 1 {
		epsPrime = 1
	}
	thetaPrime := int64(math.Ceil((2 + epsPrime) * l * float64(n) * logn / (epsPrime * epsPrime * kpt)))
	if limit := int64(4 * float64(n)); thetaPrime > limit {
		thetaPrime = limit
	}
	fresh := NewEstimator(n, outDeg, opt, tr.Metrics())
	b.Fill(fresh, int(thetaPrime), nil)
	covFresh := fresh.CoverageOf(selPrev.Seeds)
	kptPrime := float64(covFresh) / float64(fresh.NumSets()) * float64(n) / (1 + epsPrime)
	if kptPrime > kpt {
		kpt = kptPrime
	}
	refine.SetFloat("kpt", kpt).End()

	// Final sampling and selection.
	ns := run.Child("node-selection")
	lambda := (8 + 2*opt.Eps) * float64(n) *
		(l*logn + bounds.LogChoose(n, opt.K) + math.Ln2) / (opt.Eps * opt.Eps)
	thetaWorst := int64(math.Ceil(lambda / kpt))
	// KPT* lower-bounds OPT, so it also feeds the tightened one-shot
	// budget; both analyses certify the final greedy set.
	thetaTightC := bounds.ThetaTightOPT(n, opt.K, opt.Eps, opt.Delta, kpt)
	if thetaTightC > thetaWorst {
		thetaTightC = thetaWorst
	}
	res.ThetaWorstCase, res.ThetaTight = thetaWorst, thetaTightC
	tr.Metrics().SetTheta(thetaWorst, thetaTightC)
	theta := thetaWorst
	if opt.Bound == BoundTight && thetaTightC < theta {
		theta = thetaTightC
		tr.Metrics().AddThetaSaved(thetaWorst - thetaTightC)
	}
	if add := theta - int64(idx.NumSets()); add > 0 {
		b.Fill(idx, int(add), nil)
	}
	sel := idx.SelectSeeds(coverage.GreedyOptions{K: opt.K, Revised: opt.Revised})
	ns.SetInt("theta", int64(idx.NumSets())).End()
	res.Seeds = sel.Seeds
	res.Influence = float64(n) * float64(sel.TotalCoverage(0)) / float64(idx.NumSets())
	res.RRStats = b.Stats()
	run.SetInt("rounds", int64(res.Rounds)).End()
	res.Elapsed = time.Since(start) //lint:allow timing (wall-clock Elapsed reporting only)
	opt.Logger.RunDone("timplus", res.Rounds, res.RRStats.Sets, res.Influence, res.Elapsed.Nanoseconds())
	res.Report = tr.Report()
	return res, nil
}
