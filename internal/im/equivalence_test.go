package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// equivCase pairs a generator with a graph whose weights exercise a
// distinct traversal path: vanilla geometric skipping, SUBSIM's uniform
// fast path (WC weights are uniform within each in-neighbourhood),
// SUBSIM's sorted path (skewed exponential weights), the bucketed
// sampler, and the LT generator.
type equivCase struct {
	name string
	gen  func() rrset.Generator
}

func equivCases(t *testing.T) []equivCase {
	t.Helper()
	wc, err := graph.GenErdosRenyi(1200, 9600, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	wc.AssignWC()
	skew, err := graph.GenPreferentialAttachment(1200, 6, false, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	skew.AssignExponential(rng.New(35), 4)
	lt, err := graph.GenPreferentialAttachment(1200, 6, false, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	lt.AssignLT()
	return []equivCase{
		{"vanilla_wc", func() rrset.Generator { return rrset.NewVanilla(wc) }},
		{"subsim_uniform", func() rrset.Generator { return rrset.NewSubsim(wc) }},
		{"subsim_sorted", func() rrset.Generator { return rrset.NewSubsim(skew) }},
		{"bucketed", func() rrset.Generator { return rrset.NewSubsimBucketed(skew, true) }},
		{"lt", func() rrset.Generator { return rrset.NewLT(lt) }},
	}
}

// collect copies `count` RR sets out of a batcher's Visit stream.
func collect(b *Batcher, count int) [][]int32 {
	out := make([][]int32, 0, count)
	b.Visit(count, nil, func(set []int32) bool {
		cp := make([]int32, len(set))
		copy(cp, set)
		out = append(out, cp)
		return true
	})
	return out
}

// TestPipelineEquivalence is the end-to-end property test for the
// arena/CSR refactor: for every generator kind and worker count, the
// flat-store pipeline must yield byte-identical RR sets, identical
// greedy seeds and identical certified coverage bounds to the
// workers=1 compatibility path (Generate → Add), which reproduces the
// pre-arena slice-of-slices behaviour.
func TestPipelineEquivalence(t *testing.T) {
	const (
		count = 1500
		k     = 8
		seed  = 77
	)
	for _, c := range equivCases(t) {
		t.Run(c.name, func(t *testing.T) {
			// Reference: compat path, one worker. Generate returns
			// caller-owned copies, Add copies into the store — the exact
			// shape of the pre-change pipeline.
			refGen := c.gen()
			refB := NewBatcher(refGen, seed, 1)
			refSets := refB.Generate(count, nil)
			refStats := refB.Stats()
			n := refGen.Graph().N()
			refIdx := coverage.NewIndex(n, nil)
			for _, s := range refSets {
				refIdx.Add(s)
			}
			refSel := refIdx.SelectSeeds(coverage.GreedyOptions{K: k})

			for _, workers := range []int{1, 2, 8} {
				b := NewBatcher(c.gen(), seed, workers)
				got := collect(b, count)
				if len(got) != len(refSets) {
					t.Fatalf("workers=%d: %d sets, want %d", workers, len(got), len(refSets))
				}
				for i := range got {
					if len(got[i]) != len(refSets[i]) {
						t.Fatalf("workers=%d: set %d has %d nodes, want %d",
							workers, i, len(got[i]), len(refSets[i]))
					}
					for j := range got[i] {
						if got[i][j] != refSets[i][j] {
							t.Fatalf("workers=%d: set %d diverges at position %d: %d vs %d",
								workers, i, j, got[i][j], refSets[i][j])
						}
					}
				}
				if s := b.Stats(); s != refStats {
					t.Fatalf("workers=%d: stats %+v, want %+v", workers, s, refStats)
				}

				// Flat path: FillIndex splices arenas straight into the
				// CSR store. Selection and bounds must match exactly.
				b2 := NewBatcher(c.gen(), seed, workers)
				idx := coverage.NewIndex(n, nil)
				if hits := b2.FillIndex(idx, count, nil); hits != 0 {
					t.Fatalf("workers=%d: unexpected sentinel hits %d", workers, hits)
				}
				if idx.NumSets() != refIdx.NumSets() {
					t.Fatalf("workers=%d: index has %d sets, want %d",
						workers, idx.NumSets(), refIdx.NumSets())
				}
				sel := idx.SelectSeeds(coverage.GreedyOptions{K: k})
				if len(sel.Seeds) != len(refSel.Seeds) {
					t.Fatalf("workers=%d: %d seeds, want %d", workers, len(sel.Seeds), len(refSel.Seeds))
				}
				for i := range sel.Seeds {
					if sel.Seeds[i] != refSel.Seeds[i] {
						t.Fatalf("workers=%d: seed %d is %d, want %d",
							workers, i, sel.Seeds[i], refSel.Seeds[i])
					}
				}
				if sel.TotalCoverage(0) != refSel.TotalCoverage(0) {
					t.Fatalf("workers=%d: coverage %d, want %d",
						workers, sel.TotalCoverage(0), refSel.TotalCoverage(0))
				}
				if sel.CoverageUpper != refSel.CoverageUpper {
					t.Fatalf("workers=%d: Λᵘ %d, want %d",
						workers, sel.CoverageUpper, refSel.CoverageUpper)
				}
			}
		})
	}
}

// TestCertifiedBoundsWorkerIndependent runs the full OPIM-C doubling
// loop (selection + Eq. 1/2 bound certification) across worker counts
// and requires bit-identical results: seeds, influence estimate and
// both certified bounds.
func TestCertifiedBoundsWorkerIndependent(t *testing.T) {
	g, err := graph.GenPreferentialAttachment(1000, 5, false, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	opt := Options{K: 10, Eps: 0.3, Seed: 13, Workers: 1}
	ref, err := OPIMC(rrset.NewSubsim(g), opt)
	if err != nil {
		t.Fatal(err)
	}
	if ref.LowerBound <= 0 || ref.UpperBound <= 0 {
		t.Fatalf("reference run certified no bounds: %+v", ref)
	}
	for _, workers := range []int{2, 8} {
		opt := opt
		opt.Workers = workers
		res, err := OPIMC(rrset.NewSubsim(g), opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Seeds) != len(ref.Seeds) {
			t.Fatalf("workers=%d: %d seeds, want %d", workers, len(res.Seeds), len(ref.Seeds))
		}
		for i := range res.Seeds {
			if res.Seeds[i] != ref.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, res.Seeds[i], ref.Seeds[i])
			}
		}
		if res.Influence != ref.Influence {
			t.Fatalf("workers=%d: influence %v, want %v", workers, res.Influence, ref.Influence)
		}
		if res.LowerBound != ref.LowerBound || res.UpperBound != ref.UpperBound {
			t.Fatalf("workers=%d: bounds [%v, %v], want [%v, %v]",
				workers, res.LowerBound, res.UpperBound, ref.LowerBound, ref.UpperBound)
		}
		if res.RRStats != ref.RRStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, res.RRStats, ref.RRStats)
		}
	}
}
