package im

import (
	"math"
	"time"

	"subsim/internal/bounds"
	"subsim/internal/coverage"
	"subsim/internal/obs"
	"subsim/internal/rrset"
)

// IMM is the martingale-based IM algorithm of Tang et al. (2015), the
// classic baseline of Figure 1. It runs in two phases:
//
//  1. OPT estimation ("Sampling"): for x = n/2, n/4, ... it generates
//     θ_i = λ'(ε')/x_i RR sets, selects a greedy seed set, and accepts
//     LB = n·Λ(S)/θ_i / (1+ε') as a lower bound on OPT_k once the
//     coverage estimate exceeds (1+ε')·x_i, with ε' = √2·ε.
//  2. Node selection: it tops the collection up to θ = λ*/LB RR sets and
//     returns the greedy seed set over the full collection.
//
// RR sets are reused across phases as in the original system. The failure
// exponent l is adjusted by the standard l·(1 + ln 2 / ln n) correction so
// the union bound over both phases still yields 1 - n^{-l}.
func IMM(gen rrset.Generator, opt Options) (*Result, error) {
	start := time.Now() //lint:allow timing (wall-clock Elapsed reporting only)
	g := gen.Graph()
	n := g.N()
	if err := opt.Normalize(n); err != nil {
		return nil, err
	}
	// δ = n^{-l}; recover l from the requested δ, then apply the
	// two-phase correction from the IMM paper.
	logn := math.Log(float64(n))
	l := math.Max(1, -math.Log(opt.Delta)/logn)
	l = l * (1 + math.Ln2/logn)
	epsPrime := math.Sqrt2 * opt.Eps

	tr := opt.Tracer
	run := tr.Span("imm")
	opt.Logger.RunStart("imm", n, g.M(), opt.K, opt.Eps, opt.Seed, opt.Workers)
	b := NewInstrumentedBatcher(gen, opt.Seed, opt.Workers, tr.Metrics())
	var outDeg []int32
	if opt.Revised {
		outDeg = outDegrees(gen)
	}
	idx := NewEstimator(n, outDeg, opt, tr.Metrics())

	res := &Result{}
	lambdaPrime := bounds.IMMLambdaPrime(n, opt.K, epsPrime, l)
	lb := 1.0
	maxI := int(math.Log2(float64(n)))
	if maxI < 1 {
		maxI = 1
	}
	est1 := run.Child("opt-estimation")
	for i := 1; i < maxI; i++ {
		res.Rounds = i
		rs := est1.Child(obs.Round(i))
		x := float64(n) / math.Pow(2, float64(i))
		thetaI := int64(math.Ceil(lambdaPrime / x))
		if add := thetaI - int64(idx.NumSets()); add > 0 {
			sp := rs.Child("sampling")
			b.Fill(idx, int(add), nil)
			sp.SetInt("theta", add).End()
		}
		ss := rs.Child("selection")
		sel := idx.SelectSeeds(coverage.GreedyOptions{K: opt.K, Revised: opt.Revised})
		ss.End()
		est := float64(n) * float64(sel.TotalCoverage(0)) / float64(idx.NumSets())
		rs.SetInt("theta", int64(idx.NumSets())).SetFloat("estimate", est).End()
		tr.Metrics().SetBounds(i, lb, 0, 0)
		opt.Logger.RoundDone("imm", i, int64(idx.NumSets()), lb, 0, 0)
		if est >= (1+epsPrime)*x {
			lb = est / (1 + epsPrime)
			opt.Logger.BoundCrossed("imm", i, est, (1+epsPrime)*x)
			break
		}
	}
	est1.SetFloat("opt_lower_bound", lb).End()

	ns := run.Child("node-selection")
	thetaWorst := bounds.IMMTheta(n, opt.K, opt.Eps, l, lb)
	// The OPT-estimation lower bound also feeds the tightened one-shot
	// budget: both analyses certify (1-1/e-ε, 1-δ) for the greedy set
	// over the final collection, so the smaller θ suffices.
	thetaTight := bounds.ThetaTightOPT(n, opt.K, opt.Eps, opt.Delta, lb)
	if thetaTight > thetaWorst {
		thetaTight = thetaWorst
	}
	res.ThetaWorstCase, res.ThetaTight = thetaWorst, thetaTight
	tr.Metrics().SetTheta(thetaWorst, thetaTight)
	theta := thetaWorst
	if opt.Bound == BoundTight && thetaTight < theta {
		theta = thetaTight
		tr.Metrics().AddThetaSaved(thetaWorst - thetaTight)
	}
	if add := theta - int64(idx.NumSets()); add > 0 {
		sp := ns.Child("sampling")
		b.Fill(idx, int(add), nil)
		sp.SetInt("theta", add).End()
	}
	ss := ns.Child("selection")
	sel := idx.SelectSeeds(coverage.GreedyOptions{K: opt.K, Revised: opt.Revised})
	ss.End()
	ns.SetInt("theta", int64(idx.NumSets())).End()
	res.Seeds = sel.Seeds
	res.Influence = float64(n) * float64(sel.TotalCoverage(0)) / float64(idx.NumSets())
	res.RRStats = b.Stats()
	run.SetInt("rounds", int64(res.Rounds)).End()
	res.Elapsed = time.Since(start) //lint:allow timing (wall-clock Elapsed reporting only)
	opt.Logger.RunDone("imm", res.Rounds, res.RRStats.Sets, res.Influence, res.Elapsed.Nanoseconds())
	res.Report = tr.Report()
	return res, nil
}
