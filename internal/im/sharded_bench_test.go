package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/rrset"
)

// benchFillSharded measures the zero-copy counterpart of benchFillIndex:
// sampling setsPer RR sets straight into the shard arenas (no
// arena→store splice exists on this path) and forcing the per-shard CSR
// builds with a degree probe. Compare against BenchmarkFillIndex_Subsim
// at the same W to see what killing the splice buys; W>1 scaling needs
// a multi-core host like every other _W variant.
func benchFillSharded(b *testing.B, workers, setsPer int) {
	b.Helper()
	g := benchGraph(b, 5000, 40000)
	batch := NewBatcher(rrset.NewSubsim(g), 42, workers)
	sh := coverage.NewSharded(g.N(), nil, workers)
	sh.SetWorkers(workers)
	batch.FillSharded(sh, setsPer, nil)
	sh.Degree(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := coverage.NewSharded(g.N(), nil, workers)
		sh.SetWorkers(workers)
		batch.FillSharded(sh, setsPer, nil)
		sh.Degree(0) // force the per-shard inverted index builds
	}
	b.ReportMetric(float64(setsPer), "sets/op")
}

func BenchmarkFillSharded_W1(b *testing.B) { benchFillSharded(b, 1, 2000) }
func BenchmarkFillSharded_W4(b *testing.B) { benchFillSharded(b, 4, 2000) }
func BenchmarkFillSharded_W8(b *testing.B) { benchFillSharded(b, 8, 2000) }

// BenchmarkShardedSelectSeeds measures CELF selection over the sharded
// engine — unlike the exact index, every round's marginal-gain reduce
// and covered-bit fan-out runs across workers, so this is the benchmark
// where rounds beyond the first scale.
func benchShardedSelect(b *testing.B, workers int) {
	b.Helper()
	g := benchGraph(b, 5000, 40000)
	batch := NewBatcher(rrset.NewSubsim(g), 42, workers)
	sh := coverage.NewSharded(g.N(), nil, workers)
	sh.SetWorkers(workers)
	batch.FillSharded(sh, 20000, nil)
	sh.Degree(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sh.SelectSeeds(coverage.GreedyOptions{K: 50})
	}
}

func BenchmarkShardedSelectSeeds_W1(b *testing.B) { benchShardedSelect(b, 1) }
func BenchmarkShardedSelectSeeds_W4(b *testing.B) { benchShardedSelect(b, 4) }
func BenchmarkShardedSelectSeeds_W8(b *testing.B) { benchShardedSelect(b, 8) }
