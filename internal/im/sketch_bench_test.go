package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/rrset"
)

// benchSketchCover measures the fill→select path through a pluggable
// coverage estimator backend on the largest bench graph, and reports the
// backend's resident index bytes as the "index-bytes" column. Recorded
// under the "sketch-cover" label in BENCH_rrset.json (make bench-sketch),
// the exact-vs-HLL pair is the memory/time crossover evidence: the exact
// CSR index grows linearly with the RR collection while the sketch stays
// at m bytes per node regardless of θ.
func benchSketchCover(b *testing.B, kind coverage.EstimatorKind, workers, setsPer int) {
	b.Helper()
	g := benchGraph(b, 5000, 40000)
	n := g.N()
	batch := NewBatcher(rrset.NewSubsim(g), 42, workers)
	opt := Options{K: 50, Workers: workers, Estimator: kind}
	// Warm the worker scratch so steady-state costs are measured.
	warm := NewEstimator(n, nil, opt, nil)
	batch.Fill(warm, setsPer, nil)
	warm.SelectSeeds(coverage.GreedyOptions{K: 50})
	b.ReportAllocs()
	b.ResetTimer()
	var mem int64
	for i := 0; i < b.N; i++ {
		est := NewEstimator(n, nil, opt, nil)
		batch.Fill(est, setsPer, nil)
		est.SelectSeeds(coverage.GreedyOptions{K: 50})
		mem = est.MemoryBytes()
	}
	b.ReportMetric(float64(mem), "index-bytes")
	b.ReportMetric(float64(setsPer), "sets/op")
}

func BenchmarkSketchCover_Exact_W1(b *testing.B) {
	benchSketchCover(b, coverage.EstimatorExact, 1, 50000)
}

func BenchmarkSketchCover_HLL_W1(b *testing.B) {
	benchSketchCover(b, coverage.EstimatorHLL, 1, 50000)
}

func BenchmarkSketchCover_Exact_W4(b *testing.B) {
	benchSketchCover(b, coverage.EstimatorExact, 4, 50000)
}

func BenchmarkSketchCover_HLL_W4(b *testing.B) {
	benchSketchCover(b, coverage.EstimatorHLL, 4, 50000)
}
