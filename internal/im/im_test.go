package im

import (
	"math"
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

type algFunc func(gen rrset.Generator, opt Options) (*Result, error)

var algorithms = map[string]algFunc{
	"IMM":    IMM,
	"SSA":    SSA,
	"OPIM-C": OPIMC,
}

func testGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferentialAttachment(n, 4, false, rng.New(123))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	return g
}

func TestOptionsValidation(t *testing.T) {
	g := testGraph(t, 200)
	bad := []Options{
		{K: 0, Eps: 0.1},
		{K: 201, Eps: 0.1},
		{K: 5, Eps: 0},
		{K: 5, Eps: 1},
		{K: 5, Eps: 0.1, Delta: 1},
		{K: 5, Eps: 0.1, Delta: -0.5},
	}
	for name, alg := range algorithms {
		for _, opt := range bad {
			if _, err := alg(rrset.NewVanilla(g), opt); err == nil {
				t.Errorf("%s accepted invalid options %+v", name, opt)
			}
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	o := Options{K: 5, Eps: 0.1}
	if err := o.Normalize(100); err != nil {
		t.Fatal(err)
	}
	if o.Delta != 0.01 {
		t.Fatalf("default delta %v", o.Delta)
	}
	if o.Workers < 1 {
		t.Fatal("workers not defaulted")
	}
}

func TestStarGraphPicksCentre(t *testing.T) {
	g := graph.GenStar(200, 0.5)
	for name, alg := range algorithms {
		res, err := alg(rrset.NewVanilla(g), Options{K: 1, Eps: 0.3, Seed: 1, Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
			t.Errorf("%s picked %v, want centre 0", name, res.Seeds)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t, 800)
	for name, alg := range algorithms {
		opt := Options{K: 5, Eps: 0.2, Seed: 42, Workers: 2}
		a, err := alg(rrset.NewVanilla(g), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := alg(rrset.NewVanilla(g), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Seeds) != len(b.Seeds) {
			t.Fatalf("%s: seed counts differ", name)
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				t.Fatalf("%s: runs diverged at seed %d", name, i)
			}
		}
	}
}

// TestQualityAgainstMCGreedy compares each sampling algorithm's seed
// quality with the forward-MC CELF greedy on a small graph: the spread
// must reach at least 85% of greedy's.
func TestQualityAgainstMCGreedy(t *testing.T) {
	g := testGraph(t, 400)
	ref, err := GreedyMC(g, GreedyMCOptions{K: 5, Samples: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	refSpread := diffusion.EstimateParallel(g, ref.Seeds, 30000, diffusion.IC, 8, 2)
	for name, alg := range algorithms {
		res, err := alg(rrset.NewVanilla(g), Options{K: 5, Eps: 0.15, Seed: 9, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spread := diffusion.EstimateParallel(g, res.Seeds, 30000, diffusion.IC, 8, 2)
		if spread < 0.85*refSpread {
			t.Errorf("%s spread %v below 85%% of MC greedy %v", name, spread, refSpread)
		}
	}
}

func TestOPIMCBoundsConsistent(t *testing.T) {
	g := testGraph(t, 600)
	res, err := OPIMC(rrset.NewVanilla(g), Options{K: 8, Eps: 0.2, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerBound > res.UpperBound {
		t.Fatalf("lower %v > upper %v", res.LowerBound, res.UpperBound)
	}
	if res.Approx <= 0 || res.Approx > 1 {
		t.Fatalf("approx ratio %v", res.Approx)
	}
	if res.LowerBound > res.Influence+1e-9 {
		t.Fatalf("lower bound %v above the point estimate %v", res.LowerBound, res.Influence)
	}
	if res.RRStats.Sets == 0 || res.Rounds == 0 {
		t.Fatal("cost accounting empty")
	}
	// The certified approximation should reach the target on this easy
	// instance (failure probability 1/n).
	if res.Approx < 1-1/math.E-0.2 {
		t.Fatalf("certified approx %v below target", res.Approx)
	}
}

func TestOPIMCWithSubsimAndRevised(t *testing.T) {
	g := testGraph(t, 600)
	res, err := OPIMC(rrset.NewSubsim(g), Options{K: 8, Eps: 0.2, Seed: 3, Workers: 2, Revised: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 8 {
		t.Fatalf("got %d seeds", len(res.Seeds))
	}
	spread := diffusion.EstimateParallel(g, res.Seeds, 20000, diffusion.IC, 5, 2)
	if spread < float64(res.LowerBound)*0.9 {
		t.Fatalf("forward spread %v far below certified lower bound %v", spread, res.LowerBound)
	}
}

func TestBatcherGenerateCountAndDeterminism(t *testing.T) {
	g := testGraph(t, 300)
	mk := func() *Batcher { return NewBatcher(rrset.NewVanilla(g), 5, 3) }
	a, b := mk(), mk()
	sa := a.Generate(100, nil)
	sb := b.Generate(100, nil)
	if len(sa) != 100 || len(sb) != 100 {
		t.Fatalf("counts %d %d", len(sa), len(sb))
	}
	for i := range sa {
		if len(sa[i]) != len(sb[i]) {
			t.Fatalf("batcher output not deterministic at %d", i)
		}
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				t.Fatalf("batcher output not deterministic at %d/%d", i, j)
			}
		}
	}
	if a.Generate(0, nil) != nil {
		t.Fatal("Generate(0) should be nil")
	}
	if a.Stats().Sets != 100 {
		t.Fatalf("stats %d", a.Stats().Sets)
	}
	a.ResetStats()
	if a.Stats().Sets != 0 {
		t.Fatal("reset failed")
	}
}

func TestFillIndexSentinelExclusion(t *testing.T) {
	g := graph.GenComplete(40, 1) // every full RR set covers everything
	batch := NewBatcher(rrset.NewVanilla(g), 1, 1)
	sentinel := make([]bool, 40)
	sentinel[0] = true
	idx := coverage.NewIndex(40, nil)
	hits := batch.FillIndex(idx, 200, sentinel)
	if hits+int64(idx.NumSets()) != 200 {
		t.Fatalf("hits %d + indexed %d != 200", hits, idx.NumSets())
	}
	// On p=1 complete graph every traversal reaches node 0, so all but
	// the sets rooted anywhere must hit... in fact every set hits.
	if hits != 200 {
		t.Fatalf("expected all sets to hit the sentinel, got %d", hits)
	}
}

func TestGreedyMCValidation(t *testing.T) {
	g := graph.GenStar(50, 0.4)
	if _, err := GreedyMC(g, GreedyMCOptions{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GreedyMC(g, GreedyMCOptions{K: 51}); err == nil {
		t.Error("k>n accepted")
	}
	res, err := GreedyMC(g, GreedyMCOptions{K: 1, Samples: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("MC greedy picked %d on a star", res.Seeds[0])
	}
}

func TestGreedyMCLTModel(t *testing.T) {
	g := graph.GenStar(30, 0)
	g.AssignLT()
	res, err := GreedyMC(g, GreedyMCOptions{K: 1, Samples: 300, Seed: 2, Model: diffusion.LTModel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("LT MC greedy picked %d", res.Seeds[0])
	}
}

func TestIMMOnLTModel(t *testing.T) {
	g := testGraph(t, 300)
	g.AssignLT()
	res, err := IMM(rrset.NewLT(g), Options{K: 4, Eps: 0.3, Seed: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	spread := diffusion.EstimateParallel(g, res.Seeds, 20000, diffusion.LTModel, 7, 2)
	rnd := diffusion.EstimateParallel(g, []int32{100, 101, 102, 103}, 20000, diffusion.LTModel, 7, 2)
	if spread <= rnd {
		t.Fatalf("IMM-LT spread %v not above random %v", spread, rnd)
	}
}

func TestDoublingRounds(t *testing.T) {
	if doublingRounds(10, 10) != 1 || doublingRounds(10, 5) != 1 {
		t.Fatal("degenerate rounds")
	}
	if doublingRounds(1, 8) != 3 {
		t.Fatalf("rounds(1,8) = %d", doublingRounds(1, 8))
	}
	if doublingRounds(3, 100) != 6 {
		t.Fatalf("rounds(3,100) = %d", doublingRounds(3, 100))
	}
}

func TestVerifyStopsAtTarget(t *testing.T) {
	g := graph.GenComplete(30, 1)
	b := NewBatcher(rrset.NewVanilla(g), 1, 1)
	covered, used := b.verify([]int32{0}, 50, 10000)
	if covered < 50 {
		t.Fatalf("covered %d below target", covered)
	}
	if used > 1000 {
		t.Fatalf("verification overshot wildly: %d draws", used)
	}
	// Cap binds when the seeds never cover.
	g0 := graph.GenComplete(30, 0)
	b0 := NewBatcher(rrset.NewVanilla(g0), 1, 1)
	covered, used = b0.verify([]int32{0}, 50, 200)
	if used != 200 {
		t.Fatalf("cap not honoured: used %d", used)
	}
	if covered >= 50 {
		t.Fatalf("impossible coverage %d", covered)
	}
}

func TestTIMPlusBasic(t *testing.T) {
	g := testGraph(t, 500)
	res, err := TIMPlus(rrset.NewVanilla(g), Options{K: 5, Eps: 0.3, Seed: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	spread := diffusion.EstimateParallel(g, res.Seeds, 20000, diffusion.IC, 5, 2)
	ref, err := GreedyMC(g, GreedyMCOptions{K: 5, Samples: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	refSpread := diffusion.EstimateParallel(g, ref.Seeds, 20000, diffusion.IC, 5, 2)
	if spread < 0.85*refSpread {
		t.Fatalf("TIM+ spread %v below 85%% of MC greedy %v", spread, refSpread)
	}
}

func TestTIMPlusStarPicksCentre(t *testing.T) {
	g := graph.GenStar(200, 0.5)
	res, err := TIMPlus(rrset.NewVanilla(g), Options{K: 1, Eps: 0.3, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("TIM+ picked %v", res.Seeds)
	}
}

func TestTIMPlusValidation(t *testing.T) {
	g := graph.GenStar(50, 0.5)
	if _, err := TIMPlus(rrset.NewVanilla(g), Options{K: 0, Eps: 0.1}); err == nil {
		t.Error("k=0 accepted")
	}
}
