// Package im implements the sampling-based influence-maximization
// baselines the paper compares against — IMM (Tang et al. 2015), OPIM-C
// (Tang et al. 2018) and SSA (Nguyen et al. 2016, with the corrected
// verification of Huang et al. 2017) — plus a forward-Monte-Carlo CELF
// greedy used to ground-truth tiny graphs in the tests.
//
// Every algorithm is parameterised by an rrset.Generator, so each
// baseline runs with either the vanilla generator (as in the original
// systems) or with SUBSIM (the paper's "SUBSIM" configuration is OPIM-C
// over the SUBSIM generator, see internal/core).
package im

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"subsim/internal/coverage"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// Options configures one influence-maximization run.
type Options struct {
	// K is the seed-set size (1 <= K <= n).
	K int
	// Eps is the approximation slack ε of the (1-1/e-ε) guarantee.
	Eps float64
	// Delta is the failure probability; 0 defaults to 1/n.
	Delta float64
	// Seed seeds all randomness; a fixed Seed (with fixed Workers)
	// reproduces a run exactly.
	Seed uint64
	// Workers bounds the RR-generation parallelism; 0 defaults to
	// GOMAXPROCS.
	Workers int
	// Revised enables the Algorithm 6 out-degree tie-break in greedy
	// selection. The baselines default to the classic greedy; HIST
	// always enables it.
	Revised bool
}

func (o *Options) Normalize(n int) error {
	if o.K < 1 || o.K > n {
		return fmt.Errorf("im: k=%d outside [1,%d]", o.K, n)
	}
	if o.Eps <= 0 || o.Eps >= 1 {
		return fmt.Errorf("im: eps=%v outside (0,1)", o.Eps)
	}
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("im: delta=%v outside (0,1)", o.Delta)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Result reports the outcome and cost accounting of a run.
type Result struct {
	// Seeds is the selected seed set, in selection order. For HIST the
	// sentinel nodes come first.
	Seeds []int32
	// Influence is the algorithm's unbiased coverage-based estimate
	// n·Λ(S)/θ of the expected influence of Seeds.
	Influence float64
	// LowerBound is the certified (1-δ)-confidence lower bound on the
	// influence of Seeds (Equation 1); 0 when the algorithm does not
	// certify one.
	LowerBound float64
	// UpperBound is the certified upper bound on the optimum
	// (Equation 2); 0 when not certified.
	UpperBound float64
	// Approx is LowerBound/UpperBound, the certified approximation
	// ratio at termination.
	Approx float64
	// RRStats aggregates generation cost across all RR collections.
	RRStats rrset.Stats
	// Rounds is the number of doubling iterations executed.
	Rounds int
	// SentinelRR counts the RR sets generated during HIST's sentinel
	// phase (Figure 3a); 0 for other algorithms.
	SentinelRR int64
	// SentinelSize is HIST's |S_b|; 0 for other algorithms.
	SentinelSize int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Batcher generates RR sets in parallel with deterministic output for a
// fixed seed and worker count: worker w always consumes the w-th split
// RNG stream and its sets are appended in worker order.
type Batcher struct {
	gens []rrset.Generator
	srcs []*rng.Source
}

// NewBatcher builds a parallel generation front-end over gen. The
// generator is cloned per worker; clones share any immutable
// preprocessing (sorted in-edges, bucket samplers).
func NewBatcher(gen rrset.Generator, seed uint64, workers int) *Batcher {
	if workers < 1 {
		workers = 1
	}
	b := &Batcher{
		gens: make([]rrset.Generator, workers),
		srcs: make([]*rng.Source, workers),
	}
	base := rng.New(seed)
	for w := 0; w < workers; w++ {
		if w == 0 {
			b.gens[w] = gen
		} else {
			b.gens[w] = gen.Clone()
		}
		b.srcs[w] = base.Split()
	}
	return b
}

// Generate produces count random RR sets (uniform roots), stopping each
// traversal at sentinel nodes when sentinel is non-nil, and returns them
// in deterministic order.
func (b *Batcher) Generate(count int, sentinel []bool) []rrset.RRSet {
	if count <= 0 {
		return nil
	}
	workers := len(b.gens)
	if count < 4*workers || workers == 1 {
		out := make([]rrset.RRSet, 0, count)
		for i := 0; i < count; i++ {
			out = append(out, rrset.GenerateRandom(b.gens[0], b.srcs[0], sentinel))
		}
		return out
	}
	parts := make([][]rrset.RRSet, workers)
	per := count / workers
	extra := count % workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cnt := per
		if w < extra {
			cnt++
		}
		wg.Add(1)
		go func(w, cnt int) {
			defer wg.Done()
			part := make([]rrset.RRSet, 0, cnt)
			for i := 0; i < cnt; i++ {
				part = append(part, rrset.GenerateRandom(b.gens[w], b.srcs[w], sentinel))
			}
			parts[w] = part
		}(w, cnt)
	}
	wg.Wait()
	out := make([]rrset.RRSet, 0, count)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// Stats sums the generation counters across all workers.
func (b *Batcher) Stats() rrset.Stats {
	var s rrset.Stats
	for _, g := range b.gens {
		s.Add(g.Stats())
	}
	return s
}

// ResetStats zeroes the counters on all workers.
func (b *Batcher) ResetStats() {
	for _, g := range b.gens {
		g.ResetStats()
	}
}

// FillIndex generates `count` RR sets and adds them to idx. When sentinel
// is non-nil, sets that terminated on a sentinel (i.e. contain one) are
// NOT added; instead the number of such hits is returned, matching
// Algorithm 8 line 5 where covered-by-S_b sets are excluded from greedy.
func (b *Batcher) FillIndex(idx *coverage.Index, count int, sentinel []bool) (hits int64) {
	sets := b.Generate(count, sentinel)
	for _, set := range sets {
		if sentinel != nil && len(set) > 0 && sentinel[set[len(set)-1]] {
			hits++
			continue
		}
		idx.Add(set)
	}
	return hits
}

// outDegrees extracts the out-degree array used by the Revised-Greedy
// tie-break.
func outDegrees(gen rrset.Generator) []int32 {
	g := gen.Graph()
	deg := make([]int32, g.N())
	for v := range deg {
		deg[v] = int32(g.OutDegree(int32(v)))
	}
	return deg
}

// doublingRounds returns ceil(log2(max/initial)), the iteration budget of
// the doubling schemes.
func doublingRounds(initial, max int64) int {
	if max <= initial {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(max) / float64(initial))))
}
