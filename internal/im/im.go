// Package im implements the sampling-based influence-maximization
// baselines the paper compares against — IMM (Tang et al. 2015), OPIM-C
// (Tang et al. 2018) and SSA (Nguyen et al. 2016, with the corrected
// verification of Huang et al. 2017) — plus a forward-Monte-Carlo CELF
// greedy used to ground-truth tiny graphs in the tests.
//
// Every algorithm is parameterised by an rrset.Generator, so each
// baseline runs with either the vanilla generator (as in the original
// systems) or with SUBSIM (the paper's "SUBSIM" configuration is OPIM-C
// over the SUBSIM generator, see internal/core).
package im

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"subsim/internal/coverage"
	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// Options configures one influence-maximization run.
type Options struct {
	// K is the seed-set size (1 <= K <= n).
	K int
	// Eps is the approximation slack ε of the (1-1/e-ε) guarantee.
	Eps float64
	// Delta is the failure probability; 0 defaults to 1/n.
	Delta float64
	// Seed seeds all randomness; a fixed Seed reproduces a run exactly,
	// independent of Workers (every RR set draws from an RNG stream
	// derived from its global index, see Batcher).
	Seed uint64
	// Workers bounds the RR-generation parallelism; 0 defaults to
	// GOMAXPROCS.
	Workers int
	// Revised enables the Algorithm 6 out-degree tie-break in greedy
	// selection. The baselines default to the classic greedy; HIST
	// always enables it.
	Revised bool
	// Estimator selects the coverage backend: the exact CSR inverted
	// index (the zero value, bit-identical to historic runs) or the
	// HyperLogLog sketch backend (coverage.EstimatorHLL), which trades
	// the backend's certified relative error for θ-independent memory.
	Estimator coverage.EstimatorKind
	// SketchPrecision is the HLL register-index width p (2^p registers
	// per node); 0 defaults to coverage.HLLDefaultPrecision. Ignored by
	// the exact backend.
	SketchPrecision int
	// Bound selects the sample-complexity analysis that caps θ:
	// BoundIMM (the zero value) keeps the worst-case IMM/OPIM-C
	// constants and historic behavior; BoundTight lets algorithms stop
	// at the smaller of the worst-case and the Sadeh–Cohen–Kaplan-style
	// tightened budgets. Both budgets are reported either way.
	Bound BoundKind
	// Tracer receives phase spans (per doubling round: sampling,
	// selection, bound-check) and low-overhead RR metrics, and produces
	// Result.Report. Nil disables all instrumentation at zero cost —
	// see the obs package's nil-tracer contract.
	Tracer *obs.Tracer
	// Logger receives structured run events (run.start, round.done,
	// bound.crossed, run.done — see obs.Logger's event schema) through
	// log/slog. Nil — the default — is silent and allocation-free on
	// every emit site, mirroring the nil-tracer contract.
	Logger *obs.Logger
}

// BoundKind selects the sample-complexity analysis used to cap θ.
type BoundKind int

const (
	// BoundIMM is the baseline worst-case budget (the IMM/OPIM-C
	// constants already in internal/bounds).
	BoundIMM BoundKind = iota
	// BoundTight engages the tightened two-sided budget
	// (bounds.ThetaMaxTight / bounds.ThetaTightOPT): algorithms stop at
	// the smaller certified θ.
	BoundTight
)

// String returns the flag-level name of the bound.
func (b BoundKind) String() string {
	switch b {
	case BoundTight:
		return "tight"
	default:
		return "imm"
	}
}

// ParseBound maps a flag value ("imm" | "tight") to its kind.
func ParseBound(s string) (BoundKind, error) {
	switch s {
	case "imm", "":
		return BoundIMM, nil
	case "tight":
		return BoundTight, nil
	default:
		return BoundIMM, fmt.Errorf("im: unknown bound %q (want imm or tight)", s)
	}
}

func (o *Options) Normalize(n int) error {
	if o.K < 1 || o.K > n {
		return fmt.Errorf("im: k=%d outside [1,%d]", o.K, n)
	}
	if o.Eps <= 0 || o.Eps >= 1 {
		return fmt.Errorf("im: eps=%v outside (0,1)", o.Eps)
	}
	if o.Delta == 0 {
		o.Delta = 1 / float64(n)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("im: delta=%v outside (0,1)", o.Delta)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Result reports the outcome and cost accounting of a run.
type Result struct {
	// Seeds is the selected seed set, in selection order. For HIST the
	// sentinel nodes come first.
	Seeds []int32
	// Influence is the algorithm's unbiased coverage-based estimate
	// n·Λ(S)/θ of the expected influence of Seeds.
	Influence float64
	// LowerBound is the certified (1-δ)-confidence lower bound on the
	// influence of Seeds (Equation 1); 0 when the algorithm does not
	// certify one.
	LowerBound float64
	// UpperBound is the certified upper bound on the optimum
	// (Equation 2); 0 when not certified.
	UpperBound float64
	// Approx is LowerBound/UpperBound, the certified approximation
	// ratio at termination.
	Approx float64
	// RRStats aggregates generation cost across all RR collections.
	RRStats rrset.Stats
	// Rounds is the number of doubling iterations executed.
	Rounds int
	// SentinelRR counts the RR sets generated during HIST's sentinel
	// phase (Figure 3a); 0 for other algorithms.
	SentinelRR int64
	// SentinelSize is HIST's |S_b|; 0 for other algorithms.
	SentinelSize int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// ThetaWorstCase is the worst-case RR sample budget θ_max of the
	// baseline IMM/OPIM-C analysis for this run's (n, k, ε, δ); 0 when
	// the algorithm does not compute one.
	ThetaWorstCase int64 `json:",omitempty"`
	// ThetaTight is the tightened sample budget (Sadeh–Cohen–Kaplan
	// style, see bounds.ThetaMaxTight) for the same parameters. It is
	// reported whether or not Options.Bound engaged it, so runs always
	// show how much the tightened analysis certifies; ≤ ThetaWorstCase.
	ThetaTight int64 `json:",omitempty"`
	// Report is the machine-readable observability report (span tree,
	// histograms, counters) when Options.Tracer was set; nil otherwise.
	Report *obs.Report `json:",omitempty"`
}

// Batcher generates RR sets in parallel with deterministic output for a
// fixed seed *independent of the worker count*: the i-th set ever drawn
// through the batcher comes from an RNG stream derived from (seed, i),
// so workers=1 and workers=8 produce identical sets, identical merged
// generator stats, and therefore identical algorithm results. Workers
// only decide how the per-index streams are partitioned.
//
// Each worker generates into its own reusable rrset.Arena (one flat
// []int32 plus per-set offsets), so the steady-state cost of a set is
// the traversal itself — no per-set heap allocation. Workers own
// contiguous global-index ranges in ascending worker order, so visiting
// the arenas worker by worker replays the sets in global-index order.
type Batcher struct {
	gens   []rrset.Generator
	srcs   []*rng.Source  // one reusable Source per worker, reseeded per set
	arenas []*rrset.Arena // one reusable arena per worker
	base   []rrset.Stats  // per-worker counters at construction; Stats() reports deltas
	seed   uint64
	next   int64 // global index of the next set to generate

	// coldNodes estimates nodes per RR set before any set has been
	// generated (the cold-start reserve); seeded from the graph's average
	// in-degree, since an RR set's expected size tracks how many in-edges
	// a BFS layer fans out over.
	coldNodes int

	// spliceHist, when non-nil, receives the duration of each
	// arena-to-store splice performed by FillIndex (ns).
	spliceHist *obs.Histogram

	// rings, when non-nil, holds one timeline ring per worker: the splice
	// passes record their per-worker intervals there (generation-phase
	// records come from the rrset.InstrumentWorker wrappers). rings[w] is
	// only ever written by the goroutine currently acting as worker w —
	// generation and splice never overlap (FillIndex runs them strictly in
	// sequence), preserving the ring's single-writer discipline.
	rings []*timeline.Ring

	// secGenerate and secSplice tag the two FillIndex sections with pprof
	// labels and runtime/trace regions; nil (the disabled instrument) when
	// the batcher is uninstrumented.
	secGenerate *obs.PhaseSection
	secSplice   *obs.PhaseSection

	// Splice scratch, one slot per worker: kept set/node counts from the
	// counting pass and their prefix-summed destination offsets. Kept on
	// the batcher so steady-state FillIndex allocates nothing.
	keptSets  []int
	keptNodes []int
	setOff    []int
	nodeOff   []int64
	hitCnt    []int64
}

// NewBatcher builds a parallel generation front-end over gen. The
// generator is cloned per worker; clones share any immutable
// preprocessing (sorted in-edges, bucket samplers).
func NewBatcher(gen rrset.Generator, seed uint64, workers int) *Batcher {
	if workers < 1 {
		workers = 1
	}
	b := &Batcher{
		gens:      make([]rrset.Generator, workers),
		srcs:      make([]*rng.Source, workers),
		arenas:    make([]*rrset.Arena, workers),
		base:      make([]rrset.Stats, workers),
		seed:      seed,
		keptSets:  make([]int, workers),
		keptNodes: make([]int, workers),
		setOff:    make([]int, workers),
		nodeOff:   make([]int64, workers),
		hitCnt:    make([]int64, workers),
	}
	if g := gen.Graph(); g != nil {
		cold := int(g.AvgDegree()) + 1
		if cold < 2 {
			cold = 2
		}
		if cold > 64 {
			cold = 64
		}
		b.coldNodes = cold
	} else {
		b.coldNodes = 2
	}
	for w := 0; w < workers; w++ {
		if w == 0 {
			b.gens[w] = gen
		} else {
			b.gens[w] = gen.Clone()
		}
		b.base[w] = b.gens[w].Stats()
		b.srcs[w] = rng.New(seed)
		b.arenas[w] = rrset.NewArena(0, 0)
	}
	return b
}

// NewInstrumentedBatcher is NewBatcher with every worker generator
// wrapped by rrset.Instrument against m, including a per-worker
// sets-generated counter. A nil m yields a plain, unwrapped batcher —
// the zero-overhead disabled path.
func NewInstrumentedBatcher(gen rrset.Generator, seed uint64, workers int, m *obs.MetricSet) *Batcher {
	b := NewBatcher(gen, seed, workers)
	if m == nil {
		return b
	}
	b.spliceHist = &m.Splice
	b.secGenerate = obs.Section("generate", len(b.gens))
	b.secSplice = obs.Section("splice", len(b.gens))
	if m.Timeline != nil {
		b.rings = make([]*timeline.Ring, len(b.gens))
		for w := range b.rings {
			b.rings[w] = m.TimelineRing(w)
		}
	}
	for w := range b.gens {
		b.gens[w] = rrset.InstrumentWorker(b.gens[w], m, w)
	}
	return b
}

// ring returns worker w's timeline ring, or nil (the no-op ring) on an
// uninstrumented batcher.
func (b *Batcher) ring(w int) *timeline.Ring {
	if b.rings == nil {
		return nil
	}
	return b.rings[w]
}

// setSeed derives the RNG seed of the set with global index idx from the
// batcher seed, splitmix-style, so per-index streams are decorrelated
// and two batchers with nearby seeds (HIST uses seed and seed+1) do not
// collide.
func setSeed(base uint64, idx int64) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fillArenas generates count sets into the per-worker arenas, worker w
// holding the w-th contiguous block of global indices, and returns the
// number of arenas used (a prefix of b.arenas). Arenas are reused across
// calls: steady-state generation performs zero per-set allocations.
//
//subsim:parallel
func (b *Batcher) fillArenas(count int, sentinel []bool) (used int) {
	first := b.next
	b.next += int64(count)
	workers := len(b.gens)
	if count < 4*workers || workers == 1 {
		a := b.arenas[0]
		a.Reset()
		b.reserve(a, 0, count)
		for i := 0; i < count; i++ {
			b.srcs[0].Seed(setSeed(b.seed, first+int64(i)))
			rrset.GenerateRandomInto(b.gens[0], a, b.srcs[0], sentinel)
		}
		return 1
	}
	per := count / workers
	extra := count % workers
	var wg sync.WaitGroup
	offset := int64(0)
	for w := 0; w < workers; w++ {
		cnt := per
		if w < extra {
			cnt++
		}
		wg.Add(1)
		go func(w, cnt int, start int64) {
			defer wg.Done()
			a := b.arenas[w]
			a.Reset()
			b.reserve(a, w, cnt)
			for i := 0; i < cnt; i++ {
				b.srcs[w].Seed(setSeed(b.seed, start+int64(i)))
				rrset.GenerateRandomInto(b.gens[w], a, b.srcs[w], sentinel)
			}
		}(w, cnt, first+offset)
		offset += int64(cnt)
	}
	wg.Wait()
	return workers
}

// reserve pre-grows worker w's arena from the data: the running average
// RR-set size observed by that worker's generator (with headroom) tells
// the arena how many node ids the next cnt sets will need, replacing
// amortised doubling with a single up-front growth in the common case.
// Before the first set exists there is no average, so the cold start
// falls back to the graph's average in-degree (coldNodes) instead of
// reserving zero nodes and eating log2(batch) reallocations.
func (b *Batcher) reserve(a *rrset.Arena, w, cnt int) {
	s := b.gens[w].Stats()
	if s.Sets == 0 {
		a.Reserve(cnt, cnt*b.coldNodes)
		return
	}
	a.Reserve(cnt, int(s.AvgSize()*float64(cnt)*1.25)+cnt)
}

// Visit generates count random RR sets (uniform roots), stopping each
// traversal at sentinel nodes when sentinel is non-nil, and calls visit
// on each set in deterministic global-index order regardless of the
// worker count. The slices passed to visit are views into reusable
// worker arenas: valid only during the call, copy to retain. A false
// return stops the visiting loop early (all count sets have already
// been generated, so batcher state and stats are unaffected).
func (b *Batcher) Visit(count int, sentinel []bool, visit func(set []int32) bool) {
	if count <= 0 {
		return
	}
	used := b.fillArenas(count, sentinel)
	for w := 0; w < used; w++ {
		a := b.arenas[w]
		for i, n := 0, a.Len(); i < n; i++ {
			if !visit(a.Set(i)) {
				return
			}
		}
	}
}

// Generate produces count random RR sets in deterministic global-index
// order, each freshly allocated and owned by the caller. It is the
// compatibility wrapper over Visit; hot paths (FillIndex, Visit) avoid
// the per-set copies entirely.
func (b *Batcher) Generate(count int, sentinel []bool) []rrset.RRSet {
	if count <= 0 {
		return nil
	}
	out := make([]rrset.RRSet, 0, count)
	b.Visit(count, sentinel, func(set []int32) bool {
		cp := make(rrset.RRSet, len(set))
		copy(cp, set)
		out = append(out, cp)
		return true
	})
	return out
}

// Stats sums the generation counters across all workers, relative to
// the counters each generator carried when the batcher was built. The
// baseline matters when two batchers share a generator instance — HIST's
// two phases both build a batcher over the caller's generator, and the
// delta semantics keep each phase's accounting disjoint instead of
// double-counting worker 0.
func (b *Batcher) Stats() rrset.Stats {
	var s rrset.Stats
	for w, g := range b.gens {
		s.Add(g.Stats())
		s.Sub(b.base[w])
	}
	return s
}

// ResetStats zeroes the counters on all workers and the baseline.
func (b *Batcher) ResetStats() {
	for w, g := range b.gens {
		g.ResetStats()
		b.base[w] = rrset.Stats{}
	}
}

// FillIndex generates `count` RR sets and adds them to idx. When sentinel
// is non-nil, sets that terminated on a sentinel (i.e. contain one) are
// NOT added; instead the number of such hits is returned, matching
// Algorithm 8 line 5 where covered-by-S_b sets are excluded from greedy.
//
// The sets are spliced from the per-worker arenas straight into the
// index's flat store: each worker's kept sets/nodes are counted first,
// prefix sums assign every worker a disjoint destination range in the
// store's flat buffers (reserved in one Index.Grow call), and the copy
// pass block-copies each arena into its range. Workers own contiguous
// global-index blocks in ascending order, so the store content is
// byte-identical to the serial per-set append regardless of the worker
// count, and steady-state cost is two memcpys per worker — no per-set
// allocation, no per-set call.
//
//subsim:parallel
func (b *Batcher) FillIndex(idx *coverage.Index, count int, sentinel []bool) (hits int64) {
	if count <= 0 {
		return 0
	}
	hGen := b.secGenerate.Enter()
	used := b.fillArenas(count, sentinel)
	hGen.Exit()
	hSpl := b.secSplice.Enter()
	var start time.Time
	if b.spliceHist != nil {
		start = time.Now() //lint:allow timing (splice duration metric)
	}
	hits = b.splice(idx, used, sentinel)
	if b.spliceHist != nil {
		b.spliceHist.Observe(time.Since(start).Nanoseconds()) //lint:allow timing (splice duration metric)
	}
	hSpl.Exit()
	return hits
}

// Fill generates count RR sets and absorbs them into est, returning the
// number of sentinel-terminated sets that were skipped. An exact index
// takes the FillIndex disjoint-range splice path unchanged (bit-for-bit
// identical to historic behavior); a sharded estimator whose shard count
// matches the batcher's worker count takes the zero-splice FillSharded
// path, generating straight into the shard arenas; any other estimator
// consumes the per-worker arenas through AbsorbArena in ascending worker
// order, which replays the sets in global-index order — so every backend
// sees the same sets with the same ids regardless of the worker count.
func (b *Batcher) Fill(est coverage.Estimator, count int, sentinel []bool) (hits int64) {
	if idx, ok := est.(*coverage.Index); ok {
		return b.FillIndex(idx, count, sentinel)
	}
	if sh, ok := est.(*coverage.Sharded); ok {
		return b.FillSharded(sh, count, sentinel)
	}
	return b.absorbInto(est, count, sentinel)
}

// absorbInto is the generic estimator fill path: generate into the
// per-worker arenas, then hand each arena to AbsorbArena in ascending
// worker order (global-index order).
func (b *Batcher) absorbInto(est coverage.Estimator, count int, sentinel []bool) (hits int64) {
	if count <= 0 {
		return 0
	}
	hGen := b.secGenerate.Enter()
	used := b.fillArenas(count, sentinel)
	hGen.Exit()
	hSpl := b.secSplice.Enter()
	var start time.Time
	if b.spliceHist != nil {
		start = time.Now() //lint:allow timing (absorb duration metric)
	}
	for w := 0; w < used; w++ {
		a := b.arenas[w]
		hits += est.AbsorbArena(a.Data(), a.Ends(), sentinel)
	}
	if b.spliceHist != nil {
		b.spliceHist.Observe(time.Since(start).Nanoseconds()) //lint:allow timing (absorb duration metric)
	}
	hSpl.Exit()
	return hits
}

// FillSharded generates count RR sets directly into sh's shard-local
// arenas — the zero-splice fill path. Worker lane w owns shard w and
// generates exactly the global indices idx with coverage.ShardOf(idx,
// shards) == w, so placement is the documented pure function of (index,
// shard count) and no arena-to-store copy ever happens: the arena IS
// the shard's store segment, and sentinel-terminated sets are truncated
// in place (Arena.DropLast) instead of filtered by a copy pass. There
// are no splice timeline records on this path — the phase is gone, not
// merely cheap.
//
// A shard count different from the batcher's worker count falls back to
// the generic absorb path (still correct, routed by collection index).
// Results are identical either way: every coverage query is a sum over
// shards, so the partition cannot change it.
//
//subsim:parallel
func (b *Batcher) FillSharded(sh *coverage.Sharded, count int, sentinel []bool) (hits int64) {
	if count <= 0 {
		return 0
	}
	shards := sh.NumShards()
	if shards != len(b.gens) {
		return b.absorbInto(sh, count, sentinel)
	}
	hGen := b.secGenerate.Enter()
	first := b.next
	b.next += int64(count)
	if count < 4*shards || shards == 1 {
		// Small batch: worker 0's generator serves every shard in turn;
		// set content depends only on (seed, index), so the lane choice
		// is invisible.
		for s := 0; s < shards; s++ {
			hits += b.fillShard(sh.ShardArena(s), 0, s, shards, first, count, sentinel)
		}
		hGen.Exit()
		return hits
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	for w := 1; w < shards; w++ {
		go func(w int) {
			defer wg.Done()
			b.hitCnt[w] = b.fillShard(sh.ShardArena(w), w, w, shards, first, count, sentinel)
		}(w)
	}
	b.hitCnt[0] = b.fillShard(sh.ShardArena(0), 0, 0, shards, first, count, sentinel)
	wg.Wait()
	for w := 0; w < shards; w++ {
		hits += b.hitCnt[w]
	}
	hGen.Exit()
	return hits
}

// fillShard generates every global index idx in [first, first+count)
// with ShardOf(idx, shards) == shard into a, through worker lane w's
// generator and RNG stream, appending onto whatever the arena already
// holds (it is a persistent store segment, never Reset). Sets that
// terminated on a sentinel are dropped in place and counted.
func (b *Batcher) fillShard(a *rrset.Arena, w, shard, shards int, first int64, count int, sentinel []bool) (hits int64) {
	r := (int64(shard) - first%int64(shards) + int64(shards)) % int64(shards)
	if r >= int64(count) {
		return 0
	}
	cnt := (int64(count) - r + int64(shards) - 1) / int64(shards)
	b.reserve(a, w, int(cnt))
	last := first + int64(count)
	for idx := first + r; idx < last; idx += int64(shards) {
		b.srcs[w].Seed(setSeed(b.seed, idx))
		rrset.GenerateRandomInto(b.gens[w], a, b.srcs[w], sentinel)
		if sentinel != nil && arenaLastHit(a, sentinel) {
			a.DropLast()
			hits++
		}
	}
	return hits
}

// arenaLastHit reports whether the arena's most recently committed set
// terminated on a sentinel; the traversal always leaves the sentinel as
// the set's last element.
func arenaLastHit(a *rrset.Arena, sentinel []bool) bool {
	set := a.Set(a.Len() - 1)
	return len(set) > 0 && sentinel[set[len(set)-1]]
}

// NewEstimator constructs the coverage backend opt selects, wired to the
// metric set (which may be nil): the exact CSR index for
// coverage.EstimatorExact — built exactly as the algorithms historically
// built it, so default-option runs stay bit-identical — the HLL sketch
// backend, or the sharded exact engine (one shard per worker, exact and
// byte-identical to the CSR index for any worker count). Worker bounds
// are inherited from opt.Workers.
func NewEstimator(n int, outDeg []int32, opt Options, m *obs.MetricSet) coverage.Estimator {
	switch opt.Estimator {
	case coverage.EstimatorHLL:
		h := coverage.NewHLLObs(n, outDeg, opt.SketchPrecision, m)
		h.SetWorkers(opt.Workers)
		return h
	case coverage.EstimatorSharded:
		// One shard per worker, so Batcher.Fill takes the zero-splice
		// direct-generation path; the shard count never changes a result
		// (every query is a sum over shards).
		s := coverage.NewShardedObs(n, outDeg, opt.Workers, m)
		s.SetWorkers(opt.Workers)
		return s
	}
	idx := coverage.NewIndexObs(n, outDeg, m)
	idx.SetWorkers(opt.Workers)
	return idx
}

// splice moves the contents of the first `used` arenas into the index
// store, skipping sentinel-terminated sets, and returns the number of
// sets skipped. used==1 splices inline; otherwise the counting pass and
// the copy pass each fan out across the arenas, with a serial O(used)
// prefix sum in between assigning destination offsets.
//
//subsim:parallel
func (b *Batcher) splice(idx *coverage.Index, used int, sentinel []bool) int64 {
	if used == 1 {
		r := b.ring(0)
		t0 := r.Now()
		sets, nodes, hits := countKept(b.arenas[0], sentinel)
		data, ends, nodeBase := idx.Grow(sets, nodes)
		spliceArena(b.arenas[0], sentinel, data, ends, nodeBase)
		r.Record(timeline.PhaseSplice, t0, r.Now())
		return hits
	}
	var wg sync.WaitGroup
	wg.Add(used - 1)
	for w := 1; w < used; w++ {
		go func(w int) {
			defer wg.Done()
			r := b.ring(w)
			t0 := r.Now()
			b.keptSets[w], b.keptNodes[w], b.hitCnt[w] = countKept(b.arenas[w], sentinel)
			r.Record(timeline.PhaseSplice, t0, r.Now())
		}(w)
	}
	r0 := b.ring(0)
	t0 := r0.Now()
	b.keptSets[0], b.keptNodes[0], b.hitCnt[0] = countKept(b.arenas[0], sentinel)
	r0.Record(timeline.PhaseSplice, t0, r0.Now())
	wg.Wait()

	totalSets, totalNodes := 0, int64(0)
	var hits int64
	for w := 0; w < used; w++ {
		b.setOff[w] = totalSets
		b.nodeOff[w] = totalNodes
		totalSets += b.keptSets[w]
		totalNodes += int64(b.keptNodes[w])
		hits += b.hitCnt[w]
	}
	data, ends, nodeBase := idx.Grow(totalSets, int(totalNodes))

	wg.Add(used - 1)
	for w := 1; w < used; w++ {
		go func(w int) {
			defer wg.Done()
			r := b.ring(w)
			t0 := r.Now()
			lo := b.nodeOff[w]
			spliceArena(b.arenas[w], sentinel,
				data[lo:lo+int64(b.keptNodes[w])],
				ends[b.setOff[w]:b.setOff[w]+b.keptSets[w]],
				nodeBase+lo)
			r.Record(timeline.PhaseSplice, t0, r.Now())
		}(w)
	}
	t0 = r0.Now()
	spliceArena(b.arenas[0], sentinel,
		data[:b.keptNodes[0]], ends[:b.keptSets[0]], nodeBase)
	r0.Record(timeline.PhaseSplice, t0, r0.Now())
	wg.Wait()
	return hits
}

// countKept reports how many of the arena's sets survive sentinel
// filtering and how many node ids they hold, plus the number filtered
// out. With no sentinel every set is kept, read straight off the arena
// totals.
//
//subsim:hotpath
func countKept(a *rrset.Arena, sentinel []bool) (sets, nodes int, hits int64) {
	if sentinel == nil {
		return a.Len(), a.NumNodes(), 0
	}
	data, ends := a.Data(), a.Ends()
	start := int64(0)
	for _, end := range ends {
		if end > start && sentinel[data[end-1]] {
			hits++
		} else {
			sets++
			nodes += int(end - start)
		}
		start = end
	}
	return sets, nodes, hits
}

// spliceArena copies the arena's kept sets into dst (exactly the kept
// node ids) and writes their ABSOLUTE exclusive end offsets — base plus
// the local cumulative length — into ends (exactly the kept set count).
// With no sentinel it is one block copy plus the offset rewrite.
//
//subsim:hotpath
func spliceArena(a *rrset.Arena, sentinel []bool, dst []int32, ends []int64, base int64) {
	srcData, srcEnds := a.Data(), a.Ends()
	if sentinel == nil {
		copy(dst, srcData)
		for i, e := range srcEnds {
			ends[i] = base + e
		}
		return
	}
	var nodePos int64
	setPos := 0
	start := int64(0)
	for _, end := range srcEnds {
		if end > start && sentinel[srcData[end-1]] {
			start = end
			continue
		}
		nodePos += int64(copy(dst[nodePos:], srcData[start:end]))
		ends[setPos] = base + nodePos
		setPos++
		start = end
	}
}

// outDegrees extracts the out-degree array used by the Revised-Greedy
// tie-break.
func outDegrees(gen rrset.Generator) []int32 {
	g := gen.Graph()
	deg := make([]int32, g.N())
	for v := range deg {
		deg[v] = int32(g.OutDegree(int32(v)))
	}
	return deg
}

// doublingRounds returns ceil(log2(max/initial)), the iteration budget of
// the doubling schemes.
func doublingRounds(initial, max int64) int {
	if max <= initial {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(max) / float64(initial))))
}
