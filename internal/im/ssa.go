package im

import (
	"math"
	"time"

	"subsim/internal/bounds"
	"subsim/internal/coverage"
	"subsim/internal/obs"
	"subsim/internal/rrset"
)

// SSA is the Stop-and-Stare algorithm of Nguyen et al. (2016) in the
// corrected form of Huang et al. (2017) ("SSA-Fix"): an optimistic
// doubling scheme that, after each greedy selection, *verifies* the seed
// set by estimating its influence on an independent RR stream with the
// stopping-rule estimator of Dagum et al., and accepts once the verified
// estimate is close enough to the coverage-based one.
//
// Parameterisation follows the released SSA code: ε is split evenly into
// ε₁ (selection-vs-verification gap), ε₂ (verification precision) and ε₃
// (coverage concentration), with the per-iteration failure budget spread
// uniformly so the run-level failure probability stays below δ. A budget
// θ_max (the same pessimistic bound OPIM-C uses) caps the doubling so the
// final iteration is unconditionally safe.
func SSA(gen rrset.Generator, opt Options) (*Result, error) {
	start := time.Now() //lint:allow timing (wall-clock Elapsed reporting only)
	g := gen.Graph()
	n := g.N()
	if err := opt.Normalize(n); err != nil {
		return nil, err
	}
	// The ε split follows the released SSA code: a small selection gap,
	// half the budget on verification precision, the rest on coverage
	// concentration.
	eps1 := opt.Eps / 6
	eps2 := opt.Eps / 2
	eps3 := opt.Eps / 3

	thetaWorst := bounds.ThetaMaxOPIMC(n, opt.K, opt.Eps, opt.Delta)
	thetaTight := bounds.ThetaMaxTight(n, opt.K, opt.Eps, opt.Delta)
	thetaMax := thetaWorst
	if opt.Bound == BoundTight && thetaTight < thetaMax {
		thetaMax = thetaTight
	}
	// Λ: initial sample size from the SSA paper (the ln C(n,k) term
	// belongs only in the worst-case cap θ_max, not in the optimistic
	// starting size).
	lambda := int64(math.Ceil((2 + 2*eps3/3) * math.Log(3/opt.Delta) / (eps3 * eps3)))
	if lambda < 1 {
		lambda = 1
	}
	tMax := doublingRounds(lambda, thetaMax)
	deltaIter := opt.Delta / (3 * float64(tMax))
	// Υ: stopping-rule target count for the verification estimator.
	upsilon := int64(math.Ceil(1 + (1+eps2)*(2+2*eps2/3)*math.Log(2/deltaIter)/(eps2*eps2)))

	tr := opt.Tracer
	run := tr.Span("ssa")
	opt.Logger.RunStart("ssa", n, g.M(), opt.K, opt.Eps, opt.Seed, opt.Workers)
	b := NewInstrumentedBatcher(gen, opt.Seed, opt.Workers, tr.Metrics())
	var outDeg []int32
	if opt.Revised {
		outDeg = outDegrees(gen)
	}
	idx := NewEstimator(n, outDeg, opt, tr.Metrics())

	res := &Result{ThetaWorstCase: thetaWorst, ThetaTight: thetaTight}
	tr.Metrics().SetTheta(thetaWorst, thetaTight)
	if opt.Bound == BoundTight && thetaMax < thetaWorst {
		tr.Metrics().AddThetaSaved(thetaWorst - thetaMax)
	}
	theta := lambda
	for t := 1; ; t++ {
		res.Rounds = t
		rs := run.Child(obs.Round(t))
		if add := theta - int64(idx.NumSets()); add > 0 {
			sp := rs.Child("sampling")
			b.Fill(idx, int(add), nil)
			sp.SetInt("theta", add).End()
		}
		ss := rs.Child("selection")
		sel := idx.SelectSeeds(coverage.GreedyOptions{K: opt.K, Revised: opt.Revised})
		ss.End()
		res.Seeds = sel.Seeds
		covEst := float64(n) * float64(sel.TotalCoverage(0)) / float64(idx.NumSets())
		res.Influence = covEst
		rs.SetInt("theta", int64(idx.NumSets()))

		if t >= tMax {
			rs.End()
			break
		}

		// Stare: verify on an independent stream until Υ covers or the
		// budget (twice the selection collection) is exhausted.
		vs := rs.Child("verify")
		verified, used := b.verify(res.Seeds, upsilon, 2*theta)
		vs.SetInt("covered", verified).SetInt("used", used).End()
		crossed := false
		if used > 0 {
			est := float64(verified) * float64(n) / float64(used)
			res.LowerBound = bounds.LowerBound(verified, used, n, deltaIter)
			crossed = verified >= upsilon && est >= covEst/(1+eps1)
			if crossed {
				opt.Logger.BoundCrossed("ssa", t, est, covEst/(1+eps1))
			}
		}
		tr.Metrics().SetBounds(t, res.LowerBound, 0, 0)
		opt.Logger.RoundDone("ssa", t, int64(idx.NumSets()), res.LowerBound, 0, 0)
		if crossed {
			rs.End()
			break
		}
		rs.End()
		theta *= 2
	}
	res.RRStats = b.Stats()
	run.SetInt("rounds", int64(res.Rounds)).End()
	res.Elapsed = time.Since(start) //lint:allow timing (wall-clock Elapsed reporting only)
	opt.Logger.RunDone("ssa", res.Rounds, res.RRStats.Sets, res.Influence, res.Elapsed.Nanoseconds())
	res.Report = tr.Report()
	return res, nil
}

// verify draws RR sets one at a time until `target` of them are covered
// by seeds or `cap` sets have been drawn, returning the covered count and
// the number drawn. It implements the stopping-rule estimator on the
// verification stream, scanning the sets in place in the worker arenas.
func (b *Batcher) verify(seeds []int32, target, cap int64) (covered, used int64) {
	g := b.gens[0].Graph()
	inSeed := make([]bool, g.N())
	for _, s := range seeds {
		inSeed[s] = true
	}
	// Draw in modest batches to amortise parallel dispatch while not
	// overshooting the stopping rule by much.
	batch := int64(256)
	for covered < target && used < cap {
		want := batch
		if used+want > cap {
			want = cap - used
		}
		b.Visit(int(want), nil, func(set []int32) bool {
			used++
			for _, v := range set {
				if inSeed[v] {
					covered++
					break
				}
			}
			return covered < target
		})
		batch *= 2
	}
	return covered, used
}
