package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/rrset"
)

// TestShardedPipelineEquivalence extends the pipeline property test to
// the zero-splice backend: for every generator kind and worker count,
// Batcher.Fill into a Sharded estimator (one shard per worker — the
// FillSharded direct-generation path) must yield the same set count,
// identical merged generator stats, and byte-identical seeds and
// certified Λᵘ as the workers=1 exact FillIndex reference. A mismatched
// shard count (generic absorb fallback) must change nothing either.
func TestShardedPipelineEquivalence(t *testing.T) {
	const (
		count = 1500
		k     = 8
		seed  = 77
	)
	for _, c := range equivCases(t) {
		t.Run(c.name, func(t *testing.T) {
			refGen := c.gen()
			n := refGen.Graph().N()
			refB := NewBatcher(refGen, seed, 1)
			refIdx := coverage.NewIndex(n, nil)
			refB.FillIndex(refIdx, count, nil)
			refStats := refB.Stats()
			refSel := refIdx.SelectSeeds(coverage.GreedyOptions{K: k})

			check := func(t *testing.T, b *Batcher, sh *coverage.Sharded, workers int) {
				t.Helper()
				if hits := b.Fill(sh, count, nil); hits != 0 {
					t.Fatalf("workers=%d: unexpected sentinel hits %d", workers, hits)
				}
				if sh.NumSets() != refIdx.NumSets() {
					t.Fatalf("workers=%d: %d sets, want %d", workers, sh.NumSets(), refIdx.NumSets())
				}
				if s := b.Stats(); s != refStats {
					t.Fatalf("workers=%d: stats %+v, want %+v", workers, s, refStats)
				}
				sel := sh.SelectSeeds(coverage.GreedyOptions{K: k})
				if len(sel.Seeds) != len(refSel.Seeds) {
					t.Fatalf("workers=%d: %d seeds, want %d", workers, len(sel.Seeds), len(refSel.Seeds))
				}
				for i := range sel.Seeds {
					if sel.Seeds[i] != refSel.Seeds[i] || sel.Coverage[i] != refSel.Coverage[i] {
						t.Fatalf("workers=%d: pick %d = (%d,%d), want (%d,%d)", workers, i,
							sel.Seeds[i], sel.Coverage[i], refSel.Seeds[i], refSel.Coverage[i])
					}
				}
				if sel.CoverageUpper != refSel.CoverageUpper {
					t.Fatalf("workers=%d: Λᵘ %d, want %d", workers, sel.CoverageUpper, refSel.CoverageUpper)
				}
			}

			for _, workers := range []int{1, 2, 8} {
				// Matched shard count: the zero-splice FillSharded path.
				b := NewBatcher(c.gen(), seed, workers)
				sh := coverage.NewSharded(n, nil, workers)
				sh.SetWorkers(workers)
				check(t, b, sh, workers)
			}
			// Mismatched shard count: generic AbsorbArena fallback, still
			// identical (any partition sums to the same coverage).
			b := NewBatcher(c.gen(), seed, 2)
			sh := coverage.NewSharded(n, nil, 5)
			sh.SetWorkers(2)
			check(t, b, sh, 2)
		})
	}
}

// TestShardedCertifiedBoundsWorkerIndependent is the algorithm-level pin
// of the tentpole invariant: a full OPIM-C run (doubling loop, Eq. 1/2
// certification) on the sharded backend must be bit-identical to the
// exact backend's workers=1 run — seeds, influence, both certified
// bounds, and merged RR stats — at every worker count.
func TestShardedCertifiedBoundsWorkerIndependent(t *testing.T) {
	g := estimatorTestGraph(t)
	ref := runWith(t, g, coverage.EstimatorExact, BoundIMM, 1)
	if ref.LowerBound <= 0 || ref.UpperBound <= 0 {
		t.Fatalf("reference run certified no bounds: %+v", ref)
	}
	for _, workers := range []int{1, 2, 8} {
		res := runWith(t, g, coverage.EstimatorSharded, BoundIMM, workers)
		if len(res.Seeds) != len(ref.Seeds) {
			t.Fatalf("workers=%d: %d seeds, want %d", workers, len(res.Seeds), len(ref.Seeds))
		}
		for i := range res.Seeds {
			if res.Seeds[i] != ref.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, res.Seeds[i], ref.Seeds[i])
			}
		}
		if res.Influence != ref.Influence ||
			res.LowerBound != ref.LowerBound || res.UpperBound != ref.UpperBound {
			t.Fatalf("workers=%d: results diverged from the exact path: %+v vs %+v", workers, res, ref)
		}
		if res.RRStats != ref.RRStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, res.RRStats, ref.RRStats)
		}
	}
}

// TestShardedSentinelHits drives the in-place DropLast discard of the
// zero-splice path against the splice path's filtering: same sentinel
// set, same hit counts, same surviving collection, same selection —
// with the sentinel hits also visible in the generator stats.
func TestShardedSentinelHits(t *testing.T) {
	const (
		count = 2000
		k     = 6
		seed  = 19
	)
	g := estimatorTestGraph(t)
	sentinel := make([]bool, g.N())
	// Hub nodes make good sentinels: plenty of traversals hit them.
	for v := 0; v < 20; v++ {
		sentinel[v] = true
	}

	refB := NewBatcher(rrset.NewSubsim(g), seed, 1)
	refIdx := coverage.NewIndex(g.N(), nil)
	refHits := refB.FillIndex(refIdx, count, sentinel)
	if refHits == 0 {
		t.Fatal("reference run hit no sentinels; test graph/sentinel choice is broken")
	}
	refSel := refIdx.SelectSeeds(coverage.GreedyOptions{K: k})

	for _, workers := range []int{1, 2, 8} {
		b := NewBatcher(rrset.NewSubsim(g), seed, workers)
		sh := coverage.NewSharded(g.N(), nil, workers)
		sh.SetWorkers(workers)
		hits := b.Fill(sh, count, sentinel)
		if hits != refHits {
			t.Fatalf("workers=%d: %d sentinel hits, want %d", workers, hits, refHits)
		}
		if sh.NumSets() != refIdx.NumSets() {
			t.Fatalf("workers=%d: %d surviving sets, want %d", workers, sh.NumSets(), refIdx.NumSets())
		}
		if s := b.Stats(); s.SentinelHits != refHits {
			t.Fatalf("workers=%d: stats count %d sentinel hits, want %d", workers, s.SentinelHits, refHits)
		}
		sel := sh.SelectSeeds(coverage.GreedyOptions{K: k})
		for i := range refSel.Seeds {
			if sel.Seeds[i] != refSel.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, sel.Seeds[i], refSel.Seeds[i])
			}
		}
		if sel.CoverageUpper != refSel.CoverageUpper {
			t.Fatalf("workers=%d: Λᵘ %d, want %d", workers, sel.CoverageUpper, refSel.CoverageUpper)
		}
	}
}

// TestShardedFillAmortizedAllocs is the sharded twin of the FillIndex
// allocation gate: at steady state the zero-splice generate→index→select
// round must average well under one allocation per RR set — there is no
// splice buffer left to even amortise.
func TestShardedFillAmortizedAllocs(t *testing.T) {
	g := allocGraph(t)
	b := NewBatcher(rrset.NewSubsim(g), 42, 1)
	sh := coverage.NewSharded(g.N(), nil, 1)
	// Warm up the shard arena, CSR double buffers, and selection scratch.
	b.Fill(sh, 600, nil)
	sh.Degree(0)
	sh.SelectSeeds(coverage.GreedyOptions{K: 10})
	b.Fill(sh, 600, nil)
	sh.Degree(0)
	allocs := testing.AllocsPerRun(20, func() {
		b.Fill(sh, 200, nil)
		sh.Degree(0) // force the per-shard delta CSR rebuild
	})
	const maxAllocs = 25 // 200 sets/run → ≤0.125 allocs/set
	if allocs > maxAllocs {
		t.Errorf("sharded Fill(200)+rebuild allocated %.1f objects/run, want <= %d", allocs, maxAllocs)
	}
	selAllocs := testing.AllocsPerRun(20, func() {
		sh.SelectSeeds(coverage.GreedyOptions{K: 10})
	})
	if selAllocs > 3 { // Seeds + Coverage are the only per-call allocations
		t.Errorf("sharded SelectSeeds allocated %.1f objects/run warm, want <= 3", selAllocs)
	}
}

// TestShardedConcurrentFill exercises the multi-shard FillSharded path
// (one goroutine per shard writing its own arena) repeatedly so `go test
// -race` covers the handoff, and re-checks set accounting.
func TestShardedConcurrentFill(t *testing.T) {
	g := allocGraph(t)
	b := NewBatcher(rrset.NewSubsim(g), 7, 8)
	sh := coverage.NewSharded(g.N(), nil, 8)
	sh.SetWorkers(8)
	for round := 0; round < 4; round++ {
		b.Fill(sh, 1000, nil)
		if got := sh.NumSets(); got != 1000*(round+1) {
			t.Fatalf("round %d: %d sets, want %d", round, got, 1000*(round+1))
		}
		// Query between rounds so rebuilds interleave with fills.
		sh.Degree(int32(round))
	}
	if s := b.Stats(); s.Sets != 4000 {
		t.Fatalf("merged stats count %d sets, want 4000", s.Sets)
	}
}

// TestBatcherReserveColdStart is the white-box pin of the cold-start
// reservation: on a batcher whose generators have produced nothing, the
// first reserve must pre-size the arena from the graph's average degree
// (coldNodes), not from the zero observed average — reserving zero nodes
// would eat log2(batch) reallocations on the very first fill.
func TestBatcherReserveColdStart(t *testing.T) {
	g := estimatorTestGraph(t) // PA 1000x5: avg degree ~5 → coldNodes 6
	b := NewBatcher(rrset.NewSubsim(g), 1, 2)
	if b.coldNodes < 2 || b.coldNodes > 64 {
		t.Fatalf("coldNodes = %d outside its [2,64] clamp", b.coldNodes)
	}
	if want := int(g.AvgDegree()) + 1; b.coldNodes != want {
		t.Fatalf("coldNodes = %d, want AvgDegree+1 = %d", b.coldNodes, want)
	}

	const cnt = 100
	a := rrset.NewArena(0, 0)
	b.reserve(a, 0, cnt)
	if got := cap(a.Data()); got < cnt*b.coldNodes {
		t.Errorf("cold reserve gave %d node capacity, want >= cnt*coldNodes = %d", got, cnt*b.coldNodes)
	}
	if got := cap(a.Ends()); got < cnt {
		t.Errorf("cold reserve gave %d set slots, want >= %d", got, cnt)
	}

	// Warm path: after real sets exist the reservation follows the
	// observed average (1.25× headroom), not coldNodes.
	b.Visit(200, nil, func([]int32) bool { return true })
	s := b.gens[0].Stats()
	if s.Sets == 0 {
		t.Fatal("warmup generated nothing through worker 0")
	}
	w := rrset.NewArena(0, 0)
	b.reserve(w, 0, cnt)
	if want := int(s.AvgSize()*float64(cnt)*1.25) + cnt; cap(w.Data()) < want {
		t.Errorf("warm reserve gave %d node capacity, want >= %d (avg-size driven)", cap(w.Data()), want)
	}

	// Graph-less generators (nil Graph) still get the floor of 2.
	if got := NewBatcher(nilGraphGen{}, 1, 1).coldNodes; got != 2 {
		t.Errorf("nil-graph coldNodes = %d, want 2", got)
	}
}

// nilGraphGen is a Generator stub with no graph, for the cold-start
// fallback check; only Graph(), Stats() and Clone() are ever called on
// it (the embedded nil Generator panics on anything else).
type nilGraphGen struct{ rrset.Generator }

func (nilGraphGen) Graph() *graph.Graph    { return nil }
func (nilGraphGen) Stats() rrset.Stats     { return rrset.Stats{} }
func (nilGraphGen) Clone() rrset.Generator { return nilGraphGen{} }
