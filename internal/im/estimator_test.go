package im

import (
	"math"
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// TestFillDispatchesExact pins the estimator seam: Batcher.Fill with an
// exact *coverage.Index must be byte-identical to the historic FillIndex
// path — same CSR state, same seeds, same bounds — for every generator
// kind and worker count.
func TestFillDispatchesExact(t *testing.T) {
	const (
		count = 1200
		k     = 8
		seed  = 77
	)
	for _, c := range equivCases(t) {
		t.Run(c.name, func(t *testing.T) {
			refGen := c.gen()
			n := refGen.Graph().N()
			refB := NewBatcher(refGen, seed, 1)
			refIdx := coverage.NewIndex(n, nil)
			refB.FillIndex(refIdx, count, nil)
			refSel := refIdx.SelectSeeds(coverage.GreedyOptions{K: k})
			for _, workers := range []int{1, 2, 8} {
				b := NewBatcher(c.gen(), seed, workers)
				idx := coverage.NewIndex(n, nil)
				idx.SetWorkers(workers)
				var est coverage.Estimator = idx
				if hits := b.Fill(est, count, nil); hits != 0 {
					t.Fatalf("workers=%d: unexpected sentinel hits %d", workers, hits)
				}
				if est.Kind() != coverage.EstimatorExact {
					t.Fatalf("workers=%d: exact index reports kind %v", workers, est.Kind())
				}
				sel := est.SelectSeeds(coverage.GreedyOptions{K: k})
				if len(sel.Seeds) != len(refSel.Seeds) {
					t.Fatalf("workers=%d: %d seeds, want %d", workers, len(sel.Seeds), len(refSel.Seeds))
				}
				for i := range sel.Seeds {
					if sel.Seeds[i] != refSel.Seeds[i] {
						t.Fatalf("workers=%d: seed %d is %d, want %d",
							workers, i, sel.Seeds[i], refSel.Seeds[i])
					}
				}
				if sel.TotalCoverage(0) != refSel.TotalCoverage(0) || sel.CoverageUpper != refSel.CoverageUpper {
					t.Fatalf("workers=%d: coverage %d/%d, want %d/%d", workers,
						sel.TotalCoverage(0), sel.CoverageUpper,
						refSel.TotalCoverage(0), refSel.CoverageUpper)
				}
			}
		})
	}
}

// estimatorTestGraph builds the property-test graph shared by the
// backend-accuracy tests.
func estimatorTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenPreferentialAttachment(1000, 5, false, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	return g
}

// runWith runs OPIM-C with the given estimator/bound configuration.
func runWith(t *testing.T, g *graph.Graph, kind coverage.EstimatorKind, bound BoundKind, workers int) *Result {
	t.Helper()
	res, err := OPIMC(rrset.NewSubsim(g), Options{
		K: 10, Eps: 0.3, Seed: 13, Workers: workers, Estimator: kind, Bound: bound,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExactBackendUnchangedByOptions proves threading the estimator
// options through leaves the default exact path bit-identical: an
// explicit Estimator: EstimatorExact run matches the zero-value Options
// run exactly, at every worker count.
func TestExactBackendUnchangedByOptions(t *testing.T) {
	g := estimatorTestGraph(t)
	ref, err := OPIMC(rrset.NewSubsim(g), Options{K: 10, Eps: 0.3, Seed: 13, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		res := runWith(t, g, coverage.EstimatorExact, BoundIMM, workers)
		if len(res.Seeds) != len(ref.Seeds) {
			t.Fatalf("workers=%d: %d seeds, want %d", workers, len(res.Seeds), len(ref.Seeds))
		}
		for i := range res.Seeds {
			if res.Seeds[i] != ref.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, res.Seeds[i], ref.Seeds[i])
			}
		}
		if res.Influence != ref.Influence ||
			res.LowerBound != ref.LowerBound || res.UpperBound != ref.UpperBound {
			t.Fatalf("workers=%d: results diverged from the seed path: %+v vs %+v", workers, res, ref)
		}
		if res.RRStats != ref.RRStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, res.RRStats, ref.RRStats)
		}
	}
}

// TestSketchBackendAccuracy is the ε-accuracy property test of the HLL
// backend: across worker counts the sketch run must be worker-
// independent, and its influence estimate must land within the sketch's
// certified relative error (with 4σ slack) of the exact backend's.
func TestSketchBackendAccuracy(t *testing.T) {
	g := estimatorTestGraph(t)
	exact := runWith(t, g, coverage.EstimatorExact, BoundIMM, 1)
	relErr := coverage.NewHLL(1, nil, 0).RelError()

	ref := runWith(t, g, coverage.EstimatorHLL, BoundIMM, 1)
	if tol := 4 * relErr * exact.Influence; math.Abs(ref.Influence-exact.Influence) > tol+3 {
		t.Fatalf("sketch influence %v vs exact %v exceeds tolerance %v",
			ref.Influence, exact.Influence, tol)
	}
	if ref.LowerBound <= 0 || ref.UpperBound < ref.LowerBound {
		t.Fatalf("sketch run certified nonsense bounds: %+v", ref)
	}
	for _, workers := range []int{2, 8} {
		res := runWith(t, g, coverage.EstimatorHLL, BoundIMM, workers)
		if len(res.Seeds) != len(ref.Seeds) {
			t.Fatalf("workers=%d: %d seeds, want %d", workers, len(res.Seeds), len(ref.Seeds))
		}
		for i := range res.Seeds {
			if res.Seeds[i] != ref.Seeds[i] {
				t.Fatalf("workers=%d: seed %d is %d, want %d", workers, i, res.Seeds[i], ref.Seeds[i])
			}
		}
		if res.Influence != ref.Influence {
			t.Fatalf("workers=%d: influence %v, want %v", workers, res.Influence, ref.Influence)
		}
	}
}

// TestTightBoundSavesSamples runs the standard configuration under both
// analyses: the tightened run must report θ_tight ≤ θ_worst, stay a
// valid certified result, and both θs must be visible in the result.
func TestTightBoundSavesSamples(t *testing.T) {
	g := estimatorTestGraph(t)
	worst := runWith(t, g, coverage.EstimatorExact, BoundIMM, 1)
	tight := runWith(t, g, coverage.EstimatorExact, BoundTight, 1)
	for name, res := range map[string]*Result{"worst": worst, "tight": tight} {
		if res.ThetaWorstCase < 1 || res.ThetaTight < 1 {
			t.Fatalf("%s run did not report both budgets: %+v", name, res)
		}
		if res.ThetaTight > res.ThetaWorstCase {
			t.Fatalf("%s run: tightened θ %d exceeds worst-case %d",
				name, res.ThetaTight, res.ThetaWorstCase)
		}
	}
	if tight.LowerBound <= 0 || tight.Approx <= 0 {
		t.Fatalf("tightened run certified no bounds: %+v", tight)
	}
	// The tightened budget must never make the run draw more samples.
	if tight.RRStats.Sets > worst.RRStats.Sets {
		t.Fatalf("tightened run drew more RR sets (%d) than worst-case (%d)",
			tight.RRStats.Sets, worst.RRStats.Sets)
	}
}

// TestAlgorithmsRunWithSketch smokes every algorithm chassis against the
// HLL backend and the tightened bound: valid seeds, sane influence, and
// both reported budgets ordered.
func TestAlgorithmsRunWithSketch(t *testing.T) {
	g := estimatorTestGraph(t)
	opt := Options{K: 5, Eps: 0.35, Seed: 7, Workers: 2,
		Estimator: coverage.EstimatorHLL, Bound: BoundTight}
	algs := map[string]func(rrset.Generator, Options) (*Result, error){
		"opimc": OPIMC, "imm": IMM, "ssa": SSA, "timplus": TIMPlus,
	}
	for name, run := range algs {
		t.Run(name, func(t *testing.T) {
			res, err := run(rrset.NewSubsim(g), opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Seeds) != opt.K {
				t.Fatalf("%d seeds, want %d", len(res.Seeds), opt.K)
			}
			if res.Influence <= 0 || res.Influence > float64(g.N()) {
				t.Fatalf("influence %v out of range", res.Influence)
			}
			if res.ThetaWorstCase < 1 || res.ThetaTight < 1 || res.ThetaTight > res.ThetaWorstCase {
				t.Fatalf("budgets not reported/ordered: worst %d tight %d",
					res.ThetaWorstCase, res.ThetaTight)
			}
		})
	}
}
