package im

import (
	"container/heap"
	"fmt"
	"time"

	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/rng"
)

// GreedyMCOptions configures the forward-Monte-Carlo greedy baseline.
type GreedyMCOptions struct {
	// K is the seed-set size.
	K int
	// Samples is the number of forward simulations per influence
	// estimate.
	Samples int
	// Seed seeds the simulation randomness.
	Seed uint64
	// Model selects IC or LT.
	Model diffusion.Model
}

// GreedyMC is the original hill-climbing algorithm of Kempe et al. (2003)
// with CELF lazy evaluation (Leskovec et al. 2007): in each round the
// node with the largest estimated marginal influence gain is added, where
// gains are estimated by forward Monte-Carlo simulation. It is far too
// slow for real graphs — the reason the RR-set line of work exists — but
// on the tiny graphs of the test suite it converges to near-optimal seed
// sets and serves as ground truth for the sampling-based algorithms.
func GreedyMC(g *graph.Graph, opt GreedyMCOptions) (*Result, error) {
	start := time.Now() //lint:allow timing (wall-clock Elapsed reporting only)
	n := g.N()
	if opt.K < 1 || opt.K > n {
		return nil, fmt.Errorf("im: k=%d outside [1,%d]", opt.K, n)
	}
	if opt.Samples < 1 {
		opt.Samples = 1000
	}
	r := rng.New(opt.Seed)
	est := diffusion.NewEstimator(g)

	h := &mcHeap{}
	for v := 0; v < n; v++ {
		seeds := []int32{int32(v)}
		gain := est.Estimate(r, seeds, opt.Samples, opt.Model)
		h.entries = append(h.entries, mcEntry{gain: gain, node: int32(v), iter: 0})
	}
	heap.Init(h)

	res := &Result{}
	seeds := make([]int32, 0, opt.K)
	base := 0.0
	for round := int32(1); int(round) <= opt.K && h.Len() > 0; round++ {
		var pick mcEntry
		for {
			pick = heap.Pop(h).(mcEntry)
			if pick.iter == round-1 {
				break
			}
			pick.gain = est.Estimate(r, append(seeds, pick.node), opt.Samples, opt.Model) - base
			pick.iter = round - 1
			heap.Push(h, pick)
		}
		seeds = append(seeds, pick.node)
		base += pick.gain
	}
	res.Seeds = seeds
	res.Influence = est.Estimate(r, seeds, opt.Samples, opt.Model)
	res.Rounds = opt.K
	res.Elapsed = time.Since(start) //lint:allow timing (wall-clock Elapsed reporting only)
	return res, nil
}

type mcEntry struct {
	gain float64
	node int32
	iter int32
}

type mcHeap struct{ entries []mcEntry }

func (h *mcHeap) Len() int { return len(h.entries) }
func (h *mcHeap) Less(i, j int) bool {
	if h.entries[i].gain != h.entries[j].gain {
		return h.entries[i].gain > h.entries[j].gain
	}
	return h.entries[i].node < h.entries[j].node
}
func (h *mcHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mcHeap) Push(v any)    { h.entries = append(h.entries, v.(mcEntry)) }
func (h *mcHeap) Pop() any {
	old := h.entries
	n := len(old)
	v := old[n-1]
	h.entries = old[:n-1]
	return v
}
