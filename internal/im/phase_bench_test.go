package im

import (
	"testing"

	"subsim/internal/coverage"
	"subsim/internal/rrset"
)

// benchSplice isolates the arena→store splice of FillIndex: the worker
// arenas are filled once, then each iteration counts, reserves and
// copies them into a fresh index store — exactly the work the parallel
// splice replaced the serial per-set Add loop with. Scaling across the
// W variants shows the splice speedup alone; absolute numbers depend on
// the host's core count (W>1 cannot beat W1 on a single-core machine).
func benchSplice(b *testing.B, workers, setsPer int) {
	b.Helper()
	g := benchGraph(b, 5000, 40000)
	batch := NewBatcher(rrset.NewSubsim(g), 42, workers)
	used := batch.fillArenas(setsPer, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := coverage.NewIndex(g.N(), nil)
		batch.splice(idx, used, nil)
	}
	b.ReportMetric(float64(setsPer), "sets/op")
}

func BenchmarkSplice_W1(b *testing.B) { benchSplice(b, 1, 2000) }
func BenchmarkSplice_W4(b *testing.B) { benchSplice(b, 4, 2000) }
func BenchmarkSplice_W8(b *testing.B) { benchSplice(b, 8, 2000) }
