package diffusion

import (
	"math"
	"runtime"
	"sync"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

// Interval is a Monte-Carlo influence estimate with a normal-theory
// confidence interval.
type Interval struct {
	// Mean is the sample mean of the activation counts.
	Mean float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Lo and Hi bound the expected influence at the requested confidence
	// level (clamped to [0, n]).
	Lo, Hi float64
	// Samples is the number of simulations used.
	Samples int
}

// zFor maps a two-sided confidence level to the normal quantile; it
// covers the levels experiments actually use and falls back to 3σ
// (99.7%) for anything else.
func zFor(confidence float64) float64 {
	switch {
	case confidence <= 0.90:
		return 1.6449
	case confidence <= 0.95:
		return 1.9600
	case confidence <= 0.99:
		return 2.5758
	default:
		return 3
	}
}

// EstimateInterval runs `samples` forward simulations in parallel and
// returns the mean activation count with a `confidence`-level normal
// interval. The interval reflects Monte-Carlo error only (the estimator
// is unbiased); for certified bounds use the RR-based oracle instead.
//
//subsim:parallel
func EstimateInterval(g *graph.Graph, seeds []int32, samples int, model Model, confidence float64, seed uint64, workers int) Interval {
	if samples <= 0 {
		return Interval{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > samples {
		workers = samples
	}
	sums := make([]float64, workers)
	sumSqs := make([]float64, workers)
	base := rng.New(seed)
	sources := make([]*rng.Source, workers)
	for w := range sources {
		sources[w] = base.Split()
	}
	var wg sync.WaitGroup
	per := samples / workers
	extra := samples % workers
	for w := 0; w < workers; w++ {
		cnt := per
		if w < extra {
			cnt++
		}
		wg.Add(1)
		go func(w, cnt int) {
			defer wg.Done()
			est := NewEstimator(g)
			r := sources[w]
			var s, sq float64
			for i := 0; i < cnt; i++ {
				var v float64
				if model == LTModel {
					v = float64(est.SimulateLT(r, seeds))
				} else {
					v = float64(est.SimulateIC(r, seeds))
				}
				s += v
				sq += v * v
			}
			sums[w] = s
			sumSqs[w] = sq
		}(w, cnt)
	}
	wg.Wait()
	var sum, sumSq float64
	for w := 0; w < workers; w++ {
		sum += sums[w]
		sumSq += sumSqs[w]
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / float64(samples))
	z := zFor(confidence)
	lo, hi := mean-z*se, mean+z*se
	if lo < 0 {
		lo = 0
	}
	if n := float64(g.N()); hi > n {
		hi = n
	}
	return Interval{Mean: mean, StdErr: se, Lo: lo, Hi: hi, Samples: samples}
}
