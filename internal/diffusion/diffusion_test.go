package diffusion

import (
	"math"
	"testing"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

func TestICStarClosedForm(t *testing.T) {
	// Star with centre 0: I({0}) = 1 + (n-1)p.
	const n, p = 50, 0.3
	g := graph.GenStar(n, p)
	e := NewEstimator(g)
	r := rng.New(1)
	got := e.Estimate(r, []int32{0}, 100000, IC)
	want := 1 + float64(n-1)*p
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("star influence %v, want %v", got, want)
	}
}

func TestICLineClosedForm(t *testing.T) {
	// Line from node 0: I({0}) = Σ_{i=0}^{n-1} p^i.
	const n, p = 10, 0.5
	g := graph.GenLine(n, p)
	e := NewEstimator(g)
	r := rng.New(2)
	got := e.Estimate(r, []int32{0}, 200000, IC)
	want := 0.0
	for i := 0; i < n; i++ {
		want += math.Pow(p, float64(i))
	}
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("line influence %v, want %v", got, want)
	}
}

func TestICDeterministicExtremes(t *testing.T) {
	g := graph.GenComplete(20, 1)
	e := NewEstimator(g)
	r := rng.New(3)
	if got := e.Estimate(r, []int32{5}, 10, IC); got != 20 {
		t.Fatalf("p=1 complete graph influence %v", got)
	}
	g0 := graph.GenComplete(20, 0)
	e0 := NewEstimator(g0)
	if got := e0.Estimate(r, []int32{1, 2, 3}, 10, IC); got != 3 {
		t.Fatalf("p=0 influence %v", got)
	}
}

func TestSeedsDeduplicated(t *testing.T) {
	g := graph.GenComplete(5, 0)
	e := NewEstimator(g)
	r := rng.New(4)
	if got := e.SimulateIC(r, []int32{2, 2, 2}); got != 1 {
		t.Fatalf("duplicate seeds counted: %d", got)
	}
}

func TestEstimateZeroSamples(t *testing.T) {
	g := graph.GenLine(3, 1)
	e := NewEstimator(g)
	if e.Estimate(rng.New(5), []int32{0}, 0, IC) != 0 {
		t.Fatal("zero samples should return 0")
	}
	if EstimateParallel(g, []int32{0}, 0, IC, 1, 2) != 0 {
		t.Fatal("zero samples should return 0")
	}
}

func TestLTLineDeterministic(t *testing.T) {
	// LT on a line with WC weights: each edge weight is 1, so every
	// threshold is met and the cascade reaches the end.
	const n = 15
	g := graph.GenLine(n, 0)
	g.AssignLT()
	e := NewEstimator(g)
	r := rng.New(6)
	if got := e.Estimate(r, []int32{0}, 50, LTModel); got != n {
		t.Fatalf("LT line influence %v, want %d", got, n)
	}
}

func TestLTHalfWeight(t *testing.T) {
	// Single edge of weight 0.5: the target activates iff λ <= 0.5.
	b := graph.NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	e := NewEstimator(g)
	r := rng.New(7)
	got := e.Estimate(r, []int32{0}, 200000, LTModel)
	if math.Abs(got-1.5) > 0.01 {
		t.Fatalf("LT single-edge influence %v, want 1.5", got)
	}
}

func TestLTThresholdAccumulates(t *testing.T) {
	// Two in-neighbors at weight 0.5 each, both seeded: the target's
	// accumulated weight is 1 ≥ any threshold, so it always activates.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	e := NewEstimator(g)
	r := rng.New(8)
	if got := e.Estimate(r, []int32{0, 1}, 1000, LTModel); got != 3 {
		t.Fatalf("LT accumulation influence %v, want 3", got)
	}
}

func TestLTScratchResetBetweenRuns(t *testing.T) {
	// Repeated simulations must not leak accumulated weights: with one
	// seed, node 2 activates iff λ2 <= 0.5, forever (not increasingly
	// often).
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	e := NewEstimator(g)
	r := rng.New(9)
	got := e.Estimate(r, []int32{0}, 200000, LTModel)
	if math.Abs(got-1.5) > 0.01 {
		t.Fatalf("accW leak: influence %v, want 1.5", got)
	}
}

func TestParallelMatchesSerialStatistically(t *testing.T) {
	r := rng.New(10)
	g, err := graph.GenErdosRenyi(100, 800, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	seeds := []int32{1, 2, 3}
	serial := NewEstimator(g).Estimate(rng.New(11), seeds, 40000, IC)
	par := EstimateParallel(g, seeds, 40000, IC, 12, 4)
	if math.Abs(serial-par) > 0.05*serial+0.5 {
		t.Fatalf("serial %v vs parallel %v", serial, par)
	}
}

func TestParallelDeterminism(t *testing.T) {
	r := rng.New(13)
	g, err := graph.GenErdosRenyi(60, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	a := EstimateParallel(g, []int32{5}, 10000, IC, 99, 3)
	b := EstimateParallel(g, []int32{5}, 10000, IC, 99, 3)
	if a != b {
		t.Fatalf("parallel estimate not deterministic: %v vs %v", a, b)
	}
}

func TestParallelWorkerClamping(t *testing.T) {
	g := graph.GenLine(4, 1)
	// More workers than samples must not deadlock or panic.
	got := EstimateParallel(g, []int32{0}, 3, IC, 1, 16)
	if got != 4 {
		t.Fatalf("influence %v, want 4", got)
	}
	// workers <= 0 defaults to GOMAXPROCS.
	if EstimateParallel(g, []int32{0}, 10, IC, 1, 0) != 4 {
		t.Fatal("default workers failed")
	}
}

func TestEstimateIntervalBracketsClosedForm(t *testing.T) {
	const n, p = 40, 0.3
	g := graph.GenStar(n, p)
	want := 1 + float64(n-1)*p
	iv := EstimateInterval(g, []int32{0}, 60000, IC, 0.99, 3, 2)
	if iv.Samples != 60000 {
		t.Fatalf("samples %d", iv.Samples)
	}
	if iv.Lo > want || iv.Hi < want {
		t.Fatalf("interval [%v,%v] excludes %v", iv.Lo, iv.Hi, want)
	}
	if iv.Lo > iv.Mean || iv.Hi < iv.Mean {
		t.Fatal("interval excludes its own mean")
	}
	if iv.StdErr <= 0 {
		t.Fatal("zero standard error on a stochastic process")
	}
}

func TestEstimateIntervalDeterministicProcess(t *testing.T) {
	g := graph.GenLine(5, 1)
	iv := EstimateInterval(g, []int32{0}, 100, IC, 0.95, 1, 2)
	if iv.Mean != 5 || iv.StdErr != 0 || iv.Lo != 5 || iv.Hi != 5 {
		t.Fatalf("deterministic interval %+v", iv)
	}
}

func TestEstimateIntervalClamps(t *testing.T) {
	if iv := EstimateInterval(graph.GenLine(3, 1), nil, 0, IC, 0.95, 1, 1); iv.Samples != 0 {
		t.Fatal("zero samples should return zero interval")
	}
	// Confidence levels map to increasing z.
	if zFor(0.5) >= zFor(0.95) || zFor(0.95) >= zFor(0.999) {
		t.Fatal("z quantiles not increasing")
	}
}
