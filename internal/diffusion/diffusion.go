// Package diffusion implements forward Monte-Carlo simulation of the
// Independent Cascade and Linear Threshold processes. It is the ground
// truth the experiments use to score returned seed sets (Figure 5
// reports these estimates), independent of the RR-set machinery being
// evaluated.
package diffusion

import (
	"runtime"
	"sync"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

// Estimator runs forward cascade simulations over a fixed graph. It
// carries reusable scratch buffers and is not safe for concurrent use;
// EstimateICParallel spawns one Estimator per worker.
type Estimator struct {
	g       *graph.Graph
	active  []uint32
	epoch   uint32
	queue   []int32
	accW    []float64 // LT: activated incoming weight accumulated so far
	thresh  []float64 // LT: lazily drawn thresholds
	touched []int32   // LT: nodes whose accW/thresh were written this run
}

// NewEstimator returns an Estimator over g.
func NewEstimator(g *graph.Graph) *Estimator {
	return &Estimator{
		g:      g,
		active: make([]uint32, g.N()),
		queue:  make([]int32, 0, 1024),
	}
}

func (e *Estimator) begin() {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.active {
			e.active[i] = 0
		}
		e.epoch = 1
	}
	e.queue = e.queue[:0]
}

// SimulateIC runs one Independent Cascade from the seed set and returns
// the number of activated nodes.
func (e *Estimator) SimulateIC(r *rng.Source, seeds []int32) int {
	e.begin()
	count := 0
	for _, s := range seeds {
		if e.active[s] == e.epoch {
			continue
		}
		e.active[s] = e.epoch
		e.queue = append(e.queue, s)
		count++
	}
	for qi := 0; qi < len(e.queue); qi++ {
		u := e.queue[qi]
		targets, probs := e.g.OutNeighbors(u)
		for i, v := range targets {
			if e.active[v] == e.epoch || !r.Bernoulli(probs[i]) {
				continue
			}
			e.active[v] = e.epoch
			e.queue = append(e.queue, v)
			count++
		}
	}
	return count
}

// SimulateLT runs one Linear Threshold cascade from the seed set and
// returns the number of activated nodes. Thresholds λ_v ~ U[0,1] are
// drawn lazily the first time a node's in-weight accumulates, and a node
// activates once its active incoming weight reaches its threshold.
func (e *Estimator) SimulateLT(r *rng.Source, seeds []int32) int {
	if e.accW == nil {
		e.accW = make([]float64, e.g.N())
		e.thresh = make([]float64, e.g.N())
	}
	e.begin()
	for _, v := range e.touched {
		e.accW[v] = 0
		e.thresh[v] = 0
	}
	e.touched = e.touched[:0]

	count := 0
	for _, s := range seeds {
		if e.active[s] == e.epoch {
			continue
		}
		e.active[s] = e.epoch
		e.queue = append(e.queue, s)
		count++
	}
	for qi := 0; qi < len(e.queue); qi++ {
		u := e.queue[qi]
		targets, probs := e.g.OutNeighbors(u)
		for i, v := range targets {
			if e.active[v] == e.epoch {
				continue
			}
			if e.thresh[v] == 0 {
				e.thresh[v] = r.OpenFloat64()
				e.touched = append(e.touched, v)
			}
			e.accW[v] += probs[i]
			if e.accW[v] >= e.thresh[v] {
				e.active[v] = e.epoch
				e.queue = append(e.queue, v)
				count++
			}
		}
	}
	return count
}

// Model selects a cascade process for estimation.
type Model int

const (
	// IC is the Independent Cascade model.
	IC Model = iota
	// LTModel is the Linear Threshold model.
	LTModel
)

// Estimate runs `samples` forward simulations and returns the average
// activation count, an unbiased estimate of the expected influence of
// the seed set.
func (e *Estimator) Estimate(r *rng.Source, seeds []int32, samples int, model Model) float64 {
	if samples <= 0 {
		return 0
	}
	var total int64
	for i := 0; i < samples; i++ {
		switch model {
		case LTModel:
			total += int64(e.SimulateLT(r, seeds))
		default:
			total += int64(e.SimulateIC(r, seeds))
		}
	}
	return float64(total) / float64(samples)
}

// EstimateParallel distributes `samples` simulations over `workers`
// goroutines (defaulting to GOMAXPROCS when workers <= 0), each with an
// independent RNG stream split from seed, and returns the average
// activation count. The result is deterministic for fixed seed, workers
// and samples.
//
//subsim:parallel
func EstimateParallel(g *graph.Graph, seeds []int32, samples int, model Model, seed uint64, workers int) float64 {
	if samples <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > samples {
		workers = samples
	}
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	base := rng.New(seed)
	sources := make([]*rng.Source, workers)
	for w := range sources {
		sources[w] = base.Split()
	}
	per := samples / workers
	extra := samples % workers
	for w := 0; w < workers; w++ {
		cnt := per
		if w < extra {
			cnt++
		}
		wg.Add(1)
		go func(w, cnt int) {
			defer wg.Done()
			est := NewEstimator(g)
			r := sources[w]
			var t int64
			for i := 0; i < cnt; i++ {
				switch model {
				case LTModel:
					t += int64(est.SimulateLT(r, seeds))
				default:
					t += int64(est.SimulateIC(r, seeds))
				}
			}
			totals[w] = t
		}(w, cnt)
	}
	wg.Wait()
	var total int64
	for _, t := range totals {
		total += t
	}
	return float64(total) / float64(samples)
}
