// Package rng provides the fast, seedable pseudo-random machinery that
// every sampling component in this repository is built on: a xoshiro256++
// generator, geometric skip sampling for subset sampling, Walker alias
// tables for O(1) discrete sampling, and the exponential/Weibull variate
// generators used to synthesise skewed edge-weight distributions.
//
// All generators are deterministic for a fixed seed, which makes every
// experiment in the repository reproducible bit-for-bit. None of the
// generators here are cryptographically secure; they are tuned for the
// Monte-Carlo workloads of influence maximization.
package rng

import "math"

// Source is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct one with New. Source is not safe for concurrent use;
// give each goroutine its own Source (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a 64-bit state and returns the next output. It is
// used to expand a single seed word into the four xoshiro state words, as
// recommended by the xoshiro authors: it guarantees a well-mixed non-zero
// state for any seed, including 0.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield statistically independent streams.
func New(seed uint64) *Source {
	r := &Source{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if the Source had been created by
// New(seed).
func (r *Source) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
}

// Split derives a new independent Source from r. It is the supported way
// to hand per-worker generators to concurrent samplers without sharing
// state.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in the half-open interval [0, 1). It
// uses the top 53 bits of Uint64, so every representable value has the
// same probability.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// OpenFloat64 returns a uniform float64 in the open interval (0, 1). It
// is used where a logarithm of the variate is taken and 0 must never be
// produced.
func (r *Source) OpenFloat64() float64 {
	for {
		if u := r.Float64(); u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0. The
// implementation uses Lemire's multiply-shift rejection method, which
// avoids the modulo bias of naive reduction while performing a single
// multiplication in the common case.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Source) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// mul64 returns the 128-bit product of a and b as (hi, lo). It mirrors
// math/bits.Mul64 but is written out so the package remains dependency
// free at this level; the compiler recognises the pattern and emits a
// single MUL instruction on 64-bit targets.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Bernoulli reports true with probability p. Probabilities outside [0,1]
// are clamped: p <= 0 is always false and p >= 1 is always true.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as a slice, using
// the Fisher–Yates shuffle.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomises the order of n elements by repeatedly calling swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exponential returns a variate from the exponential distribution with
// rate lambda (mean 1/lambda). It panics if lambda <= 0.
func (r *Source) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential requires lambda > 0")
	}
	return -math.Log(r.OpenFloat64()) / lambda
}

// Weibull returns a variate from the Weibull distribution with shape a
// and scale b, via inverse-transform sampling. It panics if a <= 0 or
// b <= 0.
func (r *Source) Weibull(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("rng: Weibull requires a > 0 and b > 0")
	}
	return b * math.Pow(-math.Log(r.OpenFloat64()), 1/a)
}

// UniformRange returns a uniform float64 in [lo, hi). It panics if
// hi < lo.
func (r *Source) UniformRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: UniformRange requires hi >= lo")
	}
	return lo + (hi-lo)*r.Float64()
}
