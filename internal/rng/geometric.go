package rng

import "math"

// GeometricSkipInfinity is returned by Geometric when the success
// probability is zero (or the drawn skip would overflow an int): the next
// success lies beyond any finite sequence, so a scan can terminate
// immediately.
const GeometricSkipInfinity = math.MaxInt64

// Geometric draws a variate from the geometric distribution G(p) on
// {1, 2, 3, ...}: the number of independent Bernoulli(p) trials up to and
// including the first success. It is the primitive behind SUBSIM's skip
// sampling (paper Algorithm 3, lines 7 and 13): scanning a list of
// elements that are each sampled independently with probability p, the
// next sampled element lies Geometric(p) positions ahead.
//
// The constant-time inverse-transform form ceil(log U / log(1-p)) is used
// (Knuth, TAOCP vol. 3): h' = i iff U ∈ [(1-p)^i, (1-p)^{i-1}), an event
// of probability (1-p)^{i-1}·p. log1p(-p) keeps full precision for the
// small p typical of social-network edge weights.
//
// Geometric returns GeometricSkipInfinity when p <= 0, and 1 when p >= 1.
func (r *Source) Geometric(p float64) int64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return GeometricSkipInfinity
	}
	u := r.OpenFloat64()
	v := math.Ceil(math.Log(u) / math.Log1p(-p))
	if v < 1 {
		// Floating-point rounding can yield 0 when u is extremely close
		// to 1; the distribution's support starts at 1.
		return 1
	}
	if v >= float64(GeometricSkipInfinity) {
		return GeometricSkipInfinity
	}
	return int64(v)
}

// GeometricFromLog is Geometric with the denominator log(1-p)
// precomputed. RR set generation calls Geometric once per examined edge;
// hoisting the log out of the loop when p is fixed per node saves a
// transcendental call per skip. logOneMinusP must equal math.Log1p(-p)
// and be negative; pass math.Inf(-1) for p == 1.
func (r *Source) GeometricFromLog(logOneMinusP float64) int64 {
	if math.IsInf(logOneMinusP, -1) {
		return 1
	}
	if logOneMinusP >= 0 {
		return GeometricSkipInfinity
	}
	u := r.OpenFloat64()
	v := math.Ceil(math.Log(u) / logOneMinusP)
	if v < 1 {
		return 1
	}
	if v >= float64(GeometricSkipInfinity) {
		return GeometricSkipInfinity
	}
	return int64(v)
}
