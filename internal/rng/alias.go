package rng

import "fmt"

// Alias is a Walker alias table (Walker 1977) for O(1) sampling from an
// arbitrary discrete distribution over {0, ..., n-1}. The paper uses
// alias sampling to jump between probability buckets in the general-IC
// subset sampler (Section 3.3); it is also reused by the graph generators
// to sample nodes proportionally to degree.
//
// Construction is O(n); each Sample is O(1) with exactly one Uint64 draw
// and one comparison.
type Alias struct {
	prob  []float64 // acceptance threshold per column
	alias []int32   // fallback outcome per column
}

// NewAlias builds an alias table from the given non-negative weights. The
// weights need not sum to one; they are normalised internally. It returns
// an error if weights is empty, contains a negative or non-finite value,
// or sums to zero.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || w != w || w > 1e308 {
			return nil, fmt.Errorf("rng: alias weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: alias weights sum to zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled probabilities: mean 1. Columns below 1 are "small", above 1
	// are "large"; each small column is topped up by one large donor.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Residual columns are full (probability 1) up to rounding error.
	for _, l := range large {
		a.prob[l] = 1
		a.alias[l] = l
	}
	for _, s := range small {
		a.prob[s] = 1
		a.alias[s] = s
	}
	return a, nil
}

// N returns the number of outcomes in the table.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one outcome in [0, N()) with probability proportional to
// the weight supplied at construction.
func (a *Alias) Sample(r *Source) int {
	col := r.Intn(len(a.prob))
	if r.Float64() < a.prob[col] {
		return col
	}
	return int(a.alias[col])
}
