package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestSeedDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for different seeds collided %d times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s0 == 0 && r.s1 == 0 && r.s2 == 0 && r.s3 == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	var x uint64
	for i := 0; i < 100; i++ {
		x |= r.Uint64()
	}
	if x == 0 {
		t.Fatal("zero seed produces only zeros")
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(99)
	b := New(7)
	b.Seed(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Seed does not reproduce New")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(5)
	c1 := a.Split()
	c2 := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestOpenFloat64Positive(t *testing.T) {
	r := New(8)
	for i := 0; i < 100000; i++ {
		f := r.OpenFloat64()
		if f <= 0 || f >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(10)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn bucket %d count %d too far from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestInt31n(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		v := r.Int31n(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
}

func TestMul64AgainstStdlib(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(14)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9} {
		const draws = 100000
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		tol := 5 * math.Sqrt(p*(1-p)/draws)
		if math.Abs(got-p) > tol {
			t.Fatalf("Bernoulli(%v) frequency %v (tol %v)", p, got, tol)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(16)
	const n = 5
	const draws = 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d count %d far from %v", i, c, want)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(17)
	vals := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(18)
	for _, lambda := range []float64{0.5, 1, 4} {
		const draws = 200000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += r.Exponential(lambda)
		}
		mean := sum / draws
		want := 1 / lambda
		if math.Abs(mean-want) > 0.03*want+0.01 {
			t.Fatalf("Exponential(%v) mean %v, want ~%v", lambda, mean, want)
		}
	}
}

func TestExponentialPanics(t *testing.T) {
	r := New(19)
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	r.Exponential(0)
}

func TestWeibullMean(t *testing.T) {
	r := New(20)
	// Weibull(a=1, b) is Exponential with mean b; Weibull(2, b) has mean
	// b·Γ(1.5) = b·√π/2.
	cases := []struct{ a, b, want float64 }{
		{1, 2, 2},
		{2, 1, math.Sqrt(math.Pi) / 2},
	}
	for _, c := range cases {
		const draws = 200000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += r.Weibull(c.a, c.b)
		}
		mean := sum / draws
		if math.Abs(mean-c.want) > 0.03*c.want {
			t.Fatalf("Weibull(%v,%v) mean %v, want ~%v", c.a, c.b, mean, c.want)
		}
	}
}

func TestWeibullPanics(t *testing.T) {
	r := New(21)
	defer func() {
		if recover() == nil {
			t.Fatal("Weibull(0,1) did not panic")
		}
	}()
	r.Weibull(0, 1)
}

func TestUniformRange(t *testing.T) {
	r := New(22)
	for i := 0; i < 10000; i++ {
		v := r.UniformRange(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("UniformRange out of [-3,7): %v", v)
		}
	}
	if v := r.UniformRange(4, 4); v != 4 {
		t.Fatalf("degenerate range: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UniformRange(1,0) did not panic")
		}
	}()
	r.UniformRange(1, 0)
}

func TestGeometricExtremes(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d", g)
		}
		if g := r.Geometric(1.5); g != 1 {
			t.Fatalf("Geometric(1.5) = %d", g)
		}
		if g := r.Geometric(0); g != GeometricSkipInfinity {
			t.Fatalf("Geometric(0) = %d", g)
		}
		if g := r.Geometric(-0.1); g != GeometricSkipInfinity {
			t.Fatalf("Geometric(-0.1) = %d", g)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(24)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		const draws = 200000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / draws
		want := 1 / p
		// std of the mean: sqrt((1-p)/p²/draws)
		tol := 6 * math.Sqrt((1-p)/(p*p*draws))
		if math.Abs(mean-want) > tol+0.01 {
			t.Fatalf("Geometric(%v) mean %v, want %v ± %v", p, mean, want, tol)
		}
	}
}

func TestGeometricPMF(t *testing.T) {
	r := New(25)
	p := 0.3
	const draws = 300000
	counts := map[int64]int{}
	for i := 0; i < draws; i++ {
		counts[r.Geometric(p)]++
	}
	for i := int64(1); i <= 5; i++ {
		want := math.Pow(1-p, float64(i-1)) * p
		got := float64(counts[i]) / draws
		tol := 5 * math.Sqrt(want*(1-want)/draws)
		if math.Abs(got-want) > tol {
			t.Fatalf("P(X=%d) = %v, want %v ± %v", i, got, want, tol)
		}
	}
}

func TestGeometricSupportStartsAtOne(t *testing.T) {
	r := New(26)
	for i := 0; i < 100000; i++ {
		if g := r.Geometric(0.7); g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
	}
}

func TestGeometricFromLogMatchesGeometric(t *testing.T) {
	// Same underlying uniform stream must produce identical variates.
	for _, p := range []float64{0.01, 0.2, 0.5, 0.99} {
		a, b := New(27), New(27)
		logP := math.Log1p(-p)
		for i := 0; i < 10000; i++ {
			if x, y := a.Geometric(p), b.GeometricFromLog(logP); x != y {
				t.Fatalf("p=%v: Geometric=%d GeometricFromLog=%d", p, x, y)
			}
		}
	}
}

func TestGeometricFromLogExtremes(t *testing.T) {
	r := New(28)
	if g := r.GeometricFromLog(math.Inf(-1)); g != 1 {
		t.Fatalf("GeometricFromLog(-Inf) = %d", g)
	}
	if g := r.GeometricFromLog(0); g != GeometricSkipInfinity {
		t.Fatalf("GeometricFromLog(0) = %d", g)
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	r := New(29)
	for i := 0; i < 1000; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias returned non-zero")
		}
	}
}

func TestAliasFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0, 10}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != len(weights) {
		t.Fatalf("N = %d", a.N())
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	r := New(30)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		tol := 5*math.Sqrt(want*(1-want)/draws) + 1e-9
		if math.Abs(got-want) > tol {
			t.Fatalf("outcome %d frequency %v, want %v ± %v", i, got, want, tol)
		}
	}
	if counts[4] != 0 {
		t.Fatalf("zero-weight outcome sampled %d times", counts[4])
	}
}

func TestAliasUniformWeights(t *testing.T) {
	n := 64
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := New(31)
	const draws = 256000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	want := float64(draws) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("uniform alias outcome %d count %d far from %v", i, c, want)
		}
	}
}

// TestAliasPropertyRandomWeights quick-checks that randomly weighted
// tables produce the heaviest outcome most often.
func TestAliasPropertyRandomWeights(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 2 + r.Intn(20)
		weights := make([]float64, n)
		heaviest := 0
		for i := range weights {
			weights[i] = r.Float64() + 0.01
			if weights[i] > weights[heaviest] {
				heaviest = i
			}
		}
		// Make the heaviest clearly dominant.
		weights[heaviest] += float64(n)
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for i := 0; i < 20000; i++ {
			counts[a.Sample(r)]++
		}
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
			_ = c
		}
		return best == heaviest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
