package subsim_test

import (
	"testing"

	"subsim"
)

// TestMaximizeSmoke runs every algorithm end-to-end on a small scale-free
// graph and cross-checks the returned seed sets by forward simulation:
// each algorithm's spread must be within a modest factor of the best
// algorithm's spread, and far above a random seed set's.
func TestMaximizeSmoke(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(3000, 5, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()

	opt := subsim.Options{K: 10, Eps: 0.3, Seed: 11, Workers: 2}
	algs := []subsim.Algorithm{
		subsim.AlgIMM, subsim.AlgSSA, subsim.AlgOPIMC,
		subsim.AlgSUBSIM, subsim.AlgHIST, subsim.AlgHISTSubsim,
	}
	spreads := make(map[subsim.Algorithm]float64)
	best := 0.0
	for _, alg := range algs {
		res, err := subsim.Maximize(g, alg, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Seeds) != opt.K {
			t.Fatalf("%v: got %d seeds, want %d", alg, len(res.Seeds), opt.K)
		}
		seen := make(map[int32]bool)
		for _, s := range res.Seeds {
			if s < 0 || int(s) >= g.N() {
				t.Fatalf("%v: seed %d out of range", alg, s)
			}
			if seen[s] {
				t.Fatalf("%v: duplicate seed %d", alg, s)
			}
			seen[s] = true
		}
		spread := subsim.EstimateInfluence(g, res.Seeds, 3000, subsim.IC, 3)
		spreads[alg] = spread
		if spread > best {
			best = spread
		}
		t.Logf("%-12v spread=%.1f influence=%.1f rounds=%d rrsets=%d elapsed=%v",
			alg, spread, res.Influence, res.Rounds, res.RRStats.Sets, res.Elapsed)
	}
	random := subsim.EstimateInfluence(g, []int32{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}, 3000, subsim.IC, 3)
	t.Logf("random seeds spread=%.1f", random)
	for alg, s := range spreads {
		if s < 0.8*best {
			t.Errorf("%v spread %.1f below 80%% of best %.1f", alg, s, best)
		}
	}
}
