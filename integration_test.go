package subsim_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"subsim"
)

// TestPublicAPISurface exercises the facade helpers end-to-end.
func TestPublicAPISurface(t *testing.T) {
	g, err := subsim.GenErdosRenyi(500, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()

	gen := subsim.NewRRGenerator(g, subsim.GenSubsim)
	sets := subsim.SampleRRSets(gen, 250, 2)
	if len(sets) != 250 {
		t.Fatalf("SampleRRSets returned %d sets", len(sets))
	}
	st := subsim.RRStats(gen)
	if st.Sets != 250 || st.AvgSize() <= 0 {
		t.Fatalf("RRStats = %+v", st)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := subsim.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("LoadGraph round-trip mismatch")
	}
	if _, err := subsim.LoadGraph(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}

	b := subsim.NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if b.Build().N() != 3 {
		t.Fatal("builder facade broken")
	}
}

func TestAssignSkewedFacade(t *testing.T) {
	g, err := subsim.GenErdosRenyi(200, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []subsim.WeightModel{subsim.ModelExponential, subsim.ModelWeibull} {
		if err := subsim.AssignSkewed(g, m, 4); err != nil {
			t.Fatal(err)
		}
		if g.Model() != m {
			t.Fatalf("model = %v, want %v", g.Model(), m)
		}
	}
	if err := subsim.AssignSkewed(g, subsim.ModelWC, 4); err == nil {
		t.Fatal("AssignSkewed accepted a non-skewed model")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[subsim.Algorithm]string{
		subsim.AlgIMM: "IMM", subsim.AlgSSA: "SSA", subsim.AlgOPIMC: "OPIM-C",
		subsim.AlgSUBSIM: "SUBSIM", subsim.AlgHIST: "HIST",
		subsim.AlgHISTSubsim: "HIST+SUBSIM", subsim.AlgTIMPlus: "TIM+",
		subsim.Algorithm(99): "Algorithm(99)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestMaximizeUnknownAlgorithm(t *testing.T) {
	g, err := subsim.GenErdosRenyi(100, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	if _, err := subsim.Maximize(g, subsim.Algorithm(99), subsim.Options{K: 2, Eps: 0.2}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	gen := subsim.NewRRGenerator(g, subsim.GenVanilla)
	if _, err := subsim.MaximizeWith(gen, subsim.Algorithm(99), subsim.Options{K: 2, Eps: 0.2}); err == nil {
		t.Fatal("unknown algorithm accepted by MaximizeWith")
	}
}

// TestLTEndToEnd runs the full pipeline under the Linear Threshold model
// and verifies the seed quality by forward LT simulation.
func TestLTEndToEnd(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(2500, 5, false, 8)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignLT()
	gen := subsim.NewRRGenerator(g, subsim.GenLT)
	for _, alg := range []subsim.Algorithm{subsim.AlgOPIMC, subsim.AlgHIST} {
		res, err := subsim.MaximizeWith(gen.Clone(), alg, subsim.Options{K: 10, Eps: 0.3, Seed: 9, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		spread := subsim.EstimateInfluence(g, res.Seeds, 4000, subsim.LT, 10)
		random := subsim.EstimateInfluence(g, []int32{500, 501, 502, 503, 504, 505, 506, 507, 508, 509}, 4000, subsim.LT, 10)
		if spread <= random {
			t.Fatalf("%v: LT spread %v not above random %v", alg, spread, random)
		}
	}
}

// TestSkewedEndToEnd runs the general-IC pipeline (bucketed and
// index-free generators) on exponential weights and cross-checks the two
// generators' seed quality.
func TestSkewedEndToEnd(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(2500, 6, false, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := subsim.AssignSkewed(g, subsim.ModelExponential, 12); err != nil {
		t.Fatal(err)
	}
	opt := subsim.Options{K: 10, Eps: 0.3, Seed: 13, Workers: 2}
	spreads := map[subsim.GeneratorKind]float64{}
	for _, kind := range []subsim.GeneratorKind{subsim.GenSubsim, subsim.GenSubsimBucketed, subsim.GenSubsimBucketedJump, subsim.GenVanilla} {
		res, err := subsim.MaximizeWith(subsim.NewRRGenerator(g, kind), subsim.AlgOPIMC, opt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		spreads[kind] = subsim.EstimateInfluence(g, res.Seeds, 4000, subsim.IC, 14)
	}
	base := spreads[subsim.GenVanilla]
	for kind, s := range spreads {
		if math.Abs(s-base) > 0.1*base {
			t.Fatalf("%v spread %v deviates from vanilla %v", kind, s, base)
		}
	}
}

func TestTIMPlusFacade(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(1200, 4, false, 15)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	res, err := subsim.Maximize(g, subsim.AlgTIMPlus, subsim.Options{K: 5, Eps: 0.3, Seed: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
}

// TestMaximizeDeterministicAcrossCalls pins full-run determinism at the
// facade level for every algorithm.
func TestMaximizeDeterministicAcrossCalls(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(1200, 4, false, 17)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWCVariant(2)
	opt := subsim.Options{K: 6, Eps: 0.3, Seed: 18, Workers: 3}
	for _, alg := range []subsim.Algorithm{
		subsim.AlgIMM, subsim.AlgSSA, subsim.AlgOPIMC, subsim.AlgSUBSIM,
		subsim.AlgHIST, subsim.AlgHISTSubsim, subsim.AlgTIMPlus,
	} {
		a, err := subsim.Maximize(g, alg, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		b, err := subsim.Maximize(g, alg, opt)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				t.Fatalf("%v: runs diverged at seed %d", alg, i)
			}
		}
	}
}

// TestIsolatedNodesGraph exercises the degenerate graph with no edges:
// every RR set is a singleton, influence of any k-set is exactly k.
func TestIsolatedNodesGraph(t *testing.T) {
	g := subsim.NewBuilder(50).Build()
	g.AssignWC()
	for _, alg := range []subsim.Algorithm{subsim.AlgOPIMC, subsim.AlgHIST, subsim.AlgSUBSIM} {
		res, err := subsim.Maximize(g, alg, subsim.Options{K: 3, Eps: 0.3, Seed: 19, Workers: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Seeds) != 3 {
			t.Fatalf("%v: %d seeds", alg, len(res.Seeds))
		}
		if spread := subsim.EstimateInfluence(g, res.Seeds, 100, subsim.IC, 20); spread != 3 {
			t.Fatalf("%v: spread %v on edgeless graph", alg, spread)
		}
	}
}

// TestFacadeGeneratorsAndHeuristics covers the remaining public surface:
// the extra generators, graph stats, heuristics, and the oracle.
func TestFacadeGeneratorsAndHeuristics(t *testing.T) {
	ws, err := subsim.GenWattsStrogatz(300, 3, 0.1, 21)
	if err != nil {
		t.Fatal(err)
	}
	if ws.N() != 300 {
		t.Fatal("WS size wrong")
	}
	sbm, err := subsim.GenSBM(subsim.SBMParams{Sizes: []int{100, 100}, PIn: 0.05, POut: 0.005}, 22)
	if err != nil {
		t.Fatal(err)
	}
	sbm.AssignWC()
	stats := sbm.ComputeStats()
	if stats.N != 200 || stats.M != sbm.M() {
		t.Fatalf("stats %+v", stats)
	}

	for _, h := range subsim.Heuristics {
		seeds, err := subsim.SelectHeuristic(sbm, h, 5)
		if err != nil {
			t.Fatalf("%s: %v", h, err)
		}
		if len(seeds) != 5 {
			t.Fatalf("%s: %d seeds", h, len(seeds))
		}
	}
	if _, err := subsim.SelectHeuristic(sbm, "bogus", 5); err == nil {
		t.Fatal("bogus heuristic accepted")
	}

	o, err := subsim.NewInfluenceOracle(subsim.NewRRGenerator(sbm, subsim.GenSubsim), 5000, 23)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 100}
	est := o.Estimate(seeds)
	lo, hi := o.Interval(seeds, 0.05)
	if lo > est || hi < est || est <= 0 {
		t.Fatalf("oracle inconsistency: est %v in [%v,%v]", est, lo, hi)
	}
	if _, err := subsim.NewInfluenceOracleWithPrecision(
		subsim.NewRRGenerator(sbm, subsim.GenSubsim), 0.5, 0.1, 50, 24); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateInfluenceIntervalFacade(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(800, 4, false, 30)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWC()
	point := subsim.EstimateInfluence(g, []int32{0, 1}, 20000, subsim.IC, 31)
	iv := subsim.EstimateInfluenceInterval(g, []int32{0, 1}, 20000, subsim.IC, 0.99, 31)
	if iv.Lo > point || iv.Hi < point {
		t.Fatalf("interval [%v,%v] excludes the point estimate %v", iv.Lo, iv.Hi, point)
	}
}

func TestLoadSNAPFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("# snap dump\n0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := subsim.LoadSNAP(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	und, err := subsim.LoadSNAP(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if und.M() != 6 {
		t.Fatalf("undirected m=%d", und.M())
	}
	sub, orig, err := und.CompactLargestWCC()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || len(orig) != 3 {
		t.Fatal("compact failed")
	}
	if _, err := subsim.LoadSNAP(filepath.Join(dir, "missing"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
