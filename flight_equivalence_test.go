package subsim_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"subsim"
	"subsim/internal/obs"
	"subsim/internal/obs/flight"
)

// algOutput is the algorithm-visible slice of a Result: everything the
// run computes, nothing the instrumentation adds (Elapsed and Report are
// wall-clock / observability products and legitimately vary).
type algOutput struct {
	Seeds      []int32
	Influence  float64
	LowerBound float64
	UpperBound float64
	Approx     float64
	Rounds     int
	Sets       int64
}

func capture(res *subsim.Result) []byte {
	raw, err := json.Marshal(algOutput{
		Seeds:      res.Seeds,
		Influence:  res.Influence,
		LowerBound: res.LowerBound,
		UpperBound: res.UpperBound,
		Approx:     res.Approx,
		Rounds:     res.Rounds,
		Sets:       res.RRStats.Sets,
	})
	if err != nil {
		panic(err)
	}
	return raw
}

// TestFlightRecorderEquivalence pins the always-on promise of the flight
// recorder: attaching the journal, sampler and watchdog must not perturb
// the algorithm — run output is byte-identical with the recorder on and
// off, at every worker count.
func TestFlightRecorderEquivalence(t *testing.T) {
	g, err := subsim.GenPreferentialAttachment(900, 4, false, 23)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignWCVariant(2)

	for _, alg := range []subsim.Algorithm{subsim.AlgOPIMC, subsim.AlgSUBSIM} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, workers), func(t *testing.T) {
				opt := subsim.Options{K: 5, Eps: 0.3, Seed: 11, Workers: workers}
				plain, err := subsim.Maximize(g, alg, opt)
				if err != nil {
					t.Fatal(err)
				}

				tr := obs.NewTracer()
				fl := tr.EnableFlight(obs.FlightConfig{
					Dir: t.TempDir(), Tool: "equivtest",
					StallWindow: 30 * 1e9, // armed but far beyond the run
				})
				defer fl.Close()
				opt.Tracer = tr
				opt.Logger = (*obs.Logger)(nil).WithFlight(
					fl.Journal().Stream(flight.StreamRun))
				recorded, err := subsim.Maximize(g, alg, opt)
				if err != nil {
					t.Fatal(err)
				}

				want, got := capture(plain), capture(recorded)
				if string(want) != string(got) {
					t.Errorf("recorder perturbed the run:\noff: %s\non:  %s", want, got)
				}
				if fl.Journal().Written() == 0 {
					t.Error("recorded run journaled nothing — the recorder was not actually on")
				}
			})
		}
	}
}
