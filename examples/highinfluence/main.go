// High-influence networks: the regime HIST was designed for. When
// propagation probabilities are large (here the paper's WC variant
// min{1, θ/d_in} with θ > 1), random RR sets blow up to a sizeable
// fraction of the whole graph and classic RR-set algorithms grind. This
// example sweeps θ and shows how HIST's sentinel trick keeps the average
// RR set tiny while OPIM-C's balloons — reproducing the dynamics of the
// paper's Figures 3 and 6 on a single network.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"subsim"
)

func main() {
	g, err := subsim.GenPreferentialAttachment(25000, 8, false, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n\n", g.N(), g.M())

	opt := subsim.Options{K: 100, Eps: 0.1, Seed: 5}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "theta\tOPIM-C time\tOPIM-C avg |R|\tHIST+SUBSIM time\tHIST avg |R|\tsentinels\tspeedup")
	for _, theta := range []float64{1, 2, 4, 8} {
		g.AssignWCVariant(theta)

		start := time.Now()
		opim, err := subsim.Maximize(g, subsim.AlgOPIMC, opt)
		if err != nil {
			log.Fatal(err)
		}
		opimTime := time.Since(start)

		start = time.Now()
		hist, err := subsim.Maximize(g, subsim.AlgHISTSubsim, opt)
		if err != nil {
			log.Fatal(err)
		}
		histTime := time.Since(start)

		fmt.Fprintf(tw, "%.0f\t%v\t%.1f\t%v\t%.1f\t%d\t%.1fx\n",
			theta,
			opimTime.Round(time.Millisecond), opim.RRStats.AvgSize(),
			histTime.Round(time.Millisecond), hist.RRStats.AvgSize(),
			hist.SentinelSize,
			opimTime.Seconds()/histTime.Seconds())

		// Sanity: the cheap seed set must be as good as the expensive one.
		so := subsim.EstimateInfluence(g, opim.Seeds, 2000, subsim.IC, 6)
		sh := subsim.EstimateInfluence(g, hist.Seeds, 2000, subsim.IC, 6)
		if sh < 0.95*so {
			fmt.Fprintf(os.Stderr, "warning: HIST spread %.0f below OPIM-C %.0f at theta=%.0f\n", sh, so, theta)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAs theta grows, RR sets explode for OPIM-C while HIST's sentinel")
	fmt.Println("early-exit keeps them small — the higher the influence, the bigger the win.")
}
