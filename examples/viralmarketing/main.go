// Viral marketing scenario: a company can give its product to k
// influencers and wants the campaign that reaches the most users. This
// example compares every algorithm in the library on the same network —
// quality (forward-simulated spread) and cost (time, RR sets) — and shows
// that the budget matters more than the algorithm: all algorithms find
// near-identical spread, but at wildly different cost.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"subsim"
)

func main() {
	// An undirected friendship network (both directions of each tie),
	// like the paper's Orkut/Friendster datasets.
	g, err := subsim.GenPreferentialAttachment(30000, 10, true, 7)
	if err != nil {
		log.Fatal(err)
	}
	g.AssignWC()
	fmt.Printf("friendship network: %d users, %d directed ties\n\n", g.N(), g.M())

	const budget = 100 // influencers we can afford
	opt := subsim.Options{K: budget, Eps: 0.1, Seed: 42}

	algs := []subsim.Algorithm{
		subsim.AlgIMM,
		subsim.AlgSSA,
		subsim.AlgOPIMC,
		subsim.AlgSUBSIM,
		subsim.AlgHIST,
		subsim.AlgHISTSubsim,
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\ttime\tRR sets\tavg |R|\tspread\treach")
	for _, alg := range algs {
		res, err := subsim.Maximize(g, alg, opt)
		if err != nil {
			log.Fatal(err)
		}
		spread := subsim.EstimateInfluence(g, res.Seeds, 5000, subsim.IC, 9)
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.1f\t%.0f\t%.1f%%\n",
			alg, res.Elapsed.Round(1000000), res.RRStats.Sets, res.RRStats.AvgSize(),
			spread, 100*spread/float64(g.N()))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// How much does seeding strategy matter? Random seeding is far
	// behind; the top-degree heuristic is competitive on this synthetic
	// network (degree is an excellent influence proxy under WC) but
	// comes with no guarantee — on real networks with community
	// structure its gap widens, which is why the certified algorithms
	// exist.
	res, err := subsim.Maximize(g, subsim.AlgHISTSubsim, opt)
	if err != nil {
		log.Fatal(err)
	}
	smart := subsim.EstimateInfluence(g, res.Seeds, 5000, subsim.IC, 9)
	heuristic := subsim.EstimateInfluence(g, topDegree(g, budget), 5000, subsim.IC, 9)
	random := make([]int32, budget)
	for i := range random {
		random[i] = int32(i * g.N() / budget)
	}
	rnd := subsim.EstimateInfluence(g, random, 5000, subsim.IC, 9)
	fmt.Printf("\nspread: optimized %.0f | top-degree heuristic %.0f | random %.0f (%.1fx over random)\n",
		smart, heuristic, rnd, smart/rnd)
}

// topDegree returns the k nodes with the highest out-degree.
func topDegree(g *subsim.Graph, k int) []int32 {
	type nd struct {
		v int32
		d int
	}
	best := make([]nd, k)
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.OutDegree(v)
		for i := range best {
			if d > best[i].d {
				copy(best[i+1:], best[i:k-1])
				best[i] = nd{v, d}
				break
			}
		}
	}
	seeds := make([]int32, k)
	for i, b := range best {
		seeds[i] = b.v
	}
	return seeds
}
