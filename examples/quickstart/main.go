// Quickstart: generate a small scale-free social network, run the
// paper's headline SUBSIM algorithm (OPIM-C with subset-sampling RR set
// generation) and verify the returned seed set by independent forward
// Monte-Carlo simulation.
package main

import (
	"fmt"
	"log"

	"subsim"
)

func main() {
	// A scale-free network of 20k users under the weighted-cascade
	// model, where each edge (u,v) propagates with probability
	// 1/indegree(v).
	g, err := subsim.GenPreferentialAttachment(20000, 8, false, 1)
	if err != nil {
		log.Fatal(err)
	}
	g.AssignWC()
	fmt.Printf("graph: %d nodes, %d edges, avg degree %.1f\n", g.N(), g.M(), g.AvgDegree())

	// Find 50 seeds that are (1 - 1/e - 0.1)-approximately optimal with
	// probability 1 - 1/n.
	res, err := subsim.Maximize(g, subsim.AlgSUBSIM, subsim.Options{
		K:    50,
		Eps:  0.1,
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d seeds in %v using %d RR sets (avg size %.1f)\n",
		len(res.Seeds), res.Elapsed, res.RRStats.Sets, res.RRStats.AvgSize())
	fmt.Printf("certified influence: [%.0f, %.0f] (ratio %.3f)\n",
		res.LowerBound, res.UpperBound, res.Approx)

	// Cross-check with 10k forward cascade simulations.
	spread := subsim.EstimateInfluence(g, res.Seeds, 10000, subsim.IC, 2)
	fmt.Printf("forward Monte-Carlo spread: %.0f users (%.1f%% of the network)\n",
		spread, 100*spread/float64(g.N()))
	fmt.Printf("first 10 seeds: %v\n", res.Seeds[:10])
}
