// Community structure: where guarantee-free heuristics break. This
// example builds a network with a small, very dense community (whose
// members have the highest degrees in the graph) next to several large,
// sparse communities. The degree heuristic pours its whole budget into
// the dense cluster — big degrees, tiny audience — while the certified
// algorithms spread seeds across communities and reach several times as
// many users. An RR influence oracle cross-checks every seed set with a
// confidence interval.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"subsim"
	"subsim/internal/rng"
)

const (
	denseSize   = 500
	sparseSize  = 2000
	numSparse   = 5
	denseP      = 0.16  // in-community edge probability, dense cluster
	sparseP     = 0.004 // in-community edge probability, sparse clusters
	crossP      = 0.0   // communities are fully disjoint audiences
	budget      = 25
	mcSamples   = 4000
	oracleSets  = 20000
	oracleDelta = 0.05
)

func main() {
	g := buildCommunityGraph()
	g.AssignWCVariant(2) // mildly supercritical cascades
	fmt.Printf("network: %s\n\n", g.ComputeStats())

	// Certified algorithms.
	results := []struct {
		name  string
		seeds []int32
	}{}
	for _, alg := range []subsim.Algorithm{subsim.AlgSUBSIM, subsim.AlgHISTSubsim} {
		res, err := subsim.Maximize(g, alg, subsim.Options{K: budget, Eps: 0.1, Seed: 4})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, struct {
			name  string
			seeds []int32
		}{alg.String(), res.Seeds})
	}
	// Guarantee-free heuristics.
	for _, h := range subsim.Heuristics {
		seeds, err := subsim.SelectHeuristic(g, h, budget)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, struct {
			name  string
			seeds []int32
		}{"heuristic:" + string(h), seeds})
	}

	oracle, err := subsim.NewInfluenceOracle(subsim.NewRRGenerator(g, subsim.GenSubsim), oracleSets, 5)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tspread (MC)\toracle interval\tseeds in dense cluster")
	for _, r := range results {
		spread := subsim.EstimateInfluence(g, r.seeds, mcSamples, subsim.IC, 6)
		lo, hi := oracle.Interval(r.seeds, oracleDelta)
		inDense := 0
		for _, s := range r.seeds {
			if int(s) < denseSize {
				inDense++
			}
		}
		fmt.Fprintf(tw, "%s\t%.0f\t[%.0f, %.0f]\t%d/%d\n", r.name, spread, lo, hi, inDense, budget)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDegrees lie: the dense cluster's members top every degree ranking but")
	fmt.Println("can only ever reach their own community. The certified algorithms place")
	fmt.Println("seeds where marginal reach is, not where degrees are.")
}

// buildCommunityGraph hand-rolls the planted-community topology with the
// public Builder API: one dense block followed by numSparse sparse
// blocks, plus a sprinkle of cross-community edges. Randomness comes
// from the repo's seedable stream (internal/rng), not math/rand, so the
// same seed reproduces the same communities on every Go release.
func buildCommunityGraph() *subsim.Graph {
	n := denseSize + numSparse*sparseSize
	r := rng.New(42)
	b := subsim.NewBuilder(n)
	addBlock := func(start, size int, p float64) {
		for u := start; u < start+size; u++ {
			// Expected p·(size-1) targets per node, sampled directly.
			targets := r.Intn(int(2*p*float64(size))) + 1
			for t := 0; t < targets; t++ {
				v := start + r.Intn(size)
				if v == u {
					continue
				}
				_ = b.AddEdge(int32(u), int32(v), 0) // duplicates are harmless
			}
		}
	}
	addBlock(0, denseSize, denseP)
	for c := 0; c < numSparse; c++ {
		addBlock(denseSize+c*sparseSize, sparseSize, sparseP)
	}
	// Cross edges (none by default: each community is a disjoint
	// audience, the worst case for degree-chasing heuristics).
	if crossCount := int(crossP * float64(n) * float64(n)); crossCount > 0 {
		for i := 0; i < crossCount; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				_ = b.AddEdge(int32(u), int32(v), 0)
			}
		}
	}
	return b.Build()
}
