// Skewed propagation probabilities (general IC): when edge weights are
// learned from data they are rarely uniform — the paper models this with
// Exponential and Weibull weights, normalised per node. This example
// compares the three general-IC subset-sampling kernels (index-free
// sorted, bucketed, bucketed+jump) against the vanilla per-edge coin
// flip, reproducing the dynamics of the paper's Figure 2, and then runs
// the full pipeline on the skewed graph — plus the Linear Threshold model
// for good measure.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"subsim"
)

const numSets = 50000

func main() {
	g, err := subsim.GenPreferentialAttachment(20000, 40, false, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n\n", g.N(), g.M())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "distribution\tkernel\ttime for %d RR sets\tspeedup\n", numSets)
	for i, dist := range []string{"Exponential", "Weibull"} {
		model := subsim.ModelExponential
		if dist == "Weibull" {
			model = subsim.ModelWeibull
		}
		if err := subsim.AssignSkewed(g, model, uint64(13+i)); err != nil {
			log.Fatal(err)
		}
		kernels := []struct {
			name string
			kind subsim.GeneratorKind
		}{
			{"vanilla (Alg. 2)", subsim.GenVanilla},
			{"SUBSIM index-free", subsim.GenSubsim},
			{"SUBSIM bucketed", subsim.GenSubsimBucketed},
			{"SUBSIM bucket+jump", subsim.GenSubsimBucketedJump},
		}
		var base float64
		for i, k := range kernels {
			gen := subsim.NewRRGenerator(g, k.kind)
			start := time.Now()
			subsim.SampleRRSets(gen, numSets, 17)
			secs := time.Since(start).Seconds()
			if i == 0 {
				base = secs
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3fs\t%.1fx\n", dist, k.name, secs, base/secs)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// End-to-end on the skewed graph: OPIM-C chassis over the bucketed
	// general-IC generator.
	res, err := subsim.MaximizeWith(
		subsim.NewRRGenerator(g, subsim.GenSubsimBucketed),
		subsim.AlgSUBSIM,
		subsim.Options{K: 50, Eps: 0.1, Seed: 19},
	)
	if err != nil {
		log.Fatal(err)
	}
	spread := subsim.EstimateInfluence(g, res.Seeds, 5000, subsim.IC, 21)
	fmt.Printf("\ngeneral-IC maximization: %d seeds in %v, spread %.0f users\n",
		len(res.Seeds), res.Elapsed, spread)

	// The same pipeline under the Linear Threshold model.
	g.AssignLT()
	ltRes, err := subsim.MaximizeWith(
		subsim.NewRRGenerator(g, subsim.GenLT),
		subsim.AlgOPIMC,
		subsim.Options{K: 50, Eps: 0.1, Seed: 23},
	)
	if err != nil {
		log.Fatal(err)
	}
	ltSpread := subsim.EstimateInfluence(g, ltRes.Seeds, 5000, subsim.LT, 25)
	fmt.Printf("linear-threshold maximization: %d seeds in %v, spread %.0f users\n",
		len(ltRes.Seeds), ltRes.Elapsed, ltSpread)
}
