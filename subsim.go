// Package subsim is a Go implementation of SUBSIM and HIST, the
// efficient reverse-reachable (RR) set generation framework and the
// Hit-and-Stop influence-maximization algorithm of
//
//	Guo, Wang, Wei, Chen. "Influence Maximization Revisited: Efficient
//	Reverse Reachable Set Generation with Bound Tightened." SIGMOD 2020.
//
// together with complete reimplementations of the baselines the paper
// compares against (IMM, SSA, OPIM-C), the graph substrate, forward
// Monte-Carlo diffusion, and the benchmark harness that regenerates the
// paper's tables and figures.
//
// # Quick start
//
//	g, _ := subsim.GenPreferentialAttachment(100_000, 10, false, 1)
//	g.AssignWC()
//	res, err := subsim.Maximize(g, subsim.AlgHISTSubsim, subsim.Options{
//		K: 100, Eps: 0.1, Seed: 1,
//	})
//	if err != nil { ... }
//	fmt.Println(res.Seeds, res.Influence)
//
// The influence of any seed set can be verified by forward simulation:
//
//	spread := subsim.EstimateInfluence(g, res.Seeds, 10_000, subsim.IC, 1)
//
// All entry points are deterministic for a fixed Options.Seed,
// independent of the worker count: every RR set is drawn from an RNG
// stream derived from its global index.
//
// Attach a Tracer (see NewTracer) to Options.Tracer to collect phase
// spans, RR-generation histograms and a machine-readable run report at
// negligible cost; a nil tracer is free.
package subsim

import (
	"fmt"
	"io"
	"os"

	"subsim/internal/core"
	"subsim/internal/coverage"
	"subsim/internal/diffusion"
	"subsim/internal/graph"
	"subsim/internal/heuristics"
	"subsim/internal/im"
	"subsim/internal/obs"
	"subsim/internal/oracle"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// Graph is a directed social network with propagation probabilities; see
// the builder, generator and loader functions below for construction and
// the Assign* methods for the paper's weight models.
type Graph = graph.Graph

// Builder accumulates edges and produces an immutable Graph.
type Builder = graph.Builder

// Edge is a directed edge with its propagation probability.
type Edge = graph.Edge

// WeightModel identifies a propagation-probability assignment.
type WeightModel = graph.WeightModel

// Weight models (see Graph.AssignWC and friends).
const (
	ModelUnset       = graph.ModelUnset
	ModelWC          = graph.ModelWC
	ModelWCVariant   = graph.ModelWCVariant
	ModelUniform     = graph.ModelUniform
	ModelExponential = graph.ModelExponential
	ModelWeibull     = graph.ModelWeibull
	ModelLT          = graph.ModelLT
)

// Options configures an influence-maximization run. Set Options.Tracer
// (see NewTracer) to collect phase spans, RR metrics and a run report.
type Options = im.Options

// Result reports a run's seed set, certified bounds and cost accounting.
// Result.Report carries the observability run report when a Tracer was
// attached.
type Result = im.Result

// EstimatorKind selects the coverage backend via Options.Estimator: the
// exact CSR inverted index (the zero value) or the HyperLogLog sketch
// backend, which trades a certified relative error for θ-independent
// memory. See coverage.Estimator for the contract.
type EstimatorKind = coverage.EstimatorKind

// Coverage estimator backends.
const (
	// EstimatorExact is the exact CSR inverted index (default;
	// bit-identical to historic runs).
	EstimatorExact = coverage.EstimatorExact
	// EstimatorHLL is the register-array HyperLogLog sketch backend.
	EstimatorHLL = coverage.EstimatorHLL
	// EstimatorSharded is the shard-parallel exact engine: per-worker
	// shard-local arenas and CSR indexes (no splice copy, no global
	// merge) with every CELF round fanned out and tree-reduced.
	// Byte-identical results to EstimatorExact for any worker count.
	EstimatorSharded = coverage.EstimatorSharded
)

// ParseEstimator maps a flag value ("exact" | "hll" | "sharded") to its
// kind.
func ParseEstimator(s string) (EstimatorKind, error) { return coverage.ParseEstimator(s) }

// BoundKind selects the sample-complexity analysis capping θ via
// Options.Bound: the worst-case IMM/OPIM-C constants (the zero value)
// or the Sadeh–Cohen–Kaplan-style tightened budget, which lets
// algorithms stop at the smaller certified θ. Both are reported in
// Result.ThetaWorstCase / Result.ThetaTight either way.
type BoundKind = im.BoundKind

// Sample-complexity bounds.
const (
	// BoundIMM keeps the worst-case IMM/OPIM-C budget (default).
	BoundIMM = im.BoundIMM
	// BoundTight engages the tightened budget.
	BoundTight = im.BoundTight
)

// ParseBound maps a flag value ("imm" | "tight") to its kind.
func ParseBound(s string) (BoundKind, error) { return im.ParseBound(s) }

// Tracer records phase spans and low-overhead RR-generation metrics for
// a run; construct one with NewTracer and attach it to Options.Tracer.
// A nil *Tracer disables all instrumentation at zero cost.
type Tracer = obs.Tracer

// RunReport is the schema-versioned machine-readable summary of one run:
// the span tree, power-of-two histograms (RR size, edge examinations per
// set, geometric skip lengths), counters and per-worker totals. Write it
// with its WriteJSON / WritePrometheus methods.
type RunReport = obs.Report

// RRMetrics is the live metric set behind a tracer (atomic counters and
// histograms shared by all workers).
type RRMetrics = obs.MetricSet

// NewTracer returns an enabled tracer with a fresh metric set.
func NewTracer() *Tracer { return obs.NewTracer() }

// Logger emits structured run events (run.start, round.done,
// bound.crossed, phase.done, run.done) through log/slog; attach one to
// Options.Logger. A nil *Logger is silent and allocation-free on every
// emit site, mirroring the nil-tracer contract.
type Logger = obs.Logger

// NewLogger builds a run-event logger writing to w: format "json" uses
// slog's JSONHandler, anything else the TextHandler. A nil writer
// returns a nil (disabled) logger.
func NewLogger(w io.Writer, format string) *Logger {
	return obs.NewLoggerWriter(w, format, nil)
}

// RRSet is one reverse-reachable sample.
type RRSet = rrset.RRSet

// RRGenerator produces random RR sets; construct one with NewRRGenerator.
type RRGenerator = rrset.Generator

// GeneratorKind selects an RR generation strategy.
type GeneratorKind = core.GeneratorKind

// RR set generation strategies.
const (
	// GenVanilla is the classic per-edge coin-flip generator (paper
	// Algorithm 2).
	GenVanilla = core.Vanilla
	// GenSubsim is the paper's subset-sampling generator (Algorithm 3,
	// with the index-free general-IC fallback of Section 3.3).
	GenSubsim = core.Subsim
	// GenSubsimBucketed is the preprocessed general-IC sampler
	// (Lemma 5).
	GenSubsimBucketed = core.SubsimBucketed
	// GenSubsimBucketedJump adds the bucket-jump chain.
	GenSubsimBucketedJump = core.SubsimBucketedJump
	// GenLT is the Linear Threshold reverse random walk.
	GenLT = core.LTGen
)

// Model selects the forward cascade process for influence estimation.
type Model = diffusion.Model

// Cascade models for EstimateInfluence.
const (
	IC = diffusion.IC
	LT = diffusion.LTModel
)

// Algorithm identifies an influence-maximization algorithm.
type Algorithm int

const (
	// AlgIMM is IMM (Tang et al. 2015) with vanilla RR generation.
	AlgIMM Algorithm = iota
	// AlgSSA is Stop-and-Stare (Nguyen et al. 2016; SSA-Fix checks)
	// with vanilla RR generation.
	AlgSSA
	// AlgOPIMC is OPIM-C (Tang et al. 2018) with vanilla RR generation.
	AlgOPIMC
	// AlgSUBSIM is the paper's headline configuration: OPIM-C with
	// SUBSIM RR generation.
	AlgSUBSIM
	// AlgHIST is Hit-and-Stop with vanilla RR generation.
	AlgHIST
	// AlgHISTSubsim is Hit-and-Stop with SUBSIM RR generation
	// ("HIST+SUBSIM" in the paper).
	AlgHISTSubsim
	// AlgTIMPlus is TIM⁺ (Tang et al. 2014), the predecessor of IMM,
	// with vanilla RR generation.
	AlgTIMPlus
)

// String returns the algorithm name used in experiment output.
func (a Algorithm) String() string {
	switch a {
	case AlgIMM:
		return "IMM"
	case AlgSSA:
		return "SSA"
	case AlgOPIMC:
		return "OPIM-C"
	case AlgSUBSIM:
		return "SUBSIM"
	case AlgHIST:
		return "HIST"
	case AlgHISTSubsim:
		return "HIST+SUBSIM"
	case AlgTIMPlus:
		return "TIM+"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Maximize runs the selected influence-maximization algorithm on g and
// returns a seed set of size opt.K that is (1-1/e-opt.Eps)-approximate
// with probability at least 1-opt.Delta (IMM/OPIM-C/SUBSIM/HIST; SSA
// follows the corrected Stop-and-Stare schedule).
func Maximize(g *Graph, alg Algorithm, opt Options) (*Result, error) {
	switch alg {
	case AlgIMM:
		return im.IMM(rrset.NewVanilla(g), opt)
	case AlgSSA:
		return im.SSA(rrset.NewVanilla(g), opt)
	case AlgOPIMC:
		return im.OPIMC(rrset.NewVanilla(g), opt)
	case AlgSUBSIM:
		return core.SUBSIM(g, opt)
	case AlgHIST:
		return core.HIST(rrset.NewVanilla(g), opt)
	case AlgHISTSubsim:
		return core.HIST(rrset.NewSubsim(g), opt)
	case AlgTIMPlus:
		return im.TIMPlus(rrset.NewVanilla(g), opt)
	default:
		return nil, fmt.Errorf("subsim: unknown algorithm %d", int(alg))
	}
}

// MaximizeWith runs an algorithm chassis over an explicit RR generator,
// for callers that want a non-default pairing (e.g. IMM+SUBSIM, or HIST
// over the bucketed general-IC sampler).
func MaximizeWith(gen RRGenerator, alg Algorithm, opt Options) (*Result, error) {
	switch alg {
	case AlgIMM:
		return im.IMM(gen, opt)
	case AlgSSA:
		return im.SSA(gen, opt)
	case AlgOPIMC, AlgSUBSIM:
		return im.OPIMC(gen, opt)
	case AlgHIST, AlgHISTSubsim:
		return core.HIST(gen, opt)
	case AlgTIMPlus:
		return im.TIMPlus(gen, opt)
	default:
		return nil, fmt.Errorf("subsim: unknown algorithm %d", int(alg))
	}
}

// NewRRGenerator constructs an RR set generator of the given kind over g.
// Generators are not safe for concurrent use; call Clone per goroutine.
func NewRRGenerator(g *Graph, kind GeneratorKind) RRGenerator {
	return core.NewGenerator(g, kind)
}

// EstimateInfluence estimates the expected influence of a seed set by
// forward Monte-Carlo simulation with the given number of samples,
// parallelised across GOMAXPROCS workers. It is deterministic for a
// fixed seed.
func EstimateInfluence(g *Graph, seeds []int32, samples int, model Model, seed uint64) float64 {
	return diffusion.EstimateParallel(g, seeds, samples, model, seed, 0)
}

// InfluenceInterval is a Monte-Carlo influence estimate with a
// confidence interval; see EstimateInfluenceInterval.
type InfluenceInterval = diffusion.Interval

// EstimateInfluenceInterval estimates the expected influence by forward
// simulation and reports a normal-theory confidence interval at the
// given level (e.g. 0.95). The interval quantifies Monte-Carlo error
// only; for bounds that hold against the true expectation use the RR
// influence oracle.
func EstimateInfluenceInterval(g *Graph, seeds []int32, samples int, model Model, confidence float64, seed uint64) InfluenceInterval {
	return diffusion.EstimateInterval(g, seeds, samples, model, confidence, seed, 0)
}

// AssignSkewed assigns a skewed edge-weight distribution to g —
// ModelExponential draws Exponential(λ=1) weights, ModelWeibull draws
// Weibull(a,b) weights with a,b ~ U(0,10] per edge — normalising each
// node's incoming weights to sum to 1, as in the paper's Figure 2 setup.
// The equal-probability models are assigned directly with the Graph's
// AssignWC / AssignWCVariant / AssignUniform / AssignLT methods.
func AssignSkewed(g *Graph, model WeightModel, seed uint64) error {
	r := rng.New(seed)
	switch model {
	case ModelExponential:
		g.AssignExponential(r, 1)
	case ModelWeibull:
		g.AssignWeibull(r)
	default:
		return fmt.Errorf("subsim: AssignSkewed supports ModelExponential and ModelWeibull, got %v", model)
	}
	return nil
}

// SampleRRSets draws count random reverse-reachable sets from gen
// (uniform random roots), seeded by seed, and returns them. It is the
// low-level entry point for callers that build their own estimators on
// top of RR sampling; the Maximize algorithms manage RR collections
// internally.
func SampleRRSets(gen RRGenerator, count int, seed uint64) []RRSet {
	r := rng.New(seed)
	sets := make([]RRSet, 0, count)
	for i := 0; i < count; i++ {
		sets = append(sets, rrset.GenerateRandom(gen, r, nil))
	}
	return sets
}

// RRStats reports the cost counters a generator has accumulated.
func RRStats(gen RRGenerator) rrset.Stats { return gen.Stats() }

// InstrumentRRGenerator wraps gen so every generated set streams its
// size and edge-examination count into m's histograms (plus the
// geometric-skip histogram for SUBSIM generators). A nil m returns gen
// unchanged. Obtain m from Tracer.Metrics.
func InstrumentRRGenerator(gen RRGenerator, m *RRMetrics) RRGenerator {
	return rrset.Instrument(gen, m, nil)
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadGraph reads a graph from a file; ".bin" selects the binary format,
// anything else the edge-list text format.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// LoadSNAP reads a headerless SNAP/KONECT-style edge list (one "from to
// [weight]" pair per line, '#'/'%' comments ignored), mirroring edges
// when undirected is true — the format the paper's datasets are
// distributed in. Ids are preserved; call the Graph's CompactLargestWCC
// to drop isolated ids and keep the giant component.
func LoadSNAP(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadSNAP(f, undirected)
}

// GenErdosRenyi samples a directed G(n, m) graph seeded by seed. Assign a
// weight model before running any algorithm.
func GenErdosRenyi(n int, m int64, seed uint64) (*Graph, error) {
	return graph.GenErdosRenyi(n, m, rng.New(seed))
}

// GenPreferentialAttachment grows a scale-free graph with the given
// attachment degree; see the graph package for details. Assign a weight
// model before running any algorithm.
func GenPreferentialAttachment(n, deg int, undirected bool, seed uint64) (*Graph, error) {
	return graph.GenPreferentialAttachment(n, deg, undirected, rng.New(seed))
}

// GenWattsStrogatz generates a small-world network: a ring lattice of
// degree k rewired with probability beta. Assign a weight model before
// running any algorithm.
func GenWattsStrogatz(n, k int, beta float64, seed uint64) (*Graph, error) {
	return graph.GenWattsStrogatz(n, k, beta, rng.New(seed))
}

// SBMParams configures a stochastic block model; see GenSBM.
type SBMParams = graph.SBMParams

// GenSBM samples a directed stochastic block model — explicit community
// structure, the regime where certified algorithms clearly beat degree
// heuristics. Assign a weight model before running any algorithm.
func GenSBM(p SBMParams, seed uint64) (*Graph, error) {
	return graph.GenSBM(p, rng.New(seed))
}

// GraphStats summarises a graph's structure; obtain one with the Graph's
// ComputeStats method.
type GraphStats = graph.Stats

// Heuristic identifies a guarantee-free seed-selection baseline; see
// SelectHeuristic.
type Heuristic = heuristics.Name

// Known heuristics, in rough order of sophistication.
const (
	HeuristicDegree         = heuristics.NameDegree
	HeuristicSingleDiscount = heuristics.NameSingleDiscount
	HeuristicDegreeDiscount = heuristics.NameDegreeDiscount
	HeuristicPageRank       = heuristics.NamePageRank
	HeuristicOneHop         = heuristics.NameOneHop
)

// Heuristics lists the known heuristics.
var Heuristics = heuristics.All

// SelectHeuristic runs the named guarantee-free heuristic and returns k
// seeds. Heuristics are near-linear-time but come with no approximation
// guarantee; use them as fast baselines or as quality floors.
func SelectHeuristic(g *Graph, name Heuristic, k int) ([]int32, error) {
	return heuristics.Select(name, g, k)
}

// InfluenceOracle answers expected-influence queries for arbitrary seed
// sets over a fixed RR collection (Borgs et al. 2014); build one with
// NewInfluenceOracle. Queries are not safe for concurrent use.
type InfluenceOracle = oracle.Oracle

// NewInfluenceOracle draws theta RR sets through gen and returns an
// oracle whose Estimate/Interval methods answer influence queries
// without further sampling.
func NewInfluenceOracle(gen RRGenerator, theta int64, seed uint64) (*InfluenceOracle, error) {
	return oracle.New(gen, theta, seed, 0)
}

// NewInfluenceOracleWithPrecision sizes the collection so any fixed seed
// set with influence at least iMin is estimated within relative error
// eps with probability 1-delta per query.
func NewInfluenceOracleWithPrecision(gen RRGenerator, eps, delta, iMin float64, seed uint64) (*InfluenceOracle, error) {
	return oracle.NewWithPrecision(gen, eps, delta, iMin, seed, 0)
}
